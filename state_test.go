package hybridprng

import (
	"testing"
	"testing/quick"
)

func TestCheckpointResumesExactStream(t *testing.T) {
	for _, feed := range []string{FeedGlibc, FeedANSIC, FeedSplitMix} {
		g, err := New(WithSeed(99), WithFeed(feed))
		if err != nil {
			t.Fatal(err)
		}
		// Advance into the stream — including a partial bit-buffer
		// position.
		for i := 0; i < 137; i++ {
			g.Uint64()
		}
		blob, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: %v", feed, err)
		}
		restored := new(Generator)
		if err := restored.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%s: %v", feed, err)
		}
		if restored.Generated() != g.Generated() {
			t.Errorf("%s: generated %d, want %d", feed, restored.Generated(), g.Generated())
		}
		for i := 0; i < 500; i++ {
			if a, b := g.Uint64(), restored.Uint64(); a != b {
				t.Fatalf("%s: streams diverge at +%d: %x vs %x", feed, i, a, b)
			}
		}
	}
}

func TestCheckpointPreservesOptions(t *testing.T) {
	g, _ := New(WithSeed(5), WithWalkLength(17), WithInitWalkLength(3))
	g.Uint64()
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := new(Generator)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if g.Uint64() != r.Uint64() {
			t.Fatal("non-default walk length not preserved")
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	r := new(Generator)
	if err := r.UnmarshalBinary(nil); err == nil {
		t.Error("nil blob should fail")
	}
	if err := r.UnmarshalBinary([]byte("not a state blob at all......")); err == nil {
		t.Error("bad magic should fail")
	}
	g, _ := New(WithSeed(1))
	blob, _ := g.MarshalBinary()
	// Corrupt the version.
	bad := append([]byte(nil), blob...)
	bad[len(stateMagic)] = 99
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Error("bad version should fail")
	}
	// Corrupt the feed tag.
	bad = append([]byte(nil), blob...)
	bad[len(stateMagic)+1] = 99
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Error("bad feed tag should fail")
	}
	// Truncate.
	if err := r.UnmarshalBinary(blob[:len(blob)-3]); err == nil {
		t.Error("truncated blob should fail")
	}
}

func TestCheckpointRoundTripProperty(t *testing.T) {
	f := func(seed uint64, drawsRaw uint16) bool {
		draws := int(drawsRaw) % 200
		g, err := New(WithSeed(seed))
		if err != nil {
			return false
		}
		for i := 0; i < draws; i++ {
			g.Uint64()
		}
		blob, err := g.MarshalBinary()
		if err != nil {
			return false
		}
		r := new(Generator)
		if err := r.UnmarshalBinary(blob); err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			if g.Uint64() != r.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
