package hybridprng

import (
	"testing"
	"testing/quick"
)

func TestCheckpointResumesExactStream(t *testing.T) {
	for _, feed := range []string{FeedGlibc, FeedANSIC, FeedSplitMix} {
		g, err := New(WithSeed(99), WithFeed(feed))
		if err != nil {
			t.Fatal(err)
		}
		// Advance into the stream — including a partial bit-buffer
		// position.
		for i := 0; i < 137; i++ {
			g.Uint64()
		}
		blob, err := g.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: %v", feed, err)
		}
		restored := new(Generator)
		if err := restored.UnmarshalBinary(blob); err != nil {
			t.Fatalf("%s: %v", feed, err)
		}
		if restored.Generated() != g.Generated() {
			t.Errorf("%s: generated %d, want %d", feed, restored.Generated(), g.Generated())
		}
		for i := 0; i < 500; i++ {
			if a, b := g.Uint64(), restored.Uint64(); a != b {
				t.Fatalf("%s: streams diverge at +%d: %x vs %x", feed, i, a, b)
			}
		}
	}
}

func TestCheckpointPreservesOptions(t *testing.T) {
	g, _ := New(WithSeed(5), WithWalkLength(17), WithInitWalkLength(3))
	g.Uint64()
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := new(Generator)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if g.Uint64() != r.Uint64() {
			t.Fatal("non-default walk length not preserved")
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	r := new(Generator)
	if err := r.UnmarshalBinary(nil); err == nil {
		t.Error("nil blob should fail")
	}
	if err := r.UnmarshalBinary([]byte("not a state blob at all......")); err == nil {
		t.Error("bad magic should fail")
	}
	g, _ := New(WithSeed(1))
	blob, _ := g.MarshalBinary()
	// Corrupt the version.
	bad := append([]byte(nil), blob...)
	bad[len(stateMagic)] = 99
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Error("bad version should fail")
	}
	// Corrupt the feed tag.
	bad = append([]byte(nil), blob...)
	bad[len(stateMagic)+1] = 99
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Error("bad feed tag should fail")
	}
	// Truncate.
	if err := r.UnmarshalBinary(blob[:len(blob)-3]); err == nil {
		t.Error("truncated blob should fail")
	}
}

func TestCheckpointMonitoredGenerator(t *testing.T) {
	g, err := New(WithSeed(321), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 97; i++ {
		g.Uint64()
	}
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatalf("monitored generator no longer checkpointable: %v", err)
	}
	r := new(Generator)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if r.health == nil {
		t.Fatal("restored generator lost its monitor")
	}
	if got, want := r.health.RCTCutoff(), g.health.RCTCutoff(); got != want {
		t.Errorf("restored RCT cutoff %d, want %d", got, want)
	}
	if got, want := r.health.APTCutoff(), g.health.APTCutoff(); got != want {
		t.Errorf("restored APT cutoff %d, want %d", got, want)
	}
	if r.HealthErr() != nil {
		t.Errorf("restored healthy generator reports %v", r.HealthErr())
	}
	for i := 0; i < 300; i++ {
		if g.Uint64() != r.Uint64() {
			t.Fatalf("monitored streams diverge at +%d", i)
		}
	}
}

func TestCheckpointTrippedGeneratorStaysTripped(t *testing.T) {
	g, err := New(WithSeed(77), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	g.Uint64()
	g.health.ForceTrip("drill")
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := new(Generator)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	err = r.HealthErr()
	if err == nil {
		t.Fatal("restored generator forgot its tripped monitor")
	}
	if want := g.HealthErr().Error(); err.Error() != want {
		t.Errorf("restored failure %q, want %q", err, want)
	}
}

func TestCheckpointV1BlobStillRestores(t *testing.T) {
	// Hand-build a v1 blob (no monitor section) from a current one:
	// flip the version byte and drop the trailing monLen field.
	g, err := New(WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		g.Uint64()
	}
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), blob[:len(blob)-2]...) // unmonitored v2 ends with monLen=0
	v1[len(stateMagic)] = 1
	r := new(Generator)
	if err := r.UnmarshalBinary(v1); err != nil {
		t.Fatalf("v1 blob rejected: %v", err)
	}
	for i := 0; i < 50; i++ {
		if g.Uint64() != r.Uint64() {
			t.Fatal("v1 restore diverged")
		}
	}
}

func TestParallelCheckpointRoundTrip(t *testing.T) {
	p, err := NewParallel(3, WithSeed(55), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	warm := make([]uint64, 1000)
	p.Fill(warm)
	p.Worker(1).Uint64() // leave worker 1 mid-stream relative to the others
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := new(Parallel)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if r.Workers() != p.Workers() {
		t.Fatalf("restored %d workers, want %d", r.Workers(), p.Workers())
	}
	for i := 0; i < p.Workers(); i++ {
		if r.monitors[i] == nil {
			t.Fatalf("worker %d lost its monitor", i)
		}
		a, b := p.Worker(i), r.Worker(i)
		if a.Generated() != b.Generated() {
			t.Fatalf("worker %d generated %d, want %d", i, b.Generated(), a.Generated())
		}
		for j := 0; j < 200; j++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("worker %d diverged at +%d", i, j)
			}
		}
	}
	// The batch path must agree too.
	got := make([]uint64, 777)
	want := make([]uint64, 777)
	p.Fill(want)
	r.Fill(got)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("restored Fill diverged at %d", i)
		}
	}
}

func TestParallelWorkerCarriesMonitor(t *testing.T) {
	p, err := NewParallel(3, WithSeed(5), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	// Worker(i) used to build a Generator with a nil health field, so
	// per-worker HealthErr was always nil even with monitoring on.
	p.monitors[1].ForceTrip("drill")
	if p.Worker(1).HealthErr() == nil {
		t.Error("worker 1's generator does not see its tripped monitor")
	}
	if p.Worker(0).HealthErr() != nil {
		t.Error("worker 0 sees worker 1's trip")
	}
	if p.HealthErr() == nil {
		t.Error("pool-level HealthErr missed the trip")
	}
}

func TestPoolCheckpointRoundTrip(t *testing.T) {
	p, err := NewPool(WithSeed(888), WithShards(4), WithShardBuffer(32), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	// Drain an odd number of words so rings hold residue and the
	// ticket counter sits mid-rotation.
	for i := 0; i < 501; i++ {
		if _, err := p.Uint64(); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := new(Pool)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if r.Shards() != p.Shards() {
		t.Fatalf("restored %d shards, want %d", r.Shards(), p.Shards())
	}
	if got, want := r.tickets.Load(), p.tickets.Load(); got != want {
		t.Fatalf("restored ticket %d, want %d", got, want)
	}
	// Identical call pattern ⇒ identical output: residue, tickets,
	// walker positions and monitors all restored.
	for i := 0; i < 2000; i++ {
		a, errA := p.Uint64()
		b, errB := r.Uint64()
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if a != b {
			t.Fatalf("pool streams diverge at +%d", i)
		}
	}
	bufA := make([]uint64, 3000)
	bufB := make([]uint64, 3000)
	if err := p.Fill(bufA); err != nil {
		t.Fatal(err)
	}
	if err := r.Fill(bufB); err != nil {
		t.Fatal(err)
	}
	for i := range bufA {
		if bufA[i] != bufB[i] {
			t.Fatalf("pool Fill diverged at %d", i)
		}
	}
	st := r.Stats()
	if st.Draws == 0 || st.Refills == 0 {
		t.Errorf("restored pool lost its serving counters: %+v", st)
	}
}

func TestPoolCheckpointTrippedShardStaysRetired(t *testing.T) {
	p, err := NewPool(WithSeed(31), WithShards(4), WithShardBuffer(16), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Uint64()
	}
	if err := p.InjectFault(2); err != nil {
		t.Fatal(err)
	}
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := new(Pool)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if !st.PerShard[2].Tripped {
		t.Fatal("restored shard 2 came back from the dead")
	}
	if st.PerShard[2].Failure == "" {
		t.Error("restored tripped shard lost its failure reason")
	}
	if st.Healthy != 3 {
		t.Errorf("restored pool healthy = %d, want 3", st.Healthy)
	}
	if r.HealthErr() == nil {
		t.Error("restored pool HealthErr is nil despite a tripped shard")
	}
	// The healthy shards keep serving the same streams.
	for i := 0; i < 500; i++ {
		a, errA := p.Uint64()
		b, errB := r.Uint64()
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if a != b {
			t.Fatalf("degraded pool streams diverge at +%d", i)
		}
	}
}

func TestPoolUnmarshalRejectsGarbage(t *testing.T) {
	p, err := NewPool(WithSeed(1), WithShards(2), WithShardBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := new(Pool)
	if err := r.UnmarshalBinary(nil); err == nil {
		t.Error("nil pool blob should fail")
	}
	if err := r.UnmarshalBinary([]byte("definitely not a pool state blob")); err == nil {
		t.Error("bad pool magic should fail")
	}
	if err := r.UnmarshalBinary(blob[:len(blob)-5]); err == nil {
		t.Error("truncated pool blob should fail")
	}
	bad := append([]byte(nil), blob...)
	bad[len(poolMagic)] = 99
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Error("bad pool version should fail")
	}
}

func TestCheckpointRoundTripProperty(t *testing.T) {
	f := func(seed uint64, drawsRaw uint16) bool {
		draws := int(drawsRaw) % 200
		g, err := New(WithSeed(seed))
		if err != nil {
			return false
		}
		for i := 0; i < draws; i++ {
			g.Uint64()
		}
		blob, err := g.MarshalBinary()
		if err != nil {
			return false
		}
		r := new(Generator)
		if err := r.UnmarshalBinary(blob); err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			if g.Uint64() != r.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
