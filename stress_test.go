package hybridprng

import (
	"sync"
	"testing"
)

// stressDraws shrinks the stress workloads in -short mode (CI runs
// them under -race, which multiplies the cost ~10×).
func stressDraws(t *testing.T, full int) int {
	if testing.Short() {
		return full / 10
	}
	return full
}

// TestParallelStress hammers a Parallel pool: every worker generator
// is drawn by its own goroutine while Fill runs from another, all
// under the race detector in CI. It also asserts the handout
// invariants: Worker(i) is stable, Worker(i) ≠ Worker(j), and the
// aggregate count matches the draws exactly.
func TestParallelStress(t *testing.T) {
	const workers = 8
	draws := stressDraws(t, 20000)
	p, err := NewParallel(workers, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}

	// No duplicate walker handout: distinct workers → distinct
	// walkers; repeated handout of the same worker → the same walker
	// (the Generator wrapper is fresh each time, so compare walkers).
	walkers := make(map[interface{ Generated() uint64 }]bool)
	for i := 0; i < workers; i++ {
		gi := p.Worker(i)
		if gi.w != p.Worker(i).w {
			t.Fatalf("Worker(%d) handed out two different walkers", i)
		}
		if walkers[gi.w] {
			t.Fatalf("Worker(%d) duplicates another worker's walker", i)
		}
		walkers[gi.w] = true
	}

	var wg sync.WaitGroup
	sums := make([]uint64, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := p.Worker(i)
			var s uint64
			for j := 0; j < draws; j++ {
				s ^= g.Uint64()
			}
			sums[i] = s
		}(i)
	}
	wg.Wait()
	if got, want := p.Generated(), uint64(workers*draws); got != want {
		t.Fatalf("Generated = %d, want %d", got, want)
	}

	// Determinism: the same seed re-run serially gives the same
	// per-worker XOR sums — concurrency must not perturb any stream.
	p2, err := NewParallel(workers, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		g := p2.Worker(i)
		var s uint64
		for j := 0; j < draws; j++ {
			s ^= g.Uint64()
		}
		if s != sums[i] {
			t.Fatalf("worker %d stream changed under concurrency", i)
		}
	}
}

// TestPoolStress drives the sharded Pool from many goroutines mixing
// single draws, batched fills, byte reads, stats scrapes and a
// mid-flight fault injection. Run under -race in CI; the assertions
// are the aggregate-count invariants.
func TestPoolStress(t *testing.T) {
	const goroutines = 16
	draws := stressDraws(t, 10000)
	p, err := NewPool(WithSeed(7), WithShards(8), WithShardBuffer(64), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	served := make([]uint64, goroutines) // words each goroutine successfully drew
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var batch [37]uint64 // deliberately not a divisor of anything
			for j := 0; j < draws; j++ {
				switch j % 3 {
				case 0:
					if _, err := p.Uint64(); err == nil {
						served[i]++
					}
				case 1:
					if err := p.Fill(batch[:]); err == nil {
						served[i] += uint64(len(batch))
					}
				default:
					var b [24]byte
					if _, err := p.Read(b[:]); err == nil {
						served[i] += 3
					}
				}
			}
		}(i)
	}
	// Concurrent observers: health probes and stats scrapes, exactly
	// what /healthz and /metrics do while traffic flows.
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = p.Stats()
			_ = p.HealthErr()
			_ = p.Generated()
		}
	}()
	// Fault-inject one shard mid-stress; the pool must keep serving.
	if err := p.InjectFault(3); err != nil {
		t.Error(err)
	}
	wg.Wait()
	close(stop)
	obs.Wait()

	var total uint64
	for _, s := range served {
		total += s
	}
	st := p.Stats()
	if st.Draws != total {
		t.Fatalf("pool served %d words, callers got %d", st.Draws, total)
	}
	if p.Generated() < st.Draws {
		t.Fatalf("Generated %d < served %d", p.Generated(), st.Draws)
	}
	if st.HealthTrips < 1 || st.Healthy > st.Shards-1 {
		t.Fatalf("injected fault not reflected: %+v", st)
	}
	if p.HealthErr() == nil {
		t.Fatal("HealthErr nil after injection")
	}
	// The uninjected shards must all still be healthy — stress load
	// alone cannot trip a monitor watching a sane feed.
	for i, ss := range st.PerShard {
		if i != 3 && ss.Tripped {
			t.Errorf("shard %d tripped spontaneously: %s", i, ss.Failure)
		}
	}
}

// TestPoolStressFullTrip drives draws while every shard is being
// retired, checking the degradation is clean: no panic, and once all
// shards are gone every path returns ErrPoolUnhealthy.
func TestPoolStressFullTrip(t *testing.T) {
	p, err := NewPool(WithSeed(11), WithShards(4), WithShardBuffer(32))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf [16]uint64
			for j := 0; j < 2000; j++ {
				_, _ = p.Uint64()
				_ = p.Fill(buf[:])
			}
		}()
	}
	for i := 0; i < p.Shards(); i++ {
		if err := p.InjectFault(i); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	if _, err := p.Uint64(); err == nil {
		t.Fatal("fully tripped pool still serving")
	}
}
