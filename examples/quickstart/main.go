// Quickstart: create the on-demand generator, draw values in every
// supported flavour, and plug it into math/rand.
package main

import (
	"fmt"
	"math/rand"

	hybridprng "repro"
)

func main() {
	// Reproducible generator (omit WithSeed for an entropy seed).
	g, err := hybridprng.New(hybridprng.WithSeed(2012))
	if err != nil {
		panic(err)
	}

	fmt.Println("on-demand draws (no pre-generated buffer):")
	for i := 0; i < 4; i++ {
		fmt.Printf("  Uint64  -> %#016x\n", g.Uint64())
	}
	fmt.Printf("  Float64 -> %.6f\n", g.Float64())
	fmt.Printf("  Intn(6) -> %d (a die roll)\n", g.Intn(6)+1)
	fmt.Printf("  Normal  -> %+.4f\n", g.NormFloat64())

	// The current expander vertex IS the last value.
	fmt.Printf("walk position: %v\n", g.Position())

	// Use it as a math/rand source.
	r := rand.New(g.MathRandSource())
	fmt.Printf("via math/rand: Perm(8) = %v\n", r.Perm(8))

	// Batch mode: fill a slice, sharded across independent walkers.
	p, err := hybridprng.NewParallel(4, hybridprng.WithSeed(2012))
	if err != nil {
		panic(err)
	}
	buf := make([]uint64, 8)
	p.Fill(buf)
	fmt.Printf("parallel fill:  %x\n", buf)
	fmt.Printf("numbers generated so far: %d\n", g.Generated()+p.Generated())
}
