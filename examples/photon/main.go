// Photon migration: the paper's Application II. Light propagation
// through a three-layer skin model, with the hybrid PRNG supplying
// every random draw, and a quality comparison of initial-weight
// clashes against the CUDAMCML MWC baseline.
package main

import (
	"fmt"
	"os"

	hybridprng "repro"
	"repro/internal/baselines"
	"repro/internal/photon"
)

func main() {
	tissue := photon.ThreeLayerSkin()
	g, err := hybridprng.New(hybridprng.WithSeed(633)) // 633 nm, of course
	if err != nil {
		panic(err)
	}

	const photons = 50_000
	res, err := photon.Simulate(tissue, photons, g)
	if err != nil {
		panic(err)
	}

	fmt.Printf("photon migration through %d layers, %d packets:\n", len(tissue.Layers), photons)
	fmt.Printf("  specular reflection Rsp = %.4f\n", res.Rsp)
	fmt.Printf("  diffuse reflectance Rd  = %.4f\n", res.Rd)
	fmt.Printf("  transmittance       Tt  = %.4f\n", res.Tt)
	for i, a := range res.Absorbed {
		fmt.Printf("  absorbed in layer %d     = %.4f\n", i, a)
	}
	fmt.Printf("  energy conservation     = %.4f (≈ 1)\n", res.Conservation())
	fmt.Printf("  interaction sites/packet = %.1f\n", res.StepsPerPhoton())

	// Quality: initial-weight clashes, the paper's Section VI-A
	// argument for plugging the hybrid PRNG into the simulation.
	mwc := baselines.NewMWCForThread(0, 633)
	c32, err := photon.CountClashes(mwc, 1_000_000, 32)
	if err != nil {
		panic(err)
	}
	h, _ := hybridprng.New(hybridprng.WithSeed(634))
	c64, err := photon.CountClashes(h, 1_000_000, 64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nweight clashes per 1M photons: MWC(32-bit) %d, hybrid(64-bit) %d\n",
		c32.Duplicates, c64.Duplicates)

	// MCML-style report with spatial grids (radial reflectance and
	// depth-resolved absorption).
	gGrid, _ := hybridprng.New(hybridprng.WithSeed(635))
	grid, err := photon.SimulateGrid(tissue, 20_000, gGrid,
		photon.TallyConfig{DR: 0.02, NR: 8, DZ: 0.05, NZ: 8})
	if err != nil {
		panic(err)
	}
	fmt.Println("\n--- MCML-style report (coarse grids) ---")
	if err := photon.WriteReport(os.Stdout, tissue, grid); err != nil {
		panic(err)
	}
}
