// Client failover demo: a two-server randd fleet, a client drawing
// through the prefetch ring, and one server killed mid-run the hard
// way — listener closed, in-flight connections torn down. The client
// notices, backs off the dead endpoint, and keeps serving draws from
// the survivor; the consumer never sees a failed draw.
//
//	go run ./examples/client-failover
package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	hybridprng "repro"
	"repro/client"
	"repro/internal/server"
)

// serve boots an in-process randd on a loopback port and returns its
// base URL plus a kill switch that drops the server abruptly (no
// graceful drain — the network view of a SIGKILL).
func serve(seed uint64) (url string, kill func(), err error) {
	pool, err := hybridprng.NewPool(
		hybridprng.WithSeed(seed),
		hybridprng.WithShards(2),
		hybridprng.WithHealthMonitoring(4),
	)
	if err != nil {
		return "", nil, err
	}
	srv, err := server.New(pool, server.Options{})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

func main() {
	urlA, killA, err := serve(1)
	if err != nil {
		panic(err)
	}
	defer killA()
	urlB, killB, err := serve(2)
	if err != nil {
		panic(err)
	}
	defer killB()
	fmt.Printf("fleet:  A %s\n        B %s\n", urlA, urlB)

	cl, err := client.New(client.Options{
		Endpoints:   []string{urlA, urlB},
		BackoffBase: 25 * time.Millisecond,
		BackoffMax:  250 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	// Draw continuously for ~2s; kill A at ~700ms. Every draw must
	// succeed — the ring and the failover logic absorb the outage.
	deadline := time.Now().Add(2 * time.Second)
	killAt := time.Now().Add(700 * time.Millisecond)
	killed := false
	var draws, failed uint64
	var sample uint64
	for time.Now().Before(deadline) {
		if !killed && time.Now().After(killAt) {
			fmt.Printf("t=+700ms: killing server A (%d draws so far)\n", draws)
			killA()
			killed = true
		}
		v, err := cl.Uint64()
		if err != nil {
			failed++
			fmt.Printf("draw failed: %v\n", err)
			continue
		}
		sample = v
		draws++
	}

	st := cl.Stats()
	fmt.Printf("t=+2s:    %d draws, %d failed (last word %#016x)\n", draws, failed, sample)
	fmt.Printf("client:   %d blocks, %d retries, %d failovers\n", st.Blocks, st.Retries, st.Failovers)
	for _, ep := range st.Endpoints {
		fmt.Printf("endpoint: %-28s healthy=%-5v failures=%d\n", ep.URL, ep.Healthy, ep.Failures)
	}
	if failed > 0 || draws == 0 {
		fmt.Println("FAILOVER DEMO FAILED: draws were lost")
		os.Exit(1)
	}
	fmt.Println("no draw failed across the kill — the fleet is one generator")
}
