// Monte Carlo π: many goroutines drawing on demand from private
// walkers — the thread-safety and on-demand properties of the paper
// in the smallest possible application. The sample count per
// goroutine is decided while running (keep sampling until the
// global budget runs out), which a pre-generated buffer cannot do.
package main

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	hybridprng "repro"
)

func main() {
	const (
		workers = 8
		budget  = 4_000_000 // total darts, claimed dynamically
		chunk   = 10_000
	)
	pool, err := hybridprng.NewParallel(workers, hybridprng.WithSeed(314159))
	if err != nil {
		panic(err)
	}

	var remaining atomic.Int64
	remaining.Store(budget)
	var inside, sampledDarts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(g *hybridprng.Generator) {
			defer wg.Done()
			for {
				// Claim work on demand — nobody pre-computed how
				// many numbers this goroutine would need.
				if remaining.Add(-chunk) < 0 {
					return
				}
				hits := int64(0)
				for i := 0; i < chunk; i++ {
					x := g.Float64()
					y := g.Float64()
					if x*x+y*y < 1 {
						hits++
					}
				}
				inside.Add(hits)
				sampledDarts.Add(chunk)
			}
		}(pool.Worker(w))
	}
	wg.Wait()

	sampled := sampledDarts.Load()
	estimate := 4 * float64(inside.Load()) / float64(sampled)
	fmt.Printf("darts: %d across %d goroutines\n", sampled, workers)
	fmt.Printf("π ≈ %.6f (error %.6f)\n", estimate, math.Abs(estimate-math.Pi))
	fmt.Printf("numbers drawn on demand: %d\n", pool.Generated())
}
