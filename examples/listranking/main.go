// List ranking with on-demand randomness: the paper's Application I.
// A random linked list is reduced by repeatedly removing fractional
// independent sets, where each surviving node draws its coin from
// the on-demand generator — the number of draws per iteration is
// unknowable in advance, which is precisely the property the
// generator provides.
package main

import (
	"fmt"

	hybridprng "repro"
	"repro/internal/listrank"
)

func main() {
	const n = 500_000
	g, err := hybridprng.New(hybridprng.WithSeed(7))
	if err != nil {
		panic(err)
	}

	list, err := listrank.NewRandomList(n, g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("built a random list of %d nodes (head %d)\n", list.Len(), list.Head)

	// Rank with the paper's three-phase FIS algorithm, coins drawn
	// on demand from a second generator.
	coins, err := hybridprng.New(hybridprng.WithSeed(8))
	if err != nil {
		panic(err)
	}
	ranks, stats, err := listrank.FISRank(list, coins)
	if err != nil {
		panic(err)
	}

	// Verify against the sequential ground truth.
	want, err := listrank.SequentialRanks(list)
	if err != nil {
		panic(err)
	}
	for i := range want {
		if ranks[i] != want[i] {
			panic(fmt.Sprintf("rank mismatch at node %d", i))
		}
	}
	fmt.Printf("FIS reduction: %d iterations, list shrunk to ≤ n/log n\n", stats.Iterations)
	fmt.Printf("randoms drawn on demand: %d (%.2f per node; a pre-generated\n",
		stats.RandomsDrawn, float64(stats.RandomsDrawn)/float64(n))
	fmt.Printf("upper-bound buffer would have needed ≈ 3× that — the paper's 40%%)\n")
	fmt.Println("all ranks verified against sequential traversal ✓")
}
