// Quality report: run a reduced DIEHARD battery and SmallCrush over
// the hybrid generator and print the per-test verdicts — the
// library's self-test, and a template for validating any custom
// rng.Source.
package main

import (
	"fmt"

	hybridprng "repro"
	"repro/internal/diehard"
	"repro/internal/testu01"
)

func main() {
	g, err := hybridprng.New(hybridprng.WithSeed(20120521))
	if err != nil {
		panic(err)
	}

	fmt.Println("DIEHARD battery (reduced sizes) on hybrid-prng:")
	out := diehard.RunBattery("hybrid-prng", g, diehard.Config{Scale: 0.5})
	for _, r := range out.Results {
		verdict := "pass"
		if !r.Passed(0.01, 0.99) {
			verdict = "FAIL"
		}
		fmt.Printf("  %-26s %-4s p=%.4f\n", r.Name, verdict, r.P())
	}
	fmt.Printf("=> %d/%d passed, KS D = %.4f\n\n", out.Passed, out.Total, out.KS.D)

	fmt.Println("TestU01 SmallCrush on hybrid-prng:")
	g2, _ := hybridprng.New(hybridprng.WithSeed(20120522))
	sc := testu01.SmallCrush().Run("hybrid-prng", g2)
	for _, r := range sc.Results {
		verdict := "pass"
		if !r.Passed(0.001, 0.999) {
			verdict = "FAIL"
		}
		fmt.Printf("  %-26s %-4s p=%.4f\n", r.Name, verdict, r.P())
	}
	fmt.Printf("=> %d/%d passed\n", sc.Passed, sc.Total)
}
