// Skip list: a classic randomised data structure whose balance
// depends entirely on its coin flips — a natural consumer of the
// on-demand generator (you cannot know in advance how many coins an
// insertion sequence needs). The example builds a skip list over the
// hybrid PRNG, verifies ordering and search, and reports the level
// distribution against its geometric expectation.
package main

import (
	"fmt"
	"math"

	hybridprng "repro"
)

const maxLevel = 16

type node struct {
	key   int
	level int
	next  [maxLevel]*node
}

type skipList struct {
	head  node
	level int
	coins *hybridprng.Generator
	size  int
}

// randomLevel flips fair coins on demand: level k with probability
// 2^-k.
func (s *skipList) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && s.coins.Uint64()&1 == 1 {
		lvl++
	}
	return lvl
}

func (s *skipList) insert(key int) {
	var update [maxLevel]*node
	cur := &s.head
	for i := s.level - 1; i >= 0; i-- {
		for cur.next[i] != nil && cur.next[i].key < key {
			cur = cur.next[i]
		}
		update[i] = cur
	}
	lvl := s.randomLevel()
	for i := s.level; i < lvl; i++ {
		update[i] = &s.head
	}
	if lvl > s.level {
		s.level = lvl
	}
	n := &node{key: key, level: lvl}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.size++
}

func (s *skipList) contains(key int) bool {
	cur := &s.head
	for i := s.level - 1; i >= 0; i-- {
		for cur.next[i] != nil && cur.next[i].key < key {
			cur = cur.next[i]
		}
	}
	cur = cur.next[0]
	return cur != nil && cur.key == key
}

func main() {
	g, err := hybridprng.New(hybridprng.WithSeed(1998)) // Pugh's year, give or take
	if err != nil {
		panic(err)
	}
	s := &skipList{coins: g}

	// Insert a shuffled range.
	const n = 100_000
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i * 2 // even keys only
	}
	shuffler, _ := hybridprng.New(hybridprng.WithSeed(1999))
	shuffler.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		s.insert(k)
	}

	// Verify ordering along level 0.
	prev := math.MinInt
	count := 0
	for cur := s.head.next[0]; cur != nil; cur = cur.next[0] {
		if cur.key <= prev {
			panic("skip list out of order")
		}
		prev = cur.key
		count++
	}
	fmt.Printf("inserted %d keys, ordered traversal verified (%d nodes)\n", n, count)

	// Search: all even keys present, all odd keys absent.
	for i := 0; i < 1000; i++ {
		if !s.contains(i * 2) {
			panic("present key not found")
		}
		if s.contains(i*2 + 1) {
			panic("absent key found")
		}
	}
	fmt.Println("1000 positive and 1000 negative searches verified")

	// Level histogram vs the geometric law.
	levels := make([]int, maxLevel+1)
	for cur := s.head.next[0]; cur != nil; cur = cur.next[0] {
		levels[cur.level]++
	}
	fmt.Println("level distribution (observed vs 2^-k expectation):")
	for k := 1; k <= 6; k++ {
		expected := float64(n) * math.Pow(0.5, float64(k))
		fmt.Printf("  level %d: %6d observed, %8.0f expected\n", k, levels[k], expected)
	}
	fmt.Printf("coins drawn on demand: %d (≈ 2 per key)\n", g.Generated())
}
