package hybridprng_test

// Cross-stream battery integration: the internal/crossstream checks
// run against the real serving surfaces — Parallel workers, Pool
// shards (via ShardFill), snapshot-restored workers and shards that
// healed through the recovery state machine. The short tests are the
// per-PR CI battery (-run CrossStream -short -race); the long tests
// scale the same checks to thousands of streams.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	hybridprng "repro"
	"repro/internal/crossstream"
	"repro/internal/rng"
)

// hybridAvalanche is the nearby-seed factory for the initialization
// avalanche check: a fresh generator per seed, first outputs only.
func hybridAvalanche(baseSeed uint64, seeds, words int) *crossstream.AvalancheConfig {
	return &crossstream.AvalancheConfig{
		Stream: func(seed uint64, words int) ([]uint64, error) {
			g, err := hybridprng.New(hybridprng.WithSeed(seed))
			if err != nil {
				return nil, err
			}
			out := make([]uint64, words)
			g.Fill(out)
			return out, nil
		},
		BaseSeed: baseSeed,
		Seeds:    seeds,
		Words:    words,
	}
}

// parallelSet exposes every worker of a Parallel as one battery
// stream (Generator is an rng.Source).
func parallelSet(t *testing.T, workers int, seed uint64) crossstream.StreamSet {
	t.Helper()
	p, err := hybridprng.NewParallel(workers, hybridprng.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]rng.Source, workers)
	for i := range srcs {
		srcs[i] = p.Worker(i)
	}
	return crossstream.FromSources("parallel", srcs)
}

// shardSource adapts one Pool shard to rng.Source through the
// ShardFill audit probe, buffering a block at a time.
type shardSource struct {
	t   *testing.T
	p   *hybridprng.Pool
	i   int
	buf []uint64
	idx int
}

func newShardSource(t *testing.T, p *hybridprng.Pool, i int) *shardSource {
	return &shardSource{t: t, p: p, i: i, buf: make([]uint64, 256), idx: 256}
}

func (s *shardSource) Uint64() uint64 {
	if s.idx == len(s.buf) {
		if err := s.p.ShardFill(s.i, s.buf); err != nil {
			s.t.Fatalf("shard %d: %v", s.i, err)
		}
		s.idx = 0
	}
	v := s.buf[s.idx]
	s.idx++
	return v
}

func poolSet(t *testing.T, shards int, seed uint64) crossstream.StreamSet {
	t.Helper()
	p, err := hybridprng.NewPool(hybridprng.WithSeed(seed),
		hybridprng.WithShards(shards), hybridprng.WithShardBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != shards {
		t.Fatalf("pool has %d shards, want %d", p.Shards(), shards)
	}
	srcs := make([]rng.Source, shards)
	for i := range srcs {
		srcs[i] = newShardSource(t, p, i)
	}
	return crossstream.FromSources("pool", srcs)
}

func requireClean(t *testing.T, r *crossstream.Report, minChecks int) {
	t.Helper()
	t.Log(r.String())
	if len(r.Findings) != 0 {
		t.Fatalf("battery findings:\n  %s", strings.Join(r.Findings, "\n  "))
	}
	if r.Total < minChecks {
		t.Fatalf("battery ran %d checks, want ≥ %d", r.Total, minChecks)
	}
}

// TestCrossStreamParallelShort is the per-PR battery over Parallel
// workers: 256 streams, every pair correlated, composite fed through
// DIEHARD and SmallCrush, zero findings expected.
func TestCrossStreamParallelShort(t *testing.T) {
	cfg := crossstream.ShortProfile()
	cfg.Avalanche = hybridAvalanche(20120521, 48, 16)
	r, err := crossstream.Run(parallelSet(t, 256, 20120521), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Streams < 256 {
		t.Fatalf("short battery covered %d streams, want ≥ 256", r.Streams)
	}
	requireClean(t, r, 8)
}

// TestCrossStreamPoolShort runs the same battery over Pool shards via
// the ShardFill probe — the streams serving traffic actually draws
// from, behind the ring and failover machinery.
func TestCrossStreamPoolShort(t *testing.T) {
	cfg := crossstream.ShortProfile()
	r, err := crossstream.Run(poolSet(t, 256, 20120521), cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, r, 7)
}

// TestCrossStreamParallelLong scales the battery to 2048 worker
// streams with the sampled-pair long profile.
func TestCrossStreamParallelLong(t *testing.T) {
	if testing.Short() {
		t.Skip("thousands-of-streams battery run")
	}
	cfg := crossstream.LongProfile()
	cfg.Avalanche = hybridAvalanche(20120521, 128, 32)
	r, err := crossstream.Run(parallelSet(t, 2048, 20120521), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Streams < 2048 {
		t.Fatalf("long battery covered %d streams, want ≥ 2048", r.Streams)
	}
	requireClean(t, r, 8)
}

// TestCrossStreamPoolLong is the long-profile pool run: 2048 shard
// streams through the same checks.
func TestCrossStreamPoolLong(t *testing.T) {
	if testing.Short() {
		t.Skip("thousands-of-streams battery run")
	}
	r, err := crossstream.Run(poolSet(t, 2048, 20120521), crossstream.LongProfile())
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, r, 7)
}

// TestCrossStreamCatchesDuplicateWorkerSeeds injects the
// counter-reuse bug into the real generator: two of 64 workers built
// from the same seed. The aliasing check must fail and name both.
func TestCrossStreamCatchesDuplicateWorkerSeeds(t *testing.T) {
	srcs := make([]rng.Source, 64)
	for i := range srcs {
		seed := uint64(5000 + i)
		if i == 41 {
			seed = 5000 + 7 // duplicated seed — the injected bug
		}
		g, err := hybridprng.New(hybridprng.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = g
	}
	cfg := crossstream.ShortProfile()
	cfg.DiehardScale = 0 // prefix checks are the point here
	cfg.SmallCrush = false
	r, err := crossstream.Run(crossstream.FromSources("workers", srcs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var alias crossstream.Check
	for _, c := range r.Checks {
		if c.Name == "prefix-aliasing" {
			alias = c
		}
	}
	if alias.Name == "" {
		t.Fatal("no prefix-aliasing check in report")
	}
	if alias.Pass {
		t.Fatalf("duplicate-seeded workers not caught: %s", alias.Detail)
	}
	if !strings.Contains(alias.Detail, "workers[7]") || !strings.Contains(alias.Detail, "workers[41]") {
		t.Errorf("aliasing finding does not name the duplicated workers: %s", alias.Detail)
	}
}

// replaySource hands back a recorded prefix; the battery never reads
// past it in these tests (interleaved batteries disabled).
type replaySource struct {
	words []uint64
	idx   int
}

func (s *replaySource) Uint64() uint64 {
	if s.idx >= len(s.words) {
		panic("replaySource exhausted")
	}
	v := s.words[s.idx]
	s.idx++
	return v
}

// prefixOnly disables the live-draw composite batteries so recorded
// prefixes can stand in as sources.
func prefixOnly() crossstream.Config {
	cfg := crossstream.ShortProfile()
	cfg.Prefix = 256
	cfg.CorrWords = 192
	cfg.DiehardScale = 0
	cfg.SmallCrush = false
	return cfg
}

// TestCrossStreamParallelSnapshotRestoreDisjoint checkpoints a
// Parallel mid-stream, restores it, and requires (a) exact resume —
// every restored worker continues its own stream word for word — and
// (b) disjointness: the pre-snapshot prefixes and the post-restore
// continuations, taken together as one ensemble, show no aliasing
// and no cross-correlation. A restore that rewound workers onto each
// other's streams, or re-ran seeding into a shared state, fails the
// battery even where it would pass per-worker spot checks.
func TestCrossStreamParallelSnapshotRestoreDisjoint(t *testing.T) {
	const workers, words = 64, 256
	p, err := hybridprng.NewParallel(workers, hybridprng.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	pre := make([][]uint64, workers)
	for i := range pre {
		pre[i] = make([]uint64, words)
		p.Worker(i).Fill(pre[i])
	}
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	post := make([][]uint64, workers)
	for i := range post {
		post[i] = make([]uint64, words)
		p.Worker(i).Fill(post[i])
	}

	r := new(hybridprng.Parallel)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < workers; i++ {
		got := make([]uint64, words)
		r.Worker(i).Fill(got)
		for j := range got {
			if got[j] != post[i][j] {
				t.Fatalf("worker %d diverged at +%d after restore", i, j)
			}
		}
	}

	// One ensemble of 2·workers streams: each worker's pre-snapshot
	// prefix and its post-restore continuation as separate streams.
	names := make([]string, 0, 2*workers)
	srcs := make([]rng.Source, 0, 2*workers)
	for i := range pre {
		names = append(names, fmt.Sprintf("pre[%d]", i), fmt.Sprintf("post[%d]", i))
		srcs = append(srcs, &replaySource{words: pre[i]}, &replaySource{words: post[i]})
	}
	set := crossstream.StreamSet{Name: "snapshot", Names: names, Sources: srcs}
	report, err := crossstream.Run(set, prefixOnly())
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, report, 4)
}

// restoreFakeClock mirrors recovery_test.go's manual clock for the
// external test package.
type restoreFakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *restoreFakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *restoreFakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestCrossStreamRecoveredShardInitQuality trips a shard, lets the
// recovery state machine reseed and readmit it, then audits the
// healed shard's fresh stream against every other shard's pre-trip
// stream — and against the tripped shard's own pre-trip stream. The
// reseed path runs the full Algorithm 1 initialization walk from a
// derived seed, so the healed stream must be bit-balanced, non-
// aliasing (in particular, NOT a replay of the pre-trip stream) and
// uncorrelated with the rest of the pool.
func TestCrossStreamRecoveredShardInitQuality(t *testing.T) {
	const shards, words = 8, 256
	clock := &restoreFakeClock{t: time.Unix(1_000_000, 0)}
	p, err := hybridprng.NewPool(hybridprng.WithSeed(4242),
		hybridprng.WithShards(shards), hybridprng.WithShardBuffer(16),
		hybridprng.WithRecovery(hybridprng.RecoveryPolicy{
			QuarantineBase: 50 * time.Millisecond,
			ProbationWords: 256,
			MaxTrips:       4,
		}),
		hybridprng.WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	pre := make([][]uint64, shards)
	for i := range pre {
		pre[i] = make([]uint64, words)
		if err := p.ShardFill(i, pre[i]); err != nil {
			t.Fatal(err)
		}
	}

	if err := p.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	var probe [words]uint64
	if err := p.ShardFill(0, probe[:]); err == nil {
		t.Fatal("tripped shard still serving through ShardFill")
	}
	for i := range probe {
		if probe[i] != 0 {
			t.Fatal("ShardFill left untrusted words in dst after failure")
		}
	}

	// Heal: past quarantine, draws drive reseed + probation.
	clock.Advance(200 * time.Millisecond)
	dst := make([]uint64, 16)
	for i := 0; i < 100; i++ {
		_ = p.Fill(dst)
		if h, _ := p.Health(); h == shards {
			break
		}
	}
	if h, total := p.Health(); h != total {
		t.Fatalf("pool never healed: %d/%d shards healthy", h, total)
	}

	healed := make([]uint64, words)
	if err := p.ShardFill(0, healed); err != nil {
		t.Fatal(err)
	}

	names := make([]string, 0, shards+1)
	srcs := make([]rng.Source, 0, shards+1)
	for i := range pre {
		names = append(names, fmt.Sprintf("shard[%d]-pretrip", i))
		srcs = append(srcs, &replaySource{words: pre[i]})
	}
	names = append(names, "shard[0]-healed")
	srcs = append(srcs, &replaySource{words: healed})
	report, err := crossstream.Run(
		crossstream.StreamSet{Name: "recovery", Names: names, Sources: srcs},
		prefixOnly())
	if err != nil {
		t.Fatal(err)
	}
	requireClean(t, report, 4)
}
