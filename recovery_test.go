package hybridprng

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// fakeClock is a manually advanced time source shared by a pool and
// its test, making quarantine backoffs deterministic and instant.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

// fastRecovery is a policy small enough that one Fill sweep finishes
// probation.
func fastRecovery() RecoveryPolicy {
	return RecoveryPolicy{
		QuarantineBase: 50 * time.Millisecond,
		ProbationWords: 256,
		MaxTrips:       4,
	}
}

// drive pumps draws until the pool reports want healthy shards (or
// the step budget runs out).
func drive(t *testing.T, p *Pool, want int) {
	t.Helper()
	dst := make([]uint64, 16)
	for i := 0; i < 100; i++ {
		_ = p.Fill(dst) // unhealthy mid-recovery is fine; the sweep still ran
		if p.Stats().Healthy >= want {
			return
		}
	}
	t.Fatalf("pool never reached %d healthy shards: %+v", want, p.Stats())
}

// TestChaosShardTripProbationReadmit walks one shard through the
// whole state machine: healthy → quarantined → probation → healthy —
// and requires it to serve again afterwards.
func TestChaosShardTripProbationReadmit(t *testing.T) {
	clock := newFakeClock()
	p, err := NewPool(WithSeed(1), WithShards(2), WithShardBuffer(8),
		WithHealthMonitoring(4), WithRecovery(fastRecovery()), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Quarantined != 1 || st.Healthy != 1 {
		t.Fatalf("after trip: %+v", st)
	}
	if st.PerShard[0].State != "quarantined" || st.PerShard[0].RetryIn <= 0 {
		t.Fatalf("shard 0 after trip: %+v", st.PerShard[0])
	}
	// Degraded, not down: draws still work.
	if _, err := p.Uint64(); err != nil {
		t.Fatalf("degraded pool must serve: %v", err)
	}
	// Backoff not yet elapsed: no recovery however hard we draw.
	drive(t, p, 1)
	if st = p.Stats(); st.Quarantined != 1 {
		t.Fatalf("recovered before deadline: %+v", st)
	}
	clock.Advance(time.Second)
	drive(t, p, 2)
	st = p.Stats()
	if st.Healthy != 2 || st.Recoveries != 1 || st.HealthTrips != 1 {
		t.Fatalf("after recovery: %+v", st)
	}
	if ss := st.PerShard[0]; ss.State != "healthy" || ss.Trips != 1 || ss.Failure != "" {
		t.Fatalf("shard 0 after recovery: %+v", ss)
	}
	if err := p.Fill(make([]uint64, 1024)); err != nil {
		t.Fatalf("recovered pool: %v", err)
	}
	if p.HealthErr() != nil {
		t.Fatalf("recovered pool still reports %v", p.HealthErr())
	}
}

// TestChaosBackoffGrowsThenRetires: each further trip must quarantine
// longer, and the MaxTrips-th trip retires the shard permanently.
func TestChaosBackoffGrowsThenRetires(t *testing.T) {
	clock := newFakeClock()
	pol := fastRecovery()
	pol.MaxTrips = 3
	p, err := NewPool(WithSeed(2), WithShards(2), WithShardBuffer(8),
		WithHealthMonitoring(4), WithRecovery(pol), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	var lastRetry time.Duration
	for trip := 1; trip < pol.MaxTrips; trip++ {
		if err := p.InjectFault(0); err != nil {
			t.Fatal(err)
		}
		ss := p.Stats().PerShard[0]
		if ss.State != "quarantined" {
			t.Fatalf("trip %d: state %s", trip, ss.State)
		}
		if ss.RetryIn <= lastRetry {
			t.Fatalf("trip %d: backoff %v did not grow past %v", trip, ss.RetryIn, lastRetry)
		}
		lastRetry = ss.RetryIn
		clock.Advance(10 * time.Minute)
		drive(t, p, 2)
	}
	if err := p.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Retired != 1 || st.PerShard[0].State != "retired" {
		t.Fatalf("after trip budget spent: %+v", st)
	}
	clock.Advance(time.Hour)
	drive(t, p, 1)
	if st = p.Stats(); st.PerShard[0].State != "retired" {
		t.Fatalf("retired shard resurrected: %+v", st)
	}
}

// TestChaosAllShardsTripThenRecover: a fully tripped pool returns
// ErrPoolUnhealthy, then heals itself once backoffs elapse — no
// restart required.
func TestChaosAllShardsTripThenRecover(t *testing.T) {
	clock := newFakeClock()
	p, err := NewPool(WithSeed(3), WithShards(4), WithShardBuffer(8),
		WithHealthMonitoring(4), WithRecovery(fastRecovery()), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Shards(); i++ {
		if err := p.InjectFault(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Uint64(); !errors.Is(err, ErrPoolUnhealthy) {
		t.Fatalf("fully tripped pool: %v, want ErrPoolUnhealthy", err)
	}
	if err := p.Fill(make([]uint64, 100)); !errors.Is(err, ErrPoolUnhealthy) {
		t.Fatalf("fully tripped pool Fill: %v", err)
	}
	clock.Advance(time.Second)
	drive(t, p, 4)
	st := p.Stats()
	if st.Healthy != 4 || st.Recoveries != 4 {
		t.Fatalf("after recovery: %+v", st)
	}
	if _, err := p.Uint64(); err != nil {
		t.Fatalf("healed pool: %v", err)
	}
}

// TestChaosDisabledPolicyRetiresImmediately pins the legacy
// behaviour behind RecoveryPolicy.Disabled.
func TestChaosDisabledPolicyRetiresImmediately(t *testing.T) {
	p, err := NewPool(WithSeed(4), WithShards(2), WithShardBuffer(8),
		WithHealthMonitoring(4), WithRecovery(RecoveryPolicy{Disabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InjectFault(1); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Retired != 1 || st.PerShard[1].State != "retired" {
		t.Fatalf("disabled recovery: %+v", st)
	}
}

// TestChaosFeedWrapperEndToEnd runs a pool whose feeds are corrupted
// by the chaos harness and requires the full loop — trip through the
// real SP 800-90B path, quarantine, reseed, probation, readmission —
// to happen on its own under draw traffic.
func TestChaosFeedWrapperEndToEnd(t *testing.T) {
	clock := newFakeClock()
	p, err := NewPool(WithSeed(5), WithShards(2), WithShardBuffer(64),
		WithHealthMonitoring(1),
		WithRecovery(fastRecovery()),
		WithClock(clock.Now),
		WithFeedWrapper(chaos.Wrapper(chaos.Config{
			Seed:       6,
			MeanPeriod: 2048,
			MeanLen:    256,
			Kinds:      []chaos.Kind{chaos.Stuck},
		})))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 256)
	deadline := 20_000
	var st PoolStats
	for i := 0; i < deadline; i++ {
		_ = p.Fill(dst)
		clock.Advance(5 * time.Millisecond)
		if st = p.Stats(); st.HealthTrips > 0 && st.Recoveries > 0 {
			break
		}
	}
	if st.HealthTrips == 0 || st.Recoveries == 0 {
		t.Fatalf("chaos feed never drove a full trip/recovery cycle: %+v", st)
	}
	// Chaos-wrapped feeds must refuse to checkpoint.
	if _, err := p.MarshalBinary(); err == nil {
		t.Fatal("chaos-wrapped pool marshalled; fault schedules must not enter snapshots")
	}
}

// TestChaosResumeMidQuarantine is the acceptance bit: a snapshot
// taken while a shard is quarantined must restore and then recover
// along the identical timeline, serving the identical stream.
func TestChaosResumeMidQuarantine(t *testing.T) {
	clockA := newFakeClock()
	t0 := clockA.Now()
	a, err := NewPool(WithSeed(6), WithShards(2), WithShardBuffer(8),
		WithHealthMonitoring(4), WithRecovery(fastRecovery()), WithClock(clockA.Now))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 37; i++ {
		if _, err := a.Uint64(); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// replay drives a pool through the same deterministic schedule:
	// draws while quarantined, clock jump, recovery, more draws.
	replay := func(p *Pool, clock *fakeClock) []uint64 {
		var out []uint64
		draw := func(n int) {
			for i := 0; i < n; i++ {
				v, err := p.Uint64()
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, v)
			}
		}
		fill := func(n int) {
			dst := make([]uint64, n)
			if err := p.Fill(dst); err != nil {
				t.Fatal(err)
			}
			out = append(out, dst...)
		}
		draw(11)
		clock.Set(t0.Add(time.Second)) // quarantine deadline passes
		fill(16)                       // sweep: reseed + probation
		fill(16)
		draw(40)
		fill(100)
		return out
	}

	outA := replay(a, clockA)
	if st := a.Stats(); st.Healthy != 2 || st.Recoveries != 1 {
		t.Fatalf("pool A never recovered during replay: %+v", st)
	}

	clockB := newFakeClock()
	clockB.Set(t0)
	b := new(Pool)
	b.SetClock(clockB.Now) // before UnmarshalBinary: deadlines re-anchor to this clock
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Quarantined != 1 {
		t.Fatalf("restored pool lost its quarantine state: %+v", st)
	}
	outB := replay(b, clockB)
	if len(outA) != len(outB) {
		t.Fatalf("replay lengths differ: %d vs %d", len(outA), len(outB))
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("streams diverge at word %d: %#x vs %#x", i, outA[i], outB[i])
		}
	}
	if st := b.Stats(); st.Healthy != 2 || st.Recoveries != 1 {
		t.Fatalf("restored pool never recovered: %+v", st)
	}
}

// TestChaosConcurrentTripsAndRecovery hammers draws from many
// goroutines while shards trip and heal on a real (but fast) clock —
// run under -race, this is the state machine's memory-model test.
func TestChaosConcurrentTripsAndRecovery(t *testing.T) {
	pol := RecoveryPolicy{
		QuarantineBase: time.Millisecond,
		QuarantineMax:  4 * time.Millisecond,
		ProbationWords: 128,
		MaxTrips:       1 << 20, // never retire during the test
	}
	p, err := NewPool(WithSeed(7), WithShards(4), WithShardBuffer(32),
		WithHealthMonitoring(4), WithRecovery(pol))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var served atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]uint64, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if g%2 == 0 {
					if _, err := p.Uint64(); err == nil {
						served.Add(1)
					}
				} else if err := p.Fill(dst); err == nil {
					served.Add(uint64(len(dst)))
				}
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		_ = p.InjectFault(i % p.Shards())
		time.Sleep(500 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	st := p.Stats()
	if served.Load() == 0 {
		t.Fatal("no draws served while shards tripped and recovered")
	}
	if st.HealthTrips == 0 {
		t.Fatalf("no trips recorded: %+v", st)
	}
	// Let outstanding recoveries finish; the pool must heal fully.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Healthy != p.Shards() && time.Now().Before(deadline) {
		_ = p.Fill(make([]uint64, 16))
		time.Sleep(time.Millisecond)
	}
	if st = p.Stats(); st.Healthy != p.Shards() {
		t.Fatalf("pool did not heal after the storm: %+v", st)
	}
}

// TestPoolFillZeroesOnError pins the partial-write contract: a Fill
// that fails leaves dst fully zeroed, never holding stale or
// untrusted words.
func TestPoolFillZeroesOnError(t *testing.T) {
	p, err := NewPool(WithSeed(8), WithShards(2), WithShardBuffer(8), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Shards(); i++ {
		if err := p.InjectFault(i); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{1, directFillThreshold, directFillThreshold*4 + 3} {
		dst := make([]uint64, n)
		for i := range dst {
			dst[i] = 0xAAAAAAAAAAAAAAAA
		}
		if err := p.Fill(dst); !errors.Is(err, ErrPoolUnhealthy) {
			t.Fatalf("Fill(%d) on dead pool: %v", n, err)
		}
		for i, v := range dst {
			if v != 0 {
				t.Fatalf("Fill(%d): dst[%d] = %#x after error, want 0", n, i, v)
			}
		}
	}
}

// TestPoolReadZeroesTailOnError: the byte path's half of the same
// contract.
func TestPoolReadZeroesTailOnError(t *testing.T) {
	p, err := NewPool(WithSeed(9), WithShards(1), WithShardBuffer(8), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	b := bytes.Repeat([]byte{0xAA}, 100)
	n, err := p.Read(b)
	if !errors.Is(err, ErrPoolUnhealthy) {
		t.Fatalf("Read on dead pool: n=%d err=%v", n, err)
	}
	for i := n; i < len(b); i++ {
		if b[i] != 0 {
			t.Fatalf("b[%d] = %#x after error, want 0", i, b[i])
		}
	}
}

// TestPoolZeroLengthCalls: zero-length draws are no-ops, healthy or
// not.
func TestPoolZeroLengthCalls(t *testing.T) {
	p, err := NewPool(WithSeed(10), WithShards(1), WithShardBuffer(8), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Fill(nil); err != nil {
		t.Fatalf("Fill(nil): %v", err)
	}
	if n, err := p.Read(nil); n != 0 || err != nil {
		t.Fatalf("Read(nil): %d, %v", n, err)
	}
	if err := p.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Fill([]uint64{}); err != nil {
		t.Fatalf("Fill(empty) on dead pool: %v", err)
	}
	if n, err := p.Read([]byte{}); n != 0 || err != nil {
		t.Fatalf("Read(empty) on dead pool: %d, %v", n, err)
	}
}

// TestPoolReadOddSizes covers non-multiple-of-8 byte counts against
// the word stream.
func TestPoolReadOddSizes(t *testing.T) {
	for _, n := range []int{1, 3, 7, 9, 15, 17, 63, 65, 511, 513} {
		p, err := NewPool(WithSeed(11), WithShards(2), WithShardBuffer(8))
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, n)
		got, err := p.Read(b)
		if err != nil || got != n {
			t.Fatalf("Read(%d): %d, %v", n, got, err)
		}
		// Words drawn must be ⌈n/8⌉ exactly.
		if want := uint64((n + 7) / 8); p.Stats().Draws != want {
			t.Fatalf("Read(%d) drew %d words, want %d", n, p.Stats().Draws, want)
		}
	}
}
