package hybridprng

// Long-mode quality guards: the repository's headline claims (Table
// II / Table III rows for the hybrid generator) re-verified across
// seeds, so a single lucky seed can never carry the claim. Skipped
// under -short.

import (
	"testing"

	"repro/internal/diehard"
	"repro/internal/testu01"
)

func TestTable2DiehardHybridAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed battery run")
	}
	for _, seed := range []uint64{20120521, 1, 0xDEADBEEF} {
		g, err := New(WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		out := diehard.RunBattery("hybrid-prng", g, diehard.Config{})
		// Allow one borderline band failure (the 0.01–0.99 band has
		// ≈ 2% false-alarm rate per single-p test).
		if out.Passed < 14 {
			for _, r := range out.Results {
				if !r.Passed(0.01, 0.99) {
					t.Logf("seed %d: %s p=%.6f", seed, r.Name, r.P())
				}
			}
			t.Errorf("seed %d: hybrid passed %d/15 DIEHARD", seed, out.Passed)
		}
		if out.KS.D > 0.35 {
			t.Errorf("seed %d: KS D = %.4f suspiciously large", seed, out.KS.D)
		}
	}
}

func TestTable3SmallCrushHybridAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed battery run")
	}
	for _, seed := range []uint64{20120521, 7, 0xCAFE} {
		g, err := New(WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		out := testu01.SmallCrush().Run("hybrid-prng", g)
		if out.Passed < 14 {
			for _, r := range out.Results {
				t.Logf("seed %d: %s p=%.6f", seed, r.Name, r.P())
			}
			t.Errorf("seed %d: hybrid passed %d/15 SmallCrush", seed, out.Passed)
		}
	}
}
