package hybridprng

// Long-mode quality guards: the repository's headline claims (Table
// II / Table III rows for the hybrid generator) re-verified across
// seeds, so a single lucky seed can never carry the claim. Skipped
// under -short.

import (
	"testing"

	"repro/internal/diehard"
	"repro/internal/stats"
	"repro/internal/testu01"
)

// Battery pass bars are derived, not hardcoded: with DIEHARD's
// [0.01, 0.99] band each single-p test false-alarms at ≈ 2%, and the
// TestU01-style band plus extreme-p rule at ≈ 1%; RequiredPasses
// turns those into the smallest pass count whose family false-alarm
// rate stays under 5% (both work out to 14/15 — "at most one
// borderline failure", exactly the old hardcoded bar).
const batteryFamilyAlpha = 0.05

func TestTable2DiehardHybridAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed battery run")
	}
	for _, seed := range []uint64{20120521, 1, 0xDEADBEEF} {
		g, err := New(WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		out := diehard.RunBattery("hybrid-prng", g, diehard.Config{})
		need := stats.RequiredPasses(out.Total, 0.02, batteryFamilyAlpha)
		if out.Passed < need {
			for _, r := range out.Results {
				if !r.Passed(0.01, 0.99) {
					t.Logf("seed %d: %s p=%.6f", seed, r.Name, r.P())
				}
			}
			t.Errorf("seed %d: hybrid passed %d/%d DIEHARD, need ≥ %d", seed, out.Passed, out.Total, need)
		}
		if out.KS.D > 0.35 {
			t.Errorf("seed %d: KS D = %.4f suspiciously large", seed, out.KS.D)
		}
	}
}

func TestTable3SmallCrushHybridAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed battery run")
	}
	for _, seed := range []uint64{20120521, 7, 0xCAFE} {
		g, err := New(WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		out := testu01.SmallCrush().Run("hybrid-prng", g)
		need := stats.RequiredPasses(out.Total, 0.01, batteryFamilyAlpha)
		if out.Passed < need {
			for _, r := range out.Results {
				t.Logf("seed %d: %s p=%.6f", seed, r.Name, r.P())
			}
			t.Errorf("seed %d: hybrid passed %d/%d SmallCrush, need ≥ %d", seed, out.Passed, out.Total, need)
		}
	}
}
