package hybridprng

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitsource"
	"repro/internal/core"
)

// Pool is the serving-layer generator: a sharded, contention-free
// pool of expander walkers sized for many concurrent callers. Where
// Parallel hands each goroutine its own Generator (the paper's
// per-thread model), Pool serves *anonymous* traffic — any goroutine
// may call Uint64 or Fill at any time, which is the paper's
// "on-demand" property pushed up to a service boundary.
//
// Internally each shard owns one walker, one feed stream, an
// optional SP 800-90B health monitor and a small ring buffer of
// pre-generated words. A draw picks a shard by advancing an atomic
// ticket and masking (shard counts are powers of two), takes the
// shard's lock, and serves from the ring; the ring is refilled a
// batch at a time so the lock and the health check amortise over
// ShardBuffer draws. Distinct shards never contend with each other.
//
// Backpressure: when a shard's feed monitor trips, the shard is
// retired — its buffered words are discarded (SP 800-90B says output
// after a failure must not be trusted) and subsequent draws fall
// through to the next healthy shard. When every shard has tripped,
// draws fail with ErrPoolUnhealthy. HealthErr and Stats expose the
// degraded state for /healthz-style probes.
//
// A Pool is checkpointable: MarshalBinary/UnmarshalBinary (state.go)
// capture every shard's walker, monitor, ring residue and tripped
// status plus the ticket counter, so a restored pool resumes the
// exact streams — the serving layer's snapshot/restore path rides on
// this.
const (
	maxShards      = 1 << 12
	maxShardBuffer = 1 << 20

	// defaultShardBuffer is the ring size in words: big enough that
	// the shard lock is a small fraction of the walk cost, small
	// enough that a tripped shard discards little work.
	defaultShardBuffer = 256

	// directFillThreshold is the Fill size (in words per healthy
	// shard) above which Fill bypasses the rings and writes straight
	// from the walkers into the caller's slice.
	directFillThreshold = 64
)

// ErrPoolUnhealthy is returned by Pool draws when every shard's feed
// health monitor has tripped (or been fault-injected): no trustworthy
// randomness remains in the pool.
var ErrPoolUnhealthy = errors.New("hybridprng: every pool shard has a tripped health monitor")

// Pool is safe for concurrent use by any number of goroutines.
type Pool struct {
	shards  []*poolShard
	mask    uint64
	tickets atomic.Uint64
}

// poolShard is one walker behind a lock with a ring of pre-generated
// words. tripped is atomic so the hot path of *other* shards and the
// health probes never take this shard's lock.
type poolShard struct {
	mu      sync.Mutex
	w       *core.Walker
	mon     *bitsource.Monitor // nil unless WithHealthMonitoring
	buf     []uint64
	idx     int // next unread index in buf; len(buf) = empty
	err     *bitsource.HealthError
	tripped atomic.Bool
	draws   atomic.Uint64 // words served to callers
	refills atomic.Uint64 // ring refills performed
}

// NewPool builds a sharded pool. The shard count (WithShards,
// default: next power of two ≥ GOMAXPROCS) is rounded up to a power
// of two; each shard's feed seed is derived from the pool seed and
// the shard index exactly as NewParallel derives worker seeds, so a
// Pool and a Parallel with the same options own the same streams.
func NewPool(opts ...Option) (*Pool, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	n := c.shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n = nextPow2(n)
	bufWords := c.shardBuffer
	if bufWords == 0 {
		bufWords = defaultShardBuffer
	}
	p := &Pool{shards: make([]*poolShard, n), mask: uint64(n - 1)}
	for i := range p.shards {
		br, mon, err := c.bits(i)
		if err != nil {
			return nil, err
		}
		w, err := core.NewWalker(br, c.coreConfig())
		if err != nil {
			return nil, fmt.Errorf("hybridprng: pool shard %d: %w", i, err)
		}
		buf := make([]uint64, bufWords)
		p.shards[i] = &poolShard{w: w, mon: mon, buf: buf, idx: len(buf)}
	}
	return p, nil
}

func nextPow2(n int) int {
	if n < 1 {
		return 1
	}
	if n > maxShards {
		return maxShards
	}
	return 1 << bits.Len(uint(n-1))
}

// trip retires the shard, recording why. Must be called with s.mu
// held; the error is published before the flag so concurrent
// healthErr readers that observe tripped always see the cause.
func (s *poolShard) trip(e *bitsource.HealthError) {
	if s.tripped.Load() {
		return
	}
	s.err = e
	s.tripped.Store(true)
}

// monTripped reports (and latches) a monitor failure after a refill.
func (s *poolShard) monTripped() bool {
	if s.mon == nil || !s.mon.Tripped() {
		return false
	}
	if he, ok := s.mon.Err().(*bitsource.HealthError); ok {
		s.trip(he)
	} else {
		s.trip(&bitsource.HealthError{Test: "monitor", Detail: s.mon.Err().Error()})
	}
	return true
}

// next serves one word from the ring, refilling when empty. ok is
// false when the shard is (or just became) unhealthy.
func (s *poolShard) next() (v uint64, ok bool) {
	if s.tripped.Load() {
		return 0, false
	}
	s.mu.Lock()
	if s.tripped.Load() {
		s.mu.Unlock()
		return 0, false
	}
	if s.idx == len(s.buf) {
		s.w.Fill(s.buf)
		s.refills.Add(1)
		if s.monTripped() {
			s.mu.Unlock()
			return 0, false
		}
		s.idx = 0
	}
	v = s.buf[s.idx]
	s.idx++
	s.mu.Unlock()
	s.draws.Add(1)
	return v, true
}

// fill writes len(dst) words straight from the walker (bypassing the
// ring, whose buffered words stay put for Uint64 callers). ok is
// false when the shard is unhealthy — including a trip detected
// *after* generating, in which case dst holds untrusted words the
// caller must overwrite elsewhere.
func (s *poolShard) fill(dst []uint64) bool {
	if s.tripped.Load() {
		return false
	}
	s.mu.Lock()
	if s.tripped.Load() {
		s.mu.Unlock()
		return false
	}
	s.w.Fill(dst)
	if s.monTripped() {
		s.mu.Unlock()
		return false
	}
	s.mu.Unlock()
	s.draws.Add(uint64(len(dst)))
	return true
}

// healthErr returns why the shard was retired, or nil.
func (s *poolShard) healthErr() error {
	if !s.tripped.Load() {
		return nil
	}
	return s.err
}

// buffered returns how many unread words sit in the ring.
func (s *poolShard) buffered() int {
	s.mu.Lock()
	n := len(s.buf) - s.idx
	s.mu.Unlock()
	return n
}

// Uint64 returns the next word from a healthy shard. Each call lands
// on a different shard (atomic ticket & mask), so concurrent callers
// spread across the pool instead of convoying on one lock. If the
// chosen shard has tripped the draw falls through to the next
// healthy one; only a fully tripped pool errors.
func (p *Pool) Uint64() (uint64, error) {
	t := p.tickets.Add(1)
	for i := uint64(0); i <= p.mask; i++ {
		if v, ok := p.shards[(t+i)&p.mask].next(); ok {
			return v, nil
		}
	}
	return 0, ErrPoolUnhealthy
}

// Fill writes len(dst) words, splitting large requests across all
// healthy shards concurrently and bypassing the rings. Small
// requests are served from one shard's ring. Any shard that trips
// mid-fill has its segment regenerated by a healthy shard, so on a
// nil return every word in dst is trustworthy.
func (p *Pool) Fill(dst []uint64) error {
	if len(dst) == 0 {
		return nil
	}
	healthy := p.healthyShards()
	if len(healthy) == 0 {
		return ErrPoolUnhealthy
	}
	if len(dst) <= directFillThreshold {
		for i := range dst {
			v, err := p.Uint64()
			if err != nil {
				return err
			}
			dst[i] = v
		}
		return nil
	}
	// Shard the slice across the healthy walkers; don't cut chunks
	// below the direct-fill threshold or goroutine overhead dominates.
	n := len(healthy)
	if max := (len(dst) + directFillThreshold - 1) / directFillThreshold; n > max {
		n = max
	}
	chunk := (len(dst) + n - 1) / n
	var wg sync.WaitGroup
	var failedMu sync.Mutex
	var failed [][]uint64
	for i := 0; i < n; i++ {
		lo := i * chunk
		if lo >= len(dst) {
			break
		}
		hi := lo + chunk
		if hi > len(dst) {
			hi = len(dst)
		}
		wg.Add(1)
		go func(s *poolShard, seg []uint64) {
			defer wg.Done()
			if !s.fill(seg) {
				failedMu.Lock()
				failed = append(failed, seg)
				failedMu.Unlock()
			}
		}(healthy[i%len(healthy)], dst[lo:hi])
	}
	wg.Wait()
	// Regenerate segments whose shard tripped. Trips are rare, so
	// serial retry is fine; each pass either succeeds or shrinks the
	// healthy set, so this terminates.
	for _, seg := range failed {
		if err := p.fillSegment(seg); err != nil {
			return err
		}
	}
	return nil
}

func (p *Pool) fillSegment(seg []uint64) error {
	for {
		healthy := p.healthyShards()
		if len(healthy) == 0 {
			return ErrPoolUnhealthy
		}
		for _, s := range healthy {
			if s.fill(seg) {
				return nil
			}
		}
	}
}

// Read fills b with random bytes (little-endian words), so a Pool
// can stand behind io.Reader plumbing. It draws ⌈len(b)/8⌉ words.
func (p *Pool) Read(b []byte) (int, error) {
	var scratch [512]uint64
	done := 0
	for done < len(b) {
		want := (len(b) - done + 7) / 8
		if want > len(scratch) {
			want = len(scratch)
		}
		if err := p.Fill(scratch[:want]); err != nil {
			return done, err
		}
		for _, v := range scratch[:want] {
			for k := 0; k < 8 && done < len(b); k++ {
				b[done] = byte(v >> (8 * k))
				done++
			}
		}
	}
	return done, nil
}

func (p *Pool) healthyShards() []*poolShard {
	out := make([]*poolShard, 0, len(p.shards))
	for _, s := range p.shards {
		if !s.tripped.Load() {
			out = append(out, s)
		}
	}
	return out
}

// Shards returns the shard count (always a power of two).
func (p *Pool) Shards() int { return len(p.shards) }

// HealthErr returns the first shard's health failure, or nil while
// every shard is healthy. A non-nil result with healthy shards
// remaining means the pool is degraded but still serving; Stats
// distinguishes the two.
func (p *Pool) HealthErr() error {
	for _, s := range p.shards {
		if err := s.healthErr(); err != nil {
			return err
		}
	}
	return nil
}

// InjectFault retires shard i as if its feed health monitor had
// tripped — the fault-injection hook behind operational drills and
// the /healthz degradation tests. It works with or without
// WithHealthMonitoring.
func (p *Pool) InjectFault(i int) error {
	if i < 0 || i >= len(p.shards) {
		return fmt.Errorf("hybridprng: shard %d outside [0, %d)", i, len(p.shards))
	}
	s := p.shards[i]
	if s.mon != nil {
		s.mon.ForceTrip("fault injection")
	}
	s.mu.Lock()
	if s.mon != nil {
		s.monTripped()
	} else {
		s.trip(&bitsource.HealthError{Test: "forced", Detail: "fault injection"})
	}
	s.mu.Unlock()
	return nil
}

// Generated sums the words produced by the shard walkers (including
// words still buffered in rings and words discarded by trips, which
// is why Generated ≥ Stats().Draws).
func (p *Pool) Generated() uint64 {
	var total uint64
	for _, s := range p.shards {
		s.mu.Lock()
		total += s.w.Generated()
		s.mu.Unlock()
	}
	return total
}

// ShardStats describes one shard for monitoring.
type ShardStats struct {
	Draws    uint64 // words served to callers
	Refills  uint64 // ring refills
	Buffered int    // unread words in the ring
	Tripped  bool
	Failure  string // empty until tripped
}

// PoolStats is a point-in-time snapshot for /metrics-style export.
type PoolStats struct {
	Shards      int
	Healthy     int
	BufferWords int    // ring capacity per shard
	Draws       uint64 // total words served
	Refills     uint64 // total ring refills
	HealthTrips uint64 // shards retired
	PerShard    []ShardStats
}

// Stats snapshots the pool. Safe to call concurrently with draws; it
// takes each shard's lock only to read the ring occupancy.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{
		Shards:      len(p.shards),
		BufferWords: len(p.shards[0].buf),
		PerShard:    make([]ShardStats, len(p.shards)),
	}
	for i, s := range p.shards {
		ss := ShardStats{
			Draws:    s.draws.Load(),
			Refills:  s.refills.Load(),
			Buffered: s.buffered(),
			Tripped:  s.tripped.Load(),
		}
		if err := s.healthErr(); err != nil {
			ss.Failure = err.Error()
		}
		st.Draws += ss.Draws
		st.Refills += ss.Refills
		if ss.Tripped {
			st.HealthTrips++
		} else {
			st.Healthy++
		}
		st.PerShard[i] = ss
	}
	return st
}
