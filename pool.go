package hybridprng

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/wordbytes"
)

// Pool is the serving-layer generator: a sharded, contention-free
// pool of expander walkers sized for many concurrent callers. Where
// Parallel hands each goroutine its own Generator (the paper's
// per-thread model), Pool serves *anonymous* traffic — any goroutine
// may call Uint64 or Fill at any time, which is the paper's
// "on-demand" property pushed up to a service boundary.
//
// Internally each shard owns one walker, one feed stream, an
// optional SP 800-90B health monitor and a small ring buffer of
// pre-generated words. A draw picks a shard by advancing an atomic
// ticket and masking (shard counts are powers of two), takes the
// shard's lock, and serves from the ring; the ring is refilled a
// batch at a time so the lock and the health check amortise over
// ShardBuffer draws. Distinct shards never contend with each other.
//
// # Self-healing
//
// A shard whose feed monitor trips is not lost forever; it moves
// through a supervised recovery state machine:
//
//	healthy ──trip──▶ quarantined ──backoff elapsed──▶ probation
//	   ▲                   ▲                               │
//	   │                   └───────monitor trips───────────┤
//	   └───────────────clean probation window──────────────┘
//
// Quarantine discards the shard's buffered words (SP 800-90B says
// output after a failure must not be trusted) and waits out an
// exponential backoff with deterministic jitter. When the backoff
// elapses the shard is reseeded — a fresh feed seed and the full
// Algorithm 1 initialisation (random start vertex plus the mixing
// walk) — and enters probation, where it generates and health-checks
// words that are discarded, never served. A clean probation window
// readmits the shard; a trip during probation re-quarantines it with
// a longer backoff. After RecoveryPolicy.MaxTrips trips the shard is
// retired for real. Recovery work is driven lazily by draw traffic
// (no background goroutine), so an idle pool does no work and a Pool
// needs no Close.
//
// When every shard is out of service, draws fail with
// ErrPoolUnhealthy until a quarantined shard recovers. HealthErr and
// Stats expose the degraded state for /healthz-style probes.
//
// A Pool is checkpointable: MarshalBinary/UnmarshalBinary (state.go)
// capture every shard's walker, monitor, ring residue and recovery
// state (trips, remaining backoff, probation progress) plus the
// ticket counter, so a restored pool resumes the exact streams — a
// snapshot taken mid-recovery recovers along the identical path.
const (
	maxShards      = 1 << 12
	maxShardBuffer = 1 << 20

	// defaultShardBuffer is the ring size in words: big enough that
	// the shard lock is a small fraction of the walk cost, small
	// enough that a tripped shard discards little work.
	defaultShardBuffer = 256

	// directFillThreshold is the Fill size (in words per healthy
	// shard) above which Fill bypasses the rings and writes straight
	// from the walkers into the caller's slice.
	directFillThreshold = 64

	// probationChunk bounds the probation words generated per draw
	// visit, so recovery work never adds more than ~one ring refill
	// of latency to the caller that happens to drive it.
	probationChunk = 512

	// gangScanWindow is how many neighbouring shards a ring refill
	// inspects when assembling a gang (see poolShard.refillRingLocked):
	// wide enough to find MaxBatchLanes-1 drained companions even when
	// some neighbours are busy or full, narrow enough that the scan
	// stays cheap.
	gangScanWindow = 2 * core.MaxBatchLanes

	// maxFillShards caps how many shards one Fill call stripes across.
	// It bounds the stack-allocated lane bookkeeping so the steady
	// bulk-fill path performs zero heap allocations; 64 shards is far
	// past the point where striping wider stops helping.
	maxFillShards = 64
)

// ErrPoolUnhealthy is returned by Pool draws when no shard is
// currently serving — every shard is quarantined, in probation or
// retired: no trustworthy randomness is available right now.
var ErrPoolUnhealthy = errors.New("hybridprng: no pool shard is currently healthy")

// shardState is the recovery state machine's state.
type shardState uint32

const (
	shardHealthy     shardState = iota // serving
	shardQuarantined                   // tripped; waiting out backoff
	shardProbation                     // reseeded; output checked but discarded
	shardRetired                       // permanently out of service
)

func (s shardState) String() string {
	switch s {
	case shardHealthy:
		return "healthy"
	case shardQuarantined:
		return "quarantined"
	case shardProbation:
		return "probation"
	case shardRetired:
		return "retired"
	}
	return fmt.Sprintf("state(%d)", uint32(s))
}

// RecoveryPolicy tunes the pool's shard self-healing. The zero value
// of each field means its default; the zero policy as a whole is the
// default policy.
type RecoveryPolicy struct {
	// Disabled restores the legacy behaviour: a tripped shard is
	// retired permanently on its first trip.
	Disabled bool
	// QuarantineBase is the backoff before the first reseed attempt
	// (default 30s). Each subsequent trip multiplies the backoff by
	// BackoffFactor (default 2) up to QuarantineMax (default 10m).
	QuarantineBase time.Duration
	BackoffFactor  float64
	QuarantineMax  time.Duration
	// JitterFrac spreads each backoff uniformly over ±JitterFrac of
	// its nominal value (default 0.2) so shards tripped together do
	// not reseed in lockstep. The jitter is derived deterministically
	// from the shard's reseed base, so a fixed-seed pool recovers
	// reproducibly.
	JitterFrac float64
	// ProbationWords is the number of reseeded words generated,
	// health-checked and discarded before a shard is readmitted
	// (default 4096).
	ProbationWords int
	// MaxTrips is the total number of trips a shard is allowed
	// before it is retired for real (default 6).
	MaxTrips int
}

const (
	defaultQuarantineBase = 30 * time.Second
	defaultBackoffFactor  = 2.0
	defaultQuarantineMax  = 10 * time.Minute
	defaultJitterFrac     = 0.2
	defaultProbationWords = 4096
	defaultMaxTrips       = 6
)

func (p RecoveryPolicy) validate() error {
	if p.QuarantineBase < 0 {
		return fmt.Errorf("hybridprng: negative quarantine base %v", p.QuarantineBase)
	}
	if p.QuarantineMax < 0 {
		return fmt.Errorf("hybridprng: negative quarantine cap %v", p.QuarantineMax)
	}
	if p.BackoffFactor != 0 && p.BackoffFactor < 1 {
		return fmt.Errorf("hybridprng: backoff factor %g < 1", p.BackoffFactor)
	}
	if p.JitterFrac < 0 || p.JitterFrac >= 1 {
		return fmt.Errorf("hybridprng: jitter fraction %g outside [0, 1)", p.JitterFrac)
	}
	if p.ProbationWords < 0 {
		return fmt.Errorf("hybridprng: negative probation window %d", p.ProbationWords)
	}
	if p.MaxTrips < 0 {
		return fmt.Errorf("hybridprng: negative trip budget %d", p.MaxTrips)
	}
	return nil
}

func (p RecoveryPolicy) withDefaults() RecoveryPolicy {
	if p.QuarantineBase == 0 {
		p.QuarantineBase = defaultQuarantineBase
	}
	if p.BackoffFactor == 0 {
		p.BackoffFactor = defaultBackoffFactor
	}
	if p.QuarantineMax == 0 {
		p.QuarantineMax = defaultQuarantineMax
	}
	if p.QuarantineMax < p.QuarantineBase {
		p.QuarantineMax = p.QuarantineBase
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = defaultJitterFrac
	}
	if p.ProbationWords == 0 {
		p.ProbationWords = defaultProbationWords
	}
	if p.MaxTrips == 0 {
		p.MaxTrips = defaultMaxTrips
	}
	return p
}

// backoff returns the quarantine duration after the trips-th trip.
// The jitter is a pure function of (seed, trips), so recovery
// timelines are reproducible for a fixed-seed pool.
func (p RecoveryPolicy) backoff(trips uint32, seed uint64) time.Duration {
	d := float64(p.QuarantineBase)
	for i := uint32(1); i < trips && d < float64(p.QuarantineMax); i++ {
		d *= p.BackoffFactor
	}
	if d > float64(p.QuarantineMax) {
		d = float64(p.QuarantineMax)
	}
	if p.JitterFrac > 0 {
		u := float64(baselines.Mix64(seed^uint64(trips)*0x9E3779B97F4A7C15)) / (1 << 64)
		d *= 1 + p.JitterFrac*(2*u-1)
	}
	return time.Duration(d)
}

// Pool is safe for concurrent use by any number of goroutines.
type Pool struct {
	shards  []*poolShard
	mask    uint64
	tickets atomic.Uint64
	policy  RecoveryPolicy
	now     func() time.Time

	tripEvents atomic.Uint64 // cumulative health trips
	recoveries atomic.Uint64 // shards readmitted from probation
}

// poolShard is one walker behind a lock with a ring of pre-generated
// words. state and err are atomic so the hot path of *other* shards
// and the health probes never take this shard's lock.
type poolShard struct {
	mu    sync.Mutex
	w     *core.Walker
	mon   *bitsource.Monitor // nil unless WithHealthMonitoring
	buf   []uint64
	idx   int // next unread index in buf; len(buf) = empty
	err   atomic.Pointer[bitsource.HealthError]
	state atomic.Uint32 // shardState

	draws   atomic.Uint64 // words served to callers
	refills atomic.Uint64 // ring refills performed
	trips   atomic.Uint32 // health trips so far

	// Recovery state, guarded by mu.
	until    time.Time // quarantine deadline
	probLeft int       // probation words still to discard

	pool       *Pool
	index      int
	reseedBase uint64                           // deterministic reseed/jitter seed
	wrap       func(int, rng.Source) rng.Source // feed wrapper (chaos); nil normally
}

// NewPool builds a sharded pool. The shard count (WithShards,
// default: next power of two ≥ GOMAXPROCS) is rounded up to a power
// of two; each shard's feed seed is derived from the pool seed and
// the shard index exactly as NewParallel derives worker seeds, so a
// Pool and a Parallel with the same options own the same streams.
func NewPool(opts ...Option) (*Pool, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	n := c.shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n = nextPow2(n)
	bufWords := c.shardBuffer
	if bufWords == 0 {
		bufWords = defaultShardBuffer
	}
	p := &Pool{
		shards: make([]*poolShard, n),
		mask:   uint64(n - 1),
		policy: c.recovery.withDefaults(),
		now:    c.now,
	}
	if p.now == nil {
		p.now = time.Now //lint:wallclock default when WithClock was not used; the injection point IS WithClock
	}
	for i := range p.shards {
		br, mon, err := c.bits(i)
		if err != nil {
			return nil, err
		}
		w, err := core.NewWalker(br, c.coreConfig())
		if err != nil {
			return nil, fmt.Errorf("hybridprng: pool shard %d: %w", i, err)
		}
		buf := make([]uint64, bufWords)
		p.shards[i] = &poolShard{
			w: w, mon: mon, buf: buf, idx: len(buf),
			pool: p, index: i,
			reseedBase: reseedBase(c.seed, i),
			wrap:       c.feedWrap,
		}
	}
	return p, nil
}

// reseedBase derives the per-shard seed that parameterises recovery
// reseeds and backoff jitter. It is a pure function of the pool seed
// and the shard index so fixed-seed pools recover reproducibly.
func reseedBase(poolSeed uint64, shard int) uint64 {
	return baselines.Mix64(poolSeed ^ (uint64(shard)+1)*0x9E3779B97F4A7C15 ^ 0x517CC1B727220A95)
}

// SetClock replaces the time source the quarantine backoff reads
// (default time.Now; see WithClock). It exists so a pool restored
// from a snapshot can be driven by a manual clock in tests and in
// the chaos harness; call it before serving traffic — it is not
// synchronised with concurrent draws.
func (p *Pool) SetClock(now func() time.Time) {
	if now != nil {
		p.now = now
	}
}

func nextPow2(n int) int {
	if n < 1 {
		return 1
	}
	if n > maxShards {
		return maxShards
	}
	return 1 << bits.Len(uint(n-1))
}

// tripLocked records a health failure and moves the shard to
// quarantined (or retired, when the trip budget is spent or recovery
// is disabled). Must be called with s.mu held; the error is
// published before the state so concurrent healthErr readers that
// observe the trip always see the cause. No-op unless the shard is
// currently healthy or in probation.
func (s *poolShard) tripLocked(e *bitsource.HealthError) {
	switch shardState(s.state.Load()) {
	case shardHealthy, shardProbation:
	default:
		return
	}
	s.err.Store(e)
	s.idx = len(s.buf) // discard untrusted residue
	trips := s.trips.Add(1)
	s.pool.tripEvents.Add(1)
	pol := s.pool.policy
	if pol.Disabled || int(trips) >= pol.MaxTrips {
		s.state.Store(uint32(shardRetired))
		return
	}
	s.until = s.pool.now().Add(pol.backoff(trips, s.reseedBase))
	s.state.Store(uint32(shardQuarantined))
}

// retireLocked takes the shard out of service permanently (reseed
// machinery failures, not health trips).
func (s *poolShard) retireLocked(e *bitsource.HealthError) {
	s.err.Store(e)
	s.idx = len(s.buf)
	s.state.Store(uint32(shardRetired))
}

// monTripped reports (and latches) a monitor failure after a refill.
// Must be called with s.mu held.
func (s *poolShard) monTripped() bool {
	if s.mon == nil || !s.mon.Tripped() {
		return false
	}
	if he, ok := s.mon.Err().(*bitsource.HealthError); ok {
		s.tripLocked(he)
	} else {
		s.tripLocked(&bitsource.HealthError{Test: "monitor", Detail: s.mon.Err().Error()})
	}
	return true
}

// advance drives the shard's recovery state machine by one bounded
// step: a quarantined shard past its deadline is reseeded into
// probation; a probation shard generates and discards (at most) one
// probation chunk. Called from draw paths when they encounter a
// non-serving shard; TryLock keeps concurrent callers from convoying
// on a recovering shard.
func (s *poolShard) advance() {
	switch shardState(s.state.Load()) {
	case shardQuarantined, shardProbation:
	default:
		return
	}
	if !s.mu.TryLock() {
		return
	}
	defer s.mu.Unlock()
	switch shardState(s.state.Load()) {
	case shardQuarantined:
		if !s.pool.now().Before(s.until) {
			s.reseedLocked()
		}
	case shardProbation:
		s.probeLocked()
	}
}

// reseedLocked rebuilds the shard's generator stack from a fresh,
// deterministically derived feed seed — new feed, re-armed monitor
// (same calibration, clean counters) and the full Algorithm 1
// initialisation walk — and moves the shard to probation. Must be
// called with s.mu held.
func (s *poolShard) reseedLocked() {
	seed := baselines.Mix64(s.reseedBase + uint64(s.trips.Load())*0x9E3779B97F4A7C15)
	base := s.w.Bits().Source()
	if s.mon != nil {
		base = s.mon.Source()
	}
	// Peel fault-injection wrappers (chaos) down to the typed feed.
	for {
		u, ok := base.(interface{ Unwrap() rng.Source })
		if !ok {
			break
		}
		base = u.Unwrap()
	}
	fresh, err := freshFeedLike(base, seed)
	if err != nil {
		s.retireLocked(&bitsource.HealthError{Test: "reseed", Detail: err.Error()})
		return
	}
	if s.wrap != nil {
		if wrapped := s.wrap(s.index, fresh); wrapped != nil {
			fresh = wrapped
		}
	}
	var reader rng.Source = fresh
	var mon *bitsource.Monitor
	if s.mon != nil {
		if mon, err = s.mon.Rearm(fresh); err != nil {
			s.retireLocked(&bitsource.HealthError{Test: "reseed", Detail: err.Error()})
			return
		}
		reader = mon
	}
	w, err := core.NewWalker(rng.NewBitReader(reader), s.w.Config())
	if err != nil {
		s.retireLocked(&bitsource.HealthError{Test: "reseed", Detail: err.Error()})
		return
	}
	s.w, s.mon = w, mon
	s.probLeft = s.pool.policy.ProbationWords
	s.state.Store(uint32(shardProbation))
	// Algorithm 1's initialisation walk already pulled feed bits
	// through the re-armed monitor; a persistent fault trips here and
	// sends the shard straight back to quarantine.
	s.monTripped()
}

// freshFeedLike builds a new instance of the same feed generator
// type as old, seeded with seed.
func freshFeedLike(old rng.Source, seed uint64) (rng.Source, error) {
	switch old.(type) {
	case *baselines.GlibcRand:
		return baselines.NewGlibcRand(uint32(seed)), nil
	case *baselines.ANSIC:
		return baselines.NewANSIC(uint32(seed)), nil
	case *baselines.SplitMix64:
		return baselines.NewSplitMix64(seed), nil
	}
	if s, ok := old.(rng.Seeder); ok {
		s.Seed(seed)
		return old, nil
	}
	return nil, fmt.Errorf("hybridprng: feed %T cannot be reseeded", old)
}

// probeLocked runs one probation step: generate up to probationChunk
// words through the reseeded stack, health-check and discard them.
// An empty probation balance readmits the shard. Must be called with
// s.mu held.
func (s *poolShard) probeLocked() {
	n := s.probLeft
	if n > probationChunk {
		n = probationChunk
	}
	for left := n; left > 0; {
		k := left
		if k > len(s.buf) {
			k = len(s.buf)
		}
		s.w.Fill(s.buf[:k]) // scratch: the ring is empty during probation
		left -= k
	}
	s.idx = len(s.buf)
	if s.monTripped() {
		return
	}
	s.probLeft -= n
	if s.probLeft <= 0 {
		s.err.Store(nil)
		s.state.Store(uint32(shardHealthy))
		s.pool.recoveries.Add(1)
	}
}

// next serves one word from the ring, refilling when empty. ok is
// false when the shard is not serving (or just tripped).
func (s *poolShard) next() (v uint64, ok bool) {
	if shardState(s.state.Load()) != shardHealthy {
		return 0, false
	}
	s.mu.Lock()
	if shardState(s.state.Load()) != shardHealthy {
		s.mu.Unlock()
		return 0, false
	}
	if s.idx == len(s.buf) {
		s.refillRingLocked()
		if s.monTripped() {
			s.mu.Unlock()
			return 0, false
		}
		s.idx = 0
	}
	v = s.buf[s.idx]
	s.idx++
	s.mu.Unlock()
	s.draws.Add(1)
	return v, true
}

// refillRingLocked refills s's empty ring and, in the same batched
// lockstep sweep (core.FillBatch), opportunistically tops up the
// rings of neighbouring healthy shards that have drained at least
// half — a "gang refill". Under uniform ticket traffic all rings
// drain at the same rate, so the shard that happens to empty first
// pays one batched sweep that refills the whole neighbourhood at
// batched-kernel throughput instead of each shard paying a scalar
// refill of its own.
//
// Stream contents are unaffected: a ring always holds the next words
// of its own walker's stream, so topping a ring up early changes only
// *when* the words are generated, never which words any caller
// observes. Gang members are acquired with TryLock while s.mu is
// held, so the refill can never deadlock and never convoys behind a
// busy neighbour.
//
// Must be called with s.mu held and s's ring empty. The caller
// remains responsible for s's own monTripped check and idx reset;
// gang members are checked, published and unlocked here.
func (s *poolShard) refillRingLocked() {
	var (
		ws   [core.MaxBatchLanes]*core.Walker
		segs [core.MaxBatchLanes][]uint64
		gang [core.MaxBatchLanes]*poolShard
	)
	ws[0], segs[0] = s.w, s.buf
	n := 1
	p := s.pool
	if scan := uint64(gangScanWindow); p.mask > 0 {
		if scan > p.mask {
			scan = p.mask // all other shards; off ≤ mask never aliases s
		}
		for off := uint64(1); off <= scan && n < core.MaxBatchLanes; off++ {
			t := p.shards[(uint64(s.index)+off)&p.mask]
			if shardState(t.state.Load()) != shardHealthy || !t.mu.TryLock() {
				continue
			}
			if shardState(t.state.Load()) != shardHealthy ||
				(len(t.buf)-t.idx)*2 > len(t.buf) {
				t.mu.Unlock()
				continue
			}
			// Compact the unread residue to the front; the batched
			// sweep appends the walker's next words right after it, so
			// the ring still serves the stream in order.
			residue := copy(t.buf, t.buf[t.idx:])
			ws[n], segs[n], gang[n] = t.w, t.buf[residue:], t
			n++
		}
	}
	core.FillBatch(ws[:n], segs[:n])
	s.refills.Add(1)
	for i := 1; i < n; i++ {
		t := gang[i]
		t.refills.Add(1)
		if !t.monTripped() { // tripLocked discards the untrusted ring
			t.idx = 0
		}
		t.mu.Unlock()
	}
}

// fill writes len(dst) words straight from the walker (bypassing the
// ring, whose buffered words stay put for Uint64 callers). ok is
// false when the shard is not serving — including a trip detected
// *after* generating, in which case dst holds untrusted words the
// caller must overwrite or zero.
func (s *poolShard) fill(dst []uint64) bool {
	if shardState(s.state.Load()) != shardHealthy {
		return false
	}
	s.mu.Lock()
	if shardState(s.state.Load()) != shardHealthy {
		s.mu.Unlock()
		return false
	}
	s.w.Fill(dst)
	if s.monTripped() {
		s.mu.Unlock()
		return false
	}
	s.mu.Unlock()
	s.draws.Add(uint64(len(dst)))
	return true
}

// healthErr returns why the shard is out of service, or nil.
func (s *poolShard) healthErr() error {
	if shardState(s.state.Load()) == shardHealthy {
		return nil
	}
	if e := s.err.Load(); e != nil {
		return e
	}
	return nil
}

// lockedStats reads the mu-guarded recovery fields for Stats.
func (s *poolShard) lockedStats(now time.Time) (buffered int, retryIn time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buffered = len(s.buf) - s.idx
	if shardState(s.state.Load()) == shardQuarantined {
		if d := s.until.Sub(now); d > 0 {
			retryIn = d
		}
	}
	return buffered, retryIn
}

// Uint64 returns the next word from a healthy shard. Each call lands
// on a different shard (atomic ticket & mask), so concurrent callers
// spread across the pool instead of convoying on one lock. A draw
// that lands on a recovering shard advances its state machine one
// bounded step and falls through to the next healthy shard; only a
// pool with no serving shard errors.
func (p *Pool) Uint64() (uint64, error) {
	t := p.tickets.Add(1)
	for i := uint64(0); i <= p.mask; i++ {
		s := p.shards[(t+i)&p.mask]
		if v, ok := s.next(); ok {
			return v, nil
		}
		s.advance()
	}
	return 0, ErrPoolUnhealthy
}

// Fill writes len(dst) words, splitting large requests across
// healthy shards and bypassing the rings: the participating shards
// are swept by the batched lockstep kernel (core.FillBatch) in
// groups of up to MaxBatchLanes, so a bulk fill costs one pipelined
// sweep per group rather than a scalar walk per shard. Small
// requests are served from the shard rings. The steady large path
// performs no heap allocations. Any shard that trips mid-fill has
// its segment regenerated by a healthy shard, so on a nil return
// every word in dst is trustworthy. On a non-nil error dst is zeroed
// in full — callers can never consume stale or untrusted buffer
// contents as randomness.
func (p *Pool) Fill(dst []uint64) error {
	if len(dst) == 0 {
		return nil
	}
	p.sweep()
	if len(dst) <= directFillThreshold {
		for i := range dst {
			v, err := p.Uint64()
			if err != nil {
				zeroWords(dst)
				return err
			}
			dst[i] = v
		}
		return nil
	}
	// Stripe the slice across healthy shards (ascending index, capped
	// at maxFillShards so the lane bookkeeping lives on the stack);
	// don't cut chunks below the direct-fill threshold or per-lane
	// overhead dominates.
	var laneArr [maxFillShards]*poolShard
	lanes := laneArr[:0]
	for _, s := range p.shards {
		if shardState(s.state.Load()) == shardHealthy {
			lanes = append(lanes, s)
			if len(lanes) == maxFillShards {
				break
			}
		}
	}
	if len(lanes) == 0 {
		zeroWords(dst)
		return ErrPoolUnhealthy
	}
	n := len(lanes)
	if max := (len(dst) + directFillThreshold - 1) / directFillThreshold; n > max {
		n = max
	}
	chunk := (len(dst) + n - 1) / n
	var segArr [maxFillShards][]uint64
	used := 0
	for i := 0; i < n; i++ {
		lo := i * chunk
		if lo >= len(dst) {
			break
		}
		hi := lo + chunk
		if hi > len(dst) {
			hi = len(dst)
		}
		segArr[used] = dst[lo:hi]
		used++
	}
	// One batched sweep per group of MaxBatchLanes consecutive lanes.
	// Groups run serially on a single-core host (no goroutine or
	// allocation overhead — the lane bookkeeping above never escapes);
	// with spare cores each group gets its own goroutine, matching the
	// old one-goroutine-per-segment spread.
	var failed [][]uint64
	if used <= core.MaxBatchLanes || runtime.GOMAXPROCS(0) == 1 {
		for g := 0; g < used; g += core.MaxBatchLanes {
			hi := g + core.MaxBatchLanes
			if hi > used {
				hi = used
			}
			failed = append(failed, fillShardGroup(lanes[g:hi], segArr[g:hi])...)
		}
	} else {
		failed = fillShardGroupsParallel(lanes[:used], segArr[:used])
	}
	// Regenerate segments whose shard tripped or turned unhealthy.
	// Trips are rare, so serial retry is fine; each pass either
	// succeeds or shrinks the healthy set, so this terminates.
	for _, seg := range failed {
		if err := p.fillSegment(seg); err != nil {
			zeroWords(dst)
			return err
		}
	}
	return nil
}

// fillShardGroupsParallel runs one goroutine per MaxBatchLanes group
// of lanes. It copies the lane bookkeeping to the heap itself, so
// Fill's stack arrays never escape and the (far more common) serial
// path stays allocation-free.
func fillShardGroupsParallel(lanes []*poolShard, segs [][]uint64) [][]uint64 {
	ls := append([]*poolShard(nil), lanes...)
	ss := append([][]uint64(nil), segs...)
	var wg sync.WaitGroup
	var failedMu sync.Mutex
	var failed [][]uint64
	for g := 0; g < len(ls); g += core.MaxBatchLanes {
		hi := g + core.MaxBatchLanes
		if hi > len(ls) {
			hi = len(ls)
		}
		wg.Add(1)
		go func(ss []*poolShard, segs [][]uint64) {
			defer wg.Done()
			if f := fillShardGroup(ss, segs); len(f) > 0 {
				failedMu.Lock()
				failed = append(failed, f...)
				failedMu.Unlock()
			}
		}(ls[g:hi], ss[g:hi])
	}
	wg.Wait()
	return failed
}

// fillShardGroup locks up to MaxBatchLanes shards (in ascending
// index order — every Fill group locks ascending, so concurrent
// bulk fills cannot deadlock), sweeps their segments with the
// batched kernel, and returns the segments that must be regenerated
// because their shard was no longer healthy or tripped mid-sweep.
// The happy path allocates nothing.
func fillShardGroup(shards []*poolShard, segs [][]uint64) (failed [][]uint64) {
	var (
		ws     [core.MaxBatchLanes]*core.Walker
		ds     [core.MaxBatchLanes][]uint64
		locked [core.MaxBatchLanes]*poolShard
	)
	n := 0
	for i, s := range shards {
		//lint:ignore lockorder ascending shard-index order: every group sorts before locking, so sweeps can never meet in opposite orders
		s.mu.Lock()
		if shardState(s.state.Load()) != shardHealthy {
			s.mu.Unlock()
			failed = append(failed, segs[i])
			continue
		}
		ws[n], ds[n], locked[n] = s.w, segs[i], s
		n++
	}
	core.FillBatch(ws[:n], ds[:n])
	for i := 0; i < n; i++ {
		s := locked[i]
		tripped := s.monTripped()
		s.mu.Unlock()
		if tripped {
			// The lane's words came through a feed that failed its
			// health tests; hand the segment back for regeneration.
			failed = append(failed, ds[i])
		} else {
			s.draws.Add(uint64(len(ds[i])))
		}
	}
	return failed
}

func zeroWords(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
}

func (p *Pool) fillSegment(seg []uint64) error {
	for {
		healthy := p.healthyShards()
		if len(healthy) == 0 {
			return ErrPoolUnhealthy
		}
		for _, s := range healthy {
			if s.fill(seg) {
				return nil
			}
		}
	}
}

// Read fills b with random bytes (little-endian words), so a Pool
// can stand behind io.Reader plumbing. It draws ⌈len(b)/8⌉ words.
// On error it returns how many bytes were written; those bytes are
// valid served randomness, and the unfilled tail b[n:] is zeroed so
// no stale buffer contents can be mistaken for output.
func (p *Pool) Read(b []byte) (int, error) {
	var scratch [512]uint64
	done := 0
	for done < len(b) {
		want := (len(b) - done + 7) / 8
		if want > len(scratch) {
			want = len(scratch)
		}
		if err := p.Fill(scratch[:want]); err != nil {
			for i := done; i < len(b); i++ {
				b[i] = 0
			}
			return done, err
		}
		for _, v := range scratch[:want] {
			for k := 0; k < 8 && done < len(b); k++ {
				b[done] = byte(v >> (8 * k))
				done++
			}
		}
	}
	return done, nil
}

// FillBytes fills b with random bytes (little-endian words, the same
// stream layout as Read). On little-endian hosts, when b's word-
// aligned prefix permits it, the words are generated directly into b
// with no intermediate copy — this is the zero-allocation path the
// server's /bytes handler rides. On a non-nil error b is zeroed in
// full, so a reused response buffer can never leak a previous
// response's bytes through a failed fill.
func (p *Pool) FillBytes(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	nw := len(b) / 8
	if w := wordbytes.Words(b[:nw*8]); w != nil {
		if err := p.Fill(w); err != nil {
			zeroBytes(b)
			return err
		}
		if tail := b[nw*8:]; len(tail) > 0 {
			var one [1]uint64
			if err := p.Fill(one[:]); err != nil {
				zeroBytes(b)
				return err
			}
			for i := range tail {
				tail[i] = byte(one[0] >> (8 * i))
			}
		}
		return nil
	}
	// Unaligned buffer or big-endian host: copy through Read.
	if _, err := p.Read(b); err != nil {
		// Read zeroes only the unwritten tail; FillBytes promises a
		// fully zeroed buffer on error.
		zeroBytes(b)
		return err
	}
	return nil
}

func zeroBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// sweep advances every recovering shard's state machine one bounded
// step. Cheap when nothing is recovering (one atomic load per
// shard); called from Fill so recovery makes progress under batch
// traffic even when tickets never land on the sick shard.
func (p *Pool) sweep() {
	for _, s := range p.shards {
		s.advance()
	}
}

func (p *Pool) healthyShards() []*poolShard {
	out := make([]*poolShard, 0, len(p.shards))
	for _, s := range p.shards {
		if shardState(s.state.Load()) == shardHealthy {
			out = append(out, s)
		}
	}
	return out
}

// Shards returns the shard count (always a power of two).
func (p *Pool) Shards() int { return len(p.shards) }

// ShardFill writes len(dst) words drawn from shard i alone — the
// audit probe the cross-stream battery (internal/crossstream) uses to
// treat each shard as its own stream. Unlike Fill, nothing is striped
// across shards and no failover happens: if shard i is not serving,
// dst is zeroed and the shard's health error is returned. The ring's
// buffered words stay put for Uint64 callers; ShardFill draws
// straight from the walker, so it observes the same stream Fill-style
// bulk callers would.
func (p *Pool) ShardFill(i int, dst []uint64) error {
	if i < 0 || i >= len(p.shards) {
		zeroWords(dst)
		return fmt.Errorf("hybridprng: shard %d outside [0, %d)", i, len(p.shards))
	}
	s := p.shards[i]
	if s.fill(dst) {
		return nil
	}
	zeroWords(dst)
	if err := s.healthErr(); err != nil {
		return fmt.Errorf("hybridprng: shard %d not serving: %w", i, err)
	}
	return fmt.Errorf("hybridprng: shard %d not serving", i)
}

// Health cheaply reports how many shards are currently serving out of
// the total — one atomic load per shard, no locks — so per-request
// paths (the server stamps X-Pool-Degraded on every draw response)
// can consult pool health without paying for a full Stats snapshot.
func (p *Pool) Health() (healthy, total int) {
	for _, s := range p.shards {
		if shardState(s.state.Load()) == shardHealthy {
			healthy++
		}
	}
	return healthy, len(p.shards)
}

// HealthErr returns the first out-of-service shard's failure, or nil
// while every shard is healthy. A non-nil result with healthy shards
// remaining means the pool is degraded but still serving; Stats
// distinguishes the two.
func (p *Pool) HealthErr() error {
	for _, s := range p.shards {
		if err := s.healthErr(); err != nil {
			return err
		}
	}
	return nil
}

// InjectFault trips shard i as if its feed health monitor had failed
// — the fault-injection hook behind operational drills and the
// /healthz degradation tests. The shard enters quarantine and
// recovers through the normal state machine (or is retired when
// recovery is disabled or its trip budget is spent). It works with
// or without WithHealthMonitoring. Injecting a fault into a shard
// already quarantined or retired is a no-op.
func (p *Pool) InjectFault(i int) error {
	if i < 0 || i >= len(p.shards) {
		return fmt.Errorf("hybridprng: shard %d outside [0, %d)", i, len(p.shards))
	}
	s := p.shards[i]
	if s.mon != nil {
		s.mon.ForceTrip("fault injection")
	}
	s.mu.Lock()
	if s.mon != nil {
		s.monTripped()
	} else {
		s.tripLocked(&bitsource.HealthError{Test: "forced", Detail: "fault injection"})
	}
	s.mu.Unlock()
	return nil
}

// Generated sums the words produced by the shard walkers (including
// words still buffered in rings and words discarded by trips or
// probation, which is why Generated ≥ Stats().Draws).
func (p *Pool) Generated() uint64 {
	var total uint64
	for _, s := range p.shards {
		s.mu.Lock()
		total += s.w.Generated()
		s.mu.Unlock()
	}
	return total
}

// ShardStats describes one shard for monitoring.
type ShardStats struct {
	Draws    uint64        // words served to callers
	Refills  uint64        // ring refills
	Buffered int           // unread words in the ring
	State    string        // healthy / quarantined / probation / retired
	Tripped  bool          // state != healthy
	Trips    uint32        // health trips so far
	RetryIn  time.Duration // remaining quarantine backoff (0 unless quarantined)
	Failure  string        // last failure; empty while healthy
}

// PoolStats is a point-in-time snapshot for /metrics-style export.
type PoolStats struct {
	Shards      int
	Healthy     int
	Quarantined int
	Probation   int
	Retired     int
	BufferWords int    // ring capacity per shard
	Draws       uint64 // total words served
	Refills     uint64 // total ring refills
	HealthTrips uint64 // cumulative health-trip events
	Recoveries  uint64 // shards readmitted after probation
	PerShard    []ShardStats
}

// Stats snapshots the pool. Safe to call concurrently with draws; it
// takes each shard's lock only to read the ring occupancy and the
// quarantine deadline.
func (p *Pool) Stats() PoolStats {
	now := p.now()
	st := PoolStats{
		Shards:      len(p.shards),
		BufferWords: len(p.shards[0].buf),
		HealthTrips: p.tripEvents.Load(),
		Recoveries:  p.recoveries.Load(),
		PerShard:    make([]ShardStats, len(p.shards)),
	}
	for i, s := range p.shards {
		state := shardState(s.state.Load())
		buffered, retryIn := s.lockedStats(now)
		ss := ShardStats{
			Draws:    s.draws.Load(),
			Refills:  s.refills.Load(),
			Buffered: buffered,
			State:    state.String(),
			Tripped:  state != shardHealthy,
			Trips:    s.trips.Load(),
			RetryIn:  retryIn,
		}
		if err := s.healthErr(); err != nil {
			ss.Failure = err.Error()
		}
		st.Draws += ss.Draws
		st.Refills += ss.Refills
		switch state {
		case shardHealthy:
			st.Healthy++
		case shardQuarantined:
			st.Quarantined++
		case shardProbation:
			st.Probation++
		case shardRetired:
			st.Retired++
		}
		st.PerShard[i] = ss
	}
	return st
}
