# Developer convenience targets. CI (.github/workflows/ci.yml) runs
# the same commands; keep the two in sync.

GOPATH_BIN := $(shell go env GOPATH)/bin

.PHONY: build test race lint lint-vet fmt check battery-short battery-long bench-seed

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -short -shuffle=on ./...

## lint: run the hybridlint analyzer suite standalone (fast loop).
lint:
	go run ./cmd/hybridlint ./...

## lint-vet: the exact CI invocation — hybridlint under go vet's
## unit-checker protocol.
lint-vet:
	go install ./cmd/hybridlint
	go vet -vettool="$(GOPATH_BIN)/hybridlint" ./...

fmt:
	gofmt -l .

## battery-short: the per-PR cross-stream battery — 256 streams per
## source under the race detector, the same invocation CI runs.
battery-short:
	go test -run CrossStream -short -race ./...

## battery-long: the scheduled deep battery — thousands of streams,
## long-profile tests plus the standalone JSON verdict reporter.
battery-long:
	go test -run CrossStream -count=1 -timeout 30m ./...
	go run ./cmd/crossstream -long -out BENCH_battery_long.json

## bench-seed: regenerate the committed benchmark/quality
## trajectories (BENCH_quality.json, BENCH_pool.json).
bench-seed:
	go run ./cmd/crossstream -out BENCH_quality.json
	go test -run '^$$' -bench 'BenchmarkPool|BenchmarkGetNextRand' -benchtime 0.5s . \
		| go run ./cmd/benchseed -out BENCH_pool.json

## check: everything a merge gate checks that runs offline.
check: build lint test race
	test -z "$$(gofmt -l .)"
