# Developer convenience targets. CI (.github/workflows/ci.yml) runs
# the same commands; keep the two in sync.

GOPATH_BIN := $(shell go env GOPATH)/bin

.PHONY: build test race lint lint-vet fmt check

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -short -shuffle=on ./...

## lint: run the hybridlint analyzer suite standalone (fast loop).
lint:
	go run ./cmd/hybridlint ./...

## lint-vet: the exact CI invocation — hybridlint under go vet's
## unit-checker protocol.
lint-vet:
	go install ./cmd/hybridlint
	go vet -vettool="$(GOPATH_BIN)/hybridlint" ./...

fmt:
	gofmt -l .

## check: everything a merge gate checks that runs offline.
check: build lint test race
	test -z "$$(gofmt -l .)"
