# Developer convenience targets. CI (.github/workflows/ci.yml) runs
# the same commands; keep the two in sync.

GOPATH_BIN := $(shell go env GOPATH)/bin

.PHONY: build test race race-full lint lint-json lint-vet fmt check battery-short battery-long bench-seed bench-gate fleet-drill substream-test

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -short -shuffle=on -count=2 ./...

## race-full: the complete (non-short) suite under the race detector —
## long batteries, chaos recovery storms and the fleet drill included —
## so the static lock-order/goleak claims are cross-checked on real
## schedules. Slow by design; CI runs it weekly (race-full.yml), run it
## locally before touching lock structure or goroutine lifetimes.
race-full:
	go test -race -shuffle=on -count=1 -timeout 60m ./...
	go test -run Chaos -race -count=3 -timeout 30m ./...

## lint: run the hybridlint analyzer suite standalone (fast loop).
lint:
	go run ./cmd/hybridlint ./...

## lint-json: same run, plus machine-readable findings for artifacts
## and editor tooling.
lint-json:
	go run ./cmd/hybridlint -json ./... > hybridlint.json

## lint-vet: the exact CI invocation — hybridlint under go vet's
## unit-checker protocol.
lint-vet:
	go install ./cmd/hybridlint
	go vet -vettool="$(GOPATH_BIN)/hybridlint" ./...

fmt:
	gofmt -l .

## battery-short: the per-PR cross-stream battery — 256 streams per
## source under the race detector, the same invocation CI runs.
battery-short:
	go test -run CrossStream -short -race ./...

## battery-long: the scheduled deep battery — thousands of streams,
## long-profile tests plus the standalone JSON verdict reporter.
battery-long:
	go test -run CrossStream -count=1 -timeout 30m ./...
	go run ./cmd/crossstream -long -out BENCH_battery_long.json

## bench-seed: regenerate the committed benchmark/quality
## trajectories. The BENCH_*.json files are merge-appended: the fresh
## run becomes the top level and the previous run is pushed onto the
## bounded history list, so the committed file shows the PR-over-PR
## trajectory, not just the latest point. The quality battery
## (parallel + pool + derived substreams) rides the same machinery
## via crossstream -benchtext.
bench-seed:
	go run ./cmd/crossstream -benchtext \
		| go run ./cmd/benchseed -out BENCH_quality.json -merge
	go test -run '^$$' -bench 'BenchmarkPool|BenchmarkGetNextRand' -benchtime 0.5s . \
		| go run ./cmd/benchseed -out BENCH_pool.json -merge
	go test -run '^$$' -bench 'BenchmarkServe' -benchtime 0.5s ./internal/server \
		| go run ./cmd/benchseed -out BENCH_server.json -merge

## bench-gate: run the core/pool/server benchmark families against
## the committed trajectories and fail on regression — any new
## steady-state alloc/op (machine-independent), or >10% ns/op on the
## same cpu as the committed baseline (cross-machine wall-clock is
## noise and is not gated).
bench-gate:
	go test -run '^$$' -bench 'BenchmarkPool|BenchmarkGetNextRand' -benchtime 0.5s . \
		| go run ./cmd/benchseed -gate BENCH_pool.json
	go test -run '^$$' -bench 'BenchmarkServe' -benchtime 0.5s ./internal/server \
		| go run ./cmd/benchseed -gate BENCH_server.json

## substream-test: the per-tenant substream acceptance loop — the
## registry package under the race detector (keyed-draw concurrency
## stress, fakeClock rate limits, golden vectors, state fuzzers' seed
## corpora) plus the keyed server/client drills (kill-resume, drain
## hand-over, 429 metering, Substream handles).
substream-test:
	go test -race -count=1 ./internal/substream
	go test -race -count=1 -run 'Substream|Keyed|NodeState' ./internal/server ./client

## fleet-drill: the control-plane acceptance drill — controller +
## three nodes + SDK client on loopback, seeded kill and a
## stream-preserving drain, repeated under the race detector exactly
## as CI's chaos job runs it.
fleet-drill:
	go test -run Chaos -race -count=3 -v ./internal/fleet

## check: everything a merge gate checks that runs offline.
check: build lint test race
	test -z "$$(gofmt -l .)"
