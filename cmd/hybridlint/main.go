// Command hybridlint runs the repro static-analysis suite (package
// repro/internal/lint): noclock, lockguard, lockorder, goleak,
// marshalsym and zerofill.
//
// Two modes:
//
//	hybridlint ./...                      # standalone, loads via `go list -export`
//	go vet -vettool=$(which hybridlint) ./...   # unit-checker under cmd/go
//
// Standalone mode also takes -json, which prints the findings as a
// JSON array (file/line/col/analyzer/message/marker per element) on
// stdout for CI artifacts and editor tooling; the human lines and
// the exit code are unchanged.
//
// The vettool mode speaks cmd/go's vet protocol: it is invoked once
// per package with a JSON config file argument (*.cfg) naming the
// sources and the export data of every dependency, prints findings
// to stderr, and exits 2 when there are any. Facts are not used, so
// the mandated .vetx output file is always empty.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybridlint: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("hybridlint", flag.ContinueOnError)
	version := fs.String("V", "", "print version and exit (cmd/go protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go protocol)")
	jsonOut := fs.Bool("json", false, "also print findings as a JSON array on stdout (standalone mode)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	switch {
	case *version != "":
		return 0, printVersion(*version)
	case *printFlags:
		// No tool-specific flags; cmd/go wants a JSON array.
		fmt.Println("[]")
		return 0, nil
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"."}
	}
	return runStandalone(rest, *jsonOut)
}

// printVersion answers -V=full with the self-hash line cmd/go uses
// as the vet tool's cache key.
func printVersion(mode string) error {
	if mode != "full" {
		fmt.Println("hybridlint version devel")
		return nil
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("hybridlint version devel buildID=%x\n", h.Sum(nil))
	return nil
}

// jsonDiag is one finding in -json output. The shape is stable — CI
// artifacts and editor integrations parse it.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Marker   string `json:"marker,omitempty"`
}

// runStandalone loads packages through the go command and analyzes
// everything in the current module.
func runStandalone(patterns []string, jsonOut bool) (int, error) {
	pkgs, err := lint.LoadPatterns(patterns...)
	if err != nil {
		return 2, err
	}
	// Always an array, never null: zero findings is `[]`.
	jdiags := []jsonDiag{}
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, lint.All())
		if err != nil {
			return 2, fmt.Errorf("%s: %w", pkg.ImportPath, err)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			jdiags = append(jdiags, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Marker:   d.Marker,
			})
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jdiags); err != nil {
			return 2, err
		}
	}
	if len(jdiags) > 0 {
		fmt.Fprintf(os.Stderr, "hybridlint: %d finding(s)\n", len(jdiags))
		return 1, nil
	}
	return 0, nil
}

// vetConfig is the JSON cmd/go writes for each vet unit; field names
// are fixed by the protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 2, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 2, fmt.Errorf("parse %s: %w", cfgPath, err)
	}
	// cmd/go demands the facts file exist even though we export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 2, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	fset := token.NewFileSet()
	var files []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	imp := lint.ExportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, err := lint.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 2, err
	}
	diags, err := lint.Run(pkg, lint.All())
	if err != nil {
		return 2, err
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}
