// Command listrank regenerates the paper's Figure 7: list-ranking
// Phase I times for pure-GPU-MT, hybrid-glibc ([3]) and the
// on-demand hybrid PRNG, over list sizes up to 128 M nodes on the
// simulated platform, driven by real reduction statistics measured
// on a scaled list.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baselines"
	"repro/internal/listrank"
	"repro/internal/rng"
)

func main() {
	measureN := flag.Int("measure", 1_000_000, "real list size used to measure reduction behaviour")
	seed := flag.Uint64("seed", 20120521, "seed for the measured run")
	flag.Parse()

	// A real reduction run verifies the algorithm end to end and
	// anchors the per-iteration survival behaviour.
	l, err := listrank.NewRandomList(*measureN, baselines.NewSplitMix64(*seed))
	if err != nil {
		die(err)
	}
	want, err := listrank.SequentialRanks(l)
	if err != nil {
		die(err)
	}
	got, stats, err := listrank.FISRank(l, baselines.NewSplitMix64(*seed+1))
	if err != nil {
		die(err)
	}
	for i := range want {
		if got[i] != want[i] {
			die(fmt.Errorf("FIS ranks disagree with sequential at node %d", i))
		}
	}
	fmt.Printf("real FIS reduction on %d nodes: %d iterations, %d randoms drawn on demand, ranks verified\n",
		*measureN, stats.Iterations, stats.RandomsDrawn)

	// The multicore ranker (scan/compact based, as in [3]'s GPU
	// structure) must agree too.
	par, _, err := listrank.FISRankParallel(l, 4, func(w int) rng.Source {
		return baselines.NewSplitMix64(baselines.Mix64(*seed + uint64(w)))
	})
	if err != nil {
		die(err)
	}
	for i := range want {
		if par[i] != want[i] {
			die(fmt.Errorf("parallel ranks disagree at node %d", i))
		}
	}
	fmt.Printf("parallel (4-worker) FIS ranking verified against sequential\n\n")

	fmt.Println("== Figure 7: Phase I time (ms), simulated platform ==")
	fmt.Printf("%-12s %-16s %-20s %-20s %-10s\n", "List (M)", "Pure GPU MT", "Hybrid (glibc)", "Hybrid (our PRNG)", "Gain")
	for _, m := range []int64{8, 16, 32, 64, 128} {
		n := m * 1_000_000
		mt, err := listrank.RankTimeSim(listrank.VariantPureGPUMT, n, nil)
		if err != nil {
			die(err)
		}
		gl, err := listrank.RankTimeSim(listrank.VariantHybridGlibc, n, nil)
		if err != nil {
			die(err)
		}
		ours, err := listrank.RankTimeSim(listrank.VariantHybridOurs, n, nil)
		if err != nil {
			die(err)
		}
		fmt.Printf("%-12d %-16.1f %-20.1f %-20.1f %.0f%%\n",
			m, mt.SimNs/1e6, gl.SimNs/1e6, ours.SimNs/1e6, 100*(1-ours.SimNs/gl.SimNs))
	}
	fmt.Println("\nGain = improvement of the on-demand hybrid over the hybrid of [3] (paper: ≈ 40%).")
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "listrank:", err)
	os.Exit(1)
}
