// Command benchseed converts `go test -bench` text output into the
// normalized JSON trajectory files committed as BENCH_*.json, so
// perf numbers are tracked in-repo PR-over-PR instead of living only
// in CI artifacts.
//
// Usage:
//
//	go test -run '^$' -bench Pool . | benchseed -out BENCH_pool.json -merge
//	go test -run '^$' -bench Pool . | benchseed -gate BENCH_pool.json
//
// Metadata lines (goos/goarch/cpu/pkg) are captured alongside each
// benchmark's ns/op, MB/s, allocs and custom metrics (e.g. sim-ms).
//
// With -merge, the previous contents of the -out file are pushed onto
// a bounded history list instead of being thrown away, so the
// committed file is a trajectory: the top-level meta/benchmarks are
// always the freshest run (old readers keep working), history[] holds
// the prior runs, oldest first, capped at historyCap.
//
// With -gate FILE, nothing is written: the fresh run on stdin is
// compared against FILE's top-level benchmarks and the process exits
// 1 when a benchmark regresses — any increase in allocs/op
// (allocation regressions are machine-independent), or ns/op more
// than -tol (default 10%) above the baseline when the baseline was
// recorded on the same cpu (wall-clock comparisons across different
// machines are noise, not signal).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"` // unit → value ("ns/op", "MB/s", ...)
}

type seedFile struct {
	Meta       map[string]string `json:"meta"`
	Benchmarks []benchmark       `json:"benchmarks"`
	History    []run             `json:"history,omitempty"`
}

// run is one archived entry of the trajectory: the meta/benchmarks
// pair that used to be the file's top level before a newer run
// displaced it.
type run struct {
	Meta       map[string]string `json:"meta"`
	Benchmarks []benchmark       `json:"benchmarks"`
}

// historyCap bounds the committed trajectory length; beyond it the
// oldest runs fall off. A dozen PRs of history is enough to eyeball a
// trend without the JSON growing forever.
const historyCap = 12

func parse(r io.Reader) (*seedFile, error) {
	out := &seedFile{Meta: map[string]string{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			out.Meta[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, err
			}
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return out, nil
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs ("213066 ns/op", "38.45 MB/s", "0 allocs/op").
func parseBench(line string) (benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, fmt.Errorf("short benchmark line %q", line)
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix: trajectories compare across runs.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, fmt.Errorf("benchmark line %q: %v", line, err)
	}
	b := benchmark{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, fmt.Errorf("benchmark line %q: %v", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// mergeHistory folds the previous contents of the trajectory file
// into cur: the old top-level run is appended to the history (oldest
// first), capped at historyCap; prior history is carried over. A
// missing file is a fresh trajectory, not an error.
func mergeHistory(prev []byte, cur *seedFile) error {
	var old seedFile
	if err := json.Unmarshal(prev, &old); err != nil {
		return fmt.Errorf("existing trajectory: %v", err)
	}
	hist := append(old.History, run{Meta: old.Meta, Benchmarks: old.Benchmarks})
	if len(hist) > historyCap {
		hist = hist[len(hist)-historyCap:]
	}
	cur.History = hist
	return nil
}

// gate compares a fresh run against the committed baseline and
// returns one line per regression. Allocation counts gate
// unconditionally — a steady-state alloc/op is a code property, not a
// machine property. Wall-clock (ns/op) gates only when the baseline
// was recorded on the same cpu string; cross-machine timing deltas
// are noise. Benchmarks present on only one side are ignored: adding
// or retiring a benchmark is not a regression.
func gate(baseline, fresh *seedFile, tol float64) []string {
	var fails []string
	sameCPU := baseline.Meta["cpu"] != "" && baseline.Meta["cpu"] == fresh.Meta["cpu"]
	byName := make(map[string]benchmark, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		byName[b.Name] = b
	}
	for _, nb := range fresh.Benchmarks {
		ob, ok := byName[nb.Name]
		if !ok {
			continue
		}
		if oa, okO := ob.Metrics["allocs/op"]; okO {
			if na, okN := nb.Metrics["allocs/op"]; okN && na > oa {
				fails = append(fails, fmt.Sprintf(
					"%s: allocs/op %g -> %g (any new steady-state allocation fails the gate)",
					nb.Name, oa, na))
			}
		}
		if !sameCPU {
			continue
		}
		if ons, okO := ob.Metrics["ns/op"]; okO && ons > 0 {
			if nns, okN := nb.Metrics["ns/op"]; okN && nns > ons*(1+tol) {
				fails = append(fails, fmt.Sprintf(
					"%s: ns/op %g -> %g (+%.1f%%, tolerance %.0f%%)",
					nb.Name, ons, nns, (nns/ons-1)*100, tol*100))
			}
		}
	}
	return fails
}

func main() {
	out := flag.String("out", "", "write JSON to this file (default stdout)")
	merge := flag.Bool("merge", false, "fold the previous contents of -out into a bounded history instead of overwriting")
	gateFile := flag.String("gate", "", "compare stdin against this trajectory file and exit 1 on regression; writes nothing")
	tol := flag.Float64("tol", 0.10, "ns/op regression tolerance for -gate (same-cpu baselines only)")
	flag.Parse()

	seed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchseed: %v\n", err)
		os.Exit(1)
	}

	if *gateFile != "" {
		blob, err := os.ReadFile(*gateFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchseed: %v\n", err)
			os.Exit(1)
		}
		var baseline seedFile
		if err := json.Unmarshal(blob, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchseed: %s: %v\n", *gateFile, err)
			os.Exit(1)
		}
		fails := gate(&baseline, seed, *tol)
		if len(fails) > 0 {
			fmt.Fprintf(os.Stderr, "benchseed: %d regression(s) against %s:\n", len(fails), *gateFile)
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "  %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("benchseed: %d benchmark(s) within gate against %s\n", len(seed.Benchmarks), *gateFile)
		return
	}

	if *merge && *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			if err := mergeHistory(prev, seed); err != nil {
				fmt.Fprintf(os.Stderr, "benchseed: %s: %v\n", *out, err)
				os.Exit(1)
			}
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchseed: %v\n", err)
			os.Exit(1)
		}
	}
	enc, err := json.MarshalIndent(seed, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchseed: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchseed: %v\n", err)
		os.Exit(1)
	}
}
