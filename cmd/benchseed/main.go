// Command benchseed converts `go test -bench` text output into the
// normalized JSON trajectory files committed as BENCH_*.json, so
// perf numbers are tracked in-repo PR-over-PR instead of living only
// in CI artifacts.
//
// Usage:
//
//	go test -run '^$' -bench Pool . | benchseed -out BENCH_pool.json
//
// Metadata lines (goos/goarch/cpu/pkg) are captured alongside each
// benchmark's ns/op, MB/s, allocs and custom metrics (e.g. sim-ms).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iterations"`
	Metrics map[string]float64 `json:"metrics"` // unit → value ("ns/op", "MB/s", ...)
}

type seedFile struct {
	Meta       map[string]string `json:"meta"`
	Benchmarks []benchmark       `json:"benchmarks"`
}

func parse(r io.Reader) (*seedFile, error) {
	out := &seedFile{Meta: map[string]string{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			out.Meta[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, err
			}
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return out, nil
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs ("213066 ns/op", "38.45 MB/s", "0 allocs/op").
func parseBench(line string) (benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, fmt.Errorf("short benchmark line %q", line)
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix: trajectories compare across runs.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, fmt.Errorf("benchmark line %q: %v", line, err)
	}
	b := benchmark{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, fmt.Errorf("benchmark line %q: %v", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

func main() {
	out := flag.String("out", "", "write JSON to this file (default stdout)")
	flag.Parse()

	seed, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchseed: %v\n", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(seed, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchseed: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchseed: %v\n", err)
		os.Exit(1)
	}
}
