package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPool/fill-8KiB-2         	    9049	    134002 ns/op	  61.13 MB/s	       0 B/op	       0 allocs/op
BenchmarkPool/uint64-2            	 6554396	       177.0 ns/op	  45.20 MB/s
PASS
ok  	repro	3.909s
`

func parseSample(t *testing.T, text string) *seedFile {
	t.Helper()
	seed, err := parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return seed
}

func TestParseStripsGomaxprocsSuffix(t *testing.T) {
	seed := parseSample(t, sampleOutput)
	if len(seed.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks", len(seed.Benchmarks))
	}
	if got := seed.Benchmarks[0].Name; got != "BenchmarkPool/fill-8KiB" {
		t.Errorf("name %q", got)
	}
	if got := seed.Benchmarks[0].Metrics["allocs/op"]; got != 0 {
		t.Errorf("allocs/op %g", got)
	}
	if got := seed.Meta["cpu"]; !strings.Contains(got, "Xeon") {
		t.Errorf("cpu meta %q", got)
	}
}

func TestMergeHistoryAppendsAndCaps(t *testing.T) {
	old := &seedFile{
		Meta:       map[string]string{"cpu": "old-cpu"},
		Benchmarks: []benchmark{{Name: "B", Iters: 1, Metrics: map[string]float64{"ns/op": 100}}},
	}
	blob, _ := json.Marshal(old)

	cur := parseSample(t, sampleOutput)
	if err := mergeHistory(blob, cur); err != nil {
		t.Fatal(err)
	}
	if len(cur.History) != 1 {
		t.Fatalf("history length %d, want 1", len(cur.History))
	}
	if cur.History[0].Meta["cpu"] != "old-cpu" {
		t.Errorf("history entry lost its meta: %v", cur.History[0].Meta)
	}
	// The fresh run stays at the top level.
	if cur.Benchmarks[0].Name != "BenchmarkPool/fill-8KiB" {
		t.Errorf("top-level benchmarks are not the fresh run")
	}

	// Chain merges past the cap: the oldest entries must fall off.
	for i := 0; i < historyCap+5; i++ {
		blob, _ = json.Marshal(cur)
		cur = parseSample(t, sampleOutput)
		if err := mergeHistory(blob, cur); err != nil {
			t.Fatal(err)
		}
	}
	if len(cur.History) != historyCap {
		t.Errorf("history length %d, want cap %d", len(cur.History), historyCap)
	}
}

func TestGateFailsOnNewAllocs(t *testing.T) {
	baseline := parseSample(t, sampleOutput)
	fresh := parseSample(t, strings.ReplaceAll(sampleOutput,
		"0 allocs/op", "3 allocs/op"))
	fails := gate(baseline, fresh, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/op") {
		t.Fatalf("want one allocs/op failure, got %v", fails)
	}
	// Alloc regressions gate even when the cpu differs.
	fresh.Meta["cpu"] = "some-other-cpu"
	if fails := gate(baseline, fresh, 0.10); len(fails) != 1 {
		t.Fatalf("alloc gate must be machine-independent, got %v", fails)
	}
}

func TestGateNsOpTolerance(t *testing.T) {
	baseline := parseSample(t, sampleOutput)

	within := parseSample(t, strings.ReplaceAll(sampleOutput,
		"134002 ns/op", "140000 ns/op")) // +4.5%
	if fails := gate(baseline, within, 0.10); len(fails) != 0 {
		t.Fatalf("within tolerance, got %v", fails)
	}

	beyond := parseSample(t, strings.ReplaceAll(sampleOutput,
		"134002 ns/op", "160000 ns/op")) // +19%
	fails := gate(baseline, beyond, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "ns/op") {
		t.Fatalf("want one ns/op failure, got %v", fails)
	}

	// A different cpu string disables the wall-clock gate entirely.
	beyond.Meta["cpu"] = "some-other-cpu"
	if fails := gate(baseline, beyond, 0.10); len(fails) != 0 {
		t.Fatalf("cross-machine ns/op must not gate, got %v", fails)
	}
}

func TestGateIgnoresAddedAndRetiredBenchmarks(t *testing.T) {
	baseline := parseSample(t, sampleOutput)
	fresh := parseSample(t, `goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBrandNew-2    100    999999999 ns/op    7 allocs/op
`)
	if fails := gate(baseline, fresh, 0.10); len(fails) != 0 {
		t.Fatalf("new benchmark must not gate, got %v", fails)
	}
}
