// Command randd serves on-demand randomness from a sharded pool of
// expander walkers over HTTP — the paper's "any thread asks for the
// next number at any time" property exposed as a network service.
//
//	randd -addr :8080 -shards 16 -hmin 4
//	curl 'localhost:8080/u64?n=4'
//	curl -s 'localhost:8080/bytes?n=1048576' | wc -c
//	curl -s 'localhost:8080/stream' | head -c 80 | xxd
//	curl -i 'localhost:8080/healthz'
//	curl -s 'localhost:8080/metrics'
//
// With -state, randd is exactly resumable: it checkpoints the whole
// pool (every shard's walker, feed, health monitor, ring residue and
// tripped status) to the given file on shutdown and on demand, and
// restores from it on boot, continuing every stream bit-for-bit:
//
//	randd -addr :8080 -seeded -seed 42 -state /var/lib/randd/state
//	curl -X POST localhost:8080/snapshot    # checkpoint now
//	kill -TERM $(pidof randd)               # drain, snapshot, exit
//	randd -addr :8080 -state /var/lib/randd/state   # resume exactly
//
// On SIGTERM/SIGINT the server first drains in-flight requests, then
// writes the snapshot, so the state file always sits at a request
// boundary. When the state file exists at boot the generator flags
// (-shards, -buffer, -feed, -seed, -walk, -hmin) are ignored — the
// snapshot already pins all of them.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	hybridprng "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", 0, "shard count, rounded up to a power of two (0 = next power of two ≥ GOMAXPROCS)")
		buffer   = flag.Int("buffer", 0, "per-shard ring buffer in words (0 = default)")
		feed     = flag.String("feed", hybridprng.FeedGlibc, "feed generator: glibc, ansic or splitmix")
		seed     = flag.Uint64("seed", 0, "fixed feed seed (only with -seeded; default: OS entropy)")
		seeded   = flag.Bool("seeded", false, "use -seed instead of OS entropy (reproducible streams)")
		walk     = flag.Int("walk", 0, "expander steps per number (0 = the paper's 64)")
		hmin     = flag.Float64("hmin", 4, "claimed feed min-entropy bits/byte for SP 800-90B health monitoring; 0 disables")
		maxWords = flag.Uint64("max-request", 0, "per-request cap for /u64 and /bytes in words (0 = default)")
		state    = flag.String("state", "", "checkpoint file: restored on boot when present, written on shutdown and by POST /snapshot (empty disables)")
	)
	flag.Parse()

	pool, restored := buildPool(*state, *shards, *buffer, *feed, *seed, *seeded, *walk, *hmin)
	srv, err := server.New(pool, server.Options{MaxWords: *maxWords, StatePath: *state})
	if err != nil {
		log.Fatalf("randd: %v", err)
	}
	expvar.Publish("randd", srv.MetricsVar())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		if restored {
			log.Printf("randd: serving %d shards on %s (resumed from %s)",
				pool.Shards(), *addr, *state)
		} else {
			log.Printf("randd: serving %d shards on %s (feed %s, health hMin %g)",
				pool.Shards(), *addr, *feed, *hmin)
		}
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("randd: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "randd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Drain first, snapshot second: once Shutdown returns no request
	// is mid-flight, so the checkpoint lands exactly at a request
	// boundary and a resumed instance continues the streams
	// bit-for-bit.
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("randd: shutdown: %v", err)
	}
	if *state != "" {
		n, err := srv.Snapshot()
		if err != nil {
			log.Printf("randd: final snapshot: %v", err)
		} else {
			log.Printf("randd: final snapshot: %d bytes to %s", n, *state)
		}
	}
}

// buildPool restores the pool from the state file when it exists,
// otherwise constructs a fresh one from the generator flags.
func buildPool(state string, shards, buffer int, feed string, seed uint64, seeded bool, walk int, hmin float64) (*hybridprng.Pool, bool) {
	if state != "" {
		blob, err := os.ReadFile(state)
		switch {
		case err == nil:
			pool := new(hybridprng.Pool)
			if err := pool.UnmarshalBinary(blob); err != nil {
				log.Fatalf("randd: restore %s: %v", state, err)
			}
			log.Printf("randd: restored %d shards from %s (%d bytes); generator flags ignored", pool.Shards(), state, len(blob))
			return pool, true
		case os.IsNotExist(err):
			log.Printf("randd: no state file at %s, starting fresh", state)
		default:
			log.Fatalf("randd: read %s: %v", state, err)
		}
	}
	opts := []hybridprng.Option{hybridprng.WithFeed(feed)}
	if shards > 0 {
		opts = append(opts, hybridprng.WithShards(shards))
	}
	if buffer > 0 {
		opts = append(opts, hybridprng.WithShardBuffer(buffer))
	}
	if seeded {
		opts = append(opts, hybridprng.WithSeed(seed))
	}
	if walk > 0 {
		opts = append(opts, hybridprng.WithWalkLength(walk))
	}
	if hmin > 0 {
		opts = append(opts, hybridprng.WithHealthMonitoring(hmin))
	}
	pool, err := hybridprng.NewPool(opts...)
	if err != nil {
		log.Fatalf("randd: %v", err)
	}
	return pool, false
}
