// Command randd serves on-demand randomness from a sharded pool of
// expander walkers over HTTP — the paper's "any thread asks for the
// next number at any time" property exposed as a network service.
//
//	randd -addr :8080 -shards 16 -hmin 4
//	curl 'localhost:8080/u64?n=4'
//	curl -s 'localhost:8080/bytes?n=1048576' | wc -c
//	curl -s 'localhost:8080/stream' | head -c 80 | xxd
//	curl -i 'localhost:8080/healthz'
//	curl -s 'localhost:8080/metrics'
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	hybridprng "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", 0, "shard count, rounded up to a power of two (0 = next power of two ≥ GOMAXPROCS)")
		buffer   = flag.Int("buffer", 0, "per-shard ring buffer in words (0 = default)")
		feed     = flag.String("feed", hybridprng.FeedGlibc, "feed generator: glibc, ansic or splitmix")
		seed     = flag.Uint64("seed", 0, "fixed feed seed (only with -seeded; default: OS entropy)")
		seeded   = flag.Bool("seeded", false, "use -seed instead of OS entropy (reproducible streams)")
		walk     = flag.Int("walk", 0, "expander steps per number (0 = the paper's 64)")
		hmin     = flag.Float64("hmin", 4, "claimed feed min-entropy bits/byte for SP 800-90B health monitoring; 0 disables")
		maxWords = flag.Uint64("max-request", 0, "per-request cap for /u64 and /bytes in words (0 = default)")
	)
	flag.Parse()

	opts := []hybridprng.Option{hybridprng.WithFeed(*feed)}
	if *shards > 0 {
		opts = append(opts, hybridprng.WithShards(*shards))
	}
	if *buffer > 0 {
		opts = append(opts, hybridprng.WithShardBuffer(*buffer))
	}
	if *seeded {
		opts = append(opts, hybridprng.WithSeed(*seed))
	}
	if *walk > 0 {
		opts = append(opts, hybridprng.WithWalkLength(*walk))
	}
	if *hmin > 0 {
		opts = append(opts, hybridprng.WithHealthMonitoring(*hmin))
	}
	pool, err := hybridprng.NewPool(opts...)
	if err != nil {
		log.Fatalf("randd: %v", err)
	}
	srv, err := server.New(pool, server.Options{MaxWords: *maxWords})
	if err != nil {
		log.Fatalf("randd: %v", err)
	}
	expvar.Publish("randd", srv.MetricsVar())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("randd: serving %d shards on %s (feed %s, health hMin %g)",
			pool.Shards(), *addr, *feed, *hmin)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("randd: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "randd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("randd: shutdown: %v", err)
	}
}
