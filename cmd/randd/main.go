// Command randd serves on-demand randomness from a sharded pool of
// expander walkers over HTTP — the paper's "any thread asks for the
// next number at any time" property exposed as a network service.
//
//	randd -addr :8080 -shards 16 -hmin 4
//	curl 'localhost:8080/u64?n=4'
//	curl -s 'localhost:8080/bytes?n=1048576' | wc -c
//	curl -s 'localhost:8080/stream' | head -c 80 | xxd
//	curl -i 'localhost:8080/healthz'
//	curl -s 'localhost:8080/metrics'
//
// With -state, randd is exactly resumable: it checkpoints the whole
// pool (every shard's walker, feed, health monitor, ring residue and
// recovery state) to the given file on shutdown and on demand, and
// restores from it on boot, continuing every stream bit-for-bit:
//
//	randd -addr :8080 -seeded -seed 42 -state /var/lib/randd/state
//	curl -X POST localhost:8080/snapshot    # checkpoint now
//	kill -TERM $(pidof randd)               # drain, snapshot, exit
//	randd -addr :8080 -state /var/lib/randd/state   # resume exactly
//
// On SIGTERM/SIGINT the server first drains in-flight requests (for
// up to -drain-timeout), then writes the snapshot, so the state file
// always sits at a request boundary. A failed shutdown snapshot is a
// data-loss event for a resumable deployment, so it is logged loudly
// and randd exits non-zero. When the state file exists at boot the
// generator flags (-shards, -buffer, -feed, -seed, -walk, -hmin) are
// ignored — the snapshot already pins all of them.
//
// With -substream-max > 0 (the default), randd also serves per-tenant
// streams: GET /v1/stream/{key}/u64 and /bytes draw from a walker
// derived from the key — reproducible per tenant, independent across
// tenants — with at most -substream-max walkers resident (LRU; evicted
// tenants park their exact state and resume bitwise). -tenant-rate
// caps each tenant's draw rate in words/s via a token bucket (429 +
// Retry-After past the budget; 0 = unmetered). Tenant streams ride
// along in -state snapshots and drain handoffs, so they resume exactly
// like the pool's. The derivation root comes from -seed when -seeded,
// OS entropy otherwise; a restored state file pins it.
//
// The -chaos flag wraps every shard's feed in a deterministic fault
// injector (internal/chaos) for recovery drills: shards trip,
// quarantine, reseed and recover while the daemon keeps serving.
// Chaos runs are a development tool and refuse to combine with
// -state — fault schedules do not belong in production snapshots.
//
// With -control, randd joins a randctl fleet: it registers under
// -node-id, advertises -advertise (or a URL derived from -addr),
// declares -capacity words/s, and heartbeats its live pool health so
// the controller can place shard ranges and detect failures. A
// successor taking over a drained node's streams passes the drain's
// -resume-token so the controller transfers the frozen ranges. On
// SIGTERM a fleet member deregisters *before* draining — clients are
// steered away while the node can still answer — and a failed
// deregistration makes the exit non-zero, same as a failed final
// snapshot: both mean the fleet's view of this node is now wrong. A
// node drained through POST /drain skips the shutdown snapshot — its
// state went to the successor, and a second copy that could be
// resumed would fork the streams.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	hybridprng "repro"
	"repro/internal/bitsource"
	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/substream"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		shards     = flag.Int("shards", 0, "shard count, rounded up to a power of two (0 = next power of two ≥ GOMAXPROCS)")
		buffer     = flag.Int("buffer", 0, "per-shard ring buffer in words (0 = default)")
		feed       = flag.String("feed", hybridprng.FeedGlibc, "feed generator: glibc, ansic or splitmix")
		seed       = flag.Uint64("seed", 0, "fixed feed seed (only with -seeded; default: OS entropy)")
		seeded     = flag.Bool("seeded", false, "use -seed instead of OS entropy (reproducible streams)")
		walk       = flag.Int("walk", 0, "expander steps per number (0 = the paper's 64)")
		hmin       = flag.Float64("hmin", 4, "claimed feed min-entropy bits/byte for SP 800-90B health monitoring; 0 disables")
		maxWords   = flag.Uint64("max-request", 0, "per-request cap for /u64 and /bytes in words (0 = default)")
		inFlight   = flag.Int("max-inflight", 0, "concurrent draw requests before shedding with 429 (0 = default, negative disables)")
		reqTimeout = flag.Duration("request-timeout", 0, "per-request deadline for /u64 and /bytes (0 = default, negative disables)")
		streamWT   = flag.Duration("stream-write-timeout", 0, "per-chunk idle-write deadline for /stream; a client that stops reading this long is disconnected (0 = default, negative disables)")
		drain      = flag.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight requests before snapshotting")
		state      = flag.String("state", "", "checkpoint file: restored on boot when present, written on shutdown and by POST /snapshot (empty disables)")
		chaosSeed  = flag.Uint64("chaos", 0, "enable the deterministic fault injector with this schedule seed (dev only; incompatible with -state)")
		chaosKinds = flag.String("chaos-kinds", "all", "comma-separated chaos fault kinds: stuck, bias, burst, stall (with -chaos)")
		subMax     = flag.Int("substream-max", 1024, "resident per-tenant walker cap for /v1/stream/{key} (LRU past the cap; 0 disables the per-tenant routes)")
		tenantRate = flag.Float64("tenant-rate", 0, "per-tenant draw budget in words/s, enforced with 429 + Retry-After (0 = unmetered; with -substream-max)")
		control    = flag.String("control", "", "randctl base URL: register with this fleet controller and heartbeat pool health (empty = standalone)")
		nodeID     = flag.String("node-id", "", "fleet node ID (with -control; default: the hostname)")
		advertise  = flag.String("advertise", "", "base URL other hosts reach this node at (with -control; default derived from -addr)")
		capacity   = flag.Uint64("capacity", 1_000_000, "declared serving capacity in words/s for fleet placement (with -control)")
		resumeTok  = flag.String("resume-token", "", "drain ticket token when this node is the successor resuming a drained node's streams (with -control)")
	)
	flag.Parse()

	if *chaosSeed != 0 && *state != "" {
		log.Print("randd: -chaos and -state are incompatible: fault schedules are not checkpointable and must never land in a production snapshot")
		return 2
	}

	pool, regBlob, restored, err := buildPool(poolFlags{
		state: *state, shards: *shards, buffer: *buffer, feed: *feed,
		seed: *seed, seeded: *seeded, walk: *walk, hmin: *hmin,
		chaosSeed: *chaosSeed, chaosKinds: *chaosKinds,
	})
	if err != nil {
		log.Printf("randd: %v", err)
		return 1
	}
	reg, err := buildRegistry(regBlob, *subMax, *tenantRate, *feed, *walk, *hmin, *seed, *seeded)
	if err != nil {
		log.Printf("randd: %v", err)
		return 1
	}
	srv, err := server.New(pool, server.Options{
		MaxWords:           *maxWords,
		StatePath:          *state,
		MaxInFlight:        *inFlight,
		RequestTimeout:     *reqTimeout,
		StreamWriteTimeout: *streamWT,
		Substreams:         reg,
	})
	if err != nil {
		log.Printf("randd: %v", err)
		return 1
	}
	expvar.Publish("randd", srv.MetricsVar())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	httpErr := make(chan error, 1)
	go func() {
		switch {
		case restored:
			log.Printf("randd: serving %d shards on %s (resumed from %s)",
				pool.Shards(), *addr, *state)
		case *chaosSeed != 0:
			log.Printf("randd: serving %d shards on %s (feed %s, health hMin %g, CHAOS seed %d kinds %s)",
				pool.Shards(), *addr, *feed, *hmin, *chaosSeed, *chaosKinds)
		default:
			log.Printf("randd: serving %d shards on %s (feed %s, health hMin %g)",
				pool.Shards(), *addr, *feed, *hmin)
		}
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			httpErr <- err
		}
	}()

	// Fleet membership: register and heartbeat in the background so a
	// slow or absent controller never delays serving.
	var agent *fleet.Agent
	agentCtx, agentCancel := context.WithCancel(context.Background())
	defer agentCancel()
	if *control != "" {
		id := *nodeID
		if id == "" {
			host, err := os.Hostname()
			if err != nil {
				log.Printf("randd: -control without -node-id and no hostname: %v", err)
				return 2
			}
			id = host
		}
		adv := *advertise
		if adv == "" {
			adv = advertiseFromAddr(*addr)
		}
		agent, err = fleet.NewAgent(fleet.AgentOptions{
			Controller: *control,
			Node: fleet.NodeInfo{
				ID: id, URL: adv,
				CapacityWords: *capacity,
				ResumeToken:   *resumeTok,
			},
			Report: func() fleet.HeartbeatReport {
				st := pool.Stats()
				return fleet.HeartbeatReport{
					Shards:        st.Shards,
					Healthy:       st.Healthy,
					Quarantined:   st.Quarantined,
					Probation:     st.Probation,
					Retired:       st.Retired,
					CapacityWords: *capacity,
					// The drain latch rides every heartbeat so the
					// controller can spot a drained zombie (latched
					// node still in rotation after a failed rollback)
					// and keep clients away from it.
					Draining: srv.Draining(),
				}
			},
			Logf: log.Printf,
		})
		if err != nil {
			log.Printf("randd: %v", err)
			return 2
		}
		go agent.Run(agentCtx)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-httpErr:
		log.Printf("randd: %v", err)
		return 1
	case <-sig:
	}
	fmt.Fprintln(os.Stderr, "randd: shutting down")
	exit := 0
	// Deregister first, while this node can still answer the draws
	// already heading its way: the controller drops it from the
	// endpoint list and clients steer to siblings before we stop
	// accepting. A failed deregistration means the fleet keeps routing
	// at a corpse until the heartbeat timeout — loud log, failed exit.
	if agent != nil {
		agentCancel() // stop heartbeating before we announce departure
		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := agent.Deregister(dctx); err != nil {
			log.Printf("randd: FLEET DEREGISTRATION FAILED, controller may still route here: %v", err)
			exit = 1
		} else {
			log.Print("randd: deregistered from fleet")
		}
		dcancel()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain second, snapshot third: once Shutdown returns no request
	// is mid-flight, so the checkpoint lands exactly at a request
	// boundary and a resumed instance continues the streams
	// bit-for-bit.
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("randd: shutdown: %v", err)
	}
	switch {
	case *state != "" && srv.Draining():
		// This node's streams were handed to a successor via POST
		// /drain; a resumable second copy of the state would fork them.
		log.Printf("randd: drained to a successor, skipping final snapshot to %s", *state)
	case *state != "":
		n, err := srv.Snapshot()
		if err != nil {
			// A lost shutdown snapshot means the next boot replays from
			// the previous checkpoint (or starts fresh): the operator
			// must know, and supervisors must see a failed exit.
			log.Printf("randd: FINAL SNAPSHOT FAILED, state at %s is stale or missing: %v", *state, err)
			return 1
		}
		log.Printf("randd: final snapshot: %d bytes to %s", n, *state)
	}
	return exit
}

// advertiseFromAddr derives a reachable base URL from the listen
// address: ":8080" advertises the hostname, an explicit host is kept.
func advertiseFromAddr(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		if h, err := os.Hostname(); err == nil {
			host = h
		} else {
			host = "localhost"
		}
	}
	return "http://" + net.JoinHostPort(host, port)
}

type poolFlags struct {
	state      string
	shards     int
	buffer     int
	feed       string
	seed       uint64
	seeded     bool
	walk       int
	hmin       float64
	chaosSeed  uint64
	chaosKinds string
}

// buildPool restores the pool (and, for substream-enabled snapshots,
// the registry blob riding in the node state container) from the
// state file when it exists, otherwise constructs a fresh pool from
// the generator flags.
func buildPool(f poolFlags) (*hybridprng.Pool, []byte, bool, error) {
	if f.state != "" {
		blob, err := os.ReadFile(f.state)
		switch {
		case err == nil:
			poolBlob, regBlob, err := server.DecodeNodeState(blob)
			if err != nil {
				return nil, nil, false, fmt.Errorf("restore %s: %w", f.state, err)
			}
			pool := new(hybridprng.Pool)
			if err := pool.UnmarshalBinary(poolBlob); err != nil {
				return nil, nil, false, fmt.Errorf("restore %s: %w", f.state, err)
			}
			log.Printf("randd: restored %d shards from %s (%d bytes); generator flags ignored", pool.Shards(), f.state, len(blob))
			return pool, regBlob, true, nil
		case os.IsNotExist(err):
			log.Printf("randd: no state file at %s, starting fresh", f.state)
		default:
			return nil, nil, false, fmt.Errorf("read %s: %w", f.state, err)
		}
	}
	opts := []hybridprng.Option{hybridprng.WithFeed(f.feed)}
	if f.shards > 0 {
		opts = append(opts, hybridprng.WithShards(f.shards))
	}
	if f.buffer > 0 {
		opts = append(opts, hybridprng.WithShardBuffer(f.buffer))
	}
	if f.seeded {
		opts = append(opts, hybridprng.WithSeed(f.seed))
	}
	if f.walk > 0 {
		opts = append(opts, hybridprng.WithWalkLength(f.walk))
	}
	if f.hmin > 0 {
		opts = append(opts, hybridprng.WithHealthMonitoring(f.hmin))
	}
	if f.chaosSeed != 0 {
		kinds, err := chaos.ParseKinds(f.chaosKinds)
		if err != nil {
			return nil, nil, false, err
		}
		opts = append(opts, hybridprng.WithFeedWrapper(chaos.Wrapper(chaos.Config{
			Seed:  f.chaosSeed,
			Kinds: kinds,
		})))
	}
	pool, err := hybridprng.NewPool(opts...)
	if err != nil {
		return nil, nil, false, err
	}
	return pool, nil, false, nil
}

// buildRegistry assembles the per-tenant substream registry: restored
// from the snapshot's registry blob when one rode along, otherwise
// fresh with a root seed from -seed (when -seeded) or OS entropy. The
// runtime knobs (-substream-max, -tenant-rate) always come from the
// flags — they shape this node's serving, not the streams themselves.
func buildRegistry(regBlob []byte, subMax int, tenantRate float64, feed string, walk int, hmin float64, seed uint64, seeded bool) (*substream.Registry, error) {
	if subMax <= 0 {
		if regBlob != nil {
			// The snapshot carries tenant streams this boot refuses to
			// serve; dropping them silently would strand every tenant's
			// reproducibility, so refuse loudly instead.
			return nil, fmt.Errorf("state file carries substream state but -substream-max is 0; re-enable substreams or move the state file aside")
		}
		return nil, nil
	}
	cfg := substream.Config{
		MaxResident: subMax,
		RatePerSec:  tenantRate,
	}
	if regBlob != nil {
		reg, err := substream.Restore(regBlob, cfg)
		if err != nil {
			return nil, fmt.Errorf("restore substream registry: %w", err)
		}
		s := reg.Stats()
		log.Printf("randd: restored %d tenant streams", s.Tenants)
		return reg, nil
	}
	cfg.Feed = feed
	cfg.WalkLen = walk
	cfg.HealthHMin = hmin
	if seeded {
		cfg.RootSeed = seed
	} else {
		cfg.RootSeed = bitsource.CryptoSeed()
	}
	reg, err := substream.New(cfg)
	if err != nil {
		return nil, err
	}
	return reg, nil
}
