// Command randload drives a randd fleet through the client SDK and
// reports what consumers will actually see: draw throughput, draw
// latency percentiles, shed/retry/failover counts and a corruption
// check. It is the measurement half of the serving stack — the
// paper's consumption benchmark moved onto the network.
//
//	randload -addrs http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	         -clients 8 -duration 30s
//	randload -addrs http://localhost:8080 -mode open -rate 500000
//	randload -addrs http://localhost:8080 -check -out BENCH_client.json
//	randload -control http://localhost:7070 -clients 8 -duration 30s
//
// With -control, randload takes its fleet from a randctl controller
// instead of a static -addrs list: the initial endpoints come from
// the controller and a background watch feeds every change into the
// running clients (SetEndpoints), so draws keep flowing while nodes
// join, drain and die mid-measurement — the scenario the fleet
// control plane exists for.
//
// Closed loop (default) measures capacity: every worker draws as
// fast as the ring feeds it. Open loop measures latency at a fixed
// offered rate, with each draw's latency clocked from its *intended*
// start time, so queueing delay is charged to the system under test
// rather than silently absorbed (no coordinated omission).
//
// Every drawn word is checked for the one value a healthy stack
// essentially never produces — zero. A zeroed word in the stream
// means a torn buffer or an uninitialised block escaped the client,
// and -check turns that (or zero throughput) into a non-zero exit
// for CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/bits"
	"os"
	"strings"
	"sync"
	"time"

	"repro/client"
	"repro/internal/fleet"
)

// fetchFleet asks the controller for the current endpoint list,
// waiting briefly for at least one node to be registered — randload
// is often started in the same breath as the fleet it measures.
func fetchFleet(ctx context.Context, control string) ([]string, error) {
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	got := make(chan []string, 1)
	go fleet.WatchEndpoints(ctx, control, nil, func(_ uint64, eps []string) {
		if len(eps) > 0 {
			select {
			case got <- eps:
			default:
			}
			cancel()
		}
	})
	select {
	case eps := <-got:
		return eps, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("no serving endpoints appeared: %w", ctx.Err())
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addrs    = flag.String("addrs", "http://localhost:8080", "comma-separated randd base URLs (the failover fleet)")
		clients  = flag.Int("clients", 4, "concurrent client instances, one prefetch ring each")
		duration = flag.Duration("duration", 10*time.Second, "measurement length")
		mode     = flag.String("mode", "closed", "closed (draw flat out) or open (fixed offered rate)")
		rate     = flag.Float64("rate", 100000, "total offered draws/sec across all clients (open loop only)")
		block    = flag.Int("block", 0, "pin the block size to this many words (0 = adaptive)")
		hedge    = flag.Duration("hedge", 0, "hedge delay; 0 disables hedged requests")
		stall    = flag.Duration("stall", 5*time.Second, "give up on a draw after this long with no progress (client MaxStall)")
		out      = flag.String("out", "", "write the JSON benchmark artifact here (e.g. BENCH_client.json)")
		check    = flag.Bool("check", false, "exit non-zero unless throughput is non-zero and no corrupt word was seen")
		control  = flag.String("control", "", "randctl base URL: take the fleet from this controller's endpoint watch instead of -addrs")
	)
	flag.Parse()

	endpoints := strings.Split(*addrs, ",")
	watchCtx, watchCancel := context.WithCancel(context.Background())
	defer watchCancel()
	if *control != "" {
		eps, err := fetchFleet(watchCtx, *control)
		if err != nil {
			log.Printf("randload: fetch fleet from %s: %v", *control, err)
			return 2
		}
		endpoints = eps
	}
	if *mode != "closed" && *mode != "open" {
		log.Printf("randload: -mode must be closed or open, got %q", *mode)
		return 2
	}
	if *clients < 1 {
		log.Printf("randload: -clients must be >= 1")
		return 2
	}

	workers := make([]*worker, *clients)
	for i := range workers {
		opts := client.Options{
			Endpoints:  endpoints,
			HedgeDelay: *hedge,
			MaxStall:   *stall,
			Seed:       uint64(i) + 1, // distinct deterministic jitter per client
		}
		if *block > 0 {
			opts.BlockWords = *block
			opts.MinBlockWords = *block
			opts.MaxBlockWords = *block
		}
		cl, err := client.New(opts)
		if err != nil {
			log.Printf("randload: %v", err)
			return 2
		}
		defer cl.Close()
		workers[i] = &worker{cl: cl}
	}

	if *control != "" {
		// Feed every fleet change into all running clients for the
		// rest of the run.
		go fleet.WatchEndpoints(watchCtx, *control, nil, func(version uint64, eps []string) {
			log.Printf("randload: fleet v%d: %s", version, strings.Join(eps, ","))
			for _, w := range workers {
				if err := w.cl.SetEndpoints(eps); err != nil {
					log.Printf("randload: apply fleet v%d: %v", version, err)
				}
			}
		})
	}

	log.Printf("randload: %d clients, %s loop, %v against %s", *clients, *mode, *duration, strings.Join(endpoints, ","))
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if *mode == "open" {
				w.openLoop(deadline, *rate/float64(*clients))
			} else {
				w.closedLoop(deadline)
			}
		}(w)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(workers, elapsed, *mode)
	rep.Endpoints = endpoints
	rep.Clients = *clients
	printReport(rep)
	if *out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Printf("randload: marshal report: %v", err)
			return 1
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Printf("randload: write %s: %v", *out, err)
			return 1
		}
		log.Printf("randload: wrote %s", *out)
	}
	if *check {
		switch {
		case rep.Draws == 0:
			log.Print("randload: CHECK FAILED: zero draws completed")
			return 1
		case rep.ZeroWords > 0:
			log.Printf("randload: CHECK FAILED: %d zero words in the stream (corruption)", rep.ZeroWords)
			return 1
		}
		log.Printf("randload: check passed: %d draws, 0 corrupt words", rep.Draws)
	}
	return 0
}

// worker is one load-generating goroutine with its own client (its
// own prefetch ring and failover state — clients do not share).
type worker struct {
	cl        *client.Client
	hist      [64]uint64 // log2-bucketed draw latencies in ns
	maxNs     int64
	draws     uint64
	errs      uint64
	zeroWords uint64
}

func (w *worker) record(lat time.Duration) {
	ns := lat.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	w.hist[bits.Len64(uint64(ns))-1]++
	if ns > w.maxNs {
		w.maxNs = ns
	}
}

func (w *worker) draw(t0 time.Time) {
	v, err := w.cl.Uint64()
	if err != nil {
		w.errs++
		return
	}
	w.record(time.Since(t0))
	w.draws++
	if v == 0 {
		w.zeroWords++
	}
}

func (w *worker) closedLoop(deadline time.Time) {
	for time.Now().Before(deadline) {
		w.draw(time.Now())
	}
}

// openLoop issues draws on a fixed schedule and measures each from
// its intended tick, not from when the loop got around to it: if the
// system stalls, the stall shows up in every queued draw's latency.
func (w *worker) openLoop(deadline time.Time, perSec float64) {
	if perSec <= 0 {
		return
	}
	period := time.Duration(float64(time.Second) / perSec)
	if period <= 0 {
		period = time.Nanosecond
	}
	next := time.Now()
	for {
		next = next.Add(period)
		if next.After(deadline) {
			return
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		w.draw(next) // intended start, not actual
	}
}

// report is the JSON benchmark artifact (BENCH_client.json).
type report struct {
	Mode       string   `json:"mode"`
	Clients    int      `json:"clients"`
	Endpoints  []string `json:"endpoints"`
	Seconds    float64  `json:"seconds"`
	Draws      uint64   `json:"draws"`
	DrawsPerS  float64  `json:"draws_per_sec"`
	Errors     uint64   `json:"errors"`
	ZeroWords  uint64   `json:"zero_words"`
	P50Ns      int64    `json:"p50_ns"`
	P90Ns      int64    `json:"p90_ns"`
	P99Ns      int64    `json:"p99_ns"`
	MaxNs      int64    `json:"max_ns"`
	Blocks     uint64   `json:"blocks"`
	Stalls     uint64   `json:"stalls"`
	Retries    uint64   `json:"retries"`
	Failovers  uint64   `json:"failovers"`
	Sheds      uint64   `json:"sheds_429"`
	Hedges     uint64   `json:"hedges"`
	HedgeWins  uint64   `json:"hedge_wins"`
	Discarded  uint64   `json:"discarded_bytes"`
	EpochFlips uint64   `json:"epoch_changes"`
}

func summarize(workers []*worker, elapsed time.Duration, mode string) report {
	rep := report{Mode: mode, Seconds: elapsed.Seconds()}
	var hist [64]uint64
	for _, w := range workers {
		for i, n := range w.hist {
			hist[i] += n
		}
		if w.maxNs > rep.MaxNs {
			rep.MaxNs = w.maxNs
		}
		rep.Draws += w.draws
		rep.Errors += w.errs
		rep.ZeroWords += w.zeroWords
		st := w.cl.Stats()
		rep.Blocks += st.Blocks
		rep.Stalls += st.Stalls
		rep.Retries += st.Retries
		rep.Failovers += st.Failovers
		rep.Sheds += st.Sheds429
		rep.Hedges += st.Hedges
		rep.HedgeWins += st.HedgeWins
		rep.Discarded += st.DiscardedBytes
		rep.EpochFlips += st.EpochChanges
	}
	if rep.Seconds > 0 {
		rep.DrawsPerS = float64(rep.Draws) / rep.Seconds
	}
	rep.P50Ns = percentile(&hist, rep.Draws, 0.50)
	rep.P90Ns = percentile(&hist, rep.Draws, 0.90)
	rep.P99Ns = percentile(&hist, rep.Draws, 0.99)
	return rep
}

// percentile reads the q-quantile out of the merged log2 histogram:
// the nearest-rank sample (the ⌈q·total⌉-th smallest), placed at the
// midpoint of its 1/n slice of the bucket span. An earlier version
// truncated the rank — so P99 of exactly 100 samples read the
// maximum, one sample too deep into the tail — and interpolated from
// the bucket floor, which pinned sparse tail buckets to their lower
// bound and biased tail percentiles low by up to 2×.
func percentile(hist *[64]uint64, total uint64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank > 0 {
		rank-- // 1-based nearest rank → 0-based sample index
	}
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for b, n := range hist {
		if n == 0 {
			continue
		}
		if seen+n > rank {
			lo := int64(1) << b // bucket b holds ns in [2^b, 2^(b+1))
			frac := (float64(rank-seen) + 0.5) / float64(n)
			return lo + int64(frac*float64(lo))
		}
		seen += n
	}
	return 0
}

func printReport(rep report) {
	fmt.Printf("randload: %s loop, %d clients, %.2fs\n", rep.Mode, rep.Clients, rep.Seconds)
	fmt.Printf("  draws      %d (%.0f/s)\n", rep.Draws, rep.DrawsPerS)
	fmt.Printf("  errors     %d   zero words %d\n", rep.Errors, rep.ZeroWords)
	fmt.Printf("  latency    p50 %v  p90 %v  p99 %v  max %v\n",
		time.Duration(rep.P50Ns), time.Duration(rep.P90Ns),
		time.Duration(rep.P99Ns), time.Duration(rep.MaxNs))
	fmt.Printf("  transport  blocks %d  stalls %d  retries %d  failovers %d\n",
		rep.Blocks, rep.Stalls, rep.Retries, rep.Failovers)
	fmt.Printf("  fleet      sheds(429) %d  hedges %d (won %d)  discarded %dB  epoch changes %d\n",
		rep.Sheds, rep.Hedges, rep.HedgeWins, rep.Discarded, rep.EpochFlips)
}
