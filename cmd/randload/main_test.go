package main

import (
	"math/bits"
	"testing"
	"time"
)

// synth builds the merged histogram a fleet of workers would produce
// from a known list of latencies, going through the same record()
// path the live load generator uses.
func synth(latenciesNs []int64) (*[64]uint64, uint64) {
	var w worker
	for _, ns := range latenciesNs {
		w.record(time.Duration(ns))
	}
	return &w.hist, uint64(len(latenciesNs))
}

// bucketOf returns the log2 bucket a latency lands in, mirroring
// record()'s binning.
func bucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	return bits.Len64(uint64(ns)) - 1
}

// inBucket asserts the estimate lands inside the bucket of the true
// nearest-rank sample — the histogram's native resolution, so any
// tighter assertion would test the interpolation convention rather
// than correctness.
func inBucket(t *testing.T, name string, est, truth int64) {
	t.Helper()
	b := bucketOf(truth)
	lo, hi := int64(1)<<b, int64(1)<<(b+1)
	if est < lo || est >= hi {
		t.Errorf("%s: estimate %d outside [%d, %d), the bucket of the true nearest-rank sample %d",
			name, est, lo, hi, truth)
	}
}

// TestPercentileNearestRank pins the off-by-one the old floor-based
// rank had: with exactly 100 samples of ~100 ns and a single 1 ms
// outlier, P99 is the 99th smallest sample — the ~100 ns crowd, not
// the outlier. The truncating estimator returned the outlier's
// bucket, 13 doublings too high.
func TestPercentileNearestRank(t *testing.T) {
	lat := make([]int64, 0, 100)
	for i := 0; i < 99; i++ {
		lat = append(lat, 100) // bucket [64, 128)
	}
	lat = append(lat, 1_000_000) // bucket [2^19, 2^20)
	hist, total := synth(lat)

	inBucket(t, "p50", percentile(hist, total, 0.50), 100)
	inBucket(t, "p99", percentile(hist, total, 0.99), 100)
	// The maximum is still reachable: P100 must read the outlier.
	inBucket(t, "p100", percentile(hist, total, 1.00), 1_000_000)
}

// TestPercentileMidpoint pins the sparse-bucket bias: a lone sample
// in a bucket must be estimated strictly inside the bucket span, not
// pinned to its floor the way start-anchored interpolation pinned it.
func TestPercentileMidpoint(t *testing.T) {
	hist, total := synth([]int64{1000}) // bucket [512, 1024)
	got := percentile(hist, total, 0.50)
	if got <= 512 {
		t.Errorf("single-sample bucket: estimate %d pinned at the bucket floor 512", got)
	}
	if got >= 1024 {
		t.Errorf("single-sample bucket: estimate %d escaped the bucket", got)
	}
}

// TestPercentileUniform checks the estimator across a spread
// distribution: ranks must be monotone in q and land in the right
// buckets for a power-of-two ladder.
func TestPercentileUniform(t *testing.T) {
	// Ten samples, one per bucket: 1, 2, 4, ..., 512.
	var lat []int64
	for b := 0; b < 10; b++ {
		lat = append(lat, 1<<b)
	}
	hist, total := synth(lat)

	// Nearest rank of q=0.1k is the k-th smallest = 2^(k-1).
	for k := 1; k <= 10; k++ {
		q := float64(k) / 10
		inBucket(t, "ladder", percentile(hist, total, q), 1<<(k-1))
	}
	prev := int64(-1)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95, 1} {
		got := percentile(hist, total, q)
		if got < prev {
			t.Errorf("percentile not monotone: q=%v gave %d after %d", q, got, prev)
		}
		prev = got
	}
}

// TestPercentileEmpty keeps the zero-draw report well-defined.
func TestPercentileEmpty(t *testing.T) {
	var hist [64]uint64
	if got := percentile(&hist, 0, 0.99); got != 0 {
		t.Errorf("empty histogram: got %d, want 0", got)
	}
}
