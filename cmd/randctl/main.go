// Command randctl is the fleet control plane for randd: nodes
// register and heartbeat against it, it detects failures by missed
// heartbeats (alive → suspect → dead, mirroring the pool's shard
// health machine), places logical shard ranges onto nodes without
// ever exceeding a node's declared capacity, and orchestrates
// stream-preserving drains through the exact-resume snapshot path.
//
// Serve mode (the default) runs the controller:
//
//	randctl -addr :7070 -logical-shards 64 -stream-words 100000
//
// The same binary doubles as the operator CLI against a running
// controller:
//
//	randctl -control http://localhost:7070 -status
//	randctl -control http://localhost:7070 -endpoints
//	randctl -control http://localhost:7070 -endpoints -watch
//	randctl -control http://localhost:7070 -drain node-1 -o node-1.state
//
// A drain freezes the node's shard ranges under a resume token, pulls
// the node's pool snapshot (the node stops serving permanently — one
// more word there would fork the streams), and writes blob plus token
// so a successor can take over bitwise:
//
//	randd -addr :8081 -state node-1.state \
//	    -control http://localhost:7070 -node-id node-1b \
//	    -resume-token $(cat node-1.state.token)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":7070", "serve mode: controller listen address")
		logical    = flag.Uint64("logical-shards", 0, "serve mode: logical shard ranges to place across the fleet (0 = default 64)")
		streamWrds = flag.Uint64("stream-words", 0, "serve mode: words/s of demand one logical shard represents (0 = default 100000)")
		heartbeat  = flag.Duration("heartbeat", 0, "serve mode: heartbeat interval assigned to nodes (0 = default 2s)")
		suspectAf  = flag.Duration("suspect-after", 0, "serve mode: silence before a node turns suspect (0 = 3x heartbeat)")
		deadAfter  = flag.Duration("dead-after", 0, "serve mode: silence before a suspect node is declared dead (0 = 10x heartbeat)")

		control = flag.String("control", "", "client mode: base URL of a running randctl (enables -status/-endpoints/-drain)")
		status  = flag.Bool("status", false, "client mode: print the fleet status JSON")
		endpts  = flag.Bool("endpoints", false, "client mode: print the live endpoint list")
		watch   = flag.Bool("watch", false, "client mode: with -endpoints, long-poll and print every change")
		drainID = flag.String("drain", "", "client mode: drain this node stream-preservingly")
		out     = flag.String("o", "", "client mode: with -drain, write the pool blob here and the resume token to <file>.token (default stdout, token to stderr)")
		timeout = flag.Duration("timeout", time.Minute, "client mode: per-request timeout (watch requests are exempt)")
	)
	flag.Parse()

	if *control != "" {
		return runClient(*control, clientFlags{
			status: *status, endpoints: *endpts, watch: *watch,
			drainID: *drainID, out: *out, timeout: *timeout,
		})
	}

	ctrl, err := fleet.NewController(fleet.Config{
		LogicalShards:     *logical,
		StreamWords:       *streamWrds,
		HeartbeatInterval: *heartbeat,
		SuspectAfter:      *suspectAf,
		DeadAfter:         *deadAfter,
		Clock:             time.Now,
	})
	if err != nil {
		log.Printf("randctl: %v", err)
		return 1
	}
	srv := fleet.NewServer(ctrl, fleet.ServerOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	httpErr := make(chan error, 1)
	go func() {
		cfg := ctrl.Config()
		log.Printf("randctl: controller on %s (%d logical shards, %d words/s per shard, heartbeat %v, suspect %v, dead %v)",
			*addr, cfg.LogicalShards, cfg.StreamWords, cfg.HeartbeatInterval, cfg.SuspectAfter, cfg.DeadAfter)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			httpErr <- err
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-httpErr:
		log.Printf("randctl: %v", err)
		return 1
	case <-sig:
	}
	log.Print("randctl: shutting down")
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	httpSrv.Shutdown(sctx)
	return 0
}

type clientFlags struct {
	status, endpoints, watch bool
	drainID, out             string
	timeout                  time.Duration
}

func runClient(control string, f clientFlags) int {
	switch {
	case f.status:
		return printJSON(control+"/v1/fleet", f.timeout)
	case f.endpoints && f.watch:
		return watchEndpoints(control)
	case f.endpoints:
		return printJSON(control+"/v1/endpoints", f.timeout)
	case f.drainID != "":
		return drainNode(control, f.drainID, f.out, f.timeout)
	default:
		log.Print("randctl: -control needs one of -status, -endpoints or -drain")
		return 2
	}
}

// printJSON fetches a controller endpoint and pretty-prints the body.
func printJSON(url string, timeout time.Duration) int {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		log.Printf("randctl: %v", err)
		return 1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Printf("randctl: %v", err)
		return 1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Printf("randctl: %s: %s: %s", url, resp.Status, body)
		return 1
	}
	var pretty map[string]any
	if json.Unmarshal(body, &pretty) == nil {
		if out, err := json.MarshalIndent(pretty, "", "  "); err == nil {
			fmt.Println(string(out))
			return 0
		}
	}
	os.Stdout.Write(body)
	return 0
}

// watchEndpoints long-polls the endpoint list forever, printing each
// version as one JSON line — the shell-scripting face of the same
// watch the SDK consumes through client.SetEndpoints.
func watchEndpoints(control string) int {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	enc := json.NewEncoder(os.Stdout)
	fleet.WatchEndpoints(ctx, control, nil, func(version uint64, endpoints []string) {
		enc.Encode(fleet.EndpointsResponse{Version: version, Endpoints: endpoints})
	})
	return 0
}

// drainNode runs the stream-preserving drain and lands blob + token
// where a successor's boot can pick them up.
func drainNode(control, id, out string, timeout time.Duration) int {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, control+"/v1/drain?id="+id, nil)
	if err != nil {
		log.Printf("randctl: %v", err)
		return 1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Printf("randctl: drain %s: %v", id, err)
		return 1
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Printf("randctl: drain %s: %s: %s", id, resp.Status, blob)
		return 1
	}
	token := resp.Header.Get("X-Fleet-Resume-Token")
	if out == "" {
		os.Stdout.Write(blob)
		fmt.Fprintf(os.Stderr, "randctl: drained %s: %d bytes, resume token %s\n", id, len(blob), token)
		return 0
	}
	if err := os.WriteFile(out, blob, 0o600); err != nil {
		log.Printf("randctl: write %s: %v", out, err)
		return 1
	}
	if err := os.WriteFile(out+".token", []byte(token+"\n"), 0o600); err != nil {
		log.Printf("randctl: write %s.token: %v", out, err)
		return 1
	}
	log.Printf("randctl: drained %s: %d bytes to %s, resume token %s (also in %s.token)",
		id, len(blob), out, token, out)
	return 0
}
