// Command crush runs the TestU01-style batteries (internal/testu01)
// against named generators and prints the paper's Table III: tests
// passed out of 15 for SmallCrush, Crush and BigCrush.
//
// Usage:
//
//	crush [-battery small|crush|big|all] [-seed N] [-gen name,...] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/testu01"
)

// tableIIIGenerators is the paper's Table III line-up: CURAND
// (XORWOW), the Mersenne Twister and the hybrid PRNG.
var tableIIIGenerators = []string{"xorwow", "mt19937", "hybrid-prng"}

func newGenerator(name string, seed uint64) (rng.Source, error) {
	switch name {
	case "hybrid-prng":
		return core.NewWalker(bitsource.Glibc(uint32(seed)), core.Config{})
	case "hybrid-prng-ansic":
		return core.NewWalker(bitsource.ANSIC(uint32(seed)), core.Config{})
	default:
		return baselines.New(name, seed)
	}
}

func main() {
	batteryFlag := flag.String("battery", "all", "small, crush, big, extended or all")
	seed := flag.Uint64("seed", 20120521, "generator seed")
	gens := flag.String("gen", strings.Join(tableIIIGenerators, ","), "comma-separated generator names")
	verbose := flag.Bool("v", false, "print every test's p-values")
	flag.Parse()

	var batteries []testu01.Battery
	switch strings.ToLower(*batteryFlag) {
	case "small":
		batteries = []testu01.Battery{testu01.SmallCrush()}
	case "crush":
		batteries = []testu01.Battery{testu01.Crush()}
	case "big":
		batteries = []testu01.Battery{testu01.BigCrush()}
	case "extended":
		batteries = []testu01.Battery{testu01.Extended()}
	case "all":
		batteries = testu01.Batteries()
	default:
		fmt.Fprintf(os.Stderr, "crush: unknown battery %q\n", *batteryFlag)
		os.Exit(1)
	}

	fmt.Printf("%-18s %-12s %s\n", "PRNG", "Test Suite", "Tests Passed")
	for _, name := range strings.Split(*gens, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		for _, b := range batteries {
			src, err := newGenerator(name, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "crush: %v\n", err)
				os.Exit(1)
			}
			out := b.Run(name, src)
			fmt.Printf("%-18s %-12s %d/%d\n", name, b.Name, out.Passed, out.Total)
			if *verbose {
				for _, r := range out.Results {
					status := "pass"
					if !r.Passed(0.001, 0.999) {
						status = "FAIL"
					}
					fmt.Printf("    %-22s %s  p=%.6f (%d values)\n", r.Name, status, r.P(), len(r.PValues))
				}
			}
		}
	}
}
