// Command photonmc regenerates the paper's Figure 8: Monte Carlo
// photon migration with the CUDAMCML-style baseline RNG versus the
// hybrid PRNG, over photon counts up to 256 M on the simulated
// platform, anchored by a real transport run on the three-layer
// medium.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/core"
	"repro/internal/photon"
)

func main() {
	measureN := flag.Int64("measure", 20000, "real photons used to measure transport behaviour")
	seed := flag.Uint64("seed", 20120521, "seed for the measured run")
	flag.Parse()

	tissue := photon.ThreeLayerSkin()
	res, err := photon.Simulate(tissue, *measureN, baselines.NewSplitMix64(*seed))
	if err != nil {
		die(err)
	}
	fmt.Printf("real transport on %d photons: Rsp=%.4f Rd=%.4f Tt=%.4f ΣA=%.4f (conservation %.4f)\n",
		res.Photons, res.Rsp, res.Rd, res.Tt,
		res.Conservation()-res.Rsp-res.Rd-res.Tt, res.Conservation())
	fmt.Printf("mean interaction sites per photon: %.1f\n\n", res.StepsPerPhoton())

	// Weight-clash quality comparison (the paper's Section VI-A
	// argument).
	mwc := baselines.NewMWCForThread(0, uint32(*seed))
	c32, err := photon.CountClashes(mwc, 1_000_000, 32)
	if err != nil {
		die(err)
	}
	w, err := core.NewWalker(bitsource.Glibc(uint32(*seed)), core.Config{})
	if err != nil {
		die(err)
	}
	c64, err := photon.CountClashes(w, 1_000_000, 64)
	if err != nil {
		die(err)
	}
	fmt.Printf("weight clashes per 1 M photons: MWC 32-bit init %d, hybrid 64-bit init %d\n\n",
		c32.Duplicates, c64.Duplicates)

	steps := res.StepsPerPhoton()
	fmt.Println("== Figure 8: time (ms) vs photons simulated, simulated platform ==")
	fmt.Printf("%-14s %-16s %-16s %s\n", "Photons (M)", "Original", "HybridResult", "Speedup")
	for _, m := range []int64{1, 4, 16, 64, 256} {
		n := m * 1_000_000
		orig, err := photon.SimulateTiming(photon.VariantOriginal, n, steps)
		if err != nil {
			die(err)
		}
		hyb, err := photon.SimulateTiming(photon.VariantHybrid, n, steps)
		if err != nil {
			die(err)
		}
		fmt.Printf("%-14d %-16.1f %-16.1f %.0f%%\n",
			m, orig.SimNs/1e6, hyb.SimNs/1e6, 100*(1-hyb.SimNs/orig.SimNs))
	}
	fmt.Println("\nSpeedup = hybrid over the CUDAMCML original (paper: ≈ 20%).")
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "photonmc:", err)
	os.Exit(1)
}
