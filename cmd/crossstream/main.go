// Command crossstream runs the cross-stream quality battery
// (internal/crossstream) against the real serving surfaces — the
// workers of a Parallel, the shards of a Pool, and the per-tenant
// substreams a keyed registry derives from adversarial key sets —
// and emits a JSON verdict suitable for CI artifacts. The process
// exits non-zero when any check fails, so a scheduled battery run
// fails its job on a real finding.
//
// With -benchtext the per-source verdicts are also written to stdout
// as `go test -bench`-style result lines, the input format
// cmd/benchseed understands — that is how the committed
// BENCH_quality.json trajectory is maintained:
//
//	crossstream -benchtext | benchseed -out BENCH_quality.json -merge
//
// Usage:
//
//	crossstream [-source parallel|pool|substream|both|all] [-streams N]
//	            [-seed N] [-long] [-out file.json] [-benchtext] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	hybridprng "repro"
	"repro/internal/crossstream"
	"repro/internal/rng"
	"repro/internal/substream"
)

// verdict is the emitted artifact: one report per stream source plus
// wall-clock accounting (cmd binaries may read clocks; the battery
// itself never does).
type verdict struct {
	Profile  string                `json:"profile"`
	Seed     uint64                `json:"seed"`
	Streams  int                   `json:"streams"`
	Reports  []*crossstream.Report `json:"reports"`
	Passed   int                   `json:"passed"`
	Total    int                   `json:"total"`
	Findings []string              `json:"findings"`
	WallMS   map[string]int64      `json:"wall_ms"`
}

func parallelSources(workers int, seed uint64) ([]rng.Source, error) {
	p, err := hybridprng.NewParallel(workers, hybridprng.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	srcs := make([]rng.Source, workers)
	for i := range srcs {
		srcs[i] = p.Worker(i)
	}
	return srcs, nil
}

// shardSource adapts one Pool shard to rng.Source via the ShardFill
// audit probe.
type shardSource struct {
	p   *hybridprng.Pool
	i   int
	buf []uint64
	idx int
}

func (s *shardSource) Uint64() uint64 {
	if s.idx == len(s.buf) {
		if err := s.p.ShardFill(s.i, s.buf); err != nil {
			fmt.Fprintf(os.Stderr, "crossstream: %v\n", err)
			os.Exit(1)
		}
		s.idx = 0
	}
	v := s.buf[s.idx]
	s.idx++
	return v
}

func poolSources(shards int, seed uint64) ([]rng.Source, error) {
	p, err := hybridprng.NewPool(hybridprng.WithSeed(seed),
		hybridprng.WithShards(shards), hybridprng.WithShardBuffer(64))
	if err != nil {
		return nil, err
	}
	if p.Shards() != shards {
		return nil, fmt.Errorf("shard count %d rounded to %d; pass a power of two", shards, p.Shards())
	}
	srcs := make([]rng.Source, shards)
	for i := range srcs {
		buf := make([]uint64, 256)
		srcs[i] = &shardSource{p: p, i: i, buf: buf, idx: len(buf)}
	}
	return srcs, nil
}

// adversarialKeys mirrors the root package's battery key builder:
// sequential user IDs, a long shared prefix, and single-bit-differing
// groups ('@' XOR one bit stays printable) — the key structure a
// tenant namespace actually produces and the derivation must erase.
func adversarialKeys(n int) []string {
	keys := make([]string, 0, n)
	half, quarter := n/2, n/4
	for i := 0; len(keys) < half; i++ {
		keys = append(keys, fmt.Sprintf("user-%04d", i+1))
	}
	for i := 0; len(keys) < half+quarter; i++ {
		keys = append(keys, fmt.Sprintf("tenant/eu-west-1/svc-%03d", i))
	}
	bits := []byte{0, 1, 2, 4, 8, 16, 32}
	for g := 0; len(keys) < n; g++ {
		for _, b := range bits {
			if len(keys) == n {
				break
			}
			keys = append(keys, fmt.Sprintf("bit-%03d-%c", g, '@'^b))
		}
	}
	return keys
}

// subSource adapts one tenant's registry stream to rng.Source.
type subSource struct {
	reg *substream.Registry
	key string
	buf []uint64
	idx int
}

func (s *subSource) Uint64() uint64 {
	if s.idx == len(s.buf) {
		if err := s.reg.Fill(s.key, s.buf); err != nil {
			fmt.Fprintf(os.Stderr, "crossstream: substream %q: %v\n", s.key, err)
			os.Exit(1)
		}
		s.idx = 0
	}
	v := s.buf[s.idx]
	s.idx++
	return v
}

func substreamSet(n int, rootSeed uint64) (crossstream.StreamSet, error) {
	reg, err := substream.New(substream.Config{RootSeed: rootSeed, MaxResident: n})
	if err != nil {
		return crossstream.StreamSet{}, err
	}
	keys := adversarialKeys(n)
	srcs := make([]rng.Source, n)
	for i, k := range keys {
		srcs[i] = &subSource{reg: reg, key: k, buf: make([]uint64, 256), idx: 256}
	}
	return crossstream.StreamSet{Name: "substream", Names: keys, Sources: srcs}, nil
}

// keyAvalanche maps the nearby-seed avalanche check onto sequential
// tenant keys: user-0001 vs user-0002 must avalanche like adjacent
// numeric seeds do.
func keyAvalanche(rootSeed uint64, seeds, words int) *crossstream.AvalancheConfig {
	return &crossstream.AvalancheConfig{
		Stream: func(seed uint64, words int) ([]uint64, error) {
			reg, err := substream.New(substream.Config{RootSeed: rootSeed})
			if err != nil {
				return nil, err
			}
			out := make([]uint64, words)
			if err := reg.Fill(fmt.Sprintf("user-%04d", seed), out); err != nil {
				return nil, err
			}
			return out, nil
		},
		BaseSeed: 1,
		Seeds:    seeds,
		Words:    words,
	}
}

func avalanche(baseSeed uint64, seeds, words int) *crossstream.AvalancheConfig {
	return &crossstream.AvalancheConfig{
		Stream: func(seed uint64, words int) ([]uint64, error) {
			g, err := hybridprng.New(hybridprng.WithSeed(seed))
			if err != nil {
				return nil, err
			}
			out := make([]uint64, words)
			g.Fill(out)
			return out, nil
		},
		BaseSeed: baseSeed,
		Seeds:    seeds,
		Words:    words,
	}
}

// writeBenchText renders the verdict as `go test -bench`-style result
// lines — the input format cmd/benchseed parses — so the quality
// trajectory rides the same merge/history machinery as the perf
// trajectories. One line per stream source; the metrics are counts
// plus the smallest decision p-value across the source's checks (the
// scalar to watch drift on PR over PR).
func writeBenchText(w io.Writer, v *verdict) {
	fmt.Fprintf(w, "goos: %s\n", runtime.GOOS)
	fmt.Fprintf(w, "goarch: %s\n", runtime.GOARCH)
	fmt.Fprintf(w, "pkg: repro/cmd/crossstream\n")
	for _, r := range v.Reports {
		minP := 1.0
		for _, c := range r.Checks {
			if c.P > 0 && c.P < minP {
				minP = c.P
			}
		}
		fmt.Fprintf(w, "BenchmarkQuality/%s 1 %d streams %d checks %d passed %d findings %.6g min-p\n",
			r.Name, r.Streams, r.Total, r.Passed, len(r.Findings), minP)
	}
}

func main() {
	source := flag.String("source", "all", "stream source: parallel, pool, substream, both (parallel+pool) or all")
	streams := flag.Int("streams", 0, "streams per source (default 256, or 2048 with -long; power of two for pool)")
	seed := flag.Uint64("seed", 20120521, "ensemble seed")
	long := flag.Bool("long", false, "run the long profile (more streams, longer prefixes, scaled batteries)")
	out := flag.String("out", "", "write the JSON verdict to this file (default stdout, unless -benchtext)")
	benchtext := flag.Bool("benchtext", false, "write go-test-bench-style verdict lines to stdout for cmd/benchseed")
	verbose := flag.Bool("v", false, "print every check")
	flag.Parse()

	cfg := crossstream.ShortProfile()
	n := 256
	avSeeds, avWords := 48, 16
	if *long {
		cfg = crossstream.LongProfile()
		n = 2048
		avSeeds, avWords = 128, 32
	}
	if *streams > 0 {
		n = *streams
	}

	v := &verdict{Profile: cfg.Profile, Seed: *seed, Streams: n, WallMS: map[string]int64{}}
	runSet := func(set crossstream.StreamSet, c crossstream.Config) {
		name := set.Name
		start := time.Now()
		r, err := crossstream.Run(set, c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crossstream: %s: %v\n", name, err)
			os.Exit(1)
		}
		v.WallMS[name] = time.Since(start).Milliseconds()
		v.Reports = append(v.Reports, r)
		v.Passed += r.Passed
		v.Total += r.Total
		v.Findings = append(v.Findings, r.Findings...)
		if *verbose {
			for _, c := range r.Checks {
				status := "pass"
				if !c.Pass {
					status = "FAIL"
				}
				fmt.Fprintf(os.Stderr, "%-8s %s/%s: %s\n", status, name, c.Name, c.Detail)
			}
		}
		fmt.Fprintf(os.Stderr, "%s (%d ms)\n", r.String(), v.WallMS[name])
	}

	if *source == "parallel" || *source == "both" || *source == "all" {
		srcs, err := parallelSources(n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crossstream: %v\n", err)
			os.Exit(1)
		}
		c := cfg
		c.Avalanche = avalanche(*seed, avSeeds, avWords)
		runSet(crossstream.FromSources("parallel", srcs), c)
	}
	if *source == "pool" || *source == "both" || *source == "all" {
		srcs, err := poolSources(n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crossstream: %v\n", err)
			os.Exit(1)
		}
		runSet(crossstream.FromSources("pool", srcs), cfg)
	}
	if *source == "substream" || *source == "all" {
		set, err := substreamSet(n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crossstream: %v\n", err)
			os.Exit(1)
		}
		c := cfg
		c.Avalanche = keyAvalanche(*seed, avSeeds, avWords)
		runSet(set, c)
	}
	if v.Total == 0 {
		fmt.Fprintf(os.Stderr, "crossstream: unknown source %q\n", *source)
		os.Exit(1)
	}

	if *benchtext {
		writeBenchText(os.Stdout, v)
	}
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "crossstream: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if !*benchtext {
			os.Stdout.Write(enc)
		}
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "crossstream: %v\n", err)
		os.Exit(1)
	}
	if len(v.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "crossstream: %d finding(s)\n", len(v.Findings))
		os.Exit(1)
	}
}
