// Command crossstream runs the cross-stream quality battery
// (internal/crossstream) against the real serving surfaces — the
// workers of a Parallel and/or the shards of a Pool — and emits a
// JSON verdict suitable for CI artifacts and the committed
// BENCH_quality.json trajectory. The process exits non-zero when any
// check fails, so a scheduled battery run fails its job on a real
// finding.
//
// Usage:
//
//	crossstream [-source parallel|pool|both] [-streams N] [-seed N]
//	            [-long] [-out file.json] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	hybridprng "repro"
	"repro/internal/crossstream"
	"repro/internal/rng"
)

// verdict is the emitted artifact: one report per stream source plus
// wall-clock accounting (cmd binaries may read clocks; the battery
// itself never does).
type verdict struct {
	Profile  string                `json:"profile"`
	Seed     uint64                `json:"seed"`
	Streams  int                   `json:"streams"`
	Reports  []*crossstream.Report `json:"reports"`
	Passed   int                   `json:"passed"`
	Total    int                   `json:"total"`
	Findings []string              `json:"findings"`
	WallMS   map[string]int64      `json:"wall_ms"`
}

func parallelSources(workers int, seed uint64) ([]rng.Source, error) {
	p, err := hybridprng.NewParallel(workers, hybridprng.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	srcs := make([]rng.Source, workers)
	for i := range srcs {
		srcs[i] = p.Worker(i)
	}
	return srcs, nil
}

// shardSource adapts one Pool shard to rng.Source via the ShardFill
// audit probe.
type shardSource struct {
	p   *hybridprng.Pool
	i   int
	buf []uint64
	idx int
}

func (s *shardSource) Uint64() uint64 {
	if s.idx == len(s.buf) {
		if err := s.p.ShardFill(s.i, s.buf); err != nil {
			fmt.Fprintf(os.Stderr, "crossstream: %v\n", err)
			os.Exit(1)
		}
		s.idx = 0
	}
	v := s.buf[s.idx]
	s.idx++
	return v
}

func poolSources(shards int, seed uint64) ([]rng.Source, error) {
	p, err := hybridprng.NewPool(hybridprng.WithSeed(seed),
		hybridprng.WithShards(shards), hybridprng.WithShardBuffer(64))
	if err != nil {
		return nil, err
	}
	if p.Shards() != shards {
		return nil, fmt.Errorf("shard count %d rounded to %d; pass a power of two", shards, p.Shards())
	}
	srcs := make([]rng.Source, shards)
	for i := range srcs {
		buf := make([]uint64, 256)
		srcs[i] = &shardSource{p: p, i: i, buf: buf, idx: len(buf)}
	}
	return srcs, nil
}

func avalanche(baseSeed uint64, seeds, words int) *crossstream.AvalancheConfig {
	return &crossstream.AvalancheConfig{
		Stream: func(seed uint64, words int) ([]uint64, error) {
			g, err := hybridprng.New(hybridprng.WithSeed(seed))
			if err != nil {
				return nil, err
			}
			out := make([]uint64, words)
			g.Fill(out)
			return out, nil
		},
		BaseSeed: baseSeed,
		Seeds:    seeds,
		Words:    words,
	}
}

func main() {
	source := flag.String("source", "both", "stream source: parallel, pool or both")
	streams := flag.Int("streams", 0, "streams per source (default 256, or 2048 with -long; power of two for pool)")
	seed := flag.Uint64("seed", 20120521, "ensemble seed")
	long := flag.Bool("long", false, "run the long profile (more streams, longer prefixes, scaled batteries)")
	out := flag.String("out", "", "write the JSON verdict to this file (default stdout)")
	verbose := flag.Bool("v", false, "print every check")
	flag.Parse()

	cfg := crossstream.ShortProfile()
	n := 256
	avSeeds, avWords := 48, 16
	if *long {
		cfg = crossstream.LongProfile()
		n = 2048
		avSeeds, avWords = 128, 32
	}
	if *streams > 0 {
		n = *streams
	}

	v := &verdict{Profile: cfg.Profile, Seed: *seed, Streams: n, WallMS: map[string]int64{}}
	runSet := func(name string, srcs []rng.Source, c crossstream.Config) {
		start := time.Now()
		r, err := crossstream.Run(crossstream.FromSources(name, srcs), c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crossstream: %s: %v\n", name, err)
			os.Exit(1)
		}
		v.WallMS[name] = time.Since(start).Milliseconds()
		v.Reports = append(v.Reports, r)
		v.Passed += r.Passed
		v.Total += r.Total
		v.Findings = append(v.Findings, r.Findings...)
		if *verbose {
			for _, c := range r.Checks {
				status := "pass"
				if !c.Pass {
					status = "FAIL"
				}
				fmt.Fprintf(os.Stderr, "%-8s %s/%s: %s\n", status, name, c.Name, c.Detail)
			}
		}
		fmt.Fprintf(os.Stderr, "%s (%d ms)\n", r.String(), v.WallMS[name])
	}

	if *source == "parallel" || *source == "both" {
		srcs, err := parallelSources(n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crossstream: %v\n", err)
			os.Exit(1)
		}
		c := cfg
		c.Avalanche = avalanche(*seed, avSeeds, avWords)
		runSet("parallel", srcs, c)
	}
	if *source == "pool" || *source == "both" {
		srcs, err := poolSources(n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crossstream: %v\n", err)
			os.Exit(1)
		}
		runSet("pool", srcs, cfg)
	}
	if v.Total == 0 {
		fmt.Fprintf(os.Stderr, "crossstream: unknown source %q\n", *source)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "crossstream: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "crossstream: %v\n", err)
		os.Exit(1)
	}
	if len(v.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "crossstream: %d finding(s)\n", len(v.Findings))
		os.Exit(1)
	}
}
