// Command ablation quantifies the design choices DESIGN.md calls
// out, on the real Go generator:
//
//   - walk length l: DIEHARD pass count and speed as l shrinks from
//     the paper's 64 — where does quality saturate?
//   - feed source: does a weaker/stronger feed change the verdict?
//   - graph choice: the Gabber–Galil walk against a degenerate ±1
//     cycle walk of identical cost shape — the expansion is what
//     buys the quality.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/bitsource"
	"repro/internal/core"
	"repro/internal/diehard"
	"repro/internal/rng"
)

func main() {
	scale := flag.Float64("scale", 0.5, "DIEHARD sample-size multiplier")
	seed := flag.Uint64("seed", 20120521, "feed seed")
	flag.Parse()

	fmt.Println("== Ablation 1: walk length l (feed: glibc) ==")
	fmt.Printf("%-6s %-12s %-12s %s\n", "l", "DIEHARD", "KS D", "ns/number")
	for _, l := range []int{1, 2, 4, 8, 16, 32, 64} {
		w, err := core.NewWalker(bitsource.Glibc(uint32(*seed)), core.Config{WalkLen: l})
		if err != nil {
			panic(err)
		}
		speed := measure(w)
		w2, _ := core.NewWalker(bitsource.Glibc(uint32(*seed)), core.Config{WalkLen: l})
		out := diehard.RunBattery(fmt.Sprintf("l=%d", l), w2, diehard.Config{Scale: *scale})
		fmt.Printf("%-6d %2d/%-9d %-12.4f %.0f\n", l, out.Passed, out.Total, out.KS.D, speed)
	}

	fmt.Println("\n== Ablation 2: feed source (l = 64) ==")
	fmt.Printf("%-10s %-12s %s\n", "feed", "DIEHARD", "KS D")
	feeds := map[string]*rng.BitReader{
		"ansic":    bitsource.ANSIC(uint32(*seed)),
		"glibc":    bitsource.Glibc(uint32(*seed)),
		"splitmix": bitsource.SplitMix(*seed),
	}
	for _, name := range []string{"ansic", "glibc", "splitmix"} {
		w, err := core.NewWalker(feeds[name], core.Config{})
		if err != nil {
			panic(err)
		}
		out := diehard.RunBattery(name, w, diehard.Config{Scale: *scale})
		fmt.Printf("%-10s %2d/%-9d %.4f\n", name, out.Passed, out.Total, out.KS.D)
	}

	fmt.Println("\n== Ablation 3: expander vs degenerate cycle walk (l = 64, glibc feed) ==")
	cyc := &cycleWalker{bits: bitsource.Glibc(uint32(*seed))}
	out := diehard.RunBattery("cycle-walk", cyc, diehard.Config{Scale: *scale})
	fmt.Printf("%-10s %2d/%-9d %.4f   (the Gabber–Galil walk above: 15/15)\n",
		"cycle", out.Passed, out.Total, out.KS.D)
}

// cycleWalker replaces the expander with a ±1 walk on the 2^64
// cycle: same feed, same step count, no expansion. Its outputs are a
// slowly drifting counter — the battery should demolish it.
type cycleWalker struct {
	bits *rng.BitReader
	pos  uint64
}

func (c *cycleWalker) Uint64() uint64 {
	for i := 0; i < 64; i++ {
		if c.bits.Bits(3)&1 == 1 {
			c.pos++
		} else {
			c.pos--
		}
	}
	return c.pos
}

func measure(w *core.Walker) float64 {
	const n = 200000
	start := time.Now()
	for i := 0; i < n; i++ {
		w.Next()
	}
	return float64(time.Since(start).Nanoseconds()) / n
}
