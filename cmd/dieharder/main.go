// Command dieharder runs the DIEHARD battery (internal/diehard)
// against named generators and prints the paper's Table II: tests
// passed out of 15 and the closing KS statistic D.
//
// Usage:
//
//	dieharder [-scale 1.0] [-seed 12345] [-gen name[,name...]] [-v]
//
// Generator names are those of internal/baselines plus
// "hybrid-prng" (the paper's generator, fed by glibc bits) and
// "hybrid-prng-ansic" (ablation: fed by the weaker ANSI C LCG).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/core"
	"repro/internal/diehard"
	"repro/internal/rng"
)

// tableIIGenerators is the paper's Table II line-up.
var tableIIGenerators = []string{"hybrid-prng", "md5-cudpp", "mt19937", "xorwow", "glibc-rand"}

func newGenerator(name string, seed uint64) (rng.Source, error) {
	switch name {
	case "hybrid-prng":
		return core.NewWalker(bitsource.Glibc(uint32(seed)), core.Config{})
	case "hybrid-prng-ansic":
		return core.NewWalker(bitsource.ANSIC(uint32(seed)), core.Config{})
	case "hybrid-prng-short-walk":
		return core.NewWalker(bitsource.Glibc(uint32(seed)), core.Config{WalkLen: 4})
	default:
		return baselines.New(name, seed)
	}
}

func main() {
	scale := flag.Float64("scale", 1.0, "sample-size multiplier (1.0 = reduced classic sizes)")
	seed := flag.Uint64("seed", 20120521, "generator seed")
	gens := flag.String("gen", strings.Join(tableIIGenerators, ","), "comma-separated generator names")
	verbose := flag.Bool("v", false, "print every test's p-values")
	flag.Parse()

	fmt.Printf("DIEHARD battery (scale %.2f, pass band [0.01, 0.99])\n", *scale)
	fmt.Printf("%-24s %-12s %s\n", "Generator", "Passed", "KS-Test D")
	for _, name := range strings.Split(*gens, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		src, err := newGenerator(name, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dieharder: %v\n", err)
			os.Exit(1)
		}
		out := diehard.RunBattery(name, src, diehard.Config{Scale: *scale})
		fmt.Printf("%-24s %2d/%-9d %.4f\n", name, out.Passed, out.Total, out.KS.D)
		if *verbose {
			for _, r := range out.Results {
				status := "pass"
				if !r.Passed(0.01, 0.99) {
					status = "FAIL"
				}
				fmt.Printf("    %-28s %s  p=%.6f  (all: %s)\n", r.Name, status, r.P(), fmtPs(r.PValues))
				if r.Err != nil {
					fmt.Printf("        error: %v\n", r.Err)
				}
			}
		}
	}
}

func fmtPs(ps []float64) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%.4f", p)
	}
	return strings.Join(parts, " ")
}
