// Command expander prints the analysis artefacts behind the
// generator's quality claim: total-variation mixing curves, the
// second singular value, sampled edge expansion against the
// Gabber–Galil bound, and diameter estimates — the "why a 64-step
// walk suffices" evidence.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baselines"
	"repro/internal/expander"
)

func main() {
	m := flag.Uint("m", 64, "side modulus of the analysis graph (vertices = m²)")
	maxSteps := flag.Int("steps", 64, "walk length to trace")
	flag.Parse()

	g, err := expander.New(uint32(*m))
	if err != nil {
		die(err)
	}
	fmt.Printf("Gabber–Galil expander, m = %d (%d vertices per side, degree %d)\n\n",
		*m, g.NumVertices(), expander.Degree)

	fmt.Println("total-variation distance to uniform (worst of 3 starts):")
	starts := []expander.Vertex{{X: 0, Y: 0}, {X: uint32(*m) - 1, Y: 1}, {X: uint32(*m) / 2, Y: uint32(*m) / 3}}
	for _, t := range []int{1, 2, 4, 8, 16, 32, *maxSteps} {
		tv, err := g.MixingTV(t, starts...)
		if err != nil {
			die(err)
		}
		fmt.Printf("  after %3d steps: TV = %.3e\n", t, tv)
	}

	src := baselines.NewSplitMix64(1)
	sigma, err := g.SecondSingularValue(100, src)
	if err != nil {
		die(err)
	}
	fmt.Printf("\nsecond singular value of the lazy walk: σ₂ ≈ %.4f (per-step contraction)\n", sigma)

	alpha, err := g.SampledEdgeExpansion(500, 0, src)
	if err != nil {
		die(err)
	}
	fmt.Printf("sampled edge expansion: ≥ observed %.3f (Gabber–Galil bound: %.4f)\n",
		alpha, expander.GabberGalilBound())

	diam, err := g.EstimateDiameter(starts)
	if err != nil {
		die(err)
	}
	fmt.Printf("diameter (BFS lower bound): %d  (log₂ n = %.1f)\n",
		diam, log2(float64(g.NumVertices())))
}

func log2(x float64) float64 {
	l := 0.0
	for x > 1 {
		x /= 2
		l++
	}
	return l
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "expander:", err)
	os.Exit(1)
}
