// Command prngbench regenerates the paper's generator-performance
// artefacts on the simulated platform (plus the real CPU-only
// measurement):
//
//	-table1   Table I: property matrix and speed ranking
//	-figure3  time to generate N numbers (hybrid vs MT vs CURAND)
//	-figure4  work-unit overlap and utilisation at block size 100
//	-figure5  time vs block size S
//	-figure6  CPU-only hybrid (real wall clock) vs serial glibc rand()
//
// With no flags it runs everything.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hybrid"
)

func main() {
	t1 := flag.Bool("table1", false, "Table I property/speed matrix")
	f3 := flag.Bool("figure3", false, "Figure 3 size sweep")
	f4 := flag.Bool("figure4", false, "Figure 4 work units")
	f5 := flag.Bool("figure5", false, "Figure 5 block-size sweep")
	f6 := flag.Bool("figure6", false, "Figure 6 CPU-only comparison")
	n6 := flag.Int("figure6-n", 2_000_000, "numbers for the real Figure 6 run")
	flag.Parse()
	all := !*t1 && !*f3 && !*f4 && !*f5 && !*f6

	if *t1 || all {
		table1()
	}
	if *f3 || all {
		figure3()
	}
	if *f4 || all {
		figure4()
	}
	if *f5 || all {
		figure5()
	}
	if *f6 || all {
		figure6(*n6)
	}
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "prngbench: %v\n", err)
	os.Exit(1)
}

// table1 reproduces Table I: qualitative properties plus a speed
// rank from the simulated platform at N = 100 M.
func table1() {
	fmt.Println("== Table I: comparison of properties ==")
	const n = 100_000_000
	time := func(f func(p *hybrid.Platform) (hybrid.Report, error)) float64 {
		p, err := hybrid.NewPlatform(hybrid.DefaultCostModel())
		if err != nil {
			die(err)
		}
		rep, err := f(p)
		if err != nil {
			die(err)
		}
		return rep.SimNs
	}
	hyb := time(func(p *hybrid.Platform) (hybrid.Report, error) { return p.GenerateHybrid(n, 100) })
	mt := time(func(p *hybrid.Platform) (hybrid.Report, error) { return p.GenerateMTBatch(n) })
	cu := time(func(p *hybrid.Platform) (hybrid.Report, error) { return p.GenerateCurandDevice(n) })
	// glibc rand() serial on the host model (three 31-bit calls per
	// 64-bit number, one core — rand() is not thread safe) and the
	// CUDPP MD5 generator (a device batch kernel slightly slower
	// than the SDK twister) are modelled from the same constants.
	glibc := float64(n) * 3 * 4 / 0.35 // ns: 3 calls × 4 B at 0.35 GB/s serial
	cudpp := mt * 1.05

	type row struct {
		name                          string
		onDemand, scalable, highSpeed string
		quality                       string
		simNs                         float64
	}
	rows := []row{
		{"glibc rand()", "yes", "no", "no", "low", glibc},
		{"CURAND (device)", "yes", "yes", "no", "high", cu},
		{"CUDPP (MD5)", "no", "limited", "no", "high", cudpp},
		{"M.Twister (SDK)", "no", "yes", "yes", "high", mt},
		{"Hybrid PRNG", "yes", "yes", "yes", "high", hyb},
	}
	// Rank by time (1 = fastest).
	fmt.Printf("%-18s %-10s %-10s %-11s %-9s %-12s %s\n",
		"PRNG", "On-Demand", "Scalable", "High Speed", "Quality", "Time(ms)", "Rank")
	for _, r := range rows {
		rank := 1
		for _, o := range rows {
			if o.simNs < r.simNs {
				rank++
			}
		}
		fmt.Printf("%-18s %-10s %-10s %-11s %-9s %-12.1f %d\n",
			r.name, r.onDemand, r.scalable, r.highSpeed, r.quality, r.simNs/1e6, rank)
	}
	fmt.Println()
}

func figure3() {
	fmt.Println("== Figure 3: time (ms) to generate N numbers, simulated platform ==")
	fmt.Printf("%-10s %-14s %-18s %-14s\n", "N (M)", "Hybrid", "Mersenne Twister", "CURAND")
	for _, n := range []int64{5, 10, 50, 100, 200, 500, 1000} {
		num := n * 1_000_000
		ph, _ := hybrid.NewPlatform(hybrid.DefaultCostModel())
		h, err := ph.GenerateHybrid(num, 100)
		if err != nil {
			die(err)
		}
		pm, _ := hybrid.NewPlatform(hybrid.DefaultCostModel())
		m, err := pm.GenerateMTBatch(num)
		if err != nil {
			die(err)
		}
		pc, _ := hybrid.NewPlatform(hybrid.DefaultCostModel())
		c, err := pc.GenerateCurandDevice(num)
		if err != nil {
			die(err)
		}
		fmt.Printf("%-10d %-14.1f %-18.1f %-14.1f\n", n, h.SimNs/1e6, m.SimNs/1e6, c.SimNs/1e6)
	}
	fmt.Println()
}

func figure4() {
	fmt.Println("== Figure 4: work-unit overlap at block size 100 ==")
	p, _ := hybrid.NewPlatform(hybrid.DefaultCostModel())
	rep, err := p.GenerateHybrid(5_000_000, 100)
	if err != nil {
		die(err)
	}
	fmt.Printf("FEED      %6.2f ns/number (CPU)\n", rep.FeedNsPerNumber)
	fmt.Printf("TRANSFER  %6.2f ns/number (PCIe)\n", rep.TransferNsPerNumber)
	fmt.Printf("GENERATE  %6.2f ns/number (GPU)\n", rep.GenNsPerNumber)
	fmt.Printf("CPU busy %.0f%%  GPU busy %.0f%% (GPU idle ≈ %.0f%%)  link busy %.0f%%\n",
		100*rep.CPUUtil, 100*rep.GPUUtil, 100*(1-rep.GPUUtil), 100*rep.LinkUtil)
	fmt.Printf("throughput %.4f GNumbers/s (paper headline: 0.07)\n\n", rep.ThroughputGNs())
}

func figure5() {
	fmt.Println("== Figure 5: time (ms) vs block size S, N = 10 M ==")
	fmt.Printf("%-12s %-12s %-10s %-10s\n", "Block size", "Time (ms)", "CPU busy", "GPU busy")
	for _, s := range []int{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 100000} {
		p, _ := hybrid.NewPlatform(hybrid.DefaultCostModel())
		rep, err := p.GenerateHybrid(10_000_000, s)
		if err != nil {
			die(err)
		}
		fmt.Printf("%-12d %-12.1f %-10.0f %-10.0f\n", s, rep.SimNs/1e6, 100*rep.CPUUtil, 100*rep.GPUUtil)
	}
	fmt.Println()
}

func figure6(n int) {
	fmt.Println("== Figure 6: CPU-only hybrid vs serial glibc rand() (REAL wall clock) ==")
	rep, _, err := hybrid.GenerateCPU(n, 0, core.Config{}, 20120521)
	if err != nil {
		die(err)
	}
	ser, _, err := hybrid.GenerateGlibcSerial(n, 20120521)
	if err != nil {
		die(err)
	}
	fmt.Println(rep)
	fmt.Println(ser)
	fmt.Printf("hybrid projected to the paper's 6-core i7: %.1f ms\n",
		rep.ProjectedWallNs(6)/1e6)
	fmt.Printf("(this host has %d core(s); the hybrid walkers scale linearly —\n"+
		" the paper's Figure 6 crossover needs ≳ %d cores at these per-number costs)\n\n",
		rep.HostCores, int(rep.PerNumberNs/ser.PerNumberNs)+1)
}
