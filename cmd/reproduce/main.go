// Command reproduce runs every experiment of the paper in sequence
// and prints the tables and figures of EXPERIMENTS.md: Table I,
// Figures 1 and 3–8, Tables II and III, and the headline throughput.
//
// Usage:
//
//	reproduce [-exp all|headline|F1|F3|F4|F5|F6|F7|F8|T1|T2|T3] [-fast]
//
// -fast shrinks the statistical batteries (T2/T3) to smoke-test
// sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/core"
	"repro/internal/diehard"
	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/rng"
	"repro/internal/testu01"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, headline, F1, F3..F8, T1..T3; extras: ablation, expander)")
	fast := flag.Bool("fast", false, "smoke-test sizes for the statistical batteries")
	flag.Parse()

	run := func(id string) bool { return *exp == "all" || strings.EqualFold(*exp, id) }

	if run("headline") {
		headline()
	}
	if run("F1") {
		figure1()
	}
	if run("T1") {
		delegate("prngbench", "-table1")
	}
	if run("F3") {
		delegate("prngbench", "-figure3")
	}
	if run("F4") {
		delegate("prngbench", "-figure4")
	}
	if run("F5") {
		delegate("prngbench", "-figure5")
	}
	if run("F6") {
		delegate("prngbench", "-figure6")
	}
	if run("T2") {
		table2(*fast)
	}
	if run("T3") {
		table3(*fast)
	}
	if run("F7") {
		delegate("listrank")
	}
	if run("F8") {
		delegate("photonmc")
	}
	// Extras run only when named explicitly (they are beyond the
	// paper's tables/figures).
	if strings.EqualFold(*exp, "ablation") {
		delegate("ablation")
	}
	if strings.EqualFold(*exp, "expander") {
		delegate("expander")
	}
}

// delegate runs a sibling tool in-process via `go run` when built
// from source, or the installed binary when on PATH; falling back to
// `go run ./cmd/<tool>` keeps the command usable from a source
// checkout.
func delegate(tool string, args ...string) {
	if path, err := exec.LookPath(tool); err == nil {
		cmd := exec.Command(path, args...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err == nil {
			return
		}
	}
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", tool, err)
		os.Exit(1)
	}
}

func headline() {
	fmt.Println("== Headline: generator throughput ==")
	p, err := hybrid.NewPlatform(hybrid.DefaultCostModel())
	if err != nil {
		die(err)
	}
	rep, err := p.GenerateHybrid(50_000_000, 100)
	if err != nil {
		die(err)
	}
	fmt.Printf("simulated platform: %.4f GNumbers/s (paper: 0.07)\n\n", rep.ThroughputGNs())
}

func figure1() {
	fmt.Println("== Figure 1: pure-device vs hybrid schedule ==")
	const n = 2_000_000
	ps, err := hybrid.NewPlatform(hybrid.DefaultCostModel())
	if err != nil {
		die(err)
	}
	serial, err := ps.PureDeviceSerialHybrid(n, 100)
	if err != nil {
		die(err)
	}
	po, _ := hybrid.NewPlatform(hybrid.DefaultCostModel())
	overlap, err := po.GenerateHybrid(n, 100)
	if err != nil {
		die(err)
	}
	fmt.Printf("serial (no overlap): %8.2f ms, CPU busy %2.0f%%, GPU busy %2.0f%%\n",
		serial.SimNs/1e6, 100*serial.CPUUtil, 100*serial.GPUUtil)
	fmt.Printf("hybrid (pipelined):  %8.2f ms, CPU busy %2.0f%%, GPU busy %2.0f%%\n",
		overlap.SimNs/1e6, 100*overlap.CPUUtil, 100*overlap.GPUUtil)
	fmt.Println("\npipelined timeline (first iterations; F=feed, T=transfer, G=generate):")
	fmt.Println(miniTimeline())
}

// miniTimeline renders a short hybrid schedule for the Figure 1/4
// visual.
func miniTimeline() string {
	sim := gpu.NewSim()
	dev, err := gpu.NewDevice(sim, gpu.TeslaC1060())
	if err != nil {
		die(err)
	}
	host, err := gpu.NewHost(sim, "cpu")
	if err != nil {
		die(err)
	}
	model := hybrid.DefaultCostModel()
	feedStream := dev.NewStream(0)
	genStream := dev.NewStream(0)
	var feedReady gpu.Time
	threads := 50_000
	perIter := int64(model.FeedBytesPerNumber() * float64(threads))
	for i := 0; i < 6; i++ {
		f := host.Compute("F", feedReady, model.FeedChunkOverheadNs+float64(perIter)/model.FeedBytesPerSec*1e9)
		feedReady = f.End
		feedStream.WaitFor(f.End)
		tr := feedStream.CopyH2D("T", perIter)
		genStream.WaitFor(tr.End)
		genStream.Launch(gpu.Kernel{Name: "G", Threads: threads, CyclesPerThread: model.GenCyclesPerNumber()})
	}
	return sim.TimelineString(92)
}

func newGenerator(name string, seed uint64) (rng.Source, error) {
	switch name {
	case "hybrid-prng":
		return core.NewWalker(bitsource.Glibc(uint32(seed)), core.Config{})
	default:
		return baselines.New(name, seed)
	}
}

func table2(fast bool) {
	fmt.Println("== Table II: DIEHARD battery ==")
	scale := 1.0
	if fast {
		scale = 0.25
	}
	fmt.Printf("%-24s %-12s %s\n", "Algorithm", "Tests", "KS-Test D")
	for _, name := range []string{"hybrid-prng", "md5-cudpp", "mt19937", "xorwow", "glibc-rand32"} {
		src, err := newGenerator(name, 20120521)
		if err != nil {
			die(err)
		}
		out := diehard.RunBattery(name, src, diehard.Config{Scale: scale})
		fmt.Printf("%-24s %2d/%-9d %.4f\n", name, out.Passed, out.Total, out.KS.D)
	}
	fmt.Println()
}

func table3(fast bool) {
	fmt.Println("== Table III: TestU01-style batteries ==")
	batteries := testu01.Batteries()
	if fast {
		batteries = batteries[:1]
	}
	fmt.Printf("%-14s %-12s %s\n", "PRNG", "Test Suite", "Tests Passed")
	for _, name := range []string{"xorwow", "mt19937", "hybrid-prng"} {
		for _, b := range batteries {
			src, err := newGenerator(name, 20120521)
			if err != nil {
				die(err)
			}
			out := b.Run(name, src)
			fmt.Printf("%-14s %-12s %d/%d\n", name, b.Name, out.Passed, out.Total)
		}
	}
	fmt.Println()
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}
