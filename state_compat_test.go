package hybridprng

import (
	"encoding/hex"
	"testing"
)

// poolBlobV1 is a container-v1 pool snapshot captured from the
// encoder as it existed before the recovery state machine: a
// two-shard pool (seed 20260805, 8-word rings, hMin 4) after 21
// draws with shard 1 fault-injected. v1 predates self-healing, so
// its tripped shards must restore retired — a legacy snapshot must
// not resurrect a feed that failed its health tests.
const poolBlobV1 = "6870726e672d706f6f6c010200000008000000150000000000000021010000d80000006870726e67020140000000400000000423eccb49754e671000000000000000a6a4b6820d1635a0008e000101ebee94894fb5542c562cdd61279e3376e0934fbbb874b9a5b861019707018a91f0a422510c163fc147f681363abfe5f529f802b80646443a85f9922f3a9ffb1c29daa8d8dc43d01b5c4b2c2322fb8e2b6fc327340c1635a052525bc10c26f832b0ca087d3057cc959d62d0fe359b33020a1c6e9d022b1c446cfb38fb04b2fbe59522b78fb73b1c71180000001e004d01090000000002000047000000a0010000003503000000a00100000100060000001bbb3d6db337843e2a736e10eded7cec74b806ef6f7fa0f7c5e0ad27b2d6bb953e0de19672c05aae0423eccb49754e670a0000000000000002000000000000000023010000f10000006870726e67020140000000400000002bdd97c4540fbd031000000000000000efcf1fae0a6b96f3008e0001015d251a2d0fab9d04c568119776b08eb8b202a23ee034fd944ff810983eb2b29ffbc08a322dd43e007ac1b8b6eb28fdc93d3d4d180af208ae039e411af4c964a6956e5b8d9ae702553bff6c75697c45816f59f8910b6b96f3f7e70f575f963bcbd06b297e8e6bcad5f03c4339f3fb00ae9de44209f6f44cc0a14173b82ea87c53b1d004ebfc0fa76f1800000037004d01090000000002000047000000f3010000002004000000a001000001010600666f726365640f006661756c7420696e6a656374696f6e000000000b000000000000000200000000000000010600666f726365640f006661756c7420696e6a656374696f6e"

// poolBlobV1Next is the continuation the live pool served after that
// snapshot was taken (shard 0's ring residue first, then fresh
// walker output; shard 1 skipped as tripped).
var poolBlobV1Next = [8]uint64{
	0x3e8437b36d3dbb1b, 0xec7ceded106e732a, 0xf7a07f6fef06b874, 0x95bbd6b227ade0c5,
	0xae5ac07296e10d3e, 0x674e7549cbec2304, 0xece05de77329a67f, 0xee49af8d7bbddb3b,
}

// TestPoolStateV1Decodes: the v3 decoder must keep reading v1 blobs,
// restoring their tripped shards as retired and continuing the
// healthy shard's stream bit-for-bit.
func TestPoolStateV1Decodes(t *testing.T) {
	blob, err := hex.DecodeString(poolBlobV1)
	if err != nil {
		t.Fatal(err)
	}
	p := new(Pool)
	if err := p.UnmarshalBinary(blob); err != nil {
		t.Fatalf("decode v1 pool blob: %v", err)
	}
	st := p.Stats()
	if p.Shards() != 2 || st.Healthy != 1 || st.Retired != 1 {
		t.Fatalf("restored v1 pool: %+v", st)
	}
	if ss := st.PerShard[1]; ss.State != "retired" || ss.Failure == "" {
		t.Fatalf("v1 tripped shard must restore retired with its failure: %+v", ss)
	}
	for i, want := range poolBlobV1Next {
		v, err := p.Uint64()
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("continuation word %d: %#x, want %#x", i, v, want)
		}
	}
	// Round-trip through the v3 encoder: same continuation after.
	p2 := new(Pool)
	blob3, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.UnmarshalBinary(blob3); err != nil {
		t.Fatalf("decode re-encoded v3 blob: %v", err)
	}
	a, errA := p.Uint64()
	b, errB := p2.Uint64()
	if errA != nil || errB != nil || a != b {
		t.Fatalf("v3 round-trip diverged: %#x/%v vs %#x/%v", a, errA, b, errB)
	}
}
