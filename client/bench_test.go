package client

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

// BenchmarkClientUint64 measures the steady-state per-draw cost over
// a local server — the ring's fast path: a buffer index bump under a
// mutex, with refills off the critical path.
func BenchmarkClientUint64(b *testing.B) {
	_, ts := newRanddServer(b)
	cl := newTestClient(b, Options{Endpoints: []string{ts.URL}})
	if _, err := cl.Uint64(); err != nil { // prime the ring
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Uint64(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cl.Stats().Stalls), "stalls")
}

// BenchmarkClientFill measures bulk draws: one lock round per dst
// block copy instead of per word.
func BenchmarkClientFill(b *testing.B) {
	_, ts := newRanddServer(b)
	cl := newTestClient(b, Options{Endpoints: []string{ts.URL}})
	dst := make([]uint64, 1024)
	if err := cl.Fill(dst); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(dst) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Fill(dst); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPrefetchHidesRTT is the acceptance bar for the prefetch ring:
// against a server 5ms away, steady-state p99 draw latency must sit
// far below the round-trip time, because the next block is already in
// flight while the current one drains — the paper's TRANSFER/GENERATE
// overlap, moved onto the network.
func TestPrefetchHidesRTT(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-distribution test; skipped in -short")
	}
	const rtt = 5 * time.Millisecond
	_, origin := newRanddServer(t)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(rtt)
		resp, err := http.Get(origin.URL + r.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 64*1024)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}))
	defer slow.Close()

	const blockWords = 1 << 15 // ~262 KiB blocks: drain time >> RTT
	cl := newTestClient(t, Options{
		Endpoints:     []string{slow.URL},
		BlockWords:    blockWords,
		MinBlockWords: blockWords,
		MaxBlockWords: blockWords,
	})
	// Warm up past the cold start: first block fetch plus one refill
	// cycle so the ring is in steady state.
	warm := make([]uint64, 2*blockWords)
	if err := cl.Fill(warm); err != nil {
		t.Fatal(err)
	}

	const draws = 100_000
	lat := make([]time.Duration, draws)
	for i := range lat {
		start := time.Now()
		if _, err := cl.Uint64(); err != nil {
			t.Fatal(err)
		}
		lat[i] = time.Since(start)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50, p99, max := lat[draws/2], lat[draws*99/100], lat[draws-1]
	t.Logf("steady-state draw latency over %v-RTT link: p50=%v p99=%v max=%v (stats %+v)",
		rtt, p50, p99, max, cl.Stats())
	if p99 >= time.Millisecond {
		t.Errorf("p99 draw latency %v is not ≪ the %v RTT — prefetch is not hiding the network", p99, rtt)
	}
}
