package client

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// fetchBlock obtains one block of words*8 random bytes from the
// fleet, failing over between endpoints until it succeeds or makes
// no progress for MaxStall. Waits between attempts come from the
// endpoint set's backoff bookkeeping — Retry-After and exponential
// backoff are both honoured here, so a struggling fleet is probed,
// never hammered.
func (c *Client) fetchBlock(words int) ([]byte, *endpoint, error) {
	deadline := c.now().Add(c.opts.MaxStall)
	var lastErr error
	for {
		if err := c.ctx.Err(); err != nil {
			return nil, nil, err
		}
		// A Substream handle inside its tenant's shed window waits it
		// out here instead of hammering a perfectly healthy endpoint
		// with draws the token bucket will refuse anyway.
		if until := time.Unix(0, c.shedUntil.Load()); c.now().Before(until) {
			if c.now().After(deadline) {
				if lastErr == nil {
					lastErr = fmt.Errorf("client: tenant stream shed until %v", until)
				}
				return nil, nil, lastErr
			}
			wait := until.Sub(c.now())
			if u := deadline.Sub(c.now()); wait > u {
				wait = u + time.Millisecond
			}
			select {
			case <-c.after(wait):
			case <-c.ctx.Done():
				return nil, nil, c.ctx.Err()
			}
			continue
		}
		ep, wait := c.eps.pick(c.now())
		if ep == nil {
			if c.now().After(deadline) {
				if lastErr == nil {
					lastErr = fmt.Errorf("client: no endpoint available within %v", c.opts.MaxStall)
				}
				return nil, nil, lastErr
			}
			if wait <= 0 {
				wait = 10 * time.Millisecond
			}
			if until := deadline.Sub(c.now()); wait > until {
				wait = until + time.Millisecond
			}
			select {
			case <-c.after(wait):
			case <-c.ctx.Done():
				return nil, nil, c.ctx.Err()
			}
			continue
		}
		b, err := c.fetchOnce(ep, words)
		if err == nil {
			return b, ep, nil
		}
		lastErr = err
		c.retries.Add(1)
		if c.now().After(deadline) {
			return nil, nil, lastErr
		}
	}
}

// fetchOnce runs a single attempt against ep: a /healthz probe first
// when the endpoint is coming back from failures (active health
// checking — don't route draws to a server that says it is down),
// then the block fetch itself, hedged when configured.
func (c *Client) fetchOnce(ep *endpoint, words int) ([]byte, error) {
	if c.eps.suspect(ep) {
		if err := c.probe(ep); err != nil {
			c.eps.fail(ep, 0)
			return nil, err
		}
	}
	if c.opts.HedgeDelay > 0 {
		return c.fetchHedged(ep, words)
	}
	return c.fetchBytes(c.ctx, ep, words)
}

// probe asks ep's /healthz whether it is serving. "degraded" counts
// as serving — that is exactly what the state means.
func (c *Client) probe(ep *endpoint) error {
	ctx, cancel := context.WithTimeout(c.ctx, DefaultProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: probe %s: %w", ep.base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: %s/healthz: %s", ep.base, resp.Status)
	}
	return nil
}

// fetchHedged races the primary fetch against a second endpoint
// started after HedgeDelay: first success wins, the loser is
// cancelled. Tail latency becomes min(two samples) at the cost of
// occasional duplicate work — the standard hedging trade.
func (c *Client) fetchHedged(primary *endpoint, words int) ([]byte, error) {
	ctx, cancel := context.WithCancel(c.ctx)
	defer cancel()
	type result struct {
		b   []byte
		ep  *endpoint
		err error
	}
	ch := make(chan result, 2)
	launch := func(ep *endpoint) {
		go func() {
			b, err := c.fetchBytes(ctx, ep, words)
			ch <- result{b, ep, err}
		}()
	}
	launch(primary)
	inFlight := 1
	hedged := false
	timer := time.NewTimer(c.opts.HedgeDelay)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			inFlight--
			if r.err == nil {
				if hedged && r.ep != primary {
					c.hedgeWins.Add(1)
				}
				return r.b, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if inFlight == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if ep2 := c.eps.pickOther(primary, c.now()); ep2 != nil {
				hedged = true
				c.hedges.Add(1)
				inFlight++
				launch(ep2)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// fetchBytes performs one GET against ep's draw path — /bytes for
// the shared pool, the keyed /v1/stream/{key}/bytes for a Substream
// handle — and returns the word-aligned prefix of the body.
// Endpoint health bookkeeping
// happens here: 429 arms the Retry-After backoff, other failures arm
// the exponential one, success clears it and records the
// cooperation headers. A truncated body is both: its whole words are
// valid served randomness (kept), but the endpoint clearly struggled
// mid-response (marked failed), and the partial trailing word is
// dropped — it must never be stitched to the next block.
func (c *Client) fetchBytes(ctx context.Context, ep *endpoint, words int) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep.base+c.drawPath+"?n="+strconv.Itoa(words*8), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.eps.fail(ep, 0)
		return nil, fmt.Errorf("client: %s%s: %w", ep.base, c.drawPath, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		c.sheds.Add(1)
		// A 429 on the shared /bytes path means the server itself is
		// overloaded — back the endpoint off fleet-wide. On a keyed
		// substream path it means this tenant's token bucket ran dry,
		// which says nothing about the endpoint's health: poisoning
		// the shared failover state would stall every other tenant,
		// so only this handle backs off, for the bucket's own
		// Retry-After estimate.
		ra := parseRetryAfter(resp.Header)
		if c.parent == nil {
			c.eps.fail(ep, ra)
		} else {
			if ra <= 0 {
				ra = c.opts.BackoffBase
			}
			c.shedUntil.Store(c.now().Add(ra).UnixNano())
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("client: %s shed the request (429)", ep.base)
	default:
		c.eps.fail(ep, 0)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("client: %s%s: %s", ep.base, c.drawPath, resp.Status)
	}
	body, readErr := io.ReadAll(resp.Body)
	usable := len(body) - len(body)%8
	if usable == 0 {
		c.eps.fail(ep, 0)
		if readErr != nil {
			return nil, fmt.Errorf("client: %s%s body: %w", ep.base, c.drawPath, readErr)
		}
		return nil, fmt.Errorf("client: %s%s: empty block", ep.base, c.drawPath)
	}
	if readErr != nil || len(body) != words*8 {
		// Truncated: keep the aligned prefix, drop the torn tail,
		// and treat the endpoint as failing.
		c.discarded.Add(uint64(len(body) - usable))
		c.eps.fail(ep, 0)
		return body[:usable], nil
	}
	c.eps.ok(ep, resp.Header)
	return body, nil
}
