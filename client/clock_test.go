package client

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic time source for tests: Now returns
// the virtual instant, After registers a waiter that fires once
// Advance moves the clock past its deadline. Injected through
// Options.Clock / Options.after, it turns the client's backoff and
// failover timelines into instant, reproducible unit tests.
type fakeClock struct {
	mu      sync.Mutex
	t       time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := f.t.Add(d)
	if d <= 0 {
		ch <- f.t
		return ch
	}
	f.waiters = append(f.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward and fires every waiter whose
// deadline has passed.
func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
	kept := f.waiters[:0]
	for _, w := range f.waiters {
		if !f.t.Before(w.at) {
			w.ch <- f.t
		} else {
			kept = append(kept, w)
		}
	}
	f.waiters = kept
}

// TestBackoffExponentialJittered pins the fail() backoff shape on a
// fake clock: exponential growth from BackoffBase, deterministic
// jitter within ±JitterFrac, the BackoffMax cap — and the whole
// timeline reproducible from the seed.
func TestBackoffExponentialJittered(t *testing.T) {
	const (
		base   = 100 * time.Millisecond
		max    = 2 * time.Second
		jitter = 0.2
	)
	build := func() (*endpointSet, *fakeClock) {
		fc := newFakeClock()
		s, err := newEndpointSet(Options{
			Endpoints:   []string{"http://a", "http://b"},
			BackoffBase: base,
			BackoffMax:  max,
			JitterFrac:  jitter,
			Seed:        42,
			Clock:       fc.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, fc
	}
	s, fc := build()
	ep := s.eps[0]
	want := float64(base)
	var seen []time.Duration
	for k := 0; k < 8; k++ {
		s.fail(ep, 0)
		d := func() time.Duration {
			s.mu.Lock()
			defer s.mu.Unlock()
			return ep.until.Sub(fc.Now())
		}()
		seen = append(seen, d)
		lo := time.Duration(want * (1 - jitter))
		hi := time.Duration(want * (1 + jitter))
		if d < lo || d > hi {
			t.Errorf("failure %d: backoff %v outside [%v, %v]", k+1, d, lo, hi)
		}
		if want < float64(max) {
			want *= 2
		}
		if want > float64(max) {
			want = float64(max)
		}
	}
	// Same seed, same endpoint, same failure count → same timeline.
	s2, fc2 := build()
	for k := 0; k < 8; k++ {
		s2.fail(s2.eps[0], 0)
		d := func() time.Duration {
			s2.mu.Lock()
			defer s2.mu.Unlock()
			return s2.eps[0].until.Sub(fc2.Now())
		}()
		if d != seen[k] {
			t.Errorf("failure %d: backoff not reproducible: %v vs %v", k+1, d, seen[k])
		}
	}
}

// TestRetryAfterFloor: an explicit Retry-After always wins over a
// shorter computed backoff.
func TestRetryAfterFloor(t *testing.T) {
	fc := newFakeClock()
	s, err := newEndpointSet(Options{
		Endpoints:   []string{"http://a"},
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		JitterFrac:  0.2,
		Clock:       fc.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep := s.eps[0]
	s.fail(ep, 5*time.Second)
	s.mu.Lock()
	d := ep.until.Sub(fc.Now())
	s.mu.Unlock()
	if d < 5*time.Second {
		t.Errorf("backoff %v shorter than the promised Retry-After of 5s", d)
	}
}

// TestPickSkipsBackingOff: a failed endpoint is skipped until its
// window passes; when the whole fleet is backing off, pick reports
// the shortest wait instead of an endpoint.
func TestPickSkipsBackingOff(t *testing.T) {
	fc := newFakeClock()
	s, err := newEndpointSet(Options{
		Endpoints:   []string{"http://a", "http://b"},
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  time.Second,
		JitterFrac:  0, // exact windows for this test
		Clock:       fc.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.eps[0], s.eps[1]
	s.fail(a, 0)
	for i := 0; i < 4; i++ {
		ep, wait := s.pick(fc.Now())
		if ep != b || wait != 0 {
			t.Fatalf("pick %d: got %+v wait %v, want endpoint b immediately", i, ep, wait)
		}
	}
	s.fail(b, 0)
	ep, wait := s.pick(fc.Now())
	if ep != nil {
		t.Fatalf("whole fleet backing off, yet pick returned %v", ep.base)
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("pick wait = %v, want within the 100ms window", wait)
	}
	fc.Advance(101 * time.Millisecond)
	if ep, _ = s.pick(fc.Now()); ep == nil {
		t.Fatal("backoff window passed, pick still returns nothing")
	}
}

// TestSuspectLifecycle: failures put an endpoint on probation
// (probe-before-readmit) and one success clears it.
func TestSuspectLifecycle(t *testing.T) {
	fc := newFakeClock()
	s, err := newEndpointSet(Options{
		Endpoints:   []string{"http://a"},
		BackoffBase: time.Millisecond,
		BackoffMax:  time.Millisecond,
		Clock:       fc.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep := s.eps[0]
	if s.suspect(ep) {
		t.Fatal("fresh endpoint already suspect")
	}
	s.fail(ep, 0)
	if !s.suspect(ep) {
		t.Fatal("endpoint not suspect after a failure")
	}
	s.ok(ep, nil)
	if s.suspect(ep) {
		t.Fatal("endpoint still suspect after a success")
	}
}
