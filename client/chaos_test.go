package client

import (
	"encoding/binary"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hybridprng "repro"
	"repro/internal/chaos"
	"repro/internal/server"
)

// TestChaosFailover drives the client against a randd whose feeds
// are corrupted by an aggressive internal/chaos schedule (shards
// trip through the real SP 800-90B path, the pool degrades and goes
// unhealthy) next to a clean sibling. The client must absorb the
// whole failure sequence — degraded hints, 503s, connection-level
// errors — without a single failed draw.
func TestChaosFailover(t *testing.T) {
	chaotic, err := hybridprng.NewPool(
		hybridprng.WithSeed(11),
		hybridprng.WithShards(2),
		hybridprng.WithHealthMonitoring(4),
		hybridprng.WithFeedWrapper(chaos.Wrapper(chaos.Config{
			Seed:       99,
			MeanPeriod: 128, // fault within the first blocks
			MeanLen:    256,
			Kinds:      []chaos.Kind{chaos.Stuck, chaos.Bias},
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	srvA, err := server.New(chaotic, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	_, tsB := newRanddServer(t, hybridprng.WithSeed(12), hybridprng.WithShards(2))

	cl := newTestClient(t, Options{
		Endpoints:     []string{tsA.URL, tsB.URL},
		BlockWords:    4096,
		MinBlockWords: 4096,
		MaxBlockWords: 4096,
		BackoffBase:   10 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
	})

	dst := make([]uint64, 2048)
	for drawn := 0; drawn < 200_000; drawn += len(dst) {
		if err := cl.Fill(dst); err != nil {
			t.Fatalf("Fill after %d draws: %v (stats %+v)", drawn, err, cl.Stats())
		}
	}
	st := cl.Stats()
	t.Logf("chaos run stats: %+v", st)
	t.Logf("chaotic pool: %+v", chaotic.Stats())
	// The chaos schedule must actually have bitten — the pool tripped
	// — and the client must have reacted to A (passive failure marks
	// and/or the degraded hint steering traffic to B).
	if chaotic.Stats().HealthTrips == 0 {
		t.Fatal("chaos schedule never tripped a shard; test proves nothing")
	}
	reacted := st.Endpoints[0].Failures > 0 || st.Endpoints[0].Degraded || st.Failovers > 0
	if !reacted {
		t.Errorf("client never reacted to the chaotic endpoint; stats %+v", st)
	}
}

// TestRetryAfterHonored: a shedding server's Retry-After is a
// promise the client keeps — under continuous draw pressure against
// an always-429 endpoint it must not hammer: at most one draw
// attempt per Retry-After window. The whole timeline runs on a fake
// clock — a virtual MaxStall of 1.2s elapses in milliseconds of real
// time — so the test asserts the backoff *schedule*, not sleeps.
func TestRetryAfterHonored(t *testing.T) {
	var bytesHits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/bytes", func(w http.ResponseWriter, r *http.Request) {
		bytesHits.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server at capacity", http.StatusTooManyRequests)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	fc := newFakeClock()
	cl := newTestClient(t, Options{
		Endpoints:   []string{ts.URL},
		BackoffBase: 20 * time.Millisecond,
		MaxStall:    1200 * time.Millisecond,
		Clock:       fc.Now,
		after:       fc.After,
	})
	// Drive the virtual clock until the draw gives up. Small steps
	// with real yields in between let the refill goroutine observe
	// each backoff window.
	stopDriving := make(chan struct{})
	var driverDone sync.WaitGroup
	driverDone.Add(1)
	go func() {
		defer driverDone.Done()
		for {
			select {
			case <-stopDriving:
				return
			default:
				fc.Advance(5 * time.Millisecond)
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	virtStart := fc.Now()
	_, err := cl.Uint64()
	virtElapsed := fc.Now().Sub(virtStart)
	close(stopDriving)
	driverDone.Wait()
	if err == nil {
		t.Fatal("draw against an always-429 fleet succeeded")
	}
	if virtElapsed < 900*time.Millisecond {
		t.Errorf("draw failed after %v virtual, should have kept retrying ~MaxStall", virtElapsed)
	}
	// One attempt at t=0 plus at most one per Retry-After second of
	// the virtual timeline; more is hammering in defiance of the
	// header.
	maxAttempts := 2 + int64(virtElapsed/time.Second)
	if n := bytesHits.Load(); n > maxAttempts {
		t.Errorf("%d /bytes attempts in %v virtual against Retry-After: 1 — hammering", n, virtElapsed)
	}
	if st := cl.Stats(); st.Sheds429 == 0 {
		t.Errorf("no 429 recorded; stats %+v", st)
	}
}

// TestNoTornWords: a server that truncates every response mid-word
// must never cause the client to emit a word that the server did not
// produce — the aligned prefix is kept, the torn tail discarded, and
// every drawn word appears verbatim in the server's true stream.
func TestNoTornWords(t *testing.T) {
	const trunc = 3 // bytes cut from every response
	pool, err := hybridprng.NewPool(hybridprng.WithSeed(9), hybridprng.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/bytes", func(w http.ResponseWriter, r *http.Request) {
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		words := make([]uint64, n/8)
		if err := pool.Fill(words); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		raw := make([]byte, len(words)*8)
		for i, v := range words {
			binary.LittleEndian.PutUint64(raw[8*i:], v)
		}
		// Promise n bytes, deliver n-trunc: the client sees an
		// unexpected EOF with a partial trailing word.
		w.Header().Set("Content-Length", strconv.Itoa(n))
		w.Write(raw[:len(raw)-trunc])
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// The reference stream: an identical pool drained the same way
	// (512-word fills, matching the handler above).
	ref, err := hybridprng.NewPool(hybridprng.WithSeed(9), hybridprng.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	inStream := make(map[uint64]bool, 1<<16)
	buf := make([]uint64, 512)
	for i := 0; i < 128; i++ {
		if err := ref.Fill(buf); err != nil {
			t.Fatal(err)
		}
		for _, v := range buf {
			inStream[v] = true
		}
	}

	cl := newTestClient(t, Options{
		Endpoints:     []string{ts.URL},
		BlockWords:    512,
		MinBlockWords: 512,
		MaxBlockWords: 512,
		BackoffBase:   time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
	})
	for i := 0; i < 4000; i++ {
		v, err := cl.Uint64()
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		if !inStream[v] {
			t.Fatalf("draw %d = %#x is not a word the server produced — torn word", i, v)
		}
	}
	st := cl.Stats()
	if st.DiscardedBytes == 0 {
		t.Errorf("no discarded bytes despite %d-byte truncations; stats %+v", trunc, st)
	}
	t.Logf("torn-word run stats: %+v", st)
}
