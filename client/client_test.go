package client

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	hybridprng "repro"
	"repro/internal/server"
)

// newRanddServer boots an in-process randd (pool + HTTP layer) over
// httptest and returns its base URL.
func newRanddServer(t testing.TB, poolOpts ...hybridprng.Option) (*hybridprng.Pool, *httptest.Server) {
	t.Helper()
	if len(poolOpts) == 0 {
		poolOpts = []hybridprng.Option{
			hybridprng.WithSeed(1),
			hybridprng.WithShards(4),
			hybridprng.WithHealthMonitoring(4),
		}
	}
	pool, err := hybridprng.NewPool(poolOpts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(pool, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return pool, ts
}

func newTestClient(t testing.TB, opts Options) *Client {
	t.Helper()
	cl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestStreamEquality: a client over a single seeded server must see
// exactly the pool's word stream — the prefetch ring reorders
// nothing, loses nothing, tears nothing.
func TestStreamEquality(t *testing.T) {
	_, ts := newRanddServer(t, hybridprng.WithSeed(42), hybridprng.WithShards(1))
	cl := newTestClient(t, Options{
		Endpoints:     []string{ts.URL},
		BlockWords:    512,
		MinBlockWords: 512,
		MaxBlockWords: 512,
	})

	ref, err := hybridprng.NewPool(hybridprng.WithSeed(42), hybridprng.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	want := make([]uint64, n)
	// The server serves /bytes through Fill in 512-word requests;
	// mirror that so both sides take the pool's direct-fill path.
	for off := 0; off < n; off += 512 {
		if err := ref.Fill(want[off : off+512]); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 2048; i++ {
		v, err := cl.Uint64()
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		if v != want[i] {
			t.Fatalf("draw %d = %#x, want %#x", i, v, want[i])
		}
	}
	rest := make([]uint64, 2048)
	if err := cl.Fill(rest); err != nil {
		t.Fatal(err)
	}
	for i, v := range rest {
		if v != want[2048+i] {
			t.Fatalf("Fill word %d = %#x, want %#x", i, v, want[2048+i])
		}
	}
	if st := cl.Stats(); st.Draws != n {
		t.Errorf("Draws = %d, want %d", st.Draws, n)
	}
}

// TestReadAlignment: an odd-sized Read that leaves a sub-word tail
// at the end of a block forces the next Uint64 onto the following
// block — the tail is discarded and accounted, never stitched into a
// torn word.
func TestReadAlignment(t *testing.T) {
	_, ts := newRanddServer(t)
	cl := newTestClient(t, Options{
		Endpoints:     []string{ts.URL},
		BlockWords:    512,
		MinBlockWords: 512,
		MaxBlockWords: 512, // 4096-byte blocks
	})
	buf := make([]byte, 4093) // leaves a 3-byte tail in block 1
	if n, err := cl.Read(buf); n != 4093 || err != nil {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if _, err := cl.Uint64(); err != nil {
		t.Fatal(err)
	}
	if d := cl.Stats().DiscardedBytes; d != 3 {
		t.Errorf("DiscardedBytes = %d, want 3 (block-end residue of a 4093-byte read)", d)
	}
}

// TestFailoverMidStream is the acceptance bar: kill the active
// endpoint mid-stream and lose no draws — the client cuts over to
// the surviving server within one backoff window.
func TestFailoverMidStream(t *testing.T) {
	_, tsA := newRanddServer(t, hybridprng.WithSeed(1), hybridprng.WithShards(2))
	_, tsB := newRanddServer(t, hybridprng.WithSeed(2), hybridprng.WithShards(2))
	cl := newTestClient(t, Options{
		Endpoints:   []string{tsA.URL, tsB.URL},
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
	})

	draw := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := cl.Uint64(); err != nil {
				t.Fatalf("draw %d: %v", i, err)
			}
		}
	}
	draw(20000)
	// Kill server A the way a SIGKILL would look from the network:
	// in-flight connections torn down, new ones refused.
	tsA.CloseClientConnections()
	tsA.Close()
	start := time.Now()
	draw(100000)
	t.Logf("drew 100k words across the kill in %v; stats %+v", time.Since(start), cl.Stats())
	if st := cl.Stats(); st.Draws != 120000 {
		t.Errorf("Draws = %d, want 120000", st.Draws)
	}
}

// TestCloseUnblocksDraw: Close must promptly unblock a draw stalled
// on an empty ring (endpoint accepting connections but never
// answering).
func TestCloseUnblocksDraw(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer hang.Close()
	cl, err := New(Options{Endpoints: []string{hang.URL}})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := cl.Uint64()
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cl.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("draw after Close: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("draw still blocked 5s after Close")
	}
}

// TestOptionsValidation: bad configurations fail at New, not at the
// first draw.
func TestOptionsValidation(t *testing.T) {
	for name, opts := range map[string]Options{
		"no endpoints":        {},
		"bad scheme":          {Endpoints: []string{"ftp://host"}},
		"missing host":        {Endpoints: []string{"http://"}},
		"min above max":       {Endpoints: []string{"http://h"}, MinBlockWords: 4096, MaxBlockWords: 512},
		"jitter out of range": {Endpoints: []string{"http://h"}, JitterFrac: 1.5},
	} {
		if _, err := New(opts); err == nil {
			t.Errorf("%s: New accepted %+v", name, opts)
		}
	}
}

// TestAdaptiveBlockGrowth: a consumer that outruns the network must
// drive the block size up — the client-side block-size sweep finding
// its sweet spot.
func TestAdaptiveBlockGrowth(t *testing.T) {
	pool, err := hybridprng.NewPool(hybridprng.WithSeed(3), hybridprng.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(pool, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(10 * time.Millisecond) // a network worth hiding
		srv.Handler().ServeHTTP(w, r)
	}))
	defer slow.Close()
	cl := newTestClient(t, Options{
		Endpoints:     []string{slow.URL},
		BlockWords:    512,
		MinBlockWords: 512,
		MaxBlockWords: 1 << 16,
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := cl.Uint64(); err != nil {
			t.Fatal(err)
		}
		if cl.Stats().BlockWords > 512 {
			return // grew: the stall signal worked
		}
	}
	t.Fatalf("block size never grew above 512 under a fast consumer; stats %+v", cl.Stats())
}

// TestHedgedRequests: with hedging armed, a slow primary is raced
// against a second endpoint and the fast one wins.
func TestHedgedRequests(t *testing.T) {
	var delayA atomic.Bool
	delayA.Store(true)
	poolA, tsARaw := newRanddServer(t, hybridprng.WithSeed(4), hybridprng.WithShards(1))
	_ = poolA
	slowA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if delayA.Load() {
			time.Sleep(300 * time.Millisecond)
		}
		// Re-serve from A's real handler via reverse proxying the
		// request path onto the underlying test server.
		resp, err := http.Get(tsARaw.URL + r.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32*1024)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}))
	defer slowA.Close()
	_, tsB := newRanddServer(t, hybridprng.WithSeed(5), hybridprng.WithShards(1))

	cl := newTestClient(t, Options{
		Endpoints:  []string{slowA.URL, tsB.URL},
		HedgeDelay: 25 * time.Millisecond,
	})
	start := time.Now()
	if _, err := cl.Uint64(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	st := cl.Stats()
	if st.Hedges == 0 {
		t.Fatalf("no hedge launched against a 300ms primary; stats %+v", st)
	}
	if st.HedgeWins == 0 {
		t.Errorf("hedge never won against a 300ms primary (elapsed %v); stats %+v", elapsed, st)
	}
	t.Logf("first draw in %v, stats %+v", elapsed, st)
}

// TestRandAdapter: the math/rand/v2 adapter draws through the ring.
func TestRandAdapter(t *testing.T) {
	_, ts := newRanddServer(t)
	cl := newTestClient(t, Options{Endpoints: []string{ts.URL}})
	r := cl.Rand()
	f := r.Float64()
	if f < 0 || f >= 1 {
		t.Fatalf("Float64 = %v", f)
	}
	if n := r.IntN(10); n < 0 || n >= 10 {
		t.Fatalf("IntN(10) = %d", n)
	}
}
