package client

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// endpoint is one randd server as the client sees it. All mutable
// fields are guarded by endpointSet.mu — endpoint selection runs
// once per block, not per draw, so a single lock is never hot.
type endpoint struct {
	base  string // normalised base URL, no trailing slash
	index int

	fails        uint32    // consecutive failures (0 = trusted); guarded by endpointSet.mu
	failures     uint64    // cumulative failures; guarded by endpointSet.mu
	until        time.Time // end of the backoff window; guarded by endpointSet.mu
	degraded     bool      // last response carried X-Pool-Degraded; guarded by endpointSet.mu
	epoch        string    // last X-Randd-Epoch seen; guarded by endpointSet.mu
	epochChanges uint64    // guarded by endpointSet.mu
}

// endpointSet is the failover brain: round-robin selection over the
// fleet, skipping endpoints inside their backoff window, preferring
// non-degraded ones, and deriving deterministic jitter so a
// fixed-seed client retries on a reproducible timeline.
type endpointSet struct {
	mu  sync.Mutex
	eps []*endpoint
	rr  int // round-robin cursor; guarded by mu

	seed   uint64
	base   time.Duration
	max    time.Duration
	jitter float64
	now    func() time.Time // the Client's clock (Options.Clock or wall)
}

func newEndpointSet(opts Options) (*endpointSet, error) {
	s := &endpointSet{
		seed:   opts.Seed,
		base:   opts.BackoffBase,
		max:    opts.BackoffMax,
		jitter: opts.JitterFrac,
		now:    opts.Clock,
	}
	if s.now == nil {
		s.now = time.Now //lint:wallclock default when Options.Clock is nil; the injection point IS Options.Clock
	}
	eps, err := parseEndpoints(opts.Endpoints)
	if err != nil {
		return nil, err
	}
	s.eps = eps
	return s, nil
}

// parseEndpoints normalises and validates a base-URL list into fresh
// endpoint records.
func parseEndpoints(raws []string) ([]*endpoint, error) {
	eps := make([]*endpoint, 0, len(raws))
	for i, raw := range raws {
		u, err := url.Parse(strings.TrimRight(raw, "/"))
		if err != nil {
			return nil, fmt.Errorf("client: endpoint %q: %w", raw, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return nil, fmt.Errorf("client: endpoint %q: need an http(s) base URL", raw)
		}
		if u.Host == "" {
			return nil, fmt.Errorf("client: endpoint %q: missing host", raw)
		}
		eps = append(eps, &endpoint{base: u.String(), index: i})
	}
	return eps, nil
}

// setEndpoints replaces the fleet at runtime (fed from a controller's
// endpoint watch). Endpoints surviving the swap keep their records —
// backoff windows, failure counts and epoch tracking carry over, so a
// momentary list refresh cannot reset a misbehaving server to
// trusted. In-flight fetches are untouched: they hold *endpoint
// pointers whose mutable fields stay guarded by the same mutex, and
// their success/failure still lands on those records even when the
// endpoint just left the rotation (harmless — the record is simply no
// longer consulted). An empty list is rejected: a watch hiccup must
// not strand the client with nowhere to draw from.
func (s *endpointSet) setEndpoints(raws []string) error {
	if len(raws) == 0 {
		return fmt.Errorf("client: SetEndpoints: empty endpoint list")
	}
	fresh, err := parseEndpoints(raws)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := make(map[string]*endpoint, len(s.eps))
	for _, ep := range s.eps {
		old[ep.base] = ep
	}
	for i, ep := range fresh {
		if prev, ok := old[ep.base]; ok {
			prev.index = i
			fresh[i] = prev
		}
	}
	s.eps = fresh
	s.rr %= len(fresh)
	return nil
}

// pick returns the next endpoint eligible for a fetch, rotating
// round-robin so a multi-endpoint fleet shares load. Endpoints
// inside a backoff window are skipped; among the eligible, a
// non-degraded endpoint beats a degraded one (the X-Pool-Degraded
// hint steering traffic away from self-healing pools). When every
// endpoint is backing off, pick returns nil and the shortest wait
// until one becomes eligible — the caller sleeps, it never hammers.
func (s *endpointSet) pick(now time.Time) (*endpoint, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.eps)
	var fallback *endpoint
	for i := 0; i < n; i++ {
		ep := s.eps[(s.rr+i)%n]
		if now.Before(ep.until) {
			continue
		}
		if ep.degraded {
			if fallback == nil {
				fallback = ep
			}
			continue
		}
		s.rr = (s.rr + i + 1) % n
		return ep, 0
	}
	if fallback != nil {
		s.rr = (fallback.index + 1) % n
		return fallback, 0
	}
	wait := time.Duration(-1)
	for _, ep := range s.eps {
		if d := ep.until.Sub(now); wait < 0 || d < wait {
			wait = d
		}
	}
	return nil, wait
}

// pickOther returns an eligible endpoint different from not (for
// hedging); degraded endpoints are acceptable — a hedge is already a
// latency bet.
func (s *endpointSet) pickOther(not *endpoint, now time.Time) *endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.eps)
	for i := 0; i < n; i++ {
		ep := s.eps[(s.rr+i)%n]
		if ep == not || now.Before(ep.until) {
			continue
		}
		return ep
	}
	return nil
}

// suspect reports whether the endpoint has unresolved failures and
// must pass a /healthz probe before carrying draw traffic again.
func (s *endpointSet) suspect(ep *endpoint) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ep.fails > 0
}

// ok records a successful draw response and folds in the
// cooperation headers: the degraded hint and the stream-token epoch
// (an epoch change means the server restarted).
func (s *endpointSet) ok(ep *endpoint, h http.Header) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep.fails = 0
	ep.until = time.Time{}
	ep.degraded = h.Get("X-Pool-Degraded") == "true"
	if e := h.Get("X-Randd-Epoch"); e != "" {
		if ep.epoch != "" && ep.epoch != e {
			ep.epochChanges++
		}
		ep.epoch = e
	}
}

// fail records a failed request and arms the endpoint's backoff:
// exponential in the consecutive-failure count, deterministically
// jittered, capped at BackoffMax — and never shorter than a server's
// explicit Retry-After, which is a promise we keep.
func (s *endpointSet) fail(ep *endpoint, retryAfter time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep.fails++
	ep.failures++
	d := float64(s.base)
	for i := uint32(1); i < ep.fails && d < float64(s.max); i++ {
		d *= 2
	}
	if d > float64(s.max) {
		d = float64(s.max)
	}
	if s.jitter > 0 {
		u := float64(mix64(s.seed^(uint64(ep.index)+1)*0x9E3779B97F4A7C15^uint64(ep.fails))) / (1 << 64)
		d *= 1 + s.jitter*(2*u-1)
	}
	backoff := time.Duration(d)
	if retryAfter > backoff {
		backoff = retryAfter
	}
	ep.until = s.now().Add(backoff)
}

// stats snapshots every endpoint and the total epoch-change count.
func (s *endpointSet) stats(now time.Time) ([]EndpointStats, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EndpointStats, len(s.eps))
	var epochChanges uint64
	for i, ep := range s.eps {
		es := EndpointStats{
			URL:      ep.base,
			Healthy:  !now.Before(ep.until) && ep.fails == 0,
			Degraded: ep.degraded,
			Failures: ep.failures,
			Epoch:    ep.epoch,
		}
		if d := ep.until.Sub(now); d > 0 {
			es.RetryIn = d
		}
		epochChanges += ep.epochChanges
		out[i] = es
	}
	return out, epochChanges
}

// parseRetryAfter reads a Retry-After header as delay seconds or an
// HTTP date; 0 means absent or unparseable.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// mix64 is the SplitMix64 finalizer — the same bijection the pool
// uses for its deterministic jitter.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ z>>31
}
