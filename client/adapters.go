package client

import (
	"fmt"
	"io"
	"math/rand/v2"

	hybridprng "repro"
)

// Drawer is the serving-layer draw interface: exactly the shape
// *hybridprng.Pool exposes in-process, so code written against
// Drawer runs unchanged whether its randomness is local (a Pool) or
// remote (a Client over a randd fleet).
type Drawer interface {
	Uint64() (uint64, error)
	Fill(dst []uint64) error
	Read(p []byte) (int, error)
}

var (
	_ Drawer      = (*Client)(nil)
	_ Drawer      = (*hybridprng.Pool)(nil)
	_ io.Reader   = (*Client)(nil)
	_ rand.Source = (*Source)(nil)
)

// Source adapts a Client to math/rand/v2.Source. The interface has
// no error channel, so a draw failure (fleet fully down past
// MaxStall, or a closed client) panics — failing closed, like
// crypto/rand: silently degraded randomness is worse than a crash.
type Source struct{ c *Client }

// Source returns a math/rand/v2-compatible view of the client.
func (c *Client) Source() *Source { return &Source{c} }

// Uint64 implements rand.Source.
func (s *Source) Uint64() uint64 {
	v, err := s.c.Uint64()
	if err != nil {
		panic(fmt.Sprintf("client: draw failed behind rand.Source: %v", err))
	}
	return v
}

// Rand returns a *rand.Rand drawing every value from the randd
// fleet through the prefetch ring — the one-liner for code that
// wants the stdlib API (Float64, Shuffle, Perm, …) over served
// randomness.
func (c *Client) Rand() *rand.Rand { return rand.New(c.Source()) }
