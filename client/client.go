// Package client is the consumer half of the paper's pipeline: a
// production Go SDK for randd that reproduces the TRANSFER/GENERATE
// overlap across the network.
//
// The paper's central trick (§ Algorithm 2) is that the three work
// units — FEED, TRANSFER, GENERATE — run concurrently, so the
// consumer of random bits never stalls waiting for the producer.
// randd reproduces FEED and GENERATE server-side; this package
// reproduces TRANSFER: a double-buffered prefetch ring keeps the
// *next* block of /bytes in flight while the caller drains the
// current one, so Uint64 and Read are non-blocking in steady state —
// exactly the role the async CPU→GPU copy plays in the paper, with
// HTTP standing in for the PCIe link.
//
//	cl, err := client.New(client.Options{
//	        Endpoints: []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080"},
//	})
//	defer cl.Close()
//	v, err := cl.Uint64()        // served from the prefetch ring
//	n, err := cl.Read(buf)       // io.Reader
//	r := cl.Rand()               // *math/rand/v2.Rand
//	sub, err := cl.Substream("tenant-a") // per-tenant derived stream
//
// # Prefetch ring
//
// A background refill goroutine fetches fixed blocks of /bytes and
// hands them to the drain side through a one-deep channel: while the
// caller drains block k, block k+1 sits ready and block k+2 is on
// the wire. Block size adapts to the observed drain rate — a caller
// that outruns the network grows the block (fewer, larger transfers,
// mirroring the paper's block-size sweep towards its sweet spot); a
// slow caller shrinks it (less buffered randomness going stale).
// Words are always decoded from 8 contiguous bytes of a single
// server response, so a draw can never return a torn word stitched
// across two transfers, even when a response arrives truncated.
//
// # Failover
//
// Options.Endpoints names a fleet of interchangeable randd servers.
// The client tracks per-endpoint health passively (request outcomes,
// the X-Pool-Degraded response header) and actively (a /healthz
// probe before readmitting a previously failed endpoint), retries
// with exponential backoff and deterministic jitter, and honours
// Retry-After on 429 sheds — a shed server is never hammered. When
// an endpoint dies mid-stream the refill goroutine cuts over to the
// next healthy one; the draw side keeps serving from the ring and,
// in the common case, never observes the failure. Optional hedged
// requests (Options.HedgeDelay) bound tail latency by racing a slow
// block fetch against a second endpoint.
package client

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/substream"
)

// Defaults for Options fields left zero.
const (
	DefaultBlockWords     = 8192
	DefaultMinBlockWords  = 512
	DefaultMaxBlockWords  = 1 << 18
	DefaultRequestTimeout = 10 * time.Second
	DefaultMaxStall       = 30 * time.Second
	DefaultBackoffBase    = 250 * time.Millisecond
	DefaultBackoffMax     = 15 * time.Second
	DefaultJitterFrac     = 0.2
	DefaultProbeTimeout   = 2 * time.Second
)

// ErrClosed is returned by draws on a Client whose Close has been
// called.
var ErrClosed = errors.New("client: closed")

// Options configures a Client. Endpoints is required; every other
// zero field takes its default.
type Options struct {
	// Endpoints is the fleet of randd base URLs
	// ("http://host:port"); at least one is required. All endpoints
	// are interchangeable — the client draws from whichever is
	// healthy.
	Endpoints []string

	// BlockWords is the initial prefetch block size in 64-bit words;
	// the adaptive sizing then moves it within
	// [MinBlockWords, MaxBlockWords]. Setting Min = Max pins the
	// block size.
	BlockWords    int
	MinBlockWords int
	MaxBlockWords int

	// RequestTimeout bounds a single block fetch.
	RequestTimeout time.Duration
	// MaxStall bounds how long a draw may block on an empty ring
	// while every endpoint is failing before the draw returns the
	// underlying error. The refill goroutine keeps retrying in the
	// background; once a fetch succeeds, draws recover.
	MaxStall time.Duration

	// BackoffBase/BackoffMax shape the per-endpoint exponential
	// backoff after a failure; JitterFrac spreads each backoff by
	// ±JitterFrac deterministically (derived from Seed and the
	// endpoint index), so a fleet of clients does not retry in
	// lockstep yet each client is reproducible.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	JitterFrac  float64
	// Seed parameterises the deterministic jitter.
	Seed uint64

	// Clock overrides the time source used for backoff scheduling,
	// fetch deadlines and stats timestamps (nil: the wall clock).
	// Injecting a deterministic clock makes failover timelines
	// reproducible in tests — the client-side mirror of
	// hybridprng.WithClock.
	Clock func() time.Time

	// HedgeDelay, when positive, arms hedged requests: a block fetch
	// still unanswered after HedgeDelay is raced against a second
	// request to a different endpoint, first response wins. 0
	// disables hedging.
	HedgeDelay time.Duration

	// HTTPClient overrides the transport (nil: a dedicated client
	// with sane connection reuse). Its Timeout is ignored; the
	// per-request context carries RequestTimeout.
	HTTPClient *http.Client

	// after pairs with Clock as the wait primitive. Unexported:
	// only this package's tests can drive waits from a fake clock;
	// production waits always ride the real timer.
	after func(time.Duration) <-chan time.Time
}

func (o Options) withDefaults() (Options, error) {
	if len(o.Endpoints) == 0 {
		return o, errors.New("client: no endpoints configured")
	}
	if o.BlockWords == 0 {
		o.BlockWords = DefaultBlockWords
	}
	if o.MinBlockWords == 0 {
		o.MinBlockWords = DefaultMinBlockWords
	}
	if o.MaxBlockWords == 0 {
		o.MaxBlockWords = DefaultMaxBlockWords
	}
	if o.MinBlockWords > o.MaxBlockWords {
		return o, fmt.Errorf("client: MinBlockWords %d > MaxBlockWords %d", o.MinBlockWords, o.MaxBlockWords)
	}
	if o.BlockWords < o.MinBlockWords {
		o.BlockWords = o.MinBlockWords
	}
	if o.BlockWords > o.MaxBlockWords {
		o.BlockWords = o.MaxBlockWords
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.MaxStall == 0 {
		o.MaxStall = DefaultMaxStall
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = DefaultBackoffMax
	}
	if o.BackoffMax < o.BackoffBase {
		o.BackoffMax = o.BackoffBase
	}
	if o.JitterFrac == 0 {
		o.JitterFrac = DefaultJitterFrac
	}
	if o.JitterFrac < 0 || o.JitterFrac >= 1 {
		return o, fmt.Errorf("client: jitter fraction %g outside [0, 1)", o.JitterFrac)
	}
	return o, nil
}

// Client is a failover-aware, prefetching randd consumer. It is safe
// for concurrent use; concurrent callers share one prefetch ring.
// Create with New and release with Close.
type Client struct {
	opts Options
	http *http.Client
	eps  *endpointSet

	// drawPath is the server route this client's ring drains:
	// "/bytes" for the shared pool, "/v1/stream/{key}/bytes" for a
	// Substream handle. Fixed at construction.
	drawPath string

	// parent is non-nil on a Substream handle and points at the root
	// client that owns the endpoint fleet and the substream cache.
	parent *Client

	// subs caches Substream handles by canonical key so repeated
	// lookups of one tenant share one prefetch ring.
	subMu sync.Mutex
	subs  map[string]*Client // guarded by subMu

	// now is the clock (Options.Clock or the wall clock); after is
	// the matching wait primitive. after stays package-private: tests
	// swap it so backoff pauses ride a fake clock instead of real
	// sleeps.
	now   func() time.Time
	after func(time.Duration) <-chan time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // refill goroutine exited

	// Drain side: the current block, guarded by mu. blocks is the
	// one-deep hand-off channel from the refill goroutine — the
	// "next buffer" of the double-buffered ring.
	mu     sync.Mutex
	cur    []byte // current block being drained; guarded by mu
	off    int    // drain offset into cur; guarded by mu
	blocks chan []byte

	// fetchErr publishes the refiller's last failure so a stalled
	// draw can fail with the real cause instead of a bare timeout;
	// cleared on the next successful fetch.
	fetchErr atomic.Pointer[fetchError]

	// shedUntil (unix nanos) backs off this handle after its tenant's
	// token bucket shed a keyed fetch with 429. Handle-local on
	// purpose: a per-tenant quota says nothing about endpoint health,
	// so the shared failover state must not absorb it.
	shedUntil atomic.Int64

	blockWords atomic.Int64 // current adaptive block size

	// Counters for Stats.
	draws     atomic.Uint64
	blocksIn  atomic.Uint64
	stalls    atomic.Uint64
	retries   atomic.Uint64
	failovers atomic.Uint64
	sheds     atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
	discarded atomic.Uint64
}

type fetchError struct{ err error }

// New builds a Client over the endpoint fleet and starts its refill
// goroutine. The first block fetch happens immediately, so by the
// time a caller first draws, randomness is usually already local.
func New(opts Options) (*Client, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	eps, err := newEndpointSet(opts)
	if err != nil {
		return nil, err
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		opts:     opts,
		http:     hc,
		eps:      eps,
		drawPath: "/bytes",
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		blocks:   make(chan []byte, 1),
		now:      opts.Clock,
		after:    opts.after,
	}
	if c.now == nil {
		c.now = time.Now //lint:wallclock default when Options.Clock is nil; the injection point IS Options.Clock
	}
	if c.after == nil {
		c.after = time.After //lint:wallclock default wait primitive; package tests inject a fake-clock channel
	}
	c.blockWords.Store(int64(opts.BlockWords))
	go c.refill()
	return c, nil
}

// SetEndpoints replaces the fleet of randd base URLs at runtime —
// the hook a fleet controller's endpoint watch feeds, so the client
// tracks nodes joining, draining and dying without a restart.
// Endpoints present in both the old and new lists keep their failover
// state (backoff windows, failure counts, epoch tracking); brand-new
// endpoints start trusted. In-flight prefetches complete against
// whichever endpoint they already chose; subsequent fetches pick from
// the new list. An empty or invalid list is rejected and the current
// fleet stays in effect — a flapping control plane must degrade to
// stale endpoints, never to none.
func (c *Client) SetEndpoints(endpoints []string) error {
	return c.eps.setEndpoints(endpoints)
}

// Substream returns a Client handle over the tenant stream derived
// for key — the consumer half of the server's /v1/stream/{key}
// routes. The handle is a full Client: it runs its own prefetch ring
// against "/v1/stream/{key}/bytes" (so one tenant outrunning the
// network never stalls another), while sharing the root client's
// endpoint fleet, failover bookkeeping and HTTP transport. Handles
// are cached per canonical key: two spellings the server would
// canonicalize to the same tenant return the same handle, mirroring
// the registry's own aliasing rule. Key validation happens here,
// client-side, with the same typed *substream.KeyError the server
// would answer 400 with — a bad key never costs a round trip.
//
// Closing a Substream handle releases its ring; a later Substream
// call with the same key builds a fresh handle whose draws continue
// the tenant's server-side stream position. Closing the root client
// closes every handle.
func (c *Client) Substream(key string) (*Client, error) {
	if c.parent != nil {
		// Substreams hang off the root client; derive from there so
		// the cache stays flat and paths never nest.
		return c.parent.Substream(key)
	}
	canon, err := substream.Canonical(key)
	if err != nil {
		return nil, err
	}
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if sc, ok := c.subs[canon]; ok && sc.ctx.Err() == nil {
		return sc, nil
	}
	if c.ctx.Err() != nil {
		return nil, ErrClosed
	}
	ctx, cancel := context.WithCancel(c.ctx)
	sc := &Client{
		opts:     c.opts,
		http:     c.http,
		eps:      c.eps,
		drawPath: "/v1/stream/" + url.PathEscape(canon) + "/bytes",
		parent:   c,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		blocks:   make(chan []byte, 1),
		now:      c.now,
		after:    c.after,
	}
	sc.blockWords.Store(int64(c.opts.BlockWords))
	if c.subs == nil {
		c.subs = make(map[string]*Client)
	}
	c.subs[canon] = sc
	go sc.refill()
	return sc, nil
}

// Close stops the refill goroutine and releases the ring. Draws
// after Close return ErrClosed; a draw blocked on the ring is
// unblocked promptly. Closing the root client also closes every
// cached Substream handle; closing a handle leaves its siblings and
// the root untouched.
func (c *Client) Close() error {
	c.cancel()
	<-c.done
	c.subMu.Lock()
	subs := make([]*Client, 0, len(c.subs))
	for _, sc := range c.subs {
		subs = append(subs, sc)
	}
	c.subs = nil
	c.subMu.Unlock()
	for _, sc := range subs {
		sc.Close()
	}
	return nil
}

// Uint64 returns the next random word, mirroring
// (*hybridprng.Pool).Uint64 across the network. In steady state the
// word comes straight from the prefetch ring — no syscall, no
// network wait.
func (c *Client) Uint64() (uint64, error) {
	c.mu.Lock()
	if len(c.cur)-c.off < 8 {
		if err := c.nextBlockLocked(); err != nil {
			c.mu.Unlock()
			return 0, err
		}
	}
	v := binary.LittleEndian.Uint64(c.cur[c.off:])
	c.off += 8
	c.mu.Unlock()
	c.draws.Add(1)
	return v, nil
}

// Fill writes len(dst) words, mirroring (*hybridprng.Pool).Fill: on
// a non-nil error dst is zeroed in full, so callers can never
// consume stale buffer contents as randomness.
func (c *Client) Fill(dst []uint64) error {
	out := dst
	for len(out) > 0 {
		c.mu.Lock()
		if len(c.cur)-c.off < 8 {
			if err := c.nextBlockLocked(); err != nil {
				c.mu.Unlock()
				zeroWords(dst)
				return err
			}
		}
		n := (len(c.cur) - c.off) / 8
		if n > len(out) {
			n = len(out)
		}
		for i := 0; i < n; i++ {
			out[i] = binary.LittleEndian.Uint64(c.cur[c.off+8*i:])
		}
		c.off += 8 * n
		c.mu.Unlock()
		out = out[n:]
		c.draws.Add(uint64(n))
	}
	return nil
}

// Read fills p with random bytes, making a Client an io.Reader —
// the drop-in shape for code that today reads crypto/rand or a
// /bytes response body directly. On error it returns how many bytes
// were written (valid randomness) and zeroes the unfilled tail,
// mirroring (*hybridprng.Pool).Read.
func (c *Client) Read(p []byte) (int, error) {
	done := 0
	for done < len(p) {
		c.mu.Lock()
		if c.off >= len(c.cur) {
			if err := c.nextBlockLocked(); err != nil {
				c.mu.Unlock()
				for i := done; i < len(p); i++ {
					p[i] = 0
				}
				return done, err
			}
		}
		n := copy(p[done:], c.cur[c.off:])
		c.off += n
		c.mu.Unlock()
		done += n
	}
	return done, nil
}

func zeroWords(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
}

// nextBlockLocked swaps in the next prefetched block, discarding any
// sub-word residue of the current one (a word is never assembled
// across two blocks — that byte string would be randomness no server
// ever produced). Called with c.mu held. It blocks only when the
// refiller is behind, and then only up to the point where the
// refiller has published a fetch failure.
func (c *Client) nextBlockLocked() error {
	if rem := len(c.cur) - c.off; rem > 0 && rem < 8 {
		c.discarded.Add(uint64(rem))
	}
	select {
	case <-c.ctx.Done():
		return ErrClosed
	case b := <-c.blocks:
		c.cur, c.off = b, 0
		return nil
	default:
	}
	// The ring is empty: the consumer outran the network (or every
	// endpoint is down). Count the stall — it is the adaptive
	// sizing's grow signal — and wait, periodically checking whether
	// the refiller has hit a wall.
	c.stalls.Add(1)
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return ErrClosed
		case b := <-c.blocks:
			c.cur, c.off = b, 0
			return nil
		case <-ticker.C:
			if e := c.fetchErr.Load(); e != nil {
				return e.err
			}
		}
	}
}

// refill is the TRANSFER work unit: an endless loop fetching the
// next block while the caller drains the current one. It owns the
// adaptive block sizing and the failover bookkeeping.
func (c *Client) refill() {
	defer close(c.done)
	var lastEp *endpoint
	var lastStalls uint64
	for {
		words := int(c.blockWords.Load())
		start := c.now()
		block, ep, err := c.fetchBlock(words)
		if err != nil {
			if c.ctx.Err() != nil {
				return
			}
			// Publish the failure for stalled draws, pause one
			// backoff base (the endpoint set already carries
			// per-endpoint retry times), keep trying: the fleet may
			// recover at any moment.
			c.fetchErr.Store(&fetchError{err})
			select {
			case <-c.after(c.opts.BackoffBase):
			case <-c.ctx.Done():
				return
			}
			continue
		}
		c.fetchErr.Store(nil)
		fetchDur := c.now().Sub(start)
		if lastEp != nil && ep != lastEp {
			c.failovers.Add(1)
		}
		lastEp = ep
		sendStart := c.now()
		select {
		case c.blocks <- block:
		case <-c.ctx.Done():
			return
		}
		waited := c.now().Sub(sendStart)
		nowStalls := c.stalls.Load()
		c.adapt(fetchDur, waited, nowStalls != lastStalls)
		lastStalls = nowStalls
		c.blocksIn.Add(1)
	}
}

// adapt moves the block size towards the drain rate: a stall while
// this block was in flight means transfers are too small to cover
// their own latency — double; a block that waited in the hand-off
// channel much longer than a fetch takes means the consumer is slow
// and we are buffering randomness it does not want yet — halve.
// This is the client-side analogue of the paper's block-size sweep
// (Fig. 5): both look for the smallest S that keeps the consumer
// busy.
func (c *Client) adapt(fetch, waited time.Duration, stalled bool) {
	w := c.blockWords.Load()
	switch {
	case stalled:
		w *= 2
	case fetch > 0 && waited > 4*fetch:
		w /= 2
	default:
		return
	}
	if w < int64(c.opts.MinBlockWords) {
		w = int64(c.opts.MinBlockWords)
	}
	if w > int64(c.opts.MaxBlockWords) {
		w = int64(c.opts.MaxBlockWords)
	}
	c.blockWords.Store(w)
}

// Stats is a point-in-time snapshot of the client's counters.
type Stats struct {
	Draws          uint64 // words served to callers
	Blocks         uint64 // blocks fetched
	Stalls         uint64 // draws that found the ring empty
	Retries        uint64 // failed block-fetch attempts
	Failovers      uint64 // blocks served by a different endpoint than the previous one
	Sheds429       uint64 // 429 responses received
	Hedges         uint64 // hedged requests launched
	HedgeWins      uint64 // hedges that beat the primary
	DiscardedBytes uint64 // sub-word residue dropped (truncated responses, odd Reads)
	EpochChanges   uint64 // server restarts observed via the stream token
	BlockWords     int    // current adaptive block size
	Endpoints      []EndpointStats
}

// EndpointStats describes one endpoint's health as the client sees
// it.
type EndpointStats struct {
	URL      string
	Healthy  bool          // currently eligible for fetches
	Degraded bool          // last response carried X-Pool-Degraded
	Failures uint64        // cumulative failed requests
	RetryIn  time.Duration // remaining backoff (0 when eligible)
	Epoch    string        // last stream-token epoch seen
}

// Stats snapshots the client. Safe to call concurrently with draws.
func (c *Client) Stats() Stats {
	st := Stats{
		Draws:          c.draws.Load(),
		Blocks:         c.blocksIn.Load(),
		Stalls:         c.stalls.Load(),
		Retries:        c.retries.Load(),
		Failovers:      c.failovers.Load(),
		Sheds429:       c.sheds.Load(),
		Hedges:         c.hedges.Load(),
		HedgeWins:      c.hedgeWins.Load(),
		DiscardedBytes: c.discarded.Load(),
		BlockWords:     int(c.blockWords.Load()),
	}
	st.Endpoints, st.EpochChanges = c.eps.stats(c.now())
	return st
}
