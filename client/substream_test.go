package client

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	hybridprng "repro"
	"repro/internal/server"
	"repro/internal/substream"
)

// newSubstreamServer boots an in-process randd with a substream
// registry attached, returning the registry's config (for building
// bitwise control registries) and the server's base URL.
func newSubstreamServer(t testing.TB, cfg substream.Config) (substream.Config, *httptest.Server) {
	t.Helper()
	pool, err := hybridprng.NewPool(
		hybridprng.WithSeed(7),
		hybridprng.WithShards(2),
		hybridprng.WithHealthMonitoring(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := substream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(pool, server.Options{Substreams: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return cfg, ts
}

// subControl draws n words for key from a fresh control registry with
// the same derivation config — the uninterrupted reference stream.
func subControl(t testing.TB, cfg substream.Config, key string, n int) []uint64 {
	t.Helper()
	reg, err := substream.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, n)
	if err := reg.Fill(key, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSubstreamEquality: a Substream handle must see exactly the
// tenant's derived word stream — the keyed prefetch ring reorders
// nothing, loses nothing, and never leaks another tenant's words.
func TestSubstreamEquality(t *testing.T) {
	cfg, ts := newSubstreamServer(t, substream.Config{RootSeed: 20260808})
	cl := newTestClient(t, Options{
		Endpoints:     []string{ts.URL},
		BlockWords:    512,
		MinBlockWords: 512,
		MaxBlockWords: 512,
	})

	sub, err := cl.Substream("tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	const n = 2048
	want := subControl(t, cfg, "tenant-a", n)
	got := make([]uint64, n)
	if err := sub.Fill(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("word %d = %#x, want %#x", i, got[i], want[i])
		}
	}

	// A second tenant's handle draws a different derived stream, and
	// the two handles coexist without cross-talk.
	subB, err := cl.Substream("tenant-b")
	if err != nil {
		t.Fatal(err)
	}
	wantB := subControl(t, cfg, "tenant-b", 64)
	gotB := make([]uint64, 64)
	if err := subB.Fill(gotB); err != nil {
		t.Fatal(err)
	}
	for i := range gotB {
		if gotB[i] != wantB[i] {
			t.Fatalf("tenant-b word %d = %#x, want %#x", i, gotB[i], wantB[i])
		}
	}
	if gotB[0] == want[0] {
		t.Fatal("tenant-b stream opens identically to tenant-a — derivation collapsed")
	}
}

// TestSubstreamCaching: handles are cached per canonical key — two
// spellings the server would alias to one tenant share one ring —
// and a handle's own Substream call resolves through the root.
func TestSubstreamCaching(t *testing.T) {
	_, ts := newSubstreamServer(t, substream.Config{RootSeed: 1})
	cl := newTestClient(t, Options{Endpoints: []string{ts.URL}})

	a, err := cl.Substream("alice")
	if err != nil {
		t.Fatal(err)
	}
	alias, err := cl.Substream("  alice\t")
	if err != nil {
		t.Fatal(err)
	}
	if alias != a {
		t.Fatal("canonically equal keys returned distinct handles")
	}
	viaHandle, err := a.Substream("alice")
	if err != nil {
		t.Fatal(err)
	}
	if viaHandle != a {
		t.Fatal("Substream on a handle did not resolve through the root cache")
	}
	if b, err := cl.Substream("bob"); err != nil || b == a {
		t.Fatalf("distinct key: handle %p err %v", b, err)
	}

	// Invalid keys fail client-side with the registry's typed error —
	// no round trip, no handle.
	var ke *substream.KeyError
	if _, err := cl.Substream("bad\x00key"); !errors.As(err, &ke) {
		t.Fatalf("invalid key error = %v, want *substream.KeyError", err)
	}
	if _, err := cl.Substream(""); !errors.As(err, &ke) {
		t.Fatalf("empty key error = %v, want *substream.KeyError", err)
	}
}

// TestSubstreamCloseAndResume: closing a handle stops only that
// handle; a recreated handle for the same key keeps drawing the same
// tenant stream (later words of it — prefetched-but-undrained blocks
// are the server's position, not a replay), and closing the root
// closes every handle.
func TestSubstreamCloseAndResume(t *testing.T) {
	cfg, ts := newSubstreamServer(t, substream.Config{RootSeed: 99})
	cl := newTestClient(t, Options{
		Endpoints:     []string{ts.URL},
		BlockWords:    512,
		MinBlockWords: 512,
		MaxBlockWords: 512,
	})

	sub, err := cl.Substream("resume-me")
	if err != nil {
		t.Fatal(err)
	}
	first := make([]uint64, 512)
	if err := sub.Fill(first); err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Uint64(); !errors.Is(err, ErrClosed) {
		t.Fatalf("draw on closed handle = %v, want ErrClosed", err)
	}

	// The root client is unaffected by the handle's death.
	if _, err := cl.Uint64(); err != nil {
		t.Fatalf("root draw after handle close: %v", err)
	}

	sub2, err := cl.Substream("resume-me")
	if err != nil {
		t.Fatal(err)
	}
	if sub2 == sub {
		t.Fatal("closed handle was returned from the cache")
	}
	resumed := make([]uint64, 512)
	if err := sub2.Fill(resumed); err != nil {
		t.Fatal(err)
	}
	// The resumed draw continues the tenant stream at a block
	// boundary past what the first handle drained (its ring may have
	// prefetched ahead). Find it in the control stream.
	want := subControl(t, cfg, "resume-me", 8192)
	off := -1
	for o := 512; o+512 <= len(want); o += 512 {
		if want[o] == resumed[0] {
			off = o
			break
		}
	}
	if off < 0 {
		t.Fatal("resumed draw does not continue the tenant stream")
	}
	for i := range resumed {
		if resumed[i] != want[off+i] {
			t.Fatalf("resumed word %d = %#x, want %#x (offset %d)", i, resumed[i], want[off+i], off)
		}
	}

	// Root Close takes the surviving handle down with it.
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub2.Uint64(); !errors.Is(err, ErrClosed) {
		t.Fatalf("draw on handle after root close = %v, want ErrClosed", err)
	}
	if _, err := cl.Substream("resume-me"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Substream after root close = %v, want ErrClosed", err)
	}
}

// TestRootCloseTerminatesSubstreamRings: the goleak analyzer's
// contract, pinned dynamically — when the root client closes, every
// cached Substream handle's prefetch goroutine has provably exited
// by the time Close returns (each ring signals `done` on exit and
// Close joins it). A ring that outlived its client would keep
// fetching a dead tenant stream forever.
func TestRootCloseTerminatesSubstreamRings(t *testing.T) {
	_, ts := newSubstreamServer(t, substream.Config{RootSeed: 4242})
	cl := newTestClient(t, Options{Endpoints: []string{ts.URL}})

	keys := []string{"ring-a", "ring-b", "ring-c"}
	subs := make([]*Client, 0, len(keys))
	for _, k := range keys {
		sc, err := cl.Substream(k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Uint64(); err != nil {
			t.Fatalf("%s: priming draw: %v", k, err)
		}
		subs = append(subs, sc)
	}

	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	for i, sc := range subs {
		select {
		case <-sc.done:
			// refill goroutine exited before Close returned
		default:
			t.Fatalf("substream %q prefetch goroutine still running after root Close", keys[i])
		}
		// Already-fetched words may drain, but the dead ring must fail
		// with ErrClosed as soon as a new block is needed.
		closed := false
		for n := 0; n < 1<<20; n++ {
			if _, err := sc.Uint64(); errors.Is(err, ErrClosed) {
				closed = true
				break
			} else if err != nil {
				t.Fatalf("substream %q draw after root close = %v, want ErrClosed", keys[i], err)
			}
		}
		if !closed {
			t.Fatalf("substream %q never returned ErrClosed after root Close", keys[i])
		}
	}
	select {
	case <-cl.done:
	default:
		t.Fatal("root prefetch goroutine still running after Close")
	}
}

// TestSubstreamShedDoesNotPoisonEndpoint: a tenant that exhausts its
// token bucket gets 429s on its keyed path — that must pause only
// that tenant's refill, never mark the shared endpoint unhealthy,
// or one noisy tenant would starve the whole process of pool bytes.
func TestSubstreamShedDoesNotPoisonEndpoint(t *testing.T) {
	_, ts := newSubstreamServer(t, substream.Config{
		RootSeed:   5,
		RatePerSec: 0.001, // effectively never refills within the test
		Burst:      16,    // exactly one 16-word block
	})
	cl := newTestClient(t, Options{
		Endpoints:     []string{ts.URL},
		BlockWords:    16,
		MinBlockWords: 16,
		MaxBlockWords: 16,
		BackoffBase:   5 * time.Millisecond,
	})

	sub, err := cl.Substream("greedy")
	if err != nil {
		t.Fatal(err)
	}
	// The first 16-word block fits the burst; drain it.
	got := make([]uint64, 16)
	if err := sub.Fill(got); err != nil {
		t.Fatal(err)
	}
	// The handle's refill is now being shed. Wait until it has
	// observed at least one 429.
	deadline := time.Now().Add(5 * time.Second)
	for sub.Stats().Sheds429 == 0 {
		if time.Now().After(deadline) {
			t.Fatal("substream refill never observed a 429")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Meanwhile the shared pool path must still serve instantly: the
	// endpoint was never marked failed by the tenant's sheds.
	words := make([]uint64, 1024)
	if err := cl.Fill(words); err != nil {
		t.Fatalf("root draw while tenant is shed: %v", err)
	}
	for _, epStat := range cl.Stats().Endpoints {
		if !epStat.Healthy {
			t.Fatalf("endpoint %s marked unhealthy by a per-tenant shed", epStat.URL)
		}
	}
}
