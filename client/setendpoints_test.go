package client

import (
	"testing"
	"time"

	hybridprng "repro"
)

// TestSetEndpointsSwapMidStream: a running client switched to a new
// fleet keeps drawing without an error — the runtime path a fleet
// controller's endpoint watch exercises on every drain or node join.
func TestSetEndpointsSwapMidStream(t *testing.T) {
	_, tsA := newRanddServer(t, hybridprng.WithSeed(1), hybridprng.WithShards(2))
	_, tsB := newRanddServer(t, hybridprng.WithSeed(2), hybridprng.WithShards(2))
	cl := newTestClient(t, Options{
		Endpoints:   []string{tsA.URL},
		BackoffBase: 20 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
	})

	draw := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := cl.Uint64(); err != nil {
				t.Fatalf("draw %d: %v", i, err)
			}
		}
	}
	draw(20000)

	// The controller drains A and brings up B: swap, then kill A. Any
	// in-flight prefetch against A either lands (its response was
	// already on the wire) or fails onto the new list — the drawer
	// never sees either.
	if err := cl.SetEndpoints([]string{tsB.URL}); err != nil {
		t.Fatal(err)
	}
	tsA.CloseClientConnections()
	tsA.Close()
	draw(100000)
	if st := cl.Stats(); st.Draws != 120000 {
		t.Errorf("Draws = %d, want 120000", st.Draws)
	}
	if st := cl.Stats(); len(st.Endpoints) != 1 || st.Endpoints[0].URL != tsB.URL {
		t.Errorf("endpoint stats after swap: %+v", st.Endpoints)
	}
}

// TestSetEndpointsPreservesState: an endpoint that survives the swap
// keeps its backoff and failure history — a list refresh must not
// amnesty a misbehaving server.
func TestSetEndpointsPreservesState(t *testing.T) {
	s, err := newEndpointSet(Options{
		Endpoints:   []string{"http://a:1", "http://b:1"},
		BackoffBase: time.Minute,
		BackoffMax:  time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	s.now = func() time.Time { return now }
	bad := s.eps[0]
	s.fail(bad, 0)
	if got, _ := s.stats(now); got[0].Failures != 1 || got[0].Healthy {
		t.Fatalf("precondition: %+v", got[0])
	}

	// b leaves, c joins, a survives with its record intact.
	if err := s.setEndpoints([]string{"http://a:1", "http://c:1"}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.stats(now)
	if len(got) != 2 {
		t.Fatalf("stats after swap: %+v", got)
	}
	if got[0].URL != "http://a:1" || got[0].Failures != 1 || got[0].Healthy {
		t.Errorf("survivor lost its failure state: %+v", got[0])
	}
	if got[1].URL != "http://c:1" || got[1].Failures != 0 || !got[1].Healthy {
		t.Errorf("newcomer not fresh: %+v", got[1])
	}

	// The swap preserved identity, not just counters: the surviving
	// record is the same object, so an in-flight fetch holding it
	// reports into the live set.
	if s.eps[0] != bad {
		t.Error("surviving endpoint was reallocated, in-flight state would be lost")
	}
}

// TestSetEndpointsRejectsBadLists: empty or malformed lists leave the
// current fleet untouched.
func TestSetEndpointsRejectsBadLists(t *testing.T) {
	s, err := newEndpointSet(Options{Endpoints: []string{"http://a:1"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{nil, {}, {"not a url"}, {"ftp://x"}, {"http://"}} {
		if err := s.setEndpoints(bad); err == nil {
			t.Errorf("setEndpoints(%q) should fail", bad)
		}
	}
	if len(s.eps) != 1 || s.eps[0].base != "http://a:1" {
		t.Fatalf("fleet changed by rejected update: %+v", s.eps)
	}
}
