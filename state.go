package hybridprng

import (
	"encoding"
	"encoding/binary"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/expander"
	"repro/internal/rng"
)

// Generator state serialisation: MarshalBinary captures everything —
// configuration, walk position, output count, the feed generator's
// internal state and the bit-reader's partial word — so
// UnmarshalBinary resumes the exact stream:
//
//	blob, _ := g.MarshalBinary()
//	g2 := new(hybridprng.Generator)
//	_ = g2.UnmarshalBinary(blob)
//	// g2.Uint64() == what g.Uint64() would have returned
//
// Format (versioned, little-endian):
//
//	magic "hprng" | version | feed tag | walkLen u32 | initWalkLen u32
//	| pos u64 | generated u64 | brWord u64 | brLeft u8
//	| feedStateLen u16 | feedState …

const (
	stateMagic   = "hprng"
	stateVersion = 1
)

var (
	_ encoding.BinaryMarshaler   = (*Generator)(nil)
	_ encoding.BinaryUnmarshaler = (*Generator)(nil)
)

// feedTag maps the feed implementation to a persistent tag.
func feedTag(src rng.Source) (byte, encoding.BinaryMarshaler, error) {
	switch s := src.(type) {
	case *baselines.GlibcRand:
		return 1, s, nil
	case *baselines.ANSIC:
		return 2, s, nil
	case *baselines.SplitMix64:
		return 3, s, nil
	default:
		return 0, nil, fmt.Errorf("hybridprng: feed %T is not checkpointable", src)
	}
}

func feedFromTag(tag byte) (rng.Source, encoding.BinaryUnmarshaler, error) {
	switch tag {
	case 1:
		g := baselines.NewGlibcRand(1)
		return g, g, nil
	case 2:
		g := baselines.NewANSIC(1)
		return g, g, nil
	case 3:
		g := baselines.NewSplitMix64(1)
		return g, g, nil
	default:
		return nil, nil, fmt.Errorf("hybridprng: unknown feed tag %d", tag)
	}
}

// MarshalBinary checkpoints the generator.
func (g *Generator) MarshalBinary() ([]byte, error) {
	br := g.w.Bits()
	tag, fm, err := feedTag(br.Source())
	if err != nil {
		return nil, err
	}
	feedState, err := fm.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if len(feedState) > 0xFFFF {
		return nil, fmt.Errorf("hybridprng: feed state too large (%d bytes)", len(feedState))
	}
	cfg := g.w.Config()
	word, left := br.State()

	out := append([]byte(stateMagic), stateVersion, tag)
	var b8 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b8[:4], v)
		out = append(out, b8[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		out = append(out, b8[:]...)
	}
	put32(uint32(cfg.WalkLen))
	put32(uint32(cfg.InitWalkLen))
	put64(g.w.Position().ID())
	put64(g.w.Generated())
	put64(word)
	out = append(out, byte(left))
	binary.LittleEndian.PutUint16(b8[:2], uint16(len(feedState)))
	out = append(out, b8[:2]...)
	return append(out, feedState...), nil
}

// UnmarshalBinary restores a checkpoint written by MarshalBinary
// into g, replacing its state entirely.
func (g *Generator) UnmarshalBinary(data []byte) error {
	const fixed = len(stateMagic) + 2 + 4 + 4 + 8 + 8 + 8 + 1 + 2
	if len(data) < fixed {
		return fmt.Errorf("hybridprng: state too short (%d bytes)", len(data))
	}
	if string(data[:len(stateMagic)]) != stateMagic {
		return fmt.Errorf("hybridprng: bad state magic")
	}
	p := data[len(stateMagic):]
	if p[0] != stateVersion {
		return fmt.Errorf("hybridprng: unsupported state version %d", p[0])
	}
	tag := p[1]
	p = p[2:]
	walkLen := binary.LittleEndian.Uint32(p)
	initWalkLen := binary.LittleEndian.Uint32(p[4:])
	pos := binary.LittleEndian.Uint64(p[8:])
	generated := binary.LittleEndian.Uint64(p[16:])
	brWord := binary.LittleEndian.Uint64(p[24:])
	brLeft := p[32]
	feedLen := int(binary.LittleEndian.Uint16(p[33:]))
	p = p[35:]
	if len(p) != feedLen {
		return fmt.Errorf("hybridprng: feed state length %d, want %d", len(p), feedLen)
	}
	if brLeft > 64 {
		return fmt.Errorf("hybridprng: bit buffer count %d out of range", brLeft)
	}
	// Bound the walk lengths: a forged blob must not be able to turn
	// every draw into a multi-minute walk.
	const maxWalk = 1 << 20
	if walkLen < 1 || walkLen > maxWalk {
		return fmt.Errorf("hybridprng: walk length %d outside [1, %d]", walkLen, maxWalk)
	}
	if initWalkLen > maxWalk {
		return fmt.Errorf("hybridprng: init walk length %d exceeds %d", initWalkLen, maxWalk)
	}

	src, fu, err := feedFromTag(tag)
	if err != nil {
		return err
	}
	if err := fu.UnmarshalBinary(p); err != nil {
		return err
	}
	br := rng.NewBitReader(src)
	br.SetState(brWord, uint(brLeft))
	w, err := core.RestoreWalker(br, core.Config{
		WalkLen:     int(walkLen),
		InitWalkLen: int(initWalkLen),
	}, expander.VertexFromID(pos), generated)
	if err != nil {
		return err
	}
	g.w = w
	return nil
}
