package hybridprng

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/core"
	"repro/internal/expander"
	"repro/internal/rng"
)

// Generator state serialisation: MarshalBinary captures everything —
// configuration, walk position, output count, the feed generator's
// internal state, the bit-reader's partial word and (when
// WithHealthMonitoring is on) the SP 800-90B monitor's counters and
// trip state — so UnmarshalBinary resumes the exact stream:
//
//	blob, _ := g.MarshalBinary()
//	g2 := new(hybridprng.Generator)
//	_ = g2.UnmarshalBinary(blob)
//	// g2.Uint64() == what g.Uint64() would have returned
//
// Format (versioned, little-endian):
//
//	magic "hprng" | version | feed tag | walkLen u32 | initWalkLen u32
//	| pos u64 | generated u64 | brWord u64 | brLeft u8
//	| feedStateLen u16 | feedState …
//	| monStateLen u16 | monState …            (v2; 0 = no monitor)
//
// Version 1 blobs (written before health monitoring was
// checkpointable) end after the feed state and restore with no
// monitor. Parallel and Pool wrap the same per-walker format in
// container formats of their own (see their Marshal methods).
const (
	stateMagic   = "hprng"
	stateVersion = 2

	parMagic   = "hprng-par"
	parVersion = 1
	poolMagic  = "hprng-pool"
	// poolVersion 3 carries the recovery policy, the pool trip/recovery
	// counters and per-shard recovery state (state machine position,
	// trip count, reseed base, remaining quarantine backoff, probation
	// balance) so a snapshot taken mid-recovery resumes on the exact
	// same recovery timeline. Version 1 blobs (written before
	// self-healing; there was no pool v2) still decode: their tripped
	// shards restore as retired, the legacy semantics they were written
	// under.
	poolVersion = 3
)

var (
	_ encoding.BinaryMarshaler   = (*Generator)(nil)
	_ encoding.BinaryUnmarshaler = (*Generator)(nil)
	_ encoding.BinaryMarshaler   = (*Parallel)(nil)
	_ encoding.BinaryUnmarshaler = (*Parallel)(nil)
	_ encoding.BinaryMarshaler   = (*Pool)(nil)
	_ encoding.BinaryUnmarshaler = (*Pool)(nil)
)

// feedTag maps the feed implementation to a persistent tag.
func feedTag(src rng.Source) (byte, encoding.BinaryMarshaler, error) {
	switch s := src.(type) {
	case *baselines.GlibcRand:
		return 1, s, nil
	case *baselines.ANSIC:
		return 2, s, nil
	case *baselines.SplitMix64:
		return 3, s, nil
	default:
		return 0, nil, fmt.Errorf("hybridprng: feed %T is not checkpointable", src)
	}
}

func feedFromTag(tag byte) (rng.Source, encoding.BinaryUnmarshaler, error) {
	switch tag {
	case 1:
		g := baselines.NewGlibcRand(1)
		return g, g, nil
	case 2:
		g := baselines.NewANSIC(1)
		return g, g, nil
	case 3:
		g := baselines.NewSplitMix64(1)
		return g, g, nil
	default:
		return nil, nil, fmt.Errorf("hybridprng: unknown feed tag %d", tag)
	}
}

// marshalWalker encodes one walker's complete resume state. When the
// walker's bit reader sits behind a bitsource.Monitor the monitor is
// unwrapped: its raw feed is serialised through the feed-tag table
// and its own window/counter/trip state rides along, so a restored
// stream keeps both its position and its health history.
func marshalWalker(w *core.Walker) ([]byte, error) {
	br := w.Bits()
	src := br.Source()
	var monState []byte
	if mon, ok := src.(*bitsource.Monitor); ok {
		var err error
		if monState, err = mon.MarshalBinary(); err != nil {
			return nil, err
		}
		src = mon.Source()
	}
	tag, fm, err := feedTag(src)
	if err != nil {
		return nil, err
	}
	feedState, err := fm.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if len(feedState) > 0xFFFF {
		return nil, fmt.Errorf("hybridprng: feed state too large (%d bytes)", len(feedState))
	}
	if len(monState) > 0xFFFF {
		return nil, fmt.Errorf("hybridprng: monitor state too large (%d bytes)", len(monState))
	}
	cfg := w.Config()
	word, left := br.State()

	out := append([]byte(stateMagic), stateVersion, tag)
	var b8 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b8[:4], v)
		out = append(out, b8[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		out = append(out, b8[:]...)
	}
	put32(uint32(cfg.WalkLen))
	put32(uint32(cfg.InitWalkLen))
	put64(w.Position().ID())
	put64(w.Generated())
	put64(word)
	out = append(out, byte(left))
	binary.LittleEndian.PutUint16(b8[:2], uint16(len(feedState)))
	out = append(out, b8[:2]...)
	out = append(out, feedState...)
	binary.LittleEndian.PutUint16(b8[:2], uint16(len(monState)))
	out = append(out, b8[:2]...)
	return append(out, monState...), nil
}

// unmarshalWalker decodes a blob written by marshalWalker (or by the
// v1 encoder). The returned monitor is nil when the blob carries
// none; otherwise it is already wired between the feed and the
// returned walker's bit reader.
func unmarshalWalker(data []byte) (*core.Walker, *bitsource.Monitor, error) {
	const fixedV1 = len(stateMagic) + 2 + 4 + 4 + 8 + 8 + 8 + 1 + 2
	if len(data) < fixedV1 {
		return nil, nil, fmt.Errorf("hybridprng: state too short (%d bytes)", len(data))
	}
	if string(data[:len(stateMagic)]) != stateMagic {
		return nil, nil, fmt.Errorf("hybridprng: bad state magic")
	}
	p := data[len(stateMagic):]
	version := p[0]
	if version != 1 && version != stateVersion {
		return nil, nil, fmt.Errorf("hybridprng: unsupported state version %d", version)
	}
	tag := p[1]
	p = p[2:]
	walkLen := binary.LittleEndian.Uint32(p)
	initWalkLen := binary.LittleEndian.Uint32(p[4:])
	pos := binary.LittleEndian.Uint64(p[8:])
	generated := binary.LittleEndian.Uint64(p[16:])
	brWord := binary.LittleEndian.Uint64(p[24:])
	brLeft := p[32]
	feedLen := int(binary.LittleEndian.Uint16(p[33:]))
	p = p[35:]
	if len(p) < feedLen {
		return nil, nil, fmt.Errorf("hybridprng: feed state truncated (%d of %d bytes)", len(p), feedLen)
	}
	feedState := p[:feedLen]
	p = p[feedLen:]
	var monState []byte
	switch version {
	case 1:
		if len(p) != 0 {
			return nil, nil, fmt.Errorf("hybridprng: %d trailing bytes after v1 state", len(p))
		}
	default:
		if len(p) < 2 {
			return nil, nil, fmt.Errorf("hybridprng: monitor state length truncated")
		}
		monLen := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) != monLen {
			return nil, nil, fmt.Errorf("hybridprng: monitor state length %d, want %d", len(p), monLen)
		}
		monState = p
	}
	if brLeft > 64 {
		return nil, nil, fmt.Errorf("hybridprng: bit buffer count %d out of range", brLeft)
	}
	// Bound the walk lengths: a forged blob must not be able to turn
	// every draw into a multi-minute walk.
	const maxWalk = 1 << 20
	if walkLen < 1 || walkLen > maxWalk {
		return nil, nil, fmt.Errorf("hybridprng: walk length %d outside [1, %d]", walkLen, maxWalk)
	}
	if initWalkLen > maxWalk {
		return nil, nil, fmt.Errorf("hybridprng: init walk length %d exceeds %d", initWalkLen, maxWalk)
	}

	src, fu, err := feedFromTag(tag)
	if err != nil {
		return nil, nil, err
	}
	if err := fu.UnmarshalBinary(feedState); err != nil {
		return nil, nil, err
	}
	var mon *bitsource.Monitor
	reader := src
	if len(monState) > 0 {
		if mon, err = bitsource.RestoreMonitor(src, monState); err != nil {
			return nil, nil, err
		}
		reader = mon
	}
	br := rng.NewBitReader(reader)
	br.SetState(brWord, uint(brLeft))
	w, err := core.RestoreWalker(br, core.Config{
		WalkLen:     int(walkLen),
		InitWalkLen: int(initWalkLen),
	}, expander.VertexFromID(pos), generated)
	if err != nil {
		return nil, nil, err
	}
	return w, mon, nil
}

// MarshalBinary checkpoints the generator, including a health
// monitor's state when WithHealthMonitoring is on.
func (g *Generator) MarshalBinary() ([]byte, error) {
	return marshalWalker(g.w)
}

// UnmarshalBinary restores a checkpoint written by MarshalBinary
// into g, replacing its state entirely. A generator checkpointed
// with a tripped health monitor restores with HealthErr still
// reporting the failure.
func (g *Generator) UnmarshalBinary(data []byte) error {
	w, mon, err := unmarshalWalker(data)
	if err != nil {
		return err
	}
	g.w, g.health = w, mon
	return nil
}

// appendPrefixed appends a u32 length header and the blob.
func appendPrefixed(out, blob []byte) []byte {
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(blob)))
	return append(append(out, b4[:]...), blob...)
}

// takePrefixed consumes a u32 length-prefixed blob from p.
func takePrefixed(p []byte, what string) (blob, rest []byte, err error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("hybridprng: %s length truncated", what)
	}
	n := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if n > len(p) {
		return nil, nil, fmt.Errorf("hybridprng: %s truncated (%d of %d bytes)", what, len(p), n)
	}
	return p[:n], p[n:], nil
}

// MarshalBinary checkpoints every worker of the pool: the container
// is the magic, a version, the worker count and one length-prefixed
// per-walker state per worker. Not safe to call while other
// goroutines draw from the workers.
func (p *Parallel) MarshalBinary() ([]byte, error) {
	out := append([]byte(parMagic), parVersion)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(p.pool.Size()))
	out = append(out, b4[:]...)
	for i := 0; i < p.pool.Size(); i++ {
		blob, err := marshalWalker(p.pool.Walker(i))
		if err != nil {
			return nil, fmt.Errorf("hybridprng: worker %d: %w", i, err)
		}
		out = appendPrefixed(out, blob)
	}
	return out, nil
}

// UnmarshalBinary restores a Parallel written by MarshalBinary,
// replacing p's state entirely; every worker resumes its exact
// stream, monitors included.
func (p *Parallel) UnmarshalBinary(data []byte) error {
	if len(data) < len(parMagic)+1+4 {
		return fmt.Errorf("hybridprng: parallel state too short (%d bytes)", len(data))
	}
	if string(data[:len(parMagic)]) != parMagic {
		return fmt.Errorf("hybridprng: bad parallel state magic")
	}
	rest := data[len(parMagic):]
	if rest[0] != parVersion {
		return fmt.Errorf("hybridprng: unsupported parallel state version %d", rest[0])
	}
	workers := int(binary.LittleEndian.Uint32(rest[1:]))
	rest = rest[5:]
	if workers < 1 || workers > maxShards {
		return fmt.Errorf("hybridprng: worker count %d outside [1, %d]", workers, maxShards)
	}
	walkers := make([]*core.Walker, workers)
	monitors := make([]*bitsource.Monitor, workers)
	for i := range walkers {
		blob, r, err := takePrefixed(rest, fmt.Sprintf("worker %d state", i))
		if err != nil {
			return err
		}
		rest = r
		if walkers[i], monitors[i], err = unmarshalWalker(blob); err != nil {
			return fmt.Errorf("hybridprng: worker %d: %w", i, err)
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("hybridprng: %d trailing bytes after parallel state", len(rest))
	}
	pool, err := core.PoolFromWalkers(walkers)
	if err != nil {
		return err
	}
	p.pool, p.monitors = pool, monitors
	return nil
}

// MarshalBinary checkpoints the pool: shard geometry, the ticket
// counter, the recovery policy and counters, and per shard the
// walker (with monitor), the unread ring residue, the serving
// counters and the full recovery state. Each shard is captured under
// its lock, so a snapshot taken while other goroutines draw is
// consistent per shard (every draw lands entirely before or entirely
// after it); for an exact global resume point, quiesce traffic first
// — cmd/randd drains its HTTP server before the shutdown snapshot. A
// non-healthy shard's residue is written empty: SP 800-90B forbids
// serving words buffered before a failure. A quarantined shard's
// backoff is stored as *remaining* duration, so restore re-anchors
// it to the restoring process's clock.
func (p *Pool) MarshalBinary() ([]byte, error) {
	out := append([]byte(poolMagic), poolVersion)
	var b8 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b8[:4], v)
		out = append(out, b8[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		out = append(out, b8[:]...)
	}
	put32(uint32(len(p.shards)))
	put32(uint32(len(p.shards[0].buf)))
	put64(p.tickets.Load())
	pol := p.policy
	if pol.Disabled {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	put64(uint64(pol.QuarantineBase))
	put64(math.Float64bits(pol.BackoffFactor))
	put64(uint64(pol.QuarantineMax))
	put64(math.Float64bits(pol.JitterFrac))
	put32(uint32(pol.ProbationWords))
	put32(uint32(pol.MaxTrips))
	put64(p.tripEvents.Load())
	put64(p.recoveries.Load())
	now := p.now()
	for i, s := range p.shards {
		blob, err := s.marshalBinary(now)
		if err != nil {
			return nil, fmt.Errorf("hybridprng: shard %d: %w", i, err)
		}
		out = appendPrefixed(out, blob)
	}
	return out, nil
}

// marshalBinary captures one shard under its lock.
func (s *poolShard) marshalBinary(now time.Time) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wBlob, err := marshalWalker(s.w)
	if err != nil {
		return nil, err
	}
	var out []byte
	out = appendPrefixed(out, wBlob)
	var b8 [8]byte
	state := shardState(s.state.Load())
	residue := s.buf[s.idx:]
	if state != shardHealthy {
		residue = nil
	}
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(residue)))
	out = append(out, b8[:4]...)
	for _, v := range residue {
		binary.LittleEndian.PutUint64(b8[:], v)
		out = append(out, b8[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		out = append(out, b8[:]...)
	}
	put64(s.draws.Load())
	put64(s.refills.Load())
	out = append(out, byte(state))
	binary.LittleEndian.PutUint32(b8[:4], s.trips.Load())
	out = append(out, b8[:4]...)
	put64(s.reseedBase)
	var remaining time.Duration
	if state == shardQuarantined {
		if remaining = s.until.Sub(now); remaining < 0 {
			remaining = 0
		}
	}
	put64(uint64(remaining))
	probLeft := 0
	if state == shardProbation {
		probLeft = s.probLeft
	}
	binary.LittleEndian.PutUint32(b8[:4], uint32(probLeft))
	out = append(out, b8[:4]...)
	if he := s.err.Load(); he != nil && state != shardHealthy {
		out = append(out, 1)
		for _, str := range []string{he.Test, he.Detail} {
			if len(str) > 0xFFFF {
				return nil, fmt.Errorf("hybridprng: shard failure detail too long")
			}
			binary.LittleEndian.PutUint16(b8[:2], uint16(len(str)))
			out = append(out, b8[:2]...)
			out = append(out, str...)
		}
	} else {
		out = append(out, 0)
	}
	return out, nil
}

// takeFailure consumes the optional failure-detail record shared by
// the v1 and v3 shard formats.
func takeFailure(rest []byte) (*bitsource.HealthError, []byte, error) {
	if len(rest) < 1 {
		return nil, nil, fmt.Errorf("hybridprng: shard failure flag truncated")
	}
	flagged := rest[0] != 0
	rest = rest[1:]
	if !flagged {
		return nil, rest, nil
	}
	var strs [2]string
	for i := range strs {
		if len(rest) < 2 {
			return nil, nil, fmt.Errorf("hybridprng: shard failure detail truncated")
		}
		n := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return nil, nil, fmt.Errorf("hybridprng: shard failure detail truncated")
		}
		strs[i] = string(rest[:n])
		rest = rest[n:]
	}
	return &bitsource.HealthError{Test: strs[0], Detail: strs[1]}, rest, nil
}

// unmarshalShard rebuilds one shard; bufWords is the ring capacity
// and version the container version from the pool header. now
// re-anchors a quarantined shard's remaining backoff.
func unmarshalShard(blob []byte, bufWords int, version byte, now time.Time) (*poolShard, error) {
	wBlob, rest, err := takePrefixed(blob, "shard walker state")
	if err != nil {
		return nil, err
	}
	w, mon, err := unmarshalWalker(wBlob)
	if err != nil {
		return nil, err
	}
	if len(rest) < 4 {
		return nil, fmt.Errorf("hybridprng: shard residue length truncated")
	}
	nRes := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if nRes > bufWords {
		return nil, fmt.Errorf("hybridprng: ring residue %d exceeds buffer %d", nRes, bufWords)
	}
	if len(rest) < 8*nRes+8+8 {
		return nil, fmt.Errorf("hybridprng: shard state truncated")
	}
	buf := make([]uint64, bufWords)
	idx := bufWords - nRes
	for i := 0; i < nRes; i++ {
		buf[idx+i] = binary.LittleEndian.Uint64(rest[8*i:])
	}
	rest = rest[8*nRes:]
	s := &poolShard{w: w, mon: mon, buf: buf, idx: idx}
	s.draws.Store(binary.LittleEndian.Uint64(rest))
	s.refills.Store(binary.LittleEndian.Uint64(rest[8:]))
	rest = rest[16:]

	if version == 1 {
		// Legacy blob: a tripped shard was retired permanently, and
		// that is how it restores — a v1 snapshot must not resurrect a
		// feed that failed its health tests.
		he, r, err := takeFailure(rest)
		if err != nil {
			return nil, err
		}
		rest = r
		if he != nil {
			s.err.Store(he)
			s.idx = len(s.buf)
			s.state.Store(uint32(shardRetired))
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("hybridprng: %d trailing bytes after shard state", len(rest))
		}
		return s, nil
	}

	if len(rest) < 1+4+8+8+4 {
		return nil, fmt.Errorf("hybridprng: shard recovery state truncated")
	}
	state := shardState(rest[0])
	if state > shardRetired {
		return nil, fmt.Errorf("hybridprng: unknown shard state %d", rest[0])
	}
	s.trips.Store(binary.LittleEndian.Uint32(rest[1:]))
	s.reseedBase = binary.LittleEndian.Uint64(rest[5:])
	remaining := time.Duration(binary.LittleEndian.Uint64(rest[13:]))
	probLeft := int(binary.LittleEndian.Uint32(rest[21:]))
	rest = rest[25:]
	he, rest, err := takeFailure(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("hybridprng: %d trailing bytes after shard state", len(rest))
	}
	if remaining < 0 || remaining > 1000*time.Hour {
		return nil, fmt.Errorf("hybridprng: shard backoff %v out of range", remaining)
	}
	if probLeft < 0 || probLeft > maxShardBuffer {
		return nil, fmt.Errorf("hybridprng: shard probation balance %d out of range", probLeft)
	}
	s.state.Store(uint32(state))
	s.err.Store(he)
	switch state {
	case shardHealthy:
	case shardQuarantined:
		s.idx = len(s.buf)
		s.until = now.Add(remaining)
	case shardProbation:
		s.idx = len(s.buf)
		s.probLeft = probLeft
	case shardRetired:
		s.idx = len(s.buf)
	}
	return s, nil
}

// UnmarshalBinary restores a Pool written by MarshalBinary,
// replacing p's state entirely — including mid-recovery shards,
// which resume their quarantine countdown (re-anchored to this
// process's clock; call SetClock *before* UnmarshalBinary to restore
// against a test clock) or their probation balance. v1 blobs decode
// with their tripped shards retired, the semantics they were written
// under.
func (p *Pool) UnmarshalBinary(data []byte) error {
	if len(data) < len(poolMagic)+1+4+4+8 {
		return fmt.Errorf("hybridprng: pool state too short (%d bytes)", len(data))
	}
	if string(data[:len(poolMagic)]) != poolMagic {
		return fmt.Errorf("hybridprng: bad pool state magic")
	}
	rest := data[len(poolMagic):]
	version := rest[0]
	if version != 1 && version != poolVersion {
		return fmt.Errorf("hybridprng: unsupported pool state version %d", version)
	}
	shards := int(binary.LittleEndian.Uint32(rest[1:]))
	bufWords := int(binary.LittleEndian.Uint32(rest[5:]))
	tickets := binary.LittleEndian.Uint64(rest[9:])
	rest = rest[17:]
	if shards < 1 || shards > maxShards || shards&(shards-1) != 0 {
		return fmt.Errorf("hybridprng: shard count %d is not a power of two in [1, %d]", shards, maxShards)
	}
	if bufWords < 1 || bufWords > maxShardBuffer {
		return fmt.Errorf("hybridprng: shard buffer %d outside [1, %d]", bufWords, maxShardBuffer)
	}
	now := time.Now //lint:wallclock default when the restored Pool has no injected clock yet
	if p.now != nil {
		now = p.now
	}
	pol := RecoveryPolicy{}
	var tripEvents, recoveries uint64
	if version == poolVersion {
		const polLen = 1 + 8 + 8 + 8 + 8 + 4 + 4 + 8 + 8
		if len(rest) < polLen {
			return fmt.Errorf("hybridprng: pool policy truncated")
		}
		pol.Disabled = rest[0] != 0
		pol.QuarantineBase = time.Duration(binary.LittleEndian.Uint64(rest[1:]))
		pol.BackoffFactor = math.Float64frombits(binary.LittleEndian.Uint64(rest[9:]))
		pol.QuarantineMax = time.Duration(binary.LittleEndian.Uint64(rest[17:]))
		pol.JitterFrac = math.Float64frombits(binary.LittleEndian.Uint64(rest[25:]))
		pol.ProbationWords = int(binary.LittleEndian.Uint32(rest[33:]))
		pol.MaxTrips = int(binary.LittleEndian.Uint32(rest[37:]))
		tripEvents = binary.LittleEndian.Uint64(rest[41:])
		recoveries = binary.LittleEndian.Uint64(rest[49:])
		rest = rest[polLen:]
		if math.IsNaN(pol.BackoffFactor) || math.IsNaN(pol.JitterFrac) {
			return fmt.Errorf("hybridprng: pool policy carries NaN")
		}
		if err := pol.validate(); err != nil {
			return err
		}
	}
	restored := &Pool{
		shards: make([]*poolShard, shards),
		mask:   uint64(shards - 1),
		policy: pol.withDefaults(),
	}
	for i := range restored.shards {
		blob, r, err := takePrefixed(rest, fmt.Sprintf("shard %d state", i))
		if err != nil {
			return err
		}
		rest = r
		if restored.shards[i], err = unmarshalShard(blob, bufWords, version, now()); err != nil {
			return fmt.Errorf("hybridprng: shard %d: %w", i, err)
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("hybridprng: %d trailing bytes after pool state", len(rest))
	}
	p.shards, p.mask, p.policy = restored.shards, restored.mask, restored.policy
	if p.now == nil {
		p.now = time.Now //lint:wallclock default when the blob's producer used no injected clock; WithClock still overrides
	}
	for i, s := range p.shards {
		s.pool, s.index = p, i
		if version == 1 || s.reseedBase == 0 {
			// v1 blobs predate deterministic reseeding; derive a stable
			// fallback from the shard index.
			s.reseedBase = reseedBase(0, i)
		}
	}
	p.tickets.Store(tickets)
	p.tripEvents.Store(tripEvents)
	p.recoveries.Store(recoveries)
	return nil
}
