package hybridprng

import (
	"bytes"
	"math"
	"testing"
)

// FuzzUnmarshalBinaryNeverPanics feeds arbitrary blobs to the state
// decoder: every input must yield an error or a usable generator,
// never a panic or a broken one.
func FuzzUnmarshalBinaryNeverPanics(f *testing.F) {
	g, _ := New(WithSeed(1))
	g.Uint64()
	blob, _ := g.MarshalBinary()
	f.Add(blob)
	gm, _ := New(WithSeed(2), WithHealthMonitoring(4))
	gm.Uint64()
	monBlob, _ := gm.MarshalBinary()
	f.Add(monBlob)
	gt, _ := New(WithSeed(3), WithHealthMonitoring(4))
	gt.health.ForceTrip("fuzz seed")
	tripBlob, _ := gt.MarshalBinary()
	f.Add(tripBlob)
	f.Add([]byte{})
	f.Add([]byte("hprng"))
	f.Add(bytes.Repeat([]byte{0xFF}, 200))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := new(Generator)
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		// A successful decode must produce a working generator.
		r.Uint64()
		r.Float64()
		r.HealthErr()
	})
}

// FuzzPoolUnmarshalNeverPanics feeds arbitrary blobs to the pool
// snapshot decoder — the bytes randd reads off disk at boot. Corrupt
// input must error, never panic; a successful decode must yield a
// pool that either serves draws or reports ErrPoolUnhealthy.
func FuzzPoolUnmarshalNeverPanics(f *testing.F) {
	p, _ := NewPool(WithSeed(6), WithShards(2), WithShardBuffer(8), WithHealthMonitoring(4))
	for i := 0; i < 20; i++ {
		p.Uint64()
	}
	blob, _ := p.MarshalBinary()
	f.Add(blob)
	p.InjectFault(1)
	tripped, _ := p.MarshalBinary()
	f.Add(tripped)
	f.Add([]byte{})
	f.Add([]byte("hprng-pool"))
	f.Add(bytes.Repeat([]byte{0xAB}, 300))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := new(Pool)
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		if _, err := r.Uint64(); err != nil && err != ErrPoolUnhealthy {
			t.Fatalf("restored pool returned unexpected error: %v", err)
		}
		r.Stats()
		r.HealthErr()
	})
}

// FuzzPoolSnapshotMutation corrupts valid pool snapshots with bit
// flips and truncation — the deep decoder paths a disk-corrupted
// state file would hit. Mutants must decode to an error or a serving
// pool; the pristine blob must always restore the exact streams.
func FuzzPoolSnapshotMutation(f *testing.F) {
	f.Add(uint16(0), uint8(0), uint16(0))
	f.Add(uint16(40), uint8(0xFF), uint16(0))
	f.Add(uint16(90), uint8(1), uint16(17))
	f.Fuzz(func(t *testing.T, pos uint16, flip uint8, truncate uint16) {
		p, err := NewPool(WithSeed(12), WithShards(2), WithShardBuffer(8), WithHealthMonitoring(4))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 13; i++ {
			p.Uint64()
		}
		blob, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		mutated := append([]byte(nil), blob...)
		if len(mutated) > 0 {
			mutated[int(pos)%len(mutated)] ^= flip
		}
		if cut := int(truncate) % (len(mutated) + 1); cut > 0 {
			mutated = mutated[:len(mutated)-cut]
		}
		r := new(Pool)
		if err := r.UnmarshalBinary(mutated); err == nil {
			if _, err := r.Uint64(); err != nil && err != ErrPoolUnhealthy {
				t.Fatalf("decodable mutant broke serving: %v", err)
			}
		}
		r2 := new(Pool)
		if err := r2.UnmarshalBinary(blob); err != nil {
			t.Fatalf("pristine pool blob rejected: %v", err)
		}
		a, errA := p.Uint64()
		b, errB := r2.Uint64()
		if errA != nil || errB != nil || a != b {
			t.Fatalf("pristine pool restore diverged: %x/%v vs %x/%v", a, errA, b, errB)
		}
	})
}

// FuzzParallelUnmarshalNeverPanics covers the Parallel container
// decoder the same way.
func FuzzParallelUnmarshalNeverPanics(f *testing.F) {
	p, _ := NewParallel(2, WithSeed(8), WithHealthMonitoring(4))
	p.Fill(make([]uint64, 64))
	blob, _ := p.MarshalBinary()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte("hprng-par"))
	f.Add(bytes.Repeat([]byte{0x77}, 250))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := new(Parallel)
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		for i := 0; i < r.Workers(); i++ {
			r.Worker(i).Uint64()
		}
		r.HealthErr()
	})
}

// FuzzCheckpointRoundTrip marshals after a fuzzed number of draws
// and checks the restored stream continues identically.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(0))
	f.Add(uint64(42), uint16(97))
	f.Add(uint64(1<<63), uint16(999))
	f.Fuzz(func(t *testing.T, seed uint64, drawsRaw uint16) {
		draws := int(drawsRaw) % 300
		g, err := New(WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < draws; i++ {
			g.Uint64()
		}
		blob, err := g.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		r := new(Generator)
		if err := r.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if g.Uint64() != r.Uint64() {
				t.Fatal("restored stream diverged")
			}
		}
	})
}

// FuzzOptionsNeverPanic exercises the constructor across fuzzed
// option values: invalid combinations must error, not panic.
func FuzzOptionsNeverPanic(f *testing.F) {
	f.Add(int64(64), int64(64), uint64(0))
	f.Add(int64(-5), int64(0), uint64(9))
	f.Add(int64(1), int64(1000), uint64(1))
	f.Fuzz(func(t *testing.T, walk, initWalk int64, seed uint64) {
		g, err := New(
			WithWalkLength(int(walk%10000)),
			WithInitWalkLength(int(initWalk%10000)),
			WithSeed(seed),
		)
		if err != nil {
			return
		}
		g.Uint64()
	})
}

// FuzzStateMutationNeverPanics starts from a *valid* checkpoint and
// applies targeted corruption (bit flips, truncation), which drives
// the decoder much deeper than arbitrary-bytes fuzzing: most mutants
// pass the magic/version gates and stress the field validation.
// Every mutant must round-trip to an error or a working generator —
// never a panic — and an unmutated blob must restore the exact
// stream.
func FuzzStateMutationNeverPanics(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint8(0), uint16(0))
	f.Add(uint64(2), uint16(7), uint8(3), uint16(0))
	f.Add(uint64(3), uint16(40), uint8(0xFF), uint16(5))
	f.Fuzz(func(t *testing.T, seed uint64, pos uint16, flip uint8, truncate uint16) {
		g, err := New(WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		g.Uint64()
		blob, err := g.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		mutated := append([]byte(nil), blob...)
		if len(mutated) > 0 {
			mutated[int(pos)%len(mutated)] ^= flip
		}
		if cut := int(truncate) % (len(mutated) + 1); cut > 0 {
			mutated = mutated[:len(mutated)-cut]
		}
		r := new(Generator)
		if err := r.UnmarshalBinary(mutated); err == nil {
			r.Uint64() // decodable mutants must still work
		}
		// The pristine blob must always restore the exact stream.
		r2 := new(Generator)
		if err := r2.UnmarshalBinary(blob); err != nil {
			t.Fatalf("pristine blob rejected: %v", err)
		}
		if g.Uint64() != r2.Uint64() {
			t.Fatal("pristine restore diverged")
		}
	})
}

// FuzzOptionValidation fuzzes the stringly/float option paths —
// WithFeed, WithHealthMonitoring, WithWalkLength, WithShards,
// WithShardBuffer. Invalid values must error (a NaN min-entropy
// claim once slipped through the `<= 0 || > 8` comparison chain);
// valid ones must yield a generator whose first draw works and whose
// health state starts clean.
func FuzzOptionValidation(f *testing.F) {
	f.Add("glibc", 4.0, 64, 1)
	f.Add("ansic", 8.0, 1, 2)
	f.Add("splitmix", 0.5, 128, 7)
	f.Add("", -1.0, 0, 0)
	f.Add("mt19937", math.NaN(), -3, 100000)
	f.Fuzz(func(t *testing.T, feed string, hMin float64, walk, shards int) {
		opts := []Option{WithFeed(feed), WithHealthMonitoring(hMin), WithSeed(9)}
		if walk != 0 {
			opts = append(opts, WithWalkLength(walk%2000))
		}
		g, err := New(opts...)
		if err != nil {
			if feed == FeedGlibc || feed == FeedANSIC || feed == FeedSplitMix {
				if hMin > 0 && hMin <= 8 && (walk == 0 || walk%2000 >= 1) {
					t.Fatalf("valid options rejected: %v", err)
				}
			}
			return
		}
		if !(hMin > 0 && hMin <= 8) {
			t.Fatalf("invalid min-entropy claim %v accepted", hMin)
		}
		g.Uint64()
		if g.HealthErr() != nil {
			t.Fatalf("fresh generator unhealthy: %v", g.HealthErr())
		}
		// The same options must also build a working sharded pool.
		poolOpts := append(opts, WithShards(1+abs(shards)%8), WithShardBuffer(16))
		p, err := NewPool(poolOpts...)
		if err != nil {
			t.Fatalf("NewPool rejected options New accepted: %v", err)
		}
		if _, err := p.Uint64(); err != nil {
			t.Fatal(err)
		}
	})
}

func abs(n int) int {
	if n < 0 {
		if n == math.MinInt {
			return 0
		}
		return -n
	}
	return n
}
