package hybridprng

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalBinaryNeverPanics feeds arbitrary blobs to the state
// decoder: every input must yield an error or a usable generator,
// never a panic or a broken one.
func FuzzUnmarshalBinaryNeverPanics(f *testing.F) {
	g, _ := New(WithSeed(1))
	g.Uint64()
	blob, _ := g.MarshalBinary()
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte("hprng"))
	f.Add(bytes.Repeat([]byte{0xFF}, 200))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := new(Generator)
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		// A successful decode must produce a working generator.
		r.Uint64()
		r.Float64()
	})
}

// FuzzCheckpointRoundTrip marshals after a fuzzed number of draws
// and checks the restored stream continues identically.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(0))
	f.Add(uint64(42), uint16(97))
	f.Add(uint64(1<<63), uint16(999))
	f.Fuzz(func(t *testing.T, seed uint64, drawsRaw uint16) {
		draws := int(drawsRaw) % 300
		g, err := New(WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < draws; i++ {
			g.Uint64()
		}
		blob, err := g.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		r := new(Generator)
		if err := r.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if g.Uint64() != r.Uint64() {
				t.Fatal("restored stream diverged")
			}
		}
	})
}

// FuzzOptionsNeverPanic exercises the constructor across fuzzed
// option values: invalid combinations must error, not panic.
func FuzzOptionsNeverPanic(f *testing.F) {
	f.Add(int64(64), int64(64), uint64(0))
	f.Add(int64(-5), int64(0), uint64(9))
	f.Add(int64(1), int64(1000), uint64(1))
	f.Fuzz(func(t *testing.T, walk, initWalk int64, seed uint64) {
		g, err := New(
			WithWalkLength(int(walk%10000)),
			WithInitWalkLength(int(initWalk%10000)),
			WithSeed(seed),
		)
		if err != nil {
			return
		}
		g.Uint64()
	})
}
