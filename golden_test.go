package hybridprng

import "testing"

// goldenSeed is the fixed seed behind every pinned vector below.
const goldenSeed = 12345

// goldenVectors pins the first 16 outputs of New(WithSeed(12345),
// WithFeed(feed)) for every feed. These are regression anchors, not
// derived truths: refactors of the hot loop (core.Walker.walk, the
// step tables, BitReader, the feed generators, seed derivation) must
// keep every stream bit-identical. If a change intentionally alters
// the streams, that is a breaking change to every persisted
// checkpoint and reproducible simulation — bump the state version,
// say so loudly in the changelog, and re-pin.
var goldenVectors = map[string][16]uint64{
	FeedGlibc: {
		0x8a8f3e4fd241fdc6, 0x96b6812037f32e4f, 0x43cd1ce71cda7ef5, 0xf17b24b2d2138291,
		0x3df502a9fcfad511, 0x7db3e2681c74746d, 0xbc5bc488bcda04c0, 0xd89d0c0c9ea3e4c7,
		0xcb186ead6cd62470, 0xae2536e0ba490114, 0xc7e13e57bcbf5ec3, 0xa6eb3406515b3988,
		0x30c2cf1db63957bb, 0x8477ec1879052e48, 0x379fd2a88851dcb9, 0x514700be16e4f4b2,
	},
	FeedANSIC: {
		0x8354cb7bb14d514e, 0xd816b4106b75ef01, 0xede3c90211e95469, 0x2f4820d955e4703a,
		0x2801674475bd770c, 0xbd0968a07b16743a, 0x5d98a6c12bea6d7c, 0xce1a8342d366e621,
		0x81e8d40baafa83c0, 0xa17f56de831fecc6, 0x31acda266cd49cd7, 0xbdfe5fd70a70c8fa,
		0x14449a6c6447cd74, 0x12f13d0a3f9352bc, 0xa3df8d954752882f, 0x7088a03ea8a6e875,
	},
	FeedSplitMix: {
		0xafdf12081e010c7d, 0x9cd900e4d336528c, 0xa7eba03f7d4280e3, 0xf785719779c1e4fe,
		0xa21b7ef9c6996999, 0x1e2b038d326a939b, 0x2b99d80d30fc3984, 0xdea99da5d63088d2,
		0x34374e188f952e54, 0x58314d37356cf147, 0xa0de21081837411a, 0xad78ad7cba338a05,
		0x8f1571410b70df7c, 0x2caea09b7873b929, 0x107adbbbace2b6a9, 0x7d1a2b34a308f7be,
	},
}

// TestGoldenVectors checks every feed's pinned stream prefix.
func TestGoldenVectors(t *testing.T) {
	for feed, want := range goldenVectors {
		t.Run(feed, func(t *testing.T) {
			g, err := New(WithSeed(goldenSeed), WithFeed(feed))
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range want {
				if got := g.Uint64(); got != w {
					t.Fatalf("output %d = %#016x, want %#016x — the %s stream changed; see goldenVectors doc", i, got, w, feed)
				}
			}
		})
	}
}

// TestGoldenFillMatchesUint64 pins the batch path to the same
// stream: Fill must be draw-for-draw identical to repeated Uint64.
func TestGoldenFillMatchesUint64(t *testing.T) {
	g, err := New(WithSeed(goldenSeed))
	if err != nil {
		t.Fatal(err)
	}
	var got [16]uint64
	g.Fill(got[:])
	if got != goldenVectors[FeedGlibc] {
		t.Fatalf("Fill diverged from the pinned Uint64 stream:\n got %#016x\nwant %#016x", got, goldenVectors[FeedGlibc])
	}
}

// TestGoldenPoolShardZero pins the pool's seed derivation: shard 0
// of a single-shard Pool owns exactly the stream of a plain seeded
// Generator (both derive the worker-0 feed seed).
func TestGoldenPoolShardZero(t *testing.T) {
	p, err := NewPool(WithSeed(goldenSeed), WithShards(1), WithShardBuffer(16))
	if err != nil {
		t.Fatal(err)
	}
	want := goldenVectors[FeedGlibc]
	for i, w := range want {
		got, err := p.Uint64()
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("pool output %d = %#016x, want %#016x", i, got, w)
		}
	}
}
