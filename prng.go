// Package hybridprng is an on-demand, scalable, thread-safe pseudo
// random number generator based on random walks on a Gabber–Galil
// expander graph — a from-scratch Go reproduction of Banerjee, Bahl
// and Kothapalli, "An On-Demand Fast Parallel Pseudo Random Number
// Generator with Applications" (IPDPS Workshops 2012).
//
// Each Generator owns an independent walk on a 7-regular expander
// over Z_2³² × Z_2³²; a cheap feed generator (glibc rand() by
// default) supplies 3 bits per walk step, and every call to Uint64
// walks 64 steps and returns the 64-bit vertex id it lands on. The
// expander's rapid mixing amplifies the weak feed bits into output
// that passes the DIEHARD battery and the TestU01-style batteries in
// internal/testu01 (see EXPERIMENTS.md).
//
// On demand means exactly that: there is no pre-generated buffer and
// no a-priori quantity to declare — any number of goroutines can
// each own a Generator (or share a Parallel pool) and draw numbers
// as the computation unfolds, the property the paper's list-ranking
// application exercises.
//
// # Quick start
//
//	g, err := hybridprng.New()
//	if err != nil { ... }
//	x := g.Uint64()      // next random 64-bit value
//	f := g.Float64()     // uniform in [0, 1)
//
// A Generator is deliberately not safe for concurrent use — walkers
// share nothing, so give one to each goroutine (Parallel does this
// for you) exactly like the paper's per-thread walks.
package hybridprng

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/core"
	"repro/internal/expander"
	"repro/internal/rng"
)

// Feed names accepted by WithFeed.
const (
	FeedGlibc    = "glibc"    // the paper's configuration
	FeedANSIC    = "ansic"    // weaker feed (ablation)
	FeedSplitMix = "splitmix" // stronger feed (ablation)
)

type config struct {
	walkLen     int
	initWalkLen int
	feed        string
	seed        uint64
	seeded      bool
	healthHMin  float64 // 0 = no monitoring
	shards      int     // 0 = auto (NewPool only)
	shardBuffer int     // 0 = default (NewPool only)
	recovery    RecoveryPolicy
	recoverySet bool
	now         func() time.Time                 // nil = time.Now (NewPool only)
	feedWrap    func(int, rng.Source) rng.Source // nil = identity
}

// Option configures New and NewParallel.
type Option func(*config) error

// WithWalkLength sets l, the number of expander steps per generated
// number (default 64, the paper's choice). Shorter walks are faster
// and weaker; the ablation benches quantify the trade.
func WithWalkLength(l int) Option {
	return func(c *config) error {
		if l < 1 {
			return fmt.Errorf("hybridprng: walk length %d < 1", l)
		}
		c.walkLen = l
		return nil
	}
}

// WithInitWalkLength sets the length of the Algorithm 1 mixing walk
// run at construction (default 64).
func WithInitWalkLength(l int) Option {
	return func(c *config) error {
		if l < 0 {
			return fmt.Errorf("hybridprng: init walk length %d < 0", l)
		}
		c.initWalkLen = l
		return nil
	}
}

// WithFeed selects the feed-bit generator: FeedGlibc (default),
// FeedANSIC or FeedSplitMix.
func WithFeed(name string) Option {
	return func(c *config) error {
		switch name {
		case FeedGlibc, FeedANSIC, FeedSplitMix:
			c.feed = name
			return nil
		default:
			return fmt.Errorf("hybridprng: unknown feed %q", name)
		}
	}
}

// WithSeed fixes the feed seed for reproducible streams. Without it
// the seed comes from the operating system's entropy pool.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		c.seeded = true
		return nil
	}
}

// WithHealthMonitoring wraps the feed with the SP 800-90B continuous
// health tests (repetition count + adaptive proportion), calibrated
// for a feed claiming hMin bits of min-entropy per byte (a pseudo-
// random feed warrants a conservative claim such as 4). Check
// Generator.HealthErr at consumption boundaries; a tripped monitor
// means the feed broke and the output must not be trusted. This is
// the groundwork for the cryptographic applications the paper's
// conclusion points at.
func WithHealthMonitoring(hMin float64) Option {
	return func(c *config) error {
		if !(hMin > 0 && hMin <= 8) { // rejects NaN too, which <=/> chains let through
			return fmt.Errorf("hybridprng: claimed min-entropy %g outside (0, 8]", hMin)
		}
		c.healthHMin = hMin
		return nil
	}
}

// WithShards sets the shard count for NewPool (rounded up to the
// next power of two so shard selection is a mask, not a division).
// The default is the next power of two ≥ GOMAXPROCS. Other
// constructors ignore it.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("hybridprng: shard count %d < 1", n)
		}
		if n > maxShards {
			return fmt.Errorf("hybridprng: shard count %d > %d", n, maxShards)
		}
		c.shards = n
		return nil
	}
}

// WithShardBuffer sets the per-shard ring-buffer size in words for
// NewPool (default 256). Larger buffers amortise the shard lock and
// the health check over more draws; smaller ones bound the work
// discarded when a shard's feed monitor trips. Other constructors
// ignore it.
func WithShardBuffer(words int) Option {
	return func(c *config) error {
		if words < 1 {
			return fmt.Errorf("hybridprng: shard buffer %d < 1", words)
		}
		if words > maxShardBuffer {
			return fmt.Errorf("hybridprng: shard buffer %d > %d", words, maxShardBuffer)
		}
		c.shardBuffer = words
		return nil
	}
}

// WithRecovery sets the pool's shard self-healing policy (see
// RecoveryPolicy). Zero-valued fields take the documented defaults,
// so WithRecovery(RecoveryPolicy{QuarantineBase: time.Second}) only
// shortens the first backoff. Pass Disabled: true to restore the
// legacy behaviour where a tripped shard is retired permanently.
// Other constructors ignore it.
func WithRecovery(p RecoveryPolicy) Option {
	return func(c *config) error {
		if err := p.validate(); err != nil {
			return err
		}
		c.recovery = p
		c.recoverySet = true
		return nil
	}
}

// WithClock injects the time source the pool's quarantine backoff
// reads (default time.Now). Deterministic tests and the chaos
// harness drive recovery through a manual clock; production callers
// never need it.
func WithClock(now func() time.Time) Option {
	return func(c *config) error {
		if now == nil {
			return fmt.Errorf("hybridprng: nil clock")
		}
		c.now = now
		return nil
	}
}

// WithFeedWrapper interposes wrap between each worker's raw feed
// generator and everything above it (the SP 800-90B monitor sees the
// wrapped stream). The chaos harness uses this to inject seeded
// faults below the health tests; wrap is called once per worker with
// the worker index and must return a non-nil source. Wrapped feeds
// are not checkpointable (MarshalBinary reports an error), so the
// hook is a dev/test facility, not a production one.
func WithFeedWrapper(wrap func(worker int, src rng.Source) rng.Source) Option {
	return func(c *config) error {
		if wrap == nil {
			return fmt.Errorf("hybridprng: nil feed wrapper")
		}
		c.feedWrap = wrap
		return nil
	}
}

func buildConfig(opts []Option) (config, error) {
	c := config{walkLen: core.DefaultWalkLen, initWalkLen: core.DefaultInitWalkLen, feed: FeedGlibc}
	for _, o := range opts {
		if err := o(&c); err != nil {
			return c, err
		}
	}
	if !c.seeded {
		c.seed = bitsource.CryptoSeed()
	}
	return c, nil
}

func (c config) feedSource(worker int) rng.Source {
	seed := baselines.Mix64(c.seed + uint64(worker)*0x9E3779B97F4A7C15)
	switch c.feed {
	case FeedANSIC:
		return baselines.NewANSIC(uint32(seed))
	case FeedSplitMix:
		return baselines.NewSplitMix64(seed)
	default:
		return baselines.NewGlibcRand(uint32(seed))
	}
}

// bits builds the worker's feed-bit reader, optionally behind a
// health monitor (returned non-nil only when monitoring is on).
func (c config) bits(worker int) (*rng.BitReader, *bitsource.Monitor, error) {
	src := c.feedSource(worker)
	if c.feedWrap != nil {
		if src = c.feedWrap(worker, src); src == nil {
			return nil, nil, fmt.Errorf("hybridprng: feed wrapper returned nil for worker %d", worker)
		}
	}
	if c.healthHMin > 0 {
		mon, err := bitsource.NewMonitor(src, c.healthHMin)
		if err != nil {
			return nil, nil, err
		}
		return rng.NewBitReader(mon), mon, nil
	}
	return rng.NewBitReader(src), nil, nil
}

func (c config) coreConfig() core.Config {
	return core.Config{WalkLen: c.walkLen, InitWalkLen: c.initWalkLen}
}

// Generator is one independent expander walk. Not safe for
// concurrent use; see Parallel or Shared.
type Generator struct {
	w      *core.Walker
	health *bitsource.Monitor // nil unless WithHealthMonitoring
}

// New creates a Generator and runs the paper's InitializeGenerator
// (Algorithm 1): a random start vertex from 64 feed bits followed by
// the mixing walk.
func New(opts ...Option) (*Generator, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	bits, mon, err := c.bits(0)
	if err != nil {
		return nil, err
	}
	w, err := core.NewWalker(bits, c.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Generator{w: w, health: mon}, nil
}

// HealthErr returns the first feed health-test failure, or nil.
// Always nil when WithHealthMonitoring was not requested.
func (g *Generator) HealthErr() error {
	if g.health == nil {
		return nil
	}
	return g.health.Err()
}

// Uint64 returns the next random value — the paper's GetNextRand
// (Algorithm 2).
func (g *Generator) Uint64() uint64 { return g.w.Next() }

// Uint32 returns the top 32 bits of the next value.
func (g *Generator) Uint32() uint32 { return uint32(g.w.Next() >> 32) }

// Float64 returns a uniform value in [0, 1).
func (g *Generator) Float64() float64 { return rng.Float64(g.w) }

// Uint64n returns a uniform value in [0, n); it panics if n is 0.
func (g *Generator) Uint64n(n uint64) uint64 { return rng.Uint64n(g.w, n) }

// Intn returns a uniform value in [0, n); it panics if n ≤ 0.
func (g *Generator) Intn(n int) int {
	if n <= 0 {
		panic("hybridprng: Intn with non-positive n")
	}
	return int(rng.Uint64n(g.w, uint64(n)))
}

// NormFloat64 returns a standard normal variate.
func (g *Generator) NormFloat64() float64 { return rng.NormFloat64(g.w) }

// Fill writes successive values into dst.
func (g *Generator) Fill(dst []uint64) { g.w.Fill(dst) }

// Skip discards the next n values (the stream advances exactly as if
// they had been drawn).
func (g *Generator) Skip(n uint64) { g.w.Skip(n) }

// Read fills p with random bytes (io.Reader). It always fills the
// whole slice and never returns an error; partially consumed words
// are discarded between calls, so byte streams from separate Read
// calls of the same total length are NOT bitwise identical to one
// long Read.
func (g *Generator) Read(p []byte) (int, error) {
	i := 0
	for ; i+8 <= len(p); i += 8 {
		v := g.w.Next()
		p[i] = byte(v)
		p[i+1] = byte(v >> 8)
		p[i+2] = byte(v >> 16)
		p[i+3] = byte(v >> 24)
		p[i+4] = byte(v >> 32)
		p[i+5] = byte(v >> 40)
		p[i+6] = byte(v >> 48)
		p[i+7] = byte(v >> 56)
	}
	if i < len(p) {
		v := g.w.Next()
		for ; i < len(p); i++ {
			p[i] = byte(v)
			v >>= 8
		}
	}
	return len(p), nil
}

// Position exposes the walk's current expander vertex.
func (g *Generator) Position() expander.Vertex { return g.w.Position() }

// Generated returns how many numbers this generator has produced.
func (g *Generator) Generated() uint64 { return g.w.Generated() }

// Shuffle pseudo-randomises the order of n elements using swap, like
// math/rand.Shuffle.
func (g *Generator) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := int(rng.Uint64n(g.w, uint64(i+1)))
		swap(i, j)
	}
}

// mathSource adapts a Generator to math/rand.Source64.
type mathSource struct{ g *Generator }

func (s mathSource) Uint64() uint64  { return s.g.Uint64() }
func (s mathSource) Int63() int64    { return int64(s.g.Uint64() >> 1) }
func (s mathSource) Seed(seed int64) {} // streams are seeded at construction
// MathRandSource returns a math/rand.Source64 view of the generator,
// so it can drive rand.New for the full math/rand distribution
// toolkit.
func (g *Generator) MathRandSource() rand.Source64 { return mathSource{g} }

// Shared wraps a Generator behind a mutex for callers that insist on
// one stream shared across goroutines. Prefer Parallel.
type Shared struct {
	mu sync.Mutex
	g  *Generator
}

// NewShared creates a mutex-guarded generator.
func NewShared(opts ...Option) (*Shared, error) {
	g, err := New(opts...)
	if err != nil {
		return nil, err
	}
	return &Shared{g: g}, nil
}

// Uint64 returns the next value under the lock.
func (s *Shared) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.Uint64()
}

// Float64 returns a uniform [0,1) value under the lock.
func (s *Shared) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.Float64()
}

// Parallel is a pool of independent generators, one per worker —
// the library form of the paper's per-thread walks. Fill splits
// batches across workers; Worker hands a private generator to each
// goroutine.
type Parallel struct {
	pool *core.Pool
	// monitors is indexed by worker (nil entries when monitoring is
	// off), so Worker(i) can hand out a generator that reports its
	// own feed's health.
	monitors []*bitsource.Monitor
}

// NewParallel creates a pool of `workers` independent generators
// with derived seeds.
func NewParallel(workers int, opts ...Option) (*Parallel, error) {
	c, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("hybridprng: pool size %d < 1", workers)
	}
	monitors := make([]*bitsource.Monitor, workers)
	var bitsErr error
	pool, err := core.NewPool(workers, c.coreConfig(), func(i int) *rng.BitReader {
		br, mon, err := c.bits(i)
		if err != nil {
			// Unreachable in practice (options are validated before
			// this point); keep the pool constructor total and
			// surface the error after it returns.
			bitsErr = err
			return rng.NewBitReader(c.feedSource(i))
		}
		monitors[i] = mon
		return br
	})
	if err != nil {
		return nil, err
	}
	if bitsErr != nil {
		return nil, bitsErr
	}
	return &Parallel{pool: pool, monitors: monitors}, nil
}

// HealthErr returns the first health failure across the pool's
// workers, or nil.
func (p *Parallel) HealthErr() error {
	for _, m := range p.monitors {
		if m == nil {
			continue
		}
		if err := m.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Workers returns the pool size.
func (p *Parallel) Workers() int { return p.pool.Size() }

// Worker returns worker i's private generator; hand each goroutine
// its own. The generator carries worker i's health monitor, so its
// HealthErr reflects that worker's feed (not always nil, as it did
// before the monitor was threaded through).
func (p *Parallel) Worker(i int) *Generator {
	return &Generator{w: p.pool.Walker(i), health: p.monitors[i]}
}

// Fill writes len(dst) values, sharded across the workers
// concurrently; the result is deterministic for a fixed seed.
func (p *Parallel) Fill(dst []uint64) { p.pool.Fill(dst) }

// Generated sums the numbers produced across all workers.
func (p *Parallel) Generated() uint64 { return p.pool.Generated() }
