package hybridprng

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewDefaults(t *testing.T) {
	g, err := New(WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.Uint64() == g.Uint64() {
		t.Error("successive values identical")
	}
	if g.Generated() != 2 {
		t.Errorf("Generated = %d", g.Generated())
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(WithWalkLength(0)); err == nil {
		t.Error("walk length 0 should fail")
	}
	if _, err := New(WithInitWalkLength(-1)); err == nil {
		t.Error("negative init walk should fail")
	}
	if _, err := New(WithFeed("bogus")); err == nil {
		t.Error("unknown feed should fail")
	}
	for _, feed := range []string{FeedGlibc, FeedANSIC, FeedSplitMix} {
		if _, err := New(WithFeed(feed), WithSeed(1)); err != nil {
			t.Errorf("feed %q: %v", feed, err)
		}
	}
}

func TestSeededReproducibility(t *testing.T) {
	g1, _ := New(WithSeed(42))
	g2, _ := New(WithSeed(42))
	for i := 0; i < 100; i++ {
		if g1.Uint64() != g2.Uint64() {
			t.Fatal("seeded generators diverged")
		}
	}
	g3, _ := New(WithSeed(43))
	if g1.Uint64() == g3.Uint64() {
		t.Error("different seeds should give different streams")
	}
}

func TestUnseededGeneratorsDiffer(t *testing.T) {
	g1, _ := New()
	g2, _ := New()
	same := 0
	for i := 0; i < 32; i++ {
		if g1.Uint64() == g2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Error("entropy-seeded generators produced equal values")
	}
}

func TestFloat64Range(t *testing.T) {
	g, _ := New(WithSeed(7))
	var s float64
	for i := 0; i < 20000; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g", v)
		}
		s += v
	}
	if mean := s / 20000; mean < 0.48 || mean > 0.52 {
		t.Errorf("mean = %g", mean)
	}
}

func TestUint64nAndIntn(t *testing.T) {
	g, _ := New(WithSeed(8))
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := g.Intn(10)
		counts[v]++
	}
	for d, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("digit %d count %d", d, c)
		}
	}
	if v := g.Uint64n(1); v != 0 {
		t.Errorf("Uint64n(1) = %d", v)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Intn(0) should panic")
			}
		}()
		g.Intn(0)
	}()
}

func TestNormFloat64Moments(t *testing.T) {
	g, _ := New(WithSeed(9))
	var sum, sum2 float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := g.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %g", variance)
	}
}

func TestFillMatchesSequential(t *testing.T) {
	g1, _ := New(WithSeed(3))
	g2, _ := New(WithSeed(3))
	buf := make([]uint64, 100)
	g1.Fill(buf)
	for i, v := range buf {
		if w := g2.Uint64(); v != w {
			t.Fatalf("Fill[%d] = %d, want %d", i, v, w)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	g, _ := New(WithSeed(5))
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatal("shuffle lost elements")
		}
	}
	moved := 0
	for i, v := range xs {
		if v != i {
			moved++
		}
	}
	if moved < 50 {
		t.Errorf("only %d/100 elements moved", moved)
	}
}

func TestMathRandSource(t *testing.T) {
	g, _ := New(WithSeed(11))
	r := rand.New(g.MathRandSource())
	v := r.Intn(1000)
	if v < 0 || v >= 1000 {
		t.Errorf("Intn via math/rand = %d", v)
	}
	p := r.Perm(10)
	if len(p) != 10 {
		t.Error("Perm broken")
	}
	if f := r.Float64(); f < 0 || f >= 1 {
		t.Errorf("Float64 via math/rand = %g", f)
	}
	// Int63 must be non-negative.
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestSharedConcurrent(t *testing.T) {
	s, err := NewShared(WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	seen := make([]map[uint64]bool, 8)
	for i := 0; i < 8; i++ {
		seen[i] = make(map[uint64]bool)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				seen[i][s.Uint64()] = true
			}
			_ = s.Float64()
		}(i)
	}
	wg.Wait()
	all := make(map[uint64]bool)
	for _, m := range seen {
		for v := range m {
			if all[v] {
				t.Fatal("duplicate value across goroutines")
			}
			all[v] = true
		}
	}
}

func TestParallelFillDeterministic(t *testing.T) {
	p1, err := NewParallel(4, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewParallel(4, WithSeed(21))
	a := make([]uint64, 1001)
	b := make([]uint64, 1001)
	p1.Fill(a)
	p2.Fill(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel fill not reproducible")
		}
	}
	if p1.Workers() != 4 {
		t.Errorf("Workers = %d", p1.Workers())
	}
	if p1.Generated() != 1001 {
		t.Errorf("Generated = %d", p1.Generated())
	}
}

func TestParallelWorkersIndependent(t *testing.T) {
	p, _ := NewParallel(3, WithSeed(33))
	var wg sync.WaitGroup
	outs := make([][]uint64, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := p.Worker(i)
			for j := 0; j < 500; j++ {
				outs[i] = append(outs[i], g.Uint64())
			}
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, o := range outs {
		for _, v := range o {
			if seen[v] {
				t.Fatal("cross-worker duplicate")
			}
			seen[v] = true
		}
	}
}

func TestParallelValidation(t *testing.T) {
	if _, err := NewParallel(0); err == nil {
		t.Error("zero workers should fail")
	}
	if _, err := NewParallel(2, WithWalkLength(-1)); err == nil {
		t.Error("bad option should fail")
	}
	if _, err := NewShared(WithFeed("bogus")); err == nil {
		t.Error("bad shared option should fail")
	}
}

func TestHealthMonitoringOption(t *testing.T) {
	if _, err := New(WithHealthMonitoring(0)); err == nil {
		t.Error("hMin 0 should fail")
	}
	if _, err := New(WithHealthMonitoring(9)); err == nil {
		t.Error("hMin 9 should fail")
	}
	g, err := New(WithSeed(7), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		g.Uint64()
	}
	if err := g.HealthErr(); err != nil {
		t.Errorf("healthy feed reported %v", err)
	}
	// A monitored generator is checkpointable: the monitor is
	// unwrapped (it used to defeat the feed-tag switch and fail) and
	// its state rides along in the blob.
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal of a monitored generator failed: %v", err)
	}
	restored := new(Generator)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.health == nil {
		t.Error("restored generator lost its health monitor")
	}
	for i := 0; i < 100; i++ {
		if g.Uint64() != restored.Uint64() {
			t.Fatal("monitored restore diverged")
		}
	}
	// Unmonitored generators report nil.
	g2, _ := New(WithSeed(8))
	if g2.HealthErr() != nil {
		t.Error("unmonitored generator must report nil health")
	}
	// Pool variant.
	p, err := NewParallel(3, WithSeed(9), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint64, 10000)
	p.Fill(buf)
	if err := p.HealthErr(); err != nil {
		t.Errorf("healthy pool reported %v", err)
	}
	p2, _ := NewParallel(2, WithSeed(10))
	if p2.HealthErr() != nil {
		t.Error("unmonitored pool must report nil health")
	}
}

func TestReadFillsEverything(t *testing.T) {
	g, _ := New(WithSeed(80))
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000} {
		buf := make([]byte, n)
		got, err := g.Read(buf)
		if err != nil || got != n {
			t.Fatalf("Read(%d) = %d, %v", n, got, err)
		}
	}
	// Byte content equals the word stream, little-endian.
	g1, _ := New(WithSeed(81))
	g2, _ := New(WithSeed(81))
	buf := make([]byte, 16)
	if _, err := g1.Read(buf); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2; w++ {
		want := g2.Uint64()
		for b := 0; b < 8; b++ {
			if buf[w*8+b] != byte(want>>(8*b)) {
				t.Fatalf("byte %d mismatch", w*8+b)
			}
		}
	}
	// Bytes are roughly balanced.
	g3, _ := New(WithSeed(82))
	big := make([]byte, 1<<16)
	if _, err := g3.Read(big); err != nil {
		t.Fatal(err)
	}
	var counts [256]int
	for _, b := range big {
		counts[b]++
	}
	for v, c := range counts {
		if c < 128 || c > 384 { // expectation 256
			t.Fatalf("byte value %d count %d", v, c)
		}
	}
}

func TestSkipMatchesDiscardedDraws(t *testing.T) {
	g1, _ := New(WithSeed(70))
	g2, _ := New(WithSeed(70))
	g1.Skip(37)
	for i := 0; i < 37; i++ {
		g2.Uint64()
	}
	if g1.Generated() != g2.Generated() {
		t.Errorf("Generated after skip = %d, want %d", g1.Generated(), g2.Generated())
	}
	for i := 0; i < 20; i++ {
		if g1.Uint64() != g2.Uint64() {
			t.Fatal("Skip diverged from discarded draws")
		}
	}
	g1.Skip(0) // no-op
	if g1.Generated() != g2.Generated() {
		t.Error("Skip(0) changed the count")
	}
}

func TestWalkLengthOptionChangesStream(t *testing.T) {
	g64, _ := New(WithSeed(50), WithWalkLength(64))
	g8, _ := New(WithSeed(50), WithWalkLength(8))
	if g64.Uint64() == g8.Uint64() {
		t.Error("walk length option had no effect")
	}
}

func TestPositionIsOnGraph(t *testing.T) {
	g, _ := New(WithSeed(60))
	v := g.Uint64()
	if g.Position().ID() != v {
		t.Error("position does not match the emitted value")
	}
}

func TestStreamsNeverCollideProperty(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		g1, err1 := New(WithSeed(s1))
		g2, err2 := New(WithSeed(s2))
		if err1 != nil || err2 != nil {
			return false
		}
		return g1.Uint64() != g2.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
