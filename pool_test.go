package hybridprng

import (
	"errors"
	"testing"
)

func TestPoolShardRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {1000, 1024},
	} {
		p, err := NewPool(WithSeed(1), WithShards(tc.ask))
		if err != nil {
			t.Fatal(err)
		}
		if p.Shards() != tc.want {
			t.Errorf("WithShards(%d): %d shards, want %d", tc.ask, p.Shards(), tc.want)
		}
	}
}

func TestPoolOptionValidation(t *testing.T) {
	if _, err := NewPool(WithShards(0)); err == nil {
		t.Error("WithShards(0) must fail")
	}
	if _, err := NewPool(WithShards(maxShards + 1)); err == nil {
		t.Error("WithShards over the cap must fail")
	}
	if _, err := NewPool(WithShardBuffer(0)); err == nil {
		t.Error("WithShardBuffer(0) must fail")
	}
	if _, err := NewPool(WithShardBuffer(maxShardBuffer + 1)); err == nil {
		t.Error("WithShardBuffer over the cap must fail")
	}
}

func TestPoolFillMatchesGeneratorStream(t *testing.T) {
	// A fresh 1-shard pool's direct Fill path must reproduce the
	// underlying generator's stream exactly (the ring is untouched
	// until the first Uint64).
	p, err := NewPool(WithSeed(7), WithShards(1), WithShardBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, 300)
	g.Fill(want)
	got := make([]uint64, 300)
	if err := p.Fill(got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pool Fill diverged at %d: %#x != %#x", i, got[i], want[i])
		}
	}
}

func TestPoolReproducibleCallPattern(t *testing.T) {
	// Ring-buffered Uint64 and direct Fill interleave a shard's
	// stream in buffer order, not draw order — but the same seed and
	// the same call pattern must reproduce the same outputs.
	run := func() []uint64 {
		p, err := NewPool(WithSeed(13), WithShards(2), WithShardBuffer(8))
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		batch := make([]uint64, 100)
		for round := 0; round < 3; round++ {
			for i := 0; i < 5; i++ {
				v, err := p.Uint64()
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, v)
			}
			if err := p.Fill(batch); err != nil {
				t.Fatal(err)
			}
			out = append(out, batch...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed + same call pattern diverged at %d", i)
		}
	}
}

func TestPoolStats(t *testing.T) {
	p, err := NewPool(WithSeed(3), WithShards(4), WithShardBuffer(32))
	if err != nil {
		t.Fatal(err)
	}
	const draws = 1000
	for i := 0; i < draws; i++ {
		if _, err := p.Uint64(); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Shards != 4 || st.Healthy != 4 || st.HealthTrips != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Draws != draws {
		t.Errorf("Draws = %d, want %d", st.Draws, draws)
	}
	if st.BufferWords != 32 {
		t.Errorf("BufferWords = %d, want 32", st.BufferWords)
	}
	if g := p.Generated(); g < draws {
		t.Errorf("Generated = %d < draws %d", g, draws)
	}
	var buffered uint64
	for _, ss := range st.PerShard {
		buffered += uint64(ss.Buffered)
	}
	// Everything generated is either served or still buffered.
	if p.Generated() != st.Draws+buffered {
		t.Errorf("Generated %d != served %d + buffered %d", p.Generated(), st.Draws, buffered)
	}
}

func TestPoolFaultInjection(t *testing.T) {
	p, err := NewPool(WithSeed(5), WithShards(4), WithHealthMonitoring(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.HealthErr(); err != nil {
		t.Fatalf("fresh pool unhealthy: %v", err)
	}
	if err := p.InjectFault(2); err != nil {
		t.Fatal(err)
	}
	if p.HealthErr() == nil {
		t.Fatal("HealthErr nil after fault injection")
	}
	st := p.Stats()
	if st.Healthy != 3 || st.HealthTrips != 1 {
		t.Fatalf("stats after one fault: %+v", st)
	}
	if !st.PerShard[2].Tripped || st.PerShard[2].Failure == "" {
		t.Fatalf("shard 2 not reported tripped: %+v", st.PerShard[2])
	}
	// Degraded pool keeps serving from the healthy shards.
	for i := 0; i < 100; i++ {
		if _, err := p.Uint64(); err != nil {
			t.Fatalf("degraded pool draw %d: %v", i, err)
		}
	}
	if err := p.Fill(make([]uint64, 5000)); err != nil {
		t.Fatalf("degraded pool fill: %v", err)
	}
	// Trip the rest: draws must fail with ErrPoolUnhealthy.
	for i := 0; i < p.Shards(); i++ {
		if err := p.InjectFault(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Uint64(); !errors.Is(err, ErrPoolUnhealthy) {
		t.Fatalf("fully tripped pool: Uint64 err = %v", err)
	}
	if err := p.Fill(make([]uint64, 10)); !errors.Is(err, ErrPoolUnhealthy) {
		t.Fatalf("fully tripped pool: Fill err = %v", err)
	}
	if err := p.InjectFault(99); err == nil {
		t.Error("InjectFault out of range must error")
	}
}

func TestPoolFaultInjectionWithoutMonitoring(t *testing.T) {
	p, err := NewPool(WithSeed(5), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InjectFault(0); err != nil {
		t.Fatal(err)
	}
	if p.HealthErr() == nil {
		t.Fatal("forced trip must surface without a monitor")
	}
	if _, err := p.Uint64(); err != nil {
		t.Fatalf("one healthy shard left, draw failed: %v", err)
	}
}

func TestPoolRead(t *testing.T) {
	p, err := NewPool(WithSeed(9), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1000) // not a multiple of 8
	n, err := p.Read(b)
	if err != nil || n != len(b) {
		t.Fatalf("Read = %d, %v", n, err)
	}
	var zero int
	for _, c := range b {
		if c == 0 {
			zero++
		}
	}
	if zero > len(b)/8 {
		t.Errorf("suspiciously many zero bytes: %d/%d", zero, len(b))
	}
}
