package listrank

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/hybrid"
	"repro/internal/rng"
)

// FISRankOnDevice runs the REAL three-phase ranking with Phase I
// executed through the simulated device: every iteration's
// coin-draw/splice pass is launched as a gpu.Kernel whose Body does
// the actual work, while the launch is booked on the platform's
// timeline with the Figure 7 cost model. The returned ranks are
// exact (verified against SequentialRanks in the tests); the
// returned time is the simulated Phase I duration.
//
// The kernel bodies run with Workers=1 so that draws from src are
// made in deterministic node order; the booked duration models the
// massively parallel execution the body stands for.
func FISRankOnDevice(l *List, src rng.Source) ([]int64, *ReduceStats, gpu.Time, error) {
	model := hybrid.DefaultCostModel()
	p, err := hybrid.NewPlatform(model)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg := p.Device.Config()
	cfg.Workers = 1
	dev, err := gpu.NewDevice(p.Sim, cfg)
	if err != nil {
		return nil, nil, 0, err
	}

	n := l.Len()
	succ := append([]int32(nil), l.Succ...)
	pred := append([]int32(nil), l.Pred...)
	val := make([]int64, n)
	for i := range val {
		val[i] = 1
	}
	val[l.Head] = 0
	active := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		active = append(active, int32(i))
	}
	bits := make([]byte, n)
	stats := &ReduceStats{}
	var stack []removal

	start := p.Sim.Horizon()
	feedStream := dev.NewStream(start)
	genStream := dev.NewStream(start)
	feedReady := start
	br := rng.NewBitReader(src)

	target := int64(reduceTarget(n))
	for int64(len(active)) > target {
		stats.Iterations++
		stats.ActivePerIt = append(stats.ActivePerIt, int64(len(active)))
		cnt := int64(len(active))

		// FEED + TRANSFER for exactly the on-demand count.
		bytes := int64(model.FeedBytesPerNumber() * float64(cnt))
		f := p.Host.Compute("F", feedReady, model.FeedChunkOverheadNs+float64(bytes)/model.FeedBytesPerSec*1e9)
		feedReady = f.End
		feedStream.WaitFor(f.End)
		tr := feedStream.CopyH2D("T", bytes)
		genStream.WaitFor(tr.End)

		// GENERATE+splice kernel: the body performs the real
		// reduction step over the active range.
		cur := active
		var next []int32
		genStream.Launch(gpu.Kernel{
			Name:            "G",
			Threads:         len(cur),
			CyclesPerThread: model.GenCyclesPerNumber() + spliceCyclesPerNode,
			Body: func(lo, hi int) {
				// Draw phase (Algorithm 3 line 6): one on-demand
				// number per surviving node.
				for _, u := range cur[lo:hi] {
					stats.RandomsDrawn++
					bits[u] = byte(br.Bits(64) & 1)
				}
				// Splice phase over the same range.
				for _, u := range cur[lo:hi] {
					pd, s := pred[u], succ[u]
					if pd != -1 && s != -1 && bits[u] == 1 && bits[pd] == 0 && bits[s] == 0 {
						stack = append(stack, removal{node: u, pred: pd, val: val[u]})
						val[s] += val[u]
						succ[pd] = s
						pred[s] = pd
						stats.Removed++
						continue
					}
					next = append(next, u)
				}
			},
		})
		// The loop guard keeps ≥ 2 survivors (ends are never
		// removed), so an empty `next` means the body never ran.
		if next == nil {
			return nil, nil, 0, fmt.Errorf("listrank: device kernel body did not execute")
		}
		active = next
	}
	end := p.Sim.Horizon()

	ranks := make([]int64, n)
	r := int64(0)
	for cur := l.Head; cur != -1; cur = succ[cur] {
		r += val[cur]
		ranks[cur] = r
	}
	for i := len(stack) - 1; i >= 0; i-- {
		rm := stack[i]
		ranks[rm.node] = ranks[rm.pred] + rm.val
	}
	return ranks, stats, end - start, nil
}
