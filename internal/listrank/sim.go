package listrank

import (
	"fmt"
	"math"

	"repro/internal/gpu"
	"repro/internal/hybrid"
)

// Figure 7 timing model. Three implementations of Phase I (the FIS
// reduction, 80% of list-ranking time per the paper) are booked on
// the simulated platform:
//
//   - "hybrid-ours": Algorithm 3. Each iteration the CPU feeds
//     exactly active_i numbers' worth of walk bits (24 B each, on
//     demand — the count is known because GetNextRand is pulled by
//     surviving threads), overlapped with the previous iteration's
//     kernel. The GPU walks (64·56 cycles) and splices per active
//     node.
//
//   - "hybrid-glibc": the algorithm of the paper's reference [3].
//     The CPU pre-generates a predetermined upper bound of numbers
//     per iteration — the w.h.p. FIS guarantee of n·(23/24)^i
//     survivors, not the actual ≈ n·(7/8)^i — at serial glibc rand()
//     speed (rand() is not thread safe, so one core), 4 B per
//     number; the GPU splices and reads the pre-generated numbers
//     from global memory.
//
//   - "pure-gpu-mt": no CPU at all; each iteration a Mersenne
//     Twister batch kernel generates the bound-count numbers into
//     device memory, then the splice kernel consumes them.
//
// The constants below are the defensible mechanism behind the
// paper's ≈ 40% Phase I improvement: on-demand generation removes
// the (23/24)/(7/8) over-generation factor, and the thread-safe
// walkers let the feed run multicore.
const (
	spliceCyclesPerNode = 200 // compare bits, splice, book-keep
	fetchCyclesPerRand  = 60  // uncoalesced global read of a stored number
	serialGlibcBps      = 0.35e9
	fisRemoveProb       = 1.0 / 8  // true per-iteration survival factor 7/8
	fisBoundProb        = 1.0 / 24 // w.h.p. guarantee used by [3]
)

// Variant names for RankTimeSim.
const (
	VariantHybridOurs  = "hybrid-ours"
	VariantHybridGlibc = "hybrid-glibc"
	VariantPureGPUMT   = "pure-gpu-mt"
)

// Variants lists the Figure 7 curves in the paper's order.
func Variants() []string {
	return []string{VariantPureGPUMT, VariantHybridGlibc, VariantHybridOurs}
}

// SimReport is the Figure 7 datum for one variant and list size.
type SimReport struct {
	Variant    string
	N          int64
	Iterations int
	SimNs      gpu.Time
	CPUUtil    float64
	GPUUtil    float64
	Randoms    int64 // numbers generated/fed in total
}

func (r SimReport) String() string {
	return fmt.Sprintf("%-14s N=%d iters=%d time=%.3f ms randoms=%d cpu=%.0f%% gpu=%.0f%%",
		r.Variant, r.N, r.Iterations, r.SimNs/1e6, r.Randoms, 100*r.CPUUtil, 100*r.GPUUtil)
}

// expectedActive returns the modelled survivor counts per iteration
// until n/log₂n remain, with survival factor (1−p).
func expectedActive(n int64, p float64) []int64 {
	target := float64(reduceTarget(int(min64(n, 1<<30))))
	if n > 1<<30 {
		// For list sizes beyond what fits an int, log₂n directly.
		target = float64(n) / math.Log2(float64(n))
	}
	var counts []int64
	c := float64(n)
	for c > target && len(counts) < 200 {
		counts = append(counts, int64(c))
		c *= 1 - p
	}
	return counts
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// RankTimeSim books Phase I of variant v for a list of n nodes on a
// fresh simulated platform and returns the timing report. If
// measured is non-nil (real per-iteration active counts from
// FISRank), those drive the on-demand variant instead of the model.
func RankTimeSim(variant string, n int64, measured *ReduceStats) (SimReport, error) {
	if n < 2 {
		return SimReport{}, fmt.Errorf("listrank: n = %d < 2", n)
	}
	model := hybrid.DefaultCostModel()
	p, err := hybrid.NewPlatform(model)
	if err != nil {
		return SimReport{}, err
	}

	var active, bound []int64
	if measured != nil && len(measured.ActivePerIt) > 0 {
		active = measured.ActivePerIt
	} else {
		active = expectedActive(n, fisRemoveProb)
	}
	bound = expectedActive(n, fisBoundProb)
	// Align iteration counts: [3] runs the same loop until the same
	// target, so both schedules run max(len) iterations; pad with
	// the final value.
	iters := len(active)
	if len(bound) > iters {
		iters = len(bound)
	}
	at := func(xs []int64, i int) int64 {
		if i < len(xs) {
			return xs[i]
		}
		if len(xs) == 0 {
			return 0
		}
		return xs[len(xs)-1]
	}

	start := p.Sim.Horizon()
	feedStream := p.Device.NewStream(start)
	genStream := p.Device.NewStream(start)
	var totalRandoms int64
	feedReady := start

	for i := 0; i < iters; i++ {
		switch variant {
		case VariantHybridOurs:
			cnt := at(active, i)
			totalRandoms += cnt
			bytes := int64(model.FeedBytesPerNumber() * float64(cnt))
			f := p.Host.Compute("F", feedReady, model.FeedChunkOverheadNs+float64(bytes)/model.FeedBytesPerSec*1e9)
			feedReady = f.End // pipelined: host rolls on
			feedStream.WaitFor(f.End)
			t := feedStream.CopyH2D("T", bytes)
			genStream.WaitFor(t.End)
			genStream.Launch(gpu.Kernel{
				Name:            "G",
				Threads:         int(min64(cnt, 1<<30)),
				CyclesPerThread: model.GenCyclesPerNumber() + spliceCyclesPerNode,
			})
		case VariantHybridGlibc:
			cnt := at(bound, i)
			totalRandoms += cnt
			bytes := cnt * 4
			f := p.Host.Compute("F", feedReady, model.FeedChunkOverheadNs+float64(bytes)/serialGlibcBps*1e9)
			feedReady = f.End
			feedStream.WaitFor(f.End)
			t := feedStream.CopyH2D("T", bytes)
			genStream.WaitFor(t.End)
			genStream.Launch(gpu.Kernel{
				Name:            "G",
				Threads:         int(min64(at(active, i), 1<<30)),
				CyclesPerThread: float64(spliceCyclesPerNode + fetchCyclesPerRand),
			})
		case VariantPureGPUMT:
			cnt := at(bound, i)
			totalRandoms += cnt
			genStream.Launch(gpu.Kernel{
				Name:            "M",
				Threads:         int(min64(cnt, 1<<30)),
				CyclesPerThread: model.MTBatchCyclesPerNumber,
			})
			genStream.Launch(gpu.Kernel{
				Name:            "G",
				Threads:         int(min64(at(active, i), 1<<30)),
				CyclesPerThread: float64(spliceCyclesPerNode + fetchCyclesPerRand),
			})
		default:
			return SimReport{}, fmt.Errorf("listrank: unknown variant %q", variant)
		}
	}
	end := p.Sim.Horizon()
	return SimReport{
		Variant:    variant,
		N:          n,
		Iterations: iters,
		SimNs:      end - start,
		CPUUtil:    p.Sim.Utilization(p.Host.Resource(), start, end),
		GPUUtil:    p.Sim.Utilization(p.Device.ComputeResource(), start, end),
		Randoms:    totalRandoms,
	}, nil
}
