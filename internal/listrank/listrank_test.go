package listrank

import (
	"testing"
	"testing/quick"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/core"
)

func src(seed uint64) *baselines.SplitMix64 { return baselines.NewSplitMix64(seed) }

func TestNewOrderedList(t *testing.T) {
	l, err := NewOrderedList(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	ranks, err := SequentialRanks(l)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ranks {
		if r != int64(i) {
			t.Errorf("rank[%d] = %d", i, r)
		}
	}
	if _, err := NewOrderedList(0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestNewRandomListValid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 1000} {
		l, err := NewRandomList(n, src(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	if _, err := NewRandomList(0, src(1)); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestRandomListIsActuallyShuffled(t *testing.T) {
	l, _ := NewRandomList(1000, src(3))
	inOrder := 0
	for i := 0; i < 999; i++ {
		if l.Succ[i] == int32(i+1) {
			inOrder++
		}
	}
	if inOrder > 50 {
		t.Errorf("%d/999 successors are identity — not shuffled", inOrder)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	l, _ := NewOrderedList(10)
	l.Succ[3] = 3 // self-loop
	if err := l.Validate(); err == nil {
		t.Error("self-loop should fail validation")
	}
	l, _ = NewOrderedList(10)
	l.Succ[3] = -1 // second tail
	if err := l.Validate(); err == nil {
		t.Error("broken chain should fail validation")
	}
	l, _ = NewOrderedList(10)
	l.Head = 5
	if err := l.Validate(); err == nil {
		t.Error("wrong head should fail validation")
	}
}

func TestWyllieMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 2, 5, 100, 4097} {
		l, _ := NewRandomList(n, src(uint64(n)*7))
		want, err := SequentialRanks(l)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Wyllie(l, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Wyllie rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestFISRankMatchesSequential(t *testing.T) {
	for _, n := range []int{2, 3, 10, 100, 10000} {
		l, _ := NewRandomList(n, src(uint64(n)*13))
		want, _ := SequentialRanks(l)
		got, stats, err := FISRank(l, src(uint64(n)+555))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: FIS rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
		if n >= 100 && stats.Iterations == 0 {
			t.Errorf("n=%d: no reduction iterations recorded", n)
		}
	}
}

func TestFISRankWithHybridPRNG(t *testing.T) {
	// The paper's actual configuration: the on-demand expander-walk
	// generator supplies the FIS bits.
	l, _ := NewRandomList(5000, src(77))
	want, _ := SequentialRanks(l)
	w, err := core.NewWalker(bitsource.Glibc(99), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := FISRank(l, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if stats.RandomsDrawn == 0 {
		t.Error("no randoms drawn")
	}
}

func TestFISReductionShrinksGeometrically(t *testing.T) {
	l, _ := NewRandomList(100000, src(5))
	_, stats, err := FISRank(l, src(6))
	if err != nil {
		t.Fatal(err)
	}
	// Interior removal probability is 1/8; the per-iteration
	// survival factor should be ≈ 7/8.
	for i := 1; i < len(stats.ActivePerIt); i++ {
		ratio := float64(stats.ActivePerIt[i]) / float64(stats.ActivePerIt[i-1])
		if ratio < 0.8 || ratio > 0.95 {
			t.Errorf("iteration %d survival ratio %.3f, want ≈ 0.875", i, ratio)
		}
	}
	// The on-demand count is the sum of active counts.
	var sum int64
	for _, a := range stats.ActivePerIt {
		sum += a
	}
	if stats.RandomsDrawn != sum {
		t.Errorf("randoms drawn %d != Σ active %d", stats.RandomsDrawn, sum)
	}
}

func TestHelmanJaJaMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 2, 50, 3000} {
		l, _ := NewRandomList(n, src(uint64(n)*31))
		want, _ := SequentialRanks(l)
		got, err := HelmanJaJa(l, 16, src(uint64(n)+1), 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: HJ rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestRankersAgreeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw)%500 + 2
		l, err := NewRandomList(n, src(seed))
		if err != nil {
			return false
		}
		seq, err := SequentialRanks(l)
		if err != nil {
			return false
		}
		fis, _, err := FISRank(l, src(seed^0xABCD))
		if err != nil {
			return false
		}
		hj, err := HelmanJaJa(l, 8, src(seed^0x1234), 2)
		if err != nil {
			return false
		}
		for i := range seq {
			if fis[i] != seq[i] || hj[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReduceTarget(t *testing.T) {
	if got := reduceTarget(1024); got != 102 {
		t.Errorf("reduceTarget(1024) = %d, want 102 (n/log₂n)", got)
	}
	if got := reduceTarget(2); got < 2 {
		t.Errorf("reduceTarget(2) = %d", got)
	}
}

func TestFigure7Shape(t *testing.T) {
	// Ours ≈ 40% faster than hybrid-glibc; pure-GPU-MT is worst.
	for _, n := range []int64{8_000_000, 32_000_000, 128_000_000} {
		ours, err := RankTimeSim(VariantHybridOurs, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		glibc, err := RankTimeSim(VariantHybridGlibc, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		mt, err := RankTimeSim(VariantPureGPUMT, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		improvement := 1 - ours.SimNs/glibc.SimNs
		if improvement < 0.25 || improvement > 0.60 {
			t.Errorf("N=%d: improvement over hybrid-glibc = %.0f%%, want ≈ 40%%", n, 100*improvement)
		}
		if mt.SimNs <= glibc.SimNs {
			t.Errorf("N=%d: pure-GPU-MT (%.1f ms) should be slowest (glibc %.1f ms)", n, mt.SimNs/1e6, glibc.SimNs/1e6)
		}
		// On demand generates strictly fewer numbers.
		if ours.Randoms >= glibc.Randoms {
			t.Errorf("N=%d: on-demand drew %d randoms ≥ pre-generated %d", n, ours.Randoms, glibc.Randoms)
		}
	}
}

func TestFigure7WithMeasuredStats(t *testing.T) {
	// Drive the simulator with REAL reduction statistics from a real
	// FIS run.
	l, _ := NewRandomList(200000, src(1))
	_, stats, err := FISRank(l, src(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RankTimeSim(VariantHybridOurs, int64(l.Len()), stats)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations < stats.Iterations {
		t.Errorf("sim iterations %d < measured %d", rep.Iterations, stats.Iterations)
	}
	if rep.SimNs <= 0 {
		t.Error("no simulated time")
	}
}

func TestRankTimeSimValidation(t *testing.T) {
	if _, err := RankTimeSim(VariantHybridOurs, 1, nil); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := RankTimeSim("bogus", 100, nil); err == nil {
		t.Error("unknown variant should fail")
	}
	if len(Variants()) != 3 {
		t.Error("want 3 variants")
	}
}

func TestCloneIsDeep(t *testing.T) {
	l, _ := NewOrderedList(4)
	c := l.Clone()
	c.Succ[0] = 3
	if l.Succ[0] == 3 {
		t.Error("clone shares storage")
	}
}
