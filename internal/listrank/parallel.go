package listrank

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/scan"
)

// FISRankParallel is the real multicore version of FISRank: the coin
// draws, the independent-set splice and the survivor compaction all
// run across worker goroutines, with the compaction done by the
// scan-based stream-compaction of internal/scan — the same primitive
// structure as the GPU implementation of the paper's reference [3].
//
// Parallel splices are race-free by the FIS property: a removed node
// u (b=1) has neighbours with b=0, so the cells written on its
// behalf (succ of its pred, pred and val of its succ) are never
// touched for another removed node in the same iteration.
//
// The output is deterministic for a fixed (seed factory, workers)
// pair: coins are drawn from per-worker sources over a static
// chunk-to-worker assignment. It equals SequentialRanks on every
// input (property-tested), though the coin sequence — and hence the
// iteration trace — differs from FISRank's single-stream one.
func FISRankParallel(l *List, workers int, newSrc func(worker int) rng.Source) ([]int64, *ReduceStats, error) {
	if newSrc == nil {
		return nil, nil, fmt.Errorf("listrank: nil source factory")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := l.Len()
	succ := append([]int32(nil), l.Succ...)
	pred := append([]int32(nil), l.Pred...)
	val := make([]int64, n)
	for i := range val {
		val[i] = 1
	}
	val[l.Head] = 0

	active := make([]int32, n)
	for i := range active {
		active[i] = int32(i)
	}
	bits := make([]byte, n)
	keep := make([]bool, n) // indexed like `active`
	stats := &ReduceStats{}

	srcs := make([]rng.Source, workers)
	brs := make([]*rng.BitReader, workers)
	for w := range srcs {
		srcs[w] = newSrc(w)
		brs[w] = rng.NewBitReader(srcs[w])
	}

	type chunkRemovals struct {
		removals []removal
	}

	target := int64(reduceTarget(n))
	var stack []removal
	for int64(len(active)) > target {
		stats.Iterations++
		stats.ActivePerIt = append(stats.ActivePerIt, int64(len(active)))
		cnt := len(active)
		if len(keep) < cnt {
			keep = make([]bool, cnt)
		}

		// Chunks are assigned statically: chunk c → worker c mod W,
		// and each worker walks its chunks in order, so each
		// worker's stream consumption is schedule-independent.
		chunk := (cnt + workers - 1) / workers
		if chunk < 1 {
			chunk = 1
		}
		nchunks := (cnt + chunk - 1) / chunk

		// Phase 1: coins (one on-demand number per survivor).
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				br := brs[w]
				for c := w; c < nchunks; c += workers {
					lo := c * chunk
					hi := lo + chunk
					if hi > cnt {
						hi = cnt
					}
					for _, u := range active[lo:hi] {
						bits[u] = byte(br.Bits(64) & 1)
					}
				}
			}(w)
		}
		wg.Wait()
		stats.RandomsDrawn += int64(cnt)

		// Phase 2a: independent-set decision — pure reads, no
		// mutation, so every node may inspect its neighbours freely.
		perChunk := make([]chunkRemovals, nchunks)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for c := w; c < nchunks; c += workers {
					lo := c * chunk
					hi := lo + chunk
					if hi > cnt {
						hi = cnt
					}
					for idx := lo; idx < hi; idx++ {
						u := active[idx]
						p, s := pred[u], succ[u]
						if p != -1 && s != -1 && bits[u] == 1 && bits[p] == 0 && bits[s] == 0 {
							perChunk[c].removals = append(perChunk[c].removals,
								removal{node: u, pred: p, val: val[u]})
							keep[idx] = false
						} else {
							keep[idx] = true
						}
					}
				}
			}(w)
		}
		wg.Wait()
		// Phase 2b: splice the removed nodes. The cells written for
		// one removal are never read or written for another (the FIS
		// property: a removed node's neighbours survive), so the
		// chunk lists splice concurrently without synchronisation.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for c := w; c < nchunks; c += workers {
					for _, rm := range perChunk[c].removals {
						s := succ[rm.node]
						val[s] += rm.val
						succ[rm.pred] = s
						pred[s] = rm.pred
					}
				}
			}(w)
		}
		wg.Wait()
		for c := range perChunk {
			stack = append(stack, perChunk[c].removals...)
			stats.Removed += int64(len(perChunk[c].removals))
		}

		// Phase 3: compact the survivors (scan-based).
		active = scan.Compact(active, keep[:cnt], workers)
	}

	// Phase II: rank the reduced list; Phase III: reinsert.
	ranks := make([]int64, n)
	r := int64(0)
	for cur := l.Head; cur != -1; cur = succ[cur] {
		r += val[cur]
		ranks[cur] = r
	}
	for i := len(stack) - 1; i >= 0; i-- {
		rm := stack[i]
		ranks[rm.node] = ranks[rm.pred] + rm.val
	}
	return ranks, stats, nil
}
