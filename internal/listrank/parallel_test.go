package listrank

import (
	"testing"
	"testing/quick"

	"repro/internal/baselines"
	"repro/internal/rng"
)

func workerSrc(seed uint64) func(int) rng.Source {
	return func(w int) rng.Source {
		return baselines.NewSplitMix64(baselines.Mix64(seed + uint64(w)))
	}
}

func TestFISRankParallelCorrect(t *testing.T) {
	for _, n := range []int{2, 100, 5000, 60000} {
		l, _ := NewRandomList(n, src(uint64(n)*3))
		want, err := SequentialRanks(l)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := FISRankParallel(l, 4, workerSrc(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: parallel rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
		if n >= 100 && stats.RandomsDrawn == 0 {
			t.Error("no randoms recorded")
		}
	}
}

func TestFISRankParallelDeterministic(t *testing.T) {
	l, _ := NewRandomList(30000, src(9))
	a, sa, err := FISRankParallel(l, 4, workerSrc(7))
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := FISRankParallel(l, 4, workerSrc(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel ranking not reproducible")
		}
	}
	if sa.Iterations != sb.Iterations || sa.RandomsDrawn != sb.RandomsDrawn {
		t.Error("stats not reproducible")
	}
}

func TestFISRankParallelAnyWorkerCountCorrect(t *testing.T) {
	l, _ := NewRandomList(20000, src(4))
	want, _ := SequentialRanks(l)
	for _, workers := range []int{1, 2, 3, 8, 0} {
		got, _, err := FISRankParallel(l, workers, workerSrc(5))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: rank[%d] wrong", workers, i)
			}
		}
	}
}

func TestFISRankParallelValidation(t *testing.T) {
	l, _ := NewOrderedList(10)
	if _, _, err := FISRankParallel(l, 2, nil); err == nil {
		t.Error("nil factory should fail")
	}
}

func TestFISRankParallelProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, wRaw uint8) bool {
		n := int(nRaw)%2000 + 2
		workers := int(wRaw)%6 + 1
		l, err := NewRandomList(n, src(seed))
		if err != nil {
			return false
		}
		want, err := SequentialRanks(l)
		if err != nil {
			return false
		}
		got, _, err := FISRankParallel(l, workers, workerSrc(seed^0xF00D))
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
