package listrank

import (
	"testing"
)

func TestFISRankOnDeviceCorrect(t *testing.T) {
	for _, n := range []int{100, 5000, 60000} {
		l, _ := NewRandomList(n, src(uint64(n)))
		want, err := SequentialRanks(l)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, simNs, err := FISRankOnDevice(l, src(uint64(n)+99))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: device rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
		if simNs <= 0 {
			t.Error("no simulated time booked")
		}
		if stats.RandomsDrawn == 0 || stats.Iterations == 0 {
			t.Errorf("stats empty: %+v", stats)
		}
	}
}

func TestFISRankOnDeviceMatchesPlainFIS(t *testing.T) {
	// Same feed → identical reduction decisions and identical
	// on-demand random counts as the plain CPU implementation.
	l, _ := NewRandomList(20000, src(8))
	r1, s1, err := FISRank(l, src(1234))
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, _, err := FISRankOnDevice(l, src(1234))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("ranks diverge at %d", i)
		}
	}
	if s1.RandomsDrawn != s2.RandomsDrawn || s1.Iterations != s2.Iterations {
		t.Errorf("stats diverge: %+v vs %+v", s1, s2)
	}
}

func TestFISRankOnDeviceTimeConsistentWithModel(t *testing.T) {
	// The booked simulated time must be in the same ballpark as the
	// closed-form RankTimeSim for the same measured reduction.
	l, _ := NewRandomList(100000, src(3))
	_, stats, simNs, err := FISRankOnDevice(l, src(4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RankTimeSim(VariantHybridOurs, int64(l.Len()), stats)
	if err != nil {
		t.Fatal(err)
	}
	ratio := simNs / rep.SimNs
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("device-run time %.2f ms vs model %.2f ms (ratio %.2f)",
			simNs/1e6, rep.SimNs/1e6, ratio)
	}
}
