package listrank

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Wyllie ranks the list by parallel pointer jumping: O(log n) rounds
// of rank[i] += rank[next[i]]; next[i] = next[next[i]], executed for
// real across worker goroutines. It is the classic (work-
// inefficient) baseline the paper's related work starts from.
func Wyllie(l *List, workers int) ([]int64, error) {
	n := l.Len()
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Rank from the tail: value 1 for every node with a successor,
	// 0 for the tail; pointer jumping accumulates distance to tail.
	rank := make([]int64, n)
	next := make([]int32, n)
	for i := 0; i < n; i++ {
		next[i] = l.Succ[i]
		if l.Succ[i] != -1 {
			rank[i] = 1
		}
	}
	newRank := make([]int64, n)
	newNext := make([]int32, n)
	parallel := func(f func(lo, hi int)) {
		if workers == 1 || n < 1024 {
			f(0, n)
			return
		}
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				f(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	for {
		var pending atomic.Int64
		parallel(func(lo, hi int) {
			live := int64(0)
			for i := lo; i < hi; i++ {
				if next[i] != -1 {
					newRank[i] = rank[i] + rank[next[i]]
					newNext[i] = next[next[i]]
					if newNext[i] != -1 {
						live++
					}
				} else {
					newRank[i] = rank[i]
					newNext[i] = -1
				}
			}
			pending.Add(live)
		})
		rank, newRank = newRank, rank
		next, newNext = newNext, next
		if pending.Load() == 0 {
			break
		}
	}
	// Convert distance-to-tail into distance-from-head.
	total := rank[l.Head]
	out := make([]int64, n)
	parallel(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = total - rank[i]
		}
	})
	return out, nil
}

// removal records one spliced-out node for Phase III reinsertion.
type removal struct {
	node, pred int32
	val        int64
}

// ReduceStats describes one FIS reduction run — the inputs to the
// Figure 7 timing model.
type ReduceStats struct {
	Iterations   int
	ActivePerIt  []int64 // list size at the start of each iteration
	RandomsDrawn int64   // numbers actually requested (on-demand count)
	Removed      int64
}

// FISRank ranks the list with the paper's three-phase algorithm:
//
//	Phase I  (Algorithm 3): repeatedly remove a fractional
//	         independent set — node u goes when b(u)=1 and both
//	         neighbours drew 0 — until ≤ n/log₂n nodes remain; each
//	         active node draws its bit on demand from src.
//	Phase II: rank the reduced list sequentially (the paper uses
//	         Helman–JáJá on the CPU; the reduced list has n/log n
//	         nodes, a vanishing fraction of the work).
//	Phase III: reinsert the removed nodes in reverse order.
//
// It returns the ranks and the reduction statistics.
func FISRank(l *List, src rng.Source) ([]int64, *ReduceStats, error) {
	n := l.Len()
	succ := append([]int32(nil), l.Succ...)
	pred := append([]int32(nil), l.Pred...)
	val := make([]int64, n) // distance from pred at splice time
	for i := range val {
		val[i] = 1
	}
	val[l.Head] = 0

	active := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		active = append(active, int32(i))
	}
	bits := make([]byte, n)
	stats := &ReduceStats{}
	var stack []removal

	target := int64(reduceTarget(n))
	br := rng.NewBitReader(src)
	for int64(len(active)) > target {
		stats.Iterations++
		stats.ActivePerIt = append(stats.ActivePerIt, int64(len(active)))
		// Each still-active node asks the generator for a number and
		// keeps one bit — the on-demand call of Algorithm 3 line 6.
		for _, u := range active {
			stats.RandomsDrawn++
			bits[u] = byte(br.Bits(64) & 1)
		}
		// Remove u when b(u)=1, b(pred)=0, b(succ)=0; ends are kept
		// (they lack a neighbour).
		next := active[:0]
		for _, u := range active {
			p, s := pred[u], succ[u]
			if p != -1 && s != -1 && bits[u] == 1 && bits[p] == 0 && bits[s] == 0 {
				stack = append(stack, removal{node: u, pred: p, val: val[u]})
				val[s] += val[u]
				succ[p] = s
				pred[s] = p
				stats.Removed++
				continue
			}
			next = append(next, u)
		}
		active = next
	}

	// Phase II: rank the reduced list by traversal.
	ranks := make([]int64, n)
	r := int64(0)
	for cur := l.Head; cur != -1; cur = succ[cur] {
		r += val[cur]
		ranks[cur] = r
	}
	// r walked head with val 0 first; normalise so head = 0.
	// (val[head] = 0, so ranks[head] == 0 already.)

	// Phase III: reinsert in reverse removal order.
	for i := len(stack) - 1; i >= 0; i-- {
		rm := stack[i]
		ranks[rm.node] = ranks[rm.pred] + rm.val
	}
	return ranks, stats, nil
}

// reduceTarget returns the Phase I stopping size n/log₂n.
func reduceTarget(n int) int {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	if lg < 1 {
		lg = 1
	}
	t := n / lg
	if t < 2 {
		t = 2
	}
	return t
}

// HelmanJaJa ranks the list with the Helman–JáJá sublist algorithm,
// executed for real across worker goroutines: s random splitters cut
// the list into sublists; each sublist is walked independently in
// parallel; the splitter chain is then ranked sequentially and the
// offsets broadcast. This is the Phase II algorithm of the paper's
// reference [3]; exported both for completeness and as a direct
// ranking alternative.
func HelmanJaJa(l *List, splitters int, src rng.Source, workers int) ([]int64, error) {
	n := l.Len()
	if splitters < 1 {
		splitters = 64
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	isHead := make([]bool, n)
	isHead[l.Head] = true
	heads := []int32{l.Head}
	for len(heads) < splitters+1 {
		c := int32(rng.Uint64n(src, uint64(n)))
		if !isHead[c] {
			isHead[c] = true
			heads = append(heads, c)
		}
		if len(heads) >= n {
			break
		}
	}
	// Walk each sublist until the next splitter (or the tail),
	// recording local ranks and the sublist's length and successor
	// splitter.
	local := make([]int64, n)
	sublen := make([]int64, len(heads))
	nextHead := make([]int32, len(heads))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for hi, h := range heads {
		wg.Add(1)
		sem <- struct{}{}
		go func(hi int, h int32) {
			defer wg.Done()
			defer func() { <-sem }()
			r := int64(0)
			cur := h
			//lint:ignore goleak bounded by list traversal: Succ chains are finite and acyclic by construction, and wg.Wait joins every worker
			for {
				local[cur] = r
				nxt := l.Succ[cur]
				if nxt == -1 {
					nextHead[hi] = -1
					sublen[hi] = r + 1
					return
				}
				if isHead[nxt] {
					nextHead[hi] = nxt
					sublen[hi] = r + 1
					return
				}
				cur = nxt
				r++
			}
		}(hi, h)
	}
	wg.Wait()
	// Rank the splitter chain sequentially.
	headIndex := make(map[int32]int, len(heads))
	for i, h := range heads {
		headIndex[h] = i
	}
	offset := make([]int64, len(heads))
	cur := l.Head
	off := int64(0)
	for cur != -1 {
		i, ok := headIndex[cur]
		if !ok {
			return nil, fmt.Errorf("listrank: splitter chain broken at %d", cur)
		}
		offset[i] = off
		off += sublen[i]
		cur = nextHead[i]
	}
	// Broadcast offsets.
	ranks := make([]int64, n)
	for hi, h := range heads {
		wg.Add(1)
		sem <- struct{}{}
		go func(hi int, h int32) {
			defer wg.Done()
			defer func() { <-sem }()
			cur := h
			//lint:ignore goleak bounded by list traversal: Succ chains are finite and acyclic by construction, and wg.Wait joins every worker
			for {
				ranks[cur] = offset[hi] + local[cur]
				nxt := l.Succ[cur]
				if nxt == -1 || isHead[nxt] {
					return
				}
				cur = nxt
			}
		}(hi, h)
	}
	wg.Wait()
	return ranks, nil
}
