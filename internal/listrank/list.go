// Package listrank implements the paper's first application: list
// ranking on the hybrid platform (Section V). It provides the linked
// list substrate, a sequential ranker (ground truth), Wyllie's
// pointer jumping, the fractional-independent-set (FIS) reduction of
// Algorithm 3 with on-demand randomness, Helman–JáJá style sublist
// ranking, and the Figure 7 timing model over the simulated
// platform.
package listrank

import (
	"fmt"

	"repro/internal/rng"
)

// List is a singly linked list of n nodes stored as arrays
// (structure-of-arrays, the GPU-friendly layout the paper uses).
// Node ids are 0..n-1; Succ[i] == -1 marks the tail and Pred[i] ==
// -1 the head.
type List struct {
	Succ []int32
	Pred []int32
	Head int32
}

// Len returns the number of nodes.
func (l *List) Len() int { return len(l.Succ) }

// NewRandomList builds a list of n nodes whose order is a uniform
// random permutation — the paper's hardest case ("random lists are
// the most difficult to rank due to their irregular memory access
// patterns").
func NewRandomList(n int, src rng.Source) (*List, error) {
	if n < 1 {
		return nil, fmt.Errorf("listrank: n = %d < 1", n)
	}
	if n > 1<<31-1 {
		return nil, fmt.Errorf("listrank: n = %d exceeds int32 node ids", n)
	}
	// Random permutation order[pos] = node at position pos.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(rng.Uint64n(src, uint64(i+1)))
		order[i], order[j] = order[j], order[i]
	}
	l := &List{
		Succ: make([]int32, n),
		Pred: make([]int32, n),
		Head: order[0],
	}
	for pos := 0; pos < n; pos++ {
		node := order[pos]
		if pos+1 < n {
			l.Succ[node] = order[pos+1]
		} else {
			l.Succ[node] = -1
		}
		if pos > 0 {
			l.Pred[node] = order[pos-1]
		} else {
			l.Pred[node] = -1
		}
	}
	return l, nil
}

// NewOrderedList builds the identity list 0 → 1 → … → n−1, useful in
// tests.
func NewOrderedList(n int) (*List, error) {
	if n < 1 {
		return nil, fmt.Errorf("listrank: n = %d < 1", n)
	}
	l := &List{
		Succ: make([]int32, n),
		Pred: make([]int32, n),
		Head: 0,
	}
	for i := 0; i < n; i++ {
		l.Succ[i] = int32(i + 1)
		l.Pred[i] = int32(i - 1)
	}
	l.Succ[n-1] = -1
	return l, nil
}

// SequentialRanks walks the list from the head and returns each
// node's distance from the head (head = 0) — the ground truth.
func SequentialRanks(l *List) ([]int64, error) {
	n := l.Len()
	ranks := make([]int64, n)
	visited := 0
	for cur, r := l.Head, int64(0); cur != -1; cur, r = l.Succ[cur], r+1 {
		ranks[cur] = r
		visited++
		if visited > n {
			return nil, fmt.Errorf("listrank: cycle detected")
		}
	}
	if visited != n {
		return nil, fmt.Errorf("listrank: list is broken, visited %d of %d", visited, n)
	}
	return ranks, nil
}

// Validate checks structural consistency of the list.
func (l *List) Validate() error {
	n := l.Len()
	if len(l.Pred) != n {
		return fmt.Errorf("listrank: pred/succ length mismatch")
	}
	if l.Head < 0 || int(l.Head) >= n {
		return fmt.Errorf("listrank: head %d out of range", l.Head)
	}
	if l.Pred[l.Head] != -1 {
		return fmt.Errorf("listrank: head has a predecessor")
	}
	tails := 0
	for i := 0; i < n; i++ {
		s := l.Succ[i]
		if s == -1 {
			tails++
			continue
		}
		if s < 0 || int(s) >= n {
			return fmt.Errorf("listrank: node %d has bad successor %d", i, s)
		}
		if l.Pred[s] != int32(i) {
			return fmt.Errorf("listrank: pred/succ of %d inconsistent", i)
		}
	}
	if tails != 1 {
		return fmt.Errorf("listrank: %d tails, want 1", tails)
	}
	_, err := SequentialRanks(l)
	return err
}

// Clone deep-copies the list.
func (l *List) Clone() *List {
	return &List{
		Succ: append([]int32(nil), l.Succ...),
		Pred: append([]int32(nil), l.Pred...),
		Head: l.Head,
	}
}
