package wordbytes

import (
	"encoding/binary"
	"testing"
)

// The views are optional (nil on big-endian hosts), but when present
// they must agree exactly with the portable little-endian encoding.

func TestWordsViewMatchesLittleEndian(t *testing.T) {
	b := make([]byte, 64)
	w := Words(b)
	if w == nil {
		t.Skip("no zero-copy view on this architecture")
	}
	if len(w) != 8 {
		t.Fatalf("len = %d, want 8", len(w))
	}
	for i := range w {
		w[i] = 0x0102030405060708 * uint64(i+1)
	}
	for i := range w {
		if got := binary.LittleEndian.Uint64(b[8*i:]); got != w[i] {
			t.Fatalf("word %d: view %#x, bytes %#x", i, w[i], got)
		}
	}
}

func TestBytesViewMatchesLittleEndian(t *testing.T) {
	w := []uint64{0xDEADBEEFCAFEF00D, 1, 0}
	b := Bytes(w)
	if b == nil {
		t.Skip("no zero-copy view on this architecture")
	}
	if len(b) != 24 {
		t.Fatalf("len = %d, want 24", len(b))
	}
	want := make([]byte, 24)
	for i, v := range w {
		binary.LittleEndian.PutUint64(want[8*i:], v)
	}
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("byte %d: %#x != %#x", i, b[i], want[i])
		}
	}
	// The view is storage, not a copy: writes through it land in w.
	b[0] = 0xFF
	if w[0]&0xFF != 0xFF {
		t.Fatal("Bytes view is not aliased to the words")
	}
}

func TestWordsRejectsBadShapes(t *testing.T) {
	if Words(nil) != nil {
		t.Error("Words(nil) != nil")
	}
	if Words(make([]byte, 12)) != nil {
		t.Error("Words accepted a non-multiple-of-8 length")
	}
	// Unaligned view over an aligned backing array.
	backing := make([]byte, 24)
	if v := Words(backing[1:17]); v != nil {
		t.Error("Words accepted an unaligned buffer")
	}
}

func TestBytesEmpty(t *testing.T) {
	if Bytes(nil) != nil {
		t.Error("Bytes(nil) != nil")
	}
	if Bytes([]uint64{}) != nil {
		t.Error("Bytes(empty) != nil")
	}
}
