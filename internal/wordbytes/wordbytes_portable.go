//go:build !(386 || amd64 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm)

package wordbytes

// Big-endian (or unknown-endian) hosts: a reinterpreted view would
// expose big-endian bytes, which is not the wire format. Report the
// view unavailable so callers use the portable encode-and-copy path.

func words(b []byte) []uint64 { return nil }

func bytes(w []uint64) []byte { return nil }
