//go:build 386 || amd64 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm

package wordbytes

import "unsafe"

// On these architectures uint64s are stored little-endian, so a
// reinterpreted view is exactly the wire encoding.

func words(b []byte) []uint64 {
	if len(b) == 0 || len(b)%8 != 0 {
		return nil
	}
	p := unsafe.SliceData(b)
	if uintptr(unsafe.Pointer(p))%8 != 0 {
		// *uint64 views must be 8-byte aligned; unaligned buffers take
		// the copying fallback.
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(p)), len(b)/8)
}

func bytes(w []uint64) []byte {
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(w))), len(w)*8)
}
