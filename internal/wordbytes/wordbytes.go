// Package wordbytes reinterprets word slices as byte slices (and
// back) without copying, on architectures where the reinterpretation
// is the identity the wire format wants.
//
// The serving stack's wire format is little-endian uint64 words. On a
// little-endian host a []uint64's memory already *is* that byte
// stream, so the hot serving paths can fill a caller's byte buffer
// directly through a word-typed view and skip the encode-and-copy
// step entirely. On big-endian hosts (or for unaligned buffers) the
// conversions report failure by returning nil and callers fall back
// to the portable binary.LittleEndian copy — output bytes are
// identical either way, only the copy count differs.
package wordbytes

// Words returns a []uint64 view over b's storage, or nil when the
// view is unavailable: b is empty, not a multiple of 8 bytes, not
// 8-byte aligned, or the host is big-endian. Writing words through
// the view writes their little-endian bytes into b in place.
func Words(b []byte) []uint64 { return words(b) }

// Bytes returns a []byte view over w's storage, or nil when the view
// is unavailable (empty slice or big-endian host). The bytes are the
// little-endian encoding of w's words.
func Bytes(w []uint64) []byte { return bytes(w) }
