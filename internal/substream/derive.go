package substream

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// DeriveSeed maps (root seed, canonical key) to the walker seed for
// that tenant's stream. The derivation is SHA-256 over the
// little-endian root seed followed by the key bytes, truncated to the
// first 8 bytes: a full-width cryptographic hash, so nearby keys
// ("user-0001"/"user-0002", single-bit flips, shared prefixes) land
// on unrelated seeds and the per-worker affine derivation used inside
// Parallel/Pool cannot be aliased by an adversarially chosen key.
// The registry additionally audits for truncation collisions at
// stream-creation time (see CollisionError) so a collision can never
// silently hand two tenants the same stream.
//
// Changing this function changes every tenant's stream; the golden
// vectors in golden_test.go exist to make that impossible to do
// silently.
func DeriveSeed(root uint64, key string) uint64 {
	h := sha256.New()
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], root)
	h.Write(b8[:])
	h.Write([]byte(key))
	sum := h.Sum(nil)
	return binary.LittleEndian.Uint64(sum[:8])
}

// CollisionError reports two distinct canonical keys whose derived
// seeds collide under one root seed. With 64-bit truncation the
// birthday bound makes this astronomically unlikely at realistic
// tenant counts (~5e-20 at a million tenants), but the registry
// refuses the second key rather than aliasing two tenants onto one
// walk — the one failure safe-partitioning cannot tolerate.
type CollisionError struct {
	Key      string // the key being created
	Existing string // the key already holding the seed
	Seed     uint64
}

func (e *CollisionError) Error() string {
	return fmt.Sprintf("substream: derived seed %#016x for key %q collides with existing key %q",
		e.Seed, e.Key, e.Existing)
}
