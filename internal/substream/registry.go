package substream

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	hybridprng "repro"
)

// DefaultMaxResident caps resident (live-generator) tenants when
// Config.MaxResident is zero. Each resident tenant owns one walker
// (~a few hundred bytes of walk state plus feed state), so the
// default comfortably serves a large key set while bounding memory.
const DefaultMaxResident = 1024

// Config configures a Registry. The derivation parameters (RootSeed,
// Feed, WalkLen, InitWalkLen, HealthHMin) define the tenant streams
// and are captured in the state blob; the runtime knobs (MaxResident,
// RatePerSec, Burst, Now) shape serving behaviour and are NOT
// persisted — a restored node applies its own flags.
type Config struct {
	RootSeed    uint64  // root of the per-key derivation
	Feed        string  // feed generator name; "" means hybridprng.FeedGlibc
	WalkLen     int     // per-draw walk length; 0 means the package default
	InitWalkLen int     // Algorithm 1 init walk length; 0 means the package default
	HealthHMin  float64 // SP 800-90B floor per tenant stream; 0 disables

	MaxResident int     // LRU cap on resident streams; 0 means DefaultMaxResident
	RatePerSec  float64 // per-tenant token-bucket refill, in words/sec; 0 means unlimited
	Burst       float64 // per-tenant bucket capacity in words; 0 means max(RatePerSec, 1)

	// Now is the clock the token buckets read. Injected so
	// rate-limit behaviour is testable with a fake clock, mirroring
	// Pool.WithClock.
	Now func() time.Time
}

// RateLimitError reports a draw rejected by a tenant's token bucket.
// RetryAfter is how long the bucket needs to refill enough for the
// rejected draw; the serving layer maps it to 429 + Retry-After.
type RateLimitError struct {
	Key        string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("substream: tenant %q rate limited; retry after %s", e.Key, e.RetryAfter)
}

// tenant is one keyed stream. A resident tenant holds a live
// generator; an evicted tenant's state lives in Registry.parked as a
// marshalled blob until the key is drawn again.
type tenant struct {
	key  string // canonical form; immutable
	seed uint64 // DeriveSeed(root, key); immutable

	elem *list.Element // position in the LRU; guarded by Registry.mu

	mu      sync.Mutex
	gen     *hybridprng.Generator // guarded by mu
	evicted bool                  // set at eviction; draws must re-resolve; guarded by mu
	tokens  float64               // token bucket level, in words; guarded by mu
	last    time.Time             // last bucket refill instant; guarded by mu

	draws atomic.Uint64 // words served via u64 draws
	bytes atomic.Uint64 // bytes served via byte draws
	sheds atomic.Uint64 // draws rejected by the rate limit
}

// parked is an evicted tenant: the exact-resume generator blob plus
// the meters and bucket level, so eviction is invisible to both the
// stream and the accounting.
type parked struct {
	blob   []byte
	draws  uint64
	bytes  uint64
	sheds  uint64
	tokens float64
}

// Registry maps canonical tenant keys to independent walker streams.
// Streams are created lazily on first draw (full Algorithm 1 init),
// capped by an LRU over resident generators — evicted tenants park
// their exact-resume blob and resume bitwise on the next draw — and
// individually checkpointed by MarshalBinary. Safe for concurrent
// use.
type Registry struct {
	cfg   Config
	now   func() time.Time
	burst float64 // resolved bucket capacity in words

	mu        sync.Mutex         //lint:lockorder before tenant.mu resolution and LRU eviction take the registry lock first, then park each tenant under its own; draws that find their tenant evicted drop tenant.mu before re-resolving
	resident  map[string]*tenant // guarded by mu
	parked    map[string]*parked // guarded by mu
	lru       *list.List         // resident tenants, most recent at front; guarded by mu
	seeds     map[uint64]string  // derived-seed collision audit; guarded by mu
	evictions uint64             // guarded by mu
}

// New builds an empty registry. The zero Config is valid: glibc
// feed, package-default walk lengths, DefaultMaxResident streams, no
// rate limit, wall clock.
func New(cfg Config) (*Registry, error) {
	switch cfg.Feed {
	case "", hybridprng.FeedGlibc, hybridprng.FeedANSIC, hybridprng.FeedSplitMix:
	default:
		return nil, fmt.Errorf("substream: unknown feed %q", cfg.Feed)
	}
	if cfg.Feed == "" {
		cfg.Feed = hybridprng.FeedGlibc
	}
	if cfg.MaxResident <= 0 {
		cfg.MaxResident = DefaultMaxResident
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.RatePerSec
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	r := &Registry{
		cfg:      cfg,
		now:      cfg.Now,
		burst:    cfg.Burst,
		resident: make(map[string]*tenant),
		parked:   make(map[string]*parked),
		lru:      list.New(),
		seeds:    make(map[uint64]string),
	}
	if r.now == nil {
		r.now = time.Now //lint:wallclock default when Config.Now was not injected; Now IS the injection point
	}
	return r, nil
}

// Restore builds a registry from a state blob produced by
// MarshalBinary. The derivation parameters come from the blob (they
// define the streams being resumed); the runtime knobs — MaxResident,
// RatePerSec, Burst, Now — come from cfg.
func Restore(blob []byte, cfg Config) (*Registry, error) {
	r, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := r.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return r, nil
}

// Uint64 draws the tenant's next 64-bit value.
func (r *Registry) Uint64(key string) (uint64, error) {
	var buf [1]uint64
	if err := r.Fill(key, buf[:]); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// Fill fills dst from the tenant's stream. On any error — bad key,
// rate limit, derivation collision — dst is zeroed, the same
// contract as Pool.Fill: stale buffer contents must never be
// consumable as randomness. Each word costs one token.
func (r *Registry) Fill(key string, dst []uint64) error {
	t, err := r.tenant(key)
	if err != nil {
		zeroWords(dst)
		return err
	}
	for {
		t.mu.Lock()
		if t.evicted {
			// Evicted between lookup and lock: the generator here is
			// stale (its state was parked). Re-resolve, which unparks.
			t.mu.Unlock()
			t, err = r.tenant(key)
			if err != nil {
				zeroWords(dst)
				return err
			}
			continue
		}
		if err := t.takeLocked(r, len(dst)); err != nil {
			t.mu.Unlock()
			zeroWords(dst)
			return err
		}
		t.gen.Fill(dst)
		t.mu.Unlock()
		t.draws.Add(uint64(len(dst)))
		return nil
	}
}

// FillBytes fills b from the tenant's stream, little-endian word by
// word with a partial final word for ragged lengths — the same
// layout Generator.Read and the /bytes endpoint use. On any error b
// is zeroed. Each (possibly partial) word costs one token.
func (r *Registry) FillBytes(key string, b []byte) error {
	t, err := r.tenant(key)
	if err != nil {
		zeroBytes(b)
		return err
	}
	words := (len(b) + 7) / 8
	for {
		t.mu.Lock()
		if t.evicted {
			t.mu.Unlock()
			t, err = r.tenant(key)
			if err != nil {
				zeroBytes(b)
				return err
			}
			continue
		}
		if err := t.takeLocked(r, words); err != nil {
			t.mu.Unlock()
			zeroBytes(b)
			return err
		}
		i := 0
		for ; i+8 <= len(b); i += 8 {
			v := t.gen.Uint64()
			b[i] = byte(v)
			b[i+1] = byte(v >> 8)
			b[i+2] = byte(v >> 16)
			b[i+3] = byte(v >> 24)
			b[i+4] = byte(v >> 32)
			b[i+5] = byte(v >> 40)
			b[i+6] = byte(v >> 48)
			b[i+7] = byte(v >> 56)
		}
		if i < len(b) {
			v := t.gen.Uint64()
			for ; i < len(b); i++ {
				b[i] = byte(v)
				v >>= 8
			}
		}
		t.mu.Unlock()
		t.bytes.Add(uint64(len(b)))
		return nil
	}
}

// takeLocked charges words tokens from the bucket, refilling it from
// the injected clock first. Caller holds t.mu.
func (t *tenant) takeLocked(r *Registry, words int) error {
	if r.cfg.RatePerSec <= 0 {
		return nil
	}
	now := r.now()
	if elapsed := now.Sub(t.last).Seconds(); elapsed > 0 {
		t.tokens += elapsed * r.cfg.RatePerSec
		if t.tokens > r.burst {
			t.tokens = r.burst
		}
	}
	t.last = now
	need := float64(words)
	if t.tokens >= need {
		t.tokens -= need
		return nil
	}
	wait := time.Duration((need - t.tokens) / r.cfg.RatePerSec * float64(time.Second))
	t.sheds.Add(1)
	return &RateLimitError{Key: t.key, RetryAfter: wait}
}

// tenant resolves key to its resident tenant: canonicalize, then
// look up / unpark / create, evicting the LRU tail past the resident
// cap. New keys pay the full Algorithm 1 init walk; unparked keys
// restore their exact walk state, so eviction never perturbs a
// stream.
func (r *Registry) tenant(key string) (*tenant, error) {
	k, err := Canonical(key)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.resident[k]; ok {
		r.lru.MoveToFront(t.elem)
		return t, nil
	}
	t, err := r.admitLocked(k)
	if err != nil {
		return nil, err
	}
	for r.lru.Len() > r.cfg.MaxResident {
		r.evictTailLocked()
	}
	return t, nil
}

// admitLocked creates or unparks the tenant for canonical key k and
// makes it resident. Caller holds r.mu.
func (r *Registry) admitLocked(k string) (*tenant, error) {
	seed := DeriveSeed(r.cfg.RootSeed, k)
	if prev, taken := r.seeds[seed]; taken && prev != k {
		return nil, &CollisionError{Key: k, Existing: prev, Seed: seed}
	}
	t := &tenant{key: k, seed: seed, tokens: r.burst}
	if p, ok := r.parked[k]; ok {
		g := new(hybridprng.Generator)
		if err := g.UnmarshalBinary(p.blob); err != nil {
			return nil, fmt.Errorf("substream: unparking tenant %q: %w", k, err)
		}
		t.gen = g
		t.tokens = p.tokens
		t.draws.Store(p.draws)
		t.bytes.Store(p.bytes)
		t.sheds.Store(p.sheds)
		delete(r.parked, k)
	} else {
		g, err := hybridprng.New(r.genOptions(seed)...)
		if err != nil {
			return nil, fmt.Errorf("substream: creating tenant %q: %w", k, err)
		}
		t.gen = g
	}
	r.seeds[seed] = k
	r.resident[k] = t
	t.elem = r.lru.PushFront(t)
	return t, nil
}

// genOptions is the option set every tenant generator is built with,
// so creation and the golden/control paths in tests cannot drift.
func (r *Registry) genOptions(seed uint64) []hybridprng.Option {
	opts := []hybridprng.Option{
		hybridprng.WithSeed(seed),
		hybridprng.WithFeed(r.cfg.Feed),
	}
	if r.cfg.WalkLen > 0 {
		opts = append(opts, hybridprng.WithWalkLength(r.cfg.WalkLen))
	}
	if r.cfg.InitWalkLen > 0 {
		opts = append(opts, hybridprng.WithInitWalkLength(r.cfg.InitWalkLen))
	}
	if r.cfg.HealthHMin > 0 {
		opts = append(opts, hybridprng.WithHealthMonitoring(r.cfg.HealthHMin))
	}
	return opts
}

// evictTailLocked parks the least-recently-used tenant. Caller holds
// r.mu; acquires the victim's mu (lock order: Registry.mu then
// tenant.mu, everywhere), so an in-flight draw on the victim
// completes before its state is captured.
func (r *Registry) evictTailLocked() {
	back := r.lru.Back()
	if back == nil {
		return
	}
	t := back.Value.(*tenant)
	t.mu.Lock()
	blob, err := t.gen.MarshalBinary()
	if err != nil {
		// Marshal of a live generator cannot fail; if it somehow
		// does, keep the tenant resident rather than lose its stream.
		t.mu.Unlock()
		r.lru.MoveToFront(back)
		return
	}
	t.evicted = true
	tokens := t.tokens
	t.mu.Unlock()
	r.parked[t.key] = &parked{
		blob:   blob,
		draws:  t.draws.Load(),
		bytes:  t.bytes.Load(),
		sheds:  t.sheds.Load(),
		tokens: tokens,
	}
	r.lru.Remove(back)
	delete(r.resident, t.key)
	r.evictions++
}

// TenantStats is one tenant's meter snapshot.
type TenantStats struct {
	Key      string `json:"key"`
	Resident bool   `json:"resident"`
	Draws    uint64 `json:"draws"` // words served via u64 draws
	Bytes    uint64 `json:"bytes"` // bytes served via byte draws
	Sheds    uint64 `json:"sheds"` // rate-limited rejections
}

// Stats is a point-in-time snapshot of the registry.
type Stats struct {
	Tenants   int           `json:"tenants"`  // resident + parked
	Resident  int           `json:"resident"` // live generators
	Evictions uint64        `json:"evictions"`
	PerTenant []TenantStats `json:"per_tenant"`
}

// Stats reports per-tenant meters and registry occupancy, sorted
// stably by key for deterministic /metrics output.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Resident:  len(r.resident),
		Tenants:   len(r.resident) + len(r.parked),
		Evictions: r.evictions,
		PerTenant: make([]TenantStats, 0, len(r.resident)+len(r.parked)),
	}
	for _, k := range r.sortedKeysLocked() {
		if t, ok := r.resident[k]; ok {
			s.PerTenant = append(s.PerTenant, TenantStats{
				Key: k, Resident: true,
				Draws: t.draws.Load(), Bytes: t.bytes.Load(), Sheds: t.sheds.Load(),
			})
			continue
		}
		p := r.parked[k]
		s.PerTenant = append(s.PerTenant, TenantStats{
			Key: k, Draws: p.draws, Bytes: p.bytes, Sheds: p.sheds,
		})
	}
	return s
}

// sortedKeysLocked returns every tenant key (resident and parked) in
// sorted order. Caller holds r.mu.
func (r *Registry) sortedKeysLocked() []string {
	keys := make([]string, 0, len(r.resident)+len(r.parked))
	for k := range r.resident {
		keys = append(keys, k)
	}
	for k := range r.parked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func zeroWords(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
}

func zeroBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
