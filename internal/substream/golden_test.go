package substream

import (
	"testing"

	hybridprng "repro"
)

// goldenRootSeed matches the root package's golden seed so the two
// vector sets document the same configuration point.
const goldenRootSeed = 12345

// goldenKeys pins the first 16 outputs of 8 fixed keys under root
// seed 12345 with the default configuration (glibc feed, paper walk
// lengths). These vectors define the keyed derivation: any change to
// Canonical, DeriveSeed, the init walk or the walk itself shows up
// here as a hard failure instead of silently re-keying every tenant.
var goldenKeys = map[string][16]uint64{
	"alice": {
		0x03f22800794dedcb, 0x319ac091b0b545a0, 0x0669979cd58d0717, 0x7f455e7dd41b9833,
		0xa5ee82e591c5136b, 0x40680857d80defd0, 0x1ec33a95ffe88f3e, 0x3f60794812dff9e4,
		0x1eb39c80c7da77ef, 0x110cbdf85f5f3dfa, 0xbf222964c2aadb76, 0x10953c2e60017c9d,
		0x27878af4c8f02dc7, 0x0f8c0a3cfb70ee4b, 0xaaf23739be0dd95b, 0x256a407617a0b633,
	},
	"bob": {
		0xd471aee684274def, 0x9b1f8751dc0c465e, 0x72cdc5fc37237d59, 0x6d84bf74dcb82239,
		0x54877461c693820a, 0xf70a0a81cb6318f8, 0x82598806a0ef5d98, 0x2f466e5770172dc9,
		0xaa6a8acbebf362a5, 0x5f36bc6ef4ce4020, 0x2b7ddd51edffc469, 0xdeb93bb1623b20d1,
		0xd371c614fd8ccb8b, 0x4c81c4282f59cd91, 0x31823fd9e619a81c, 0x3c4b872fa8256e9f,
	},
	"user-0001": {
		0xbe61aea60d7ca805, 0xdb40033dc6a88122, 0x9ddf787564ebecc9, 0xc819d36ce17144c1,
		0x2a6c42e7e7a84da6, 0xa9305755a405895d, 0xa7fda454dfcff0ac, 0x4fc902817d3a6e32,
		0x24bc0d43a9ef1464, 0x4aa010f4c55a17c6, 0x47f58cf550cb8d49, 0x205de215172726ad,
		0xdcab2317a92f1fc6, 0xbc8ec335caf8cf60, 0xdd7700a84d990a6c, 0x7c0eb7457ac49d6b,
	},
	"user-0002": {
		0xaa165f670e7e2654, 0xa1a80e3dd7201f39, 0xc7e6a9f7c59ce612, 0xf87150ceefa37821,
		0xcd242c77b0fac8ea, 0x0c1ce787a070a33a, 0xee5e8ff37b401b14, 0xb037d1a72af92081,
		0x5d8182b5a6bee682, 0x0b06753bacb297cd, 0xf55ac4281be47103, 0x6d57d876604d5a51,
		0xb23bfe0f7a86378c, 0xaac0a6c2632d25fa, 0xa35d81b667d9d52c, 0xfe162ca8fdd58f01,
	},
	"tenant/eu-west-1": {
		0x7451022ff08bb880, 0x121d56500fb3abfe, 0x622076c625c7dd6d, 0x1fdb2f90f0281b93,
		0xe528ffe555b2384b, 0x16fcad1e4f419d6e, 0x7c42f31601b307ed, 0xd15c25fd5644adf7,
		0xb901652e27d32477, 0x70331357f5cdd83b, 0x6a3992b2e44bcceb, 0x49a5afbe680f62ee,
		0x317e4099f050cd68, 0x14adbfacedead914, 0xd44d594642613223, 0xdb3011e0b98d08cb,
	},
	"tenant/eu-west-2": {
		0x74f5c2b41c6cefb6, 0x88180bc51d1d728f, 0x0a87a37919770c09, 0xcaaccc74477e4466,
		0x183e44666baeb0d8, 0x63ea9a5fff08f520, 0x9a91e26d9e7d4da1, 0x479a07b512c76373,
		0x50e58fdd52ab05b3, 0x25591aa97ba7ce8c, 0x72a690ea1c3c3bed, 0xd325156856695aef,
		0x2108538ea9f21e04, 0xdf6d313d494dad68, 0x5f69b6d01a38b7ac, 0xdd36d727a15412b7,
	},
	"τ-κλειδί": {
		0x9614cec90428baca, 0x49d924e7f4da2253, 0x0877d3de5b07c5e7, 0x9afa996a9efa9423,
		0x6f5c84ffa3d72b36, 0x9185257b9a4d1003, 0x99a52662d2a06015, 0xc210a9611f700f85,
		0x9e670be3b328b399, 0xf0e99139b0d4b8c6, 0xb75c7d4961855b3b, 0x1c4cb734b19b2a1d,
		0xc7180db66f69c6fc, 0x97348ce6e3b1bdf9, 0x0f3eb20b75db865e, 0x0af29c9083df3dfc,
	},
	"z": {
		0x5598fc13773aad48, 0x9dbdbe49231fce85, 0x63fe7d07560e9536, 0x6d1e198d759b201d,
		0x6e7d43e574ca3c97, 0x9ed0ea0f7a0d3b69, 0x1095cc0f1609adba, 0x9fd4d5c958c08746,
		0x731272ee5a6d794e, 0x9dc6b85a8b08d578, 0xe4e51ace9650b144, 0x8654fb2548e27bec,
		0xcb1e2061caa33274, 0x0a3e0b640bab7fbc, 0x5a217068b3de344b, 0x517e260fa5164625,
	},
}

func TestGoldenSubstreams(t *testing.T) {
	r, err := New(Config{RootSeed: goldenRootSeed})
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range goldenKeys {
		for i, w := range want {
			got, err := r.Uint64(key)
			if err != nil {
				t.Fatalf("key %q draw %d: %v", key, i, err)
			}
			if got != w {
				t.Fatalf("key %q output %d = %#016x, want %#016x", key, i, got, w)
			}
		}
	}
}

// TestGoldenMatchesDirectDerivation pins the equivalence the whole
// design rests on: the registry path (canonicalize, derive, full
// init walk) produces exactly the stream of a bare Generator built
// with the derived seed. If the registry ever inserts hidden state
// between derivation and the walk, per-tenant reproducibility — the
// "rerun my simulation" use case — quietly dies; this test makes it
// loud.
func TestGoldenMatchesDirectDerivation(t *testing.T) {
	for key, want := range goldenKeys {
		g, err := hybridprng.New(hybridprng.WithSeed(DeriveSeed(goldenRootSeed, key)))
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range want {
			if got := g.Uint64(); got != w {
				t.Fatalf("key %q direct output %d = %#016x, want %#016x", key, i, got, w)
			}
		}
	}
}
