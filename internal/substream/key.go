// Package substream derives per-tenant walker streams from string
// keys. Each key owns one independent expander walk — derived from
// the registry root seed and the canonicalized key through a
// collision-audited hash, initialised with the full Algorithm 1 init
// walk — so tenants get reproducible, statistically independent
// streams without pre-partitioning the seed space by hand. This is
// the safe-partitioning discipline Shoverand formalises: no two
// tenants may alias, and every stream must be individually
// recoverable, which the registry state blob (state.go) makes
// durable across restarts and drains.
package substream

import (
	"fmt"
	"unicode/utf8"
)

// MaxKeyBytes bounds a canonical key. 128 bytes comfortably holds a
// UUID, an email address or a session token while keeping the
// registry blob and the per-request canonicalization cost small.
const MaxKeyBytes = 128

// KeyError reports a key rejected by Canonical. It is a typed error
// so the serving layer can map it to a 400 instead of a 500.
type KeyError struct {
	Key    string // the offending key, as submitted
	Reason string
}

func (e *KeyError) Error() string {
	return fmt.Sprintf("substream: invalid key %q: %s", e.Key, e.Reason)
}

// Canonical normalises a tenant key and validates it. Leading and
// trailing ASCII spaces and tabs are stripped — transport layers
// (headers, query strings, config files) routinely add them, and two
// spellings of the same tenant must never derive two streams. After
// trimming, the key must be non-empty, at most MaxKeyBytes bytes,
// valid UTF-8 and free of control characters; anything else is a
// *KeyError. Canonical is idempotent: Canonical(Canonical(k))
// returns Canonical(k).
func Canonical(key string) (string, error) {
	start, end := 0, len(key)
	for start < end && (key[start] == ' ' || key[start] == '\t') {
		start++
	}
	for end > start && (key[end-1] == ' ' || key[end-1] == '\t') {
		end--
	}
	k := key[start:end]
	if len(k) == 0 {
		return "", &KeyError{Key: key, Reason: "empty after trimming"}
	}
	if len(k) > MaxKeyBytes {
		return "", &KeyError{Key: key, Reason: fmt.Sprintf("%d bytes exceeds the %d-byte limit", len(k), MaxKeyBytes)}
	}
	if !utf8.ValidString(k) {
		return "", &KeyError{Key: key, Reason: "not valid UTF-8"}
	}
	for _, r := range k {
		if r < 0x20 || r == 0x7f {
			return "", &KeyError{Key: key, Reason: fmt.Sprintf("control character %q", r)}
		}
	}
	return k, nil
}
