package substream

import (
	"errors"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzCanonical is the key-hygiene contract under hostile input:
// Canonical never panics, rejections are always typed *KeyError,
// accepted keys are canonical fixed points (so two spellings that
// canonicalize equal can never derive two streams), and every
// accepted key satisfies the documented shape (non-empty, bounded,
// valid UTF-8, control-free).
func FuzzCanonical(f *testing.F) {
	f.Add("alice")
	f.Add("  alice\t")
	f.Add("")
	f.Add("   ")
	f.Add("user-0001")
	f.Add("tenant/eu-west-1")
	f.Add("τ-κλειδί")
	f.Add("bad\x00key")
	f.Add("\x7f")
	f.Add(string([]byte{0xff, 0xfe, 0xfd}))
	f.Add(strings.Repeat("k", MaxKeyBytes))
	f.Add(strings.Repeat("k", MaxKeyBytes+1))
	f.Add(" \t mixed \x01 junk \t ")
	f.Fuzz(func(t *testing.T, key string) {
		canon, err := Canonical(key)
		if err != nil {
			var ke *KeyError
			if !errors.As(err, &ke) {
				t.Fatalf("Canonical(%q) returned untyped error %v", key, err)
			}
			if canon != "" {
				t.Fatalf("Canonical(%q) returned %q alongside an error", key, canon)
			}
			return
		}
		if canon == "" || len(canon) > MaxKeyBytes {
			t.Fatalf("Canonical(%q) accepted out-of-shape key %q", key, canon)
		}
		if !utf8.ValidString(canon) {
			t.Fatalf("Canonical(%q) accepted invalid UTF-8 %q", key, canon)
		}
		for _, r := range canon {
			if r < 0x20 || r == 0x7f {
				t.Fatalf("Canonical(%q) accepted control character %q", key, r)
			}
		}
		// Idempotence: the canonical form is its own canonical form,
		// so equal canonical keys always share one derived stream.
		again, err := Canonical(canon)
		if err != nil || again != canon {
			t.Fatalf("Canonical not idempotent: %q -> %q -> (%q, %v)", key, canon, again, err)
		}
		// And the derivation is a pure function of the canonical form.
		if DeriveSeed(1, canon) != DeriveSeed(1, again) {
			t.Fatalf("DeriveSeed unstable for %q", canon)
		}
	})
}

// FuzzRegistryState feeds the registry decoder arbitrary bytes plus
// mutations of a real blob: it must error or round-trip, never
// panic, mirroring the root package's state fuzzer.
func FuzzRegistryState(f *testing.F) {
	r, err := New(Config{RootSeed: 42, MaxResident: 2})
	if err != nil {
		f.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := r.Fill(k, make([]uint64, 3)); err != nil {
			f.Fatal(err)
		}
	}
	blob, err := r.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add([]byte(regMagic))
	f.Add(blob[:len(blob)/2])
	f.Add(append([]byte{}, append(blob, 0)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		r2, err := Restore(data, Config{})
		if err != nil {
			return
		}
		// A blob the decoder accepts must marshal back and be
		// accepted again: decode(encode(decode(x))) cannot fail.
		blob2, err := r2.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted blob failed: %v", err)
		}
		if _, err := Restore(blob2, Config{}); err != nil {
			t.Fatalf("re-restore of accepted blob failed: %v", err)
		}
	})
}
