package substream

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	hybridprng "repro"
)

func mustRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func drawWords(t *testing.T, r *Registry, key string, n int) []uint64 {
	t.Helper()
	out := make([]uint64, n)
	if err := r.Fill(key, out); err != nil {
		t.Fatalf("Fill(%q, %d): %v", key, n, err)
	}
	return out
}

// control returns the first n words of key's stream drawn straight
// from a bare generator — the ground truth every registry path must
// reproduce.
func control(t *testing.T, root uint64, key string, n int) []uint64 {
	t.Helper()
	g, err := hybridprng.New(hybridprng.WithSeed(DeriveSeed(root, key)))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, n)
	g.Fill(out)
	return out
}

func TestCanonicalEquivalentKeysShareStream(t *testing.T) {
	r := mustRegistry(t, Config{RootSeed: 7})
	a := drawWords(t, r, "alice", 4)
	b := drawWords(t, r, "  alice\t", 4)
	want := control(t, 7, "alice", 8)
	if !equalWords(a, want[:4]) || !equalWords(b, want[4:]) {
		t.Fatalf("canonically-equal spellings did not continue one stream:\n%x\n%x\nwant %x", a, b, want)
	}
}

func TestKeyRejections(t *testing.T) {
	r := mustRegistry(t, Config{RootSeed: 7})
	for _, key := range []string{
		"",
		"   \t ",
		string(make([]byte, MaxKeyBytes+1)),
		"bad\x00key",
		"bad\x7fkey",
		"new\nline",
		string([]byte{0xff, 0xfe}),
	} {
		dst := []uint64{0xdead, 0xbeef}
		err := r.Fill(key, dst)
		var ke *KeyError
		if !errors.As(err, &ke) {
			t.Fatalf("Fill(%q) error = %v, want *KeyError", key, err)
		}
		if dst[0] != 0 || dst[1] != 0 {
			t.Fatalf("Fill(%q) left stale words %x after error", key, dst)
		}
	}
}

// TestEvictedKeyResumesBitwise is the LRU correctness bar: forcing a
// tenant out of residency and drawing it back in must continue its
// stream exactly where it stopped.
func TestEvictedKeyResumesBitwise(t *testing.T) {
	r := mustRegistry(t, Config{RootSeed: 99, MaxResident: 2})
	first := drawWords(t, r, "victim", 16)

	// Two fresher keys push "victim" off the 2-slot LRU.
	drawWords(t, r, "fresh-a", 1)
	drawWords(t, r, "fresh-b", 1)
	if s := r.Stats(); s.Resident != 2 || s.Tenants != 3 || s.Evictions == 0 {
		t.Fatalf("after eviction pressure: %+v", s)
	}

	second := drawWords(t, r, "victim", 16)
	want := control(t, 99, "victim", 32)
	if !equalWords(first, want[:16]) || !equalWords(second, want[16:]) {
		t.Fatalf("evicted key did not resume bitwise")
	}
}

func TestRegistryStateRoundTrip(t *testing.T) {
	r := mustRegistry(t, Config{RootSeed: 2026, MaxResident: 2, HealthHMin: 4})
	keys := []string{"a", "b", "c", "d"} // 4 keys through a 2-slot LRU: some resident, some parked
	for i, k := range keys {
		drawWords(t, r, k, 8+i)
	}
	blob, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Marshal must not perturb the original: it keeps serving.
	contA := control(t, 2026, "a", 8+0+4)

	r2, err := Restore(blob, Config{MaxResident: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := drawWords(t, r2, "a", 4); !equalWords(got, contA[8:]) {
		t.Fatalf("restored registry did not resume key a bitwise: got %x want %x", got, contA[8:])
	}
	if got := drawWords(t, r, "a", 4); !equalWords(got, contA[8:]) {
		t.Fatalf("marshalled registry stopped serving key a bitwise: got %x want %x", got, contA[8:])
	}

	// Meters ride along in the blob.
	s := r2.Stats()
	if s.Tenants != 4 {
		t.Fatalf("restored tenants = %d, want 4", s.Tenants)
	}
	for _, ts := range s.PerTenant {
		if ts.Key == "b" && ts.Draws != 9 {
			t.Fatalf("tenant b draws = %d, want 9", ts.Draws)
		}
	}

	// A second marshal of the restored registry round-trips too.
	blob2, err := r2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(blob2, Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryStateRejectsGarbage(t *testing.T) {
	r := mustRegistry(t, Config{RootSeed: 1})
	drawWords(t, r, "k", 4)
	blob, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string][]byte{
		"empty":     {},
		"short":     blob[:5],
		"truncated": blob[:len(blob)-3],
		"badmagic":  append([]byte("xsubreg"), blob[7:]...),
		"trailing":  append(append([]byte{}, blob...), 0xee),
	} {
		if _, err := Restore(mut, Config{}); err == nil {
			t.Fatalf("Restore(%s) accepted a corrupt blob", name)
		}
	}
}

func TestRateLimitWithFakeClock(t *testing.T) {
	now := time.Unix(1000, 0)
	r := mustRegistry(t, Config{
		RootSeed:   5,
		RatePerSec: 8,
		Burst:      16,
		Now:        func() time.Time { return now },
	})

	// The full burst serves immediately.
	drawWords(t, r, "t", 16)

	// Bucket empty: the next word is shed with a refill hint.
	dst := []uint64{77}
	err := r.Fill("t", dst)
	var rl *RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("Fill on empty bucket: err = %v, want *RateLimitError", err)
	}
	if rl.RetryAfter <= 0 || rl.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want (0s, 1s] for a 1-word deficit at 8 words/s", rl.RetryAfter)
	}
	if dst[0] != 0 {
		t.Fatalf("rate-limited Fill left stale word %x", dst[0])
	}

	// Time refills the bucket at 8 words/s.
	now = now.Add(time.Second)
	drawWords(t, r, "t", 8)

	// Bytes draws charge by the word, partial words rounded up.
	now = now.Add(time.Second)
	b := make([]byte, 9) // 2 words
	if err := r.FillBytes("t", b); err != nil {
		t.Fatal(err)
	}
	if err := r.FillBytes("t", make([]byte, 8*8)); !errors.As(err, &rl) {
		t.Fatalf("FillBytes over budget: err = %v, want *RateLimitError", err)
	}

	s := r.Stats()
	if len(s.PerTenant) != 1 {
		t.Fatalf("tenants = %d, want 1", len(s.PerTenant))
	}
	ts := s.PerTenant[0]
	if ts.Sheds != 2 {
		t.Fatalf("sheds = %d, want 2", ts.Sheds)
	}
	if ts.Draws != 24 || ts.Bytes != 9 {
		t.Fatalf("meters = %d words / %d bytes, want 24 / 9", ts.Draws, ts.Bytes)
	}

	// The rate limit only shed the draws, it did not advance the
	// stream: 24 u64-words plus 2 byte-words have been consumed, so
	// the next draw serves words 26 and 27 of the derived stream.
	want := control(t, 5, "t", 28)
	got := drawWords(t, r, "t", 2)
	if !equalWords(got, want[26:]) {
		t.Fatalf("shed draws perturbed the stream: got %x want %x", got, want[26:])
	}
}

func TestRateLimitIsPerTenant(t *testing.T) {
	now := time.Unix(2000, 0)
	r := mustRegistry(t, Config{
		RootSeed:   5,
		RatePerSec: 4,
		Burst:      4,
		Now:        func() time.Time { return now },
	})
	drawWords(t, r, "hog", 4)
	if err := r.Fill("hog", make([]uint64, 1)); err == nil {
		t.Fatal("hog's bucket should be empty")
	}
	// A different tenant still has its full burst.
	drawWords(t, r, "quiet", 4)
}

func TestCollisionAudit(t *testing.T) {
	r := mustRegistry(t, Config{RootSeed: 11})
	drawWords(t, r, "first", 1)
	// Force the audit to see a collision by planting first's derived
	// seed under a different owner.
	r.mu.Lock()
	r.seeds[DeriveSeed(11, "second")] = "first"
	r.mu.Unlock()
	dst := []uint64{1, 2}
	err := r.Fill("second", dst)
	var ce *CollisionError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CollisionError", err)
	}
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("collision error left stale words %x", dst)
	}
}

// TestKeyedDrawConcurrencyStress hammers a small LRU from many
// goroutines — constant eviction/unpark churn — and then verifies
// every key's stream position is exactly the number of words it
// served: concurrency and eviction may reorder tenants, never
// streams.
func TestKeyedDrawConcurrencyStress(t *testing.T) {
	const (
		workers      = 8
		drawsPerG    = 60
		wordsPerDraw = 5
		nKeys        = 6
	)
	r := mustRegistry(t, Config{RootSeed: 31337, MaxResident: 2})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]uint64, wordsPerDraw)
			for i := 0; i < drawsPerG; i++ {
				key := fmt.Sprintf("user-%04d", (w+i)%nKeys)
				if err := r.Fill(key, buf); err != nil {
					t.Errorf("Fill(%q): %v", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	s := r.Stats()
	var total uint64
	for _, ts := range s.PerTenant {
		total += ts.Draws
		want := control(t, 31337, ts.Key, int(ts.Draws)+wordsPerDraw)
		got := drawWords(t, r, ts.Key, wordsPerDraw)
		if !equalWords(got, want[ts.Draws:]) {
			t.Fatalf("key %q stream out of position after stress", ts.Key)
		}
	}
	if want := uint64(workers * drawsPerG * wordsPerDraw); total != want {
		t.Fatalf("metered words = %d, want %d", total, want)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	build := func() []byte {
		r := mustRegistry(t, Config{RootSeed: 8, MaxResident: 2})
		for _, k := range []string{"c", "a", "b"} {
			drawWords(t, r, k, 3)
		}
		blob, err := r.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical histories marshalled to different blobs")
	}
}

func equalWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
