package substream

import (
	"encoding/binary"
	"fmt"
	"math"

	hybridprng "repro"
)

// Registry state blob, "hsubreg" v1:
//
//	magic "hsubreg" | u16 version
//	u64 rootSeed | u32-len feed name | u32 walkLen | u32 initWalkLen
//	u64 float64bits(hMin) | u32 nTenants
//	per tenant (sorted by key):
//	  u32-len key | u32-len generator blob ("hprng" v2)
//	  u64 draws | u64 bytes | u64 sheds | u64 float64bits(tokens)
//
// Everything a tenant's stream needs to resume bitwise — the exact
// walk and feed state via the nested generator blob — plus its
// meters and bucket level, so a kill/restart or a drain handover is
// invisible to both the stream and the accounting. The runtime knobs
// (resident cap, rate, clock) are deliberately absent: they belong
// to the node serving the streams, not to the streams themselves.

const (
	regMagic   = "hsubreg"
	regVersion = 1
)

// MarshalBinary checkpoints every tenant — resident generators are
// marshalled in place (under their stream lock, so concurrent draws
// serialise cleanly), parked tenants contribute their stored blob.
func (r *Registry) MarshalBinary() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]byte{}, regMagic...)
	out = binary.LittleEndian.AppendUint16(out, regVersion)
	out = binary.LittleEndian.AppendUint64(out, r.cfg.RootSeed)
	out = appendPrefixed(out, []byte(r.cfg.Feed))
	out = binary.LittleEndian.AppendUint32(out, uint32(r.cfg.WalkLen))
	out = binary.LittleEndian.AppendUint32(out, uint32(r.cfg.InitWalkLen))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(r.cfg.HealthHMin))
	keys := r.sortedKeysLocked()
	out = binary.LittleEndian.AppendUint32(out, uint32(len(keys)))
	for _, k := range keys {
		var p parked
		if t, ok := r.resident[k]; ok {
			t.mu.Lock()
			blob, err := t.gen.MarshalBinary()
			tokens := t.tokens
			t.mu.Unlock()
			if err != nil {
				return nil, fmt.Errorf("substream: marshalling tenant %q: %w", k, err)
			}
			p = parked{
				blob:   blob,
				draws:  t.draws.Load(),
				bytes:  t.bytes.Load(),
				sheds:  t.sheds.Load(),
				tokens: tokens,
			}
		} else {
			p = *r.parked[k]
		}
		out = appendPrefixed(out, []byte(k))
		out = appendPrefixed(out, p.blob)
		out = binary.LittleEndian.AppendUint64(out, p.draws)
		out = binary.LittleEndian.AppendUint64(out, p.bytes)
		out = binary.LittleEndian.AppendUint64(out, p.sheds)
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.tokens))
	}
	return out, nil
}

// UnmarshalBinary replaces the registry's tenant population with the
// blob's. Every restored tenant starts parked — the generator blob
// is validated but the walker is rebuilt lazily on the tenant's
// first draw, so restoring a million-tenant registry costs no init
// walks up front (the paper's on-demand property, preserved across
// restarts). Derivation parameters are taken from the blob; the
// runtime knobs configured at New/Restore time are kept.
func (r *Registry) UnmarshalBinary(data []byte) error {
	c := cursor{p: data}
	if !c.magic(regMagic) {
		return fmt.Errorf("substream: bad registry magic")
	}
	if v := c.u16(); c.err == nil && v != regVersion {
		return fmt.Errorf("substream: unsupported registry state version %d", v)
	}
	rootSeed := c.u64()
	feed := string(c.bytes("feed name"))
	walkLen := c.u32()
	initWalkLen := c.u32()
	hMin := math.Float64frombits(c.u64())
	n := int(c.u32())
	if c.err != nil {
		return c.err
	}
	switch feed {
	case hybridprng.FeedGlibc, hybridprng.FeedANSIC, hybridprng.FeedSplitMix:
	default:
		return fmt.Errorf("substream: state blob names unknown feed %q", feed)
	}
	parkedSet := make(map[string]*parked, n)
	seeds := make(map[uint64]string, n)
	for i := 0; i < n; i++ {
		key := string(c.bytes("tenant key"))
		blob := c.bytes("tenant generator blob")
		p := &parked{
			blob:  append([]byte{}, blob...),
			draws: c.u64(),
			bytes: c.u64(),
			sheds: c.u64(),
		}
		p.tokens = math.Float64frombits(c.u64())
		if c.err != nil {
			return c.err
		}
		canon, err := Canonical(key)
		if err != nil || canon != key {
			return fmt.Errorf("substream: state blob holds non-canonical key %q", key)
		}
		if err := new(hybridprng.Generator).UnmarshalBinary(p.blob); err != nil {
			return fmt.Errorf("substream: tenant %q generator blob: %w", key, err)
		}
		if _, dup := parkedSet[key]; dup {
			return fmt.Errorf("substream: state blob repeats tenant %q", key)
		}
		seed := DeriveSeed(rootSeed, key)
		if prev, taken := seeds[seed]; taken {
			return &CollisionError{Key: key, Existing: prev, Seed: seed}
		}
		parkedSet[key] = p
		seeds[seed] = key
	}
	if len(c.p) != 0 {
		return fmt.Errorf("substream: %d trailing bytes after registry state", len(c.p))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfg.RootSeed = rootSeed
	r.cfg.Feed = feed
	r.cfg.WalkLen = int(walkLen)
	r.cfg.InitWalkLen = int(initWalkLen)
	r.cfg.HealthHMin = hMin
	r.resident = make(map[string]*tenant)
	r.lru.Init()
	r.parked = parkedSet
	r.seeds = seeds
	return nil
}

// appendPrefixed appends a u32 length header and the blob.
func appendPrefixed(out, blob []byte) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
	return append(out, blob...)
}

// cursor is a little decode helper: reads latch the first error and
// subsequent reads return zero values, so decode bodies stay linear.
type cursor struct {
	p   []byte
	err error
}

func (c *cursor) magic(m string) bool {
	if c.err != nil || len(c.p) < len(m) || string(c.p[:len(m)]) != m {
		return false
	}
	c.p = c.p[len(m):]
	return true
}

func (c *cursor) u16() uint16 {
	if c.err != nil {
		return 0
	}
	if len(c.p) < 2 {
		c.err = fmt.Errorf("substream: registry state truncated")
		return 0
	}
	v := binary.LittleEndian.Uint16(c.p)
	c.p = c.p[2:]
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if len(c.p) < 4 {
		c.err = fmt.Errorf("substream: registry state truncated")
		return 0
	}
	v := binary.LittleEndian.Uint32(c.p)
	c.p = c.p[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if len(c.p) < 8 {
		c.err = fmt.Errorf("substream: registry state truncated")
		return 0
	}
	v := binary.LittleEndian.Uint64(c.p)
	c.p = c.p[8:]
	return v
}

// bytes consumes a u32 length-prefixed blob.
func (c *cursor) bytes(what string) []byte {
	n := int(c.u32())
	if c.err != nil {
		return nil
	}
	if n > len(c.p) {
		c.err = fmt.Errorf("substream: %s truncated (%d of %d bytes)", what, len(c.p), n)
		return nil
	}
	b := c.p[:n]
	c.p = c.p[n:]
	return b
}
