// AVX2 lockstep walk kernel: eight Gabber–Galil walks advance one
// 63-bit feed chunk (21 steps each) per call, with every lane held in
// YMM registers for the duration. See batch.go for the dispatch and
// the bit-stream-compatibility contract.
//
// Layout: x and y hold the eight lanes' coordinates as packed dwords
// (lane j = dword j); w holds the eight 63-bit feed chunks as packed
// qwords, split across two YMM registers (lanes 0-3 / 4-7).
//
// Neighbour selection is branchless via VPERMD used as an 8-entry
// 32-bit table: the 3-bit neighbour index b of each lane, packed to
// dwords, indexes the c / maskY / maskX tables in one instruction
// each. The feed chunk is pre-shifted left once (Bits(63) leaves bit
// 63 clear), so b is always the top three bits and a plain >>61
// extracts it with no masking; the chunk then shifts left 3 per step,
// consuming fields in the same MSB-first order as the scalar walk.

#include "textflag.h"

DATA tabC<>+0(SB)/4, $0
DATA tabC<>+4(SB)/4, $0
DATA tabC<>+8(SB)/4, $1
DATA tabC<>+12(SB)/4, $2
DATA tabC<>+16(SB)/4, $0
DATA tabC<>+20(SB)/4, $1
DATA tabC<>+24(SB)/4, $2
DATA tabC<>+28(SB)/4, $0
GLOBL tabC<>(SB), RODATA|NOPTR, $32

DATA tabY<>+0(SB)/4, $0
DATA tabY<>+4(SB)/4, $0xffffffff
DATA tabY<>+8(SB)/4, $0xffffffff
DATA tabY<>+12(SB)/4, $0xffffffff
DATA tabY<>+16(SB)/4, $0
DATA tabY<>+20(SB)/4, $0
DATA tabY<>+24(SB)/4, $0
DATA tabY<>+28(SB)/4, $0
GLOBL tabY<>(SB), RODATA|NOPTR, $32

DATA tabX<>+0(SB)/4, $0
DATA tabX<>+4(SB)/4, $0
DATA tabX<>+8(SB)/4, $0
DATA tabX<>+12(SB)/4, $0
DATA tabX<>+16(SB)/4, $0xffffffff
DATA tabX<>+20(SB)/4, $0xffffffff
DATA tabX<>+24(SB)/4, $0xffffffff
DATA tabX<>+28(SB)/4, $0
GLOBL tabX<>(SB), RODATA|NOPTR, $32

// Index vectors packing the qword-lane neighbour bits (dwords
// 0,2,4,6 of each half) into dwords 0-3 / 4-7 of one register.
DATA idxLo<>+0(SB)/4, $0
DATA idxLo<>+4(SB)/4, $2
DATA idxLo<>+8(SB)/4, $4
DATA idxLo<>+12(SB)/4, $6
DATA idxLo<>+16(SB)/4, $0
DATA idxLo<>+20(SB)/4, $0
DATA idxLo<>+24(SB)/4, $0
DATA idxLo<>+28(SB)/4, $0
GLOBL idxLo<>(SB), RODATA|NOPTR, $32

DATA idxHi<>+0(SB)/4, $0
DATA idxHi<>+4(SB)/4, $0
DATA idxHi<>+8(SB)/4, $0
DATA idxHi<>+12(SB)/4, $0
DATA idxHi<>+16(SB)/4, $0
DATA idxHi<>+20(SB)/4, $2
DATA idxHi<>+24(SB)/4, $4
DATA idxHi<>+28(SB)/4, $6
GLOBL idxHi<>(SB), RODATA|NOPTR, $32

// func step21x8(x *[8]uint32, y *[8]uint32, w *[8]uint64)
TEXT ·step21x8(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), AX
	MOVQ y+8(FP), BX
	MOVQ w+16(FP), DX

	VMOVDQU (AX), Y0        // x lanes
	VMOVDQU (BX), Y1        // y lanes
	VMOVDQU (DX), Y2        // chunks, lanes 0-3
	VMOVDQU 32(DX), Y3      // chunks, lanes 4-7
	VPSLLQ  $1, Y2, Y2      // bit 63 is clear; field k now at bits 63-61
	VPSLLQ  $1, Y3, Y3

	VMOVDQU tabC<>(SB), Y4
	VMOVDQU tabY<>(SB), Y5
	VMOVDQU tabX<>(SB), Y6
	VMOVDQU idxLo<>(SB), Y7
	VMOVDQU idxHi<>(SB), Y8

	MOVQ $21, CX

step:
	// b = top 3 bits of each lane's chunk, packed to dwords.
	VPSRLQ   $61, Y2, Y9
	VPSRLQ   $61, Y3, Y10
	VPSLLQ   $3, Y2, Y2
	VPSLLQ   $3, Y3, Y3
	VPERMD   Y9, Y7, Y9
	VPERMD   Y10, Y8, Y10
	VPBLENDD $0xf0, Y10, Y9, Y9

	// Table lookups: c, maskY, maskX — one VPERMD each.
	VPERMD Y4, Y9, Y11
	VPERMD Y5, Y9, Y12
	VPERMD Y6, Y9, Y13

	// y += (2x + c) & maskY; x += (2y + c) & maskX
	VPSLLD $1, Y0, Y14
	VPADDD Y11, Y14, Y14
	VPAND  Y12, Y14, Y14
	VPADDD Y14, Y1, Y1
	VPSLLD $1, Y1, Y14
	VPADDD Y11, Y14, Y14
	VPAND  Y13, Y14, Y14
	VPADDD Y14, Y0, Y0

	DECQ CX
	JNZ  step

	VMOVDQU Y0, (AX)
	VMOVDQU Y1, (BX)
	VZEROUPPER
	RET

// func step21x16(x *[16]uint32, y *[16]uint32, w *[16]uint64)
//
// Sixteen lanes as two eight-wide halves advanced inside one loop
// body. The point of fusing them (rather than calling step21x8
// twice) is latency: one eight-lane step is a serial ~8-cycle
// x→y→x chain, so a single half leaves the vector units mostly
// idle; with both halves' independent chains in flight the
// out-of-order core overlaps them and nearly doubles lane
// throughput. Halves reuse the same temp registers — renaming
// makes that free. Table lookups take their data operand straight
// from RODATA to keep the register budget at sixteen YMMs.
TEXT ·step21x16(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), AX
	MOVQ y+8(FP), BX
	MOVQ w+16(FP), DX

	VMOVDQU (AX), Y0        // x lanes 0-7
	VMOVDQU 32(AX), Y1      // x lanes 8-15
	VMOVDQU (BX), Y2        // y lanes 0-7
	VMOVDQU 32(BX), Y3      // y lanes 8-15
	VMOVDQU (DX), Y4        // chunks, lanes 0-3
	VMOVDQU 32(DX), Y5      // chunks, lanes 4-7
	VMOVDQU 64(DX), Y6      // chunks, lanes 8-11
	VMOVDQU 96(DX), Y7      // chunks, lanes 12-15
	VPSLLQ  $1, Y4, Y4      // bit 63 is clear; field k now at bits 63-61
	VPSLLQ  $1, Y5, Y5
	VPSLLQ  $1, Y6, Y6
	VPSLLQ  $1, Y7, Y7

	VMOVDQU idxLo<>(SB), Y8
	VMOVDQU idxHi<>(SB), Y9

	MOVQ $21, CX

step16:
	// Half A (lanes 0-7): b packed to dwords, table lookups, update.
	VPSRLQ   $61, Y4, Y10
	VPSRLQ   $61, Y5, Y11
	VPSLLQ   $3, Y4, Y4
	VPSLLQ   $3, Y5, Y5
	VPERMD   Y10, Y8, Y10
	VPERMD   Y11, Y9, Y11
	VPBLENDD $0xf0, Y11, Y10, Y10

	VPERMD tabC<>(SB), Y10, Y11
	VPERMD tabY<>(SB), Y10, Y12
	VPERMD tabX<>(SB), Y10, Y10

	VPSLLD $1, Y0, Y13
	VPADDD Y11, Y13, Y13
	VPAND  Y12, Y13, Y13
	VPADDD Y13, Y2, Y2
	VPSLLD $1, Y2, Y13
	VPADDD Y11, Y13, Y13
	VPAND  Y10, Y13, Y13
	VPADDD Y13, Y0, Y0

	// Half B (lanes 8-15): same dance, independent dependency chain.
	VPSRLQ   $61, Y6, Y10
	VPSRLQ   $61, Y7, Y11
	VPSLLQ   $3, Y6, Y6
	VPSLLQ   $3, Y7, Y7
	VPERMD   Y10, Y8, Y10
	VPERMD   Y11, Y9, Y11
	VPBLENDD $0xf0, Y11, Y10, Y10

	VPERMD tabC<>(SB), Y10, Y11
	VPERMD tabY<>(SB), Y10, Y12
	VPERMD tabX<>(SB), Y10, Y10

	VPSLLD $1, Y1, Y13
	VPADDD Y11, Y13, Y13
	VPAND  Y12, Y13, Y13
	VPADDD Y13, Y3, Y3
	VPSLLD $1, Y3, Y13
	VPADDD Y11, Y13, Y13
	VPAND  Y10, Y13, Y13
	VPADDD Y13, Y1, Y1

	DECQ CX
	JNZ  step16

	VMOVDQU Y0, (AX)
	VMOVDQU Y1, 32(AX)
	VMOVDQU Y2, (BX)
	VMOVDQU Y3, 32(BX)
	VZEROUPPER
	RET

// func cpuidAVX2() bool
TEXT ·cpuidAVX2(SB), NOSPLIT, $0-1
	// OSXSAVE must be set before XGETBV is legal.
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27), R8
	JZ   none

	// OS must save YMM state (XCR0 bits 1 and 2).
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  none

	// CPU must advertise AVX2 (leaf 7, EBX bit 5).
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   none

	MOVB $1, ret+0(FP)
	RET

none:
	MOVB $0, ret+0(FP)
	RET
