package core

import (
	"repro/internal/expander"
	"repro/internal/rng"
)

// MaxBatchLanes is the widest lockstep batch the batched kernel
// advances per loop iteration. Sixteen independent walks are enough
// to hide the ~8-cycle serial dependency of one Gabber–Galil step
// behind the CPU's out-of-order window; wider batches spill the lane
// state out of registers/L1 without buying more ILP.
const MaxBatchLanes = 16

// FillBatch fills dst[i] with len(dst[i]) successive numbers from
// ws[i], advancing the walkers in lockstep: each loop iteration of
// the kernel performs one step of up to MaxBatchLanes *independent*
// walks, so the hardware pipelines stay full instead of stalling on
// one walk's serial x→y→x dependency chain. This is the blocked-
// generation idiom MTGP uses to keep GPU pipelines busy, applied to
// a superscalar CPU core.
//
// Every walker consumes its own feed bits in exactly the order the
// scalar Next/Fill path consumes them (per number: the 63-bit chunk
// reads, then the 3-bit tail steps), so per-walker output is bitwise
// identical to calling ws[i].Fill(dst[i]) — batching is a pure
// reordering of independent walks, never a different stream. Lanes
// whose dst is shorter simply retire early; ragged batch shapes are
// fine.
//
// ws and dst must have equal length and the walkers must be
// distinct; no walker may be used concurrently elsewhere during the
// call. Walkers on small analysis graphs, or whose WalkLen differs
// from the first full-graph lane's, fall back to their scalar Fill
// (same output, no lockstep speedup).
func FillBatch(ws []*Walker, dst [][]uint64) {
	if len(ws) != len(dst) {
		panic("core: FillBatch lane count mismatch")
	}
	for start := 0; start < len(ws); start += MaxBatchLanes {
		end := start + MaxBatchLanes
		if end > len(ws) {
			end = len(ws)
		}
		fillBatchGroup(ws[start:end], dst[start:end])
	}
}

// fillBatchGroup runs one ≤MaxBatchLanes lockstep group. Lanes that
// cannot join the lockstep kernel (small graph, mismatched walk
// length) are filled scalar first; the rest share the batched loop.
func fillBatchGroup(ws []*Walker, dst [][]uint64) {
	// The group's lockstep walk length is the first full-graph lane's.
	walkLen := 0
	for _, w := range ws {
		if w.full {
			walkLen = w.cfg.WalkLen
			break
		}
	}

	var (
		lanes [MaxBatchLanes]*Walker
		x, y  [MaxBatchLanes]uint32
		word  [MaxBatchLanes]uint64
		bits  [MaxBatchLanes]*rng.BitReader
		outs  [MaxBatchLanes][]uint64
	)
	n := 0
	for i, w := range ws {
		if len(dst[i]) == 0 {
			continue
		}
		if !w.full || w.cfg.WalkLen != walkLen {
			w.Fill(dst[i])
			continue
		}
		lanes[n] = w
		x[n], y[n] = w.pos.X, w.pos.Y
		bits[n] = w.bits
		outs[n] = dst[i]
		n++
	}
	if n == 0 {
		return
	}
	if n < 4 {
		// Too few lockstep lanes to pay for the batched loop; the
		// scalar path is faster and bit-identical.
		for i := 0; i < n; i++ {
			lanes[i].Fill(outs[i])
		}
		return
	}

	chunks := walkLen / stepsPerChunk
	tail := walkLen % stepsPerChunk
	for n > 0 {
		// One number per active lane: the chunked fast path first
		// (21 aligned 3-bit fields per 63-bit feed read), then the
		// per-step tail — the same per-walker feed order as walk().
		for c := 0; c < chunks; c++ {
			for j := 0; j < n; j++ {
				word[j] = bits[j].Bits(chunkBits)
			}
			// Octets go through the AVX2 kernel (one YMM register per
			// coordinate vector), quads through chunk21x4's register-
			// resident loop — the memory round-trip per step of the
			// generic loop below would otherwise serialise right back
			// onto the walk's dependency chain.
			j := 0
			if haveStep8 {
				switch {
				case n >= 12:
					// Twelve or more lanes: the fused sixteen-wide
					// kernel, padded with scratch lanes when under
					// sixteen. The state arrays are MaxBatchLanes
					// wide and slots ≥ n are dead (stale or
					// retired), so computing garbage in them is
					// harmless — and one fused call overlaps the
					// two halves' dependency chains, which two
					// back-to-back eight-wide calls would not.
					step21x16(&x, &y, &word)
					j = n
				case n >= 4:
					// Four to eleven lanes: one eight-wide call,
					// scratch-padded below eight; lanes 8-11 pad a
					// second call rather than drop to the scalar
					// quad loop.
					step21x8(
						(*[8]uint32)(x[0:8]),
						(*[8]uint32)(y[0:8]),
						(*[8]uint64)(word[0:8]))
					if n > 8 {
						step21x8(
							(*[8]uint32)(x[8:16]),
							(*[8]uint32)(y[8:16]),
							(*[8]uint64)(word[8:16]))
					}
					j = n
				}
			}
			for ; j+4 <= n; j += 4 {
				chunk21x4(
					(*[4]uint32)(x[j:j+4]),
					(*[4]uint32)(y[j:j+4]),
					(*[4]uint64)(word[j:j+4]))
			}
			for k := chunkBits - BitsPerStep; k >= 0; k -= BitsPerStep {
				for jj := j; jj < n; jj++ {
					b := word[jj] >> uint(k) & 7
					c0 := stepC[b]
					yy := y[jj] + (2*x[jj]+c0)&stepMaskY[b]
					x[jj] += (2*yy + c0) & stepMaskX[b]
					y[jj] = yy
				}
			}
		}
		for t := 0; t < tail; t++ {
			for j := 0; j < n; j++ {
				b := bits[j].Bits(BitsPerStep)
				c0 := stepC[b]
				yy := y[j] + (2*x[j]+c0)&stepMaskY[b]
				x[j] += (2*yy + c0) & stepMaskX[b]
				y[j] = yy
			}
		}
		// Emit the endpoint ids; retire lanes whose dst is full by
		// swapping the last active lane into their slot (the moved
		// lane has already emitted this round, so the slot is not
		// re-processed until the next round).
		for j := 0; j < n; {
			out := outs[j]
			out[0] = uint64(x[j])<<32 | uint64(y[j])
			lanes[j].count++
			if len(out) == 1 {
				lanes[j].pos = expander.Vertex{X: x[j], Y: y[j]}
				n--
				lanes[j], x[j], y[j], bits[j], outs[j] =
					lanes[n], x[n], y[n], bits[n], outs[n]
				lanes[n], bits[n], outs[n] = nil, nil, nil
				continue
			}
			outs[j] = out[1:]
			j++
		}
	}
}

// chunk21x4 advances four lanes through one 63-bit feed chunk (21
// steps each). The eight coordinates and four chunk words live in
// locals for the duration, so each lane's serial x→y→x chain runs
// register-to-register and the four independent chains overlap in the
// out-of-order window — this function is where the batched kernel's
// speedup actually comes from.
func chunk21x4(x, y *[4]uint32, w *[4]uint64) {
	x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
	y0, y1, y2, y3 := y[0], y[1], y[2], y[3]
	w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
	for k := chunkBits - BitsPerStep; k >= 0; k -= BitsPerStep {
		b0 := w0 >> uint(k) & 7
		b1 := w1 >> uint(k) & 7
		b2 := w2 >> uint(k) & 7
		b3 := w3 >> uint(k) & 7
		c0 := stepC[b0]
		y0 += (2*x0 + c0) & stepMaskY[b0]
		x0 += (2*y0 + c0) & stepMaskX[b0]
		c1 := stepC[b1]
		y1 += (2*x1 + c1) & stepMaskY[b1]
		x1 += (2*y1 + c1) & stepMaskX[b1]
		c2 := stepC[b2]
		y2 += (2*x2 + c2) & stepMaskY[b2]
		x2 += (2*y2 + c2) & stepMaskX[b2]
		c3 := stepC[b3]
		y3 += (2*x3 + c3) & stepMaskY[b3]
		x3 += (2*y3 + c3) & stepMaskX[b3]
	}
	x[0], x[1], x[2], x[3] = x0, x1, x2, x3
	y[0], y[1], y[2], y[3] = y0, y1, y2, y3
}

// NextBatch draws one number from each walker in lockstep, writing
// ws[i]'s number to out[i] — FillBatch with one word per lane.
func NextBatch(ws []*Walker, out []uint64) {
	if len(ws) != len(out) {
		panic("core: NextBatch lane count mismatch")
	}
	var segs [MaxBatchLanes][]uint64
	for start := 0; start < len(ws); start += MaxBatchLanes {
		end := start + MaxBatchLanes
		if end > len(ws) {
			end = len(ws)
		}
		group := segs[:end-start]
		for i := range group {
			group[i] = out[start+i : start+i+1]
		}
		fillBatchGroup(ws[start:end], group)
	}
}
