package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/expander"
	"repro/internal/rng"
)

// TestFillBatchMatchesScalar pins the batched kernel bitwise against
// the scalar Fill path: for every batch width 1–16 (and one width
// past the lane cap), every lane's output and every lane's post-run
// walker state (position, count, feed-reader buffer) must be
// identical to a scalar twin fed the same stream.
func TestFillBatchMatchesScalar(t *testing.T) {
	const words = 97 // odd, several ring refills worth
	for width := 1; width <= MaxBatchLanes+3; width++ {
		batched := make([]*Walker, width)
		scalar := make([]*Walker, width)
		dst := make([][]uint64, width)
		want := make([][]uint64, width)
		for i := 0; i < width; i++ {
			seed := uint64(1000*width + i)
			var err error
			if batched[i], err = NewWalker(newBits(seed), Config{}); err != nil {
				t.Fatal(err)
			}
			if scalar[i], err = NewWalker(newBits(seed), Config{}); err != nil {
				t.Fatal(err)
			}
			dst[i] = make([]uint64, words)
			want[i] = make([]uint64, words)
		}
		FillBatch(batched, dst)
		for i := range scalar {
			scalar[i].Fill(want[i])
		}
		for i := 0; i < width; i++ {
			for k := 0; k < words; k++ {
				if dst[i][k] != want[i][k] {
					t.Fatalf("width %d lane %d word %d: batched %#x, scalar %#x",
						width, i, k, dst[i][k], want[i][k])
				}
			}
			if batched[i].Position() != scalar[i].Position() {
				t.Fatalf("width %d lane %d: position diverged", width, i)
			}
			if batched[i].Generated() != scalar[i].Generated() {
				t.Fatalf("width %d lane %d: count %d != %d",
					width, i, batched[i].Generated(), scalar[i].Generated())
			}
			bw, bl := batched[i].Bits().State()
			sw, sl := scalar[i].Bits().State()
			if bw != sw || bl != sl {
				t.Fatalf("width %d lane %d: bit-reader state diverged", width, i)
			}
		}
	}
}

// TestFillBatchWalkLengths sweeps walk lengths around the 21-step
// chunk boundary — the chunked/tail split is where a feed-order bug
// would hide.
func TestFillBatchWalkLengths(t *testing.T) {
	for _, l := range []int{1, 3, 20, 21, 22, 42, 63, 64, 65, 127} {
		t.Run(fmt.Sprintf("l=%d", l), func(t *testing.T) {
			const width, words = 5, 9
			batched := make([]*Walker, width)
			dst := make([][]uint64, width)
			for i := range batched {
				var err error
				if batched[i], err = NewWalker(newBits(uint64(50+i)), Config{WalkLen: l}); err != nil {
					t.Fatal(err)
				}
				dst[i] = make([]uint64, words)
			}
			FillBatch(batched, dst)
			for i := 0; i < width; i++ {
				ref, err := NewWalker(newBits(uint64(50+i)), Config{WalkLen: l})
				if err != nil {
					t.Fatal(err)
				}
				for k := 0; k < words; k++ {
					if want := ref.Next(); dst[i][k] != want {
						t.Fatalf("lane %d word %d: %#x != %#x", i, k, dst[i][k], want)
					}
				}
			}
		})
	}
}

// TestFillBatchRaggedLanes gives every lane a different output
// length (including empty), so lanes retire mid-sweep in every
// possible order; each lane must still match its scalar twin.
func TestFillBatchRaggedLanes(t *testing.T) {
	lens := []int{0, 1, 2, 7, 16, 17, 64, 65, 100, 3, 33, 5, 80, 11, 1, 255}
	width := len(lens)
	batched := make([]*Walker, width)
	dst := make([][]uint64, width)
	for i := range batched {
		var err error
		if batched[i], err = NewWalker(newBits(uint64(900+i)), Config{}); err != nil {
			t.Fatal(err)
		}
		dst[i] = make([]uint64, lens[i])
	}
	FillBatch(batched, dst)
	for i := 0; i < width; i++ {
		ref, _ := NewWalker(newBits(uint64(900+i)), Config{})
		for k := 0; k < lens[i]; k++ {
			if want := ref.Next(); dst[i][k] != want {
				t.Fatalf("lane %d (len %d) word %d mismatch", i, lens[i], k)
			}
		}
		if batched[i].Generated() != uint64(lens[i]) {
			t.Fatalf("lane %d Generated = %d, want %d", i, batched[i].Generated(), lens[i])
		}
	}
}

// TestFillBatchMixedConfigs verifies the scalar fallback: lanes on a
// small analysis graph or with a different walk length ride along in
// the same call and still produce their scalar streams.
func TestFillBatchMixedConfigs(t *testing.T) {
	small, err := expander.New(17)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{},             // full graph, default walk — lockstep lane
		{WalkLen: 16},  // full graph, different walk — fallback
		{Graph: small}, // small graph — fallback
		{},             // lockstep lane
		{WalkLen: 16},  // fallback
	}
	const words = 23
	batched := make([]*Walker, len(cfgs))
	dst := make([][]uint64, len(cfgs))
	for i, cfg := range cfgs {
		if batched[i], err = NewWalker(newBits(uint64(300+i)), cfg); err != nil {
			t.Fatal(err)
		}
		dst[i] = make([]uint64, words)
	}
	FillBatch(batched, dst)
	for i, cfg := range cfgs {
		ref, err := NewWalker(newBits(uint64(300+i)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < words; k++ {
			if want := ref.Next(); dst[i][k] != want {
				t.Fatalf("lane %d word %d mismatch", i, k)
			}
		}
	}
}

// TestFillBatchRestoreMidBatch checkpoints every lane's walker state
// partway through a batched fill, restores fresh walkers from that
// state, finishes the fill batched, and demands the concatenation
// equal one uninterrupted scalar stream — the exact-resume invariant
// under the batched kernel.
func TestFillBatchRestoreMidBatch(t *testing.T) {
	const width, firstHalf, secondHalf = 7, 31, 40
	first := make([]*Walker, width)
	dstA := make([][]uint64, width)
	for i := range first {
		var err error
		if first[i], err = NewWalker(newBits(uint64(70+i)), Config{}); err != nil {
			t.Fatal(err)
		}
		dstA[i] = make([]uint64, firstHalf)
	}
	FillBatch(first, dstA)

	// Checkpoint: position + count + feed-reader state. The feed
	// source is deterministic, so a twin source skipped to the same
	// word offset stands in for the serialized source state.
	restored := make([]*Walker, width)
	dstB := make([][]uint64, width)
	for i := range first {
		w := first[i]
		word, left := w.Bits().State()
		// Rebuild the feed at the same stream offset by replaying the
		// words the original reader consumed.
		src := newBits(uint64(70 + i))
		refW, err := NewWalker(src, Config{})
		if err != nil {
			t.Fatal(err)
		}
		refW.Skip(firstHalf)
		rw, rl := refW.Bits().State()
		if rw != word || rl != left {
			t.Fatalf("lane %d: skip-twin bit state (%#x,%d) != batched (%#x,%d)", i, rw, rl, word, left)
		}
		bits := refW.Bits()
		if restored[i], err = RestoreWalker(bits, w.Config(), w.Position(), w.Generated()); err != nil {
			t.Fatal(err)
		}
		dstB[i] = make([]uint64, secondHalf)
	}
	FillBatch(restored, dstB)

	for i := 0; i < width; i++ {
		ref, _ := NewWalker(newBits(uint64(70+i)), Config{})
		whole := make([]uint64, firstHalf+secondHalf)
		ref.Fill(whole)
		for k, want := range whole {
			var got uint64
			if k < firstHalf {
				got = dstA[i][k]
			} else {
				got = dstB[i][k-firstHalf]
			}
			if got != want {
				t.Fatalf("lane %d word %d: resumed stream diverged", i, k)
			}
		}
		if g := restored[i].Generated(); g != firstHalf+secondHalf {
			t.Fatalf("lane %d Generated = %d", i, g)
		}
	}
}

// TestNextBatchMatchesNext covers the one-word-per-lane entry point.
func TestNextBatchMatchesNext(t *testing.T) {
	const width = 11
	ws := make([]*Walker, width)
	refs := make([]*Walker, width)
	for i := range ws {
		ws[i], _ = NewWalker(newBits(uint64(i)+1), Config{})
		refs[i], _ = NewWalker(newBits(uint64(i)+1), Config{})
	}
	out := make([]uint64, width)
	for round := 0; round < 5; round++ {
		NextBatch(ws, out)
		for i, v := range out {
			if want := refs[i].Next(); v != want {
				t.Fatalf("round %d lane %d: %#x != %#x", round, i, v, want)
			}
		}
	}
}

// TestFillBatchConcurrentGroups stresses concurrent batched fills of
// disjoint walker sets (the shape Pool.Fill and the serving pool's
// gang refill produce) under -race.
func TestFillBatchConcurrentGroups(t *testing.T) {
	const groups, width, words = 8, 6, 512
	var wg sync.WaitGroup
	results := make([][][]uint64, groups)
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ws := make([]*Walker, width)
			dst := make([][]uint64, width)
			for i := range ws {
				ws[i], _ = NewWalker(newBits(uint64(g*width+i)), Config{})
				dst[i] = make([]uint64, words)
			}
			FillBatch(ws, dst)
			results[g] = dst
		}(g)
	}
	wg.Wait()
	for g := 0; g < groups; g++ {
		for i := 0; i < width; i++ {
			ref, _ := NewWalker(newBits(uint64(g*width+i)), Config{})
			for k := 0; k < words; k++ {
				if want := ref.Next(); results[g][i][k] != want {
					t.Fatalf("group %d lane %d word %d mismatch", g, i, k)
				}
			}
		}
	}
}

// TestPoolFillMatchesScalarLayout re-pins Pool.Fill now that it
// routes through FillBatch: the segment layout (chunk = ⌈len/n⌉,
// walker i owns segment i) and every word must equal what the old
// one-goroutine-per-walker scalar path produced.
func TestPoolFillMatchesScalarLayout(t *testing.T) {
	for _, n := range []int{2, 3, 4, 16, 17, 33} {
		for _, total := range []int{1, n - 1, n, n + 1, 4*n + 3, 257} {
			if total < 1 {
				continue
			}
			mk := func(i int) *rng.BitReader { return newBits(uint64(4000 + i)) }
			p, err := NewPool(n, Config{}, mk)
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]uint64, total)
			p.Fill(dst)

			want := make([]uint64, total)
			chunk := (total + n - 1) / n
			for i := 0; i < n; i++ {
				lo := i * chunk
				if lo >= total {
					break
				}
				hi := lo + chunk
				if hi > total {
					hi = total
				}
				ref, err := NewWalker(mk(i), Config{})
				if err != nil {
					t.Fatal(err)
				}
				ref.Fill(want[lo:hi])
			}
			for k := range dst {
				if dst[k] != want[k] {
					t.Fatalf("n=%d total=%d word %d: %#x != %#x", n, total, k, dst[k], want[k])
				}
			}
			if g := p.Generated(); g != uint64(total) {
				t.Fatalf("n=%d total=%d Generated = %d", n, total, g)
			}
		}
	}
}

func BenchmarkFillBatch(b *testing.B) {
	for _, width := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("lanes=%d", width), func(b *testing.B) {
			ws := make([]*Walker, width)
			dst := make([][]uint64, width)
			for i := range ws {
				ws[i], _ = NewWalker(newBits(uint64(i)+1), Config{})
				dst[i] = make([]uint64, 256)
			}
			b.SetBytes(int64(8 * 256 * width))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FillBatch(ws, dst)
			}
		})
	}
}
