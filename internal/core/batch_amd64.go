//go:build amd64

package core

// step21x8 advances eight full-graph lanes through one 63-bit feed
// chunk (21 steps each) with all lane state in vector registers —
// the AVX2 inner loop of the batched kernel (batch_amd64.s). Bitwise
// identical to 21 scalar stepXY applications per lane; the
// differential tests in batch_test.go pin this.
//
//go:noescape
func step21x8(x, y *[8]uint32, w *[8]uint64)

// step21x16 is the sixteen-lane variant: two eight-wide halves fused
// in one loop so their independent dependency chains overlap in the
// out-of-order window instead of running back to back.
//
//go:noescape
func step21x16(x, y *[16]uint32, w *[16]uint64)

// cpuidAVX2 reports whether the CPU and OS support AVX2 (including
// OS-saved YMM state), via raw CPUID/XGETBV in batch_amd64.s.
func cpuidAVX2() bool

// haveStep8 gates the eight-wide vector path at startup.
var haveStep8 = cpuidAVX2()
