package core

import (
	"testing"

	"repro/internal/expander"
)

// TestSmallGraphGoldenVector pins the small-graph (ablation) stream
// after the start-vertex fix: NewWalker now draws the start
// coordinates by rejection sampling instead of `label % m`, which
// biased low residues whenever m was not a power of two. These
// vectors anchor the one intentional stream move; any further change
// to small-graph streams must re-pin them deliberately. The
// production (full-graph) stream is pinned independently by the root
// package's golden_test.go and did not move.
func TestSmallGraphGoldenVector(t *testing.T) {
	for _, tc := range []struct {
		m    uint32
		want [8]uint64
	}{
		// Non-power-of-two modulus: the rejection path.
		{m: 100, want: [8]uint64{
			0x0000000f00000051, 0x0000005100000030, 0x000000390000005d, 0x0000002000000051,
			0x0000003b00000044, 0x0000004c00000052, 0x0000000e00000013, 0x0000000a0000003d,
		}},
		// Power of two: the mask path, no rejection possible.
		{m: 64, want: [8]uint64{
			0x0000001f00000024, 0x0000003f00000026, 0x0000002200000002, 0x0000002c00000001,
			0x0000001200000005, 0x0000002a0000000b, 0x0000003900000001, 0x000000230000000f,
		}},
	} {
		g, err := expander.New(tc.m)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWalker(newBits(3), Config{Graph: g})
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range tc.want {
			if got := w.Next(); got != want {
				t.Errorf("m=%d output %d = %#016x, want %#016x", tc.m, i, got, want)
			}
		}
	}
}

// TestUniformModUnbiased checks the rejection sampler hits every
// residue of a non-power-of-two modulus at frequencies a modulo clamp
// could not produce: under `x % 3` over 2 bits, residue 0 appears
// twice as often as residue 2.
func TestUniformModUnbiased(t *testing.T) {
	const m = 3
	const draws = 30000
	counts := make([]int, m)
	bits := newBits(11)
	for i := 0; i < draws; i++ {
		v := uniformMod(bits, m)
		if v >= m {
			t.Fatalf("uniformMod returned %d ≥ %d", v, m)
		}
		counts[v]++
	}
	// Each residue expects draws/m = 10000; allow ±5σ (σ ≈ 82).
	for r, c := range counts {
		if c < 9500 || c > 10500 {
			t.Errorf("residue %d drawn %d times, want ≈ %d", r, c, draws/m)
		}
	}
}
