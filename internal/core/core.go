// Package core implements the paper's primary contribution: the
// on-demand pseudo random number generator based on random walks on a
// Gabber–Galil expander graph (Algorithms 1 and 2 of the paper).
//
// A Walker is the per-thread state: a current vertex of the expander
// plus a reader over the stream of cheap "feed" bits supplied by the
// host (the paper's bin array). InitializeGenerator corresponds to
// Algorithm 1 — pick a random start vertex from 64 feed bits, then
// mix with a 64-step walk. Next corresponds to Algorithm 2 — walk l
// further steps, 3 feed bits per step, and emit the 64-bit vertex id
// reached.
//
// Walkers are deliberately unsynchronised: the paper's thread safety
// comes from each GPU thread owning an independent walk. Pool
// provides the matching many-walker construct; SafeWalker wraps a
// single walker in a mutex for callers who want to share one.
package core

import (
	"fmt"
	mathbits "math/bits"
	"runtime"
	"sync"

	"repro/internal/expander"
	"repro/internal/rng"
)

// Default walk lengths from the paper: both the initialisation walk
// and the per-number walk are 64 steps.
const (
	DefaultInitWalkLen = 64
	DefaultWalkLen     = 64
)

// BitsPerStep is the number of feed bits consumed per walk step (3
// bits select one of the 7 neighbours; the eighth pattern folds into
// the self-loop).
const BitsPerStep = 3

// The walk fast path pulls chunkBits feed bits at a time —
// stepsPerChunk aligned 3-bit fields per read — so the BitReader is
// consulted once per 21 steps instead of once per step. The batched
// kernel (batch.go) consumes the same chunk shape, which is what
// keeps it bit-stream-compatible with the scalar path.
const (
	stepsPerChunk = 21
	chunkBits     = stepsPerChunk * BitsPerStep // 63
)

// Config parameterises a Walker.
type Config struct {
	// InitWalkLen is the length of the Algorithm 1 mixing walk.
	// 0 means DefaultInitWalkLen.
	InitWalkLen int
	// WalkLen is the length l of the Algorithm 2 walk performed per
	// generated number. 0 means DefaultWalkLen.
	WalkLen int
	// Graph is the expander to walk on; nil means the production
	// graph (m = 2^32).
	Graph *expander.Graph
}

func (c Config) withDefaults() Config {
	if c.InitWalkLen == 0 {
		c.InitWalkLen = DefaultInitWalkLen
	}
	if c.WalkLen == 0 {
		c.WalkLen = DefaultWalkLen
	}
	if c.Graph == nil {
		c.Graph = expander.Full()
	}
	return c
}

func (c Config) validate() error {
	if c.InitWalkLen < 0 {
		return fmt.Errorf("core: negative InitWalkLen %d", c.InitWalkLen)
	}
	if c.WalkLen < 1 {
		return fmt.Errorf("core: WalkLen %d < 1", c.WalkLen)
	}
	return nil
}

// Walker is one independent expander walk — the per-thread state of
// the generator. It is NOT safe for concurrent use; that is by
// design (see the package comment).
type Walker struct {
	cfg   Config
	graph *expander.Graph
	full  bool
	pos   expander.Vertex
	bits  *rng.BitReader
	count uint64 // numbers generated
}

// NewWalker runs Algorithm 1 (InitializeGenerator) against the given
// feed-bit stream and returns a ready walker: the start vertex is
// assembled from 64 feed bits, then mixed by an InitWalkLen-step
// walk.
func NewWalker(bits *rng.BitReader, cfg Config) (*Walker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if bits == nil {
		return nil, fmt.Errorf("core: nil bit source")
	}
	w := &Walker{
		cfg:   cfg,
		graph: cfg.Graph,
		full:  cfg.Graph.IsFull(),
		bits:  bits,
	}
	if w.full {
		w.pos = expander.VertexFromID(bits.Bits(64))
	} else {
		// Draw each coordinate uniformly from Z_m by rejection; the
		// old `label % m` clamp over-weighted low residues whenever m
		// was not a power of two.
		m := uint32(cfg.Graph.M())
		w.pos = expander.Vertex{X: uniformMod(bits, m), Y: uniformMod(bits, m)}
	}
	w.walk(cfg.InitWalkLen)
	return w, nil
}

// uniformMod returns a uniform value in [0, m) by drawing ⌈log₂ m⌉
// feed bits and rejecting values ≥ m (exact for powers of two, < 2
// expected draws otherwise).
func uniformMod(bits *rng.BitReader, m uint32) uint32 {
	k := uint(mathbits.Len32(m - 1))
	if k == 0 { // m == 1
		return 0
	}
	for {
		if v := uint32(bits.Bits(k)); v < m {
			return v
		}
	}
}

// walk advances the position by l steps, consuming 3 bits per step.
// The full-graph fast path pulls 63 feed bits at a time (21 steps)
// and inlines the neighbour maps; this is the generator's hot loop
// and the difference between ≈ 1.8 µs and ≈ 0.1 µs per number on the
// CPU backend.
func (w *Walker) walk(l int) {
	pos := w.pos
	if !w.full {
		for i := 0; i < l; i++ {
			pos = w.graph.Step(pos, w.bits.Bits(BitsPerStep))
		}
		w.pos = pos
		return
	}
	x, y := pos.X, pos.Y
	i := 0
	for l-i >= stepsPerChunk {
		word := w.bits.Bits(chunkBits) // 21 aligned 3-bit fields
		for k := chunkBits - BitsPerStep; k >= 0; k -= BitsPerStep {
			b := word >> uint(k) & 7
			x, y = stepXY(x, y, b)
		}
		i += stepsPerChunk
	}
	// Tail steps one field at a time, so exactly 3·l bits are
	// consumed and the stream stays aligned with the reference
	// (per-step) implementation.
	for ; i < l; i++ {
		x, y = stepXY(x, y, w.bits.Bits(BitsPerStep))
	}
	w.pos = expander.Vertex{X: x, Y: y}
}

// Gabber–Galil step tables: neighbour b updates y by 2x+c (mask
// maskY) or x by 2y+c (mask maskX); b ∈ {0, 7} is the folded
// self-loop. Branchless — the generator's innermost operation.
var (
	stepC     = [8]uint32{0, 0, 1, 2, 0, 1, 2, 0}
	stepMaskY = [8]uint32{0, ^uint32(0), ^uint32(0), ^uint32(0), 0, 0, 0, 0}
	stepMaskX = [8]uint32{0, 0, 0, 0, ^uint32(0), ^uint32(0), ^uint32(0), 0}
)

// stepXY applies neighbour map b to (x, y); equivalent to
// expander.StepFull but branch-free.
func stepXY(x, y uint32, b uint64) (uint32, uint32) {
	c := stepC[b]
	y += (2*x + c) & stepMaskY[b]
	x += (2*y + c) & stepMaskX[b]
	return x, y
}

// Next runs Algorithm 2 (GetNextRand): an l-step walk whose endpoint
// id is the next random number.
func (w *Walker) Next() uint64 {
	w.walk(w.cfg.WalkLen)
	w.count++
	return w.pos.ID()
}

// Uint64 makes Walker an rng.Source.
func (w *Walker) Uint64() uint64 { return w.Next() }

// Position returns the walk's current vertex.
func (w *Walker) Position() expander.Vertex { return w.pos }

// Bits returns the walker's feed-bit reader (for checkpointing; see
// RestoreWalker).
func (w *Walker) Bits() *rng.BitReader { return w.bits }

// RestoreWalker reconstructs a walker from checkpointed state
// without running Algorithm 1: the position, output count and
// feed-bit reader are taken as-is. The caller is responsible for the
// bits stream being positioned where the checkpoint left it.
func RestoreWalker(bits *rng.BitReader, cfg Config, pos expander.Vertex, generated uint64) (*Walker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if bits == nil {
		return nil, fmt.Errorf("core: nil bit source")
	}
	return &Walker{
		cfg:   cfg,
		graph: cfg.Graph,
		full:  cfg.Graph.IsFull(),
		pos:   pos,
		bits:  bits,
		count: generated,
	}, nil
}

// Generated returns how many numbers this walker has produced.
func (w *Walker) Generated() uint64 { return w.count }

// Config returns the walker's effective configuration.
func (w *Walker) Config() Config { return w.cfg }

// Fill writes len(dst) successive numbers into dst — the batch-mode
// API used when a caller wants a block at once (the paper's batch
// size S is a scheduling knob, not a different algorithm).
func (w *Walker) Fill(dst []uint64) {
	for i := range dst {
		dst[i] = w.Next()
	}
}

// Skip advances the stream by n numbers without materialising them:
// one long walk of n·WalkLen steps, identical in effect (and feed
// consumption) to n discarded Next calls.
func (w *Walker) Skip(n uint64) {
	for ; n > 0; n-- {
		w.walk(w.cfg.WalkLen)
		w.count++
	}
}

// SafeWalker is a Walker behind a mutex, for callers that insist on
// sharing one stream across goroutines. Prefer Pool.
type SafeWalker struct {
	mu sync.Mutex
	w  *Walker
}

// NewSafeWalker wraps w.
func NewSafeWalker(w *Walker) *SafeWalker { return &SafeWalker{w: w} }

// Next returns the next number under the lock.
func (s *SafeWalker) Next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Next()
}

// Uint64 makes SafeWalker an rng.Source.
func (s *SafeWalker) Uint64() uint64 { return s.Next() }

// Pool is a set of independent walkers, one per worker — the
// software image of the paper's "each GPU thread performs its own
// walk". Generation across distinct walkers is embarrassingly
// parallel and lock-free.
type Pool struct {
	walkers []*Walker
}

// NewPool builds n walkers. Each walker receives its own BitReader
// from newBits (called n times with the worker index), so streams
// are independent and the pool is race-free by construction.
func NewPool(n int, cfg Config, newBits func(worker int) *rng.BitReader) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: pool size %d < 1", n)
	}
	if newBits == nil {
		return nil, fmt.Errorf("core: nil bit-source factory")
	}
	p := &Pool{walkers: make([]*Walker, n)}
	for i := range p.walkers {
		w, err := NewWalker(newBits(i), cfg)
		if err != nil {
			return nil, fmt.Errorf("core: walker %d: %w", i, err)
		}
		p.walkers[i] = w
	}
	return p, nil
}

// PoolFromWalkers wraps already-constructed walkers (typically
// restored from a checkpoint; see hybridprng.Parallel) into a Pool
// without running Algorithm 1 again.
func PoolFromWalkers(ws []*Walker) (*Pool, error) {
	if len(ws) < 1 {
		return nil, fmt.Errorf("core: pool size %d < 1", len(ws))
	}
	for i, w := range ws {
		if w == nil {
			return nil, fmt.Errorf("core: nil walker %d", i)
		}
	}
	return &Pool{walkers: ws}, nil
}

// Size returns the number of walkers.
func (p *Pool) Size() int { return len(p.walkers) }

// Walker returns the i-th walker; callers own its goroutine
// affinity.
func (p *Pool) Walker(i int) *Walker { return p.walkers[i] }

// Fill splits dst into contiguous shards and fills each from its own
// walker through the batched lockstep kernel (FillBatch). The
// numbers each walker contributes are deterministic given its feed
// stream; the shard layout is deterministic too, so Fill is
// reproducible — and identical to what the old one-goroutine-per-
// walker scalar path produced.
//
// Scheduling: the walkers are partitioned into lockstep groups of up
// to MaxBatchLanes lanes; groups run on their own goroutines only
// when spare cores exist, so a single-core host gets one pipelined
// sweep with no scheduling overhead while a many-core host still
// saturates every core.
func (p *Pool) Fill(dst []uint64) {
	n := len(p.walkers)
	if len(dst) == 0 {
		return
	}
	if n == 1 {
		p.walkers[0].Fill(dst)
		return
	}
	// Contiguous per-walker segments, same layout as always.
	var segArr [MaxBatchLanes][]uint64
	segs := segArr[:0]
	if n > MaxBatchLanes {
		segs = make([][]uint64, 0, n)
	}
	chunk := (len(dst) + n - 1) / n
	used := 0
	for i := 0; i < n; i++ {
		lo := i * chunk
		if lo >= len(dst) {
			break
		}
		hi := lo + chunk
		if hi > len(dst) {
			hi = len(dst)
		}
		segs = append(segs, dst[lo:hi])
		used++
	}
	groups := fillGroups(used)
	if groups == 1 {
		FillBatch(p.walkers[:used], segs)
		return
	}
	per := (used + groups - 1) / groups
	var wg sync.WaitGroup
	for g := 0; g < used; g += per {
		hi := g + per
		if hi > used {
			hi = used
		}
		wg.Add(1)
		go func(ws []*Walker, ds [][]uint64) {
			defer wg.Done()
			FillBatch(ws, ds)
		}(p.walkers[g:hi], segs[g:hi])
	}
	wg.Wait()
}

// fillGroups picks how many lockstep groups to run n lanes as: one
// group per core when lanes are scarce (each group still as wide as
// possible for ILP), never more groups than lanes, and never fewer
// than the lane cap forces.
func fillGroups(lanes int) int {
	g := runtime.GOMAXPROCS(0)
	if g > lanes {
		g = lanes
	}
	if min := (lanes + MaxBatchLanes - 1) / MaxBatchLanes; g < min {
		g = min
	}
	return g
}

// Generated sums the per-walker output counts.
func (p *Pool) Generated() uint64 {
	var total uint64
	for _, w := range p.walkers {
		total += w.count
	}
	return total
}
