package core

import (
	"testing"
	"testing/quick"

	"repro/internal/expander"
)

func TestStepXYMatchesExpanderStepFull(t *testing.T) {
	// The branchless hot-loop step must agree with the reference
	// graph definition for every neighbour index and position.
	f := func(x, y uint32, bRaw uint8) bool {
		b := uint64(bRaw) & 7
		nx, ny := stepXY(x, y, b)
		want := expander.StepFull(expander.Vertex{X: x, Y: y}, b)
		return nx == want.X && ny == want.Y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStepXYExhaustiveNeighbours(t *testing.T) {
	v := expander.Vertex{X: 0xDEADBEEF, Y: 0x12345678}
	for b := uint64(0); b < 8; b++ {
		nx, ny := stepXY(v.X, v.Y, b)
		want := expander.StepFull(v, b)
		if nx != want.X || ny != want.Y {
			t.Errorf("b=%d: stepXY = (%d,%d), StepFull = %v", b, nx, ny, want)
		}
	}
}

func TestChunkedWalkMatchesPerStepWalk(t *testing.T) {
	// The 21-steps-per-word fast path must be bit-stream-compatible
	// with a pure per-step implementation, for every walk length
	// around the chunk boundary.
	for _, l := range []int{1, 20, 21, 22, 41, 42, 43, 63, 64, 65, 100} {
		w1, err := NewWalker(newBits(777), Config{WalkLen: l})
		if err != nil {
			t.Fatal(err)
		}
		// Reference: small-graph path is per-step; emulate the full
		// graph per-step with a second walker over the same feed by
		// stepping the graph manually.
		bits := newBits(777)
		g := expander.Full()
		pos := expander.VertexFromID(bits.Bits(64))
		for i := 0; i < DefaultInitWalkLen; i++ {
			pos = g.Step(pos, bits.Bits(3))
		}
		for i := 0; i < l; i++ {
			pos = g.Step(pos, bits.Bits(3))
		}
		if got := w1.Next(); got != pos.ID() {
			t.Fatalf("l=%d: chunked walk %#x, per-step walk %#x", l, got, pos.ID())
		}
	}
}
