package core

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/baselines"
	"repro/internal/expander"
	"repro/internal/rng"
)

func newBits(seed uint64) *rng.BitReader {
	return rng.NewBitReader(baselines.NewSplitMix64(seed))
}

func TestNewWalkerValidation(t *testing.T) {
	if _, err := NewWalker(nil, Config{}); err == nil {
		t.Error("nil bit source should fail")
	}
	if _, err := NewWalker(newBits(1), Config{WalkLen: -1}); err == nil {
		t.Error("negative walk length should fail")
	}
	if _, err := NewWalker(newBits(1), Config{InitWalkLen: -1}); err == nil {
		t.Error("negative init walk length should fail")
	}
}

func TestWalkerDefaults(t *testing.T) {
	w, err := NewWalker(newBits(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := w.Config()
	if cfg.InitWalkLen != DefaultInitWalkLen || cfg.WalkLen != DefaultWalkLen {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Graph == nil || !cfg.Graph.IsFull() {
		t.Error("default graph must be the full production graph")
	}
}

func TestWalkerDeterministicForSameFeed(t *testing.T) {
	w1, _ := NewWalker(newBits(42), Config{})
	w2, _ := NewWalker(newBits(42), Config{})
	for i := 0; i < 100; i++ {
		if w1.Next() != w2.Next() {
			t.Fatal("identical feed must give identical output stream")
		}
	}
	if w1.Generated() != 100 {
		t.Errorf("Generated = %d, want 100", w1.Generated())
	}
}

func TestWalkerFeedSensitivity(t *testing.T) {
	w1, _ := NewWalker(newBits(1), Config{})
	w2, _ := NewWalker(newBits(2), Config{})
	same := 0
	for i := 0; i < 64; i++ {
		if w1.Next() == w2.Next() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("different feeds agreed on %d/64 outputs", same)
	}
}

func TestWalkerConsumesExpectedBits(t *testing.T) {
	// Algorithm 1 consumes 64 bits (start) + 3·InitWalkLen; each
	// Next consumes 3·WalkLen. Verify via a counting source.
	cs := &rng.CountingSource{Src: baselines.NewSplitMix64(7)}
	br := rng.NewBitReader(cs)
	w, err := NewWalker(br, Config{InitWalkLen: 64, WalkLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	initBits := 64 + 3*64 // 256 bits = 4 words exactly
	if got, want := cs.Count, uint64(initBits/64); got != want {
		t.Errorf("init consumed %d words, want %d", got, want)
	}
	for i := 0; i < 100; i++ {
		w.Next()
	}
	totalBits := initBits + 100*3*64 // 19456 bits / 64 = 304 words
	if got, want := cs.Count, uint64(totalBits/64); got != want {
		t.Errorf("total consumed %d words, want %d", got, want)
	}
}

func TestWalkerOutputIsWalkEndpoint(t *testing.T) {
	// The emitted number must be the id of the current position.
	w, _ := NewWalker(newBits(5), Config{})
	for i := 0; i < 10; i++ {
		v := w.Next()
		if v != w.Position().ID() {
			t.Fatal("output is not the position id")
		}
	}
}

func TestWalkerNextMovesAlongEdges(t *testing.T) {
	// With WalkLen 1, each output must be a neighbour of the
	// previous position (in the walk's forward maps, including the
	// folded self-loop).
	g := expander.Full()
	w, _ := NewWalker(newBits(9), Config{WalkLen: 1})
	prev := w.Position()
	for i := 0; i < 200; i++ {
		w.Next()
		cur := w.Position()
		if !g.IsNeighbor(prev, cur) {
			t.Fatalf("step %d: %v -> %v is not an edge", i, prev, cur)
		}
		prev = cur
	}
}

func TestWalkerSmallGraphStaysInRange(t *testing.T) {
	g, err := expander.New(17)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(newBits(3), Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		w.Next()
		p := w.Position()
		if p.X >= 17 || p.Y >= 17 {
			t.Fatalf("position %v escaped Z_17 × Z_17", p)
		}
	}
}

func TestWalkerFill(t *testing.T) {
	w1, _ := NewWalker(newBits(8), Config{})
	w2, _ := NewWalker(newBits(8), Config{})
	buf := make([]uint64, 64)
	w1.Fill(buf)
	for i, v := range buf {
		if want := w2.Next(); v != want {
			t.Fatalf("Fill[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestWalkerUint64IsNext(t *testing.T) {
	w1, _ := NewWalker(newBits(4), Config{})
	w2, _ := NewWalker(newBits(4), Config{})
	for i := 0; i < 16; i++ {
		if w1.Uint64() != w2.Next() {
			t.Fatal("Uint64 must alias Next")
		}
	}
}

func TestSafeWalkerConcurrentUse(t *testing.T) {
	w, _ := NewWalker(newBits(10), Config{})
	sw := NewSafeWalker(w)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	out := make([][]uint64, goroutines)
	for i := 0; i < goroutines; i++ {
		out[i] = make([]uint64, 0, perG)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				out[i] = append(out[i], sw.Uint64())
			}
		}(i)
	}
	wg.Wait()
	// All values across goroutines must be distinct with high
	// probability (64-bit outputs, 4000 draws).
	seen := make(map[uint64]bool, goroutines*perG)
	dups := 0
	for _, s := range out {
		for _, v := range s {
			if seen[v] {
				dups++
			}
			seen[v] = true
		}
	}
	if dups > 0 {
		t.Errorf("%d duplicate outputs under concurrency", dups)
	}
	if w.Generated() != goroutines*perG {
		t.Errorf("Generated = %d, want %d", w.Generated(), goroutines*perG)
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(0, Config{}, func(int) *rng.BitReader { return newBits(0) }); err == nil {
		t.Error("zero-size pool should fail")
	}
	if _, err := NewPool(2, Config{}, nil); err == nil {
		t.Error("nil factory should fail")
	}
}

func TestPoolFillDeterministicAndParallel(t *testing.T) {
	mk := func() (*Pool, error) {
		return NewPool(4, Config{}, func(i int) *rng.BitReader {
			return newBits(uint64(1000 + i))
		})
	}
	p1, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	a := make([]uint64, 1003) // deliberately not divisible by 4
	b := make([]uint64, 1003)
	p1.Fill(a)
	p2.Fill(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pool fill not reproducible at %d", i)
		}
	}
	if p1.Size() != 4 {
		t.Errorf("Size = %d", p1.Size())
	}
	if p1.Generated() != 1003 {
		t.Errorf("Generated = %d, want 1003", p1.Generated())
	}
	if p1.Walker(0) == nil || p1.Walker(3) == nil {
		t.Error("walker accessor broken")
	}
}

func TestPoolFillEmptyAndSingle(t *testing.T) {
	p, _ := NewPool(1, Config{}, func(i int) *rng.BitReader { return newBits(uint64(i)) })
	p.Fill(nil) // must not panic
	buf := make([]uint64, 3)
	p.Fill(buf)
	if buf[0] == 0 && buf[1] == 0 && buf[2] == 0 {
		t.Error("single-walker fill produced all zeros")
	}
}

func TestPoolWalkersIndependent(t *testing.T) {
	p, _ := NewPool(3, Config{}, func(i int) *rng.BitReader { return newBits(uint64(i) * 7) })
	a := p.Walker(0).Next()
	b := p.Walker(1).Next()
	c := p.Walker(2).Next()
	if a == b || b == c || a == c {
		t.Error("walkers with distinct feeds should produce distinct values")
	}
}

func TestOutputBitBalance(t *testing.T) {
	// Quick quality smoke: bit density of the output stream.
	w, _ := NewWalker(newBits(123), Config{})
	ones := 0
	const n = 2048
	for i := 0; i < n; i++ {
		v := w.Next()
		for ; v != 0; v &= v - 1 {
			ones++
		}
	}
	density := float64(ones) / (n * 64)
	if density < 0.48 || density > 0.52 {
		t.Errorf("output bit density %.4f far from 0.5", density)
	}
}

func TestOutputsUniqueProperty(t *testing.T) {
	// Property: short output prefixes from different seeds never
	// collide (they are positions on a 2^64-vertex graph reached
	// through independent walks).
	f := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		w1, err1 := NewWalker(newBits(s1), Config{})
		w2, err2 := NewWalker(newBits(s2), Config{})
		if err1 != nil || err2 != nil {
			return false
		}
		return w1.Next() != w2.Next()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShortWalkAblationChangesStream(t *testing.T) {
	// WalkLen is a real knob: l=1 and l=64 streams must differ from
	// the first output even with identical feeds.
	w1, _ := NewWalker(newBits(6), Config{WalkLen: 1})
	w64, _ := NewWalker(newBits(6), Config{WalkLen: 64})
	if w1.Next() == w64.Next() {
		t.Error("walk length had no effect on the stream")
	}
}
