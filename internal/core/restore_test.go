package core

import (
	"testing"

	"repro/internal/expander"
)

func TestRestoreWalkerResumesStream(t *testing.T) {
	w, err := NewWalker(newBits(55), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ {
		w.Next()
	}
	// Checkpoint by hand: position + count + the reader (shared —
	// restoration uses the same reader object here, which is exactly
	// the in-process resume case).
	pos := w.Position()
	count := w.Generated()
	r, err := RestoreWalker(w.Bits(), w.Config(), pos, count)
	if err != nil {
		t.Fatal(err)
	}
	if r.Generated() != count || r.Position() != pos {
		t.Fatal("restored walker state mismatch")
	}
	// Both walkers share the reader, so drawing from the restored
	// one continues the original stream exactly where it stopped.
	v := r.Next()
	if v != r.Position().ID() {
		t.Error("restored walker output inconsistent with position")
	}
	if r.Generated() != count+1 {
		t.Error("restored walker count did not advance")
	}
}

func TestRestoreWalkerValidation(t *testing.T) {
	if _, err := RestoreWalker(nil, Config{}, expander.Vertex{}, 0); err == nil {
		t.Error("nil bits should fail")
	}
	if _, err := RestoreWalker(newBits(1), Config{WalkLen: -1}, expander.Vertex{}, 0); err == nil {
		t.Error("bad config should fail")
	}
}

func TestSkipEqualsDiscardedNext(t *testing.T) {
	w1, _ := NewWalker(newBits(66), Config{})
	w2, _ := NewWalker(newBits(66), Config{})
	w1.Skip(29)
	for i := 0; i < 29; i++ {
		w2.Next()
	}
	if w1.Generated() != w2.Generated() {
		t.Fatalf("counts diverge: %d vs %d", w1.Generated(), w2.Generated())
	}
	for i := 0; i < 10; i++ {
		if w1.Next() != w2.Next() {
			t.Fatal("Skip diverged from discarded draws")
		}
	}
}
