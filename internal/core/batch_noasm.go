//go:build !amd64

package core

// Non-amd64 builds use the four-lane register kernel (chunk21x4)
// only; the eight-wide vector path is never selected.
const haveStep8 = false

func step21x8(x, y *[8]uint32, w *[8]uint64) {
	panic("core: step21x8 without vector support")
}

func step21x16(x, y *[16]uint32, w *[16]uint64) {
	panic("core: step21x16 without vector support")
}
