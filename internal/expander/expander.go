// Package expander implements the Gabber–Galil expander graph that
// the hybrid PRNG walks on, both at full production size
// (m = 2^32, i.e. 2^64 vertices per side — the paper's "n = 2^65
// nodes" bipartite graph) and at arbitrary small sizes for analysis
// (mixing-time and expansion measurements).
//
// The graph is defined on vertex set Z_m × Z_m. The seven neighbours
// of (x, y) are
//
//	(x, y), (x, 2x+y), (x, 2x+y+1), (x, 2x+y+2),
//	(x+2y, y), (x+2y+1, y), (x+2y+2, y)
//
// with all arithmetic modulo m (Gabber & Galil, FOCS 1979). The edge
// expansion of the family is at least (2 − √3)/2. Neighbour 0 is the
// identity, so the natural random walk is lazy, hence aperiodic.
package expander

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Degree is the regularity of the Gabber–Galil construction.
const Degree = 7

// Vertex is a point of Z_m × Z_m. At full size (m = 2^32) the 64-bit
// vertex id — X in the high word, Y in the low word — is the random
// number the PRNG emits.
type Vertex struct {
	X, Y uint32
}

// ID packs the vertex into its 64-bit identifier.
func (v Vertex) ID() uint64 { return uint64(v.X)<<32 | uint64(v.Y) }

// VertexFromID unpacks a 64-bit identifier.
func VertexFromID(id uint64) Vertex {
	return Vertex{X: uint32(id >> 32), Y: uint32(id)}
}

// NeighborFull returns the k-th neighbour (0 ≤ k < 7) of v in the
// full-size graph, where m = 2^32 and the modular arithmetic is the
// natural uint32 wraparound. This is the hot path of the generator.
func NeighborFull(v Vertex, k int) Vertex {
	switch k {
	case 0:
		return v
	case 1:
		return Vertex{v.X, 2*v.X + v.Y}
	case 2:
		return Vertex{v.X, 2*v.X + v.Y + 1}
	case 3:
		return Vertex{v.X, 2*v.X + v.Y + 2}
	case 4:
		return Vertex{v.X + 2*v.Y, v.Y}
	case 5:
		return Vertex{v.X + 2*v.Y + 1, v.Y}
	case 6:
		return Vertex{v.X + 2*v.Y + 2, v.Y}
	default:
		panic(fmt.Sprintf("expander: neighbour index %d out of [0,7)", k))
	}
}

// Graph is a Gabber–Galil expander over Z_m × Z_m. The zero value is
// not usable; construct with New or Full.
type Graph struct {
	m    uint64 // side modulus; 1<<32 means the full graph
	full bool
}

// Full returns the production graph with m = 2^32 (2^64 vertex
// labels, the paper's n = 2^65-node bipartite double cover).
func Full() *Graph { return &Graph{m: 1 << 32, full: true} }

// New returns a graph over Z_m × Z_m for 2 ≤ m ≤ 2^16; small graphs
// are used by the analysis and test code. Use Full for the
// production size.
func New(m uint32) (*Graph, error) {
	if m < 2 {
		return nil, fmt.Errorf("expander: m = %d too small", m)
	}
	if m > 1<<16 {
		return nil, fmt.Errorf("expander: m = %d too large for the analysis graph; use Full()", m)
	}
	return &Graph{m: uint64(m)}, nil
}

// M returns the side modulus m.
func (g *Graph) M() uint64 { return g.m }

// NumVertices returns m², the number of vertices on one side of the
// bipartition (the label space of the walk).
func (g *Graph) NumVertices() uint64 {
	if g.full {
		return 0 // 2^64 does not fit; callers use IsFull
	}
	return g.m * g.m
}

// IsFull reports whether this is the production-size graph.
func (g *Graph) IsFull() bool { return g.full }

// Neighbor returns the k-th neighbour (0 ≤ k < 7) of v.
func (g *Graph) Neighbor(v Vertex, k int) Vertex {
	if g.full {
		return NeighborFull(v, k)
	}
	m := g.m
	x, y := uint64(v.X)%m, uint64(v.Y)%m
	var nx, ny uint64
	switch k {
	case 0:
		nx, ny = x, y
	case 1:
		nx, ny = x, (2*x+y)%m
	case 2:
		nx, ny = x, (2*x+y+1)%m
	case 3:
		nx, ny = x, (2*x+y+2)%m
	case 4:
		nx, ny = (x+2*y)%m, y
	case 5:
		nx, ny = (x+2*y+1)%m, y
	case 6:
		nx, ny = (x+2*y+2)%m, y
	default:
		panic(fmt.Sprintf("expander: neighbour index %d out of [0,7)", k))
	}
	return Vertex{uint32(nx), uint32(ny)}
}

// Neighbors appends the seven neighbours of v to dst and returns it.
func (g *Graph) Neighbors(v Vertex, dst []Vertex) []Vertex {
	for k := 0; k < Degree; k++ {
		dst = append(dst, g.Neighbor(v, k))
	}
	return dst
}

// IsNeighbor reports whether u appears in v's neighbour list (the
// forward maps; the undirected graph also contains the reversed
// edges).
func (g *Graph) IsNeighbor(v, u Vertex) bool {
	for k := 0; k < Degree; k++ {
		if g.Neighbor(v, k) == u {
			return true
		}
	}
	return false
}

// index returns the dense index of v for small graphs.
func (g *Graph) index(v Vertex) uint64 {
	return (uint64(v.X)%g.m)*g.m + uint64(v.Y)%g.m
}

// vertexAt inverts index.
func (g *Graph) vertexAt(i uint64) Vertex {
	return Vertex{uint32(i / g.m), uint32(i % g.m)}
}

// Step advances a walk at v by one step using the low 3 bits of b.
// Values 0–6 select the corresponding neighbour; the value 7 — which
// a raw 3-bit read produces with probability 1/8 — is mapped to the
// identity neighbour 0, doubling the weight of the self-loop. The
// resulting chain is lazy and doubly stochastic (every neighbour map
// is a bijection of Z_m × Z_m), so the uniform distribution remains
// stationary and the walk stays rapidly mixing; see the package
// tests for the measured total-variation decay.
func (g *Graph) Step(v Vertex, b uint64) Vertex {
	k := int(b & 7)
	if k == 7 {
		k = 0
	}
	return g.Neighbor(v, k)
}

// StepFull is the allocation-free fast path of Step for the
// production graph.
func StepFull(v Vertex, b uint64) Vertex {
	k := int(b & 7)
	if k == 7 {
		k = 0
	}
	return NeighborFull(v, k)
}

// Walk performs an l-step random walk from v, drawing 3 bits per
// step from bits, and returns the endpoint.
func (g *Graph) Walk(v Vertex, l int, bits *rng.BitReader) Vertex {
	for i := 0; i < l; i++ {
		v = g.Step(v, bits.Bits(3))
	}
	return v
}

// --- analysis on small graphs --------------------------------------

// WalkDistribution starts a probability mass of 1 at start, pushes
// it through `steps` steps of the lazy walk (the 8-outcome step used
// by the generator, with outcome 7 folded into the self-loop) and
// returns the resulting distribution indexed by dense vertex index.
// Only valid for small graphs.
func (g *Graph) WalkDistribution(start Vertex, steps int) ([]float64, error) {
	if g.full {
		return nil, fmt.Errorf("expander: WalkDistribution needs a small graph")
	}
	n := g.NumVertices()
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[g.index(start)] = 1
	// Step weights: neighbour 0 gets 2/8 (b ∈ {0,7}), others 1/8.
	for s := 0; s < steps; s++ {
		for i := range next {
			next[i] = 0
		}
		for i, p := range cur {
			if p == 0 {
				continue
			}
			v := g.vertexAt(uint64(i))
			next[g.index(g.Neighbor(v, 0))] += p * 2 / 8
			for k := 1; k < Degree; k++ {
				next[g.index(g.Neighbor(v, k))] += p / 8
			}
		}
		cur, next = next, cur
	}
	return cur, nil
}

// TotalVariationFromUniform returns ½·Σ|p_i − 1/n|.
func TotalVariationFromUniform(p []float64) float64 {
	n := float64(len(p))
	var tv float64
	for _, pi := range p {
		tv += math.Abs(pi - 1/n)
	}
	return tv / 2
}

// MixingTV returns the total-variation distance from uniform of the
// walk distribution after `steps` steps from the worst of the given
// start vertices.
func (g *Graph) MixingTV(steps int, starts ...Vertex) (float64, error) {
	if len(starts) == 0 {
		starts = []Vertex{{0, 0}}
	}
	worst := 0.0
	for _, s := range starts {
		p, err := g.WalkDistribution(s, steps)
		if err != nil {
			return 0, err
		}
		if tv := TotalVariationFromUniform(p); tv > worst {
			worst = tv
		}
	}
	return worst, nil
}

// SampledEdgeExpansion estimates the edge expansion α(G) of the
// undirected graph by sampling random vertex subsets of size ≤ n/2
// and returning the smallest |∂U| / |U| observed. The result is an
// upper bound on the true α; the Gabber–Galil bound guarantees
// α ≥ (2 − √3)/2 ≈ 0.134 in the limit, so the sampled value should
// stay comfortably above that on healthy constructions. Only valid
// for small graphs.
func (g *Graph) SampledEdgeExpansion(trials int, maxSubset int, src rng.Source) (float64, error) {
	if g.full {
		return 0, fmt.Errorf("expander: SampledEdgeExpansion needs a small graph")
	}
	n := g.NumVertices()
	if maxSubset <= 0 || uint64(maxSubset) > n/2 {
		maxSubset = int(n / 2)
	}
	best := math.Inf(1)
	inU := make([]bool, n)
	for t := 0; t < trials; t++ {
		size := int(rng.Uint64n(src, uint64(maxSubset))) + 1
		for i := range inU {
			inU[i] = false
		}
		chosen := make([]uint64, 0, size)
		for len(chosen) < size {
			i := rng.Uint64n(src, n)
			if !inU[i] {
				inU[i] = true
				chosen = append(chosen, i)
			}
		}
		// Count undirected boundary edges: for u in U, edges (u, w)
		// with w ∉ U, counting both forward maps from u and forward
		// maps from w into u.
		cut := 0
		for _, i := range chosen {
			v := g.vertexAt(i)
			for k := 1; k < Degree; k++ { // skip the self-loop
				w := g.Neighbor(v, k)
				if !inU[g.index(w)] {
					cut++
				}
			}
		}
		// Edges from outside into U (the reverse direction of the
		// forward maps).
		for i := uint64(0); i < n; i++ {
			if inU[i] {
				continue
			}
			v := g.vertexAt(i)
			for k := 1; k < Degree; k++ {
				w := g.Neighbor(v, k)
				if inU[g.index(w)] {
					cut++
				}
			}
		}
		if ratio := float64(cut) / float64(size); ratio < best {
			best = ratio
		}
	}
	return best, nil
}

// GabberGalilBound is the proven edge-expansion lower bound
// (2 − √3)/2 of the family.
func GabberGalilBound() float64 { return (2 - math.Sqrt(3)) / 2 }
