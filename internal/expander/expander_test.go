package expander

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/baselines"
	"repro/internal/rng"
)

func TestVertexIDRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		v := Vertex{x, y}
		return VertexFromID(v.ID()) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighborFullDefinition(t *testing.T) {
	v := Vertex{X: 10, Y: 20}
	want := []Vertex{
		{10, 20}, // identity
		{10, 40}, // (x, 2x+y)
		{10, 41}, // (x, 2x+y+1)
		{10, 42}, // (x, 2x+y+2)
		{50, 20}, // (x+2y, y)
		{51, 20}, // (x+2y+1, y)
		{52, 20}, // (x+2y+2, y)
	}
	for k, w := range want {
		if got := NeighborFull(v, k); got != w {
			t.Errorf("neighbour %d = %v, want %v", k, got, w)
		}
	}
}

func TestNeighborFullWraparound(t *testing.T) {
	v := Vertex{X: math.MaxUint32, Y: math.MaxUint32}
	// 2x+y mod 2^32 = 2(2^32-1) + (2^32-1) = 3·2^32 - 3 ≡ -3.
	if got := NeighborFull(v, 1); got.Y != math.MaxUint32-2 {
		t.Errorf("wraparound neighbour 1 Y = %d, want %d", got.Y, uint32(math.MaxUint32-2))
	}
	if got := NeighborFull(v, 6); got.X != math.MaxUint32 { // x+2y+2 ≡ -1-2+2 = -1
		t.Errorf("wraparound neighbour 6 X = %d, want %d", got.X, uint32(math.MaxUint32))
	}
}

func TestNeighborPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NeighborFull(v, 7) should panic")
		}
	}()
	NeighborFull(Vertex{}, 7)
}

func TestSmallGraphMatchesFullDefinitionModulo(t *testing.T) {
	g, err := New(97)
	if err != nil {
		t.Fatal(err)
	}
	v := Vertex{X: 95, Y: 96}
	for k := 0; k < Degree; k++ {
		got := g.Neighbor(v, k)
		full := NeighborFull(v, k)
		if uint64(got.X) != uint64(full.X)%97 || uint64(got.Y) != uint64(full.Y)%97 {
			t.Errorf("neighbour %d = %v, want full-%v mod 97", k, got, full)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("m=1 should fail")
	}
	if _, err := New(1 << 17); err == nil {
		t.Error("huge m should fail (use Full)")
	}
	g, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 256 {
		t.Errorf("NumVertices = %d, want 256", g.NumVertices())
	}
	if g.IsFull() {
		t.Error("small graph must not report full")
	}
	if !Full().IsFull() {
		t.Error("Full() must report full")
	}
}

func TestNeighborMapsAreBijections(t *testing.T) {
	// Each forward map σ_k must be a permutation of Z_m × Z_m —
	// this is what makes the walk doubly stochastic.
	g, err := New(31)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	for k := 0; k < Degree; k++ {
		seen := make([]bool, n)
		for i := uint64(0); i < n; i++ {
			w := g.Neighbor(g.vertexAt(i), k)
			idx := g.index(w)
			if seen[idx] {
				t.Fatalf("map %d is not injective at image %v", k, w)
			}
			seen[idx] = true
		}
	}
}

func TestIsNeighbor(t *testing.T) {
	g := Full()
	v := Vertex{123, 456}
	for k := 0; k < Degree; k++ {
		if !g.IsNeighbor(v, g.Neighbor(v, k)) {
			t.Errorf("neighbour %d not recognised", k)
		}
	}
	if g.IsNeighbor(v, Vertex{999999, 999999}) {
		t.Error("non-neighbour recognised as neighbour")
	}
}

func TestNeighborsList(t *testing.T) {
	g := Full()
	ns := g.Neighbors(Vertex{1, 2}, nil)
	if len(ns) != Degree {
		t.Fatalf("got %d neighbours, want %d", len(ns), Degree)
	}
	for k, n := range ns {
		if n != g.Neighbor(Vertex{1, 2}, k) {
			t.Errorf("Neighbors[%d] mismatch", k)
		}
	}
}

func TestStepFoldsSevenToSelfLoop(t *testing.T) {
	g := Full()
	v := Vertex{77, 88}
	if g.Step(v, 7) != v {
		t.Error("step value 7 must be the self-loop")
	}
	if StepFull(v, 7) != v {
		t.Error("StepFull value 7 must be the self-loop")
	}
	if g.Step(v, 15) != v { // only low 3 bits matter
		t.Error("step must mask to 3 bits")
	}
	for b := uint64(0); b < 7; b++ {
		if g.Step(v, b) != g.Neighbor(v, int(b)) {
			t.Errorf("step %d != neighbour %d", b, b)
		}
	}
	if StepFull(v, 3) != NeighborFull(v, 3) {
		t.Error("StepFull disagrees with NeighborFull")
	}
}

func TestWalkDeterministicGivenBits(t *testing.T) {
	g := Full()
	src1 := baselines.NewSplitMix64(11)
	src2 := baselines.NewSplitMix64(11)
	end1 := g.Walk(Vertex{5, 6}, 64, rng.NewBitReader(src1))
	end2 := g.Walk(Vertex{5, 6}, 64, rng.NewBitReader(src2))
	if end1 != end2 {
		t.Error("walk with identical bits must be deterministic")
	}
	src3 := baselines.NewSplitMix64(12)
	end3 := g.Walk(Vertex{5, 6}, 64, rng.NewBitReader(src3))
	if end1 == end3 {
		t.Error("walks with different bits should (generically) diverge")
	}
}

func TestWalkDistributionIsStochastic(t *testing.T) {
	g, _ := New(13)
	p, err := g.WalkDistribution(Vertex{3, 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, pi := range p {
		if pi < 0 {
			t.Fatal("negative probability")
		}
		sum += pi
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution sums to %g", sum)
	}
}

func TestWalkMixesRapidly(t *testing.T) {
	// The heart of the construction: total-variation distance to
	// uniform must decay geometrically. On a 64×64 torus-expander
	// (4096 states) a 64-step walk must be essentially uniform —
	// this is exactly why the paper uses walk length 64.
	g, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	starts := []Vertex{{0, 0}, {1, 0}, {63, 63}, {31, 7}}
	tv16, err := g.MixingTV(16, starts...)
	if err != nil {
		t.Fatal(err)
	}
	tv64, err := g.MixingTV(64, starts...)
	if err != nil {
		t.Fatal(err)
	}
	if tv64 > 1e-3 {
		t.Errorf("TV after 64 steps = %g, want < 1e-3", tv64)
	}
	if tv64 > tv16/4 && tv16 > 1e-6 {
		t.Errorf("mixing not decaying: TV(16)=%g TV(64)=%g", tv16, tv64)
	}
}

func TestMixingBeatsNonExpanderBaseline(t *testing.T) {
	// Ablation guard: the same walk on a cycle-like graph (replace
	// the GG maps by ±1 moves) mixes polynomially, not
	// exponentially. We emulate by comparing GG TV at step 24
	// against the theoretical slow chain bound; concretely the GG
	// TV must already be tiny where a 1-D diffusion over 4096
	// states would still be ≈1.
	g, _ := New(64)
	tv, err := g.MixingTV(24, Vertex{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.05 {
		t.Errorf("GG expander TV after 24 steps = %g, want < 0.05", tv)
	}
}

func TestSampledEdgeExpansion(t *testing.T) {
	g, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	src := baselines.NewSplitMix64(3)
	alpha, err := g.SampledEdgeExpansion(200, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	// Sampled α is an upper bound on the true α, which in turn is
	// ≥ the asymptotic bound. Random subsets are far from optimal
	// cuts, so expect a healthy margin.
	if alpha < GabberGalilBound() {
		t.Errorf("sampled expansion %g below the Gabber–Galil bound %g — construction broken?",
			alpha, GabberGalilBound())
	}
	if _, err := Full().SampledEdgeExpansion(1, 0, src); err == nil {
		t.Error("expansion sampling on the full graph should fail")
	}
	if _, err := Full().WalkDistribution(Vertex{}, 1); err == nil {
		t.Error("walk distribution on the full graph should fail")
	}
}

func TestGabberGalilBoundValue(t *testing.T) {
	if math.Abs(GabberGalilBound()-0.1339745962155614) > 1e-12 {
		t.Errorf("bound = %g", GabberGalilBound())
	}
}

func TestWalkEndpointUniformityChiSquare(t *testing.T) {
	// Empirical mixing on the full graph: many walks from the SAME
	// start with independent bits; bucket endpoints by their top 3
	// bits of X — counts must be flat.
	g := Full()
	src := baselines.NewMT19937_64(9)
	br := rng.NewBitReader(src)
	const walks = 8192
	var counts [8]float64
	for i := 0; i < walks; i++ {
		end := g.Walk(Vertex{42, 43}, 64, br)
		counts[end.X>>29]++
	}
	mean := float64(walks) / 8
	var x2 float64
	for _, c := range counts {
		d := c - mean
		x2 += d * d / mean
	}
	// χ²(7): reject only at an extreme threshold to keep the test
	// deterministic-stable.
	if x2 > 29 { // p < 1e-4
		t.Errorf("endpoint bucket chi-square = %g (counts %v)", x2, counts)
	}
}
