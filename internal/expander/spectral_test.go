package expander

import (
	"math"
	"testing"

	"repro/internal/baselines"
)

func TestWalkOperatorPreservesMass(t *testing.T) {
	g, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	n := int(g.NumVertices())
	src := make([]float64, n)
	dst := make([]float64, n)
	src[37] = 0.25
	src[200] = 0.75
	if err := g.WalkOperator(dst, src); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range dst {
		if p < 0 {
			t.Fatal("negative probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("mass = %g", sum)
	}
}

func TestWalkOperatorMatchesWalkDistribution(t *testing.T) {
	g, _ := New(11)
	n := int(g.NumVertices())
	p0 := make([]float64, n)
	p1 := make([]float64, n)
	start := Vertex{3, 7}
	p0[int(g.index(start))] = 1
	if err := g.WalkOperator(p1, p0); err != nil {
		t.Fatal(err)
	}
	want, err := g.WalkDistribution(start, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(p1[i]-want[i]) > 1e-12 {
			t.Fatalf("operator and distribution disagree at %d: %g vs %g", i, p1[i], want[i])
		}
	}
}

func TestWalkOperatorValidation(t *testing.T) {
	g, _ := New(8)
	if err := g.WalkOperator(make([]float64, 3), make([]float64, 64)); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := Full().WalkOperator(nil, nil); err == nil {
		t.Error("full graph should fail")
	}
}

func TestAdjointIsTranspose(t *testing.T) {
	// ⟨P x, y⟩ must equal ⟨x, Pᵀ y⟩ for random x, y.
	g, _ := New(9)
	n := int(g.NumVertices())
	src := baselines.NewSplitMix64(4)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(src.Uint64()%1000)/500 - 1
		y[i] = float64(src.Uint64()%1000)/500 - 1
	}
	px := make([]float64, n)
	pty := make([]float64, n)
	if err := g.WalkOperator(px, x); err != nil {
		t.Fatal(err)
	}
	g.adjointOperator(pty, y)
	var lhs, rhs float64
	for i := range x {
		lhs += px[i] * y[i]
		rhs += x[i] * pty[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("⟨Px,y⟩ = %g, ⟨x,Pᵀy⟩ = %g", lhs, rhs)
	}
}

func TestSecondSingularValueBoundedAwayFromOne(t *testing.T) {
	// The construction's whole point: σ₂ stays bounded below 1 as m
	// grows (here m = 8, 16, 32).
	for _, m := range []uint32{8, 16, 32} {
		g, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		sigma, err := g.SecondSingularValue(80, baselines.NewSplitMix64(uint64(m)))
		if err != nil {
			t.Fatal(err)
		}
		if sigma <= 0 || sigma >= 1 {
			t.Fatalf("m=%d: σ₂ = %g out of (0, 1)", m, sigma)
		}
		if sigma > 0.995 {
			t.Errorf("m=%d: σ₂ = %g too close to 1 — not expanding", m, sigma)
		}
		t.Logf("m=%d: σ₂ ≈ %.4f", m, sigma)
	}
}

func TestSecondSingularValuePredictsMixing(t *testing.T) {
	// TV after t steps ≲ σ₂ᵗ · √n: check the walk is at least as
	// fast as the spectral bound within slack.
	g, _ := New(16)
	sigma, err := g.SecondSingularValue(80, baselines.NewSplitMix64(1))
	if err != nil {
		t.Fatal(err)
	}
	tv, err := g.MixingTV(32, Vertex{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	bound := math.Pow(sigma, 32) * math.Sqrt(float64(g.NumVertices()))
	if tv > bound*10 { // slack for the non-reversible operator
		t.Errorf("TV(32) = %g exceeds spectral bound %g × 10", tv, bound)
	}
}

func TestSecondSingularValueValidation(t *testing.T) {
	if _, err := Full().SecondSingularValue(10, baselines.NewSplitMix64(1)); err == nil {
		t.Error("full graph should fail")
	}
}

func TestEstimateDiameterLogarithmic(t *testing.T) {
	// Expander diameter is O(log n); for m = 64 (4096 vertices,
	// log₂ n = 12) the eccentricities should be well below, say, 24,
	// and grow very slowly with m.
	d16 := diameterOf(t, 16)
	d64 := diameterOf(t, 64)
	if d64 > 24 {
		t.Errorf("diameter(m=64) = %d, too large for an expander", d64)
	}
	if d64 > 3*d16 {
		t.Errorf("diameter grew too fast: %d → %d for 16× the vertices", d16, d64)
	}
	t.Logf("diameter lower bounds: m=16 → %d, m=64 → %d", d16, d64)
}

func diameterOf(t *testing.T, m uint32) int {
	t.Helper()
	g, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.EstimateDiameter([]Vertex{{0, 0}, {m - 1, m / 2}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEstimateDiameterValidation(t *testing.T) {
	if _, err := Full().EstimateDiameter(nil); err == nil {
		t.Error("full graph should fail")
	}
}
