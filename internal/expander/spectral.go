package expander

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// WalkOperator applies one step of the lazy walk to a distribution
// (dense, by vertex index) and writes the result into dst. Both
// slices must have length NumVertices. Only valid for small graphs.
func (g *Graph) WalkOperator(dst, src []float64) error {
	if g.full {
		return fmt.Errorf("expander: WalkOperator needs a small graph")
	}
	n := g.NumVertices()
	if uint64(len(dst)) != n || uint64(len(src)) != n {
		return fmt.Errorf("expander: WalkOperator slice lengths %d/%d, want %d", len(dst), len(src), n)
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, p := range src {
		if p == 0 {
			continue
		}
		v := g.vertexAt(uint64(i))
		dst[g.index(g.Neighbor(v, 0))] += p * 2 / 8
		for k := 1; k < Degree; k++ {
			dst[g.index(g.Neighbor(v, k))] += p / 8
		}
	}
	return nil
}

// adjointOperator applies the adjoint (transpose) of the walk
// operator: mass flows backwards along the maps.
func (g *Graph) adjointOperator(dst, src []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for i := range src {
		v := g.vertexAt(uint64(i))
		// dst[i] = Σ_j P[i→j] src[j]  (adjoint accumulates from the
		// images of i).
		acc := src[g.index(g.Neighbor(v, 0))] * 2 / 8
		for k := 1; k < Degree; k++ {
			acc += src[g.index(g.Neighbor(v, k))] / 8
		}
		dst[i] = acc
	}
}

// SecondSingularValue estimates σ₂(P), the second-largest singular
// value of the lazy walk operator, by power iteration on P·Pᵀ
// restricted to the space orthogonal to the uniform vector. The
// mixing rate of the walk is bounded by σ₂ per step: after t steps
// the total-variation distance decays like σ₂ᵗ·√n. For a healthy
// Gabber–Galil construction σ₂ is bounded away from 1 uniformly in
// m. Only valid for small graphs.
func (g *Graph) SecondSingularValue(iterations int, src rng.Source) (float64, error) {
	if g.full {
		return 0, fmt.Errorf("expander: SecondSingularValue needs a small graph")
	}
	if iterations < 1 {
		iterations = 50
	}
	n := int(g.NumVertices())
	x := make([]float64, n)
	tmp := make([]float64, n)
	tmp2 := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64(src) - 0.5
	}
	deflate := func(v []float64) {
		var mean float64
		for _, vi := range v {
			mean += vi
		}
		mean /= float64(n)
		for i := range v {
			v[i] -= mean
		}
	}
	norm := func(v []float64) float64 {
		var s float64
		for _, vi := range v {
			s += vi * vi
		}
		return math.Sqrt(s)
	}
	deflate(x)
	if norm(x) == 0 {
		x[0], x[1] = 1, -1
	}
	for it := 0; it < iterations; it++ {
		// z = (PᵀP) x; σ₂² is the top eigenvalue of PᵀP on the
		// deflated (mean-zero) space.
		if err := g.WalkOperator(tmp, x); err != nil {
			return 0, err
		}
		g.adjointOperator(tmp2, tmp)
		deflate(tmp2)
		nz := norm(tmp2)
		if nz == 0 {
			return 0, nil
		}
		for i := range x {
			x[i] = tmp2[i] / nz
		}
	}
	// Rayleigh quotient: σ₂² = ⟨x, PᵀP x⟩ with ‖x‖ = 1.
	if err := g.WalkOperator(tmp, x); err != nil {
		return 0, err
	}
	var num float64
	for _, v := range tmp {
		num += v * v
	}
	return math.Sqrt(num), nil
}

// EstimateDiameter estimates the diameter of the (undirected) graph
// by BFS from a handful of vertices, returning the largest
// eccentricity found — a lower bound on the true diameter. For an
// expander the diameter is O(log n). Only valid for small graphs.
func (g *Graph) EstimateDiameter(starts []Vertex) (int, error) {
	if g.full {
		return 0, fmt.Errorf("expander: EstimateDiameter needs a small graph")
	}
	if len(starts) == 0 {
		starts = []Vertex{{0, 0}}
	}
	n := g.NumVertices()
	// Undirected adjacency: forward maps plus their reverses.
	// Reverse edges found by scanning once (n·Degree edges).
	radj := make([][]uint32, n)
	for i := uint64(0); i < n; i++ {
		v := g.vertexAt(i)
		for k := 1; k < Degree; k++ {
			j := g.index(g.Neighbor(v, k))
			radj[j] = append(radj[j], uint32(i))
		}
	}
	best := 0
	dist := make([]int32, n)
	queue := make([]uint32, 0, n)
	for _, s := range starts {
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		si := uint32(g.index(s))
		dist[si] = 0
		queue = append(queue, si)
		ecc := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := dist[u]
			if int(du) > ecc {
				ecc = int(du)
			}
			v := g.vertexAt(uint64(u))
			for k := 1; k < Degree; k++ {
				w := uint32(g.index(g.Neighbor(v, k)))
				if dist[w] < 0 {
					dist[w] = du + 1
					queue = append(queue, w)
				}
			}
			for _, w := range radj[u] {
				if dist[w] < 0 {
					dist[w] = du + 1
					queue = append(queue, w)
				}
			}
		}
		if ecc > best {
			best = ecc
		}
		// Disconnected graphs would leave unvisited vertices; the
		// Gabber–Galil family is connected, but report it if broken.
		for _, d := range dist {
			if d < 0 {
				return 0, fmt.Errorf("expander: graph is disconnected")
			}
		}
	}
	return best, nil
}
