package crossstream

import (
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/rng"
)

// fixtureSet builds n splitmix-backed streams with decorrelated
// seeds — the healthy ensemble every negative fixture perturbs.
func fixtureSet(n int, seed uint64) StreamSet {
	srcs := make([]rng.Source, n)
	for i := range srcs {
		srcs[i] = baselines.NewSplitMix64(baselines.Mix64(seed + uint64(i)*0x9E3779B97F4A7C15))
	}
	return FromSources("fixture", srcs)
}

// unitConfig is a small, fast profile for fixture tests: prefix
// checks only (the interleaved batteries get their own tests).
func unitConfig() Config {
	return Config{
		Profile:     "unit",
		Prefix:      256,
		CorrWords:   192,
		Lags:        []int{0, 1, 2},
		AliasWindow: 32,
		AliasStride: 16,
	}
}

// sliceSource replays a fixed word slice (and falls back to a
// generator when exhausted, so battery over-reads never panic).
type sliceSource struct {
	words []uint64
	i     int
	tail  rng.Source
}

func (s *sliceSource) Uint64() uint64 {
	if s.i < len(s.words) {
		v := s.words[s.i]
		s.i++
		return v
	}
	return s.tail.Uint64()
}

func newSliceSource(words []uint64, tailSeed uint64) *sliceSource {
	return &sliceSource{words: words, tail: baselines.NewSplitMix64(tailSeed)}
}

func findCheck(t *testing.T, r *Report, name string) Check {
	t.Helper()
	for _, c := range r.Checks {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("report has no check %q: %+v", name, r.Checks)
	return Check{}
}

func TestCrossStreamCleanEnsemblePasses(t *testing.T) {
	r, err := Run(fixtureSet(64, 1), unitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Findings) != 0 {
		t.Fatalf("clean ensemble produced findings: %v", r.Findings)
	}
	if r.Passed != r.Total || r.Total < 6 {
		t.Fatalf("passed %d of %d checks", r.Passed, r.Total)
	}
}

// TestCrossStreamCatchesDuplicateSeeds is the injected counter-reuse
// bug fixture from the acceptance criteria: two workers seeded
// identically must be caught by the aliasing test, by name.
func TestCrossStreamCatchesDuplicateSeeds(t *testing.T) {
	set := fixtureSet(64, 2)
	// Worker 41 reuses worker 7's seed — byte-identical streams.
	w := uint64(7)
	set.Sources[41] = baselines.NewSplitMix64(baselines.Mix64(2 + w*0x9E3779B97F4A7C15))
	r, err := Run(set, unitConfig())
	if err != nil {
		t.Fatal(err)
	}
	alias := findCheck(t, r, "prefix-aliasing")
	if alias.Pass {
		t.Fatalf("duplicate-seeded streams not flagged: %s", alias.Detail)
	}
	if !strings.Contains(alias.Detail, "fixture[7]") || !strings.Contains(alias.Detail, "fixture[41]") {
		t.Errorf("finding does not name the aliased streams: %s", alias.Detail)
	}
	// The identical pair also saturates the correlation extreme.
	if corr := findCheck(t, r, "pairwise-correlation-extreme"); corr.Pass {
		t.Errorf("identical streams passed correlation: %s", corr.Detail)
	}
}

// TestCrossStreamCatchesOffsetCopy: one stream is another advanced
// by a fixed word count — the "two walkers share one counter at an
// offset" failure. The windowed fingerprints must land on it.
func TestCrossStreamCatchesOffsetCopy(t *testing.T) {
	set := fixtureSet(32, 3)
	base := baselines.NewSplitMix64(12345)
	shared := make([]uint64, 512+32)
	for i := range shared {
		shared[i] = base.Uint64()
	}
	set.Sources[4] = newSliceSource(shared, 90)
	set.Sources[19] = newSliceSource(shared[32:], 91) // same stream, 32 words ahead
	r, err := Run(set, unitConfig())
	if err != nil {
		t.Fatal(err)
	}
	alias := findCheck(t, r, "prefix-aliasing")
	if alias.Pass {
		t.Fatalf("offset stream copy not flagged: %s", alias.Detail)
	}
	if !strings.Contains(alias.Detail, "fixture[4]") || !strings.Contains(alias.Detail, "fixture[19]") {
		t.Errorf("finding does not name the offset-aliased streams: %s", alias.Detail)
	}
}

// TestCrossStreamCatchesLagCorrelation: a stream that is a one-word-
// lagged near-copy (one bit flipped per word, so no window is ever
// byte-identical) must fall to the correlation check, not the
// aliasing one — the two checks cover different failure shapes.
func TestCrossStreamCatchesLagCorrelation(t *testing.T) {
	set := fixtureSet(32, 4)
	base := baselines.NewSplitMix64(777)
	shared := make([]uint64, 512)
	for i := range shared {
		shared[i] = base.Uint64()
	}
	lagged := make([]uint64, len(shared)-1)
	for i := range lagged {
		lagged[i] = shared[i+1] ^ 1 // never identical, massively correlated
	}
	set.Sources[10] = newSliceSource(shared, 92)
	set.Sources[11] = newSliceSource(lagged, 93)
	r, err := Run(set, unitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if alias := findCheck(t, r, "prefix-aliasing"); !alias.Pass {
		t.Errorf("near-copy should not alias byte-identically: %s", alias.Detail)
	}
	corr := findCheck(t, r, "pairwise-correlation-extreme")
	if corr.Pass {
		t.Fatalf("lagged near-copy not flagged by correlation: %s", corr.Detail)
	}
	if !strings.Contains(corr.Detail, "(10, 11)") || !strings.Contains(corr.Detail, "lag 1") {
		t.Errorf("correlation finding does not localise the pair and lag: %s", corr.Detail)
	}
}

// TestCrossStreamCatchesCollapsedFirstOutputs: every stream starting
// from the same first word is the degenerate-initialization
// signature; occupancy and bit-balance both must fire even though no
// full window aliases.
func TestCrossStreamCatchesCollapsedFirstOutputs(t *testing.T) {
	set := fixtureSet(64, 5)
	for i, s := range set.Sources {
		words := make([]uint64, 4)
		words[0] = 0xDEADBEEFCAFE0000 // shared first output
		g := s
		for j := 1; j < len(words); j++ {
			words[j] = g.Uint64()
		}
		set.Sources[i] = &sliceSource{words: words, tail: g}
	}
	r, err := Run(set, unitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if occ := findCheck(t, r, "first-output-occupancy"); occ.Pass {
		t.Errorf("collapsed first outputs passed occupancy: %s", occ.Detail)
	}
	if bal := findCheck(t, r, "first-output-balance"); bal.Pass {
		t.Errorf("collapsed first outputs passed bit balance: %s", bal.Detail)
	}
}

// TestCrossStreamAvalancheCatchesDeadSeedBits: an initialization
// pipeline that ignores the low seed bits produces identical streams
// for adjacent seeds — the avalanche extreme must collapse.
func TestCrossStreamAvalancheCatchesDeadSeedBits(t *testing.T) {
	badInit := func(seed uint64, words int) ([]uint64, error) {
		g := baselines.NewSplitMix64(seed >> 4) // low 4 seed bits dead
		out := make([]uint64, words)
		for i := range out {
			out[i] = g.Uint64()
		}
		return out, nil
	}
	cs, err := Avalanche(AvalancheConfig{Stream: badInit, BaseSeed: 100, Seeds: 32, Words: 64}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if cs[0].Pass {
		t.Fatalf("dead seed bits passed avalanche: %s", cs[0].Detail)
	}

	goodInit := func(seed uint64, words int) ([]uint64, error) {
		g := baselines.NewSplitMix64(baselines.Mix64(seed))
		out := make([]uint64, words)
		for i := range out {
			out[i] = g.Uint64()
		}
		return out, nil
	}
	cs, err = Avalanche(AvalancheConfig{Stream: goodInit, BaseSeed: 100, Seeds: 32, Words: 64}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if !c.Pass {
			t.Errorf("healthy init failed avalanche: %s: %s", c.Name, c.Detail)
		}
	}
}

// TestCrossStreamInterleavedClean: the composite of a healthy
// ensemble must clear both single-stream batteries at the calibrated
// bars.
func TestCrossStreamInterleavedClean(t *testing.T) {
	cfg := unitConfig()
	cfg.DiehardScale = 0.5
	cfg.SmallCrush = true
	r, err := Run(fixtureSet(16, 6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"interleaved-diehard", "interleaved-smallcrush"} {
		if c := findCheck(t, r, name); !c.Pass {
			t.Errorf("%s failed on a clean ensemble: %s", name, c.Detail)
		}
	}
}

func TestCrossStreamConfigValidation(t *testing.T) {
	if _, err := Run(fixtureSet(1, 7), unitConfig()); err == nil {
		t.Error("single-stream battery must be rejected")
	}
	cfg := unitConfig()
	cfg.CorrWords = cfg.Prefix // no room for lags
	if _, err := Run(fixtureSet(4, 7), cfg); err == nil {
		t.Error("correlation window + lag > prefix must be rejected")
	}
	cfg = unitConfig()
	cfg.Lags = []int{-1}
	if _, err := Run(fixtureSet(4, 7), cfg); err == nil {
		t.Error("negative lag must be rejected")
	}
	cfg = unitConfig()
	cfg.AliasWindow = cfg.Prefix + 1
	if _, err := Run(fixtureSet(4, 7), cfg); err == nil {
		t.Error("alias window > prefix must be rejected")
	}
	set := fixtureSet(4, 7)
	set.Names = set.Names[:2]
	if _, err := Run(set, unitConfig()); err == nil {
		t.Error("name/source length mismatch must be rejected")
	}
}

// TestCrossStreamPairSelection pins the sampling contract: full
// enumeration under budget, adjacent pairs always present over
// budget, and determinism.
func TestCrossStreamPairSelection(t *testing.T) {
	if got := len(selectPairs(64, 0, 1)); got != 64*63/2 {
		t.Errorf("full enumeration: %d pairs, want %d", got, 64*63/2)
	}
	ps := selectPairs(100, 500, 42)
	if len(ps) != 500 {
		t.Fatalf("sampled %d pairs, want 500", len(ps))
	}
	have := make(map[[2]int]bool, len(ps))
	for _, p := range ps {
		if p[0] >= p[1] {
			t.Fatalf("unnormalised pair %v", p)
		}
		if have[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		have[p] = true
	}
	for i := 0; i+1 < 100; i++ {
		if !have[[2]int{i, i + 1}] {
			t.Fatalf("adjacent pair (%d, %d) missing from sample", i, i+1)
		}
	}
	ps2 := selectPairs(100, 500, 42)
	for i := range ps {
		if ps[i] != ps2[i] {
			t.Fatal("pair sampling is not deterministic")
		}
	}
}

func TestCrossStreamShortProfileShape(t *testing.T) {
	for _, cfg := range []Config{ShortProfile(), LongProfile()} {
		if err := cfg.validate(256); err != nil {
			t.Errorf("%s profile invalid: %v", cfg.Profile, err)
		}
	}
	if ShortProfile().MaxPairs != 0 {
		t.Error("short profile must correlate every pair")
	}
	if LongProfile().MaxPairs == 0 {
		t.Error("long profile must cap the pair budget")
	}
}
