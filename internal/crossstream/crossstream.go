// Package crossstream is the mass-parallel quality battery: where
// internal/diehard and internal/testu01 judge one stream at a time
// (the paper's Table II/III), this package judges an *ensemble* of
// streams the way the serving stack hands them out — hundreds to
// thousands of concurrent walker streams from Parallel workers, Pool
// shards or per-tenant substreams — and tests *between* the streams,
// because mass-parallel PRNGs fail differently from serial ones:
// through inter-stream correlation and bad initialization, not
// single-stream bias (Passerat-Palmbach et al., "Reliable
// Initialization of GPU-enabled Parallel Stochastic Simulations";
// the Shoverand safe-partitioning discipline).
//
// The battery's checks and the failure mode each one catches:
//
//   - pairwise cross-correlation (correlation.go): bitwise agreement
//     between stream pairs at several word lags — catches shared or
//     lag-shifted feed state, the "all walkers secretly ride one
//     generator" failure.
//   - interleaved composition (interleaved.go): the round-robin
//     composite of all streams fed through the existing DIEHARD and
//     SmallCrush batteries — inter-stream structure becomes serial
//     structure of one stream, where forty years of battery design
//     catch it.
//   - initialization avalanche + first-output balance
//     (initquality.go): nearby seeds must yield ~50% differing bits
//     from the very first output (Algorithm 1's mixing walk is what
//     buys this), and first outputs across the ensemble must be
//     bit-balanced — the classic bad-init signatures.
//   - prefix aliasing + occupancy (aliasing.go): windowed
//     fingerprints over every stream's prefix detect two streams
//     that are equal or offset copies of each other (counter reuse,
//     duplicated seeding), plus a coupon/occupancy test over first
//     outputs.
//
// Every pass/fail tolerance is derived from a false-alarm budget via
// internal/stats (RequiredPasses, BonferroniZ), the same calibration
// discipline quality_long_test.go applies to the single-stream
// batteries — never hardcoded counts.
//
// The package is deliberately generic over []rng.Source so the same
// battery runs against Parallel workers, Pool shards (via
// Pool.ShardFill), restored snapshots, recovered shards and
// synthetic bug fixtures. It reads no clocks and no global
// randomness: a run is a pure function of the streams and the
// config, so CI verdicts are reproducible.
package crossstream

import (
	"fmt"

	"repro/internal/rng"
)

// Check is one battery entry's verdict.
type Check struct {
	// Name identifies the check ("pairwise-correlation-extreme", ...).
	Name string `json:"name"`
	// Detail is a human-readable summary of the statistic and, on
	// failure, the offending streams.
	Detail string `json:"detail"`
	// P is the check's decision p-value where one exists (0 < P ≤ 1);
	// structural checks (exact aliasing) report 0 on failure, 1 on
	// pass.
	P float64 `json:"p"`
	// Pass is the calibrated verdict.
	Pass bool `json:"pass"`
}

// Report is a full battery run: the JSON verdict artifact
// cmd/crossstream emits and CI archives.
type Report struct {
	Name        string   `json:"name"`    // stream-set label ("parallel", "pool", ...)
	Profile     string   `json:"profile"` // "short" / "long" / custom
	Streams     int      `json:"streams"`
	PrefixWords int      `json:"prefix_words"`
	Checks      []Check  `json:"checks"`
	Passed      int      `json:"passed"`
	Total       int      `json:"total"`
	Findings    []string `json:"findings"` // failing checks, one line each
}

func (r *Report) add(cs ...Check) {
	for _, c := range cs {
		r.Checks = append(r.Checks, c)
		r.Total++
		if c.Pass {
			r.Passed++
		} else {
			r.Findings = append(r.Findings, c.Name+": "+c.Detail)
		}
	}
}

func (r *Report) String() string {
	return fmt.Sprintf("crossstream %s[%s]: %d/%d checks passed over %d streams",
		r.Name, r.Profile, r.Passed, r.Total, r.Streams)
}

// StreamSet is the battery input: named, independently drawable
// streams. Sources must be private to the battery for the run's
// duration (the battery draws from them).
type StreamSet struct {
	Name    string
	Names   []string
	Sources []rng.Source
}

// FromSources builds a StreamSet with generated names.
func FromSources(name string, srcs []rng.Source) StreamSet {
	names := make([]string, len(srcs))
	for i := range srcs {
		names[i] = fmt.Sprintf("%s[%d]", name, i)
	}
	return StreamSet{Name: name, Names: names, Sources: srcs}
}

// AvalancheConfig parameterises the nearby-seed initialization test;
// it needs a factory, not spawned streams, because the test's whole
// point is constructing generators from adjacent seeds.
type AvalancheConfig struct {
	// Stream returns the first `words` outputs of a fresh generator
	// built from seed.
	Stream func(seed uint64, words int) ([]uint64, error)
	// BaseSeed is the first seed; Seeds generators are built from
	// BaseSeed, BaseSeed+1, ... BaseSeed+Seeds-1.
	BaseSeed uint64
	Seeds    int
	// Words is the number of first outputs compared per seed pair.
	Words int
}

// Config tunes the battery. The zero value is not runnable; start
// from ShortProfile or LongProfile.
type Config struct {
	// Profile labels the run ("short", "long").
	Profile string
	// Prefix is the number of words drawn per stream for the prefix
	// tests (correlation, aliasing, balance).
	Prefix int
	// CorrWords is how many prefix words enter pairwise correlation
	// (≤ Prefix − max lag).
	CorrWords int
	// Lags are the word offsets at which pairs are correlated; lag 0
	// is the aligned comparison, positive lags are applied in both
	// orientations.
	Lags []int
	// MaxPairs caps the number of stream pairs correlated; 0 means
	// all C(n,2) pairs. When sampling, adjacent pairs (i, i+1) and
	// (i, i+2) — the nearby-seed pairs, where derivation bugs live —
	// are always included.
	MaxPairs int
	// SampleSeed drives the deterministic pair sample.
	SampleSeed uint64
	// AliasWindow/AliasStride parameterise the windowed prefix
	// fingerprints: every AliasWindow-word window at offsets
	// 0, AliasStride, 2·AliasStride, … of every stream is
	// fingerprinted, so an offset copy of a stream is caught even
	// when the streams are misaligned.
	AliasWindow, AliasStride int
	// OccupancyBuckets is the bucket count of the coupon/occupancy
	// test over first outputs (power of two).
	OccupancyBuckets int
	// BalanceWords is how many leading words per stream enter the
	// first-output bit-balance check.
	BalanceWords int
	// Avalanche enables the nearby-seed initialization test when
	// non-nil.
	Avalanche *AvalancheConfig
	// DiehardScale > 0 runs the interleaved composite through the
	// DIEHARD battery at that scale.
	DiehardScale float64
	// SmallCrush runs the interleaved composite through the
	// TestU01-style SmallCrush battery.
	SmallCrush bool
	// Alpha is the family-wise false-alarm budget per check
	// (default 1e-3).
	Alpha float64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 1e-3
	}
	if c.OccupancyBuckets == 0 {
		c.OccupancyBuckets = 64
	}
	if c.BalanceWords == 0 {
		c.BalanceWords = 4
	}
	if c.AliasStride == 0 {
		c.AliasStride = c.AliasWindow
	}
	return c
}

func (c Config) validate(streams int) error {
	if streams < 2 {
		return fmt.Errorf("crossstream: battery needs ≥ 2 streams, got %d", streams)
	}
	if c.Prefix < 1 {
		return fmt.Errorf("crossstream: prefix %d < 1", c.Prefix)
	}
	maxLag := 0
	for _, l := range c.Lags {
		if l < 0 {
			return fmt.Errorf("crossstream: negative lag %d", l)
		}
		if l > maxLag {
			maxLag = l
		}
	}
	if c.CorrWords > 0 && c.CorrWords+maxLag > c.Prefix {
		return fmt.Errorf("crossstream: correlation window %d + max lag %d exceeds prefix %d",
			c.CorrWords, maxLag, c.Prefix)
	}
	if c.AliasWindow > c.Prefix {
		return fmt.Errorf("crossstream: alias window %d exceeds prefix %d", c.AliasWindow, c.Prefix)
	}
	return nil
}

// ShortProfile is the per-PR CI configuration: hundreds of streams,
// every pair correlated, tens of seconds at most on one core.
func ShortProfile() Config {
	return Config{
		Profile:          "short",
		Prefix:           512,
		CorrWords:        448,
		Lags:             []int{0, 1, 2, 8},
		MaxPairs:         0, // all pairs
		AliasWindow:      32,
		AliasStride:      16,
		OccupancyBuckets: 64,
		BalanceWords:     4,
		DiehardScale:     1,
		SmallCrush:       true,
		Alpha:            1e-3,
	}
}

// LongProfile is the scheduled deep run: thousands of streams, a
// sampled pair budget (adjacent pairs always included), longer
// prefixes and a scaled-up DIEHARD pass. Minutes, not seconds.
func LongProfile() Config {
	return Config{
		Profile:          "long",
		Prefix:           4096,
		CorrWords:        1024,
		Lags:             []int{0, 1, 2, 8, 64},
		MaxPairs:         120_000,
		AliasWindow:      32,
		AliasStride:      32,
		OccupancyBuckets: 256,
		BalanceWords:     8,
		DiehardScale:     2,
		SmallCrush:       true,
		Alpha:            1e-3,
	}
}

// Run executes the battery over the stream set. It draws cfg.Prefix
// words from every source for the prefix tests, then (when the
// interleaved batteries are enabled) keeps drawing from the live
// sources round-robin — so the composite battery sees the streams
// exactly where serving traffic would.
func Run(set StreamSet, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(set.Names) != len(set.Sources) {
		return nil, fmt.Errorf("crossstream: %d names for %d sources", len(set.Names), len(set.Sources))
	}
	if err := cfg.validate(len(set.Sources)); err != nil {
		return nil, err
	}
	r := &Report{
		Name:        set.Name,
		Profile:     cfg.Profile,
		Streams:     len(set.Sources),
		PrefixWords: cfg.Prefix,
	}

	prefixes := make([][]uint64, len(set.Sources))
	for i, s := range set.Sources {
		p := make([]uint64, cfg.Prefix)
		for j := range p {
			p[j] = s.Uint64()
		}
		prefixes[i] = p
	}

	r.add(Aliasing(set.Names, prefixes, cfg)...)
	if cfg.CorrWords > 0 {
		r.add(Correlation(prefixes, cfg)...)
	}
	r.add(Balance(prefixes, cfg))
	if cfg.Avalanche != nil {
		cs, err := Avalanche(*cfg.Avalanche, cfg.Alpha)
		if err != nil {
			return nil, err
		}
		r.add(cs...)
	}
	r.add(Interleaved(set, cfg)...)
	return r, nil
}

// mix64 is the SplitMix64 finalizer: the deterministic scrambler
// behind pair sampling and window fingerprints.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ z>>31
}
