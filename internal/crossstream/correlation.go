package crossstream

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/stats"
)

// pairStat is one (pair, lag, orientation) correlation statistic.
type pairStat struct {
	i, j, lag int
	z         float64
}

// Correlation runs the pairwise cross-correlation check: for every
// selected stream pair and every configured word lag, the bitwise
// agreement count between the two prefixes is Binomial(64·w, ½)
// under H0 (independent uniform streams), so its normalised z is
// standard normal. Three aggregate verdicts come out:
//
//   - extreme: no statistic may exceed the Bonferroni threshold for
//     the family size — catches a single aliased or lag-shifted pair;
//   - mean: the ensemble mean of all z's (√m-normalised) must be
//     ordinary — catches weak correlation smeared across the whole
//     ensemble, which no single pair would flag;
//   - uniformity: the mid-p values of all statistics, binned into
//     equiprobable normal bins, must be chi-square flat — catches
//     distributional weirdness short of an extreme.
//
// The mid-p correction (half-weighting the lattice cell) keeps the
// uniformity check honest: agreement counts live on an integer
// lattice, and naive Φ(z) values would fail chi-square on grid
// alignment alone at these sample sizes.
func Correlation(prefixes [][]uint64, cfg Config) []Check {
	n := len(prefixes)
	w := cfg.CorrWords
	pairs := selectPairs(n, cfg.MaxPairs, cfg.SampleSeed)

	const nbins = 20
	var (
		maxStat pairStat
		sumZ    float64
		m       int
		binned  [nbins]float64
	)
	for _, pr := range pairs {
		a, b := prefixes[pr[0]], prefixes[pr[1]]
		for _, lag := range cfg.Lags {
			orientations := [][2][]uint64{{a[:w], b[lag : lag+w]}}
			if lag > 0 {
				orientations = append(orientations, [2][]uint64{a[lag : lag+w], b[:w]})
			}
			for _, o := range orientations {
				z, u := agreementZ(o[0], o[1])
				m++
				sumZ += z
				binned[binOf(u, nbins)]++
				if math.Abs(z) > math.Abs(maxStat.z) {
					maxStat = pairStat{i: pr[0], j: pr[1], lag: lag, z: z}
				}
			}
		}
	}
	if m == 0 {
		return []Check{{Name: "pairwise-correlation", Detail: "no pairs selected", P: 1, Pass: true}}
	}

	var out []Check

	thresh := stats.BonferroniZ(m, cfg.Alpha)
	pAdj := math.Min(1, float64(m)*twoSidedP(maxStat.z))
	out = append(out, Check{
		Name: "pairwise-correlation-extreme",
		Detail: fmt.Sprintf("%d pairs × %d lags (%d stats over %d-word windows): max |z| = %.2f at streams (%d, %d) lag %d, threshold %.2f",
			len(pairs), len(cfg.Lags), m, w, math.Abs(maxStat.z), maxStat.i, maxStat.j, maxStat.lag, thresh),
		P:    pAdj,
		Pass: math.Abs(maxStat.z) <= thresh,
	})

	zMean := sumZ / math.Sqrt(float64(m))
	pMean := twoSidedP(zMean)
	out = append(out, Check{
		Name:   "pairwise-correlation-mean",
		Detail: fmt.Sprintf("ensemble mean correlation: z = %.3f over %d stats", zMean, m),
		P:      pMean,
		Pass:   pMean >= cfg.Alpha,
	})

	mass := latticeBinMass(64*w, nbins)
	expected := make([]float64, nbins)
	for i := range expected {
		expected[i] = float64(m) * mass[i]
	}
	chi, err := stats.ChiSquare(binned[:], expected, 5, 0)
	if err != nil {
		out = append(out, Check{Name: "pairwise-correlation-uniformity",
			Detail: "chi-square: " + err.Error(), Pass: false})
		return out
	}
	pFlat := chi.Survival()
	out = append(out, Check{
		Name:   "pairwise-correlation-uniformity",
		Detail: fmt.Sprintf("mid-p uniformity over %d stats: chi² = %.1f (df %.0f), p = %.4f", m, chi.Statistic, chi.DF, pFlat),
		P:      pFlat,
		Pass:   pFlat >= cfg.Alpha,
	})
	return out
}

// selectPairs returns the pair set: every pair when the budget
// allows, otherwise all adjacent (i, i+1) and (i, i+2) pairs — the
// nearby-seed pairs where derivation bugs cluster — topped up with a
// deterministic uniform sample.
func selectPairs(n, maxPairs int, seed uint64) [][2]int {
	total := n * (n - 1) / 2
	if maxPairs <= 0 || total <= maxPairs {
		out := make([][2]int, 0, total)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				out = append(out, [2]int{i, j})
			}
		}
		return out
	}
	seen := make(map[int]struct{}, maxPairs)
	out := make([][2]int, 0, maxPairs)
	push := func(i, j int) {
		if i > j {
			i, j = j, i
		}
		key := i*n + j
		if _, dup := seen[key]; dup || i == j {
			return
		}
		seen[key] = struct{}{}
		out = append(out, [2]int{i, j})
	}
	for i := 0; i+1 < n && len(out) < maxPairs; i++ {
		push(i, i+1)
	}
	for i := 0; i+2 < n && len(out) < maxPairs; i++ {
		push(i, i+2)
	}
	sm := seed
	rnd := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		return mix64(sm)
	}
	for len(out) < maxPairs {
		push(int(rnd()%uint64(n)), int(rnd()%uint64(n)))
	}
	return out
}

// binOf maps a mid-p value into its uniformity bin.
func binOf(u float64, nbins int) int {
	b := int(u * float64(nbins))
	if b < 0 {
		b = 0
	}
	if b >= nbins {
		b = nbins - 1
	}
	return b
}

// latticeBinMass returns the exact H0 probability of each mid-p bin.
// Agreement counts are Binomial(T, ½) on an integer lattice, so even
// mid-p values are only approximately uniform: the residual bin-edge
// mass shifts are O(1/√T) per bin, which exceeds the chi-square
// noise floor (O(1/√m)) once the battery aggregates enough pair
// statistics. Comparing observed counts against the exact lattice
// pushforward instead of a flat expectation keeps the uniformity
// check calibrated at every ensemble size. All statistics in a run
// share the same window length, hence one mass table.
func latticeBinMass(t, nbins int) []float64 {
	mass := make([]float64, nbins)
	rt := math.Sqrt(float64(t))
	half := int(6*rt)/2 + 1 // |z| ≤ 12 covers all but ~1e-32 of mass
	lo, hi := t/2-half, t/2+half
	if lo < 0 {
		lo = 0
	}
	if hi > t {
		hi = t
	}
	var sum float64
	for k := lo; k <= hi; k++ {
		p := math.Exp(stats.BinomialLogPMF(t, k, 0.5))
		d := float64(2*k - t)
		u := 0.5 * (stats.NormalCDF((d-1)/rt) + stats.NormalCDF((d+1)/rt))
		mass[binOf(u, nbins)] += p
		sum += p
	}
	// mid-p is monotone in the agreement count, so the truncated
	// lower/upper tails belong to the first/last bins.
	if tail := (1 - sum) / 2; tail > 0 {
		mass[0] += tail
		mass[nbins-1] += tail
	}
	return mass
}

// agreementZ compares two equal-length word windows bit for bit and
// returns the normalised agreement statistic z = (2M − T)/√T (M
// matching bits of T) plus the mid-p CDF value, which is uniform on
// [0,1] under H0 up to O(1/T) even on the integer lattice.
func agreementZ(a, b []uint64) (z, midP float64) {
	var mismatch int
	for k := range a {
		mismatch += bits.OnesCount64(a[k] ^ b[k])
	}
	t := 64 * len(a)
	d := float64(2*(t-mismatch) - t) // 2M − T
	rt := math.Sqrt(float64(t))
	z = d / rt
	midP = 0.5 * (stats.NormalCDF((d-1)/rt) + stats.NormalCDF((d+1)/rt))
	if midP >= 1 {
		midP = math.Nextafter(1, 0)
	}
	return z, midP
}

// twoSidedP is the two-sided normal p-value of z.
func twoSidedP(z float64) float64 {
	return math.Erfc(math.Abs(z) / math.Sqrt2)
}
