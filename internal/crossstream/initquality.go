package crossstream

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Balance is the first-output bit-balance check: across the whole
// ensemble, bit b of output word w must be set in about half the
// streams — per-position counts are Binomial(n, ½) under H0. A
// generator whose Algorithm 1 initialization leaks structure (a
// start vertex biased toward low ids, an under-mixed init walk)
// shows up here as a systematically skewed bit column in everyone's
// first outputs, long before any single stream's battery would
// notice. Both the per-position extreme (Bonferroni over 64·W
// positions) and the aggregate Σz² (chi-square, df 64·W) are
// gated.
func Balance(prefixes [][]uint64, cfg Config) Check {
	n := len(prefixes)
	words := cfg.BalanceWords
	if words > len(prefixes[0]) {
		words = len(prefixes[0])
	}
	m := 64 * words
	var (
		maxZ    float64
		maxWord int
		maxBit  int
		sumZ2   float64
		sqrtN   = math.Sqrt(float64(n))
	)
	for w := 0; w < words; w++ {
		for b := 0; b < 64; b++ {
			count := 0
			for _, p := range prefixes {
				count += int(p[w] >> uint(b) & 1)
			}
			z := (2*float64(count) - float64(n)) / sqrtN
			sumZ2 += z * z
			if math.Abs(z) > math.Abs(maxZ) {
				maxZ, maxWord, maxBit = z, w, b
			}
		}
	}
	thresh := stats.BonferroniZ(m, cfg.Alpha)
	pAgg := stats.ChiSquareSurvival(sumZ2, float64(m))
	pass := math.Abs(maxZ) <= thresh && pAgg >= cfg.Alpha
	return Check{
		Name: "first-output-balance",
		Detail: fmt.Sprintf("%d streams × %d words: max bit-column |z| = %.2f (word %d bit %d, threshold %.2f), Σz² = %.0f over %d positions (p = %.4f)",
			n, words, math.Abs(maxZ), maxWord, maxBit, thresh, sumZ2, m, pAgg),
		P:    math.Min(math.Min(1, float64(m)*twoSidedP(maxZ)), pAgg),
		Pass: pass,
	}
}

// Avalanche is the nearby-seed initialization test — the classic
// bad-init signature hunter. Generators are built from consecutive
// seeds s, s+1, …; for each adjacent pair the Hamming distance over
// the first Words outputs must be Binomial(64·Words, ½): a healthy
// seeding pipeline (seed scrambler + Algorithm 1 init walk)
// decorrelates even single-bit seed deltas from the very first
// output. Two verdicts:
//
//   - extreme: no adjacent-seed pair may exceed the Bonferroni
//     threshold — catches one bad seed pocket;
//   - mean: the ensemble mean z must be ordinary — catches the
//     systematic low-avalanche drift where *every* nearby-seed pair
//     shares slightly too many bits, which is how under-mixed
//     initialization actually presents.
func Avalanche(av AvalancheConfig, alpha float64) ([]Check, error) {
	if av.Stream == nil {
		return nil, fmt.Errorf("crossstream: avalanche config without a stream factory")
	}
	if av.Seeds < 2 {
		return nil, fmt.Errorf("crossstream: avalanche needs ≥ 2 seeds, got %d", av.Seeds)
	}
	if av.Words < 1 {
		return nil, fmt.Errorf("crossstream: avalanche words %d < 1", av.Words)
	}
	prev, err := av.Stream(av.BaseSeed, av.Words)
	if err != nil {
		return nil, fmt.Errorf("crossstream: avalanche stream for seed %d: %w", av.BaseSeed, err)
	}
	var (
		maxZ    float64
		maxSeed uint64
		sumZ    float64
		m       int
	)
	for k := 1; k < av.Seeds; k++ {
		seed := av.BaseSeed + uint64(k)
		cur, err := av.Stream(seed, av.Words)
		if err != nil {
			return nil, fmt.Errorf("crossstream: avalanche stream for seed %d: %w", seed, err)
		}
		if len(cur) != av.Words || len(prev) != av.Words {
			return nil, fmt.Errorf("crossstream: avalanche stream returned %d words, want %d", len(cur), av.Words)
		}
		z, _ := agreementZ(prev, cur)
		m++
		sumZ += z
		if math.Abs(z) > math.Abs(maxZ) {
			maxZ, maxSeed = z, seed
		}
		prev = cur
	}
	thresh := stats.BonferroniZ(m, alpha)
	extreme := Check{
		Name: "init-avalanche-extreme",
		Detail: fmt.Sprintf("%d adjacent-seed pairs from seed %d, %d words each: max |z| = %.2f at seeds (%d, %d), threshold %.2f",
			m, av.BaseSeed, av.Words, math.Abs(maxZ), maxSeed-1, maxSeed, thresh),
		P:    math.Min(1, float64(m)*twoSidedP(maxZ)),
		Pass: math.Abs(maxZ) <= thresh,
	}
	zMean := sumZ / math.Sqrt(float64(m))
	pMean := twoSidedP(zMean)
	mean := Check{
		Name:   "init-avalanche-mean",
		Detail: fmt.Sprintf("ensemble mean avalanche deviation: z = %.3f over %d seed pairs", zMean, m),
		P:      pMean,
		Pass:   pMean >= alpha,
	}
	return []Check{extreme, mean}, nil
}
