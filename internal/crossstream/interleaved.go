package crossstream

import (
	"fmt"

	"repro/internal/diehard"
	"repro/internal/stats"
	"repro/internal/testu01"
)

// Battery-level false-alarm calibration for the interleaved runs:
// the same per-test alphas quality_long_test.go derives for the
// single-stream batteries (DIEHARD's [0.01, 0.99] band ≈ 2% per
// test; the TestU01-style band plus the extreme-p rule ≈ 1%), at a
// 5% battery budget. For 15 tests both work out to "at most one
// borderline failure".
const (
	diehardPerTestAlpha = 0.02
	testu01PerTestAlpha = 0.01
	batteryAlpha        = 0.05
)

// Interleaved feeds the round-robin composite of all streams through
// the single-stream batteries. The composite continues from wherever
// the prefix draws left each source, so it sees fresh words — and the
// pass bars come from stats.RequiredPasses, not hardcoded counts.
func Interleaved(set StreamSet, cfg Config) []Check {
	var out []Check
	if cfg.DiehardScale > 0 {
		o := diehard.RunBatteryInterleaved("interleaved-"+set.Name, set.Sources,
			diehard.Config{Scale: cfg.DiehardScale})
		need := stats.RequiredPasses(o.Total, diehardPerTestAlpha, batteryAlpha)
		c := Check{
			Name: "interleaved-diehard",
			Detail: fmt.Sprintf("%d-way interleave: %d/%d DIEHARD passed (need ≥ %d), KS D = %.4f",
				len(set.Sources), o.Passed, o.Total, need, o.KS.D),
			P:    o.KS.Survival(),
			Pass: o.Passed >= need && o.KS.D <= 0.35,
		}
		if !c.Pass {
			c.Detail += failingNames(o.Results)
		}
		out = append(out, c)
	}
	if cfg.SmallCrush {
		o := testu01.SmallCrush().RunInterleaved("interleaved-"+set.Name, set.Sources)
		need := stats.RequiredPasses(o.Total, testu01PerTestAlpha, batteryAlpha)
		c := Check{
			Name: "interleaved-smallcrush",
			Detail: fmt.Sprintf("%d-way interleave: %d/%d SmallCrush passed (need ≥ %d)",
				len(set.Sources), o.Passed, o.Total, need),
			P:    1,
			Pass: o.Passed >= need,
		}
		if !c.Pass {
			c.Detail += failingTestu01(o.Results)
		}
		out = append(out, c)
	}
	return out
}

func failingNames(rs []diehard.Result) string {
	s := "; failing:"
	for _, r := range rs {
		if !r.Passed(0.01, 0.99) {
			s += fmt.Sprintf(" %s(p=%.5f)", r.Name, r.P())
		}
	}
	return s
}

func failingTestu01(rs []testu01.Result) string {
	s := "; failing:"
	for _, r := range rs {
		if !r.Passed(0.001, 0.999) {
			s += fmt.Sprintf(" %s(p=%.5f)", r.Name, r.P())
		}
	}
	return s
}
