package crossstream

import (
	"fmt"
	"math"
)

// window identifies one fingerprinted prefix window.
type window struct {
	stream, offset int
}

// Aliasing runs the stream-identity checks:
//
//   - prefix-aliasing: every AliasWindow-word window (at AliasStride
//     offsets) of every stream prefix is fingerprinted; two windows
//     with equal contents anywhere in the ensemble — same stream at
//     different offsets (a short cycle) or different streams at any
//     offsets (duplicated seeding, counter reuse, one stream being
//     another shifted) — is a structural failure. Fingerprint hits
//     are confirmed word-for-word, so a hash collision can never
//     produce a false alarm.
//   - first-output-occupancy: the coupon/occupancy test — the top
//     bits of every stream's first output are bucketed and the empty
//     bucket count compared to its exact expectation; catches first
//     outputs drawn from a collapsed range (all-equal or few-valued
//     initialization) that pairwise tests over full prefixes dilute.
//
// A window of w ≥ 32 words carries 2048 bits, so for any honest
// generator the accidental-collision probability over even millions
// of windows is ≈ 0: the check has a zero false-alarm budget, which
// is what lets the battery treat any hit as a finding instead of a
// statistic.
func Aliasing(names []string, prefixes [][]uint64, cfg Config) []Check {
	w, stride := cfg.AliasWindow, cfg.AliasStride
	var out []Check
	if w > 0 {
		nWindows := 0
		seen := make(map[uint64][]window)
		var collisions []string
		for si, p := range prefixes {
			for off := 0; off+w <= len(p); off += stride {
				nWindows++
				h := fingerprint(p[off : off+w])
				for _, prev := range seen[h] {
					if prev.stream == si && prev.offset == off {
						continue
					}
					q := prefixes[prev.stream][prev.offset : prev.offset+w]
					if equalWords(q, p[off:off+w]) {
						collisions = append(collisions, fmt.Sprintf(
							"%s@+%d == %s@+%d (%d identical words)",
							names[prev.stream], prev.offset, names[si], off, w))
					}
				}
				seen[h] = append(seen[h], window{stream: si, offset: off})
			}
		}
		c := Check{
			Name:   "prefix-aliasing",
			Detail: fmt.Sprintf("%d windows of %d words (stride %d) across %d streams: no duplicates", nWindows, w, stride, len(prefixes)),
			P:      1,
			Pass:   true,
		}
		if len(collisions) > 0 {
			show := collisions
			if len(show) > 8 {
				show = show[:8]
			}
			c.Detail = fmt.Sprintf("%d aliased windows, e.g. %v", len(collisions), show)
			c.P = 0
			c.Pass = false
		}
		out = append(out, c)
	}
	out = append(out, occupancy(prefixes, cfg))
	return out
}

// occupancy is the coupon/occupancy test over first outputs.
func occupancy(prefixes [][]uint64, cfg Config) Check {
	k := cfg.OccupancyBuckets
	n := len(prefixes)
	shift := 64 - uint(bitsFor(k))
	occupied := make([]bool, k)
	for _, p := range prefixes {
		occupied[int(p[0]>>shift)%k] = true
	}
	empty := 0
	for _, o := range occupied {
		if !o {
			empty++
		}
	}
	// Exact occupancy moments for n balls in k bins:
	// E = k(1−1/k)ⁿ, Var = k(k−1)(1−2/k)ⁿ + k(1−1/k)ⁿ − k²(1−1/k)²ⁿ.
	kf, nf := float64(k), float64(n)
	mean := kf * math.Pow(1-1/kf, nf)
	varE := kf*(kf-1)*math.Pow(1-2/kf, nf) + mean - kf*kf*math.Pow(1-1/kf, 2*nf)
	if varE < 1e-12 {
		varE = 1e-12
	}
	z := (float64(empty) - mean) / math.Sqrt(varE)
	// The empty count is small and lattice-valued; a loose two-sided
	// band (alpha/10 of the battery default would be too twitchy for
	// a discrete statistic) keeps the false-alarm budget honest.
	p := twoSidedP(z)
	return Check{
		Name: "first-output-occupancy",
		Detail: fmt.Sprintf("%d first outputs into %d buckets: %d empty (expect %.1f ± %.1f, z = %.2f)",
			n, k, empty, mean, math.Sqrt(varE), z),
		P:    p,
		Pass: p >= 1e-5,
	}
}

// fingerprint hashes a word window with a SplitMix64-style chained
// mix — collision-free in practice at 64 bits over the window counts
// this battery produces, and every hit is verified anyway.
func fingerprint(ws []uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range ws {
		h = mix64(h ^ w)
	}
	return h
}

func equalWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bitsFor returns ⌈log₂ k⌉ for k ≥ 1.
func bitsFor(k int) int {
	b := 0
	for 1<<b < k {
		b++
	}
	return b
}
