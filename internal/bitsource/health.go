package bitsource

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/rng"
)

// The paper's conclusion points at cryptographic applications as
// future work. A prerequisite for any entropy-consuming deployment
// is continuous health testing of the raw source; this file
// implements the two online health tests of NIST SP 800-90B §4.4 —
// the Repetition Count Test and the Adaptive Proportion Test —
// applied to the feed stream's bytes. A Monitor wraps any source
// and trips permanently when either test fails, which a consumer
// must treat as a broken feed.

// HealthError reports a tripped health test.
type HealthError struct {
	Test   string // "repetition-count" or "adaptive-proportion"
	Detail string
}

func (e *HealthError) Error() string {
	return fmt.Sprintf("bitsource: health test %s failed: %s", e.Test, e.Detail)
}

// Monitor wraps a Source with the SP 800-90B continuous health
// tests over the stream's bytes. After a failure the monitor is
// tripped: Uint64 keeps returning values (the interface cannot
// error) but Err reports the failure and Tripped is true — callers
// must check Err at their consumption boundary.
//
// Drawing (Uint64) is single-consumer like every Source in this
// repository, but Err, Tripped and Stats are safe to call from any
// goroutine concurrently with draws — the serving layer polls them
// from health endpoints while shards keep generating.
type Monitor struct {
	src rng.Source

	// Repetition count test state.
	lastByte byte
	repeats  int
	rctBound int

	// Adaptive proportion test state.
	aptSample  byte
	aptCount   int
	aptWindow  int
	aptSeen    int
	aptBound   int
	haveSample bool

	err atomic.Pointer[HealthError]
}

// NewMonitor wraps src with health tests calibrated for a source
// claiming `hMin` bits of min-entropy per byte (use 8 for a full-
// entropy feed, less for a weak one — the paper's glibc feed is
// nowhere near full entropy, so callers wrapping it should claim
// conservatively, e.g. 4). The false-positive rate per test is
// 2^-30, the SP 800-90B recommendation.
func NewMonitor(src rng.Source, hMin float64) (*Monitor, error) {
	if src == nil {
		return nil, fmt.Errorf("bitsource: nil source")
	}
	if !(hMin > 0 && hMin <= 8) { // rejects NaN too, which <=/> chains let through
		return nil, fmt.Errorf("bitsource: claimed min-entropy %g outside (0, 8]", hMin)
	}
	const alphaExp = 30 // α = 2^-30
	// RCT cutoff: 1 + ⌈30 / hMin⌉.
	rct := 1 + int(math.Ceil(alphaExp/hMin))
	// APT cutoff over a 512-byte window: smallest c with
	// P[Binomial(512, 2^-hMin) ≥ c] ≤ 2^-30; the standard's
	// CRITBINOM. Computed here by direct summation.
	p := math.Exp2(-hMin)
	apt := critBinom(512, p, math.Exp2(-alphaExp))
	return &Monitor{
		src:       src,
		rctBound:  rct,
		aptWindow: 512,
		aptBound:  apt,
	}, nil
}

// critBinom returns the smallest cutoff c such that
// P[Binomial(n, p) ≥ c] ≤ alpha.
func critBinom(n int, p, alpha float64) int {
	// Walk the pmf from the top until the tail exceeds alpha.
	tail := 0.0
	logP := math.Log(p)
	logQ := math.Log1p(-p)
	lnFact := func(k int) float64 {
		l, _ := math.Lgamma(float64(k) + 1)
		return l
	}
	for c := n; c >= 0; c-- {
		lpmf := lnFact(n) - lnFact(c) - lnFact(n-c) + float64(c)*logP + float64(n-c)*logQ
		tail += math.Exp(lpmf)
		if tail > alpha {
			return c + 1
		}
	}
	return 0
}

// trip records the first failure.
func (m *Monitor) trip(test, detail string) {
	m.err.CompareAndSwap(nil, &HealthError{Test: test, Detail: detail})
}

// Err returns the first health failure, or nil.
func (m *Monitor) Err() error {
	if e := m.err.Load(); e != nil {
		return e
	}
	return nil
}

// Tripped reports whether a health test has failed.
func (m *Monitor) Tripped() bool { return m.err.Load() != nil }

// ForceTrip trips the monitor as if a health test had failed —
// fault injection for operational drills and for testing the
// degradation paths of consumers (a tripped monitor is sticky, so a
// forced trip after a real failure is a no-op).
func (m *Monitor) ForceTrip(detail string) { m.trip("forced", detail) }

// Stats is a point-in-time snapshot of a Monitor's calibration and
// trip state.
type Stats struct {
	Tripped   bool
	Failure   string // empty until tripped
	RCTCutoff int
	APTCutoff int
	APTWindow int
}

// Stats returns the monitor's calibration and trip state. Unlike the
// test counters themselves, everything here is immutable or atomic,
// so Stats is safe to call while another goroutine draws.
func (m *Monitor) Stats() Stats {
	s := Stats{
		RCTCutoff: m.rctBound,
		APTCutoff: m.aptBound,
		APTWindow: m.aptWindow,
	}
	if e := m.err.Load(); e != nil {
		s.Tripped = true
		s.Failure = e.Error()
	}
	return s
}

// Uint64 draws a word and feeds its bytes through both health tests.
func (m *Monitor) Uint64() uint64 {
	v := m.src.Uint64()
	for i := 0; i < 8; i++ {
		m.checkByte(byte(v >> (8 * i)))
	}
	return v
}

func (m *Monitor) checkByte(b byte) {
	// Repetition count test.
	if m.haveSample && b == m.lastByte {
		m.repeats++
		if m.repeats >= m.rctBound {
			m.trip("repetition-count",
				fmt.Sprintf("byte %#02x repeated %d times (cutoff %d)", b, m.repeats, m.rctBound))
		}
	} else {
		m.lastByte = b
		m.repeats = 1
	}
	// Adaptive proportion test.
	if !m.haveSample {
		m.aptSample = b
		m.aptCount = 1
		m.aptSeen = 1
		m.haveSample = true
		return
	}
	if m.aptSeen == 0 {
		m.aptSample = b
		m.aptCount = 1
		m.aptSeen = 1
		return
	}
	m.aptSeen++
	if b == m.aptSample {
		m.aptCount++
		if m.aptCount >= m.aptBound {
			m.trip("adaptive-proportion",
				fmt.Sprintf("byte %#02x appeared %d times in a %d-byte window (cutoff %d)",
					b, m.aptCount, m.aptWindow, m.aptBound))
		}
	}
	if m.aptSeen >= m.aptWindow {
		m.aptSeen = 0 // start a new window on the next byte
	}
}

// RCTCutoff and APTCutoff expose the calibrated bounds (for tests
// and reporting).
func (m *Monitor) RCTCutoff() int { return m.rctBound }
func (m *Monitor) APTCutoff() int { return m.aptBound }
