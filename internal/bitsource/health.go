package bitsource

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/rng"
)

// The paper's conclusion points at cryptographic applications as
// future work. A prerequisite for any entropy-consuming deployment
// is continuous health testing of the raw source; this file
// implements the two online health tests of NIST SP 800-90B §4.4 —
// the Repetition Count Test and the Adaptive Proportion Test —
// applied to the feed stream's bytes. A Monitor wraps any source
// and trips permanently when either test fails, which a consumer
// must treat as a broken feed.

// HealthError reports a tripped health test.
type HealthError struct {
	Test   string // "repetition-count" or "adaptive-proportion"
	Detail string
}

func (e *HealthError) Error() string {
	return fmt.Sprintf("bitsource: health test %s failed: %s", e.Test, e.Detail)
}

// Monitor wraps a Source with the SP 800-90B continuous health
// tests over the stream's bytes. After a failure the monitor is
// tripped: Uint64 keeps returning values (the interface cannot
// error) but Err reports the failure and Tripped is true — callers
// must check Err at their consumption boundary.
//
// Drawing (Uint64) is single-consumer like every Source in this
// repository, but Err, Tripped and Stats are safe to call from any
// goroutine concurrently with draws — the serving layer polls them
// from health endpoints while shards keep generating.
type Monitor struct {
	src rng.Source

	// Repetition count test state.
	lastByte byte
	repeats  int
	rctBound int

	// Adaptive proportion test state.
	aptSample  byte
	aptCount   int
	aptWindow  int
	aptSeen    int
	aptBound   int
	haveSample bool

	err atomic.Pointer[HealthError]
}

// NewMonitor wraps src with health tests calibrated for a source
// claiming `hMin` bits of min-entropy per byte (use 8 for a full-
// entropy feed, less for a weak one — the paper's glibc feed is
// nowhere near full entropy, so callers wrapping it should claim
// conservatively, e.g. 4). The false-positive rate per test is
// 2^-30, the SP 800-90B recommendation.
func NewMonitor(src rng.Source, hMin float64) (*Monitor, error) {
	if src == nil {
		return nil, fmt.Errorf("bitsource: nil source")
	}
	if !(hMin > 0 && hMin <= 8) { // rejects NaN too, which <=/> chains let through
		return nil, fmt.Errorf("bitsource: claimed min-entropy %g outside (0, 8]", hMin)
	}
	const alphaExp = 30 // α = 2^-30
	// RCT cutoff: 1 + ⌈30 / hMin⌉.
	rct := 1 + int(math.Ceil(alphaExp/hMin))
	// APT cutoff over a 512-byte window: smallest c with
	// P[Binomial(512, 2^-hMin) ≥ c] ≤ 2^-30; the standard's
	// CRITBINOM. Computed here by direct summation.
	p := math.Exp2(-hMin)
	apt := critBinom(512, p, math.Exp2(-alphaExp))
	return &Monitor{
		src:       src,
		rctBound:  rct,
		aptWindow: 512,
		aptBound:  apt,
	}, nil
}

// critBinom returns the smallest cutoff c such that
// P[Binomial(n, p) ≥ c] ≤ alpha.
func critBinom(n int, p, alpha float64) int {
	// Walk the pmf from the top until the tail exceeds alpha.
	tail := 0.0
	logP := math.Log(p)
	logQ := math.Log1p(-p)
	lnFact := func(k int) float64 {
		l, _ := math.Lgamma(float64(k) + 1)
		return l
	}
	for c := n; c >= 0; c-- {
		lpmf := lnFact(n) - lnFact(c) - lnFact(n-c) + float64(c)*logP + float64(n-c)*logQ
		tail += math.Exp(lpmf)
		if tail > alpha {
			return c + 1
		}
	}
	return 0
}

// trip records the first failure.
func (m *Monitor) trip(test, detail string) {
	m.err.CompareAndSwap(nil, &HealthError{Test: test, Detail: detail})
}

// Err returns the first health failure, or nil.
func (m *Monitor) Err() error {
	if e := m.err.Load(); e != nil {
		return e
	}
	return nil
}

// Tripped reports whether a health test has failed.
func (m *Monitor) Tripped() bool { return m.err.Load() != nil }

// ForceTrip trips the monitor as if a health test had failed —
// fault injection for operational drills and for testing the
// degradation paths of consumers (a tripped monitor is sticky, so a
// forced trip after a real failure is a no-op).
func (m *Monitor) ForceTrip(detail string) { m.trip("forced", detail) }

// Stats is a point-in-time snapshot of a Monitor's calibration and
// trip state.
type Stats struct {
	Tripped   bool
	Failure   string // empty until tripped
	RCTCutoff int
	APTCutoff int
	APTWindow int
}

// Stats returns the monitor's calibration and trip state. Unlike the
// test counters themselves, everything here is immutable or atomic,
// so Stats is safe to call while another goroutine draws.
func (m *Monitor) Stats() Stats {
	s := Stats{
		RCTCutoff: m.rctBound,
		APTCutoff: m.aptBound,
		APTWindow: m.aptWindow,
	}
	if e := m.err.Load(); e != nil {
		s.Tripped = true
		s.Failure = e.Error()
	}
	return s
}

// Uint64 draws a word and feeds its bytes through both health tests.
func (m *Monitor) Uint64() uint64 {
	v := m.src.Uint64()
	for i := 0; i < 8; i++ {
		m.checkByte(byte(v >> (8 * i)))
	}
	return v
}

func (m *Monitor) checkByte(b byte) {
	// Repetition count test.
	if m.haveSample && b == m.lastByte {
		m.repeats++
		if m.repeats >= m.rctBound {
			m.trip("repetition-count",
				fmt.Sprintf("byte %#02x repeated %d times (cutoff %d)", b, m.repeats, m.rctBound))
		}
	} else {
		m.lastByte = b
		m.repeats = 1
	}
	// Adaptive proportion test.
	if !m.haveSample {
		m.aptSample = b
		m.aptCount = 1
		m.aptSeen = 1
		m.haveSample = true
		return
	}
	if m.aptSeen == 0 {
		m.aptSample = b
		m.aptCount = 1
		m.aptSeen = 1
		return
	}
	m.aptSeen++
	if b == m.aptSample {
		m.aptCount++
		if m.aptCount >= m.aptBound {
			m.trip("adaptive-proportion",
				fmt.Sprintf("byte %#02x appeared %d times in a %d-byte window (cutoff %d)",
					b, m.aptCount, m.aptWindow, m.aptBound))
		}
	}
	if m.aptSeen >= m.aptWindow {
		m.aptSeen = 0 // start a new window on the next byte
	}
}

// RCTCutoff and APTCutoff expose the calibrated bounds (for tests
// and reporting).
func (m *Monitor) RCTCutoff() int { return m.rctBound }
func (m *Monitor) APTCutoff() int { return m.aptBound }

// Source returns the wrapped raw source, so checkpointing code can
// serialise the underlying feed separately from the monitor's own
// test state.
func (m *Monitor) Source() rng.Source { return m.src }

// Rearm returns a fresh monitor over src with the same calibration
// (cutoffs and window) as m but clean test counters and no trip
// state — the monitor a recovered shard puts in front of its reseeded
// feed. The receiver is left untouched.
func (m *Monitor) Rearm(src rng.Source) (*Monitor, error) {
	if src == nil {
		return nil, fmt.Errorf("bitsource: nil source")
	}
	return &Monitor{
		src:       src,
		rctBound:  m.rctBound,
		aptWindow: m.aptWindow,
		aptBound:  m.aptBound,
	}, nil
}

// Monitor state serialisation. A checkpointed generator must restore
// its health tests exactly: the calibration (cutoffs, window), the
// in-flight test counters, and — crucially — the trip state, so a
// feed that failed SP 800-90B before the snapshot stays failed after
// restore. The wrapped source is NOT part of the blob; callers
// serialise it separately and pass it to RestoreMonitor.
//
// Format (versioned, little-endian):
//
//	tag 'M' | version | rctBound u32 | aptWindow u32 | aptBound u32
//	| lastByte u8 | repeats u32 | aptSample u8 | aptCount u32
//	| aptSeen u32 | haveSample u8 | tripped u8
//	| [testLen u16 | test | detailLen u16 | detail]  (tripped only)
const (
	monitorTag     = 'M'
	monitorVersion = 1

	// monitorMaxBound caps decoded calibration values and counters so
	// a forged blob cannot smuggle in absurd state. Real cutoffs are
	// tiny (RCT ≤ 31, APT ≤ 512 for any valid hMin).
	monitorMaxBound = 1 << 20
)

// MarshalBinary encodes the monitor's calibration, test counters and
// trip state. Not safe to call concurrently with Uint64 draws; the
// caller must hold whatever lock serialises drawing.
func (m *Monitor) MarshalBinary() ([]byte, error) {
	out := []byte{monitorTag, monitorVersion}
	var b [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	putBool := func(v bool) {
		if v {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	putStr := func(s string) ([]byte, error) {
		if len(s) > 0xFFFF {
			return nil, fmt.Errorf("bitsource: monitor detail too long (%d bytes)", len(s))
		}
		binary.LittleEndian.PutUint16(b[:2], uint16(len(s)))
		out = append(out, b[:2]...)
		return append(out, s...), nil
	}
	put32(uint32(m.rctBound))
	put32(uint32(m.aptWindow))
	put32(uint32(m.aptBound))
	out = append(out, m.lastByte)
	put32(uint32(m.repeats))
	out = append(out, m.aptSample)
	put32(uint32(m.aptCount))
	put32(uint32(m.aptSeen))
	putBool(m.haveSample)
	e := m.err.Load()
	putBool(e != nil)
	if e != nil {
		var err error
		if out, err = putStr(e.Test); err != nil {
			return nil, err
		}
		if out, err = putStr(e.Detail); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RestoreMonitor rebuilds a monitor over src from a blob written by
// MarshalBinary. A tripped monitor restores tripped.
func RestoreMonitor(src rng.Source, data []byte) (*Monitor, error) {
	if src == nil {
		return nil, fmt.Errorf("bitsource: nil source")
	}
	const fixed = 2 + 4 + 4 + 4 + 1 + 4 + 1 + 4 + 4 + 1 + 1
	if len(data) < fixed {
		return nil, fmt.Errorf("bitsource: monitor state too short (%d bytes)", len(data))
	}
	if data[0] != monitorTag {
		return nil, fmt.Errorf("bitsource: monitor state tag %#x, want %#x", data[0], monitorTag)
	}
	if data[1] != monitorVersion {
		return nil, fmt.Errorf("bitsource: unsupported monitor state version %d", data[1])
	}
	p := data[2:]
	get32 := func() int {
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return int(v)
	}
	m := &Monitor{src: src}
	m.rctBound = get32()
	m.aptWindow = get32()
	m.aptBound = get32()
	m.lastByte = p[0]
	p = p[1:]
	m.repeats = get32()
	m.aptSample = p[0]
	p = p[1:]
	m.aptCount = get32()
	m.aptSeen = get32()
	m.haveSample = p[0] != 0
	tripped := p[1] != 0
	p = p[2:]
	for _, v := range [...]struct {
		name string
		val  int
	}{
		{"RCT cutoff", m.rctBound},
		{"APT window", m.aptWindow},
		{"APT cutoff", m.aptBound},
	} {
		if v.val < 1 || v.val > monitorMaxBound {
			return nil, fmt.Errorf("bitsource: monitor %s %d outside [1, %d]", v.name, v.val, monitorMaxBound)
		}
	}
	if m.repeats < 0 || m.repeats > monitorMaxBound || m.aptCount < 0 || m.aptCount > monitorMaxBound ||
		m.aptSeen < 0 || m.aptSeen > m.aptWindow {
		return nil, fmt.Errorf("bitsource: monitor counters out of range")
	}
	if tripped {
		getStr := func(what string) (string, error) {
			if len(p) < 2 {
				return "", fmt.Errorf("bitsource: monitor %s truncated", what)
			}
			n := int(binary.LittleEndian.Uint16(p))
			p = p[2:]
			if len(p) < n {
				return "", fmt.Errorf("bitsource: monitor %s truncated", what)
			}
			s := string(p[:n])
			p = p[n:]
			return s, nil
		}
		test, err := getStr("failure test name")
		if err != nil {
			return nil, err
		}
		detail, err := getStr("failure detail")
		if err != nil {
			return nil, err
		}
		m.err.Store(&HealthError{Test: test, Detail: detail})
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("bitsource: %d trailing bytes after monitor state", len(p))
	}
	return m, nil
}
