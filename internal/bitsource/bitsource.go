// Package bitsource provides the generator's FEED work unit: sources
// of cheap random bits and an asynchronous chunked feeder that
// overlaps bit production with consumption, the software analogue of
// the paper's CPU→GPU "bin" stream over PCIe.
//
// The paper's design point is that the feed bits may come from a
// fast, low-quality generator (glibc rand()); the expander walk
// amplifies their quality. The default feed here is therefore the
// bit-exact glibc re-implementation, with the ANSI C LCG and a
// crypto-seeded SplitMix64 available for ablations.
package bitsource

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/baselines"
	"repro/internal/rng"
)

// CryptoSeed returns a 64-bit seed from the operating system's
// entropy pool, falling back to a fixed constant only if the pool is
// unreadable (it never is in practice; the fallback keeps the
// function total).
func CryptoSeed() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return 0x9E3779B97F4A7C15
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Glibc returns a BitReader over the glibc rand() stream — the
// paper's FEED configuration.
func Glibc(seed uint32) *rng.BitReader {
	return rng.NewBitReader(baselines.NewGlibcRand(seed))
}

// ANSIC returns a BitReader over the ANSI C rand() stream, the
// weakest feed used in ablations.
func ANSIC(seed uint32) *rng.BitReader {
	return rng.NewBitReader(baselines.NewANSIC(seed))
}

// SplitMix returns a BitReader over a SplitMix64 stream, the
// high-quality feed ablation.
func SplitMix(seed uint64) *rng.BitReader {
	return rng.NewBitReader(baselines.NewSplitMix64(seed))
}

// Feeder produces fixed-size chunks of feed words on a background
// goroutine, double-buffered through a channel, so the consumer (the
// walker, standing in for the GPU) never waits while the producer
// (standing in for the CPU) keeps up — the FEED/GENERATE overlap of
// the paper's Figure 4 in plain Go.
//
// The zero value is not usable; construct with NewFeeder. Close the
// feeder to release its goroutine.
type Feeder struct {
	chunks   chan []uint64
	recycle  chan []uint64
	done     chan struct{}
	closed   sync.Once
	produced atomic.Uint64
}

// NewFeeder starts a feeder drawing from src. chunkWords is the
// chunk size in 64-bit words (the paper's bin batch); depth is the
// pipeline depth (number of chunks that may be in flight; 2 is
// classic double buffering).
func NewFeeder(src rng.Source, chunkWords, depth int) (*Feeder, error) {
	if src == nil {
		return nil, fmt.Errorf("bitsource: nil source")
	}
	if chunkWords < 1 {
		return nil, fmt.Errorf("bitsource: chunkWords %d < 1", chunkWords)
	}
	if depth < 1 {
		return nil, fmt.Errorf("bitsource: depth %d < 1", depth)
	}
	f := &Feeder{
		chunks:  make(chan []uint64, depth),
		recycle: make(chan []uint64, depth+1),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(f.chunks)
		for {
			var buf []uint64
			select {
			case buf = <-f.recycle:
			default:
				buf = make([]uint64, chunkWords)
			}
			for i := range buf {
				buf[i] = src.Uint64()
			}
			select {
			case f.chunks <- buf:
				f.produced.Add(uint64(len(buf)))
			case <-f.done:
				return
			}
		}
	}()
	return f, nil
}

// WordsProduced returns the number of words handed to the pipeline
// so far.
func (f *Feeder) WordsProduced() uint64 { return f.produced.Load() }

// Close stops the producer goroutine. Sources already handed out
// keep draining buffered chunks and then report exhaustion by
// panicking, matching BitReader's contract of an infinite stream —
// close only after consumers are done.
func (f *Feeder) Close() {
	f.closed.Do(func() { close(f.done) })
}

// Source returns a consumer-side rng.Source that drains the feeder's
// chunks. Each call to Source returns an independent consumer; a
// single consumer is not safe for concurrent use (one per goroutine,
// like walkers).
func (f *Feeder) Source() rng.Source {
	return &feederSource{f: f}
}

type feederSource struct {
	f   *Feeder
	cur []uint64
	idx int
}

func (s *feederSource) Uint64() uint64 {
	if s.idx >= len(s.cur) {
		if s.cur != nil {
			select {
			case s.f.recycle <- s.cur:
			default:
			}
		}
		chunk, ok := <-s.f.chunks
		if !ok {
			panic("bitsource: feeder closed while consumer still draining")
		}
		s.cur = chunk
		s.idx = 0
	}
	v := s.cur[s.idx]
	s.idx++
	return v
}

// Bits returns a BitReader over a fresh consumer of the feeder.
func (f *Feeder) Bits() *rng.BitReader {
	return rng.NewBitReader(f.Source())
}
