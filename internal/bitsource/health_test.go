package bitsource

import (
	"math"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/rng"
)

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, 8); err == nil {
		t.Error("nil source should fail")
	}
	src := baselines.NewSplitMix64(1)
	if _, err := NewMonitor(src, 0); err == nil {
		t.Error("zero entropy claim should fail")
	}
	if _, err := NewMonitor(src, 9); err == nil {
		t.Error("entropy claim > 8 should fail")
	}
	if _, err := NewMonitor(src, math.NaN()); err == nil {
		t.Error("NaN entropy claim should fail")
	}
}

func TestMonitorForceTrip(t *testing.T) {
	m, err := NewMonitor(baselines.NewSplitMix64(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tripped() {
		t.Fatal("fresh monitor tripped")
	}
	m.ForceTrip("drill")
	if !m.Tripped() {
		t.Fatal("ForceTrip did not trip")
	}
	he, ok := m.Err().(*HealthError)
	if !ok || he.Test != "forced" || !strings.Contains(he.Detail, "drill") {
		t.Fatalf("Err = %v", m.Err())
	}
	// First failure stays sticky across further forced trips.
	m.ForceTrip("second")
	if m.Err() != error(he) {
		t.Error("forced trip overwrote the first failure")
	}
	m.Uint64() // must stay usable
}

func TestMonitorStatsConcurrentWithDraws(t *testing.T) {
	m, err := NewMonitor(baselines.NewSplitMix64(3), 4)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Tripped || st.Failure != "" {
		t.Fatalf("fresh stats: %+v", st)
	}
	if st.RCTCutoff != m.RCTCutoff() || st.APTCutoff != m.APTCutoff() || st.APTWindow != 512 {
		t.Fatalf("stats cutoffs: %+v", st)
	}
	// Scrape from another goroutine while drawing — the /metrics
	// pattern; run under -race in CI.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			_ = m.Stats()
			_ = m.Err()
			_ = m.Tripped()
		}
	}()
	for i := 0; i < 10000; i++ {
		m.Uint64()
	}
	<-done
	m.ForceTrip("after")
	if st := m.Stats(); !st.Tripped || st.Failure == "" {
		t.Fatalf("tripped stats: %+v", st)
	}
}

func TestMonitorCutoffs(t *testing.T) {
	m, err := NewMonitor(baselines.NewSplitMix64(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Full entropy: RCT cutoff = 1 + ⌈30/8⌉ = 5.
	if m.RCTCutoff() != 5 {
		t.Errorf("RCT cutoff = %d, want 5", m.RCTCutoff())
	}
	// APT cutoff must be far above the expectation 512/256 = 2 but
	// far below the window.
	if m.APTCutoff() < 8 || m.APTCutoff() > 64 {
		t.Errorf("APT cutoff = %d, outside a plausible band", m.APTCutoff())
	}
	// Weaker claim → larger cutoffs.
	m4, _ := NewMonitor(baselines.NewSplitMix64(1), 4)
	if m4.RCTCutoff() <= m.RCTCutoff() || m4.APTCutoff() <= m.APTCutoff() {
		t.Error("weaker entropy claim must loosen the cutoffs")
	}
}

func TestMonitorPassesHealthySource(t *testing.T) {
	m, err := NewMonitor(baselines.NewSplitMix64(7), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		m.Uint64()
	}
	if m.Tripped() {
		t.Fatalf("healthy source tripped: %v", m.Err())
	}
	if m.Err() != nil {
		t.Fatal("Err non-nil without trip")
	}
}

func TestMonitorPassesGlibcAtConservativeClaim(t *testing.T) {
	m, err := NewMonitor(baselines.NewGlibcRand(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		m.Uint64()
	}
	if m.Tripped() {
		t.Fatalf("glibc feed tripped at the conservative claim: %v", m.Err())
	}
}

func TestMonitorTripsOnStuckSource(t *testing.T) {
	stuck := rng.Func(func() uint64 { return 0x4242424242424242 })
	m, err := NewMonitor(stuck, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && !m.Tripped(); i++ {
		m.Uint64()
	}
	if !m.Tripped() {
		t.Fatal("stuck-at source not detected")
	}
	he, ok := m.Err().(*HealthError)
	if !ok || he.Test != "repetition-count" {
		t.Fatalf("expected repetition-count failure, got %v", m.Err())
	}
	if !strings.Contains(he.Error(), "repetition-count") {
		t.Errorf("error text: %v", he)
	}
}

func TestMonitorTripsOnBiasedSource(t *testing.T) {
	// Each byte is 0xAB with probability 1/16, otherwise random (and
	// never 0xAB): runs stay far below the RCT cutoff, but whenever
	// an APT window samples 0xAB it sees ≈ 32 matches in 512 bytes
	// against a cutoff calibrated for ≈ 2 — an APT-only failure.
	// (Deterministic periodic patterns would phase-lock the window
	// sample and can slip past APT entirely; the randomised bias
	// cannot.)
	inner := baselines.NewSplitMix64(5)
	biased := rng.Func(func() uint64 {
		var v uint64
		for b := 0; b < 8; b++ {
			r := byte(inner.Uint64())
			if r < 16 {
				r = 0xAB
			} else if r == 0xAB {
				r = 0x11
			}
			v |= uint64(r) << (8 * b)
		}
		return v
	})
	m, err := NewMonitor(biased, 8)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10000 && !m.Tripped(); j++ {
		m.Uint64()
	}
	if !m.Tripped() {
		t.Fatal("biased source not detected")
	}
	he := m.Err().(*HealthError)
	if he.Test != "adaptive-proportion" {
		t.Fatalf("expected adaptive-proportion failure, got %v", m.Err())
	}
}

func TestMonitorStaysTrippedAndUsable(t *testing.T) {
	stuck := rng.Func(func() uint64 { return 0 })
	m, _ := NewMonitor(stuck, 8)
	for i := 0; i < 20; i++ {
		m.Uint64() // must not panic after tripping
	}
	first := m.Err()
	m.Uint64()
	if m.Err() != first {
		t.Error("first failure must be sticky")
	}
}

func TestCritBinom(t *testing.T) {
	// p = 0.5, n = 10, alpha = 1: essentially everything allowed
	// (cutoff 0 or 1 depending on floating rounding of the total
	// probability mass).
	if c := critBinom(10, 0.5, 1.0); c > 1 {
		t.Errorf("critBinom(alpha=1) = %d", c)
	}
	// Tiny alpha forces the cutoff to the top.
	if c := critBinom(10, 0.5, 1e-12); c < 10 {
		t.Errorf("critBinom(alpha=1e-12) = %d", c)
	}
	// Monotone in alpha.
	if critBinom(512, 1.0/256, 1e-9) < critBinom(512, 1.0/256, 1e-3) {
		t.Error("cutoff must grow as alpha shrinks")
	}
}
