package bitsource

import (
	"testing"

	"repro/internal/baselines"
)

func TestCryptoSeedVaries(t *testing.T) {
	a, b := CryptoSeed(), CryptoSeed()
	if a == b {
		t.Error("two crypto seeds identical — entropy pool broken?")
	}
}

func TestConvenienceConstructors(t *testing.T) {
	// The glibc word stream packs random() outputs with the first
	// 31-bit value in the top bits: srandom(1) starts 1804289383.
	if got := Glibc(1).Bits(31); got != 1804289383 {
		t.Errorf("glibc feed first 31 bits = %d, want 1804289383", got)
	}
	a, b := Glibc(7), Glibc(7)
	for i := 0; i < 100; i++ {
		if a.Bits(13) != b.Bits(13) {
			t.Fatal("glibc feed not deterministic")
		}
	}
	c, d := ANSIC(7), ANSIC(7)
	for i := 0; i < 100; i++ {
		if c.Bits(9) != d.Bits(9) {
			t.Fatal("ansic feed not deterministic")
		}
	}
	e, f := SplitMix(7), SplitMix(7)
	for i := 0; i < 100; i++ {
		if e.Bits(17) != f.Bits(17) {
			t.Fatal("splitmix feed not deterministic")
		}
	}
}

func TestFeederValidation(t *testing.T) {
	src := baselines.NewSplitMix64(1)
	if _, err := NewFeeder(nil, 8, 2); err == nil {
		t.Error("nil source should fail")
	}
	if _, err := NewFeeder(src, 0, 2); err == nil {
		t.Error("zero chunk should fail")
	}
	if _, err := NewFeeder(src, 8, 0); err == nil {
		t.Error("zero depth should fail")
	}
}

func TestFeederDeliversSourceStream(t *testing.T) {
	// A single consumer must see exactly the source stream, in
	// order, across chunk boundaries.
	f, err := NewFeeder(baselines.NewSplitMix64(99), 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ref := baselines.NewSplitMix64(99)
	consumer := f.Source()
	for i := 0; i < 1000; i++ {
		if got, want := consumer.Uint64(), ref.Uint64(); got != want {
			t.Fatalf("word %d = %d, want %d", i, got, want)
		}
	}
	if f.WordsProduced() < 1000 {
		t.Errorf("WordsProduced = %d, want ≥ 1000", f.WordsProduced())
	}
}

func TestFeederBitsReader(t *testing.T) {
	f, err := NewFeeder(baselines.NewSplitMix64(5), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	br := f.Bits()
	ref := baselines.NewSplitMix64(5)
	// 64 bits in 3-bit nibbles + remainder must reassemble word 0.
	var v uint64
	for i := 0; i < 21; i++ {
		v = v<<3 | br.Bits(3)
	}
	v = v<<1 | br.Bits(1)
	if want := ref.Uint64(); v != want {
		t.Fatalf("reassembled %d, want %d", v, want)
	}
}

func TestFeederCloseIdempotent(t *testing.T) {
	f, err := NewFeeder(baselines.NewSplitMix64(1), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	f.Close() // must not panic
}

func TestFeederConsumerPanicsAfterDrain(t *testing.T) {
	f, err := NewFeeder(baselines.NewSplitMix64(1), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Source()
	f.Close()
	// Drain whatever is buffered, then expect the documented panic.
	defer func() {
		if recover() == nil {
			t.Error("consumer should panic once the closed feeder is drained")
		}
	}()
	for i := 0; i < 100; i++ {
		s.Uint64()
	}
}

func TestFeederTwoConsumersDisjoint(t *testing.T) {
	f, err := NewFeeder(baselines.NewSplitMix64(123), 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s1, s2 := f.Source(), f.Source()
	seen := make(map[uint64]int)
	for i := 0; i < 200; i++ {
		seen[s1.Uint64()]++
		seen[s2.Uint64()]++
	}
	for v, c := range seen {
		if c > 1 {
			t.Fatalf("word %d delivered %d times across consumers", v, c)
		}
	}
}
