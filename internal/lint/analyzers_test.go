package lint

import "testing"

func TestNoClock(t *testing.T) {
	runFixture(t, NoClock, "noclock", "fixtures/noclock")
}

// TestNoClockCmdExempt runs wall-clock-using code under a cmd/
// import path: the allowlist must silence the analyzer entirely.
func TestNoClockCmdExempt(t *testing.T) {
	runFixture(t, NoClock, "noclock_cmd", "fixtures/cmd/noclock")
}

func TestLockGuard(t *testing.T) {
	runFixture(t, LockGuard, "lockguard", "fixtures/lockguard")
}

func TestLockOrder(t *testing.T) {
	runFixture(t, LockOrder, "lockorder", "fixtures/lockorder")
}

func TestGoLeak(t *testing.T) {
	runFixture(t, GoLeak, "goleak", "fixtures/goleak")
}

func TestMarshalSym(t *testing.T) {
	runFixture(t, MarshalSym, "marshalsym", "fixtures/marshalsym")
}

func TestZeroFill(t *testing.T) {
	runFixture(t, ZeroFill, "zerofill", "fixtures/zerofill")
}
