package lint

import (
	"go/ast"
	"go/types"
)

// NoClock reports wall-clock and global-randomness reads in library
// code. The repo's exact-resume guarantee and its deterministic
// chaos/recovery schedules hold only because every time read and
// every random draw flows through an injected source (Pool.WithClock,
// seeded feeds); a stray time.Now or math/rand call silently breaks
// replayability. Binaries (cmd/), runnable docs (examples/) and test
// files are exempt; an intentional wall-clock default in library
// code carries a //lint:wallclock marker, which the driver verifies
// is load-bearing.
var NoClock = &Analyzer{
	Name: "noclock",
	Doc: "forbid time.Now/Since/After/Tick and global math/rand in library packages; " +
		"thread the injected clock / seeded feed instead, or mark //lint:wallclock",
	Run: runNoClock,
}

// clockFuncs are the package-level time functions that read the wall
// clock directly. (time.NewTimer/NewTicker express a real wait, not
// a time read, and stay allowed.)
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"After": true,
	"Tick":  true,
}

// randConstructors are the math/rand package-level functions that do
// NOT touch the global source: building a private Source/Rand around
// an injected stream is exactly the sanctioned pattern
// (Generator.MathRandSource, Client.Rand).
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runNoClock(pass *Pass) error {
	if pathExempt(pass.ImportPath) {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if clockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in library code; thread an injected clock (mirror Pool.WithClock) or justify with //lint:wallclock",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok &&
					obj.Type().(*types.Signature).Recv() == nil &&
					!randConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the global math/rand source in library code; use an injected seeded generator",
						pkgName.Imported().Path(), sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
