package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockOrder builds an inter-procedural lock-acquisition graph over
// every sync.Mutex/RWMutex in library code and reports the deadlock
// preconditions the Go toolchain cannot see:
//
//   - an acquisition cycle between two or more mutexes (A held while
//     B is acquired somewhere, B held while A is acquired somewhere
//     else) — the classic two-goroutine deadlock shape;
//   - the same mutex acquired while an instance of it is already
//     held (multi-instance locking with no deterministic order —
//     two goroutines walking the instances in opposite orders
//     deadlock);
//   - an RLock-to-Lock upgrade attempt on one mutex (self-deadlock
//     whenever a writer is already queued);
//   - a blocking acquisition that contradicts a declared partial
//     order.
//
// The graph is seeded from direct Lock/RLock/TryLock call sites and
// follows same-package calls the way marshalsym inlines codec
// helpers: a function's transitive acquire-set is charged at each
// call site against the locks the caller holds there, so the
// Registry.mu → tenant.mu edge inside evictTailLocked is visible
// from the Fill path that calls it with Registry.mu held.
//
// TryLock edges are recorded but non-blocking: a holder that fails a
// TryLock backs off instead of waiting, so a cycle is only a
// deadlock when every edge in it blocks. This is exactly the pool's
// gang-refill contract — shard i holds its own lock and TryLocks its
// neighbours — and the analyzer encodes it instead of asking for an
// annotation.
//
// # Declared order
//
//	mu sync.Mutex //lint:lockorder before tenant.mu <why>
//
// declares that mu is acquired before tenant.mu wherever both are
// held. The declarations must form a DAG; a blocking edge observed
// against a declaration is a finding even when no full cycle exists
// yet — the first half of a future deadlock is caught when it is
// written, not when its partner lands. Like every hybridlint marker,
// a declaration must be load-bearing: one that matches no observed
// edge, or carries no reason, is itself a finding.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "lock-acquisition cycles, unordered multi-instance locking, RLock upgrades and " +
		"violations of //lint:lockorder declared order are deadlock preconditions",
	Run: runLockOrder,
}

var lockOrderMarkerRe = regexp.MustCompile(`//lint:lockorder\s+before\s+(\S+)(?:\s+(.*))?$`)

// lockAcqMode classifies one acquisition.
type lockAcqMode int

const (
	acqBlock lockAcqMode = iota // Lock / RLock: waits for the holder
	acqTry                      // TryLock / TryRLock: backs off instead
)

// heldLock is one entry of the walker's held-set.
type heldLock struct {
	v    *types.Var // the mutex (field or package/local var)
	expr string     // spelling of the receiver, e.g. "s.mu"
	read bool       // held via RLock
	iter int        // loop pass that acquired it (cross-iteration detection)
}

// lockEdge is one observed "from held while to acquired" pair.
type lockEdge struct {
	from, to *types.Var
	blocking bool
	pos      token.Pos
}

type edgeKey struct {
	from, to *types.Var
	blocking bool
}

// lockDecl is one //lint:lockorder before marker.
type lockDecl struct {
	before, after *types.Var // declared: before is acquired first
	pos           token.Position
	reason        string
	text          string
	used          bool
}

type lockOrder struct {
	pass  *Pass
	decls map[types.Object]*ast.FuncDecl
	sums  map[*ast.FuncDecl]map[*types.Var]lockAcqMode
	edges map[edgeKey]*lockEdge
	names map[*types.Var]string
	iter  int // current loop pass while walking
}

func runLockOrder(pass *Pass) error {
	if pathExempt(pass.ImportPath) {
		return nil
	}
	lo := &lockOrder{
		pass:  pass,
		decls: make(map[types.Object]*ast.FuncDecl),
		sums:  make(map[*ast.FuncDecl]map[*types.Var]lockAcqMode),
		edges: make(map[edgeKey]*lockEdge),
		names: make(map[*types.Var]string),
	}
	for _, fd := range funcDecls(pass.Files) {
		if fd.Body != nil && !isTestFile(pass.Fset, fd.Pos()) {
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				lo.decls[obj] = fd
			}
		}
	}
	lo.collectNames()
	// Walk every function declaration and every function literal as
	// an independent root: a literal's body runs with its own stack,
	// and the locks its spawner held are its spawner's business.
	for _, fd := range funcDecls(pass.Files) {
		if fd.Body == nil || isTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		var held []heldLock
		lo.walkStmts(fd.Body.List, &held)
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				var held []heldLock
				lo.walkStmts(lit.Body.List, &held)
			}
			return true
		})
	}
	lo.reportCycles()
	lo.checkDeclarations()
	return nil
}

// collectNames maps every lockable field to "Owner.field" so
// diagnostics and declarations share one vocabulary; bare vars keep
// their name.
func (lo *lockOrder) collectNames() {
	scope := lo.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if tn, ok := obj.(*types.TypeName); ok {
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if isLockable(f.Type()) {
					lo.names[f] = tn.Name() + "." + f.Name()
				}
			}
		}
		if v, ok := obj.(*types.Var); ok && isLockable(v.Type()) {
			lo.names[v] = v.Name()
		}
	}
}

func (lo *lockOrder) name(v *types.Var) string {
	if n, ok := lo.names[v]; ok {
		return n
	}
	return v.Name()
}

// mutexOf resolves the receiver of a Lock/Unlock-style selector to
// the mutex variable it names: x.mu (field), mu (package-level or
// local var), or a var whose own type carries the lock methods (an
// embedded mutex).
func (lo *lockOrder) mutexOf(recv ast.Expr) *types.Var {
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		if s, ok := lo.pass.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if fv, ok := s.Obj().(*types.Var); ok && isLockable(fv.Type()) {
				return fv
			}
		}
	case *ast.Ident:
		var obj types.Object
		if u, ok := lo.pass.Info.Uses[x]; ok {
			obj = u
		} else if d, ok := lo.pass.Info.Defs[x]; ok {
			obj = d
		}
		if v, ok := obj.(*types.Var); ok && isLockable(v.Type()) {
			return v
		}
	case *ast.ParenExpr:
		return lo.mutexOf(x.X)
	}
	return nil
}

// acquire records one acquisition event against the current held-set:
// edges from every held lock, the self/upgrade checks, and the push.
func (lo *lockOrder) acquire(v *types.Var, expr string, read bool, mode lockAcqMode, pos token.Pos, held *[]heldLock) {
	for _, h := range *held {
		if h.v == v {
			if mode != acqBlock {
				continue // TryLock on a held peer backs off: gang refill
			}
			switch {
			case h.read && !read && h.expr == expr && h.iter == lo.iter:
				lo.pass.Reportf(pos,
					"RLock-to-Lock upgrade on %s: the Lock waits for readers that include this goroutine (self-deadlock once a writer queues)",
					lo.name(v))
			case h.expr == expr && h.iter == lo.iter && !h.read && !read:
				lo.pass.Reportf(pos,
					"%s is acquired while already held by this goroutine: sync mutexes are not reentrant, this self-deadlocks",
					lo.name(v))
			default:
				lo.pass.Reportf(pos,
					"%s is acquired while another instance of %s is held; without a deterministic instance order two goroutines locking in opposite orders deadlock",
					lo.name(v), lo.name(v))
			}
			continue
		}
		lo.addEdge(h.v, v, mode == acqBlock, pos)
	}
	*held = append(*held, heldLock{v: v, expr: expr, read: read, iter: lo.iter})
}

func (lo *lockOrder) addEdge(from, to *types.Var, blocking bool, pos token.Pos) {
	if from == to {
		return // self-edges are judged at the acquisition site
	}
	k := edgeKey{from, to, blocking}
	if _, ok := lo.edges[k]; !ok {
		lo.edges[k] = &lockEdge{from: from, to: to, blocking: blocking, pos: pos}
	}
}

// release pops the most recent held entry for v, preferring the one
// with the same receiver spelling.
func release(v *types.Var, expr string, held *[]heldLock) {
	h := *held
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].v == v && h[i].expr == expr {
			*held = append(h[:i], h[i+1:]...)
			return
		}
	}
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].v == v {
			*held = append(h[:i], h[i+1:]...)
			return
		}
	}
}

// summary computes the set of mutexes fd may acquire, transitively
// through same-package calls. Memoized; a recursion cycle
// contributes nothing to the back edge (under-approximation, never a
// false positive).
func (lo *lockOrder) summary(fd *ast.FuncDecl) map[*types.Var]lockAcqMode {
	if s, ok := lo.sums[fd]; ok {
		if s == nil {
			return map[*types.Var]lockAcqMode{}
		}
		return s
	}
	lo.sums[fd] = nil
	acq := make(map[*types.Var]lockAcqMode)
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs on its own stack (go/defer/callback)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if v := lo.mutexOf(sel.X); v != nil {
						acq[v] = acqBlock
						return true
					}
				case "TryLock", "TryRLock":
					if v := lo.mutexOf(sel.X); v != nil {
						if _, ok := acq[v]; !ok {
							acq[v] = acqTry
						}
						return true
					}
				}
			}
			if callee := lo.calleeDecl(n); callee != nil {
				for v, m := range lo.summary(callee) {
					if cur, ok := acq[v]; !ok || (cur == acqTry && m == acqBlock) {
						acq[v] = m
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
	lo.sums[fd] = acq
	return acq
}

// calleeDecl resolves a call to its same-package FuncDecl, or nil.
func (lo *lockOrder) calleeDecl(call *ast.CallExpr) *ast.FuncDecl {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = lo.pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = lo.pass.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != lo.pass.Pkg {
		return nil
	}
	return lo.decls[fn]
}

// walkStmts drives the held-set through a statement list in source
// order.
func (lo *lockOrder) walkStmts(list []ast.Stmt, held *[]heldLock) {
	for _, s := range list {
		lo.walkStmt(s, held)
	}
}

func (lo *lockOrder) walkStmt(s ast.Stmt, held *[]heldLock) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		lo.walkExpr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lo.walkExpr(e, held)
		}
		for _, e := range s.Lhs {
			lo.walkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lo.walkExpr(e, held)
		}
	case *ast.IfStmt:
		lo.walkIf(s, held)
	case *ast.ForStmt:
		lo.walkStmt(s.Init, held)
		lo.walkExpr(s.Cond, held)
		lo.walkLoopBody(s.Body, held)
		lo.walkStmt(s.Post, held)
	case *ast.RangeStmt:
		lo.walkExpr(s.X, held)
		lo.walkLoopBody(s.Body, held)
	case *ast.BlockStmt:
		clone := cloneHeld(*held)
		lo.walkStmts(s.List, &clone)
	case *ast.SwitchStmt:
		lo.walkStmt(s.Init, held)
		lo.walkExpr(s.Tag, held)
		for _, cc := range s.Body.List {
			clone := cloneHeld(*held)
			lo.walkStmts(cc.(*ast.CaseClause).Body, &clone)
		}
	case *ast.TypeSwitchStmt:
		lo.walkStmt(s.Init, held)
		for _, cc := range s.Body.List {
			clone := cloneHeld(*held)
			lo.walkStmts(cc.(*ast.CaseClause).Body, &clone)
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			clone := cloneHeld(*held)
			lo.walkStmts(cc.(*ast.CommClause).Body, &clone)
		}
	case *ast.LabeledStmt:
		lo.walkStmt(s.Stmt, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the
		// function — exactly what not releasing models. A deferred
		// same-package call is charged here (it runs with at least the
		// locks still held now on most paths).
		if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Unlock", "RUnlock":
				if lo.mutexOf(sel.X) != nil {
					return
				}
			}
		}
		lo.walkExpr(s.Call, held)
	case *ast.GoStmt:
		// The spawned call runs on its own stack with nothing held;
		// its body is analyzed as an independent root. Arguments are
		// evaluated synchronously, locks and all.
		for _, arg := range s.Call.Args {
			lo.walkExpr(arg, held)
		}
	case *ast.IncDecStmt:
		lo.walkExpr(s.X, held)
	case *ast.SendStmt:
		lo.walkExpr(s.Chan, held)
		lo.walkExpr(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						lo.walkExpr(e, held)
					}
				}
			}
		}
	}
}

// walkLoopBody walks a loop body twice with the held-set flowing
// between the passes, so a lock acquired in iteration k and still
// held when iteration k+1 acquires the same field shows up as a
// cross-iteration self-acquisition (the multi-instance ordering
// hazard of ascending/descending lock sweeps).
func (lo *lockOrder) walkLoopBody(body *ast.BlockStmt, held *[]heldLock) {
	clone := cloneHeld(*held)
	save := lo.iter
	lo.iter = save + 1
	lo.walkStmts(body.List, &clone)
	lo.iter = save + 2
	lo.walkStmts(body.List, &clone)
	lo.iter = save
}

// walkIf handles the TryLock idioms before the generic walk:
//
//	if !s.mu.TryLock() { return }        // held after the if
//	if s.mu.TryLock() { ... }            // held inside the body
func (lo *lockOrder) walkIf(s *ast.IfStmt, held *[]heldLock) {
	lo.walkStmt(s.Init, held)
	tries := collectTryLocks(s.Cond)
	// Calls in the condition other than the TryLocks themselves.
	lo.walkExprSkipping(s.Cond, held, tries)
	bodyHeld := cloneHeld(*held)
	for _, t := range tries {
		if !t.negated {
			if v := lo.mutexOf(t.recv); v != nil {
				lo.acquire(v, types.ExprString(t.recv), t.read, acqTry, t.pos, &bodyHeld)
			}
		}
	}
	lo.walkStmts(s.Body.List, &bodyHeld)
	if s.Else != nil {
		elseHeld := cloneHeld(*held)
		lo.walkStmt(s.Else, &elseHeld)
	}
	// A negated TryLock whose failure path diverges means the lock is
	// held on the fall-through path.
	if diverges(s.Body) {
		for _, t := range tries {
			if t.negated {
				if v := lo.mutexOf(t.recv); v != nil {
					lo.acquire(v, types.ExprString(t.recv), t.read, acqTry, t.pos, held)
				}
			}
		}
	}
}

// tryLockUse is one TryLock call found inside an if condition.
type tryLockUse struct {
	recv    ast.Expr
	pos     token.Pos
	negated bool
	read    bool
	call    *ast.CallExpr
}

func collectTryLocks(cond ast.Expr) []*tryLockUse {
	var out []*tryLockUse
	var walk func(e ast.Expr, neg bool)
	walk = func(e ast.Expr, neg bool) {
		switch e := e.(type) {
		case *ast.ParenExpr:
			walk(e.X, neg)
		case *ast.UnaryExpr:
			if e.Op == token.NOT {
				walk(e.X, !neg)
			}
		case *ast.BinaryExpr:
			if e.Op == token.LAND || e.Op == token.LOR {
				walk(e.X, neg)
				walk(e.Y, neg)
			}
		case *ast.CallExpr:
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "TryLock", "TryRLock":
					out = append(out, &tryLockUse{
						recv: sel.X, pos: e.Pos(), negated: neg,
						read: sel.Sel.Name == "TryRLock", call: e,
					})
				}
			}
		}
	}
	walk(cond, false)
	return out
}

// diverges reports whether the block always leaves the enclosing
// statement (return/break/continue/goto as its last statement).
func diverges(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

// walkExpr scans an expression in evaluation order for mutex
// operations and same-package calls.
func (lo *lockOrder) walkExpr(e ast.Expr, held *[]heldLock) {
	lo.walkExprSkipping(e, held, nil)
}

func (lo *lockOrder) walkExprSkipping(e ast.Expr, held *[]heldLock, skip []*tryLockUse) {
	if e == nil {
		return
	}
	skipped := make(map[*ast.CallExpr]bool, len(skip))
	for _, t := range skip {
		skipped[t.call] = true
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as an independent root
		case *ast.CallExpr:
			if skipped[n] {
				return false
			}
			for _, arg := range n.Args {
				ast.Inspect(arg, visit)
			}
			lo.handleCall(n, held)
			return false
		}
		return true
	}
	ast.Inspect(e, visit)
}

func (lo *lockOrder) handleCall(call *ast.CallExpr, held *[]heldLock) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if v := lo.mutexOf(sel.X); v != nil {
				lo.acquire(v, types.ExprString(sel.X), sel.Sel.Name == "RLock", acqBlock, call.Pos(), held)
				return
			}
		case "TryLock", "TryRLock":
			if v := lo.mutexOf(sel.X); v != nil {
				lo.acquire(v, types.ExprString(sel.X), sel.Sel.Name == "TryRLock", acqTry, call.Pos(), held)
				return
			}
		case "Unlock", "RUnlock":
			if v := lo.mutexOf(sel.X); v != nil {
				release(v, types.ExprString(sel.X), held)
				return
			}
		}
	}
	if callee := lo.calleeDecl(call); callee != nil {
		for v, mode := range lo.summary(callee) {
			for _, h := range *held {
				if h.v == v {
					if mode == acqBlock {
						lo.pass.Reportf(call.Pos(),
							"call acquires %s while an instance of it is already held here; without a deterministic instance order this deadlocks (same instance would self-deadlock)",
							lo.name(v))
					}
					continue
				}
				lo.addEdge(h.v, v, mode == acqBlock, call.Pos())
			}
		}
	}
}

func cloneHeld(h []heldLock) []heldLock {
	return append([]heldLock(nil), h...)
}

// reportCycles finds cycles among the blocking edges — every edge in
// the cycle waits, so the cycle is a reachable deadlock — and
// reports each once, at its lexically first edge.
func (lo *lockOrder) reportCycles() {
	next := make(map[*types.Var][]*lockEdge)
	var nodes []*types.Var
	seenNode := make(map[*types.Var]bool)
	for _, e := range lo.edges {
		if !e.blocking {
			continue
		}
		next[e.from] = append(next[e.from], e)
		for _, v := range []*types.Var{e.from, e.to} {
			if !seenNode[v] {
				seenNode[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return lo.name(nodes[i]) < lo.name(nodes[j]) })
	for _, es := range next {
		sort.Slice(es, func(i, j int) bool { return es[i].pos < es[j].pos })
	}
	reported := make(map[string]bool)
	for _, start := range nodes {
		path := []*lockEdge{}
		onPath := map[*types.Var]bool{start: true}
		var dfs func(v *types.Var)
		dfs = func(v *types.Var) {
			for _, e := range next[v] {
				if e.to == start && len(path) >= 1 {
					cycle := append(append([]*lockEdge(nil), path...), e)
					lo.reportCycle(cycle, reported)
					continue
				}
				if onPath[e.to] {
					continue
				}
				onPath[e.to] = true
				path = append(path, e)
				dfs(e.to)
				path = path[:len(path)-1]
				delete(onPath, e.to)
			}
		}
		dfs(start)
	}
}

func (lo *lockOrder) reportCycle(cycle []*lockEdge, reported map[string]bool) {
	names := make([]string, 0, len(cycle)+1)
	first := cycle[0]
	for _, e := range cycle {
		names = append(names, lo.name(e.from))
		if e.pos < first.pos {
			first = e
		}
	}
	sort.Strings(names)
	key := strings.Join(names, "→")
	if reported[key] {
		return
	}
	reported[key] = true
	// Present the cycle starting from the reported edge.
	var order []string
	idx := 0
	for i, e := range cycle {
		if e == first {
			idx = i
			break
		}
	}
	for i := 0; i <= len(cycle); i++ {
		order = append(order, lo.name(cycle[(idx+i)%len(cycle)].from))
	}
	lo.pass.Reportf(first.pos,
		"lock-acquisition cycle %s: every edge blocks, so two goroutines entering from different sides deadlock; break the cycle or declare the order with //lint:lockorder",
		strings.Join(order, " → "))
}

// checkDeclarations parses the //lint:lockorder markers, validates
// them (resolvable, reasoned, acyclic, load-bearing) and checks every
// observed blocking edge against the declared order.
func (lo *lockOrder) checkDeclarations() {
	decls := lo.collectDeclarations()
	if len(decls) == 0 {
		return
	}
	// Declared order must itself be a DAG.
	adj := make(map[*types.Var][]*types.Var)
	for _, d := range decls {
		if d.before != nil && d.after != nil {
			adj[d.before] = append(adj[d.before], d.after)
		}
	}
	for _, d := range decls {
		if d.before == nil || d.after == nil {
			continue
		}
		if reaches(adj, d.after, d.before) {
			lo.pass.ReportMarkerf(posOf(lo.pass, d.pos), d.text,
				"declared lock order is cyclic: %s before %s joins a declaration chain that already orders them the other way",
				lo.name(d.before), lo.name(d.after))
		}
	}
	for _, e := range lo.edges {
		for _, d := range decls {
			if d.before == nil || d.after == nil {
				continue
			}
			touches := (e.from == d.before && e.to == d.after) || (e.from == d.after && e.to == d.before)
			if touches {
				d.used = true
			}
			if e.blocking && e.from == d.after && e.to == d.before {
				lo.pass.Reportf(e.pos,
					"%s is acquired while %s is held, contradicting the declared order %q",
					lo.name(d.before), lo.name(d.after), d.text)
			}
		}
	}
	for _, d := range decls {
		switch {
		case d.before == nil || d.after == nil:
			// already reported by collectDeclarations
		case d.reason == "":
			lo.pass.ReportMarkerf(posOf(lo.pass, d.pos), d.text,
				"lockorder declaration needs a justification (//lint:lockorder before %s <why>)", lo.name(d.after))
		case !d.used:
			lo.pass.ReportMarkerf(posOf(lo.pass, d.pos), d.text,
				"lockorder declaration matches no observed acquisition and must be removed (markers have to be load-bearing)")
		}
	}
}

// collectDeclarations finds //lint:lockorder markers and binds each
// to the lockable field or var declared on the marker's line or the
// line below.
func (lo *lockOrder) collectDeclarations() []*lockDecl {
	var out []*lockDecl
	for _, f := range lo.pass.Files {
		if isTestFile(lo.pass.Fset, f.Pos()) {
			continue
		}
		var markers []*lockDecl
		byLine := make(map[string]map[int]*types.Var) // file → line → mutex declared there
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:lockorder") {
					continue
				}
				pos := lo.pass.Fset.Position(c.Pos())
				m := lockOrderMarkerRe.FindStringSubmatch(c.Text)
				if m == nil {
					lo.pass.Reportf(c.Pos(),
						"malformed lockorder marker: want //lint:lockorder before <Type.field|field> <why>")
					continue
				}
				markers = append(markers, &lockDecl{
					pos:    pos,
					reason: strings.TrimSpace(m[2]),
					text:   strings.TrimSpace(strings.TrimPrefix(c.Text, "//")),
				})
				// target (m[1]) resolved below, once the owner is known
			}
		}
		if len(markers) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fv, ok := lo.pass.Info.Defs[name].(*types.Var)
					if !ok || !isLockable(fv.Type()) {
						continue
					}
					p := lo.pass.Fset.Position(name.Pos())
					if byLine[p.Filename] == nil {
						byLine[p.Filename] = make(map[int]*types.Var)
					}
					byLine[p.Filename][p.Line] = fv
				}
			}
			return true
		})
		for _, d := range markers {
			lines := byLine[d.pos.Filename]
			v := lines[d.pos.Line]
			if v == nil {
				v = lines[d.pos.Line+1]
			}
			if v == nil {
				lo.pass.Reportf(posOf(lo.pass, d.pos),
					"lockorder marker is not attached to a mutex field (put it on the field's line or the line above)")
				continue
			}
			d.before = v
			m := lockOrderMarkerRe.FindStringSubmatch("//" + d.text)
			d.after = lo.resolveLockName(v, m[1])
			if d.after == nil {
				lo.pass.Reportf(posOf(lo.pass, d.pos),
					"cannot resolve lock %q in lockorder marker: no such mutex in this package", m[1])
				continue
			}
			out = append(out, d)
		}
	}
	return out
}

// resolveLockName turns "Type.field" (or "field", meaning a sibling
// of the marker's own mutex) into the mutex var it names.
func (lo *lockOrder) resolveLockName(self *types.Var, spec string) *types.Var {
	typeName, fieldName := "", spec
	if i := strings.IndexByte(spec, '.'); i >= 0 {
		typeName, fieldName = spec[:i], spec[i+1:]
	}
	lookup := func(st *types.Struct) *types.Var {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == fieldName && isLockable(f.Type()) {
				return f
			}
		}
		return nil
	}
	if typeName == "" {
		// Sibling field of self's struct, or a package-level var.
		for v, n := range lo.names {
			if n == fieldName && v != self {
				return v
			}
		}
		for _, tn := range lo.structOf(self) {
			if v := lookup(tn); v != nil {
				return v
			}
		}
		return nil
	}
	tn, ok := lo.pass.Pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return lookup(st)
}

// structOf returns the struct(s) that contain the field var.
func (lo *lockOrder) structOf(field *types.Var) []*types.Struct {
	var out []*types.Struct
	scope := lo.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				out = append(out, st)
			}
		}
	}
	return out
}

// reaches reports whether to is reachable from from in adj.
func reaches(adj map[*types.Var][]*types.Var, from, to *types.Var) bool {
	seen := map[*types.Var]bool{}
	var dfs func(v *types.Var) bool
	dfs = func(v *types.Var) bool {
		if v == to {
			return true
		}
		if seen[v] {
			return false
		}
		seen[v] = true
		for _, n := range adj[v] {
			if dfs(n) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// posOf converts an already-resolved Position back to a Pos in the
// pass's fileset for Reportf. Reportf re-resolves it, so findings at
// marker positions carry the marker's own file:line.
func posOf(pass *Pass, p token.Position) token.Pos {
	var pos token.Pos
	pass.Fset.Iterate(func(f *token.File) bool {
		if f.Name() == p.Filename {
			pos = f.LineStart(p.Line)
			return false
		}
		return true
	})
	if pos == token.NoPos {
		pos = token.Pos(1)
	}
	return pos
}
