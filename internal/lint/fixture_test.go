package lint

// The analyzer tests follow the x/tools analysistest convention:
// fixture packages under testdata/src/<analyzer> annotate the lines
// where findings are expected with
//
//	expr // want "regexp"
//	// wantbelow "regexp"     (expectation for the next //lint: line
//	                           below, for findings on marker lines)
//
// and the runner diffs reported diagnostics against the
// expectations in both directions.

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fixtureImporter resolves the handful of std imports fixtures use
// from compiler export data, shared across tests.
var fixtureImporter = sync.OnceValues(func() (map[string]string, error) {
	listed, err := goList("time", "sync", "sync/atomic", "encoding/binary", "errors", "math/rand", "context")
	if err != nil {
		return nil, err
	}
	packageFile := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
	}
	return packageFile, nil
})

// runFixture type-checks testdata/src/<dir> under the given import
// path, runs exactly one analyzer plus marker filtering, and matches
// diagnostics against the fixture's expectations.
func runFixture(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	packageFile, err := fixtureImporter()
	if err != nil {
		t.Fatalf("resolving std export data: %v", err)
	}
	root := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(root, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", root)
	}
	fset := token.NewFileSet()
	pkg, err := TypeCheck(fset, importPath, files, ExportImporter(fset, nil, packageFile))
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	wants := collectWants(t, files)
	matchDiags(t, diags, wants)
}

// want is one expectation: a diagnostic matching re at file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var (
	wantRe   = regexp.MustCompile(`// want(below)?( "(?:[^"\\]|\\.)*")+`)
	quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

func collectWants(t *testing.T, files []string) []*want {
	t.Helper()
	var wants []*want
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(data), "\n")
		for i, line := range lines {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			lineNo := i + 1
			if m[1] == "below" {
				// Target the next //lint: marker line (gofmt may pad
				// the gap with a bare "//" separator).
				for j := i + 1; j < len(lines); j++ {
					if strings.HasPrefix(strings.TrimSpace(lines[j]), "//lint:") {
						lineNo = j + 1
						break
					}
				}
				if lineNo == i+1 {
					t.Fatalf("%s:%d: wantbelow with no //lint: line below", file, i+1)
				}
			}
			for _, q := range quotedRe.FindAllString(m[0], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", file, i+1, q, err)
				}
				wants = append(wants, &want{file: file, line: lineNo, re: regexp.MustCompile(pat)})
			}
		}
	}
	return wants
}

func matchDiags(t *testing.T, diags []Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestTreeClean is the burn-down pinned as a test: the whole module
// must stay at zero hybridlint findings. New violations fail here
// (and in the CI vet step) with the same message a developer sees
// from `make lint`.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module; skipped in -short")
	}
	pkgs, err := LoadPatterns("repro/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := Run(pkg, All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestPathExempt pins the allowlist shape: cmd/ and examples/
// segments anywhere in the path are exempt, vet's test-variant
// suffix is ignored, and substring lookalikes are not exempt.
func TestPathExempt(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro", false},
		{"repro/client", false},
		{"repro/cmd/randd", true},
		{"repro/examples/basic", true},
		{"repro [repro.test]", false},
		{"repro/cmd/randd [x]", true},
		{"repro/commander", false},
		{"repro/internal/lint", false},
	}
	for _, c := range cases {
		if got := pathExempt(c.path); got != c.want {
			t.Errorf("pathExempt(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
