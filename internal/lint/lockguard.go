package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces "guarded by <mu>" field comments — the declared
// locking discipline behind the pool's thread-safety claim (the
// paper's on-demand GetNextRand must be callable from any goroutine).
// A field comment of the form
//
//	until time.Time // …; guarded by mu
//
// declares that the field may be touched only while the named mutex
// of the same struct is held; the qualified form "guarded by
// Owner.mu" puts a field of one type under a mutex living in another
// (the client's endpoint records are guarded by endpointSet.mu).
//
// The check is deliberately flow-insensitive — it asks "could this
// function possibly hold the lock?", not "does it on every path" —
// so it has no false positives on correct code and still catches the
// real failure mode: a new method touching guarded state with no
// locking in sight. An access is allowed when the enclosing function
//
//   - is a method on the mutex-owning type that acquires the mutex
//     (calls .Lock/.RLock/.TryLock on it) somewhere in its body, or
//   - follows the repo's *Locked naming convention (the caller holds
//     the lock; the convention is auditable at call sites), or
//   - operates on a value it constructed itself via a composite
//     literal (not yet shared, so not yet subject to the lock).
//
// LockGuard also reports mixed atomic/plain access: a field passed
// to sync/atomic functions in one place and read or written plainly
// in another has no consistent synchronisation story at all.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "enforce 'guarded by <mu>' field comments: guarded fields only under their mutex; " +
		"no mixed atomic/plain access to one field",
	Run: runLockGuard,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)(?:\.([A-Za-z_]\w*))?`)

// guardSpec says: accesses to the field are legal only in functions
// that can hold holder.mutex (or on locally built values).
type guardSpec struct {
	decl   string       // the comment's "mu" / "Owner.mu" spelling
	holder *types.Named // type owning the mutex
	mutex  *types.Var   // the mutex field inside holder
}

func runLockGuard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) > 0 {
		checkGuardedAccesses(pass, guards)
	}
	checkMixedAtomics(pass)
	return nil
}

// collectGuards parses the "guarded by" comments on struct fields.
func collectGuards(pass *Pass) map[*types.Var]*guardSpec {
	guards := make(map[*types.Var]*guardSpec)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			owner, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				m := guardedByRe.FindStringSubmatch(commentText(field))
				if m == nil {
					continue
				}
				spec := resolveGuard(pass, owner, m[1], m[2])
				if spec == nil {
					pass.Reportf(field.Pos(),
						"cannot resolve 'guarded by %s': no such mutex field in this package", strings.TrimSuffix(m[1]+"."+m[2], "."))
					continue
				}
				for _, name := range field.Names {
					if fv, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[fv] = spec
					}
				}
			}
			return true
		})
	}
	return guards
}

func commentText(f *ast.Field) string {
	var b strings.Builder
	if f.Doc != nil {
		b.WriteString(f.Doc.Text())
	}
	if f.Comment != nil {
		b.WriteString(f.Comment.Text())
	}
	return b.String()
}

// resolveGuard turns a comment's "mu" or "Owner.mu" into the mutex
// field object it names.
func resolveGuard(pass *Pass, owner *types.Named, a, b string) *guardSpec {
	holder, mutexName, decl := owner, a, a
	if b != "" {
		decl = a + "." + b
		tn, ok := pass.Pkg.Scope().Lookup(a).(*types.TypeName)
		if !ok {
			return nil
		}
		if holder, ok = tn.Type().(*types.Named); !ok {
			return nil
		}
		mutexName = b
	}
	st, ok := holder.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == mutexName && isLockable(f.Type()) {
			return &guardSpec{decl: decl, holder: holder, mutex: f}
		}
	}
	return nil
}

// isLockable reports whether t has Lock/Unlock in its method set —
// sync.Mutex, sync.RWMutex, or any local equivalent.
func isLockable(t types.Type) bool {
	ms := types.NewMethodSet(types.NewPointer(t))
	var hasLock, hasUnlock bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Lock":
			hasLock = true
		case "Unlock":
			hasUnlock = true
		}
	}
	return hasLock && hasUnlock
}

func checkGuardedAccesses(pass *Pass, guards map[*types.Var]*guardSpec) {
	for _, fd := range funcDecls(pass.Files) {
		if fd.Body == nil || isTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		var accesses []*ast.SelectorExpr
		var specs []*guardSpec
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			fv, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			if spec, guarded := guards[fv]; guarded {
				accesses = append(accesses, sel)
				specs = append(specs, spec)
			}
			return true
		})
		if len(accesses) == 0 {
			continue
		}
		locked := lockedTypes(pass, fd)
		fresh := locallyConstructed(pass, fd)
		for i, sel := range accesses {
			spec := specs[i]
			if strings.HasSuffix(fd.Name.Name, "Locked") && onHolder(pass, fd, spec) {
				continue // convention: caller holds the lock
			}
			if locked[spec.holder] {
				continue // this function takes the mutex itself
			}
			if base, ok := sel.X.(*ast.Ident); ok {
				if obj, ok := pass.Info.Uses[base].(*types.Var); ok && fresh[obj] {
					continue // under construction, not yet shared
				}
			}
			pass.Reportf(sel.Pos(),
				"%s.%s is guarded by %s, but %s neither acquires it nor is a *Locked helper",
				spec.holder.Obj().Name(), sel.Sel.Name, spec.decl, fd.Name.Name)
		}
	}
}

// onHolder reports whether fd is a method (or *Locked helper) whose
// receiver is the mutex-owning type, so the "caller holds the lock"
// convention can apply.
func onHolder(pass *Pass, fd *ast.FuncDecl, spec *guardSpec) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	return namedRecv(fn) == spec.holder
}

// lockedTypes returns the set of named types T for which fd contains
// a call x.mu.Lock/RLock/TryLock with x of type T — the
// flow-insensitive "this function acquires the lock" signal.
func lockedTypes(pass *Pass, fd *ast.FuncDecl) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock":
		default:
			return true
		}
		// sel.X should be <expr>.<mutexField>; resolve the type that
		// owns the mutex field.
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.Info.Selections[inner]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if !isLockable(s.Obj().Type()) {
			return true
		}
		if owner := namedOf(s.Recv()); owner != nil {
			out[owner] = true
		}
		return true
	})
	return out
}

// locallyConstructed returns the variables fd assigns from composite
// literals — values it built itself and has not shared yet.
func locallyConstructed(pass *Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isCompositeLit(rhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj, ok := pass.Info.Defs[id].(*types.Var); ok {
				out[obj] = true
			} else if obj, ok := pass.Info.Uses[id].(*types.Var); ok {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func isCompositeLit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	}
	return false
}

// checkMixedAtomics reports struct fields that are accessed both
// through sync/atomic package functions (atomic.AddUint64(&x.n, …))
// and plainly (x.n++) — two halves of the program disagreeing about
// the field's synchronisation discipline.
func checkMixedAtomics(pass *Pass) {
	atomicUses := make(map[*types.Var][]*ast.SelectorExpr)
	plainUses := make(map[*types.Var][]*ast.SelectorExpr)
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && isAtomicCall(pass, call) {
				for _, arg := range call.Args {
					if fv, sel := addressedField(pass, arg); fv != nil {
						atomicUses[fv] = append(atomicUses[fv], sel)
					}
				}
				return true
			}
			return true
		})
	}
	// Second walk for plain accesses, skipping the &x.f atomic args
	// collected above.
	inAtomic := make(map[*ast.SelectorExpr]bool)
	for _, sels := range atomicUses {
		for _, sel := range sels {
			inAtomic[sel] = true
		}
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomic[sel] {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			if fv, ok := s.Obj().(*types.Var); ok {
				if _, isAtomic := atomicUses[fv]; isAtomic {
					plainUses[fv] = append(plainUses[fv], sel)
				}
			}
			return true
		})
	}
	for fv, sels := range plainUses {
		for _, sel := range sels {
			pass.Reportf(sel.Pos(),
				"field %s is accessed through sync/atomic elsewhere; this plain access races with it",
				fv.Name())
		}
	}
}

// isAtomicCall reports calls to sync/atomic package-level functions.
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[ident].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "sync/atomic"
}

// addressedField unwraps &x.f to the field variable, or nil.
func addressedField(pass *Pass, e ast.Expr) (*types.Var, *ast.SelectorExpr) {
	ue, ok := e.(*ast.UnaryExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := ue.X.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	fv, _ := s.Obj().(*types.Var)
	return fv, sel
}
