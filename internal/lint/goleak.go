package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak requires every goroutine started in library code to have a
// provable shutdown path — the static half of the "prefetch ring or
// long-poll watcher outlives its Client" bug class. A goroutine that
// loops forever with no exit signal keeps its closure alive after
// the owner is closed: the fleet watcher keeps polling a dead
// controller, a substream handle's refill ring keeps fetching after
// the root Client is gone, and under churn those pile into an
// unbounded goroutine (and socket) leak the race detector never
// flags, because leaked goroutines race with nothing.
//
// The analyzer looks at every `go` statement and resolves the
// spawned body — a function literal in place, or a same-package
// function/method (`go c.refill()`). Within that body (not its
// callees — what a goroutine does per iteration is its own business;
// how it stops is the spawner's contract) every unbounded loop
// (`for {}` / `for true {}`) must contain a shutdown signal:
//
//   - a receive — in a select case or standalone — from a
//     context's Done() channel, or
//   - a receive from (or range over) a channel that library code
//     provably closes: close(ch) appears in this package (typically a
//     Close/Stop method — possibly on a different struct than the one
//     that spawned the goroutine), or the channel is a parameter of
//     the goroutine's own function, making closing it the caller's
//     documented duty, or
//   - a ctx.Err() check, the polling-loop equivalent.
//
// Loops with a real condition or a range over non-channel data are
// bounded by their own exit and pass. A select with only a `default`
// does not count as a signal — that is exactly the spin-poll shape
// that leaks. Goroutines that intentionally run for the process
// lifetime carry a //lint:ignore goleak marker naming the reason.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "every goroutine in library code needs a provable shutdown path: select on a " +
		"context/done channel closed by a Close/Stop method, or a bounded loop",
	Run: runGoLeak,
}

type goLeak struct {
	pass   *Pass
	decls  map[types.Object]*ast.FuncDecl
	closed map[*types.Var]bool // channel vars some function close()s
	seen   map[token.Pos]bool  // offending loops already reported
}

func runGoLeak(pass *Pass) error {
	if pathExempt(pass.ImportPath) {
		return nil
	}
	gl := &goLeak{
		pass:   pass,
		decls:  make(map[types.Object]*ast.FuncDecl),
		closed: make(map[*types.Var]bool),
		seen:   make(map[token.Pos]bool),
	}
	for _, fd := range funcDecls(pass.Files) {
		if fd.Body != nil && !isTestFile(pass.Fset, fd.Pos()) {
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				gl.decls[obj] = fd
			}
		}
	}
	gl.collectClosed()
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				gl.checkGo(g)
			}
			return true
		})
	}
	return nil
}

// collectClosed records every channel-valued var (field, package
// var, local) that some non-test function in the package calls
// close() on — including inside function literals, which is where
// sync.Once-guarded closes live (closed.Do(func() { close(f.done) })).
func (gl *goLeak) collectClosed() {
	for _, f := range gl.pass.Files {
		if isTestFile(gl.pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "close" {
				return true
			}
			if b, ok := gl.pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
				return true
			}
			if v := gl.chanVar(call.Args[0]); v != nil {
				gl.closed[v] = true
			}
			return true
		})
	}
}

// chanVar resolves an expression naming a channel to its variable:
// f.done (field), done (local/package var). Anything else is nil.
func (gl *goLeak) chanVar(e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := gl.pass.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
	case *ast.Ident:
		var obj types.Object
		if u, ok := gl.pass.Info.Uses[x]; ok {
			obj = u
		} else if d, ok := gl.pass.Info.Defs[x]; ok {
			obj = d
		}
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	case *ast.ParenExpr:
		return gl.chanVar(x.X)
	}
	return nil
}

// checkGo resolves the spawned body and audits its loops.
func (gl *goLeak) checkGo(g *ast.GoStmt) {
	var body *ast.BlockStmt
	var params map[*types.Var]bool
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
		params = gl.paramSet(fun.Type)
	default:
		var obj types.Object
		switch fun := fun.(type) {
		case *ast.Ident:
			obj = gl.pass.Info.Uses[fun]
		case *ast.SelectorExpr:
			obj = gl.pass.Info.Uses[fun.Sel]
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() != gl.pass.Pkg {
			return // cross-package spawn: that package's analyzers judge it
		}
		fd := gl.decls[fn]
		if fd == nil {
			return
		}
		body = fd.Body
		params = gl.paramSet(fd.Type)
	}
	gl.auditLoops(body, g, params)
}

// paramSet collects the function's own parameters: a channel or
// context handed in by the spawner is a shutdown signal by
// construction — closing/cancelling it is the caller's side of the
// contract.
func (gl *goLeak) paramSet(ft *ast.FuncType) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := gl.pass.Info.Defs[name].(*types.Var); ok {
				out[v] = true
			}
		}
	}
	return out
}

// auditLoops finds the unbounded loops in the goroutine's own body
// (nested literals spawn or register elsewhere; they are audited at
// their own go statements) and demands a shutdown signal in each.
func (gl *goLeak) auditLoops(body *ast.BlockStmt, g *ast.GoStmt, params map[*types.Var]bool) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if !unboundedFor(n) {
				return true
			}
			if gl.hasShutdownSignal(n.Body, params) {
				return true
			}
			gl.reportLoop(n.Pos(), g,
				"goroutine loops forever with no shutdown path: give the loop a select case on a context Done() or a close()-able done channel, or bound it")
			return true
		case *ast.RangeStmt:
			if ch, ok := gl.pass.Info.Types[n.X]; ok {
				if _, isChan := ch.Type.Underlying().(*types.Chan); isChan {
					if v := gl.chanVar(n.X); v == nil || !(gl.closed[v] || params[v]) {
						gl.reportLoop(n.Pos(), g,
							"goroutine ranges over a channel nothing in this package ever close()s, so the range never ends and the goroutine leaks")
					}
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(body, visit)
}

func (gl *goLeak) reportLoop(loopPos token.Pos, g *ast.GoStmt, msg string) {
	if gl.seen[loopPos] {
		return
	}
	gl.seen[loopPos] = true
	spawn := gl.pass.Fset.Position(g.Pos())
	gl.pass.Reportf(loopPos, "%s (started at %s:%d)", msg, shortPath(spawn.Filename), spawn.Line)
}

// shortPath trims the path to its last two segments so diagnostics
// stay readable regardless of the checkout location.
func shortPath(p string) string {
	slash := 0
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			slash++
			if slash == 2 {
				return p[i+1:]
			}
		}
	}
	return p
}

// unboundedFor reports whether the loop can only be left by an
// explicit exit: `for {}` or `for true {}`.
func unboundedFor(f *ast.ForStmt) bool {
	if f.Cond == nil {
		return true
	}
	if id, ok := f.Cond.(*ast.Ident); ok && id.Name == "true" {
		return true
	}
	return false
}

// hasShutdownSignal scans the loop body (through nested blocks and
// selects, not into nested function literals) for a qualifying exit
// signal.
func (gl *goLeak) hasShutdownSignal(body *ast.BlockStmt, params map[*types.Var]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && gl.qualifyingRecv(n.X, params) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := gl.pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if gl.qualifyingRecv(n.X, params) {
						found = true
						return false
					}
				}
			}
		case *ast.CallExpr:
			// ctx.Err() != nil checks: the polling-loop spelling of a
			// Done() select.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" {
				if isContext(gl.pass.Info.TypeOf(sel.X)) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// qualifyingRecv reports whether receiving from e is a real shutdown
// signal: a context Done() channel, or a channel var that library
// code closes (or that the goroutine's caller owns as a parameter).
func (gl *goLeak) qualifyingRecv(e ast.Expr, params map[*types.Var]bool) bool {
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if isContext(gl.pass.Info.TypeOf(sel.X)) {
				return true
			}
		}
		return false
	}
	v := gl.chanVar(e)
	if v == nil {
		return false
	}
	return gl.closed[v] || params[v]
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
