// Package lint is hybridlint: a suite of static analyzers that
// mechanically enforce the repo's cross-cutting invariants — the
// conventions the Go toolchain cannot see but the paper's guarantees
// depend on:
//
//   - noclock: randomness and time must flow through injected,
//     seeded sources (exact-resume and the deterministic
//     chaos/recovery schedules depend on it), so library code must
//     not call time.Now/Since/After or the global math/rand.
//   - lockguard: shared walker/pool state must be touched only under
//     its declared lock ("guarded by <mu>" field comments), the
//     thread-safety claim behind Algorithm 2's on-demand GetNextRand.
//   - marshalsym: every field written by a MarshalBinary must be
//     read back symmetrically by its UnmarshalBinary unless a
//     version tag guards the asymmetry — the v1/v2/v3 state-blob
//     compatibility chain.
//   - zerofill: exported Fill/Read-shaped draw functions must zero
//     their output buffer on every error path, so stale buffer
//     contents can never be consumed as randomness.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) but is built on the standard library only: this
// module is dependency-free and stays that way. cmd/hybridlint is
// the multichecker driver; it runs standalone (`hybridlint ./...`)
// and as a `go vet -vettool`.
//
// # Suppression markers
//
// A finding on an intentional violation is silenced in place, and
// every marker must be load-bearing — a marker that suppresses
// nothing is itself a finding, so stale markers cannot accumulate:
//
//	p.now = time.Now //lint:wallclock default clock; WithClock injects
//	//lint:ignore zerofill buffer documented as undefined on error
//
// //lint:wallclock is shorthand for //lint:ignore noclock. A marker
// suppresses findings of its analyzer on the marker's own line, or
// on the line directly below when the marker stands alone.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore markers.
	Name string
	// Doc is a one-paragraph description of what it enforces.
	Doc string
	// Run inspects a package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// All is the hybridlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{NoClock, LockGuard, LockOrder, GoLeak, MarshalSym, ZeroFill}
}

// A Pass hands one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax. Test files (*_test.go) are
	// included when the driver loads them (go vet does); analyzers
	// skip them — the invariants gate production code.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// ImportPath is the package's import path ("repro/client"); the
	// allowlist exemptions (cmd/, examples/) key off its segments.
	ImportPath string

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportMarkerf records a finding about a marker comment, carrying
// the marker's text for machine-readable output.
func (p *Pass) ReportMarkerf(pos token.Pos, markerText, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Marker:   markerText,
	})
}

// A Diagnostic is one finding, already positioned. Marker is set
// when the finding is about a suppression/declaration marker rather
// than code (the load-bearing checks); it carries the marker text so
// `hybridlint -json` consumers can distinguish the two.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Marker   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Package is a loaded, type-checked unit of analysis.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string
}

// NewInfo returns a types.Info with every map analyzers rely on
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run applies the analyzers to pkg, applies suppression markers and
// returns the surviving diagnostics (plus a finding for every marker
// that suppressed nothing) sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Pkg,
			Info:       pkg.Info,
			ImportPath: pkg.ImportPath,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = applyMarkers(pkg, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// marker is one //lint:… comment.
type marker struct {
	pos      token.Position
	analyzer string // which analyzer it suppresses
	reason   string
	text     string // the raw comment, surfaced in marker findings
	used     bool
}

var markerRe = regexp.MustCompile(`//lint:(wallclock|ignore)(?:\s+(\S+))?(?:\s+(.*))?$`)

// applyMarkers filters diags through the suppression comments of
// pkg's files and appends a finding for every marker belonging to a
// ran analyzer that suppressed nothing (or carries no reason) — the
// "load-bearing" check.
func applyMarkers(pkg *Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var markers []*marker
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Only whole-comment markers count; prose that merely
				// mentions "//lint:…" mid-comment does not.
				if !strings.HasPrefix(c.Text, "//lint:") {
					continue
				}
				m := markerRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				mk := &marker{pos: pkg.Fset.Position(c.Pos()), text: c.Text}
				switch m[1] {
				case "wallclock":
					mk.analyzer = "noclock"
					mk.reason = strings.TrimSpace(m[2] + " " + m[3])
				default: // ignore
					mk.analyzer = m[2]
					mk.reason = strings.TrimSpace(m[3])
				}
				markers = append(markers, mk)
			}
		}
	}
	if len(markers) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, mk := range markers {
			if mk.analyzer != d.Analyzer || mk.pos.Filename != d.Pos.Filename {
				continue
			}
			if mk.pos.Line == d.Pos.Line || mk.pos.Line+1 == d.Pos.Line {
				mk.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, mk := range markers {
		if !ran[mk.analyzer] {
			continue // can't judge markers for analyzers that didn't run
		}
		switch {
		case !mk.used:
			kept = append(kept, Diagnostic{
				Pos:      mk.pos,
				Analyzer: mk.analyzer,
				Message:  "marker suppresses nothing and must be removed (markers have to be load-bearing)",
				Marker:   mk.text,
			})
		case mk.reason == "":
			kept = append(kept, Diagnostic{
				Pos:      mk.pos,
				Analyzer: mk.analyzer,
				Message:  "marker needs a justification (//lint:… <why>)",
				Marker:   mk.text,
			})
		}
	}
	return kept
}

// pathExempt reports whether the import path is on the allowlist of
// trees where wall-clock and global-rand use is fine: binaries under
// cmd/ and runnable documentation under examples/.
func pathExempt(importPath string) bool {
	// go vet names test variants "repro [repro.test]"; judge the
	// underlying package.
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}
	for _, seg := range strings.Split(importPath, "/") {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return false
}

// isTestFile reports whether pos sits in a *_test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// enclosingFuncs returns every FuncDecl in the file, for analyzers
// that need the function containing a node.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// namedRecv resolves a method receiver to its named type (through
// pointers and, on go1.22+, aliases); nil for non-methods.
func namedRecv(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	} else if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	return nil
}
