// Package lockguard exercises the lockguard analyzer: "guarded by"
// field comments and mixed atomic/plain access.
package lockguard

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int // live count; guarded by mu
}

// Good: acquires the declared mutex.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Good: TryLock also counts as acquiring.
func (c *counter) tryInc() bool {
	if !c.mu.TryLock() {
		return false
	}
	defer c.mu.Unlock()
	c.n++
	return true
}

// Good: the *Locked naming convention — the caller holds the lock.
func (c *counter) bumpLocked(by int) {
	c.n += by
}

// Good: a value this function built itself is not yet shared.
func newCounter(start int) *counter {
	c := &counter{}
	c.n = start
	return c
}

// Bad: touches the guarded field with no locking in sight.
func (c *counter) peek() int {
	return c.n // want "guarded by mu"
}

// Bad: *Locked helpers must be methods on the mutex-owning type.
func sumLocked(a, b *counter) int {
	return a.n + b.n // want "guarded by mu" "guarded by mu"
}

// Suppressed: an acknowledged exception with a reason.
func (c *counter) racyEstimate() int {
	return c.n //lint:ignore lockguard monitoring estimate; staleness is acceptable here
}

// Cross-struct guards: records owned by a registry, guarded by the
// registry's mutex (the endpointSet/endpoint shape).
type registry struct {
	mu    sync.Mutex
	items []*item
}

type item struct {
	name string
	hits int // guarded by registry.mu
}

// Good: the registry method locks its own mutex around item access.
func (r *registry) hit(it *item) {
	r.mu.Lock()
	defer r.mu.Unlock()
	it.hits++
}

// Bad: free function touching a guarded item field lock-free.
func drain(it *item) int {
	h := it.hits // want "guarded by registry.mu"
	return h
}

// Mixed atomic/plain access to one field.
type gauge struct {
	val uint64
}

func (g *gauge) bump() {
	atomic.AddUint64(&g.val, 1)
}

// Bad: plain read of a field that is updated atomically elsewhere.
func (g *gauge) read() uint64 {
	return g.val // want "accessed through sync/atomic elsewhere"
}
