// Package lockorder fixes the analyzer's judgement on the repo's
// locking shapes: real cycles and upgrades must be caught (by name),
// and the deliberately lock-free-ish idioms — TryLock gangs,
// deferred unlocks, *Locked helpers called under their lock — must
// pass silently.
package lockorder

import "sync"

// --- a real two-mutex cycle: the classic AB/BA deadlock ---

type Account struct {
	mu   sync.Mutex
	peer *Ledger
}

type Ledger struct {
	mu   sync.Mutex
	back *Account
}

func (a *Account) Reconcile() {
	a.mu.Lock()
	a.peer.mu.Lock() // want "lock-acquisition cycle Account.mu → Ledger.mu → Account.mu"
	a.peer.mu.Unlock()
	a.mu.Unlock()
}

func (l *Ledger) Audit() {
	l.mu.Lock()
	l.back.mu.Lock()
	l.back.mu.Unlock()
	l.mu.Unlock()
}

// --- the gang-refill idiom: TryLock on peers never blocks, so the
// self-pair is not a deadlock and must not be a finding ---

type Shard struct {
	mu    sync.Mutex
	next  *Shard
	count int
}

func (s *Shard) refillNeighbour() {
	if !s.mu.TryLock() {
		return
	}
	defer s.mu.Unlock()
	s.count++
	if s.next.mu.TryLock() {
		s.next.count++
		s.next.mu.Unlock()
	}
}

// deferredUnlock pins the defer idiom: the lock is held to the end,
// and that alone is not a finding.
func (s *Shard) deferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
}

// --- multi-instance locking without a declared order ---

func lockAll(shards []*Shard) {
	for _, s := range shards {
		s.mu.Lock() // want "another instance of Shard.mu is held"
	}
	for _, s := range shards {
		s.mu.Unlock()
	}
}

// lockAllBlessed is the same sweep with the pool's justification:
// the suppression must silence it and count as load-bearing.
func lockAllBlessed(shards []*Shard) {
	for _, s := range shards {
		//lint:ignore lockorder callers sort shards ascending before sweeping
		s.mu.Lock()
	}
	for _, s := range shards {
		s.mu.Unlock()
	}
}

// --- RLock-then-Lock upgrade: self-deadlock once a writer queues ---

type Cache struct {
	mu sync.RWMutex
	m  map[int]int
}

func (c *Cache) Upgrade(k int) {
	c.mu.RLock()
	if c.m[k] == 0 {
		c.mu.Lock() // want "RLock-to-Lock upgrade on Cache.mu"
		c.m[k] = 1
		c.mu.Unlock()
	}
	c.mu.RUnlock()
}

// Reread releases before re-acquiring for write: the legal spelling,
// no finding.
func (c *Cache) Reread(k int) int {
	c.mu.RLock()
	v := c.m[k]
	c.mu.RUnlock()
	if v == 0 {
		c.mu.Lock()
		c.m[k] = 1
		c.mu.Unlock()
	}
	return v
}

func (c *Cache) doubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want "not reentrant"
	c.mu.Unlock()
	c.mu.Unlock()
}

// --- inter-procedural: the edge hides inside a *Locked helper ---

type Registry struct {
	mu sync.Mutex
	e  *Entry
}

type Entry struct {
	mu  sync.Mutex
	hot bool
}

func (r *Registry) Evict() {
	r.mu.Lock()
	r.evictLocked() // want "lock-acquisition cycle Registry.mu → Entry.mu → Registry.mu"
	r.mu.Unlock()
}

func (r *Registry) evictLocked() {
	r.e.mu.Lock()
	r.e.hot = false
	r.e.mu.Unlock()
}

func (e *Entry) Promote(r *Registry) {
	e.mu.Lock()
	r.mu.Lock()
	e.hot = true
	r.mu.Unlock()
	e.mu.Unlock()
}
