package lockorder

import "sync"

// --- declared order, respected: the marker documents the DAG and
// the observed edge matches it — no findings ---

type Outer struct {
	mu sync.Mutex //lint:lockorder before Inner.mu outer resolves the handle, then delegates under the inner lock
	in *Inner
}

type Inner struct {
	mu sync.Mutex
	n  int
}

func (o *Outer) Touch() {
	o.mu.Lock()
	o.in.mu.Lock()
	o.in.n++
	o.in.mu.Unlock()
	o.mu.Unlock()
}

// --- declared order, violated: the reverse edge is a finding even
// though no full cycle exists yet ---

type Planner struct {
	mu sync.Mutex //lint:lockorder before Queue.mu the planner schedules queues, never the reverse
	q  *Queue
}

type Queue struct {
	mu sync.Mutex
	p  *Planner
}

func (q *Queue) Reschedule() {
	q.mu.Lock()
	q.p.mu.Lock() // want "Planner.mu is acquired while Queue.mu is held, contradicting the declared order"
	q.p.mu.Unlock()
	q.mu.Unlock()
}

// --- marker hygiene: unused, reasonless, unresolvable ---

type Hygiene struct {
	// wantbelow "matches no observed acquisition"
	//lint:lockorder before Inner.mu never actually nested anywhere
	idleMu sync.Mutex

	// wantbelow "needs a justification"
	//lint:lockorder before Inner.mu
	bareMu sync.Mutex

	// wantbelow "cannot resolve lock"
	//lint:lockorder before Phantom.mu no such type in this package
	lostMu sync.Mutex

	// wantbelow "not attached to a mutex field"
	//lint:lockorder before Inner.mu floats between fields

	n int
}

// --- cyclic declarations: each marker joins a chain that orders the
// pair both ways ---

type Left struct {
	// wantbelow "declared lock order is cyclic"
	//lint:lockorder before Right.mu left coordinates right
	mu sync.Mutex
	r  *Right
}

type Right struct {
	// wantbelow "declared lock order is cyclic"
	//lint:lockorder before Left.mu right coordinates left
	mu sync.Mutex
}

func (l *Left) Use() {
	l.mu.Lock()
	l.r.mu.Lock() // want "Right.mu is acquired while Left.mu is held, contradicting the declared order"
	l.r.mu.Unlock()
	l.mu.Unlock()
}
