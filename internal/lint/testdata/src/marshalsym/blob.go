// Package marshalsym exercises the marshalsym analyzer: encode and
// decode halves of a state blob must move the same data.
package marshalsym

import (
	"encoding/binary"
	"errors"
)

// Widget reproduces the historical monitor-marshal bug: a field was
// added to the encoder (and the struct) without touching the decoder
// or the version tag, so every blob round-trip silently drops it and
// misparses whatever follows.
type Widget struct {
	a, b, c uint64
	added   uint64
}

func (w *Widget) MarshalBinary() ([]byte, error) { // want "always writes 4 8-byte values but UnmarshalBinary consumes at most 3"
	out := make([]byte, 32)
	binary.LittleEndian.PutUint64(out[0:], w.a)
	binary.LittleEndian.PutUint64(out[8:], w.b)
	binary.LittleEndian.PutUint64(out[16:], w.c)
	binary.LittleEndian.PutUint64(out[24:], w.added)
	return out, nil
}

func (w *Widget) UnmarshalBinary(p []byte) error {
	if len(p) < 24 {
		return errors.New("short widget blob")
	}
	w.a = binary.LittleEndian.Uint64(p[0:])
	w.b = binary.LittleEndian.Uint64(p[8:])
	w.c = binary.LittleEndian.Uint64(p[16:])
	return nil
}

// Greedy decodes more than its encoder ever produced.
type Greedy struct {
	x, y uint64
}

func (g *Greedy) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, g.x)
	return out, nil
}

func (g *Greedy) UnmarshalBinary(p []byte) error { // want "always reads 2 8-byte values but MarshalBinary writes at most 1"
	if len(p) < 16 {
		return errors.New("short greedy blob")
	}
	g.x = binary.LittleEndian.Uint64(p[0:])
	g.y = binary.LittleEndian.Uint64(p[8:])
	return nil
}

// Versioned is the sanctioned way to grow a blob: the new field is
// decoded only behind a version comparison, so old blobs still
// parse. Asymmetry guarded by a version tag is legal by
// construction.
type Versioned struct {
	x, y uint32
}

func (v *Versioned) MarshalBinary() ([]byte, error) {
	out := make([]byte, 9)
	out[0] = 2 // version
	binary.LittleEndian.PutUint32(out[1:], v.x)
	binary.LittleEndian.PutUint32(out[5:], v.y)
	return out, nil
}

func (v *Versioned) UnmarshalBinary(p []byte) error {
	if len(p) < 5 {
		return errors.New("short versioned blob")
	}
	version := p[0]
	v.x = binary.LittleEndian.Uint32(p[1:])
	if version >= 2 {
		v.y = binary.LittleEndian.Uint32(p[5:])
	}
	return nil
}

// Framed round-trips through the repo's real idioms — a put32
// closure, a shared helper and a length-prefixed loop — and is
// symmetric, so inlining must keep it clean.
type Framed struct {
	head uint32
	vals []uint64
}

func put64at(out []byte, off int, v uint64) {
	binary.LittleEndian.PutUint64(out[off:], v)
}

func (f *Framed) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4+8*len(f.vals))
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(out, v)
	}
	put32(f.head)
	for i, v := range f.vals {
		put64at(out, 4+8*i, v)
	}
	return out, nil
}

func (f *Framed) UnmarshalBinary(p []byte) error {
	if len(p) < 4 || (len(p)-4)%8 != 0 {
		return errors.New("bad framed blob")
	}
	f.head = binary.LittleEndian.Uint32(p)
	f.vals = make([]uint64, (len(p)-4)/8)
	for i := range f.vals {
		f.vals[i] = binary.LittleEndian.Uint64(p[4+8*i:])
	}
	return nil
}

// Oneway is deliberately asymmetric — the trailing checksum is
// verified out of band — and carries the acknowledgement marker.
type Oneway struct {
	n uint64
}

//lint:ignore marshalsym trailing checksum is written for external tooling and never decoded here
func (o *Oneway) MarshalBinary() ([]byte, error) {
	out := make([]byte, 16)
	binary.LittleEndian.PutUint64(out[0:], o.n)
	binary.LittleEndian.PutUint64(out[8:], o.n^0xDEAD)
	return out, nil
}

func (o *Oneway) UnmarshalBinary(p []byte) error {
	if len(p) < 16 {
		return errors.New("short oneway blob")
	}
	o.n = binary.LittleEndian.Uint64(p)
	return nil
}
