// Package noclock exercises the noclock analyzer: wall-clock reads
// and global math/rand draws in library code.
package noclock

import (
	"math/rand"
	"time"
)

// Bad: direct wall-clock reads.
func stamps() (time.Time, time.Duration) {
	t := time.Now()    // want "time.Now reads the wall clock"
	d := time.Since(t) // want "time.Since reads the wall clock"
	return t, d
}

func waiter() <-chan time.Time {
	return time.After(time.Second) // want "time.After reads the wall clock"
}

// Bad: referencing the function without calling it is still a
// wall-clock dependency (the repo's default-clock assignments).
var defaultClock = time.Now // want "time.Now reads the wall clock"

// Bad: the global math/rand source.
func roll() int {
	return rand.Intn(6) // want "global math/rand source"
}

// Good: a real wait primitive is not a clock read.
func tick(stop chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
}

// Good: building a private generator around an injected seed is the
// sanctioned pattern.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Good: an injected clock threaded as a value.
type clocked struct {
	now func() time.Time
}

func (c clocked) stamp() time.Time { return c.now() }

// Suppressed: a justified wallclock marker on the same line.
func defaulted(now func() time.Time) func() time.Time {
	if now == nil {
		now = time.Now //lint:wallclock fixture default; the injection point is the parameter
	}
	return now
}

// Suppressed: a standalone marker covers the line below.
func standalone() time.Time {
	//lint:wallclock fixture: marker on its own line
	return time.Now()
}

// A marker that suppresses nothing is itself a finding.
// wantbelow "marker suppresses nothing"
//
//lint:wallclock nothing on this line reads a clock
func quiet() int { return 4 }

// A marker without a justification is itself a finding.
// wantbelow "marker needs a justification"
//
//lint:wallclock
func bare() time.Time { return time.Now() }
