package noclock

import "time"

// Exempt: test files may read the wall clock freely.
func testingHelper() time.Time {
	return time.Now()
}
