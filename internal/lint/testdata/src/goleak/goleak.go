// Package goleak fixes the analyzer's judgement on goroutine
// lifetimes: loops with a provable shutdown signal pass, loops that
// can only be abandoned are findings — including the exact
// "prefetch ring outlives its client" shape the analyzer exists for.
package goleak

import (
	"context"
	"sync"
	"time"
)

// --- the canonical leak: a prefetch ring spawned by a constructor
// with no way to stop it ---

type Ring struct {
	blocks chan []byte
}

func NewRing() *Ring {
	r := &Ring{blocks: make(chan []byte, 2)}
	go func() {
		for { // want "loops forever with no shutdown path"
			r.blocks <- make([]byte, 64)
		}
	}()
	return r
}

// --- context cancellation: the repo's standard shape, passes ---

func watch(ctx context.Context, out chan<- int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case out <- 1:
			}
		}
	}()
}

// pollErr is the polling spelling of the same contract.
func pollErr(ctx context.Context, tick func()) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			tick()
		}
	}()
}

// --- done channel closed by a different struct's Close: the spawn
// is in a constructor, the shutdown lives on the owner ---

type worker struct {
	done chan struct{}
	n    int
}

type Owner struct {
	w *worker
}

func NewOwner() *Owner {
	w := &worker{done: make(chan struct{})}
	go w.run()
	return &Owner{w: w}
}

// run polls with a default case — legal, because the select still
// carries the done signal.
func (w *worker) run() {
	for {
		select {
		case <-w.done:
			return
		default:
		}
		w.n++
	}
}

func (o *Owner) Close() {
	close(o.w.done)
}

// --- select with only a default: a spin poll nothing can stop ---

func spinPoll(n *int) {
	go func() {
		for { // want "loops forever with no shutdown path"
			select {
			default:
			}
			*n++
		}
	}()
}

// --- a quit channel handed in as a parameter of the spawned
// function: closing it is the caller's documented duty ---

func startPump(out chan<- int, quit chan struct{}) {
	go pump(out, quit)
}

func pump(out chan<- int, quit chan struct{}) {
	for {
		select {
		case <-quit:
			return
		case out <- 1:
		}
	}
}

// --- ranging over channels: fine when library code closes the
// channel, a leak when nothing ever will ---

type Feeder struct {
	chunks chan []byte
	closed sync.Once
}

func (f *Feeder) drain(sink func([]byte)) {
	go func() {
		for b := range f.chunks {
			sink(b)
		}
	}()
}

// Stop closes inside the Once's literal — the close scan must see
// through function literals.
func (f *Feeder) Stop() {
	f.closed.Do(func() { close(f.chunks) })
}

func leakRange(events chan int, sink func(int)) {
	go func() {
		for e := range events { // want "ranges over a channel nothing in this package ever close"
			sink(e)
		}
	}()
}

// --- bounded loops need no signal: they end on their own ---

func fanOut(jobs []int, f func(int)) {
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				f(jobs[i])
			}
		}(i)
	}
	wg.Wait()
}

// --- a ticker loop with no shutdown signal: <-t.C is a wakeup, not
// an exit ---

func tickForever(t *time.Ticker, f func()) {
	go func() {
		for { // want "loops forever with no shutdown path"
			<-t.C
			f()
		}
	}()
}

// --- process-lifetime daemons carry the justification in place ---

func metricsPump(counter *int) {
	go func() {
		//lint:ignore goleak process-lifetime pump, intentionally runs until exit
		for {
			*counter++
		}
	}()
}
