// Package main is the noclock path-allowlist fixture: loaded under
// an import path with a cmd/ segment, where wall-clock use is fine.
package main

import "time"

func uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func main() {
	_ = uptime(time.Now())
}
