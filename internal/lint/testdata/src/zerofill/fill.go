// Package zerofill exercises the zerofill analyzer: exported
// Fill/Read shapes must zero their output buffer on error paths.
package zerofill

import "errors"

var errDown = errors.New("source down")

type source struct {
	ok    bool
	words []uint64
}

func zeroWords(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
}

// Good: both error paths zero the buffer first.
type safe struct{ src source }

func (s *safe) Fill(dst []uint64) error {
	if !s.src.ok {
		zeroWords(dst)
		return errDown
	}
	n := copy(dst, s.src.words)
	if n < len(dst) {
		zeroWords(dst[n:])
		return errDown
	}
	return nil
}

// Good: zeroing with an inline loop instead of a helper.
func (s *safe) Read(p []byte) (int, error) {
	if !s.src.ok {
		for i := range p {
			p[i] = 0
		}
		return 0, errDown
	}
	return len(p), nil
}

// Bad: hands the error up with whatever was in the buffer.
type leaky struct{ src source }

func (l *leaky) Fill(dst []uint64) error {
	if !l.src.ok {
		return errDown // want "returns an error without zeroing dst"
	}
	copy(dst, l.src.words)
	return nil
}

// Bad: the early path zeroes, the partial-read path does not.
func (l *leaky) Read(p []byte) (int, error) {
	if !l.src.ok {
		for i := range p {
			p[i] = 0
		}
		return 0, errDown
	}
	n := len(p) / 2
	if n < len(p) {
		return n, errDown // want "returns an error without zeroing p"
	}
	return n, nil
}

// Exempt: unexported helpers delegate zeroing to their exported
// callers.
func (l *leaky) fill(dst []uint64) error {
	if !l.src.ok {
		return errDown
	}
	return nil
}

// Exempt: no error result means no error path to zero on.
type infallible struct{}

func (infallible) Fill(dst []uint64) {
	for i := range dst {
		dst[i] = 7
	}
}

// Suppressed: a documented exception.
type raw struct{ src source }

func (r *raw) Fill(dst []uint64) error {
	if !r.src.ok {
		return errDown //lint:ignore zerofill fixture contract documents dst as undefined on error
	}
	return nil
}
