// Package zerofill exercises the zerofill analyzer: exported
// Fill/Read shapes must zero their output buffer on error paths.
package zerofill

import "errors"

var errDown = errors.New("source down")

type source struct {
	ok    bool
	words []uint64
}

func zeroWords(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
}

// Good: both error paths zero the buffer first.
type safe struct{ src source }

func (s *safe) Fill(dst []uint64) error {
	if !s.src.ok {
		zeroWords(dst)
		return errDown
	}
	n := copy(dst, s.src.words)
	if n < len(dst) {
		zeroWords(dst[n:])
		return errDown
	}
	return nil
}

// Good: zeroing with an inline loop instead of a helper.
func (s *safe) Read(p []byte) (int, error) {
	if !s.src.ok {
		for i := range p {
			p[i] = 0
		}
		return 0, errDown
	}
	return len(p), nil
}

// Bad: hands the error up with whatever was in the buffer.
type leaky struct{ src source }

func (l *leaky) Fill(dst []uint64) error {
	if !l.src.ok {
		return errDown // want "returns an error without zeroing dst"
	}
	copy(dst, l.src.words)
	return nil
}

// Bad: the early path zeroes, the partial-read path does not.
func (l *leaky) Read(p []byte) (int, error) {
	if !l.src.ok {
		for i := range p {
			p[i] = 0
		}
		return 0, errDown
	}
	n := len(p) / 2
	if n < len(p) {
		return n, errDown // want "returns an error without zeroing p"
	}
	return n, nil
}

// Good: prefixed variants (FillBytes, ReadAt, ...) carry the same
// contract as the bare verbs.
func (s *safe) FillBytes(b []byte) error {
	if !s.src.ok {
		for i := range b {
			b[i] = 0
		}
		return errDown
	}
	return nil
}

// Bad: a prefixed variant that leaks — the prefix rule must catch it.
func (l *leaky) FillBytes(b []byte) error {
	if !l.src.ok {
		return errDown // want "returns an error without zeroing b"
	}
	return nil
}

// Bad: ShardFill is a draw shape even though the verb is not the
// prefix.
func (l *leaky) ShardFill(i int, dst []uint64) error {
	if !l.src.ok {
		return errDown // want "returns an error without zeroing dst"
	}
	return nil
}

// Good: zeroing in the enclosing block dominates returns inside
// nested branches — the analyzer must inherit the state downward,
// not demand a zero per block.
func (s *safe) ShardFill(i int, dst []uint64) error {
	if s.src.ok {
		copy(dst, s.src.words)
		return nil
	}
	zeroWords(dst)
	if i < 0 {
		return errDown
	}
	return errDown
}

// Bad: zeroing inside one conditional branch does not dominate a
// return after the branch.
func (l *leaky) FillWords(dst []uint64) error {
	if !l.src.ok {
		if len(dst) > 0 {
			zeroWords(dst)
		}
	}
	if !l.src.ok {
		return errDown // want "returns an error without zeroing dst"
	}
	return nil
}

// Exempt: Fill/Read as a prefix of an unrelated word must not match…
// except it does textually (Filler) — the slice-param + error-return
// shape requirement is what keeps false positives out.
type ready struct{ ok bool }

// Exempt: no slice parameter, so there is no output buffer to zero.
func (r *ready) ReadState() error {
	if !r.ok {
		return errDown
	}
	return nil
}

// Exempt: unexported helpers delegate zeroing to their exported
// callers.
func (l *leaky) fill(dst []uint64) error {
	if !l.src.ok {
		return errDown
	}
	return nil
}

// Exempt: no error result means no error path to zero on.
type infallible struct{}

func (infallible) Fill(dst []uint64) {
	for i := range dst {
		dst[i] = 7
	}
}

// Suppressed: a documented exception.
type raw struct{ src source }

func (r *raw) Fill(dst []uint64) error {
	if !r.src.ok {
		return errDown //lint:ignore zerofill fixture contract documents dst as undefined on error
	}
	return nil
}
