package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Loading: hybridlint type-checks target packages from source and
// resolves their imports from compiler export data, the same way the
// go vet driver does. Standalone mode obtains the export files by
// shelling out to `go list -deps -export -json`; vettool mode is
// handed them in the vet config. Either way the importer below is
// the only bridge — no golang.org/x/tools, no network.

// listedPackage is the subset of `go list -json` output we need.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` over patterns and
// decodes the package stream.
func goList(patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w", patterns, err)
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportImporter builds a types.Importer that reads gc export data
// files, resolving import paths through importMap (vendoring or test
// variants; identity when a path is absent) and then through
// packageFile (import path → export data file).
func ExportImporter(fset *token.FileSet, importMap, packageFile map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// LoadPatterns loads, parses and type-checks every package matched
// by patterns that belongs to the current module — dependencies are
// consumed as export data, never analyzed.
func LoadPatterns(patterns ...string) ([]*Package, error) {
	listed, err := goList(patterns...)
	if err != nil {
		return nil, err
	}
	packageFile := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if p.Module != nil && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, nil, packageFile)
	var out []*Package
	for _, p := range targets {
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		pkg, err := TypeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// TypeCheck parses the named files and type-checks them as one
// package resolving imports through imp.
func TypeCheck(fset *token.FileSet, importPath string, filenames []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect via the returned error only
	}
	pkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{
		Fset:       fset,
		Files:      syntax,
		Pkg:        pkg,
		Info:       info,
		ImportPath: importPath,
	}, nil
}
