package lint

import (
	"go/ast"
	"go/types"
)

// ZeroFill enforces the draw-path output invariant established in PR
// 3: an exported Fill- or Read-shaped function that can fail must
// zero its output buffer on every error path, so callers can never
// mistake stale (or worse, untrusted post-trip) buffer contents for
// served randomness.
//
// Shapes checked: exported functions/methods named Fill or Read that
// take a slice parameter and return an error (optionally (n, err)).
// A return handing back a non-nil error is compliant when the
// enclosing block, before the return, either calls a zeroing helper
// (any function whose name contains "zero") on the buffer or runs a
// loop that assigns zeros into it — the two idioms the codebase
// uses. Unexported helpers are out of scope: the invariant is a
// public-API contract, and internal helpers legitimately delegate
// zeroing to their exported callers.
var ZeroFill = &Analyzer{
	Name: "zerofill",
	Doc: "exported Fill/Read-shaped functions returning errors must zero their output " +
		"buffer on every error path",
	Run: runZeroFill,
}

func runZeroFill(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		if fd.Body == nil || isTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		if fd.Name.Name != "Fill" && fd.Name.Name != "Read" || !fd.Name.IsExported() {
			continue
		}
		buf := sliceParam(pass, fd)
		if buf == nil || !returnsError(pass, fd) {
			continue
		}
		checkErrorPaths(pass, fd, buf)
	}
	return nil
}

// sliceParam returns the function's first slice parameter — the
// output buffer of a Fill/Read shape — or nil.
func sliceParam(pass *Pass, fd *ast.FuncDecl) *types.Var {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.Info.Defs[name].(*types.Var); ok {
				if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
					return v
				}
			}
		}
	}
	return nil
}

// returnsError reports whether the last result is an error.
func returnsError(pass *Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.AssignableTo(last, types.Universe.Lookup("error").Type())
}

// checkErrorPaths walks every block of the body; for each return
// whose error result is not the nil literal, it demands a zeroing
// statement earlier in the same block.
func checkErrorPaths(pass *Pass, fd *ast.FuncDecl, buf *types.Var) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		zeroedAt := -1 // index of the latest zeroing statement seen
		for i, stmt := range block.List {
			if zeroesBuffer(pass, stmt, buf) {
				zeroedAt = i
			}
			ret, ok := stmt.(*ast.ReturnStmt)
			if !ok || len(ret.Results) == 0 {
				continue
			}
			errExpr := ret.Results[len(ret.Results)-1]
			if isNilLiteral(pass, errExpr) || zeroedAt >= 0 {
				continue
			}
			pass.Reportf(ret.Pos(),
				"%s returns an error without zeroing %s first; stale buffer contents must not be consumable as randomness",
				fd.Name.Name, buf.Name())
		}
		return true
	})
}

// zeroesBuffer recognises the two sanctioned zeroing idioms applied
// to buf: a call to a *zero* helper taking buf (possibly sliced),
// and a for/range loop assigning zeros into buf.
func zeroesBuffer(pass *Pass, stmt ast.Stmt, buf *types.Var) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isZeroCallName(n.Fun) {
				return true
			}
			for _, arg := range n.Args {
				if mentionsVar(pass, arg, buf) {
					found = true
				}
			}
		case *ast.AssignStmt:
			// buf[i] = 0 (or byte(0), or v where v is the constant 0)
			for i, lhs := range n.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok || !mentionsVar(pass, idx.X, buf) || i >= len(n.Rhs) {
					continue
				}
				if tv, ok := pass.Info.Types[n.Rhs[i]]; ok && tv.Value != nil && tv.Value.String() == "0" {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func isZeroCallName(fun ast.Expr) bool {
	var name string
	switch f := fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return false
	}
	for i := 0; i+4 <= len(name); i++ {
		if eqFold4(name[i:i+4], "zero") {
			return true
		}
	}
	return false
}

func eqFold4(s, t string) bool {
	for i := 0; i < 4; i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != t[i] {
			return false
		}
	}
	return true
}

// mentionsVar reports whether expr references v (directly or through
// slicing).
func mentionsVar(pass *Pass, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

func isNilLiteral(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}
