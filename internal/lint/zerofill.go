package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ZeroFill enforces the draw-path output invariant established in PR
// 3: an exported Fill- or Read-shaped function that can fail must
// zero its output buffer on every error path, so callers can never
// mistake stale (or worse, untrusted post-trip) buffer contents for
// served randomness.
//
// Shapes checked: exported functions/methods whose name is Fill,
// Read, ShardFill, or starts with Fill/Read (FillBytes, ReadAt, ...),
// that take a slice parameter and return an error (optionally
// (n, err)). The prefix rule keeps new entry points on the serving
// surface — added as the draw API grows — under the same contract as
// the originals without a lint change per method.
// A return handing back a non-nil error is compliant when the
// enclosing block, before the return, either calls a zeroing helper
// (any function whose name contains "zero") on the buffer or runs a
// loop that assigns zeros into it — the two idioms the codebase
// uses. Unexported helpers are out of scope: the invariant is a
// public-API contract, and internal helpers legitimately delegate
// zeroing to their exported callers.
var ZeroFill = &Analyzer{
	Name: "zerofill",
	Doc: "exported Fill/Read-shaped functions returning errors must zero their output " +
		"buffer on every error path",
	Run: runZeroFill,
}

func runZeroFill(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		if fd.Body == nil || isTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		if !isDrawShapeName(fd.Name.Name) || !fd.Name.IsExported() {
			continue
		}
		buf := sliceParam(pass, fd)
		if buf == nil || !returnsError(pass, fd) {
			continue
		}
		checkErrorPaths(pass, fd, buf)
	}
	return nil
}

// isDrawShapeName matches the draw-path surface: Fill, Read, any
// Fill*/Read* variant, and ShardFill (the per-shard audit probe,
// whose prefix is the shard, not the verb).
func isDrawShapeName(name string) bool {
	return strings.HasPrefix(name, "Fill") ||
		strings.HasPrefix(name, "Read") ||
		name == "ShardFill"
}

// sliceParam returns the function's first slice parameter — the
// output buffer of a Fill/Read shape — or nil.
func sliceParam(pass *Pass, fd *ast.FuncDecl) *types.Var {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.Info.Defs[name].(*types.Var); ok {
				if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
					return v
				}
			}
		}
	}
	return nil
}

// returnsError reports whether the last result is an error.
func returnsError(pass *Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.AssignableTo(last, types.Universe.Lookup("error").Type())
}

// checkErrorPaths walks the body tracking whether a zeroing
// statement dominates each return: zeroing seen earlier in the same
// block — or in an enclosing block before the nested statement was
// entered — clears every error return it dominates. Zeroing inside a
// conditional branch does not escape the branch (it is not guaranteed
// to have run), which is exactly the dominance a reviewer would
// check by eye.
func checkErrorPaths(pass *Pass, fd *ast.FuncDecl, buf *types.Var) {
	z := zeroWalker{pass: pass, fd: fd, buf: buf}
	z.stmts(fd.Body.List, false)
}

type zeroWalker struct {
	pass *Pass
	fd   *ast.FuncDecl
	buf  *types.Var
}

// stmts scans one statement list with the zeroed-on-entry state
// inherited from the enclosing block.
func (z *zeroWalker) stmts(list []ast.Stmt, zeroed bool) {
	for _, stmt := range list {
		if ret, ok := stmt.(*ast.ReturnStmt); ok {
			if len(ret.Results) == 0 {
				continue
			}
			errExpr := ret.Results[len(ret.Results)-1]
			if !isNilLiteral(z.pass, errExpr) && !zeroed {
				z.pass.Reportf(ret.Pos(),
					"%s returns an error without zeroing %s first; stale buffer contents must not be consumable as randomness",
					z.fd.Name.Name, z.buf.Name())
			}
			continue
		}
		z.nested(stmt, zeroed)
		if zeroesBuffer(z.pass, stmt, z.buf) {
			zeroed = true
		}
	}
}

// nested recurses into the blocks a statement contains, entering each
// with the dominating zeroed state. Function literals start over with
// a clean state: their returns are their own contract.
func (z *zeroWalker) nested(stmt ast.Stmt, zeroed bool) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		z.stmts(s.List, zeroed)
	case *ast.IfStmt:
		z.stmts(s.Body.List, zeroed)
		if s.Else != nil {
			z.nested(s.Else, zeroed)
		}
	case *ast.ForStmt:
		z.stmts(s.Body.List, zeroed)
	case *ast.RangeStmt:
		z.stmts(s.Body.List, zeroed)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				z.stmts(cc.Body, zeroed)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				z.stmts(cc.Body, zeroed)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				z.stmts(cc.Body, zeroed)
			}
		}
	case *ast.LabeledStmt:
		z.nested(s.Stmt, zeroed)
	default:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				z.stmts(fl.Body.List, false)
				return false
			}
			return true
		})
	}
}

// zeroesBuffer recognises the two sanctioned zeroing idioms applied
// to buf: a call to a *zero* helper taking buf (possibly sliced),
// and a for/range loop assigning zeros into buf. It descends only
// into constructs that run unconditionally when the statement runs
// (loops, plain blocks, defers) — zeroing inside an if/switch branch
// is conditional and must not count as dominating a later return.
func zeroesBuffer(pass *Pass, stmt ast.Stmt, buf *types.Var) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return isZeroCall(pass, s.X, buf)
	case *ast.DeferStmt:
		// A deferred zero runs on every return after this point.
		return isZeroCall(pass, s.Call, buf)
	case *ast.AssignStmt:
		// buf[i] = 0 (or byte(0), or v where v is the constant 0) —
		// the body of the sanctioned zeroing loop.
		for i, lhs := range s.Lhs {
			idx, ok := lhs.(*ast.IndexExpr)
			if !ok || !mentionsVar(pass, idx.X, buf) || i >= len(s.Rhs) {
				continue
			}
			if tv, ok := pass.Info.Types[s.Rhs[i]]; ok && tv.Value != nil && tv.Value.String() == "0" {
				return true
			}
		}
		return false
	case *ast.ForStmt:
		return anyZeroes(pass, s.Body.List, buf)
	case *ast.RangeStmt:
		return anyZeroes(pass, s.Body.List, buf)
	case *ast.BlockStmt:
		return anyZeroes(pass, s.List, buf)
	case *ast.LabeledStmt:
		return zeroesBuffer(pass, s.Stmt, buf)
	}
	return false
}

func anyZeroes(pass *Pass, list []ast.Stmt, buf *types.Var) bool {
	for _, stmt := range list {
		if zeroesBuffer(pass, stmt, buf) {
			return true
		}
	}
	return false
}

func isZeroCall(pass *Pass, expr ast.Expr, buf *types.Var) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok || !isZeroCallName(call.Fun) {
		return false
	}
	for _, arg := range call.Args {
		if mentionsVar(pass, arg, buf) {
			return true
		}
	}
	return false
}

func isZeroCallName(fun ast.Expr) bool {
	var name string
	switch f := fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return false
	}
	for i := 0; i+4 <= len(name); i++ {
		if eqFold4(name[i:i+4], "zero") {
			return true
		}
	}
	return false
}

func eqFold4(s, t string) bool {
	for i := 0; i < 4; i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != t[i] {
			return false
		}
	}
	return true
}

// mentionsVar reports whether expr references v (directly or through
// slicing).
func mentionsVar(pass *Pass, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

func isNilLiteral(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}
