package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MarshalSym checks that every MarshalBinary/UnmarshalBinary pair
// moves the same data. The repo's state blobs (Generator, Parallel,
// Pool, the baselines) evolve by appending fields behind version
// tags; the recurring bug class — PR 2 shipped one — is adding a
// field to the encoder and forgetting the decoder (or the version
// bump), which corrupts every field that follows it on resume.
//
// The check is a width-budget comparison, not a field-by-field
// simulation: for each codec width (2-, 4- and 8-byte little-endian
// operations) it computes how many operations each side performs at
// minimum (unconditional ops only) and at maximum (ops under
// if/switch count once, ops in loops count as unbounded), inlining
// same-package helper calls and local closures like put32/put64 at
// their call sites. A pair is reported when one side's guaranteed
// traffic exceeds the other side's possible traffic at some width:
// encode-min > decode-max (a field the decoder can never consume) or
// decode-min > encode-max (the decoder demands bytes the encoder
// never produces). Version-guarded asymmetry is legal by
// construction — a decode behind `if version >= 2` contributes to
// the maximum, not the minimum.
var MarshalSym = &Analyzer{
	Name: "marshalsym",
	Doc: "MarshalBinary and UnmarshalBinary must move the same fields in the same order, " +
		"with version tags guarding any asymmetry",
	Run: runMarshalSym,
}

// widths indexes the op-count arrays: 2-, 4- and 8-byte operations.
var widths = [3]int{2, 4, 8}

// msUnbounded caps the max counters ("a loop ran this op").
const msUnbounded = 1 << 30

// opCounts tallies a function body's codec traffic per width.
type opCounts struct {
	encMin, encMax [3]int
	decMin, decMax [3]int
}

func (c *opCounts) add(o *opCounts, cond, loop bool) {
	for w := range widths {
		switch {
		case loop:
			if o.encMax[w] > 0 {
				c.encMax[w] = msUnbounded
			}
			if o.decMax[w] > 0 {
				c.decMax[w] = msUnbounded
			}
		case cond:
			c.encMax[w] = satAdd(c.encMax[w], o.encMax[w])
			c.decMax[w] = satAdd(c.decMax[w], o.decMax[w])
		default:
			c.encMin[w] = satAdd(c.encMin[w], o.encMin[w])
			c.encMax[w] = satAdd(c.encMax[w], o.encMax[w])
			c.decMin[w] = satAdd(c.decMin[w], o.decMin[w])
			c.decMax[w] = satAdd(c.decMax[w], o.decMax[w])
		}
	}
}

func satAdd(a, b int) int {
	if s := a + b; s < msUnbounded {
		return s
	}
	return msUnbounded
}

func runMarshalSym(pass *Pass) error {
	ms := &marshalSym{
		pass:  pass,
		decls: make(map[types.Object]*ast.FuncDecl),
		memo:  make(map[*ast.FuncDecl]*opCounts),
	}
	for _, fd := range funcDecls(pass.Files) {
		if fd.Body != nil && !isTestFile(pass.Fset, fd.Pos()) {
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				ms.decls[obj] = fd
			}
		}
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		ms.checkPair(named)
	}
	return nil
}

type marshalSym struct {
	pass  *Pass
	decls map[types.Object]*ast.FuncDecl
	memo  map[*ast.FuncDecl]*opCounts
}

func (ms *marshalSym) checkPair(named *types.Named) {
	enc := ms.methodDecl(named, "MarshalBinary")
	dec := ms.methodDecl(named, "UnmarshalBinary")
	if enc == nil || dec == nil {
		return
	}
	e := ms.countFunc(enc)
	d := ms.countFunc(dec)
	for w, width := range widths {
		if e.encMin[w] > d.decMax[w] {
			ms.pass.Reportf(enc.Pos(),
				"%s.MarshalBinary always writes %d %d-byte values but UnmarshalBinary consumes at most %s; the decoder misses a field — read it back, or gate the new field behind a version tag",
				named.Obj().Name(), e.encMin[w], width, boundStr(d.decMax[w]))
		}
		if d.decMin[w] > e.encMax[w] {
			ms.pass.Reportf(dec.Pos(),
				"%s.UnmarshalBinary always reads %d %d-byte values but MarshalBinary writes at most %s; the decoder demands bytes the encoder never produces",
				named.Obj().Name(), d.decMin[w], width, boundStr(e.encMax[w]))
		}
	}
}

func boundStr(n int) string {
	if n >= msUnbounded {
		return "unbounded"
	}
	if n == 1 {
		return "1"
	}
	return itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// methodDecl finds the FuncDecl for named's method, searching the
// pointer method set so value- and pointer-receiver pairs both
// resolve.
func (ms *marshalSym) methodDecl(named *types.Named, name string) *ast.FuncDecl {
	mset := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < mset.Len(); i++ {
		fn := mset.At(i).Obj()
		if fn.Name() == name && fn.Pkg() == ms.pass.Pkg {
			return ms.decls[fn]
		}
	}
	return nil
}

// countFunc computes fd's codec traffic, memoized. A cycle (direct
// or mutual recursion) yields zero counts for the back edge, which
// only ever under-counts minimums — safe, never a false positive.
func (ms *marshalSym) countFunc(fd *ast.FuncDecl) *opCounts {
	if c, ok := ms.memo[fd]; ok {
		if c == nil {
			return &opCounts{} // in progress: break the cycle
		}
		return c
	}
	ms.memo[fd] = nil
	c := &opCounts{}
	closures := collectClosures(ms.pass, fd.Body)
	ms.countStmts(c, fd.Body.List, closures, false, false)
	ms.memo[fd] = c
	return c
}

// collectClosures maps local variables bound to function literals
// (put32 := func(...) {...}) to their bodies, so calls through them
// inline.
func collectClosures(pass *Pass, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					out[obj] = lit
				} else if obj := pass.Info.Uses[id]; obj != nil {
					out[obj] = lit
				}
			}
		}
		return true
	})
	return out
}

// countStmts walks statements accumulating codec ops into c. cond
// marks if/switch arms (runs at most once), loop marks loop bodies
// (runs any number of times).
func (ms *marshalSym) countStmts(c *opCounts, stmts []ast.Stmt, closures map[types.Object]*ast.FuncLit, cond, loop bool) {
	for _, s := range stmts {
		ms.countStmt(c, s, closures, cond, loop)
	}
}

func (ms *marshalSym) countStmt(c *opCounts, s ast.Stmt, closures map[types.Object]*ast.FuncLit, cond, loop bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		ms.countStmts(c, s.List, closures, cond, loop)
	case *ast.IfStmt:
		ms.countStmt(c, s.Init, closures, cond, loop)
		ms.countExpr(c, s.Cond, closures, cond, loop)
		ms.countStmt(c, s.Body, closures, true, loop)
		ms.countStmt(c, s.Else, closures, true, loop)
	case *ast.SwitchStmt:
		ms.countStmt(c, s.Init, closures, cond, loop)
		ms.countExpr(c, s.Tag, closures, cond, loop)
		for _, cc := range s.Body.List {
			ms.countStmts(c, cc.(*ast.CaseClause).Body, closures, true, loop)
		}
	case *ast.TypeSwitchStmt:
		ms.countStmt(c, s.Init, closures, cond, loop)
		for _, cc := range s.Body.List {
			ms.countStmts(c, cc.(*ast.CaseClause).Body, closures, true, loop)
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			ms.countStmts(c, cc.(*ast.CommClause).Body, closures, true, loop)
		}
	case *ast.ForStmt:
		ms.countStmt(c, s.Init, closures, cond, loop)
		ms.countStmt(c, s.Body, closures, cond, true)
	case *ast.RangeStmt:
		ms.countStmt(c, s.Body, closures, cond, true)
	case *ast.LabeledStmt:
		ms.countStmt(c, s.Stmt, closures, cond, loop)
	case *ast.ExprStmt:
		ms.countExpr(c, s.X, closures, cond, loop)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ms.countExpr(c, e, closures, cond, loop)
		}
		for _, e := range s.Lhs {
			ms.countExpr(c, e, closures, cond, loop)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						ms.countExpr(c, e, closures, cond, loop)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ms.countExpr(c, e, closures, cond, loop)
		}
	case *ast.DeferStmt:
		ms.countExpr(c, s.Call, closures, true, loop)
	case *ast.GoStmt:
		ms.countExpr(c, s.Call, closures, cond, loop)
	case *ast.IncDecStmt:
		ms.countExpr(c, s.X, closures, cond, loop)
	case *ast.SendStmt:
		ms.countExpr(c, s.Value, closures, cond, loop)
	}
}

// countExpr finds calls inside e and classifies them. Function
// literals are skipped here — their bodies count at call sites.
func (ms *marshalSym) countExpr(c *opCounts, e ast.Expr, closures map[types.Object]*ast.FuncLit, cond, loop bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			ms.countCall(c, n, closures, cond, loop)
			// args were visited by countCall; stop the generic walk.
			return false
		}
		return true
	})
}

func (ms *marshalSym) countCall(c *opCounts, call *ast.CallExpr, closures map[types.Object]*ast.FuncLit, cond, loop bool) {
	for _, arg := range call.Args {
		ms.countExpr(c, arg, closures, cond, loop)
	}
	// encoding/binary byte-order methods: PutUintN / AppendUintN
	// encode, UintN decodes.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := ms.pass.Info.Uses[sel.Sel].(*types.Func); ok {
			if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
				name := fn.Name()
				enc := true
				switch {
				case strings.HasPrefix(name, "PutUint"):
					name = name[len("PutUint"):]
				case strings.HasPrefix(name, "AppendUint"):
					name = name[len("AppendUint"):]
				case strings.HasPrefix(name, "Uint"):
					name, enc = name[len("Uint"):], false
				default:
					return
				}
				w := -1
				switch name {
				case "16":
					w = 0
				case "32":
					w = 1
				case "64":
					w = 2
				}
				if w < 0 {
					return
				}
				one := &opCounts{}
				if enc {
					one.encMin[w], one.encMax[w] = 1, 1
				} else {
					one.decMin[w], one.decMax[w] = 1, 1
				}
				c.add(one, cond, loop)
				return
			}
			// Same-package function or method: inline its counts.
			if fn.Pkg() == ms.pass.Pkg {
				if fd := ms.decls[fn]; fd != nil {
					c.add(ms.countFunc(fd), cond, loop)
				}
				return
			}
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj := ms.pass.Info.Uses[id]; obj != nil {
			// Local closure (put32/put64 pattern).
			if lit, ok := closures[obj]; ok {
				sub := &opCounts{}
				ms.countStmts(sub, lit.Body.List, closures, false, false)
				c.add(sub, cond, loop)
				return
			}
			// Same-package top-level function.
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() == ms.pass.Pkg {
				if fd := ms.decls[fn]; fd != nil {
					c.add(ms.countFunc(fd), cond, loop)
				}
			}
		}
	}
}
