package gpu

import "fmt"

// SMLimits are the per-multiprocessor resource ceilings that bound
// how many thread blocks can be resident simultaneously — the
// inputs of the classic CUDA occupancy calculation.
type SMLimits struct {
	MaxThreads int // resident threads per SM
	MaxWarps   int // resident warps per SM
	MaxBlocks  int // resident blocks per SM
	Registers  int // 32-bit registers per SM
	SharedMem  int // bytes of shared memory per SM
	WarpSize   int
}

// TeslaC1060Limits returns the GT200 (compute capability 1.3)
// ceilings of the paper's device: 1024 threads / 32 warps / 8 blocks
// per SM, 16384 registers, 16 KiB shared memory.
func TeslaC1060Limits() SMLimits {
	return SMLimits{
		MaxThreads: 1024,
		MaxWarps:   32,
		MaxBlocks:  8,
		Registers:  16384,
		SharedMem:  16 * 1024,
		WarpSize:   32,
	}
}

// KernelResources is a kernel's per-block resource footprint.
type KernelResources struct {
	ThreadsPerBlock int
	RegsPerThread   int
	SharedPerBlock  int // bytes
}

// Occupancy describes the outcome of the calculation.
type Occupancy struct {
	BlocksPerSM int
	ActiveWarps int
	Fraction    float64 // ActiveWarps / MaxWarps
	// Limiter names the binding constraint: "threads", "blocks",
	// "registers" or "shared-memory".
	Limiter string
}

// Occupancy computes how many blocks of the given footprint fit on
// one SM and the resulting warp occupancy. Register allocation is
// modelled at warp granularity (threads rounded up to a whole number
// of warps), the GT200 scheme.
func (l SMLimits) Occupancy(r KernelResources) (Occupancy, error) {
	if r.ThreadsPerBlock < 1 {
		return Occupancy{}, fmt.Errorf("gpu: threads/block %d < 1", r.ThreadsPerBlock)
	}
	if r.ThreadsPerBlock > l.MaxThreads {
		return Occupancy{}, fmt.Errorf("gpu: threads/block %d exceeds SM limit %d", r.ThreadsPerBlock, l.MaxThreads)
	}
	if r.RegsPerThread < 0 || r.SharedPerBlock < 0 {
		return Occupancy{}, fmt.Errorf("gpu: negative kernel resources")
	}
	warpsPerBlock := (r.ThreadsPerBlock + l.WarpSize - 1) / l.WarpSize
	occ := Occupancy{BlocksPerSM: l.MaxBlocks, Limiter: "blocks"}

	if byWarps := l.MaxWarps / warpsPerBlock; byWarps < occ.BlocksPerSM {
		occ.BlocksPerSM, occ.Limiter = byWarps, "threads"
	}
	if r.RegsPerThread > 0 {
		regsPerBlock := r.RegsPerThread * warpsPerBlock * l.WarpSize
		if regsPerBlock > l.Registers {
			return Occupancy{}, fmt.Errorf("gpu: block needs %d registers, SM has %d", regsPerBlock, l.Registers)
		}
		if byRegs := l.Registers / regsPerBlock; byRegs < occ.BlocksPerSM {
			occ.BlocksPerSM, occ.Limiter = byRegs, "registers"
		}
	}
	if r.SharedPerBlock > 0 {
		if r.SharedPerBlock > l.SharedMem {
			return Occupancy{}, fmt.Errorf("gpu: block needs %d B shared memory, SM has %d", r.SharedPerBlock, l.SharedMem)
		}
		if byShared := l.SharedMem / r.SharedPerBlock; byShared < occ.BlocksPerSM {
			occ.BlocksPerSM, occ.Limiter = byShared, "shared-memory"
		}
	}
	occ.ActiveWarps = occ.BlocksPerSM * warpsPerBlock
	if occ.ActiveWarps > l.MaxWarps {
		occ.ActiveWarps = l.MaxWarps
	}
	occ.Fraction = float64(occ.ActiveWarps) / float64(l.MaxWarps)
	return occ, nil
}

// DurationWithOccupancy scales a kernel's duration by the occupancy
// achievable with its resource footprint: below full occupancy the
// device cannot hide memory latency and the throughput model's
// effective parallelism shrinks proportionally. (KernelDuration
// itself assumes a fully occupiable kernel, which is what the
// calibrated figures use; this variant serves what-if analysis.)
func (d *Device) DurationWithOccupancy(k Kernel, r KernelResources, l SMLimits) (Time, error) {
	occ, err := l.Occupancy(r)
	if err != nil {
		return 0, err
	}
	base := d.KernelDuration(k)
	if occ.Fraction <= 0 {
		return 0, fmt.Errorf("gpu: zero occupancy")
	}
	launch := d.cfg.LaunchNs
	return launch + (base-launch)/occ.Fraction, nil
}
