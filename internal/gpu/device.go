package gpu

import (
	"fmt"
	"runtime"
	"sync"
)

// Config describes the simulated platform: device geometry, clock,
// per-launch overhead and the host link.
type Config struct {
	Name        string
	SMs         int     // streaming multiprocessors
	CoresPerSM  int     // scalar processors per SM
	WarpSize    int     // threads per warp
	ClockHz     float64 // SP clock
	LaunchNs    float64 // fixed kernel launch overhead, ns
	LinkBps     float64 // PCIe bandwidth, bytes per second
	LinkLatency float64 // per-transfer latency, ns

	// Workers bounds the goroutines used to execute kernel bodies
	// functionally; 0 means GOMAXPROCS.
	Workers int
}

// TeslaC1060 returns the paper's device: 30 SMs × 8 SPs (240 cores)
// at 1.3 GHz, warps of 32, behind a PCIe 2.0 ×16 link (8 GB/s) —
// Section II of the paper.
func TeslaC1060() Config {
	return Config{
		Name:        "tesla-c1060",
		SMs:         30,
		CoresPerSM:  8,
		WarpSize:    32,
		ClockHz:     1.3e9,
		LaunchNs:    5000, // ~5 µs driver launch overhead, CUDA 3.x era
		LinkBps:     8e9,  // PCIe 2.0 ×16
		LinkLatency: 1000, // ~1 µs DMA setup
	}
}

func (c Config) validate() error {
	if c.SMs < 1 || c.CoresPerSM < 1 {
		return fmt.Errorf("gpu: need at least one SM and one core, got %d×%d", c.SMs, c.CoresPerSM)
	}
	if c.WarpSize < 1 {
		return fmt.Errorf("gpu: warp size %d < 1", c.WarpSize)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("gpu: clock %g Hz", c.ClockHz)
	}
	if c.LinkBps <= 0 {
		return fmt.Errorf("gpu: link bandwidth %g B/s", c.LinkBps)
	}
	if c.LaunchNs < 0 || c.LinkLatency < 0 {
		return fmt.Errorf("gpu: negative overheads")
	}
	return nil
}

// Device is a simulated GPU bound to a Sim. Its compute engine and
// its copy engine are two serial resources (the C1060 has a single
// DMA engine), so kernels serialise against kernels, copies against
// copies, and the two overlap — exactly the asynchronous concurrent
// execution model the paper exploits.
type Device struct {
	sim *Sim
	cfg Config

	computeRes string
	copyRes    string

	streamSeq int
	mu        sync.Mutex
}

// NewDevice attaches a simulated device to sim.
func NewDevice(sim *Sim, cfg Config) (*Device, error) {
	if sim == nil {
		return nil, fmt.Errorf("gpu: nil sim")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		cfg.Name = "gpu"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Device{
		sim:        sim,
		cfg:        cfg,
		computeRes: cfg.Name,
		copyRes:    cfg.Name + ":pcie",
	}, nil
}

// Cores returns the total scalar processor count.
func (d *Device) Cores() int { return d.cfg.SMs * d.cfg.CoresPerSM }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Sim returns the simulation the device is bound to.
func (d *Device) Sim() *Sim { return d.sim }

// ComputeResource and CopyResource name the device's resources in
// the trace.
func (d *Device) ComputeResource() string { return d.computeRes }
func (d *Device) CopyResource() string    { return d.copyRes }

// Kernel describes one launch.
type Kernel struct {
	Name    string
	Threads int // total thread count across the grid

	// CyclesPerThread is the simulated cost of one thread. The
	// kernel's duration is a throughput model:
	//
	//	LaunchNs + Threads·CyclesPerThread / (min(Threads, cores)·clock)
	//
	// See KernelDuration.
	CyclesPerThread float64

	// Body, if non-nil, is executed functionally over the thread
	// range [0, Threads) — possibly split across worker goroutines —
	// so the launch computes real results. Body must be safe to run
	// concurrently over disjoint ranges.
	Body func(lo, hi int)
}

// KernelDuration returns the simulated execution time of k:
// the launch overhead plus total cycles divided by the deliverable
// parallelism. When the grid has fewer threads than cores the
// surplus cores idle (the paper's "GPU starts to wait" regime in
// Figure 5); warp granularity rounds the effective thread count up
// to a warp multiple.
func (d *Device) KernelDuration(k Kernel) Time {
	if k.Threads <= 0 || k.CyclesPerThread <= 0 {
		return d.cfg.LaunchNs
	}
	parallel := d.Cores()
	if k.Threads < parallel {
		// Under-occupied grid: surplus lanes idle and the launch
		// takes the per-thread time (a single thread cannot be
		// spread over lanes).
		parallel = k.Threads
	}
	totalCycles := k.CyclesPerThread * float64(k.Threads)
	seconds := totalCycles / (float64(parallel) * d.cfg.ClockHz)
	return d.cfg.LaunchNs + seconds*1e9
}

// CopyDuration returns the simulated time to move `bytes` across the
// link.
func (d *Device) CopyDuration(bytes int64) Time {
	if bytes <= 0 {
		return d.cfg.LinkLatency
	}
	return d.cfg.LinkLatency + float64(bytes)/d.cfg.LinkBps*1e9
}

// Stream is a CUDA-style stream: operations issued on it run in
// issue order, each starting no earlier than the previous one
// finished, while contending for the device's engines against other
// streams.
type Stream struct {
	d     *Device
	name  string
	ready Time
	mu    sync.Mutex //lint:lockorder before Sim.mu stream ops serialise their own issue order, then book engine time on the shared simulator; Sim never calls back into a stream
}

// NewStream creates a stream whose first operation may start no
// earlier than `after`.
func (d *Device) NewStream(after Time) *Stream {
	d.mu.Lock()
	d.streamSeq++
	name := fmt.Sprintf("%s:s%d", d.cfg.Name, d.streamSeq)
	d.mu.Unlock()
	return &Stream{d: d, name: name, ready: after}
}

// Ready returns the completion time of the stream's last issued
// operation.
func (st *Stream) Ready() Time {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ready
}

// WaitFor delays the stream's next operation until at least t — the
// analogue of making a kernel wait for host-produced data.
func (st *Stream) WaitFor(t Time) {
	st.mu.Lock()
	if t > st.ready {
		st.ready = t
	}
	st.mu.Unlock()
}

// CopyH2D issues an asynchronous host-to-device copy and returns its
// interval.
func (st *Stream) CopyH2D(label string, bytes int64) Interval {
	return st.copy(label, bytes)
}

// CopyD2H issues an asynchronous device-to-host copy and returns its
// interval. The C1060's single DMA engine serves both directions, so
// it shares the copy resource with CopyH2D.
func (st *Stream) CopyD2H(label string, bytes int64) Interval {
	return st.copy(label, bytes)
}

func (st *Stream) copy(label string, bytes int64) Interval {
	st.mu.Lock()
	defer st.mu.Unlock()
	iv := st.d.sim.Schedule(st.d.copyRes, label, st.ready, st.d.CopyDuration(bytes))
	st.ready = iv.End
	return iv
}

// Launch issues kernel k on the stream, executes its Body (if any)
// functionally, and returns the simulated interval of the launch.
func (st *Stream) Launch(k Kernel) Interval {
	if k.Body != nil {
		st.d.runBody(k)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	label := k.Name
	if label == "" {
		label = "kernel"
	}
	iv := st.d.sim.Schedule(st.d.computeRes, label, st.ready, st.d.KernelDuration(k))
	st.ready = iv.End
	return iv
}

// runBody executes the kernel body over [0, Threads) with bounded
// parallelism.
func (d *Device) runBody(k Kernel) {
	n := k.Threads
	if n <= 0 {
		return
	}
	workers := d.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		k.Body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			k.Body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Host models the CPU side as one more serial resource on the same
// simulation clock.
type Host struct {
	sim *Sim
	res string
}

// NewHost returns a host timeline named `name` (e.g. "cpu").
func NewHost(sim *Sim, name string) (*Host, error) {
	if sim == nil {
		return nil, fmt.Errorf("gpu: nil sim")
	}
	if name == "" {
		name = "cpu"
	}
	return &Host{sim: sim, res: name}, nil
}

// Resource names the host row in the trace.
func (h *Host) Resource() string { return h.res }

// Compute books `dur` nanoseconds of host work starting no earlier
// than `ready` and returns the interval.
func (h *Host) Compute(label string, ready Time, dur Time) Interval {
	return h.sim.Schedule(h.res, label, ready, dur)
}
