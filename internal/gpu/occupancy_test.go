package gpu

import (
	"math"
	"testing"
)

func TestOccupancyFullyOccupied(t *testing.T) {
	l := TeslaC1060Limits()
	// 256 threads/block, 16 regs/thread, no shared memory:
	// warps/block = 8; by warps 32/8 = 4 blocks; registers
	// 256·16 = 4096/block → 4 blocks exactly; threads 1024/256 = 4.
	occ, err := l.Occupancy(KernelResources{ThreadsPerBlock: 256, RegsPerThread: 16})
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 4 || occ.ActiveWarps != 32 {
		t.Errorf("occupancy = %+v, want 4 blocks / 32 warps", occ)
	}
	if occ.Fraction != 1 {
		t.Errorf("fraction = %g", occ.Fraction)
	}
}

func TestOccupancyRegisterLimited(t *testing.T) {
	l := TeslaC1060Limits()
	// 64 regs/thread at 256 threads/block: 16384 regs/block → 1
	// block, 8 warps, 25% occupancy.
	occ, err := l.Occupancy(KernelResources{ThreadsPerBlock: 256, RegsPerThread: 64})
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 1 || occ.Limiter != "registers" {
		t.Errorf("occupancy = %+v, want register-limited single block", occ)
	}
	if math.Abs(occ.Fraction-0.25) > 1e-12 {
		t.Errorf("fraction = %g, want 0.25", occ.Fraction)
	}
}

func TestOccupancySharedMemoryLimited(t *testing.T) {
	l := TeslaC1060Limits()
	// 6 KiB shared per block → 2 blocks fit in 16 KiB.
	occ, err := l.Occupancy(KernelResources{ThreadsPerBlock: 128, SharedPerBlock: 6 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 2 || occ.Limiter != "shared-memory" {
		t.Errorf("occupancy = %+v", occ)
	}
}

func TestOccupancyBlockLimited(t *testing.T) {
	l := TeslaC1060Limits()
	// Tiny blocks: 32 threads each → warps allow 32, but the block
	// cap (8) binds: 8 warps active, 25%.
	occ, err := l.Occupancy(KernelResources{ThreadsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 8 || occ.Limiter != "blocks" {
		t.Errorf("occupancy = %+v", occ)
	}
	if math.Abs(occ.Fraction-0.25) > 1e-12 {
		t.Errorf("fraction = %g", occ.Fraction)
	}
}

func TestOccupancyPartialWarpRoundsUp(t *testing.T) {
	l := TeslaC1060Limits()
	// 48 threads = 2 warps for allocation purposes.
	occ, err := l.Occupancy(KernelResources{ThreadsPerBlock: 48, RegsPerThread: 128})
	if err != nil {
		t.Fatal(err)
	}
	// regs/block = 128·2·32 = 8192 → 2 blocks (register-limited).
	if occ.BlocksPerSM != 2 || occ.Limiter != "registers" {
		t.Errorf("occupancy = %+v", occ)
	}
}

func TestOccupancyErrors(t *testing.T) {
	l := TeslaC1060Limits()
	if _, err := l.Occupancy(KernelResources{ThreadsPerBlock: 0}); err == nil {
		t.Error("zero threads should fail")
	}
	if _, err := l.Occupancy(KernelResources{ThreadsPerBlock: 2048}); err == nil {
		t.Error("oversized block should fail")
	}
	if _, err := l.Occupancy(KernelResources{ThreadsPerBlock: 64, RegsPerThread: -1}); err == nil {
		t.Error("negative registers should fail")
	}
	if _, err := l.Occupancy(KernelResources{ThreadsPerBlock: 512, RegsPerThread: 64}); err == nil {
		t.Error("block exceeding the whole register file should fail")
	}
	if _, err := l.Occupancy(KernelResources{ThreadsPerBlock: 64, SharedPerBlock: 64 * 1024}); err == nil {
		t.Error("block exceeding shared memory should fail")
	}
}

func TestDurationWithOccupancy(t *testing.T) {
	d, _ := NewDevice(NewSim(), TeslaC1060())
	k := Kernel{Threads: 240000, CyclesPerThread: 1300} // 1 ms + launch
	full, err := d.DurationWithOccupancy(k, KernelResources{ThreadsPerBlock: 256, RegsPerThread: 16}, TeslaC1060Limits())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-d.KernelDuration(k)) > 1 {
		t.Errorf("full occupancy should match the base model: %g vs %g", full, d.KernelDuration(k))
	}
	quarter, err := d.DurationWithOccupancy(k, KernelResources{ThreadsPerBlock: 256, RegsPerThread: 64}, TeslaC1060Limits())
	if err != nil {
		t.Fatal(err)
	}
	// 25% occupancy → compute portion 4× longer.
	wantCompute := (d.KernelDuration(k) - 5000) * 4
	if math.Abs(quarter-5000-wantCompute) > 1 {
		t.Errorf("quarter occupancy duration = %g, want %g", quarter, 5000+wantCompute)
	}
}
