// Package gpu is a deterministic discrete-event simulator of a
// CUDA-era GPU platform: a compute device with SMs executing kernels,
// a PCI-Express link with bandwidth and latency, asynchronous streams
// that order operations, and a host CPU modelled as one more timed
// resource.
//
// The paper evaluates on an Nvidia Tesla C1060 attached to an Intel
// i7 over PCIe 2.0; no such hardware (nor CUDA) exists in this
// environment, so per the reproduction's substitution rule the
// platform is simulated. Every figure the paper derives from that
// platform — compute/transfer overlap (Fig. 1/4), block-size sweeps
// (Fig. 5), generator timing ratios (Fig. 3/7/8) — is a consequence
// of the cost model, not the silicon, so the simulator reports
// simulated nanoseconds from explicit, documented cost formulas and
// records a full interval trace for utilisation accounting.
//
// Functional execution is decoupled from timing: a Kernel may carry a
// Body that is really executed (so applications compute true
// results) while its simulated duration comes from the cycle model.
package gpu

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Time is a point in simulated time, in nanoseconds since the
// simulation epoch.
type Time = float64

// Interval is one traced occupancy of a resource.
type Interval struct {
	Resource string
	Label    string
	Start    Time
	End      Time
}

// Duration returns the interval length in simulated ns.
func (iv Interval) Duration() Time { return iv.End - iv.Start }

// Sim is the event engine: a set of named serial resources, each of
// which executes one operation at a time, plus a trace of everything
// that ran. The zero value is not usable; construct with NewSim.
//
// Sim is safe for concurrent use; scheduling is serialised
// internally, which also keeps the trace ordering deterministic for
// deterministic callers.
type Sim struct {
	mu    sync.Mutex
	free  map[string]Time
	trace []Interval
}

// NewSim returns an empty simulation at time 0.
func NewSim() *Sim {
	return &Sim{free: make(map[string]Time)}
}

// Schedule books an operation of the given duration on a resource:
// it starts at the later of `ready` (the caller's dependency) and
// the moment the resource frees up, occupies the resource for `dur`
// nanoseconds, and is recorded in the trace. It returns the booked
// interval. Negative durations are clamped to zero.
func (s *Sim) Schedule(resource, label string, ready Time, dur Time) Interval {
	if dur < 0 {
		dur = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.free[resource]
	if ready > start {
		start = ready
	}
	iv := Interval{Resource: resource, Label: label, Start: start, End: start + dur}
	s.free[resource] = iv.End
	s.trace = append(s.trace, iv)
	return iv
}

// Free returns the time at which the resource next becomes free.
func (s *Sim) Free(resource string) Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.free[resource]
}

// Horizon returns the completion time of the entire simulation so
// far (the max over all resources).
func (s *Sim) Horizon() Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	var h Time
	for _, t := range s.free {
		if t > h {
			h = t
		}
	}
	return h
}

// Trace returns a copy of all booked intervals in booking order.
func (s *Sim) Trace() []Interval {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Interval(nil), s.trace...)
}

// BusyTime returns the total booked time on a resource within
// [from, to].
func (s *Sim) BusyTime(resource string, from, to Time) Time {
	if to <= from {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var busy Time
	for _, iv := range s.trace {
		if iv.Resource != resource {
			continue
		}
		lo, hi := iv.Start, iv.End
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi > lo {
			busy += hi - lo
		}
	}
	return busy
}

// Utilization returns the busy fraction of a resource over
// [from, to].
func (s *Sim) Utilization(resource string, from, to Time) float64 {
	if to <= from {
		return 0
	}
	return s.BusyTime(resource, from, to) / (to - from)
}

// ResourceNames returns the sorted names of every resource that has
// been scheduled on.
func (s *Sim) ResourceNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.free))
	for n := range s.free {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteTraceCSV writes the trace as CSV (resource,label,start_ns,
// end_ns), one row per interval in booking order — the raw material
// for external plotting of the Figure 1/4 timelines.
func (s *Sim) WriteTraceCSV(w io.Writer) error {
	s.mu.Lock()
	trace := append([]Interval(nil), s.trace...)
	s.mu.Unlock()
	if _, err := fmt.Fprintln(w, "resource,label,start_ns,end_ns"); err != nil {
		return err
	}
	for _, iv := range trace {
		if _, err := fmt.Fprintf(w, "%s,%s,%.3f,%.3f\n", iv.Resource, iv.Label, iv.Start, iv.End); err != nil {
			return err
		}
	}
	return nil
}

// TimelineString renders a compact textual timeline of the trace —
// the reproduction of the paper's Figure 1/4 style diagrams — with
// one row per resource and `width` character columns spanning
// [0, Horizon].
func (s *Sim) TimelineString(width int) string {
	if width < 10 {
		width = 10
	}
	horizon := s.Horizon()
	if horizon == 0 {
		return "(empty timeline)\n"
	}
	names := s.ResourceNames()
	s.mu.Lock()
	trace := append([]Interval(nil), s.trace...)
	s.mu.Unlock()

	out := ""
	for _, name := range names {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, iv := range trace {
			if iv.Resource != name {
				continue
			}
			lo := int(iv.Start / horizon * float64(width))
			hi := int(iv.End / horizon * float64(width))
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			c := byte('#')
			if len(iv.Label) > 0 {
				c = iv.Label[0]
			}
			for i := lo; i < hi; i++ {
				row[i] = c
			}
		}
		out += fmt.Sprintf("%-8s |%s|\n", name, row)
	}
	out += fmt.Sprintf("horizon: %.1f ns\n", horizon)
	return out
}
