package gpu

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestScheduleSerialisesOneResource(t *testing.T) {
	s := NewSim()
	a := s.Schedule("r", "a", 0, 10)
	b := s.Schedule("r", "b", 0, 5)
	if a.Start != 0 || a.End != 10 {
		t.Errorf("a = %+v", a)
	}
	if b.Start != 10 || b.End != 15 {
		t.Errorf("b must start after a: %+v", b)
	}
	if s.Free("r") != 15 {
		t.Errorf("Free = %g", s.Free("r"))
	}
}

func TestScheduleRespectsReadiness(t *testing.T) {
	s := NewSim()
	iv := s.Schedule("r", "x", 100, 10)
	if iv.Start != 100 || iv.End != 110 {
		t.Errorf("iv = %+v", iv)
	}
	// Negative duration clamps to zero.
	z := s.Schedule("r", "z", 0, -5)
	if z.Duration() != 0 {
		t.Errorf("negative duration not clamped: %+v", z)
	}
}

func TestResourcesIndependent(t *testing.T) {
	s := NewSim()
	s.Schedule("a", "x", 0, 100)
	iv := s.Schedule("b", "y", 0, 10)
	if iv.Start != 0 {
		t.Error("resources must not serialise against each other")
	}
	if s.Horizon() != 100 {
		t.Errorf("Horizon = %g", s.Horizon())
	}
	names := s.ResourceNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("ResourceNames = %v", names)
	}
}

func TestBusyTimeAndUtilization(t *testing.T) {
	s := NewSim()
	s.Schedule("r", "x", 0, 10)
	s.Schedule("r", "y", 20, 10) // idle gap 10..20
	if got := s.BusyTime("r", 0, 30); got != 20 {
		t.Errorf("BusyTime = %g, want 20", got)
	}
	if got := s.Utilization("r", 0, 30); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Utilization = %g, want 2/3", got)
	}
	// Window clipping.
	if got := s.BusyTime("r", 5, 25); got != 10 {
		t.Errorf("clipped BusyTime = %g, want 10", got)
	}
	if s.Utilization("r", 10, 10) != 0 {
		t.Error("empty window must be 0")
	}
}

func TestScheduleConcurrentSafety(t *testing.T) {
	s := NewSim()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Schedule("shared", "w", 0, 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Free("shared"); got != 3200 {
		t.Errorf("after 3200 unit ops, Free = %g", got)
	}
	if got := s.BusyTime("shared", 0, 3200); got != 3200 {
		t.Errorf("BusyTime = %g", got)
	}
}

func TestTimelineString(t *testing.T) {
	s := NewSim()
	s.Schedule("cpu", "FEED", 0, 50)
	s.Schedule("gpu", "GEN", 50, 50)
	tl := s.TimelineString(40)
	if !strings.Contains(tl, "cpu") || !strings.Contains(tl, "gpu") {
		t.Errorf("timeline missing rows:\n%s", tl)
	}
	if !strings.Contains(tl, "F") || !strings.Contains(tl, "G") {
		t.Errorf("timeline missing interval glyphs:\n%s", tl)
	}
	empty := NewSim().TimelineString(40)
	if !strings.Contains(empty, "empty") {
		t.Error("empty timeline should say so")
	}
}

func TestTeslaC1060Geometry(t *testing.T) {
	sim := NewSim()
	d, err := NewDevice(sim, TeslaC1060())
	if err != nil {
		t.Fatal(err)
	}
	if d.Cores() != 240 {
		t.Errorf("C1060 cores = %d, want 240", d.Cores())
	}
	if d.Config().WarpSize != 32 {
		t.Errorf("warp = %d", d.Config().WarpSize)
	}
}

func TestDeviceValidation(t *testing.T) {
	if _, err := NewDevice(nil, TeslaC1060()); err == nil {
		t.Error("nil sim should fail")
	}
	bad := TeslaC1060()
	bad.SMs = 0
	if _, err := NewDevice(NewSim(), bad); err == nil {
		t.Error("zero SMs should fail")
	}
	bad = TeslaC1060()
	bad.ClockHz = 0
	if _, err := NewDevice(NewSim(), bad); err == nil {
		t.Error("zero clock should fail")
	}
	bad = TeslaC1060()
	bad.LinkBps = 0
	if _, err := NewDevice(NewSim(), bad); err == nil {
		t.Error("zero link bandwidth should fail")
	}
	bad = TeslaC1060()
	bad.LaunchNs = -1
	if _, err := NewDevice(NewSim(), bad); err == nil {
		t.Error("negative overhead should fail")
	}
	bad = TeslaC1060()
	bad.WarpSize = 0
	if _, err := NewDevice(NewSim(), bad); err == nil {
		t.Error("zero warp should fail")
	}
	if _, err := NewHost(nil, "cpu"); err == nil {
		t.Error("nil sim host should fail")
	}
}

func TestKernelDurationThroughputModel(t *testing.T) {
	d, _ := NewDevice(NewSim(), TeslaC1060())
	// 240000 threads × 1300 cycles at 240 cores × 1.3 GHz
	// = 240000·1300/(240·1.3e9) s = 1 ms; plus 5 µs launch.
	k := Kernel{Threads: 240000, CyclesPerThread: 1300}
	got := d.KernelDuration(k)
	want := 5000 + 1e6
	if math.Abs(got-want) > 1 {
		t.Errorf("duration = %g ns, want %g", got, want)
	}
}

func TestKernelDurationUnderOccupied(t *testing.T) {
	d, _ := NewDevice(NewSim(), TeslaC1060())
	// 32 threads (1 warp) can only use 32 lanes: duration is the
	// per-thread time, not total/(240).
	k := Kernel{Threads: 32, CyclesPerThread: 1.3e6} // 1 ms per thread
	got := d.KernelDuration(k)
	want := 5000.0 + 1e6
	if math.Abs(got-want) > 1 {
		t.Errorf("under-occupied duration = %g ns, want %g", got, want)
	}
	// A single thread cannot be spread over lanes: it takes the full
	// per-thread time too.
	k1 := Kernel{Threads: 1, CyclesPerThread: 1.3e6}
	if math.Abs(d.KernelDuration(k1)-want) > 1 {
		t.Errorf("single-thread duration = %g, want %g", d.KernelDuration(k1), want)
	}
	// Empty kernel costs just the launch.
	if got := d.KernelDuration(Kernel{}); got != 5000 {
		t.Errorf("empty kernel = %g, want launch only", got)
	}
}

func TestCopyDurationModel(t *testing.T) {
	d, _ := NewDevice(NewSim(), TeslaC1060())
	// 8 MB over 8 GB/s = 1 ms, plus 1 µs latency.
	got := d.CopyDuration(8 << 20)
	want := 1000 + float64(8<<20)/8e9*1e9
	if math.Abs(got-want) > 1 {
		t.Errorf("copy = %g ns, want %g", got, want)
	}
	if got := d.CopyDuration(0); got != 1000 {
		t.Errorf("zero-byte copy = %g, want latency", got)
	}
}

func TestStreamOrdersOperations(t *testing.T) {
	sim := NewSim()
	d, _ := NewDevice(sim, TeslaC1060())
	st := d.NewStream(0)
	c := st.CopyH2D("h2d", 8e6) // 1000 + 1e6 ns
	k := st.Launch(Kernel{Name: "k", Threads: 240, CyclesPerThread: 1.3e6})
	if k.Start < c.End {
		t.Errorf("kernel started at %g before its copy finished at %g", k.Start, c.End)
	}
	if st.Ready() != k.End {
		t.Errorf("stream ready %g != kernel end %g", st.Ready(), k.End)
	}
}

func TestTwoStreamsOverlapComputeAndCopy(t *testing.T) {
	// The asynchronous concurrent execution model: stream B's copy
	// runs while stream A's kernel computes.
	sim := NewSim()
	d, _ := NewDevice(sim, TeslaC1060())
	a := d.NewStream(0)
	b := d.NewStream(0)
	ka := a.Launch(Kernel{Name: "k", Threads: 240, CyclesPerThread: 13e6}) // 10 ms
	cb := b.CopyH2D("h2d", 8e6)                                            // ~1 ms
	if cb.Start >= ka.End {
		t.Errorf("copy %g..%g failed to overlap kernel %g..%g", cb.Start, cb.End, ka.Start, ka.End)
	}
	// But two kernels serialise on the compute engine.
	kb := b.Launch(Kernel{Name: "k2", Threads: 240, CyclesPerThread: 13e6})
	if kb.Start < ka.End {
		t.Errorf("kernels overlapped on one device: %g < %g", kb.Start, ka.End)
	}
}

func TestStreamWaitFor(t *testing.T) {
	sim := NewSim()
	d, _ := NewDevice(sim, TeslaC1060())
	st := d.NewStream(0)
	st.WaitFor(5000)
	iv := st.Launch(Kernel{Name: "k", Threads: 32, CyclesPerThread: 1})
	if iv.Start < 5000 {
		t.Errorf("kernel ignored WaitFor: start %g", iv.Start)
	}
	st.WaitFor(0) // must not move ready backwards
	if st.Ready() < iv.End {
		t.Error("WaitFor moved readiness backwards")
	}
}

func TestKernelBodyExecutesAllThreads(t *testing.T) {
	sim := NewSim()
	cfg := TeslaC1060()
	cfg.Workers = 4
	d, _ := NewDevice(sim, cfg)
	st := d.NewStream(0)
	const n = 10000
	hits := make([]int32, n)
	var mu sync.Mutex
	st.Launch(Kernel{
		Name:            "body",
		Threads:         n,
		CyclesPerThread: 1,
		Body: func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		},
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("thread %d executed %d times", i, h)
		}
	}
}

func TestKernelBodySingleWorker(t *testing.T) {
	cfg := TeslaC1060()
	cfg.Workers = 1
	d, _ := NewDevice(NewSim(), cfg)
	st := d.NewStream(0)
	sum := 0
	st.Launch(Kernel{
		Threads:         100,
		CyclesPerThread: 1,
		Body:            func(lo, hi int) { sum += hi - lo },
	})
	if sum != 100 {
		t.Errorf("single worker executed %d threads", sum)
	}
}

func TestHostCompute(t *testing.T) {
	sim := NewSim()
	h, err := NewHost(sim, "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if h.Resource() != "cpu" {
		t.Errorf("resource = %q", h.Resource())
	}
	a := h.Compute("feed", 0, 100)
	b := h.Compute("feed", 0, 100)
	if b.Start != a.End {
		t.Error("host work must serialise")
	}
	h2, _ := NewHost(sim, "")
	if h2.Resource() != "cpu" {
		t.Error("default host name should be cpu")
	}
}

func TestPureDeviceVsHybridScheduleShape(t *testing.T) {
	// Figure 1 in miniature: interleaving host feed with kernel
	// compute must beat the serial schedule.
	mkRun := func(overlap bool) Time {
		sim := NewSim()
		d, _ := NewDevice(sim, TeslaC1060())
		h, _ := NewHost(sim, "cpu")
		ts := d.NewStream(0) // transfer stream
		ks := d.NewStream(0) // kernel stream
		var ready Time
		for i := 0; i < 8; i++ {
			feed := h.Compute("F", ready, 1000)
			ts.WaitFor(feed.End)
			tr := ts.CopyH2D("T", 4096)
			ks.WaitFor(tr.End)
			k := ks.Launch(Kernel{Name: "G", Threads: 240, CyclesPerThread: 1300})
			if overlap {
				// Pipelined: the next feed starts as soon as this
				// one is done, overlapping the kernel.
				ready = feed.End
			} else {
				// Serial: host waits for the kernel.
				ready = k.End
			}
		}
		return sim.Horizon()
	}
	serial := mkRun(false)
	pipelined := mkRun(true)
	if pipelined >= serial {
		t.Errorf("pipelined %g ns not faster than serial %g ns", pipelined, serial)
	}
}

func TestWriteTraceCSV(t *testing.T) {
	s := NewSim()
	s.Schedule("cpu", "FEED", 0, 10)
	s.Schedule("gpu", "GEN", 10, 20)
	var buf strings.Builder
	if err := s.WriteTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "resource,label,start_ns,end_ns" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "cpu,FEED,0.000,10.000") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestDeviceAccessors(t *testing.T) {
	sim := NewSim()
	d, _ := NewDevice(sim, TeslaC1060())
	if d.Sim() != sim {
		t.Error("Sim accessor broken")
	}
	if d.ComputeResource() != "tesla-c1060" || d.CopyResource() != "tesla-c1060:pcie" {
		t.Errorf("resource names: %q / %q", d.ComputeResource(), d.CopyResource())
	}
	st := d.NewStream(0)
	iv := st.CopyD2H("d2h", 1000)
	if iv.Resource != d.CopyResource() {
		t.Error("D2H must use the copy engine")
	}
	tr := sim.Trace()
	if len(tr) != 1 || tr[0].Label != "d2h" {
		t.Errorf("trace = %+v", tr)
	}
}
