package stats

import (
	"math"
	"testing"
)

func TestBinomialSurvival(t *testing.T) {
	// Exact hand-computed values for small n.
	cases := []struct {
		n, k int
		p    float64
		want float64
	}{
		{15, 0, 0.02, 1},
		{15, 16, 0.02, 0},
		{4, 4, 0.5, 1.0 / 16},
		{4, 3, 0.5, 5.0 / 16},
		{15, 1, 0.02, 1 - math.Pow(0.98, 15)},
		{15, 2, 0.02, 1 - math.Pow(0.98, 15) - 15*0.02*math.Pow(0.98, 14)},
	}
	for _, c := range cases {
		got := BinomialSurvival(c.n, c.k, c.p)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("BinomialSurvival(%d, %d, %g) = %.15f, want %.15f", c.n, c.k, c.p, got, c.want)
		}
	}
	if !math.IsNaN(BinomialSurvival(10, 3, math.NaN())) {
		t.Error("NaN p must propagate")
	}
	if !math.IsNaN(BinomialSurvival(-1, 0, 0.5)) {
		t.Error("negative n must yield NaN")
	}
}

func TestRequiredPassesCalibration(t *testing.T) {
	// The two battery configurations quality_long_test.go used to
	// hardcode as "≥ 14 of 15": one borderline band failure is within
	// tolerance, two are not.
	if got := RequiredPasses(15, 0.02, 0.05); got != 14 {
		t.Errorf("DIEHARD band: RequiredPasses(15, 0.02, 0.05) = %d, want 14", got)
	}
	if got := RequiredPasses(15, 0.01, 0.05); got != 14 {
		t.Errorf("TestU01 band: RequiredPasses(15, 0.01, 0.05) = %d, want 14", got)
	}
	// A stricter battery alpha demands more passes, a looser one
	// fewer; the requirement is monotone in both directions.
	if a, b := RequiredPasses(15, 0.02, 0.3), RequiredPasses(15, 0.02, 0.001); a < b {
		t.Errorf("looser battery alpha demands more passes: %d < %d", a, b)
	}
	if a, b := RequiredPasses(15, 0.001, 0.05), RequiredPasses(15, 0.2, 0.05); a < b {
		t.Errorf("noisier tests demand more passes: %d < %d", a, b)
	}
	// Degenerate sizes.
	if got := RequiredPasses(0, 0.02, 0.05); got != 0 {
		t.Errorf("empty battery requires %d passes", got)
	}
	// A battery alpha so tight no failure is tolerable requires a
	// clean sweep.
	if got := RequiredPasses(15, 0.02, 1e-9); got > 15 {
		t.Errorf("required passes %d exceeds battery size", got)
	}
}

func TestRequiredPassesNeverExceedsTotal(t *testing.T) {
	for total := 1; total <= 64; total++ {
		for _, alpha := range []float64{0.001, 0.01, 0.02, 0.1} {
			got := RequiredPasses(total, alpha, 0.05)
			if got < 0 || got > total {
				t.Fatalf("RequiredPasses(%d, %g, 0.05) = %d outside [0, %d]", total, alpha, got, total)
			}
			// The chosen tolerance must actually meet the battery
			// alpha: P[passes < got] ≤ 0.05 under H0.
			f := total - got
			if s := BinomialSurvival(total, f+1, alpha); s > 0.05+1e-12 {
				t.Fatalf("RequiredPasses(%d, %g): residual false-alarm %.4f > 0.05", total, alpha, s)
			}
		}
	}
}

func TestBonferroniZ(t *testing.T) {
	// m = 1 reduces to the plain two-sided threshold.
	if z := BonferroniZ(1, 0.05); math.Abs(z-1.959963984540054) > 1e-9 {
		t.Errorf("BonferroniZ(1, 0.05) = %.12f, want 1.96", z)
	}
	// More comparisons push the threshold up.
	z1, z2 := BonferroniZ(10, 0.01), BonferroniZ(100000, 0.01)
	if z2 <= z1 {
		t.Errorf("threshold must grow with m: %.3f vs %.3f", z1, z2)
	}
	if z2 < 5 || z2 > 7 {
		t.Errorf("BonferroniZ(1e5, 0.01) = %.3f outside sane range", z2)
	}
}
