package stats

import "math"

// GF2RankProb returns the probability that a uniformly random m×n
// binary matrix over GF(2) has rank r:
//
//	P(r) = 2^{r(m+n−r)−mn} · Π_{i=0}^{r−1} (1−2^{i−m})(1−2^{i−n}) / (1−2^{i−r})
func GF2RankProb(m, n, r int) float64 {
	if r < 0 || r > m || r > n {
		return 0
	}
	logp := float64(r*(m+n-r)-m*n) * math.Ln2
	prod := 0.0
	for i := 0; i < r; i++ {
		prod += math.Log1p(-math.Exp2(float64(i-m))) +
			math.Log1p(-math.Exp2(float64(i-n))) -
			math.Log1p(-math.Exp2(float64(i-r)))
	}
	return math.Exp(logp + prod)
}

// GF2Rank computes the rank over GF(2) of a matrix given as rows of
// packed 64-bit words: row i occupies rows[i*stride : (i+1)*stride],
// least significant word first, with `cols` meaningful columns. The
// input is not modified.
func GF2Rank(rows [][]uint64, cols int) int {
	if len(rows) == 0 || cols <= 0 {
		return 0
	}
	work := make([][]uint64, len(rows))
	for i, r := range rows {
		work[i] = append([]uint64(nil), r...)
	}
	rank := 0
	for col := 0; col < cols && rank < len(work); col++ {
		w, b := col/64, uint(col%64)
		pivot := -1
		for i := rank; i < len(work); i++ {
			if work[i][w]>>b&1 == 1 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[rank], work[pivot] = work[pivot], work[rank]
		for i := 0; i < len(work); i++ {
			if i != rank && work[i][w]>>b&1 == 1 {
				for j := range work[i] {
					work[i][j] ^= work[rank][j]
				}
			}
		}
		rank++
	}
	return rank
}
