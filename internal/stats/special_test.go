package stats

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestGammaPExponentialIdentity(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10, 50} {
		got, err := GammaP(1, x)
		if err != nil {
			t.Fatalf("GammaP(1, %g): %v", x, err)
		}
		want := 1 - math.Exp(-x)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaP(1, %g) = %g, want %g", x, got, want)
		}
	}
}

func TestGammaPErfIdentity(t *testing.T) {
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.01, 0.25, 1, 4, 9} {
		got, err := GammaP(0.5, x)
		if err != nil {
			t.Fatalf("GammaP(0.5, %g): %v", x, err)
		}
		want := math.Erf(math.Sqrt(x))
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaP(0.5, %g) = %g, want %g", x, got, want)
		}
	}
}

func TestGammaPQComplementary(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 10, 100} {
		for _, x := range []float64{0.01, 0.5, 1, 3, 10, 90, 200} {
			p, err1 := GammaP(a, x)
			q, err2 := GammaQ(a, x)
			if err1 != nil || err2 != nil {
				t.Fatalf("GammaP/Q(%g, %g): %v %v", a, x, err1, err2)
			}
			if !almostEqual(p+q, 1, 1e-10) {
				t.Errorf("P+Q at a=%g x=%g = %g, want 1", a, x, p+q)
			}
			if p < 0 || p > 1 || q < 0 || q > 1 {
				t.Errorf("P or Q out of [0,1] at a=%g x=%g: p=%g q=%g", a, x, p, q)
			}
		}
	}
}

func TestGammaPDomainErrors(t *testing.T) {
	if _, err := GammaP(-1, 1); err == nil {
		t.Error("GammaP(-1, 1) should fail")
	}
	if _, err := GammaP(1, -1); err == nil {
		t.Error("GammaP(1, -1) should fail")
	}
	if _, err := GammaQ(0, 1); err == nil {
		t.Error("GammaQ(0, 1) should fail")
	}
	if p, err := GammaP(2, 0); err != nil || p != 0 {
		t.Errorf("GammaP(2, 0) = %g, %v; want 0, nil", p, err)
	}
	if q, err := GammaQ(2, 0); err != nil || q != 1 {
		t.Errorf("GammaQ(2, 0) = %g, %v; want 1, nil", q, err)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalCDF(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestChiSquareCDFKnownValues(t *testing.T) {
	// Classic critical values: P[X ≤ x] for χ²(df).
	cases := []struct {
		x, df, want float64
	}{
		{3.841458820694124, 1, 0.95},
		{5.991464547107979, 2, 0.95},
		{18.307038053275146, 10, 0.95},
		{0.0039321400000000003, 1, 0.05},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.x, c.df); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("ChiSquareCDF(%g, %g) = %g, want %g", c.x, c.df, got, c.want)
		}
	}
}

func TestPoissonCDFMatchesDirectSum(t *testing.T) {
	for _, lambda := range []float64{0.5, 2, 10, 30} {
		for _, k := range []int{0, 1, 5, 20, 50} {
			direct := 0.0
			for i := 0; i <= k; i++ {
				direct += PoissonPMF(lambda, i)
			}
			got := PoissonCDF(lambda, k)
			if !almostEqual(got, direct, 1e-10) {
				t.Errorf("PoissonCDF(%g, %d) = %g, direct sum %g", lambda, k, got, direct)
			}
		}
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	lambda := 7.3
	sum := 0.0
	for k := 0; k < 100; k++ {
		sum += PoissonPMF(lambda, k)
	}
	if !almostEqual(sum, 1, 1e-10) {
		t.Errorf("Poisson pmf sum = %g, want 1", sum)
	}
}

func TestBinomialLogPMF(t *testing.T) {
	// C(10,3) 0.5^10 = 120/1024.
	got := math.Exp(BinomialLogPMF(10, 3, 0.5))
	want := 120.0 / 1024.0
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("BinomialPMF(10,3,0.5) = %g, want %g", got, want)
	}
	if !math.IsInf(BinomialLogPMF(5, 6, 0.5), -1) {
		t.Error("BinomialLogPMF with k>n should be -Inf")
	}
	if BinomialLogPMF(5, 0, 0) != 0 {
		t.Error("BinomialLogPMF(5,0,0) should be log(1)=0")
	}
}

func TestLnChoose(t *testing.T) {
	got := math.Exp(LnChoose(52, 5))
	if !almostEqual(got, 2598960, 1e-3) {
		t.Errorf("C(52,5) = %g, want 2598960", got)
	}
}
