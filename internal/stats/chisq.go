package stats

import (
	"fmt"
	"math"
)

// ChiSquareCDF returns P[X ≤ x] for X ~ χ²(df).
func ChiSquareCDF(x float64, df float64) float64 {
	if x <= 0 || df <= 0 {
		return 0
	}
	p, err := GammaP(df/2, x/2)
	if err != nil {
		return math.NaN()
	}
	return p
}

// ChiSquareSurvival returns P[X > x] for X ~ χ²(df), i.e. the upper
// tail used as the classic chi-square goodness-of-fit p-value.
func ChiSquareSurvival(x float64, df float64) float64 {
	if x <= 0 || df <= 0 {
		return 1
	}
	q, err := GammaQ(df/2, x/2)
	if err != nil {
		return math.NaN()
	}
	return q
}

// ChiSquareResult bundles the outcome of a chi-square goodness-of-fit
// test.
type ChiSquareResult struct {
	Statistic float64 // Pearson X² statistic
	DF        float64 // degrees of freedom
	P         float64 // CDF value P[X ≤ stat]; uniform under H0
}

// Survival returns the upper-tail probability of the statistic.
func (r ChiSquareResult) Survival() float64 { return 1 - r.P }

func (r ChiSquareResult) String() string {
	return fmt.Sprintf("chisq=%.4f df=%.0f p=%.6f", r.Statistic, r.DF, r.P)
}

// ChiSquare computes Pearson's goodness-of-fit test between observed
// counts and expected counts. Categories with expected count below
// minExpected are pooled with their right neighbour (and the final
// run pooled leftwards), the standard remedy for sparse cells.
// df = pooledCategories - 1 - dfAdjust (dfAdjust accounts for
// parameters estimated from the data; pass 0 when none).
func ChiSquare(observed []float64, expected []float64, minExpected float64, dfAdjust int) (ChiSquareResult, error) {
	if len(observed) != len(expected) {
		return ChiSquareResult{}, fmt.Errorf("stats: chisq length mismatch %d != %d", len(observed), len(expected))
	}
	if len(observed) == 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: chisq on empty data")
	}
	obs, exp := poolCells(observed, expected, minExpected)
	if len(obs) < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: chisq has fewer than 2 cells after pooling")
	}
	var x2 float64
	for i := range obs {
		if exp[i] <= 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: chisq expected[%d] = %g not positive", i, exp[i])
		}
		d := obs[i] - exp[i]
		x2 += d * d / exp[i]
	}
	df := float64(len(obs) - 1 - dfAdjust)
	if df < 1 {
		df = 1
	}
	return ChiSquareResult{Statistic: x2, DF: df, P: ChiSquareCDF(x2, df)}, nil
}

// poolCells merges adjacent cells until every expected count reaches
// minExpected. It walks left to right accumulating; a trailing
// under-filled accumulator is merged into the previous pooled cell.
func poolCells(observed, expected []float64, minExpected float64) (obs, exp []float64) {
	if minExpected <= 0 {
		return append([]float64(nil), observed...), append([]float64(nil), expected...)
	}
	var accO, accE float64
	for i := range observed {
		accO += observed[i]
		accE += expected[i]
		if accE >= minExpected {
			obs = append(obs, accO)
			exp = append(exp, accE)
			accO, accE = 0, 0
		}
	}
	if accE > 0 {
		if len(obs) == 0 {
			obs = append(obs, accO)
			exp = append(exp, accE)
		} else {
			obs[len(obs)-1] += accO
			exp[len(exp)-1] += accE
		}
	}
	return obs, exp
}

// ChiSquareUniformBins tests whether the values, all expected to lie
// in [0,1), are uniformly distributed across nbins equiprobable bins.
func ChiSquareUniformBins(values []float64, nbins int) (ChiSquareResult, error) {
	if nbins < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: need at least 2 bins, got %d", nbins)
	}
	counts := make([]float64, nbins)
	for _, v := range values {
		idx := int(v * float64(nbins))
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		counts[idx]++
	}
	expected := make([]float64, nbins)
	e := float64(len(values)) / float64(nbins)
	for i := range expected {
		expected[i] = e
	}
	return ChiSquare(counts, expected, 5, 0)
}
