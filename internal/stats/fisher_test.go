package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 0.001, 0.02425, 0.2, 0.5, 0.8, 0.999, 1 - 1e-10} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%g)) = %g", p, got)
		}
	}
	if NormalQuantile(0.5) != 0 && math.Abs(NormalQuantile(0.5)) > 1e-12 {
		t.Errorf("Quantile(0.5) = %g", NormalQuantile(0.5))
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile endpoints must be infinite")
	}
	// Known value: Φ⁻¹(0.975) = 1.959963985…
	if math.Abs(NormalQuantile(0.975)-1.959963984540054) > 1e-9 {
		t.Errorf("Quantile(0.975) = %.12f", NormalQuantile(0.975))
	}
}

func TestFisherCombineUniformInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Combined p of uniforms should itself be uniform: check it is
	// not systematically extreme over many trials.
	extreme := 0
	const trials = 500
	for tr := 0; tr < trials; tr++ {
		ps := make([]float64, 10)
		for i := range ps {
			ps[i] = rng.Float64()
		}
		c, err := FisherCombine(ps)
		if err != nil {
			t.Fatal(err)
		}
		if c < 0.01 {
			extreme++
		}
	}
	// Expect ≈ 1% ⇒ ~5 of 500; allow generous slack.
	if extreme > 20 {
		t.Errorf("Fisher flagged %d/%d uniform batches", extreme, trials)
	}
}

func TestFisherCombineDetectsSmallPs(t *testing.T) {
	ps := []float64{0.001, 0.002, 0.004, 0.003, 0.001}
	c, err := FisherCombine(ps)
	if err != nil {
		t.Fatal(err)
	}
	if c > 1e-8 {
		t.Errorf("Fisher combined = %g for blatantly small inputs", c)
	}
}

func TestFisherCombineValidation(t *testing.T) {
	if _, err := FisherCombine(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := FisherCombine([]float64{0}); err == nil {
		t.Error("p = 0 should fail")
	}
	if _, err := FisherCombine([]float64{1.5}); err == nil {
		t.Error("p > 1 should fail")
	}
}

func TestStoufferCombine(t *testing.T) {
	// Symmetric: the combination of {p, 1−p} is 0.5.
	c, err := StoufferCombine([]float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.5) > 1e-9 {
		t.Errorf("Stouffer({0.2, 0.8}) = %g, want 0.5", c)
	}
	// A cluster of large p-values lands near 1 (which Fisher cannot
	// flag).
	c, err = StoufferCombine([]float64{0.99, 0.995, 0.99, 0.992})
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.999 {
		t.Errorf("Stouffer on large-p cluster = %g", c)
	}
	if _, err := StoufferCombine(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := StoufferCombine([]float64{1}); err == nil {
		t.Error("p = 1 should fail for Stouffer")
	}
}
