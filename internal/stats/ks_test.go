package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKolmogorovCDFBounds(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 1000, 10000} {
		prev := -1.0
		for d := 0.0; d <= 1.0; d += 0.01 {
			p := KolmogorovCDF(n, d)
			if p < 0 || p > 1 {
				t.Fatalf("KolmogorovCDF(%d, %g) = %g out of [0,1]", n, d, p)
			}
			// Allow a sub-1e-6 dip where the exact matrix method
			// hands over to the asymptotic tail estimate.
			if p+2e-6 < prev {
				t.Fatalf("KolmogorovCDF(%d, ·) not monotone at d=%g: %g < %g", n, d, p, prev)
			}
			prev = p
		}
	}
}

func TestKolmogorovCDFExactN1(t *testing.T) {
	// For n=1, D = max(U, 1-U), so P[D ≤ d] = 2d - 1 on [1/2, 1].
	for _, d := range []float64{0.5, 0.6, 0.75, 0.9, 0.99} {
		got := KolmogorovCDF(1, d)
		want := 2*d - 1
		if !almostEqual(got, want, 1e-9) {
			t.Errorf("KolmogorovCDF(1, %g) = %g, want %g", d, got, want)
		}
	}
	if got := KolmogorovCDF(1, 0.3); got != 0 {
		t.Errorf("KolmogorovCDF(1, 0.3) = %g, want 0", got)
	}
}

func TestKolmogorovCDFMonteCarloReference(t *testing.T) {
	// Reference values estimated by direct simulation with 200k
	// trials (standard error ≲ 0.0015).
	cases := []struct {
		n    int
		d, p float64
	}{
		{10, 0.2, 0.2527},
		{10, 0.3, 0.7291},
		{10, 0.41, 0.9506},
		{100, 0.1, 0.7467},
		{100, 0.2, 0.99945},
	}
	for _, c := range cases {
		got := KolmogorovCDF(c.n, c.d)
		if math.Abs(got-c.p) > 0.01 {
			t.Errorf("KolmogorovCDF(%d, %g) = %.5f, want ≈%.5f (Monte Carlo)", c.n, c.d, got, c.p)
		}
	}
}

func TestKolmogorovExactVsAsymptotic(t *testing.T) {
	// At large n, the exact matrix value should approach the
	// asymptotic distribution evaluated at sqrt(n)·d.
	n := 2000
	for _, x := range []float64{0.5, 0.8, 1.0, 1.5} {
		d := x / math.Sqrt(float64(n))
		exact := mtwExact(n, d)
		asym := kolmogorovAsymptotic(x)
		if math.Abs(exact-asym) > 0.02 {
			t.Errorf("n=%d x=%g: exact=%g asymptotic=%g differ by more than 0.02", n, x, exact, asym)
		}
	}
}

func TestKSUniformOnUniformSample(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	res, err := KSUniform(vals)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.001 || res.P > 0.999 {
		t.Errorf("KS p=%g for a genuinely uniform sample; expected non-extreme", res.P)
	}
	if res.D <= 0 || res.D >= 0.1 {
		t.Errorf("KS D=%g looks wrong for n=5000 uniform sample", res.D)
	}
}

func TestKSUniformDetectsNonUniform(t *testing.T) {
	// A sample concentrated in [0, 0.5) must fail decisively.
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.Float64() * 0.5
	}
	res, err := KSUniform(vals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Survival() > 1e-6 {
		t.Errorf("KS failed to reject half-range sample: surv=%g", res.Survival())
	}
	if res.D < 0.4 {
		t.Errorf("KS D=%g, want ≈0.5 for half-range sample", res.D)
	}
}

func TestKSEmptySample(t *testing.T) {
	if _, err := KSUniform(nil); err == nil {
		t.Error("KS on empty sample should fail")
	}
}

func TestKSStatisticExactSmallSample(t *testing.T) {
	// Hand-computed: sample {0.1, 0.2, 0.3} against U[0,1).
	// F_n steps at 1/3, 2/3, 1. D = max over i of
	// max(i/n - x_i, x_i - (i-1)/n) = max(1/3-0.1, 2/3-0.2, 1-0.3)=0.7.
	res, err := KSUniform([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.D, 0.7, 1e-12) {
		t.Errorf("D = %g, want 0.7", res.D)
	}
}

func TestKSDoesNotModifyInput(t *testing.T) {
	vals := []float64{0.9, 0.1, 0.5}
	if _, err := KSUniform(vals); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0.9 || vals[1] != 0.1 || vals[2] != 0.5 {
		t.Errorf("KSUniform reordered its input: %v", vals)
	}
}

func TestKolmogorovCDFQuickProperties(t *testing.T) {
	// Property: for every n and d, the CDF lies in [0,1] and
	// increases with d.
	f := func(nRaw uint8, d1Raw, d2Raw uint16) bool {
		n := int(nRaw)%200 + 1
		d1 := float64(d1Raw) / 65536
		d2 := float64(d2Raw) / 65536
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		p1 := KolmogorovCDF(n, d1)
		p2 := KolmogorovCDF(n, d2)
		// Tolerate the sub-1e-6 dip at the exact/asymptotic regime
		// boundary (see TestKolmogorovCDFBounds).
		return p1 >= 0 && p2 <= 1 && p1 <= p2+2e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAndersonDarlingUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	a2, p, err := AndersonDarlingUniform(vals)
	if err != nil {
		t.Fatal(err)
	}
	if a2 < 0 {
		t.Errorf("A² = %g, must be non-negative for a sane sample", a2)
	}
	if p < 0.001 {
		t.Errorf("AD rejected a uniform sample: p=%g", p)
	}
	// Skewed sample must be rejected.
	for i := range vals {
		vals[i] = math.Sqrt(rng.Float64()) // density 2x on [0,1)
	}
	_, p, err = AndersonDarlingUniform(vals)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-4 {
		t.Errorf("AD failed to reject sqrt-skewed sample: p=%g", p)
	}
	if _, _, err := AndersonDarlingUniform(nil); err == nil {
		t.Error("AD on empty sample should fail")
	}
}
