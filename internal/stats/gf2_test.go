package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestGF2RankProbLaw(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {6, 8}, {32, 32}} {
		m, n := dims[0], dims[1]
		max := m
		if n < max {
			max = n
		}
		sum := 0.0
		for r := 0; r <= max; r++ {
			sum += GF2RankProb(m, n, r)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%dx%d rank law sums to %g", m, n, sum)
		}
	}
	if GF2RankProb(4, 4, 5) != 0 || GF2RankProb(4, 4, -1) != 0 {
		t.Error("out-of-range rank probability must be 0")
	}
	// Known 32×32 value.
	if p := GF2RankProb(32, 32, 32); math.Abs(p-0.2888) > 5e-4 {
		t.Errorf("P(rank 32) = %g", p)
	}
}

func TestGF2RankMultiWord(t *testing.T) {
	// 128-column identity-ish matrix: rows with single distinct bits
	// have full rank.
	rows := make([][]uint64, 4)
	rows[0] = []uint64{1, 0}
	rows[1] = []uint64{1 << 63, 0}
	rows[2] = []uint64{0, 1}      // column 64
	rows[3] = []uint64{0, 1 << 5} // column 69
	if r := GF2Rank(rows, 128); r != 4 {
		t.Errorf("rank = %d, want 4", r)
	}
	// Add a dependent row: r4 = r0 XOR r2.
	rows = append(rows, []uint64{1, 1})
	if r := GF2Rank(rows, 128); r != 4 {
		t.Errorf("rank with dependent row = %d, want 4", r)
	}
	// Input rows must not be modified.
	if rows[4][0] != 1 || rows[4][1] != 1 {
		t.Error("GF2Rank modified its input")
	}
	// Degenerate inputs.
	if GF2Rank(nil, 10) != 0 || GF2Rank(rows, 0) != 0 {
		t.Error("degenerate rank should be 0")
	}
}

func TestGF2RankMatchesLawEmpirically(t *testing.T) {
	// Random 64×64 matrices: full rank should occur with probability
	// ≈ Π (1 − 2^-k) ≈ 0.2888.
	rng := rand.New(rand.NewSource(5))
	full := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		rows := make([][]uint64, 64)
		for j := range rows {
			rows[j] = []uint64{rng.Uint64()}
		}
		if GF2Rank(rows, 64) == 64 {
			full++
		}
	}
	frac := float64(full) / trials
	if math.Abs(frac-0.2888) > 0.04 {
		t.Errorf("full-rank fraction = %g, want ≈ 0.2888", frac)
	}
}

func TestStringersAndAccessors(t *testing.T) {
	c := ChiSquareResult{Statistic: 1.5, DF: 3, P: 0.4}
	if c.String() == "" || c.Survival() != 0.6 {
		t.Error("chi-square result accessors broken")
	}
	k := KSResult{D: 0.1, N: 10, P: 0.7}
	if k.String() == "" || math.Abs(k.Survival()-0.3) > 1e-12 {
		t.Error("KS result accessors broken")
	}
}

func TestHistogramMeanAndStdDev(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if got := h.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("histogram mean = %g, want 5", got)
	}
	empty, _ := NewHistogram(0, 1, 4)
	if !math.IsNaN(empty.Mean()) {
		t.Error("empty histogram mean should be NaN")
	}
	var s SummaryStats
	s.Add(1)
	s.Add(3)
	if math.Abs(s.StdDev()-math.Sqrt2) > 1e-12 {
		t.Errorf("stddev = %g", s.StdDev())
	}
}

func TestChiSquareSurvivalEdges(t *testing.T) {
	if ChiSquareSurvival(-1, 3) != 1 || ChiSquareSurvival(1, 0) != 1 {
		t.Error("degenerate survival should be 1")
	}
	if got := ChiSquareSurvival(3.841458820694124, 1); math.Abs(got-0.05) > 1e-6 {
		t.Errorf("survival at the 95%% critical value = %g", got)
	}
}

func TestKolmogorovCDFDegenerateInputs(t *testing.T) {
	if !math.IsNaN(KolmogorovCDF(0, 0.5)) {
		t.Error("n=0 should be NaN")
	}
	if KolmogorovCDF(5, -0.1) != 0 || KolmogorovCDF(5, 1.5) != 1 {
		t.Error("d outside [0,1] should clamp")
	}
	// Large-n path.
	if p := KolmogorovCDF(10000, 0.02); p <= 0 || p >= 1 {
		t.Errorf("large-n CDF = %g", p)
	}
}
