package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult bundles the outcome of a one-sample Kolmogorov–Smirnov
// test.
type KSResult struct {
	D float64 // KS statistic: sup |F_n(x) - F(x)|
	N int     // sample size
	P float64 // P[D_n ≤ d] under H0 (uniform on [0,1] under H0)
}

// Survival returns the upper-tail probability P[D_n > d], the classic
// "KS p-value".
func (r KSResult) Survival() float64 { return 1 - r.P }

func (r KSResult) String() string {
	return fmt.Sprintf("ks D=%.5f n=%d p=%.6f", r.D, r.N, r.P)
}

// KSUniform runs the one-sample KS test of the values against the
// uniform distribution on [0,1). The input is not modified.
func KSUniform(values []float64) (KSResult, error) {
	return KSTest(values, func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 1:
			return 1
		default:
			return x
		}
	})
}

// KSTest runs the one-sample KS test of the values against the
// continuous CDF cdf. The input is not modified.
func KSTest(values []float64, cdf func(float64) float64) (KSResult, error) {
	n := len(values)
	if n == 0 {
		return KSResult{}, fmt.Errorf("stats: KS test on empty sample")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var d float64
	for i, v := range sorted {
		f := cdf(v)
		upper := float64(i+1)/float64(n) - f
		lower := f - float64(i)/float64(n)
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return KSResult{D: d, N: n, P: KolmogorovCDF(n, d)}, nil
}

// KolmogorovCDF returns P[D_n ≤ d] for the one-sample KS statistic
// with sample size n, using the Marsaglia–Tsang–Wang matrix method
// for exact evaluation at small/moderate n and the asymptotic
// Kolmogorov distribution for large n.
//
// Reference: Marsaglia, Tsang, Wang, "Evaluating Kolmogorov's
// Distribution", Journal of Statistical Software 8(18), 2003.
func KolmogorovCDF(n int, d float64) float64 {
	if n <= 0 {
		return math.NaN()
	}
	if d <= 0 {
		return 0
	}
	if d >= 1 {
		return 1
	}
	nf := float64(n)
	s := d * d * nf
	// In the regions where the asymptotic form is accurate to ~7
	// digits, use it; this also keeps the matrix size bounded.
	if s > 7.24 || (s > 3.76 && n > 99) {
		return 1 - 2*math.Exp(-(2.000071+0.331/math.Sqrt(nf)+1.409/nf)*s)
	}
	if n > 5000 {
		// Straight asymptotic Kolmogorov distribution.
		return kolmogorovAsymptotic(math.Sqrt(nf) * d)
	}
	return mtwExact(n, d)
}

// kolmogorovAsymptotic returns K(x) = 1 - 2 Σ (-1)^{k-1} e^{-2k²x²}.
func kolmogorovAsymptotic(x float64) float64 {
	if x < 0.2 {
		return 0
	}
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k*k) * x * x)
		if k%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-16 {
			break
		}
	}
	return 1 - 2*sum
}

// mtwExact implements the Marsaglia–Tsang–Wang exact algorithm:
// P[D_n < d] = n!/n^n * (H^n)[k-1][k-1] where H is an m×m matrix,
// m = 2k-1, k = ceil(n d), h = k - n d.
func mtwExact(n int, d float64) float64 {
	nd := float64(n) * d
	k := int(math.Ceil(nd))
	m := 2*k - 1
	h := float64(k) - nd

	H := make([][]float64, m)
	for i := range H {
		H[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i-j+1 >= 0 {
				H[i][j] = 1
			}
		}
	}
	for i := 0; i < m; i++ {
		H[i][0] -= math.Pow(h, float64(i+1))
		H[m-1][i] -= math.Pow(h, float64(m-i))
	}
	if 2*h-1 > 0 {
		H[m-1][0] += math.Pow(2*h-1, float64(m))
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i-j+1 > 0 {
				for g := 1; g <= i-j+1; g++ {
					H[i][j] /= float64(g)
				}
			}
		}
	}

	// Compute H^n with scaling to avoid overflow, tracking a power
	// eQ of 10^140.
	Q, eQ := matPowerScaled(H, n, m)
	s := Q[k-1][k-1]
	for i := 1; i <= n; i++ {
		s = s * float64(i) / float64(n)
		if s < 1e-140 {
			s *= 1e140
			eQ--
		}
	}
	return s * math.Pow(10, float64(eQ)*140)
}

// matPowerScaled raises the m×m matrix H to the n-th power by
// repeated squaring, rescaling by 10^-140 whenever the central entry
// grows past 10^140 and counting the rescalings in eV.
func matPowerScaled(H [][]float64, n, m int) (V [][]float64, eV int) {
	if n == 1 {
		return H, 0
	}
	A, eA := matPowerScaled(H, n/2, m)
	V = matMul(A, A, m)
	eV = 2 * eA
	if n%2 == 1 {
		V = matMul(H, V, m)
	}
	if V[m/2][m/2] > 1e140 {
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				V[i][j] *= 1e-140
			}
		}
		eV++
	}
	return V, eV
}

func matMul(A, B [][]float64, m int) [][]float64 {
	C := make([][]float64, m)
	for i := range C {
		C[i] = make([]float64, m)
		for g := 0; g < m; g++ {
			a := A[i][g]
			if a == 0 {
				continue
			}
			row := B[g]
			for j := 0; j < m; j++ {
				C[i][j] += a * row[j]
			}
		}
	}
	return C
}

// AndersonDarlingUniform computes the Anderson–Darling A² statistic
// of the values against Uniform[0,1) together with an approximate
// upper-tail p-value (Marsaglia & Marsaglia 2004 style approximation).
// Used by ablation reporting; the batteries themselves use KS to
// match the paper.
func AndersonDarlingUniform(values []float64) (a2, p float64, err error) {
	n := len(values)
	if n == 0 {
		return 0, 0, fmt.Errorf("stats: AD test on empty sample")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	const eps = 1e-12
	sum := 0.0
	for i, v := range sorted {
		u := math.Min(math.Max(v, eps), 1-eps)
		w := sorted[n-1-i]
		w = math.Min(math.Max(w, eps), 1-eps)
		sum += float64(2*i+1) * (math.Log(u) + math.Log(1-w))
	}
	a2 = -float64(n) - sum/float64(n)
	p = 1 - adInf(a2)
	return a2, p, nil
}

// adInf approximates the limiting Anderson–Darling CDF.
func adInf(z float64) float64 {
	if z <= 0 {
		return 0
	}
	if z < 2 {
		return math.Exp(-1.2337141/z) / math.Sqrt(z) *
			(2.00012 + (0.247105-(0.0649821-(0.0347962-(0.0116720-0.00168691*z)*z)*z)*z)*z)
	}
	return math.Exp(-math.Exp(1.0776 - (2.30695-(0.43424-(0.082433-(0.008056-0.0003146*z)*z)*z)*z)*z))
}
