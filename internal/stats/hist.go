package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-range equal-width histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	Under    uint64 // observations below Min
	Over     uint64 // observations at or above Max
	total    uint64
}

// NewHistogram creates a histogram with nbins equal-width bins over
// [min, max).
func NewHistogram(min, max float64, nbins int) (*Histogram, error) {
	if nbins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", nbins)
	}
	if !(min < max) {
		return nil, fmt.Errorf("stats: histogram range [%g, %g) is empty", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, nbins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.Min:
		h.Under++
	case v >= h.Max:
		h.Over++
	default:
		idx := int((v - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if idx >= len(h.Counts) { // guard against FP rounding at the edge
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Total returns the number of observations recorded, including
// under/overflow.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the midpoint-weighted mean of the in-range
// observations.
func (h *Histogram) Mean() float64 {
	var sum, n float64
	width := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		mid := h.Min + (float64(i)+0.5)*width
		sum += mid * float64(c)
		n += float64(c)
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / n
}

// ChiSquareUniform tests the in-range counts against a uniform
// expectation.
func (h *Histogram) ChiSquareUniform() (ChiSquareResult, error) {
	obs := make([]float64, len(h.Counts))
	var total float64
	for i, c := range h.Counts {
		obs[i] = float64(c)
		total += float64(c)
	}
	exp := make([]float64, len(h.Counts))
	for i := range exp {
		exp[i] = total / float64(len(exp))
	}
	return ChiSquare(obs, exp, 5, 0)
}

// SummaryStats accumulates running mean/variance/extrema using
// Welford's algorithm. The zero value is ready to use.
type SummaryStats struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *SummaryStats) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N returns the number of observations.
func (s *SummaryStats) N() uint64 { return s.n }

// Mean returns the running mean.
func (s *SummaryStats) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *SummaryStats) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *SummaryStats) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 when empty).
func (s *SummaryStats) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *SummaryStats) Max() float64 { return s.max }
