package stats

import (
	"math/rand"
	"testing"
)

func TestChiSquareFairDie(t *testing.T) {
	// 600 rolls of a fair die with mildly noisy counts.
	obs := []float64{95, 105, 98, 102, 100, 100}
	exp := []float64{100, 100, 100, 100, 100, 100}
	res, err := ChiSquare(obs, exp, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 5 {
		t.Errorf("df = %g, want 5", res.DF)
	}
	// X² = (25+25+4+4)/100 = 0.58.
	if !almostEqual(res.Statistic, 0.58, 1e-12) {
		t.Errorf("X² = %g, want 0.58", res.Statistic)
	}
	if res.Survival() < 0.9 {
		t.Errorf("survival = %g; this die is plainly fair", res.Survival())
	}
}

func TestChiSquareDetectsLoadedDie(t *testing.T) {
	obs := []float64{300, 60, 60, 60, 60, 60}
	exp := []float64{100, 100, 100, 100, 100, 100}
	res, err := ChiSquare(obs, exp, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Survival() > 1e-10 {
		t.Errorf("survival = %g; this die is loaded", res.Survival())
	}
}

func TestChiSquarePoolsSparseCells(t *testing.T) {
	// Expected counts 1 each: with minExpected=5 the 10 cells pool
	// into 2 groups of 5.
	obs := make([]float64, 10)
	exp := make([]float64, 10)
	for i := range obs {
		obs[i] = 1
		exp[i] = 1
	}
	res, err := ChiSquare(obs, exp, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 1 {
		t.Errorf("df = %g after pooling, want 1", res.DF)
	}
	if res.Statistic != 0 {
		t.Errorf("X² = %g, want 0 for obs==exp", res.Statistic)
	}
}

func TestChiSquareTrailingPool(t *testing.T) {
	// A trailing under-filled accumulator must merge leftwards, not
	// form its own cell.
	obs := []float64{10, 10, 3}
	exp := []float64{10, 10, 3}
	res, err := ChiSquare(obs, exp, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 1 { // cells: {10}, {10+3}
		t.Errorf("df = %g, want 1", res.DF)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, err := ChiSquare([]float64{1}, []float64{1, 2}, 0, 0); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := ChiSquare(nil, nil, 0, 0); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ChiSquare([]float64{1, 2}, []float64{0, 3}, 0, 0); err == nil {
		t.Error("non-positive expected count should fail")
	}
}

func TestChiSquareUniformBins(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	res, err := ChiSquareUniformBins(vals, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.9999 || res.P < 0.0001 {
		t.Errorf("p = %g for genuine uniforms; expected non-extreme", res.P)
	}
	if _, err := ChiSquareUniformBins(vals, 1); err == nil {
		t.Error("single bin should fail")
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-0.5)
	h.Add(0.05)
	h.Add(0.95)
	h.Add(1.5)
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under=%d over=%d, want 1,1", h.Under, h.Over)
	}
	if h.Counts[0] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Errorf("total = %d, want 4", h.Total())
	}
	if _, err := NewHistogram(1, 0, 5); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestHistogramChiSquareUniform(t *testing.T) {
	h, _ := NewHistogram(0, 1, 16)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 16000; i++ {
		h.Add(rng.Float64())
	}
	res, err := h.ChiSquareUniform()
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 1e-4 || res.P > 1-1e-4 {
		t.Errorf("uniform histogram chi-square p = %g, should be unremarkable", res.P)
	}
}

func TestSummaryStats(t *testing.T) {
	var s SummaryStats
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("n = %d, want 8", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %g, want 5", s.Mean())
	}
	// Sample variance of that classic set is 32/7.
	if !almostEqual(s.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %g, want %g", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", s.Min(), s.Max())
	}
	var empty SummaryStats
	if empty.Variance() != 0 {
		t.Error("variance of empty stats should be 0")
	}
}
