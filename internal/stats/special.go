// Package stats provides the statistical machinery shared by the
// DIEHARD and TestU01-style batteries: special functions (regularised
// incomplete gamma, error function wrappers), goodness-of-fit tests
// (chi-square, Kolmogorov–Smirnov), and histogram helpers.
//
// All p-values follow the convention that under the null hypothesis
// the returned value is uniformly distributed on [0, 1]; a battery
// declares a test failed when the p-value falls outside a configured
// band (the paper uses 0.01 ≤ p ≤ 0.99).
package stats

import (
	"errors"
	"math"
)

// ErrDomain is returned by functions whose argument is outside the
// mathematically valid domain.
var ErrDomain = errors.New("stats: argument outside domain")

const (
	maxIterations = 1000
	epsilon       = 3e-14
	tiny          = 1e-300
)

// LnGamma returns the natural logarithm of the absolute value of the
// Gamma function at x. It is a thin wrapper over math.Lgamma that
// drops the sign, which is always +1 for the positive arguments used
// by the test batteries.
func LnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// GammaP returns the regularised lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x ≥ 0.
//
// P is computed by the series expansion for x < a+1 and by the
// continued-fraction expansion of Q otherwise, following the
// classical Numerical Recipes decomposition.
func GammaP(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return 0, ErrDomain
	case x < 0:
		return 0, ErrDomain
	case x == 0:
		return 0, nil
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	q, err := gammaQContinued(a, x)
	return 1 - q, err
}

// GammaQ returns the regularised upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return 0, ErrDomain
	case x < 0:
		return 0, ErrDomain
	case x == 0:
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaPSeries(a, x)
		return 1 - p, err
	}
	return gammaQContinued(a, x)
}

// gammaPSeries evaluates P(a,x) by its power series, valid and fast
// for x < a+1.
func gammaPSeries(a, x float64) (float64, error) {
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIterations; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsilon {
			return sum * math.Exp(-x+a*math.Log(x)-LnGamma(a)), nil
		}
	}
	return 0, errors.New("stats: gamma series failed to converge")
}

// gammaQContinued evaluates Q(a,x) by a modified Lentz continued
// fraction, valid and fast for x ≥ a+1.
func gammaQContinued(a, x float64) (float64, error) {
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIterations; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			return math.Exp(-x+a*math.Log(x)-LnGamma(a)) * h, nil
		}
	}
	return 0, errors.New("stats: gamma continued fraction failed to converge")
}

// NormalCDF returns Φ(x), the standard normal cumulative distribution
// function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalPValue returns the two-sided p-value fold of a standard
// normal statistic mapped to [0,1]: the probability that a standard
// normal variate is below x. DIEHARD reports one-sided Φ(z) values,
// so this is simply the CDF; helper kept for readability at call
// sites.
func NormalPValue(z float64) float64 {
	return NormalCDF(z)
}

// PoissonPMF returns e^{-λ} λ^k / k!.
func PoissonPMF(lambda float64, k int) float64 {
	if k < 0 || lambda < 0 {
		return 0
	}
	return math.Exp(-lambda + float64(k)*math.Log(lambda) - LnGamma(float64(k)+1))
}

// PoissonCDF returns P[X ≤ k] for X ~ Poisson(λ).
func PoissonCDF(lambda float64, k int) float64 {
	if k < 0 {
		return 0
	}
	// P[X ≤ k] = Q(k+1, λ) (regularised upper incomplete gamma).
	q, err := GammaQ(float64(k)+1, lambda)
	if err != nil {
		return math.NaN()
	}
	return q
}

// BinomialLogPMF returns log C(n,k) + k log p + (n-k) log(1-p).
func BinomialLogPMF(n, k int, p float64) float64 {
	if k < 0 || k > n || p < 0 || p > 1 {
		return math.Inf(-1)
	}
	if p == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p == 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	lc := LnGamma(float64(n)+1) - LnGamma(float64(k)+1) - LnGamma(float64(n-k)+1)
	return lc + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
}

// LnChoose returns log C(n, k).
func LnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LnGamma(float64(n)+1) - LnGamma(float64(k)+1) - LnGamma(float64(n-k)+1)
}
