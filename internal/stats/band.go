package stats

import (
	"fmt"
	"math"
)

// BinomialSurvival returns P[X ≥ k] for X ~ Binomial(n, p), summed
// exactly in log space (n in this repository is a battery size, tens
// at most, so direct summation is both exact enough and cheap).
func BinomialSurvival(n, k int, p float64) float64 {
	if n < 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	sum := 0.0
	for i := k; i <= n; i++ {
		sum += math.Exp(BinomialLogPMF(n, i, p))
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// RequiredPasses returns the minimum pass count a battery of total
// independent tests must reach, when each test false-alarms with
// probability perTestAlpha under H0, for the battery verdict itself
// to false-alarm with probability at most batteryAlpha.
//
// It is the shared calibration rule behind every pass/fail gate in
// this repository — the single-stream Table II/III guards
// (quality_long_test.go) and the cross-stream battery
// (internal/crossstream) — so tolerances are derived from the band,
// not hardcoded: the allowed failure count f is the smallest f with
// P[Binomial(total, perTestAlpha) > f] ≤ batteryAlpha, and the
// result is total − f.
//
// Calibration notes for this repo's batteries:
//   - DIEHARD uses the paper's pass band [0.01, 0.99], so
//     perTestAlpha = 0.02; RequiredPasses(15, 0.02, 0.05) = 14,
//     the "allow one borderline band failure" rule the long tests
//     used to hardcode.
//   - The TestU01-style batteries pass on [0.001, 0.999] plus the
//     per-p-value extreme rule (testu01.extremeP), an effective
//     perTestAlpha ≈ 0.01 for the multi-p tests;
//     RequiredPasses(15, 0.01, 0.05) = 14.
func RequiredPasses(total int, perTestAlpha, batteryAlpha float64) int {
	if total <= 0 {
		return 0
	}
	if !(perTestAlpha > 0 && perTestAlpha < 1) || !(batteryAlpha > 0 && batteryAlpha < 1) {
		panic(fmt.Sprintf("stats: RequiredPasses alphas outside (0,1): %g, %g", perTestAlpha, batteryAlpha))
	}
	for f := 0; f <= total; f++ {
		if BinomialSurvival(total, f+1, perTestAlpha) <= batteryAlpha {
			return total - f
		}
	}
	return 0
}

// BonferroniZ returns the two-sided |z| threshold at which one of m
// simultaneous normal statistics is declared a failure while keeping
// the family-wise false-alarm rate at alpha: the (1 − alpha/2m)
// normal quantile. Cross-stream correlation and avalanche checks use
// it so their thresholds scale with how many pairs they scan instead
// of being tuned by hand.
func BonferroniZ(m int, alpha float64) float64 {
	if m < 1 {
		m = 1
	}
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("stats: BonferroniZ alpha %g outside (0,1)", alpha))
	}
	p := 1 - alpha/(2*float64(m))
	return NormalQuantile(p)
}
