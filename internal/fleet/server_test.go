package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer stands up the controller HTTP API on a loopback
// listener over a fake-clock controller.
func newTestServer(t *testing.T, clk *fakeClock, opts ServerOptions) (*Controller, *httptest.Server) {
	t.Helper()
	c, err := NewController(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(c, opts).Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

func postAs[T any](t *testing.T, url string, body any) T {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %s: %s", url, resp.Status, msg)
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerRegisterHeartbeatEndpoints drives the full wire loop:
// register two nodes over HTTP, read the endpoint list, kill one via
// heartbeat silence, and watch the list shrink.
func TestServerRegisterHeartbeatEndpoints(t *testing.T) {
	clk := newFakeClock()
	ctrl, srv := newTestServer(t, clk, ServerOptions{})

	res := postAs[RegisterResult](t, srv.URL+"/v1/register",
		NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000})
	if res.HeartbeatInterval != time.Second {
		t.Fatalf("assigned interval %v, want 1s", res.HeartbeatInterval)
	}
	postAs[RegisterResult](t, srv.URL+"/v1/register",
		NodeInfo{ID: "b", URL: "http://b", CapacityWords: 64_000})

	var er EndpointsResponse
	resp, err := http.Get(srv.URL + "/v1/endpoints")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(er.Endpoints) != 2 {
		t.Fatalf("endpoints = %v, want 2", er.Endpoints)
	}

	// b falls silent while a keeps beating; the sweep demotes b.
	clk.Advance(11 * time.Second)
	postAs[struct {
		OK bool `json:"ok"`
	}](t, srv.URL+"/v1/heartbeat", HeartbeatRequest{ID: "a", HeartbeatReport: healthyBeat(8)})
	if _, eps := ctrl.Endpoints(); len(eps) != 1 || eps[0] != "http://a" {
		t.Fatalf("after silence: endpoints = %v, want just a", eps)
	}

	// Status for operators round-trips as JSON.
	resp, err = http.Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.LogicalShards != 64 || len(st.Nodes) != 2 {
		t.Fatalf("fleet status %+v", st)
	}
}

// TestServerHeartbeatUnknown404: 404 is load-bearing — it is the
// agent's cue to re-register after a controller restart.
func TestServerHeartbeatUnknown404(t *testing.T) {
	clk := newFakeClock()
	_, srv := newTestServer(t, clk, ServerOptions{})
	buf, _ := json.Marshal(HeartbeatRequest{ID: "ghost", HeartbeatReport: healthyBeat(8)})
	resp, err := http.Post(srv.URL+"/v1/heartbeat", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown heartbeat: %s, want 404", resp.Status)
	}
}

// TestServerEndpointsLongPoll: a ?wait=V request parks until the
// version moves, then returns the fresh list.
func TestServerEndpointsLongPoll(t *testing.T) {
	clk := newFakeClock()
	ctrl, srv := newTestServer(t, clk, ServerOptions{})
	postAs[RegisterResult](t, srv.URL+"/v1/register",
		NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000})
	v, _ := ctrl.Endpoints()

	got := make(chan EndpointsResponse, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/v1/endpoints?wait=%d", srv.URL, v))
		if err != nil {
			return
		}
		defer resp.Body.Close()
		var er EndpointsResponse
		if json.NewDecoder(resp.Body).Decode(&er) == nil {
			got <- er
		}
	}()

	// Let the long-poll park, then change the fleet.
	time.Sleep(20 * time.Millisecond)
	postAs[RegisterResult](t, srv.URL+"/v1/register",
		NodeInfo{ID: "b", URL: "http://b", CapacityWords: 64_000})
	select {
	case er := <-got:
		if er.Version <= v || len(er.Endpoints) != 2 {
			t.Fatalf("long-poll woke with %+v", er)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke on endpoint change")
	}
}

// TestServerDrainOrchestration: POST /v1/drain freezes the node,
// pulls its snapshot blob through the node's own /drain endpoint, and
// relays blob + resume token; a successor registering with the token
// inherits the ranges.
func TestServerDrainOrchestration(t *testing.T) {
	blob := []byte("pool-state-blob-0123456789")
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/drain" {
			http.NotFound(w, r)
			return
		}
		w.Write(blob)
	}))
	defer node.Close()

	clk := newFakeClock()
	ctrl, srv := newTestServer(t, clk, ServerOptions{})
	postAs[RegisterResult](t, srv.URL+"/v1/register",
		NodeInfo{ID: "a", URL: node.URL, CapacityWords: 64_000})

	resp, err := http.Post(srv.URL+"/v1/drain?id=a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("drain: %s: %s", resp.Status, msg)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("relayed blob %q, want %q", got, blob)
	}
	token := resp.Header.Get("X-Fleet-Resume-Token")
	if !strings.HasPrefix(token, "drain-a-") {
		t.Fatalf("resume token %q", token)
	}
	if resp.Header.Get("X-Fleet-Drained-Node") != "a" {
		t.Fatalf("drained-node header %q", resp.Header.Get("X-Fleet-Drained-Node"))
	}

	// The drained node left the rotation; the successor claims its
	// ranges with the token.
	if _, eps := ctrl.Endpoints(); len(eps) != 0 {
		t.Fatalf("drained node still serving: %v", eps)
	}
	res := postAs[RegisterResult](t, srv.URL+"/v1/register",
		NodeInfo{ID: "a2", URL: "http://a2", CapacityWords: 64_000, ResumeToken: token})
	if len(res.Claimed) == 0 {
		t.Fatalf("successor claimed nothing: %+v", res)
	}
	if err := ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServerDrainAbortsOnNodeFailure: a node that cannot snapshot
// must not be stranded out of rotation — the drain rolls back.
func TestServerDrainAbortsOnNodeFailure(t *testing.T) {
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "snapshot failed", http.StatusInternalServerError)
	}))
	defer node.Close()

	clk := newFakeClock()
	ctrl, srv := newTestServer(t, clk, ServerOptions{})
	postAs[RegisterResult](t, srv.URL+"/v1/register",
		NodeInfo{ID: "a", URL: node.URL, CapacityWords: 64_000})

	resp, err := http.Post(srv.URL+"/v1/drain?id=a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("failed drain: %s, want 502", resp.Status)
	}
	if _, eps := ctrl.Endpoints(); len(eps) != 1 {
		t.Fatalf("node not restored after failed drain: %v", eps)
	}
	if st := ctrl.Status(); len(st.Tickets) != 0 {
		t.Fatalf("ticket leaked after abort: %+v", st.Tickets)
	}
	if err := ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServerDrainUnknownNode: draining a node the controller does not
// know is a clean 404, not a conflict or a hang.
func TestServerDrainUnknownNode(t *testing.T) {
	clk := newFakeClock()
	_, srv := newTestServer(t, clk, ServerOptions{})
	resp, err := http.Post(srv.URL+"/v1/drain?id=nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain unknown: %s, want 404", resp.Status)
	}
}

// TestServerMethodDiscipline: mutating endpoints refuse GET.
func TestServerMethodDiscipline(t *testing.T) {
	clk := newFakeClock()
	_, srv := newTestServer(t, clk, ServerOptions{})
	for _, path := range []string{"/v1/register", "/v1/heartbeat", "/v1/deregister", "/v1/drain"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: %s, want 405", path, resp.Status)
		}
	}
}

// drainableNode is a fake randd admin surface: /drain answers with a
// configurable (possibly broken) body and latches draining; /undrain
// clears the latch. It lets the relay-failure tests assert the
// controller rolls the node-side latch back.
type drainableNode struct {
	mu       sync.Mutex
	draining bool
	undrains int
	serve    func(w http.ResponseWriter)
}

func (d *drainableNode) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		defer d.mu.Unlock()
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/drain":
			d.draining = true
			d.serve(w)
		case r.Method == http.MethodPost && r.URL.Path == "/undrain":
			d.draining = false
			d.undrains++
			fmt.Fprintln(w, `{"draining":false}`)
		default:
			http.NotFound(w, r)
		}
	})
}

func (d *drainableNode) state() (draining bool, undrains int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining, d.undrains
}

// TestServerDrainRelayFailureRollsBackNodeLatch: when the node
// commits its drain but the controller-side relay fails (body read
// error after 200), the controller must clear the node's latch via
// /undrain BEFORE re-admitting it — otherwise the fleet routes
// clients and placement at a node that 503s every draw forever.
func TestServerDrainRelayFailureRollsBackNodeLatch(t *testing.T) {
	dn := &drainableNode{serve: func(w http.ResponseWriter) {
		// Declare more body than we send: the handler's short write
		// makes net/http sever the connection, so the controller's
		// read fails after the node already latched.
		w.Header().Set("Content-Length", "100")
		w.Write([]byte("short"))
	}}
	node := httptest.NewServer(dn.handler())
	defer node.Close()

	clk := newFakeClock()
	ctrl, srv := newTestServer(t, clk, ServerOptions{})
	postAs[RegisterResult](t, srv.URL+"/v1/register",
		NodeInfo{ID: "a", URL: node.URL, CapacityWords: 64_000})

	resp, err := http.Post(srv.URL+"/v1/drain?id=a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("failed relay: %s, want 502", resp.Status)
	}
	if draining, undrains := dn.state(); draining || undrains != 1 {
		t.Fatalf("node latch after failed relay: draining=%v undrains=%d, want undrained exactly once", draining, undrains)
	}
	if _, eps := ctrl.Endpoints(); len(eps) != 1 {
		t.Fatalf("node not restored after failed relay: %v", eps)
	}
	if st := ctrl.Status(); len(st.Tickets) != 0 {
		t.Fatalf("ticket leaked: %+v", st.Tickets)
	}
	if err := ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestServerDrainOversizeBlobFailsLoudly: a snapshot over the relay
// cap must FAIL the drain (abort + node-side undrain), never be
// silently truncated — a truncated blob would retire the node and
// boot the successor from corrupt state. Both detection paths are
// exercised: a declared Content-Length over the cap, and a chunked
// body that only reveals its size while being read.
func TestServerDrainOversizeBlobFailsLoudly(t *testing.T) {
	big := bytes.Repeat([]byte("x"), 32)
	for name, serve := range map[string]func(w http.ResponseWriter){
		"declared": func(w http.ResponseWriter) {
			w.Header().Set("Content-Length", "32")
			w.Write(big)
		},
		"chunked": func(w http.ResponseWriter) {
			w.Write(big[:16])
			w.(http.Flusher).Flush()
			w.Write(big[16:])
		},
	} {
		t.Run(name, func(t *testing.T) {
			dn := &drainableNode{serve: serve}
			node := httptest.NewServer(dn.handler())
			defer node.Close()

			clk := newFakeClock()
			ctrl, srv := newTestServer(t, clk, ServerOptions{MaxDrainBlob: 16})
			postAs[RegisterResult](t, srv.URL+"/v1/register",
				NodeInfo{ID: "a", URL: node.URL, CapacityWords: 64_000})

			resp, err := http.Post(srv.URL+"/v1/drain?id=a", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadGateway || !strings.Contains(string(msg), "relay cap") {
				t.Fatalf("oversize drain: %s %q, want 502 about the relay cap", resp.Status, msg)
			}
			if draining, undrains := dn.state(); draining || undrains != 1 {
				t.Fatalf("node latch after oversize drain: draining=%v undrains=%d", draining, undrains)
			}
			if _, eps := ctrl.Endpoints(); len(eps) != 1 {
				t.Fatalf("node not restored: %v", eps)
			}
			if err := ctrl.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
