package fleet

import "sort"

// Placement: logical shard ranges onto nodes, bounded by derated
// capacity. The discipline is the one a GPU scheduler applies to
// device memory — compute the node's real budget, charge every
// assignment against it, and refuse to place past it, parking the
// overflow as pending instead. A pending range is visible, honest
// backlog; an over-committed node is a latency lie told to every
// client that lands on it.

// deratedLocked is the node's declared capacity scaled by the
// healthy fraction of its pool, as of the last heartbeat. A node
// that has not reported pool health yet is charged at full declared
// capacity (registration precedes the first heartbeat by design).
// Dead, draining and drained nodes rate zero — nothing may be
// placed on them.
func (c *Controller) deratedLocked(n *node) uint64 {
	switch n.state {
	case StateDead, StateDraining, StateDrained:
		return 0
	}
	if n.shards <= 0 {
		return n.capacity
	}
	return n.capacity * uint64(n.healthy) / uint64(n.shards)
}

// budgetLocked converts derated words/s into whole logical shards.
func (c *Controller) budgetLocked(n *node) uint64 {
	return c.deratedLocked(n) / c.cfg.StreamWords
}

// spareLocked is the unassigned remainder of a node's budget.
func (c *Controller) spareLocked(n *node) uint64 {
	b := c.budgetLocked(n)
	if w := width(n.assigned); w < b {
		return b - w
	}
	return 0
}

// placeLocked drains the pending list onto alive nodes with spare
// budget, splitting ranges as needed. Deterministic: the node with
// the most spare budget wins each grant (ties broken by ID), so the
// fleet levels out and equal histories place equally. Suspect nodes
// keep what they hold but receive nothing new — the controller does
// not bet fresh streams on a node it doubts.
func (c *Controller) placeLocked() {
	c.pending = normalize(c.pending)
	for len(c.pending) > 0 {
		var best *node
		var bestSpare uint64
		for _, n := range c.sortedNodesLocked() {
			if n.state != StateAlive {
				continue
			}
			if s := c.spareLocked(n); s > bestSpare {
				best, bestSpare = n, s
			}
		}
		if best == nil {
			return
		}
		r := c.pending[0]
		take := r.Width()
		if take > bestSpare {
			take = bestSpare
		}
		best.assigned = normalize(append(best.assigned, Range{r.Lo, r.Lo + take}))
		if take == r.Width() {
			c.pending = c.pending[1:]
		} else {
			c.pending[0].Lo += take
		}
	}
}

// shedLocked trims a node back inside its budget after a capacity
// derate (pool degradation, a lowered declaration): excess ranges —
// highest logical shards first — go pending for placeLocked to move
// elsewhere. Shedding is what keeps the over-commit invariant true
// *through* degradation, not just at placement time.
func (c *Controller) shedLocked(n *node) {
	budget := c.budgetLocked(n)
	for width(n.assigned) > budget {
		last := &n.assigned[len(n.assigned)-1]
		over := width(n.assigned) - budget
		if cut := last.Width(); cut <= over {
			c.pending = append(c.pending, *last)
			n.assigned = n.assigned[:len(n.assigned)-1]
		} else {
			c.pending = append(c.pending, Range{last.Hi - over, last.Hi})
			last.Hi -= over
		}
	}
	c.pending = normalize(c.pending)
}

// sortedNodesLocked returns the nodes in ID order — every placement
// walk iterates deterministically, never in map order.
func (c *Controller) sortedNodesLocked() []*node {
	out := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
