package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestAgentRunHeartbeatsAndReregisters: the agent registers, beats on
// the assigned cadence, and when the controller forgets it (404 —
// controller restart) it re-registers transparently instead of
// beating into the void.
func TestAgentRunHeartbeatsAndReregisters(t *testing.T) {
	clk := newFakeClock()
	ctrl, err := NewController(Config{
		LogicalShards:     64,
		StreamWords:       1000,
		HeartbeatInterval: 10 * time.Millisecond,
		Clock:             clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	var registers, beats atomic.Int64
	inner := NewServer(ctrl, ServerOptions{}).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/register":
			registers.Add(1)
		case "/v1/heartbeat":
			if beats.Add(1) == 2 {
				// Simulate a controller restart right under the agent.
				if err := ctrl.Deregister("a"); err != nil {
					t.Error(err)
				}
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	a, err := NewAgent(AgentOptions{
		Controller: srv.URL,
		Node:       NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000},
		Report:     func() HeartbeatReport { return healthyBeat(8) },
		RetryWait:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { a.Run(ctx); close(done) }()

	deadline := time.After(5 * time.Second)
	for registers.Load() < 2 || beats.Load() < 4 {
		select {
		case <-deadline:
			t.Fatalf("agent stalled: registers=%d beats=%d", registers.Load(), beats.Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return on cancel")
	}
	if _, eps := ctrl.Endpoints(); len(eps) != 1 {
		t.Fatalf("re-registered node missing from endpoints: %v", eps)
	}
}

// TestAgentRegisterRetriesUntilControllerUp: an agent started before
// its controller keeps retrying instead of giving up — node boot
// order must not matter.
func TestAgentRegisterRetriesUntilControllerUp(t *testing.T) {
	clk := newFakeClock()
	ctrl, err := NewController(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	var up atomic.Bool
	inner := NewServer(ctrl, ServerOptions{}).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	a, err := NewAgent(AgentOptions{
		Controller: srv.URL,
		Node:       NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000},
		Report:     func() HeartbeatReport { return healthyBeat(8) },
		Interval:   10 * time.Millisecond,
		RetryWait:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.Run(ctx)

	time.Sleep(25 * time.Millisecond) // a few refused attempts
	up.Store(true)
	deadline := time.After(5 * time.Second)
	for {
		if _, eps := ctrl.Endpoints(); len(eps) == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("agent never registered after controller came up")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestAgentDeregister: deregistration pulls the node out of the
// endpoint list, and a second call (already forgotten) is success,
// not an error — shutdown paths must be idempotent.
func TestAgentDeregister(t *testing.T) {
	clk := newFakeClock()
	ctrl, err := NewController(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(ctrl, ServerOptions{}).Handler())
	defer srv.Close()

	a, err := NewAgent(AgentOptions{
		Controller: srv.URL,
		Node:       NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000},
		Report:     func() HeartbeatReport { return healthyBeat(8) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Deregister(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, eps := ctrl.Endpoints(); len(eps) != 0 {
		t.Fatalf("endpoints after deregister: %v", eps)
	}
	if err := a.Deregister(context.Background()); err != nil {
		t.Fatalf("second deregister should be a no-op, got %v", err)
	}
}

// TestAgentOptionsValidation: the constructor rejects configs that
// could only fail later and louder.
func TestAgentOptionsValidation(t *testing.T) {
	report := func() HeartbeatReport { return HeartbeatReport{} }
	node := NodeInfo{ID: "a", URL: "http://a", CapacityWords: 1}
	for _, opts := range []AgentOptions{
		{Node: node, Report: report},
		{Controller: "http://c", Report: report},
		{Controller: "http://c", Node: node},
	} {
		if _, err := NewAgent(opts); err == nil {
			t.Fatalf("NewAgent(%+v) should fail", opts)
		}
	}
}

// TestWatchEndpointsFollowsFleet: the watcher delivers the initial
// list and every subsequent change, and survives a controller outage
// by keeping quiet until it is back.
func TestWatchEndpointsFollowsFleet(t *testing.T) {
	clk := newFakeClock()
	ctrl, err := NewController(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(ctrl, ServerOptions{WatchHold: 50 * time.Millisecond}).Handler())
	defer srv.Close()
	if _, err := ctrl.Register(NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000}); err != nil {
		t.Fatal(err)
	}

	type update struct {
		version   uint64
		endpoints []string
	}
	updates := make(chan update, 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go WatchEndpoints(ctx, srv.URL, nil, func(v uint64, eps []string) {
		updates <- update{v, eps}
	})

	first := <-updates
	if len(first.endpoints) != 1 || first.endpoints[0] != "http://a" {
		t.Fatalf("initial watch delivered %+v", first)
	}
	if _, err := ctrl.Register(NodeInfo{ID: "b", URL: "http://b", CapacityWords: 64_000}); err != nil {
		t.Fatal(err)
	}
	select {
	case u := <-updates:
		if u.version <= first.version || len(u.endpoints) != 2 {
			t.Fatalf("watch update %+v", u)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher missed the endpoint change")
	}
}

// TestWatchEndpointsControllerRestart: a replaced controller starts
// its endpoint versioning from scratch, so the watcher sees the
// version go backwards. That must resync the watch, not freeze it on
// the dead controller's final list.
func TestWatchEndpointsControllerRestart(t *testing.T) {
	clk := newFakeClock()
	ctrl1, err := NewController(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	// Advance ctrl1 past version 1 so the restarted controller's
	// numbering is strictly behind.
	if _, err := ctrl1.Register(NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl1.Register(NodeInfo{ID: "b", URL: "http://b", CapacityWords: 64_000}); err != nil {
		t.Fatal(err)
	}

	var handler atomic.Value // http.Handler: the "controller process"
	handler.Store(NewServer(ctrl1, ServerOptions{WatchHold: 50 * time.Millisecond}).Handler())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()

	type update struct {
		version   uint64
		endpoints []string
	}
	updates := make(chan update, 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go WatchEndpoints(ctx, srv.URL, nil, func(v uint64, eps []string) {
		updates <- update{v, eps}
	})

	var last update
	deadline := time.After(5 * time.Second)
	for len(last.endpoints) != 2 {
		select {
		case last = <-updates:
		case <-deadline:
			t.Fatalf("watcher never reached ctrl1's two-node list, last %+v", last)
		}
	}

	// "Restart" the controller: a fresh process with a fresh version
	// counter and a different fleet.
	ctrl2, err := NewController(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl2.Register(NodeInfo{ID: "c", URL: "http://c", CapacityWords: 64_000}); err != nil {
		t.Fatal(err)
	}
	handler.Store(NewServer(ctrl2, ServerOptions{WatchHold: 50 * time.Millisecond}).Handler())

	for {
		select {
		case u := <-updates:
			if len(u.endpoints) == 1 && u.endpoints[0] == "http://c" {
				if u.version >= last.version {
					t.Fatalf("restarted controller should have a lower version, got %d after %d", u.version, last.version)
				}
				return
			}
		case <-time.After(5 * time.Second):
			t.Fatal("watcher stayed pinned to the dead controller's endpoint list after the version went backwards")
		}
	}
}
