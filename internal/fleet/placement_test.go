package fleet

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"
)

// TestPlacementSpreadsBySpare: grants go to the node with the most
// spare budget, so a fresh fleet levels out instead of piling onto
// one node.
func TestPlacementSpreadsBySpare(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 32_000)
	mustRegister(t, c, "b", "http://b", 32_000)
	assertInvariants(t, c)
	st := c.Status()
	na, nb := nodeByID(t, st, "a"), nodeByID(t, st, "b")
	if na.AssignedWidth != 32 || nb.AssignedWidth != 32 {
		t.Fatalf("placement skewed: a=%d b=%d", na.AssignedWidth, nb.AssignedWidth)
	}
	if st.PendingWidth != 0 {
		t.Fatalf("pending %d with exact fleet capacity", st.PendingWidth)
	}
}

// TestPlacementInsufficientCapacityParks: when the fleet cannot hold
// the keyspace, the overflow is pending — visible backlog, never an
// over-committed node.
func TestPlacementInsufficientCapacityParks(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 10_000)
	assertInvariants(t, c)
	st := c.Status()
	if got := nodeByID(t, st, "a").AssignedWidth; got != 10 {
		t.Fatalf("assigned %d, budget 10", got)
	}
	if st.PendingWidth != 54 {
		t.Fatalf("pending %d, want 54", st.PendingWidth)
	}
	// New capacity absorbs the backlog.
	mustRegister(t, c, "b", "http://b", 64_000)
	assertInvariants(t, c)
	if st := c.Status(); st.PendingWidth != 0 {
		t.Fatalf("pending %d after capacity arrived", st.PendingWidth)
	}
}

// TestPlacementDeterministic: two controllers fed the same event
// sequence on the same clock make identical decisions — placement
// has no hidden map-order or wall-clock dependence.
func TestPlacementDeterministic(t *testing.T) {
	run := func() string {
		clk := newFakeClock()
		c, _ := NewController(testConfig(clk))
		mustRegister(t, c, "n3", "http://n3", 21_000)
		mustRegister(t, c, "n1", "http://n1", 17_000)
		mustRegister(t, c, "n2", "http://n2", 40_000)
		clk.Advance(time.Second)
		if err := c.Heartbeat("n2", HeartbeatReport{Shards: 8, Healthy: 5}); err != nil {
			t.Fatal(err)
		}
		clk.Advance(4 * time.Second) // n1, n3 turn suspect
		c.Advance()
		st := c.Status()
		return fmt.Sprintf("%+v", st.Nodes) + fmt.Sprintf("%v", st.Pending)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("placement diverged:\n%s\n%s", a, b)
	}
}

// TestPlacementPropertyNeverOverCommits drives random fleets through
// random register / heartbeat / degrade / kill / drain / resume /
// deregister sequences and checks, after every single event, that no
// node exceeds its derated budget and the logical shard ranges stay
// an exact alias-free partition. This is the fleet-level version of
// the pool's recovery-invariant tests: the safety property must hold
// on every path, not just the happy one.
func TestPlacementPropertyNeverOverCommits(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(seed, 0xf1ee7^seed))
			clk := newFakeClock()
			cfg := testConfig(clk)
			cfg.LogicalShards = 1 + uint64(rng.IntN(256))
			c, err := NewController(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var tokens []string
			nextID := 0
			liveIDs := func() []string {
				var ids []string
				for _, n := range c.Status().Nodes {
					ids = append(ids, n.ID)
				}
				return ids
			}
			for step := 0; step < 300; step++ {
				clk.Advance(time.Duration(rng.IntN(2000)) * time.Millisecond)
				ids := liveIDs()
				switch op := rng.IntN(10); {
				case op <= 2 || len(ids) == 0: // register fresh
					nextID++
					id := fmt.Sprintf("n%d", nextID)
					mustRegister(t, c, id, "http://"+id, uint64(1+rng.IntN(100))*1000)
				case op <= 5: // heartbeat, possibly degraded
					id := ids[rng.IntN(len(ids))]
					shards := 1 + rng.IntN(16)
					hb := HeartbeatReport{Shards: shards, Healthy: rng.IntN(shards + 1)}
					if rng.IntN(4) == 0 {
						hb.CapacityWords = uint64(1+rng.IntN(100)) * 1000
					}
					if err := c.Heartbeat(id, hb); err != nil && err != ErrUnknownNode {
						t.Fatal(err)
					}
				case op == 6: // silence sweep (kills whoever aged out)
					c.Advance()
				case op == 7: // begin a drain
					id := ids[rng.IntN(len(ids))]
					if tk, err := c.BeginDrain(id); err == nil {
						tokens = append(tokens, tk.Token)
					}
				case op == 8 && len(tokens) > 0: // resolve a ticket
					tok := tokens[rng.IntN(len(tokens))]
					if rng.IntN(2) == 0 {
						nextID++
						id := fmt.Sprintf("n%d", nextID)
						if _, err := c.Register(NodeInfo{
							ID: id, URL: "http://" + id,
							CapacityWords: uint64(1+rng.IntN(100)) * 1000,
							ResumeToken:   tok,
						}); err != nil {
							t.Fatal(err)
						}
					} else if err := c.AbortDrain(tok); err != nil {
						// Already claimed or aborted — fine.
						_ = err
					}
				default: // deregister
					id := ids[rng.IntN(len(ids))]
					if err := c.Deregister(id); err != nil && err != ErrUnknownNode {
						t.Fatal(err)
					}
				}
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		})
	}
}
