package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Agent is the node side of the control plane, embedded in randd: it
// registers the node on boot (retrying until the controller
// answers), heartbeats the pool's live health on the controller's
// cadence, re-registers automatically when the controller forgets it
// (controller restart), and deregisters on shutdown so clients are
// steered away *before* the node stops serving. The agent performs
// no wall-clock reads — its only time dependence is the heartbeat
// ticker, a real wait.
type Agent struct {
	opts     AgentOptions
	http     *http.Client
	interval time.Duration // effective heartbeat cadence after registration
}

// AgentOptions configures an Agent.
type AgentOptions struct {
	// Controller is the randctl base URL (required).
	Controller string
	// Node is what to register: ID, advertised URL, declared
	// capacity, and optionally the resume token of a drain ticket
	// this node is the successor for.
	Node NodeInfo
	// Report snapshots the node's pool health for each heartbeat
	// (required — wire it to hybridprng.Pool.Stats).
	Report func() HeartbeatReport
	// Interval overrides the controller-assigned heartbeat cadence
	// (0: use what registration returns).
	Interval time.Duration
	// RetryWait is the pause between failed register/heartbeat
	// attempts (0: 1 s).
	RetryWait time.Duration
	// HTTPClient overrides the transport (nil: a dedicated client).
	HTTPClient *http.Client
	// Logf receives operational notes (nil: silent).
	Logf func(format string, args ...any)
}

// NewAgent validates opts and builds an Agent.
func NewAgent(opts AgentOptions) (*Agent, error) {
	if opts.Controller == "" {
		return nil, errors.New("fleet: agent: empty controller URL")
	}
	if opts.Node.ID == "" || opts.Node.URL == "" {
		return nil, errors.New("fleet: agent: node ID and URL are required")
	}
	if opts.Report == nil {
		return nil, errors.New("fleet: agent: Report is required")
	}
	if opts.RetryWait <= 0 {
		opts.RetryWait = time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	a := &Agent{opts: opts, http: opts.HTTPClient}
	if a.http == nil {
		a.http = &http.Client{}
	}
	return a, nil
}

// Register performs one registration attempt and records the
// heartbeat cadence the controller assigned.
func (a *Agent) Register(ctx context.Context) (RegisterResult, error) {
	var res RegisterResult
	if err := a.post(ctx, "/v1/register", a.opts.Node, &res); err != nil {
		return res, err
	}
	a.interval = res.HeartbeatInterval
	if a.opts.Interval > 0 {
		a.interval = a.opts.Interval
	}
	if a.interval <= 0 {
		a.interval = DefaultHeartbeatInterval
	}
	if res.Warning != "" {
		a.opts.Logf("fleet agent %s: register warning: %s", a.opts.Node.ID, res.Warning)
	}
	return res, nil
}

// Run registers (retrying until it succeeds) and then heartbeats
// until ctx is cancelled. A heartbeat the controller answers with
// 404 — it restarted and forgot us — triggers transparent
// re-registration. Run only returns on ctx cancellation.
func (a *Agent) Run(ctx context.Context) {
	for {
		if _, err := a.Register(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			a.opts.Logf("fleet agent %s: register: %v (retrying)", a.opts.Node.ID, err)
			if !sleepCtx(ctx, a.opts.RetryWait) {
				return
			}
			continue
		}
		a.opts.Logf("fleet agent %s: registered with %s (heartbeat %v)",
			a.opts.Node.ID, a.opts.Controller, a.interval)
		if reregister := a.beat(ctx); !reregister {
			return
		}
		// Fall through to re-register: the controller no longer knows
		// us. The node's own pool state is untouched — re-registering
		// with the same ID resumes its place in the fleet.
	}
}

// beat heartbeats on the ticker until ctx cancels (returns false) or
// the controller asks for a re-registration (returns true).
func (a *Agent) beat(ctx context.Context) (reregister bool) {
	t := time.NewTicker(a.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			req := HeartbeatRequest{ID: a.opts.Node.ID, HeartbeatReport: a.opts.Report()}
			err := a.post(ctx, "/v1/heartbeat", req, nil)
			switch {
			case err == nil:
			case errors.Is(err, errNotFound):
				a.opts.Logf("fleet agent %s: controller forgot us; re-registering", a.opts.Node.ID)
				return true
			case ctx.Err() != nil:
				return false
			default:
				// Transient: keep beating. The controller's suspect
				// window is several intervals wide by design.
				a.opts.Logf("fleet agent %s: heartbeat: %v", a.opts.Node.ID, err)
			}
		}
	}
}

// Deregister tells the controller this node is leaving — randd calls
// it on SIGTERM *before* draining, so the endpoint list stops
// pointing at a node about to refuse draws. A failed deregistration
// is loud in randd (non-zero exit): it means clients may keep being
// steered at a corpse until the heartbeat timeout catches up.
func (a *Agent) Deregister(ctx context.Context) error {
	err := a.post(ctx, "/v1/deregister", DeregisterRequest{ID: a.opts.Node.ID}, nil)
	if errors.Is(err, errNotFound) {
		return nil // already forgotten — the goal state
	}
	return err
}

// errNotFound marks a 404 from the controller: the node is unknown.
var errNotFound = errors.New("fleet: not found")

// post sends one JSON request to the controller and decodes the JSON
// reply into out (when non-nil).
func (a *Agent) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.opts.Controller+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return errNotFound
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("fleet: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out)
}

// sleepCtx waits d or until ctx cancels; false means cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// WatchEndpoints long-polls the controller's endpoint list and calls
// apply on every version change (including the first fetch). It is
// the consumer-side glue: wire apply to
// (*client.Client).SetEndpoints and SDK failover tracks the live
// fleet — new nodes join the rotation, drained and dead nodes leave
// it — with no restarts. Controller outages degrade gracefully: the
// watcher retries with a fixed pause and the client keeps its last
// list, which mirrors the controller's own partition stance (stale
// endpoints beat no endpoints).
//
// WatchEndpoints returns only when ctx is cancelled.
func WatchEndpoints(ctx context.Context, controller string, hc *http.Client, apply func(version uint64, endpoints []string)) {
	if hc == nil {
		hc = &http.Client{}
	}
	var since uint64
	for ctx.Err() == nil {
		v, eps, err := fetchEndpoints(ctx, controller, hc, since)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			sleepCtx(ctx, time.Second)
			continue
		}
		// A version that went backwards is as meaningful as one that
		// advanced: a restarted (or replaced) controller starts its
		// endpoint versioning from scratch, and treating its lower
		// numbers as "nothing new" would pin every watcher to the dead
		// controller's final list forever. Resync to the new numbering
		// and apply the current view.
		if v != since {
			since = v
			apply(v, eps)
		}
	}
}

// fetchEndpoints performs one (long-polled when since > 0) endpoint
// list fetch.
func fetchEndpoints(ctx context.Context, controller string, hc *http.Client, since uint64) (uint64, []string, error) {
	url := controller + "/v1/endpoints"
	if since > 0 {
		url = fmt.Sprintf("%s?wait=%d", url, since)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return 0, nil, fmt.Errorf("fleet: /v1/endpoints: %s", resp.Status)
	}
	var er EndpointsResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&er); err != nil {
		return 0, nil, err
	}
	return er.Version, er.Endpoints, nil
}
