package fleet

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is the deterministic time source every controller test
// injects: the controller performs no waits of its own, so Now is
// all it needs.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// testConfig is the shared controller shape: 64 logical shards, one
// stream per 1000 words/s of capacity, 1 s heartbeats (suspect at
// 3 s, dead at 10 s).
func testConfig(clk *fakeClock) Config {
	return Config{
		LogicalShards:     64,
		StreamWords:       1000,
		HeartbeatInterval: time.Second,
		Clock:             clk.Now,
	}
}

func mustRegister(t *testing.T, c *Controller, id, url string, capacity uint64) RegisterResult {
	t.Helper()
	res, err := c.Register(NodeInfo{ID: id, URL: url, CapacityWords: capacity})
	if err != nil {
		t.Fatalf("register %s: %v", id, err)
	}
	return res
}

func assertInvariants(t *testing.T, c *Controller) {
	t.Helper()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func nodeByID(t *testing.T, st Status, id string) NodeStatus {
	t.Helper()
	for _, n := range st.Nodes {
		if n.ID == id {
			return n
		}
	}
	t.Fatalf("node %s not in status", id)
	return NodeStatus{}
}

func healthyBeat(shards int) HeartbeatReport {
	return HeartbeatReport{Shards: shards, Healthy: shards}
}

// TestControllerStateMachine walks one node through
// alive → suspect → dead on missed heartbeats, then resurrects it,
// checking the endpoint list and range bookkeeping at every
// transition.
func TestControllerStateMachine(t *testing.T) {
	clk := newFakeClock()
	c, err := NewController(testConfig(clk))
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, c, "a", "http://a", 64_000)
	mustRegister(t, c, "b", "http://b", 64_000)
	assertInvariants(t, c)
	v0, eps := c.Endpoints()
	if len(eps) != 2 {
		t.Fatalf("endpoints = %v, want both nodes", eps)
	}

	// b keeps beating; a goes silent.
	for i := 0; i < 12; i++ {
		clk.Advance(time.Second)
		if err := c.Heartbeat("b", healthyBeat(8)); err != nil {
			t.Fatal(err)
		}
		assertInvariants(t, c)
	}
	st := c.Status()
	if got := nodeByID(t, st, "a").State; got != "dead" {
		t.Fatalf("silent node state = %s, want dead", got)
	}
	if got := nodeByID(t, st, "a").AssignedWidth; got != 0 {
		t.Fatalf("dead node still holds %d streams", got)
	}
	v1, eps := c.Endpoints()
	if len(eps) != 1 || eps[0] != "http://b" {
		t.Fatalf("endpoints after death = %v, want only b", eps)
	}
	if v1 <= v0 {
		t.Fatalf("version did not advance: %d -> %d", v0, v1)
	}

	// The suspect window fires before the dead window.
	clk2 := newFakeClock()
	c2, _ := NewController(testConfig(clk2))
	mustRegister(t, c2, "a", "http://a", 64_000)
	clk2.Advance(3 * time.Second)
	mustRegister(t, c2, "b", "http://b", 64_000) // triggers a sweep; also ends the all-silent freeze
	if got := nodeByID(t, c2.Status(), "a").State; got != "suspect" {
		t.Fatalf("after SuspectAfter: state = %s, want suspect", got)
	}
	// A heartbeat readmits a suspect instantly.
	if err := c2.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatal(err)
	}
	if got := nodeByID(t, c2.Status(), "a").State; got != "alive" {
		t.Fatalf("after heartbeat: state = %s, want alive", got)
	}

	// Resurrection: a dead node that beats again rejoins with no
	// ranges (they were re-placed) and earns new ones as capacity
	// allows.
	if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatalf("dead node heartbeat: %v", err)
	}
	assertInvariants(t, c)
	if got := nodeByID(t, c.Status(), "a").State; got != "alive" {
		t.Fatalf("resurrected state = %s, want alive", got)
	}
	if _, eps := c.Endpoints(); len(eps) != 2 {
		t.Fatalf("endpoints after resurrection = %v", eps)
	}
}

// TestControllerUnknownHeartbeat: heartbeats from unregistered nodes
// are the agent's re-register signal.
func TestControllerUnknownHeartbeat(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	if err := c.Heartbeat("ghost", healthyBeat(8)); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("heartbeat from unknown node: %v, want ErrUnknownNode", err)
	}
}

// TestControllerPartitionFreeze: when every serving node goes silent
// at once, the controller assumes it is the one partitioned and
// freezes — no demotions, endpoints keep their last-known value —
// until a heartbeat gets through.
func TestControllerPartitionFreeze(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 64_000)
	mustRegister(t, c, "b", "http://b", 64_000)
	mustRegister(t, c, "c", "http://c", 64_000)
	_, eps0 := c.Endpoints()

	// Total silence, far past DeadAfter.
	clk.Advance(time.Minute)
	c.Advance()
	st := c.Status()
	if !st.Partitioned {
		t.Fatal("all-silent fleet should trip the partition heuristic")
	}
	for _, n := range st.Nodes {
		if n.State != "alive" {
			t.Fatalf("node %s demoted to %s during controller partition", n.ID, n.State)
		}
	}
	if _, eps := c.Endpoints(); len(eps) != len(eps0) {
		t.Fatalf("endpoints changed during partition: %v -> %v", eps0, eps)
	}

	// One heartbeat ends the freeze; the still-silent nodes are then
	// judged on their real ages and die.
	if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatal(err)
	}
	st = c.Status()
	if st.Partitioned {
		t.Fatal("partition flag should clear once a heartbeat arrives")
	}
	if got := nodeByID(t, st, "b").State; got != "dead" {
		t.Fatalf("node b after freeze lifted: %s, want dead", got)
	}
	if _, eps := c.Endpoints(); len(eps) != 1 || eps[0] != "http://a" {
		t.Fatalf("endpoints after freeze lifted: %v", eps)
	}
	assertInvariants(t, c)
}

// TestControllerDegradedHeartbeatSheds: a heartbeat reporting pool
// degradation derates the node's budget and the excess ranges move
// off it — the over-commit invariant holds *through* the
// degradation, not just at placement.
func TestControllerDegradedHeartbeatSheds(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	// a can host the whole keyspace; b is the spill target.
	mustRegister(t, c, "a", "http://a", 64_000)
	mustRegister(t, c, "b", "http://b", 32_000)
	if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, c)
	full := nodeByID(t, c.Status(), "a").AssignedWidth

	// Half of a's shards retire: its budget halves, the excess must
	// land on b or go pending — never stay over-committed on a.
	if err := c.Heartbeat("a", HeartbeatReport{Shards: 8, Healthy: 4, Retired: 4}); err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, c)
	st := c.Status()
	na, nb := nodeByID(t, st, "a"), nodeByID(t, st, "b")
	if na.AssignedWidth > na.BudgetStreams {
		t.Fatalf("degraded node over-committed: %d > %d", na.AssignedWidth, na.BudgetStreams)
	}
	if na.AssignedWidth >= full {
		t.Fatalf("degradation did not shed: %d of %d streams still on a", na.AssignedWidth, full)
	}
	if nb.AssignedWidth == 0 && st.PendingWidth == 0 {
		t.Fatal("shed streams vanished: neither re-placed nor pending")
	}

	// Recovery: full health restores the budget and the pending (or
	// re-balanced) streams may flow back.
	if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, c)
	if st := c.Status(); st.PendingWidth != 0 {
		t.Fatalf("pending streams after full recovery: %d", st.PendingWidth)
	}
}

// TestControllerDrainHandoff: BeginDrain freezes the ranges in a
// ticket and pulls the node from rotation; a successor registering
// with the token inherits them exactly; the drained node ends
// drained.
func TestControllerDrainHandoff(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 64_000)
	mustRegister(t, c, "b", "http://b", 64_000)
	if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatal(err)
	}
	before := nodeByID(t, c.Status(), "a")
	if before.AssignedWidth == 0 {
		t.Fatal("test needs a to hold streams")
	}

	tk, err := c.BeginDrain("a")
	if err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, c)
	if width(tk.Ranges) != before.AssignedWidth {
		t.Fatalf("ticket holds %d streams, node held %d", width(tk.Ranges), before.AssignedWidth)
	}
	if _, eps := c.Endpoints(); len(eps) != 1 || eps[0] != "http://b" {
		t.Fatalf("draining node still in endpoints: %v", eps)
	}
	if got := nodeByID(t, c.Status(), "a").State; got != "draining" {
		t.Fatalf("state = %s, want draining", got)
	}
	// No double drain.
	if _, err := c.BeginDrain("a"); err == nil {
		t.Fatal("second BeginDrain should fail")
	}

	// The successor claims with the token and inherits every frozen
	// range — same logical shards, no aliasing, no loss.
	res, err := c.Register(NodeInfo{ID: "a2", URL: "http://a2", CapacityWords: 64_000, ResumeToken: tk.Token})
	if err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, c)
	if res.Warning != "" {
		t.Fatalf("unexpected warning: %s", res.Warning)
	}
	if width(res.Claimed) != width(tk.Ranges) {
		t.Fatalf("claimed %d streams, ticket held %d", width(res.Claimed), width(tk.Ranges))
	}
	st := c.Status()
	if got := nodeByID(t, st, "a").State; got != "drained" {
		t.Fatalf("drained node state = %s", got)
	}
	if len(st.Tickets) != 0 {
		t.Fatalf("ticket not consumed: %+v", st.Tickets)
	}
	// A token cannot be claimed twice.
	res, err = c.Register(NodeInfo{ID: "a3", URL: "http://a3", CapacityWords: 64_000, ResumeToken: tk.Token})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warning == "" || len(res.Claimed) != 0 {
		t.Fatalf("stale token should warn and claim nothing: %+v", res)
	}
}

// TestControllerDrainedNodeStaysRetired: after the hand-off, the
// drained node must stay out of rotation no matter what its leftover
// agent does. Its heartbeats are acknowledged but do not resurrect it
// (a 404 would read as the re-register cue), and re-registering its
// ID without a live drain ticket is refused outright — serving that
// pool again would fork every stream the successor continues.
func TestControllerDrainedNodeStaysRetired(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 64_000)
	mustRegister(t, c, "b", "http://b", 64_000)
	if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatal(err)
	}
	tk, err := c.BeginDrain("a")
	if err != nil {
		t.Fatal(err)
	}

	// Mid-drain, the node cannot re-register without the ticket.
	if _, err := c.Register(NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000}); err == nil {
		t.Fatal("tokenless re-register of a draining node should fail")
	}

	if _, err := c.Register(NodeInfo{ID: "a2", URL: "http://a2", CapacityWords: 64_000, ResumeToken: tk.Token}); err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, c)

	// The drained node's agent is still running: its beats must be
	// acknowledged (not 404ed into a re-register) and change nothing.
	for i := 0; i < 3; i++ {
		clk.Advance(c.Config().HeartbeatInterval)
		if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
			t.Fatalf("drained heartbeat %d: %v", i, err)
		}
		// Keep the real fleet beating so the partition-freeze
		// heuristic cannot mask a resurrection.
		if err := c.Heartbeat("a2", healthyBeat(8)); err != nil {
			t.Fatal(err)
		}
		if err := c.Heartbeat("b", healthyBeat(8)); err != nil {
			t.Fatal(err)
		}
	}
	if got := nodeByID(t, c.Status(), "a").State; got != "drained" {
		t.Fatalf("state = %s after heartbeats, want drained", got)
	}
	if _, eps := c.Endpoints(); len(eps) != 2 || eps[0] != "http://a2" || eps[1] != "http://b" {
		t.Fatalf("drained node crept back into endpoints: %v", eps)
	}

	// Without a live ticket (the successor consumed it), neither a
	// tokenless nor a stale-token re-register may resurrect the ID.
	if _, err := c.Register(NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000}); err == nil {
		t.Fatal("tokenless re-register of a drained node should fail")
	}
	if _, err := c.Register(NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000, ResumeToken: tk.Token}); err == nil {
		t.Fatal("stale-token re-register of a drained node should fail")
	}
	assertInvariants(t, c)
}

// TestControllerDrainSameIDResume: the successor may be the drained
// node itself — same ID, restarted from its own drain blob with the
// ticket. It claims its frozen ranges back and serves, alive.
func TestControllerDrainSameIDResume(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 64_000)
	if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatal(err)
	}
	tk, err := c.BeginDrain("a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Register(NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000, ResumeToken: tk.Token})
	if err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, c)
	if width(res.Claimed) != width(tk.Ranges) {
		t.Fatalf("claimed %d streams, ticket held %d", width(res.Claimed), width(tk.Ranges))
	}
	if got := nodeByID(t, c.Status(), "a").State; got != "alive" {
		t.Fatalf("state = %s, want alive", got)
	}
	if _, eps := c.Endpoints(); len(eps) != 1 || eps[0] != "http://a" {
		t.Fatalf("resumed node missing from endpoints: %v", eps)
	}
}

// TestControllerDrainClaimCapacityBound: a successor too small for
// the drained load inherits only what its budget covers; the rest
// goes pending — a resume is not an excuse to over-commit.
func TestControllerDrainClaimCapacityBound(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 64_000)
	if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatal(err)
	}
	tk, err := c.BeginDrain("a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Register(NodeInfo{ID: "small", URL: "http://small", CapacityWords: 16_000, ResumeToken: tk.Token})
	if err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, c)
	if got := width(res.Claimed); got != 16 {
		t.Fatalf("claimed %d streams, budget allows 16", got)
	}
	if st := c.Status(); st.PendingWidth != 64-16 {
		t.Fatalf("pending = %d, want the unclaimed 48", st.PendingWidth)
	}
}

// TestControllerAbortDrain: an aborted drain puts the node back in
// rotation with its ranges intact.
func TestControllerAbortDrain(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 64_000)
	if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatal(err)
	}
	before := nodeByID(t, c.Status(), "a").AssignedWidth
	tk, err := c.BeginDrain("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AbortDrain(tk.Token); err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, c)
	after := nodeByID(t, c.Status(), "a")
	if after.State != "alive" || after.AssignedWidth != before {
		t.Fatalf("after abort: state=%s width=%d, want alive/%d", after.State, after.AssignedWidth, before)
	}
	if _, eps := c.Endpoints(); len(eps) != 1 {
		t.Fatalf("endpoints after abort: %v", eps)
	}
	if err := c.AbortDrain(tk.Token); err == nil {
		t.Fatal("double abort should fail")
	}
}

// TestControllerDeregister: a deregistering node leaves the endpoint
// list at once and its streams land elsewhere.
func TestControllerDeregister(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 64_000)
	mustRegister(t, c, "b", "http://b", 64_000)
	if err := c.Deregister("a"); err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, c)
	if _, eps := c.Endpoints(); len(eps) != 1 || eps[0] != "http://b" {
		t.Fatalf("endpoints after deregister: %v", eps)
	}
	st := c.Status()
	if nodeByID(t, st, "b").AssignedWidth+st.PendingWidth != 64 {
		t.Fatalf("streams lost on deregister: %+v", st)
	}
	if err := c.Deregister("a"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("double deregister: %v", err)
	}
}

// TestControllerWaitEndpoints: the long-poll returns immediately on
// a stale version and wakes on the next change.
func TestControllerWaitEndpoints(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 64_000)
	v, eps := c.WaitEndpoints(context.Background(), 0)
	if len(eps) != 1 {
		t.Fatalf("immediate wait: %v", eps)
	}

	got := make(chan []string, 1)
	go func() {
		_, eps := c.WaitEndpoints(context.Background(), v)
		got <- eps
	}()
	mustRegister(t, c, "b", "http://b", 64_000)
	select {
	case eps := <-got:
		if len(eps) != 2 {
			t.Fatalf("watcher saw %v, want both nodes", eps)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never woke")
	}

	// Cancellation returns the current list instead of hanging.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v2, eps := c.WaitEndpoints(ctx, 1<<60)
	if v2 == 0 || len(eps) != 2 {
		t.Fatalf("cancelled wait: v=%d eps=%v", v2, eps)
	}
}

// TestControllerRegisterValidation: the three required fields are
// enforced with named errors.
func TestControllerRegisterValidation(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	for _, info := range []NodeInfo{
		{URL: "http://a", CapacityWords: 1000},
		{ID: "a", CapacityWords: 1000},
		{ID: "a", URL: "http://a"},
	} {
		if _, err := c.Register(info); err == nil {
			t.Fatalf("register %+v should fail", info)
		}
	}
	if _, err := NewController(Config{}); err == nil || !strings.Contains(err.Error(), "Clock") {
		t.Fatalf("nil clock must be rejected, got %v", err)
	}
}

// TestControllerDrainedRejectsForeignTicket: a draining/drained ID
// may only re-register by presenting its OWN drain ticket. Another
// node's live token proves nothing about this node's streams —
// accepting it would readmit the retired ID and hand it frozen
// ranges whose stream state it does not hold.
func TestControllerDrainedRejectsForeignTicket(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 64_000)
	mustRegister(t, c, "b", "http://b", 64_000)

	tkA, err := c.BeginDrain("a")
	if err != nil {
		t.Fatal(err)
	}
	tkB, err := c.BeginDrain("b")
	if err != nil {
		t.Fatal(err)
	}

	// Draining "a" presenting b's live ticket must be refused.
	if _, err := c.Register(NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000, ResumeToken: tkB.Token}); err == nil {
		t.Fatal("draining node re-registered with another node's ticket")
	}
	// b's ticket must still be open and claimable by a real successor.
	if st := c.Status(); len(st.Tickets) != 2 {
		t.Fatalf("tickets after refused claim: %+v, want both still open", st.Tickets)
	}
	assertInvariants(t, c)

	// Same refusal once the predecessor is fully drained: a successor
	// claims a's ticket, then "a" itself shows up waving b's token.
	if _, err := c.Register(NodeInfo{ID: "a2", URL: "http://a2", CapacityWords: 64_000, ResumeToken: tkA.Token}); err != nil {
		t.Fatal(err)
	}
	if got := nodeByID(t, c.Status(), "a").State; got != "drained" {
		t.Fatalf("predecessor state %q, want drained", got)
	}
	if _, err := c.Register(NodeInfo{ID: "a", URL: "http://a", CapacityWords: 64_000, ResumeToken: tkB.Token}); err == nil {
		t.Fatal("drained node re-registered with another node's ticket")
	}
	// Its own ticket is the legitimate path (resumed-from-own-blob).
	if _, err := c.Register(NodeInfo{ID: "b", URL: "http://b", CapacityWords: 64_000, ResumeToken: tkB.Token}); err != nil {
		t.Fatalf("own-ticket re-registration refused: %v", err)
	}
	assertInvariants(t, c)
}

// TestControllerHeartbeatRejectsImpossibleHealth: reports that cannot
// describe a real pool are rejected before they reach the budget
// math — a negative Healthy converts to a huge uint64 and
// Healthy > Shards derates capacity ABOVE the declared value, both
// silently breaking the never-over-commit invariant.
func TestControllerHeartbeatRejectsImpossibleHealth(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 64_000)

	for _, r := range []HeartbeatReport{
		{Shards: 8, Healthy: -1},
		{Shards: -8, Healthy: -8},
		{Shards: 8, Healthy: 9},
	} {
		if err := c.Heartbeat("a", r); err == nil {
			t.Fatalf("impossible report %+v accepted", r)
		}
	}
	// Nothing was stored: the node still rates its full declared
	// capacity, not an inflated one.
	n := nodeByID(t, c.Status(), "a")
	if n.Healthy != 0 || n.Shards != 0 {
		t.Fatalf("rejected report leaked into state: %+v", n)
	}
	if n.DeratedWords > n.CapacityWords {
		t.Fatalf("derated %d exceeds declared %d", n.DeratedWords, n.CapacityWords)
	}
	// A sane report still lands.
	if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatal(err)
	}
	assertInvariants(t, c)
}

// TestControllerHeartbeatDrainingExcludesFromEndpoints: an alive node
// whose heartbeat reports a latched drain is a zombie that 503s every
// draw — it must leave the endpoint list until the latch clears.
func TestControllerHeartbeatDrainingExcludesFromEndpoints(t *testing.T) {
	clk := newFakeClock()
	c, _ := NewController(testConfig(clk))
	mustRegister(t, c, "a", "http://a", 64_000)
	mustRegister(t, c, "b", "http://b", 64_000)

	r := healthyBeat(8)
	r.Draining = true
	if err := c.Heartbeat("a", r); err != nil {
		t.Fatal(err)
	}
	if _, eps := c.Endpoints(); len(eps) != 1 || eps[0] != "http://b" {
		t.Fatalf("endpoints with zombie a: %v, want just b", eps)
	}
	if n := nodeByID(t, c.Status(), "a"); !n.Draining || n.State != "alive" {
		t.Fatalf("zombie not surfaced in status: %+v", n)
	}

	// The latch clearing (undrain succeeded) readmits it next beat.
	if err := c.Heartbeat("a", healthyBeat(8)); err != nil {
		t.Fatal(err)
	}
	if _, eps := c.Endpoints(); len(eps) != 2 {
		t.Fatalf("endpoints after latch cleared: %v, want both", eps)
	}
	assertInvariants(t, c)
}
