package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Defaults for Config fields left zero.
const (
	DefaultLogicalShards     = 64
	DefaultStreamWords       = 100_000 // words/s of demand charged per logical shard
	DefaultHeartbeatInterval = 2 * time.Second
)

// ErrUnknownNode is returned for heartbeats from nodes the controller
// has never seen (or has dropped): the agent's cue to re-register.
var ErrUnknownNode = errors.New("fleet: unknown node")

// Config parameterises a Controller. Clock is required — the
// controller performs no wall-clock reads of its own, which is what
// makes its failure-detection timelines deterministic and
// replayable; binaries inject time.Now, tests inject a fake.
type Config struct {
	// LogicalShards is the size of the logical shard keyspace the
	// controller places onto nodes (0 = DefaultLogicalShards).
	LogicalShards uint64
	// StreamWords is the demand, in words/second, one logical shard
	// charges against a node's capacity (0 = DefaultStreamWords).
	StreamWords uint64
	// HeartbeatInterval is the cadence the controller asks agents to
	// beat at (0 = DefaultHeartbeatInterval).
	HeartbeatInterval time.Duration
	// SuspectAfter is the silence that moves a node alive → suspect
	// (0 = 3 × HeartbeatInterval).
	SuspectAfter time.Duration
	// DeadAfter is the silence that moves a node suspect → dead and
	// re-places its shard ranges (0 = 10 × HeartbeatInterval).
	DeadAfter time.Duration
	// Clock is the time source for heartbeat ages. Required: the
	// controller refuses to default to the wall clock.
	Clock func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.Clock == nil {
		return c, errors.New("fleet: Config.Clock is required (inject time.Now from the binary, a fake clock from tests)")
	}
	if c.LogicalShards == 0 {
		c.LogicalShards = DefaultLogicalShards
	}
	if c.StreamWords == 0 {
		c.StreamWords = DefaultStreamWords
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatInterval
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * c.HeartbeatInterval
	}
	if c.DeadAfter < c.SuspectAfter {
		return c, fmt.Errorf("fleet: DeadAfter %v < SuspectAfter %v", c.DeadAfter, c.SuspectAfter)
	}
	return c, nil
}

// node is the controller's book on one randd process.
type node struct {
	id       string
	url      string    // guarded by Controller.mu
	state    NodeState // guarded by Controller.mu
	lastBeat time.Time // guarded by Controller.mu

	capacity uint64  // declared words/s; guarded by Controller.mu
	healthy  int     // healthy shards from the last heartbeat; guarded by Controller.mu
	shards   int     // pool shards from the last heartbeat (0 = not reported yet); guarded by Controller.mu
	draining bool    // node-reported drain latch from the last heartbeat; guarded by Controller.mu
	assigned []Range // normalized logical shard ranges; guarded by Controller.mu
}

// ticket freezes a draining node's ranges until a successor claims
// them by registering with the token.
type ticket struct {
	token  string
	nodeID string
	ranges []Range // guarded by Controller.mu
}

// Controller is the deterministic control-plane core: registration,
// heartbeat failure detection, capacity-aware placement and
// stream-preserving drain bookkeeping. All methods are safe for
// concurrent use. It never reads the wall clock, spawns no
// goroutines and performs no I/O; the HTTP layer (Server) and the
// test suites drive it.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	nodes    map[string]*node   // guarded by mu
	pending  []Range            // unplaced logical shard ranges; guarded by mu
	tickets  map[string]*ticket // open drain tickets by token; guarded by mu
	drainSeq uint64             // drain ticket counter; guarded by mu

	version     uint64        // endpoint list version; guarded by mu
	endpoints   []string      // cached endpoint list; guarded by mu
	wake        chan struct{} // closed+replaced on every version bump; guarded by mu
	partitioned bool          // controller-side partition heuristic active; guarded by mu
}

// NewController builds a Controller over cfg.
func NewController(cfg Config) (*Controller, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg:     cfg,
		nodes:   make(map[string]*node),
		pending: []Range{{0, cfg.LogicalShards}},
		tickets: make(map[string]*ticket),
		version: 1, // so a watcher at since=0 sees the initial (empty) list
		wake:    make(chan struct{}),
	}, nil
}

// Config returns the controller's effective configuration (defaults
// applied).
func (c *Controller) Config() Config { return c.cfg }

// RegisterResult is what a successful registration returns to the
// agent.
type RegisterResult struct {
	// HeartbeatInterval is the cadence the controller expects.
	HeartbeatInterval time.Duration `json:"heartbeat_interval"`
	// Claimed is the set of ranges inherited through a resume token.
	Claimed []Range `json:"claimed,omitempty"`
	// Warning carries non-fatal registration notes (e.g. an unknown
	// resume token: the node is registered, but inherited nothing).
	Warning string `json:"warning,omitempty"`
}

// Register admits (or refreshes) a node. Re-registering an existing
// ID updates URL and capacity in place and keeps its assigned ranges
// — the restart-with-state-file case. A ResumeToken claims a drain
// ticket: the node inherits the drained node's frozen ranges up to
// its own budget (the rest goes pending — capacity is never
// exceeded, not even for a resume). The one refusal: a draining or
// drained ID cannot re-register without a live drain ticket — its
// streams belong to a successor, and serving them again would fork
// the streams.
func (c *Controller) Register(info NodeInfo) (RegisterResult, error) {
	if info.ID == "" {
		return RegisterResult{}, errors.New("fleet: register: empty node id")
	}
	if info.URL == "" {
		return RegisterResult{}, errors.New("fleet: register: empty node url")
	}
	if info.CapacityWords == 0 {
		return RegisterResult{}, fmt.Errorf("fleet: register %s: zero declared capacity", info.ID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	c.advanceLocked(now)
	res := RegisterResult{HeartbeatInterval: c.cfg.HeartbeatInterval}
	var t *ticket
	if info.ResumeToken != "" {
		t = c.tickets[info.ResumeToken] // nil when unknown/already claimed
	}
	n, ok := c.nodes[info.ID]
	if !ok {
		n = &node{id: info.ID}
		c.nodes[info.ID] = n
	} else if (n.state == StateDraining || n.state == StateDrained) && (t == nil || t.nodeID != info.ID) {
		// This ID's streams are moving (or moved) to a successor. A
		// re-registration without a live drain ticket is almost
		// certainly the drained process restarted against its
		// pre-drain state file — letting it serve would fork every
		// stream the successor continues. Only the node's OWN ticket
		// readmits it (the resumed-from-its-own-blob case): another
		// node's live token proves nothing about THIS node's streams,
		// and accepting it would hand over ranges whose state this
		// node does not hold.
		return RegisterResult{}, fmt.Errorf(
			"fleet: register %s: node is %s; claim its streams with its own drain's resume token, or boot fresh under a new node ID",
			info.ID, n.state)
	}
	n.url = info.URL
	n.capacity = info.CapacityWords
	n.state = StateAlive
	n.draining = false // registration declares intent to serve
	n.lastBeat = now
	n.healthy, n.shards = 0, 0 // unknown until the first heartbeat; budget uses full capacity
	if info.ResumeToken != "" {
		if t == nil {
			res.Warning = fmt.Sprintf("resume token %q matches no open drain ticket; registered fresh", info.ResumeToken)
		} else {
			res.Claimed = c.claimTicketLocked(t, n)
		}
	}
	// A re-registration may have lowered the declared capacity below
	// what the node already holds; shed back inside the new budget.
	c.shedLocked(n)
	c.placeLocked()
	c.refreshEndpointsLocked()
	return res, nil
}

// claimTicketLocked transfers a drain ticket's frozen ranges to the
// claimant, up to the claimant's budget; any remainder goes pending.
// The drained node (when still registered) moves to StateDrained.
func (c *Controller) claimTicketLocked(t *ticket, n *node) []Range {
	spare := c.spareLocked(n)
	var claimed []Range
	for _, r := range t.ranges {
		if spare == 0 {
			c.pending = append(c.pending, r)
			continue
		}
		take := r.Width()
		if take > spare {
			c.pending = append(c.pending, Range{r.Lo + spare, r.Hi})
			take = spare
		}
		claimed = append(claimed, Range{r.Lo, r.Lo + take})
		spare -= take
	}
	n.assigned = normalize(append(n.assigned, claimed...))
	c.pending = normalize(c.pending)
	// When the claimant IS the drained node (same ID, resumed from its
	// own blob), it stays alive with its ranges back — only a distinct
	// predecessor is retired.
	if old, ok := c.nodes[t.nodeID]; ok && old != n && old.state == StateDraining {
		old.state = StateDrained
	}
	delete(c.tickets, t.token)
	return claimed
}

// Heartbeat ingests a node's periodic health report. Unknown nodes
// get ErrUnknownNode — the agent's cue to re-register. Reports that
// cannot describe a real pool (negative counts, more healthy shards
// than shards — curl is a documented client, so malformed input WILL
// arrive) are rejected before anything is stored: folding one into
// deratedLocked would inflate a node's budget past its declared
// capacity, silently breaking the never-over-commit invariant.
func (c *Controller) Heartbeat(id string, r HeartbeatReport) error {
	if r.Healthy < 0 || r.Shards < 0 || r.Healthy > r.Shards {
		return fmt.Errorf("fleet: heartbeat %s: impossible health report: healthy=%d shards=%d", id, r.Healthy, r.Shards)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	n, ok := c.nodes[id]
	if !ok {
		return ErrUnknownNode
	}
	if n.state == StateDrained {
		// The hand-off completed: this node's streams live on a
		// successor, and serving one more word here would fork them.
		// Its agent may well still be beating — acknowledge the beat
		// (an ErrUnknownNode here would read as the re-register cue
		// and resurrect a node that must stay retired) but keep it
		// out of placement and endpoints.
		n.lastBeat = now
		return nil
	}
	n.lastBeat = now
	if n.state == StateSuspect || n.state == StateDead {
		// A dead node beating again is a resurrection: it kept its
		// pool (we just could not hear it), so readmit it. Its ranges
		// were re-placed at death; it simply starts from none.
		n.state = StateAlive
	}
	if r.CapacityWords > 0 {
		n.capacity = r.CapacityWords
	}
	if r.Shards > 0 {
		n.healthy, n.shards = r.Healthy, r.Shards
	}
	n.draining = r.Draining
	c.advanceLocked(now)
	c.shedLocked(n)
	c.placeLocked()
	c.refreshEndpointsLocked()
	return nil
}

// Deregister removes a node outright: endpoints drop it immediately
// and its ranges are re-placed on the survivors. This is randd's
// leave-before-drain path — the controller steers clients away
// *before* the node stops serving. An open drain ticket for the node
// survives deregistration: the snapshot is already taken, a
// replacement may still claim it.
func (c *Controller) Deregister(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok {
		return ErrUnknownNode
	}
	c.pending = normalize(append(c.pending, n.assigned...))
	delete(c.nodes, id)
	c.advanceLocked(c.cfg.Clock())
	c.placeLocked()
	c.refreshEndpointsLocked()
	return nil
}

// BeginDrain starts a stream-preserving drain: the node leaves the
// endpoint list, its ranges freeze into a drain ticket, and the
// returned ticket's token is what a successor presents at
// registration to inherit them. The caller is responsible for the
// data plane (fetch the node's snapshot, boot the successor from
// it); AbortDrain undoes everything if that fails.
func (c *Controller) BeginDrain(id string) (TicketStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok {
		return TicketStatus{}, ErrUnknownNode
	}
	if n.state != StateAlive && n.state != StateSuspect {
		return TicketStatus{}, fmt.Errorf("fleet: drain %s: node is %s", id, n.state)
	}
	c.drainSeq++
	t := &ticket{
		token:  fmt.Sprintf("drain-%s-%d", id, c.drainSeq),
		nodeID: id,
		ranges: n.assigned,
	}
	n.assigned = nil
	n.state = StateDraining
	c.tickets[t.token] = t
	c.refreshEndpointsLocked()
	return TicketStatus{Token: t.token, NodeID: id, Ranges: t.ranges}, nil
}

// AbortDrain cancels an unclaimed drain ticket: the ranges return to
// the node and it rejoins the endpoint list.
func (c *Controller) AbortDrain(token string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tickets[token]
	if !ok {
		return fmt.Errorf("fleet: abort drain: no open ticket %q", token)
	}
	delete(c.tickets, token)
	if n, ok := c.nodes[t.nodeID]; ok && n.state == StateDraining {
		n.assigned = normalize(append(n.assigned, t.ranges...))
		n.state = StateAlive
		// The node may have degraded while draining (heartbeats keep
		// flowing); shed back inside whatever its budget is now.
		c.shedLocked(n)
	} else {
		c.pending = normalize(append(c.pending, t.ranges...))
	}
	c.placeLocked()
	c.refreshEndpointsLocked()
	return nil
}

// NodeURL returns the registered base URL for a node — the HTTP
// layer's lookup when orchestrating a drain.
func (c *Controller) NodeURL(id string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	if !ok {
		return "", ErrUnknownNode
	}
	return n.url, nil
}

// Advance runs one failure-detection sweep at the injected clock's
// current instant. The HTTP layer calls this on a timer; tests call
// it after moving their fake clock.
func (c *Controller) Advance() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked(c.cfg.Clock())
	c.placeLocked()
	c.refreshEndpointsLocked()
}

// advanceLocked applies the missed-heartbeat state machine:
// alive → suspect after SuspectAfter of silence, suspect → dead
// after DeadAfter; death re-places the node's ranges. One guardrail:
// when *every* registered serving node has gone silent at once, the
// far more likely failure is the controller's own network partition,
// not a simultaneous whole-fleet death — so the sweep freezes
// (endpoints keep their last-known value, nobody is demoted) until
// any heartbeat gets through again. Mass-evicting the whole endpoint
// list on a controller-side partition would turn a control-plane
// blip into a data-plane outage.
func (c *Controller) advanceLocked(now time.Time) {
	serving, silent := 0, 0
	for _, n := range c.nodes {
		switch n.state {
		case StateAlive, StateSuspect:
			serving++
			if now.Sub(n.lastBeat) >= c.cfg.SuspectAfter {
				silent++
			}
		}
	}
	c.partitioned = serving > 0 && silent == serving
	if c.partitioned {
		return
	}
	for _, n := range c.nodes {
		age := now.Sub(n.lastBeat)
		switch n.state {
		case StateAlive:
			if age >= c.cfg.SuspectAfter {
				n.state = StateSuspect
			}
		case StateSuspect:
			if age >= c.cfg.DeadAfter {
				n.state = StateDead
				c.pending = normalize(append(c.pending, n.assigned...))
				n.assigned = nil
			}
		}
	}
}

// Endpoints returns the current endpoint list and its version. The
// list contains exactly the alive nodes' URLs, sorted by node ID;
// suspect, dead, draining and drained nodes are excluded so clients
// steer away the moment the controller doubts a node.
func (c *Controller) Endpoints() (uint64, []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked(c.cfg.Clock())
	c.refreshEndpointsLocked()
	eps := make([]string, len(c.endpoints))
	copy(eps, c.endpoints)
	return c.version, eps
}

// WaitEndpoints blocks until the endpoint list's version exceeds
// since (long-poll), then returns it; ctx cancellation returns the
// current list immediately.
func (c *Controller) WaitEndpoints(ctx context.Context, since uint64) (uint64, []string) {
	for {
		c.mu.Lock()
		c.advanceLocked(c.cfg.Clock())
		c.refreshEndpointsLocked()
		if c.version > since || ctx.Err() != nil {
			v := c.version
			eps := make([]string, len(c.endpoints))
			copy(eps, c.endpoints)
			c.mu.Unlock()
			return v, eps
		}
		ch := c.wake
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
		}
	}
}

// refreshEndpointsLocked recomputes the alive-node endpoint list and
// bumps the version when it changed, waking long-poll watchers. An
// alive node whose own heartbeat reports a latched drain is excluded:
// it is a drained zombie (its drain's rollback never reached it) that
// 503s every draw, and routing clients at it until an operator clears
// the latch would waste every one of those requests. The exclusion is
// heartbeat-driven, so it reverses itself the beat after an undrain.
func (c *Controller) refreshEndpointsLocked() {
	ids := make([]string, 0, len(c.nodes))
	for id, n := range c.nodes {
		if n.state == StateAlive && !n.draining {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	eps := make([]string, len(ids))
	for i, id := range ids {
		eps[i] = c.nodes[id].url
	}
	if slicesEqual(eps, c.endpoints) {
		return
	}
	c.endpoints = eps
	c.version++
	close(c.wake)
	c.wake = make(chan struct{})
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Status snapshots the whole fleet for /v1/fleet and randctl.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked(c.cfg.Clock())
	c.refreshEndpointsLocked()
	st := Status{
		LogicalShards:    c.cfg.LogicalShards,
		StreamWords:      c.cfg.StreamWords,
		EndpointsVersion: c.version,
		Endpoints:        append([]string(nil), c.endpoints...),
		Pending:          append([]Range(nil), c.pending...),
		PendingWidth:     width(c.pending),
		Partitioned:      c.partitioned,
	}
	ids := make([]string, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := c.nodes[id]
		st.Nodes = append(st.Nodes, NodeStatus{
			ID:            n.id,
			URL:           n.url,
			State:         n.state.String(),
			CapacityWords: n.capacity,
			DeratedWords:  c.deratedLocked(n),
			BudgetStreams: c.budgetLocked(n),
			Assigned:      append([]Range(nil), n.assigned...),
			AssignedWidth: width(n.assigned),
			Healthy:       n.healthy,
			Shards:        n.shards,
			Draining:      n.draining,
			LastBeat:      n.lastBeat,
		})
	}
	tokens := make([]string, 0, len(c.tickets))
	for tok := range c.tickets {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	for _, tok := range tokens {
		t := c.tickets[tok]
		st.Tickets = append(st.Tickets, TicketStatus{
			Token:  t.token,
			NodeID: t.nodeID,
			Ranges: append([]Range(nil), t.ranges...),
		})
	}
	return st
}

// CheckInvariants verifies the two safety properties the control
// plane promises: (1) the assigned, pending and drain-ticket ranges
// form an exact, alias-free partition of [0, LogicalShards) — no
// logical shard is ever served twice or lost; (2) no node holds more
// logical shards than its current derated budget covers — placement
// never over-commits declared capacity. Tests call this after every
// mutation; it returns the first violation.
func (c *Controller) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var all []Range
	all = append(all, c.pending...)
	for _, n := range c.nodes {
		all = append(all, n.assigned...)
		if w, b := width(n.assigned), c.budgetLocked(n); w > b {
			return fmt.Errorf("fleet: node %s over-committed: %d streams assigned, budget %d", n.id, w, b)
		}
	}
	for _, t := range c.tickets {
		all = append(all, t.ranges...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Lo < all[j].Lo })
	var total uint64
	for i, r := range all {
		if r.Hi <= r.Lo {
			return fmt.Errorf("fleet: empty or inverted range %v", r)
		}
		if i > 0 && r.Lo < all[i-1].Hi {
			return fmt.Errorf("fleet: aliased ranges %v and %v", all[i-1], r)
		}
		total += r.Width()
	}
	if total != c.cfg.LogicalShards {
		return fmt.Errorf("fleet: ranges cover %d of %d logical shards", total, c.cfg.LogicalShards)
	}
	return nil
}
