package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Wire types for the controller's HTTP API. Deliberately small and
// boring JSON: curl is a fully supported client.

// HeartbeatRequest is the POST /v1/heartbeat body.
type HeartbeatRequest struct {
	ID string `json:"id"`
	HeartbeatReport
}

// DeregisterRequest is the POST /v1/deregister body.
type DeregisterRequest struct {
	ID string `json:"id"`
}

// EndpointsResponse is the GET /v1/endpoints body — the versioned
// live endpoint list clients feed into SetEndpoints.
type EndpointsResponse struct {
	Version   uint64   `json:"version"`
	Endpoints []string `json:"endpoints"`
}

// Defaults for ServerOptions fields left zero.
const (
	DefaultDrainTimeout = 30 * time.Second
	DefaultWatchHold    = 30 * time.Second
)

// DefaultMaxDrainBlob caps the pool snapshot size the controller will
// relay during a drain — a corrupted node must not OOM the control
// plane. A blob over the cap FAILS the drain (and rolls it back)
// rather than being truncated: a silently cut blob would retire the
// node and boot the successor from corrupt state, an unrecoverable
// planned drain.
const DefaultMaxDrainBlob = 1 << 30

// ServerOptions tunes the controller's HTTP layer.
type ServerOptions struct {
	// NodeClient performs the controller's outbound calls to node
	// admin endpoints (the drain orchestration). nil: a dedicated
	// client.
	NodeClient *http.Client
	// DrainTimeout bounds the node-side snapshot call during POST
	// /v1/drain (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// WatchHold is the longest a GET /v1/endpoints long-poll is held
	// before answering with the unchanged list (0 = DefaultWatchHold).
	WatchHold time.Duration
	// MaxDrainBlob caps the node snapshot size relayed during POST
	// /v1/drain; a larger blob fails the drain instead of being
	// truncated (0 = DefaultMaxDrainBlob).
	MaxDrainBlob int64
}

// Server is the HTTP skin over a Controller:
//
//	POST /v1/register    NodeInfo JSON → RegisterResult
//	POST /v1/heartbeat   HeartbeatRequest JSON; 404 = re-register
//	POST /v1/deregister  DeregisterRequest JSON
//	GET  /v1/endpoints   versioned endpoint list; ?wait=V long-polls
//	                     until the version exceeds V (or WatchHold)
//	GET  /v1/fleet       full Status JSON for operators
//	POST /v1/drain?id=N  stream-preserving drain: freezes N's ranges,
//	                     fetches N's pool snapshot via its /drain
//	                     endpoint and relays the blob; the resume
//	                     token rides the X-Fleet-Resume-Token header
//
// The deterministic brain stays in Controller; this layer only
// decodes, relays and runs the failure-detection ticker (Run).
type Server struct {
	ctrl       *Controller
	mux        *http.ServeMux
	nodeClient *http.Client
	drainTO    time.Duration
	watchHold  time.Duration
	maxBlob    int64
}

// NewServer wraps ctrl in its HTTP API.
func NewServer(ctrl *Controller, opts ServerOptions) *Server {
	s := &Server{
		ctrl:       ctrl,
		nodeClient: opts.NodeClient,
		drainTO:    opts.DrainTimeout,
		watchHold:  opts.WatchHold,
		maxBlob:    opts.MaxDrainBlob,
	}
	if s.nodeClient == nil {
		s.nodeClient = &http.Client{}
	}
	if s.drainTO <= 0 {
		s.drainTO = DefaultDrainTimeout
	}
	if s.watchHold <= 0 {
		s.watchHold = DefaultWatchHold
	}
	if s.maxBlob <= 0 {
		s.maxBlob = DefaultMaxDrainBlob
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", s.serveRegister)
	mux.HandleFunc("/v1/heartbeat", s.serveHeartbeat)
	mux.HandleFunc("/v1/deregister", s.serveDeregister)
	mux.HandleFunc("/v1/endpoints", s.serveEndpoints)
	mux.HandleFunc("/v1/fleet", s.serveFleet)
	mux.HandleFunc("/v1/drain", s.serveDrain)
	s.mux = mux
	return s
}

// Handler returns the control plane's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Run drives the failure-detection sweep on the heartbeat cadence
// until ctx is cancelled: nodes must die on schedule even when no
// request happens to arrive and trigger a sweep.
func (s *Server) Run(ctx context.Context) {
	t := time.NewTicker(s.ctrl.Config().HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.ctrl.Advance()
		}
	}
}

func postJSON[T any](s *Server, w http.ResponseWriter, r *http.Request) (T, bool) {
	var req T
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return req, false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return req, false
	}
	return req, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) serveRegister(w http.ResponseWriter, r *http.Request) {
	info, ok := postJSON[NodeInfo](s, w, r)
	if !ok {
		return
	}
	res, err := s.ctrl.Register(info)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, res)
}

func (s *Server) serveHeartbeat(w http.ResponseWriter, r *http.Request) {
	req, ok := postJSON[HeartbeatRequest](s, w, r)
	if !ok {
		return
	}
	switch err := s.ctrl.Heartbeat(req.ID, req.HeartbeatReport); {
	case errors.Is(err, ErrUnknownNode):
		// 404 is the agent's re-register cue.
		http.Error(w, err.Error(), http.StatusNotFound)
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		writeJSON(w, struct {
			OK bool `json:"ok"`
		}{true})
	}
}

func (s *Server) serveDeregister(w http.ResponseWriter, r *http.Request) {
	req, ok := postJSON[DeregisterRequest](s, w, r)
	if !ok {
		return
	}
	switch err := s.ctrl.Deregister(req.ID); {
	case errors.Is(err, ErrUnknownNode):
		http.Error(w, err.Error(), http.StatusNotFound)
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		writeJSON(w, struct {
			OK bool `json:"ok"`
		}{true})
	}
}

// serveEndpoints answers the versioned endpoint list. With ?wait=V
// the request long-polls: it returns as soon as the version exceeds
// V, or after WatchHold with the unchanged list (the client simply
// re-polls — a quiet fleet costs one idle request per hold).
func (s *Server) serveEndpoints(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	var version uint64
	var eps []string
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		since, err := strconv.ParseUint(waitStr, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad wait=%q: %v", waitStr, err), http.StatusBadRequest)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.watchHold)
		defer cancel()
		version, eps = s.ctrl.WaitEndpoints(ctx, since)
	} else {
		version, eps = s.ctrl.Endpoints()
	}
	writeJSON(w, EndpointsResponse{Version: version, Endpoints: eps})
}

func (s *Server) serveFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.ctrl.Status())
}

// serveDrain orchestrates a stream-preserving drain end to end:
// freeze the node's ranges in a ticket (it leaves the endpoint list
// here), ask the node itself to drain in-flight draws and hand over
// its pool snapshot, and relay the blob to the caller with the
// resume token in X-Fleet-Resume-Token. The caller boots the
// replacement randd from the blob with that token; if the node-side
// snapshot or the relay fails, the drain is rolled back on BOTH sides
// (the node's latch via POST /undrain, the ticket via AbortDrain) and
// the node goes straight back into rotation — a failed drain must not
// strand capacity.
func (s *Server) serveDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing ?id=<node>", http.StatusBadRequest)
		return
	}
	url, err := s.ctrl.NodeURL(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	tk, err := s.ctrl.BeginDrain(id)
	if err != nil {
		if errors.Is(err, ErrUnknownNode) {
			http.Error(w, err.Error(), http.StatusNotFound)
		} else {
			http.Error(w, err.Error(), http.StatusConflict)
		}
		return
	}
	blob, err := s.drainNode(r.Context(), url)
	if err != nil {
		// The node may have latched its drain even though the relay
		// failed (e.g. the body read broke after the node committed).
		// Roll the latch back BEFORE re-admitting the node to the
		// endpoint list: the blob never reached a successor and the
		// ticket dies in AbortDrain, so un-draining cannot fork a
		// stream — but skipping it would leave a zombie that 503s
		// every draw while the controller keeps routing clients and
		// placement at it. If even the rollback fails, the node's own
		// heartbeats report the latch and keep it out of endpoints.
		if uerr := s.undrainNode(url); uerr != nil {
			err = fmt.Errorf("%w (and node-side undrain failed: %v; the node reports its drain latch via heartbeats until an operator clears it)", err, uerr)
		}
		if aerr := s.ctrl.AbortDrain(tk.Token); aerr != nil {
			err = fmt.Errorf("%w (and abort failed: %v)", err, aerr)
		}
		http.Error(w, fmt.Sprintf("drain %s: %v", id, err), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.Header().Set("X-Fleet-Resume-Token", tk.Token)
	w.Header().Set("X-Fleet-Drained-Node", id)
	w.Write(blob)
}

// drainNode performs the node-side half: POST {node}/drain, which
// stops new draws, waits out in-flight ones and answers with the
// pool state blob — the exact-resume checkpoint the successor boots
// from.
func (s *Server) drainNode(ctx context.Context, nodeURL string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, s.drainTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, nodeURL+"/drain", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.nodeClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("node /drain: %s: %s", resp.Status, msg)
	}
	if resp.ContentLength > s.maxBlob {
		return nil, fmt.Errorf("node /drain: snapshot is %d bytes, over the %d-byte relay cap", resp.ContentLength, s.maxBlob)
	}
	// Read one byte past the cap so an over-cap blob is a detected
	// failure (→ abort + undrain), never a silent truncation that
	// retires the node and boots the successor from corrupt state.
	blob, err := io.ReadAll(io.LimitReader(resp.Body, s.maxBlob+1))
	if err != nil {
		return nil, fmt.Errorf("node /drain body: %w", err)
	}
	if int64(len(blob)) > s.maxBlob {
		return nil, fmt.Errorf("node /drain: snapshot exceeds the %d-byte relay cap", s.maxBlob)
	}
	if len(blob) == 0 {
		return nil, errors.New("node /drain: empty snapshot")
	}
	return blob, nil
}

// undrainNode rolls a node's drain latch back after a failed relay:
// the snapshot never reached the caller and the drain ticket is being
// aborted, so the node must return to service instead of refusing
// every draw as a permanent zombie. Deliberately not bound to the
// (possibly already dead) drain request's context — the rollback must
// proceed even when the drain's caller hung up, which may be exactly
// why the relay failed.
func (s *Server) undrainNode(nodeURL string) error {
	ctx, cancel := context.WithTimeout(context.Background(), s.drainTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, nodeURL+"/undrain", nil)
	if err != nil {
		return err
	}
	resp, err := s.nodeClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("node /undrain: %s", resp.Status)
	}
	return nil
}
