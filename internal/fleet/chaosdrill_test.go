package fleet_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	hybridprng "repro"
	"repro/client"
	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/server"
)

// This file is the fleet's acceptance drill: a real controller, real
// randd-shaped nodes and a real SDK client on loopback, driven
// through a seeded node kill and a stream-preserving drain. It runs
// under the CI chaos job (-run Chaos -race -count=3), so everything
// here must be repeatable and race-clean.

// drillSeeds pins each node's pool seed so the continuity check can
// rebuild a reference stream for any node lineage.
var drillSeeds = []uint64{101, 102, 103}

func drillPoolOpts(seed uint64) []hybridprng.Option {
	return []hybridprng.Option{
		hybridprng.WithSeed(seed),
		hybridprng.WithShards(2),
		hybridprng.WithShardBuffer(64),
		hybridprng.WithHealthMonitoring(4),
	}
}

// recordedReq is one /bytes draw as the recorder saw it: the
// requested size and the bytes actually written.
type recordedReq struct {
	n    int
	body []byte
}

// recorder tees every successful /bytes response a node serves, in
// order. A single sequential drawer means each node's requests are
// serialised, so the recording is exactly the node's served stream.
type recorder struct {
	next http.Handler
	mu   sync.Mutex
	reqs []recordedReq
}

func (rc *recorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/bytes" {
		rc.next.ServeHTTP(w, r)
		return
	}
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	tee := &teeWriter{ResponseWriter: w}
	rc.next.ServeHTTP(tee, r)
	if tee.status == 0 || tee.status == http.StatusOK {
		rc.mu.Lock()
		rc.reqs = append(rc.reqs, recordedReq{n: n, body: tee.buf.Bytes()})
		rc.mu.Unlock()
	}
}

func (rc *recorder) recorded() []recordedReq {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append([]recordedReq(nil), rc.reqs...)
}

type teeWriter struct {
	http.ResponseWriter
	buf    bytes.Buffer
	status int
}

func (t *teeWriter) WriteHeader(code int) {
	t.status = code
	t.ResponseWriter.WriteHeader(code)
}

func (t *teeWriter) Write(p []byte) (int, error) {
	t.buf.Write(p)
	return t.ResponseWriter.Write(p)
}

// drillNode is one randd-shaped member of the test fleet.
type drillNode struct {
	id   string
	pool *hybridprng.Pool
	srv  *server.Server
	ht   *httptest.Server
	rec  *recorder
	stop context.CancelFunc
}

// startDrillNode boots a node (fresh from seed, or resumed from blob
// when non-nil) and runs its fleet agent against the controller.
func startDrillNode(t *testing.T, controller, id string, seed uint64, blob []byte, token string) *drillNode {
	t.Helper()
	var pool *hybridprng.Pool
	if blob != nil {
		pool = new(hybridprng.Pool)
		if err := pool.UnmarshalBinary(blob); err != nil {
			t.Fatalf("node %s: restore: %v", id, err)
		}
	} else {
		p, err := hybridprng.NewPool(drillPoolOpts(seed)...)
		if err != nil {
			t.Fatalf("node %s: %v", id, err)
		}
		pool = p
	}
	srv, err := server.New(pool, server.Options{})
	if err != nil {
		t.Fatalf("node %s: %v", id, err)
	}
	rec := &recorder{next: srv.Handler()}
	ht := httptest.NewServer(rec)
	agent, err := fleet.NewAgent(fleet.AgentOptions{
		Controller: controller,
		Node: fleet.NodeInfo{
			ID: id, URL: ht.URL,
			CapacityWords: 64_000,
			ResumeToken:   token,
		},
		Report: func() fleet.HeartbeatReport {
			st := pool.Stats()
			return fleet.HeartbeatReport{
				Shards: st.Shards, Healthy: st.Healthy,
				Quarantined: st.Quarantined, Probation: st.Probation,
				Retired: st.Retired, CapacityWords: 64_000,
			}
		},
		RetryWait: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("node %s: %v", id, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go agent.Run(ctx)
	n := &drillNode{id: id, pool: pool, srv: srv, ht: ht, rec: rec, stop: cancel}
	t.Cleanup(func() { n.stop(); n.ht.Close() })
	return n
}

// waitEndpoints polls the controller until cond holds on the live
// endpoint list.
func waitEndpoints(t *testing.T, ctrl *fleet.Controller, what string, cond func([]string) bool) []string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, eps := ctrl.Endpoints()
		if cond(eps) {
			return eps
		}
		if time.Now().After(deadline) {
			t.Fatalf("endpoints never reached %q: %v", what, eps)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetChaosKillAndDrainContinuity is the control plane's
// acceptance bar. A three-node fleet serves a continuously drawing
// client whose endpoint list is fed live from the controller's watch.
// A seeded chaos schedule kills one node mid-stream (SIGKILL
// semantics: no drain, no deregistration); the controller must detect
// it by missed heartbeats and steer the client off it with zero
// failed draws. Then a survivor is drained through the controller:
// its frozen streams move to a successor booted from the drain blob,
// and the bytes the pair served — recorded request by request on the
// wire — must be bitwise identical to one uninterrupted reference
// pool serving the same request sizes. Placement invariants (exact
// partition, no over-commit) are checked at every milestone.
func TestFleetChaosKillAndDrainContinuity(t *testing.T) {
	ctrl, err := fleet.NewController(fleet.Config{
		LogicalShards:     16,
		StreamWords:       1_000,
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectAfter:      100 * time.Millisecond,
		DeadAfter:         300 * time.Millisecond,
		Clock:             time.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	fsrv := fleet.NewServer(ctrl, fleet.ServerOptions{WatchHold: 200 * time.Millisecond})
	runCtx, stopRun := context.WithCancel(context.Background())
	defer stopRun()
	go fsrv.Run(runCtx)
	cht := httptest.NewServer(fsrv.Handler())
	defer cht.Close()

	nodes := make([]*drillNode, len(drillSeeds))
	for i, seed := range drillSeeds {
		nodes[i] = startDrillNode(t, cht.URL, fmt.Sprintf("n%d", i+1), seed, nil, "")
	}
	waitEndpoints(t, ctrl, "all three serving", func(eps []string) bool { return len(eps) == 3 })
	if err := ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The seeded schedule picks the victim — same seed, same drill.
	sched, err := chaos.NewFleetSchedule(chaos.FleetConfig{
		Seed: 0xD1CE, Nodes: len(nodes),
		Kinds: []chaos.FleetEventKind{chaos.NodeKill}, MaxKills: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for _, ev := range sched.Events() {
		if ev.Kind == chaos.NodeKill {
			victim = ev.Node
			break
		}
	}
	if victim < 0 {
		t.Fatalf("schedule scripted no kill:\n%s", sched)
	}
	t.Logf("chaos schedule targets node %d:\n%s", victim, sched)

	_, eps := ctrl.Endpoints()
	cl, err := client.New(client.Options{
		Endpoints:   eps,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		MaxStall:    20 * time.Second,
		// Pin the block size small so every node — including the
		// drain successor — serves several requests during the drill.
		BlockWords:    2048,
		MinBlockWords: 2048,
		MaxBlockWords: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	go fleet.WatchEndpoints(watchCtx, cht.URL, nil, func(_ uint64, eps []string) {
		cl.SetEndpoints(eps)
	})

	// The single sequential drawer: zero failed draws is the bar, and
	// one drawer keeps each node's request stream serialised for the
	// continuity check.
	var draws, zeroWords atomic.Uint64
	drawErr := make(chan error, 1)
	stopDraw := make(chan struct{})
	drawerDone := make(chan struct{})
	go func() {
		defer close(drawerDone)
		for {
			select {
			case <-stopDraw:
				return
			default:
			}
			v, err := cl.Uint64()
			if err != nil {
				drawErr <- err
				return
			}
			if v == 0 {
				zeroWords.Add(1)
			}
			draws.Add(1)
		}
	}()
	drawUntil := func(target uint64, what string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for draws.Load() < target {
			select {
			case err := <-drawErr:
				t.Fatalf("client draw failed during %s: %v", what, err)
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("drawer stalled during %s at %d draws", what, draws.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}
	drawUntil(10_000, "steady state")

	// SIGKILL semantics: connections torn down, heartbeats stop, no
	// goodbye. The controller must notice on its own.
	killed := nodes[victim]
	killed.stop()
	killed.ht.CloseClientConnections()
	killed.ht.Close()
	marker := draws.Load()
	waitEndpoints(t, ctrl, "kill detected", func(eps []string) bool {
		if len(eps) != 2 {
			return false
		}
		for _, ep := range eps {
			if ep == killed.ht.URL {
				return false
			}
		}
		return true
	})
	if err := ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	drawUntil(marker+10_000, "post-kill serving")

	// Drain the lowest-numbered survivor through the controller and
	// boot its successor from the blob.
	var drainee *drillNode
	for _, n := range nodes {
		if n != killed {
			drainee = n
			break
		}
	}
	resp, err := http.Post(cht.URL+"/v1/drain?id="+drainee.id, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("drain %s: status %d err %v: %s", drainee.id, resp.StatusCode, err, blob)
	}
	token := resp.Header.Get("X-Fleet-Resume-Token")
	successor := startDrillNode(t, cht.URL, drainee.id+"-successor", 0, blob, token)
	waitEndpoints(t, ctrl, "successor serving", func(eps []string) bool {
		for _, ep := range eps {
			if ep == successor.ht.URL {
				return true
			}
		}
		return false
	})
	if err := ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	marker = draws.Load()
	drawUntil(marker+10_000, "post-drain serving")

	// The drained node's agent is deliberately still running and
	// heartbeating a healthy pool report. It must stay retired: one
	// request routed back to it would fork the successor's streams.
	if _, eps := ctrl.Endpoints(); len(eps) != 2 {
		t.Fatalf("want 2 endpoints (survivor + successor), got %v", eps)
	} else {
		for _, ep := range eps {
			if ep == drainee.ht.URL {
				t.Fatalf("drained node crept back into endpoints: %v", eps)
			}
		}
	}

	close(stopDraw)
	<-drawerDone
	select {
	case err := <-drawErr:
		t.Fatalf("client draw failed: %v", err)
	default:
	}
	cl.Close() // no more fetches; recordings are final
	if zeroWords.Load() > 0 {
		t.Fatalf("%d zero words drawn — corruption in the stream", zeroWords.Load())
	}
	t.Logf("%d draws, zero failures, across a kill and a drain", draws.Load())

	// Bitwise continuity: everything the drained node and its
	// successor served, concatenated, must equal a reference pool
	// (same options, same seed) serving the same request sizes. Only
	// the lineage's final response may be cut short (the client was
	// mid-read when the run ended); anything else is a fork.
	fromSuccessor := successor.rec.recorded()
	if len(fromSuccessor) == 0 {
		t.Fatal("successor served nothing after the drain; the handoff was never exercised")
	}
	lineage := append(drainee.rec.recorded(), fromSuccessor...)
	refPool, err := hybridprng.NewPool(drillPoolOpts(drillSeeds[indexOf(t, nodes, drainee)])...)
	if err != nil {
		t.Fatal(err)
	}
	refSrv, err := server.New(refPool, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refHT := httptest.NewServer(refSrv.Handler())
	defer refHT.Close()
	for i, req := range lineage {
		refResp, err := http.Get(refHT.URL + "/bytes?n=" + strconv.Itoa(req.n))
		if err != nil {
			t.Fatal(err)
		}
		refBody, err := io.ReadAll(refResp.Body)
		refResp.Body.Close()
		if err != nil || refResp.StatusCode != http.StatusOK {
			t.Fatalf("reference draw %d: status %d err %v", i, refResp.StatusCode, err)
		}
		if len(req.body) < len(refBody) && i != len(lineage)-1 {
			t.Fatalf("request %d/%d of the lineage is truncated (%d of %d bytes) before the final response",
				i+1, len(lineage), len(req.body), len(refBody))
		}
		if len(req.body) > len(refBody) || !bytes.Equal(req.body, refBody[:len(req.body)]) {
			t.Fatalf("request %d/%d (n=%d): drained lineage diverges from the uninterrupted reference",
				i+1, len(lineage), req.n)
		}
	}
	t.Logf("lineage of %d responses bitwise identical to the uninterrupted reference", len(lineage))
}

func indexOf(t *testing.T, nodes []*drillNode, n *drillNode) int {
	t.Helper()
	for i, m := range nodes {
		if m == n {
			return i
		}
	}
	t.Fatal("node not in fleet")
	return -1
}
