// Package fleet is the control plane that turns a set of independent
// randd processes into one randomness service. The paper's on-demand
// contract — any consumer asks for the next number at any time and
// never waits on the producer — is kept per-process by the pool and
// the client SDK's failover; this package keeps it across *process
// loss*: nodes register and heartbeat, a controller detects failures
// through deterministic missed-heartbeat state machines
// (alive → suspect → dead, the node-level mirror of the pool's
// healthy → quarantined → retired shard machine), places logical
// shard ranges onto nodes without ever exceeding a node's declared
// capacity, and drains nodes through the exact-resume snapshot path
// so a planned move never breaks a stream.
//
// # Roles
//
//   - Controller: the deterministic core. Pure bookkeeping over an
//     injected clock — no wall-clock reads, no goroutines, no I/O —
//     so every failure-detection and placement decision is unit
//     testable on a fake clock (and replayable: same heartbeat
//     history + same clock ⇒ same decisions).
//   - Server: the thin HTTP skin randctl serves (register, heartbeat,
//     endpoints watch, fleet status, drain orchestration).
//   - Agent: the node side, embedded in randd — registers on boot,
//     heartbeats the pool's health, deregisters before draining on
//     shutdown.
//   - WatchEndpoints: the consumer side — a long-poll loop feeding
//     the controller's live endpoint list into
//     (*client.Client).SetEndpoints so SDK failover learns about new
//     and dead nodes without restarts.
//
// # Capacity model
//
// Each node declares a sustainable throughput in words/second
// (CapacityWords — measured, e.g. from the committed pool benchmarks,
// not aspirational). The controller divides the fleet's keyspace into
// Config.LogicalShards logical shard ranges and charges
// Config.StreamWords of demand per logical shard. A node's stream
// budget is its *derated* capacity — declared capacity scaled by the
// healthy fraction of its pool, as reported in heartbeats — divided
// by StreamWords. Placement never assigns more logical shards to a
// node than its current budget: the same over-scheduling invariant a
// GPU scheduler enforces for device memory. When heartbeats show a
// pool degrading (shards quarantined or retired), the budget shrinks
// and the controller sheds the excess ranges to nodes with spare
// budget — or parks them as pending rather than over-commit anyone.
//
// Logical shard ranges never alias: at all times the assigned ranges,
// the pending ranges and the ranges frozen in drain tickets form an
// exact partition of [0, LogicalShards). CheckInvariants verifies
// both properties and the tests run it after every mutation.
//
// # Stream-preserving drain
//
// A planned removal (deploy, hardware retirement) must not restart
// streams — that is exactly what the exact-resume state blobs exist
// for. BeginDrain freezes the node's ranges into a drain ticket and
// removes the node from the endpoint list; the operator (or randctl
// drain) then fetches the node's pool snapshot via its POST /drain
// endpoint, boots a replacement randd from that blob, and the
// replacement registers carrying the ticket's resume token. The
// controller hands the frozen ranges to the claimant — capacity
// permitting — and the replacement continues every stream bitwise
// where the drained node stopped. A node that dies *unplanned* gets
// no such grace: its ranges are re-placed fresh (continuity is
// impossible without a snapshot), and the client SDK's failover is
// what keeps draws succeeding meanwhile.
package fleet

import (
	"fmt"
	"sort"
	"time"
)

// NodeState is the controller's failure-detection state for a node.
type NodeState int

const (
	// StateAlive: heartbeats arriving within SuspectAfter.
	StateAlive NodeState = iota
	// StateSuspect: no heartbeat for SuspectAfter; the node is pulled
	// from the endpoint list but keeps its shard ranges — a heartbeat
	// readmits it instantly.
	StateSuspect
	// StateDead: no heartbeat for DeadAfter; ranges are re-placed on
	// the survivors (fresh streams — unplanned loss has no snapshot).
	StateDead
	// StateDraining: an operator asked for a stream-preserving drain;
	// the node is out of the endpoint list and its ranges are frozen
	// in a drain ticket awaiting a claimant.
	StateDraining
	// StateDrained: the drain hand-off completed; the node holds
	// nothing and may be deregistered.
	StateDrained
)

func (s NodeState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateDraining:
		return "draining"
	case StateDrained:
		return "drained"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Range is a half-open interval [Lo, Hi) of logical shard indices.
type Range struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// Width returns the number of logical shards in the range.
func (r Range) Width() uint64 { return r.Hi - r.Lo }

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// normalize sorts ranges and merges adjacent/overlapping ones,
// dropping empties. The result is the canonical form every
// controller-held range list stays in.
func normalize(rs []Range) []Range {
	out := make([]Range, 0, len(rs))
	for _, r := range rs {
		if r.Hi > r.Lo {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && r.Lo <= merged[n-1].Hi {
			if r.Hi > merged[n-1].Hi {
				merged[n-1].Hi = r.Hi
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// width sums the logical shards covered by a normalized range list.
func width(rs []Range) uint64 {
	var w uint64
	for _, r := range rs {
		w += r.Width()
	}
	return w
}

// NodeInfo is what a node declares at registration.
type NodeInfo struct {
	// ID names the node for its whole lifetime (randd derives it from
	// the listen address by default). Re-registering an existing ID
	// refreshes the node in place — a restarted node that resumed its
	// own state file keeps its shard ranges.
	ID string `json:"id"`
	// URL is the base URL clients should draw from
	// ("http://host:port").
	URL string `json:"url"`
	// CapacityWords is the sustainable throughput this node declares,
	// in words/second. The controller never assigns the node more
	// logical shards than this capacity (derated by pool health)
	// covers.
	CapacityWords uint64 `json:"capacity_words"`
	// ResumeToken, when non-empty, claims a drain ticket: the node
	// registers as the successor of a draining node and inherits its
	// frozen shard ranges (capacity permitting), continuing those
	// streams bitwise from the drained snapshot.
	ResumeToken string `json:"resume_token,omitempty"`
}

// HeartbeatReport is the per-heartbeat health payload, lifted
// straight from hybridprng.PoolStats so the controller sees exactly
// what /healthz and /metrics see.
type HeartbeatReport struct {
	Shards      int `json:"shards"`
	Healthy     int `json:"healthy"`
	Quarantined int `json:"quarantined"`
	Probation   int `json:"probation"`
	Retired     int `json:"retired"`
	// CapacityWords re-declares capacity (0 keeps the registered
	// value) — a node that re-benchmarks itself can tell the
	// controller.
	CapacityWords uint64 `json:"capacity_words,omitempty"`
	// Draining reports the node's drain latch: it committed a
	// stream-preserving drain and refuses every draw. A node the
	// controller itself is draining reports this expectedly; an
	// *alive* node reporting it is a drained zombie (its drain's
	// rollback never reached it) and is kept out of the endpoint list
	// until the latch clears.
	Draining bool `json:"draining,omitempty"`
}

// NodeStatus is one node's row in a fleet snapshot.
type NodeStatus struct {
	ID            string    `json:"id"`
	URL           string    `json:"url"`
	State         string    `json:"state"`
	CapacityWords uint64    `json:"capacity_words"`
	DeratedWords  uint64    `json:"derated_words"`
	BudgetStreams uint64    `json:"budget_streams"`
	Assigned      []Range   `json:"assigned,omitempty"`
	AssignedWidth uint64    `json:"assigned_width"`
	Healthy       int       `json:"healthy"`
	Shards        int       `json:"shards"`
	Draining      bool      `json:"draining,omitempty"`
	LastBeat      time.Time `json:"last_beat"`
}

// TicketStatus describes an open drain ticket.
type TicketStatus struct {
	Token  string  `json:"token"`
	NodeID string  `json:"node_id"`
	Ranges []Range `json:"ranges"`
}

// Status is a point-in-time fleet snapshot for randctl and /v1/fleet.
type Status struct {
	LogicalShards    uint64         `json:"logical_shards"`
	StreamWords      uint64         `json:"stream_words"`
	EndpointsVersion uint64         `json:"endpoints_version"`
	Endpoints        []string       `json:"endpoints"`
	Pending          []Range        `json:"pending,omitempty"`
	PendingWidth     uint64         `json:"pending_width"`
	Partitioned      bool           `json:"partitioned,omitempty"`
	Nodes            []NodeStatus   `json:"nodes"`
	Tickets          []TicketStatus `json:"tickets,omitempty"`
}
