package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Fleet-level chaos: while Source corrupts one feed's words, a
// FleetSchedule scripts whole-fleet failures — node kills, lost
// heartbeats, slow nodes, a partitioned controller — on the same
// seeded, bit-for-bit reproducible footing. The schedule is pure
// data: it decides *what happens when* from the seed alone, and the
// test harness (or a drill driver) executes the events against real
// processes. Keeping execution out of the schedule is what keeps it
// deterministic: no clock reads, no goroutines, just an event list
// and a cursor.

// FleetEventKind is a fleet-level fault class.
type FleetEventKind int

const (
	// NodeKill terminates a node abruptly — SIGKILL semantics, no
	// drain, no deregistration. Exercises the controller's
	// missed-heartbeat path and the client's failover.
	NodeKill FleetEventKind = iota
	// HeartbeatLoss suppresses a node's heartbeats for the event's
	// duration while it keeps serving draws: the controller must
	// suspect it (steering new placement away) without the data plane
	// ever failing a request, and readmit it when beats resume.
	HeartbeatLoss
	// SlowNode injects per-request latency for the duration,
	// exercising client hedging and the controller's indifference to
	// slow-but-alive nodes.
	SlowNode
	// Partition silences *every* node's heartbeats at once for the
	// duration — the controller-side partition drill. The controller
	// must freeze (keep last-known endpoints, demote nobody) rather
	// than declare the whole fleet dead.
	Partition
	numFleetKinds
)

func (k FleetEventKind) String() string {
	switch k {
	case NodeKill:
		return "node-kill"
	case HeartbeatLoss:
		return "heartbeat-loss"
	case SlowNode:
		return "slow-node"
	case Partition:
		return "partition"
	}
	return fmt.Sprintf("fleet-kind(%d)", int(k))
}

// FleetEvent is one scheduled fleet fault.
type FleetEvent struct {
	// At is the event's offset from the start of the run.
	At time.Duration
	// Kind is the fault class.
	Kind FleetEventKind
	// Node is the target's index in [0, Nodes); -1 for Partition,
	// which targets the control plane, not a node.
	Node int
	// Dur is how long the fault lasts (kills are permanent: 0).
	Dur time.Duration
}

func (e FleetEvent) String() string {
	target := fmt.Sprintf("node %d", e.Node)
	if e.Node < 0 {
		target = "controller"
	}
	if e.Dur > 0 {
		return fmt.Sprintf("%v: %s %s for %v", e.At, e.Kind, target, e.Dur)
	}
	return fmt.Sprintf("%v: %s %s", e.At, e.Kind, target)
}

// FleetConfig parameterises a fleet schedule. The zero value of each
// field (except Seed and Nodes) means its default.
type FleetConfig struct {
	// Seed drives the entire schedule; equal configs produce equal
	// event lists.
	Seed uint64
	// Nodes is the fleet size events target (required, ≥ 1).
	Nodes int
	// Horizon is the scheduling window (default 10s); every event
	// starts inside it.
	Horizon time.Duration
	// MeanGap is the average spacing between events (default
	// Horizon/4). Actual gaps are uniform on [MeanGap/2, 3·MeanGap/2].
	MeanGap time.Duration
	// MeanDur is the average fault duration for the bounded kinds
	// (default Horizon/8); uniform on [MeanDur/2, 3·MeanDur/2].
	MeanDur time.Duration
	// Kinds restricts which fault classes fire (default: all).
	Kinds []FleetEventKind
	// MaxKills bounds permanent node kills so a schedule cannot
	// annihilate the fleet (default: Nodes-1, keeping one survivor;
	// negative disables kills entirely).
	MaxKills int
}

func (c FleetConfig) withDefaults() (FleetConfig, error) {
	if c.Nodes < 1 {
		return c, fmt.Errorf("chaos: fleet schedule needs Nodes >= 1, got %d", c.Nodes)
	}
	if c.Horizon <= 0 {
		c.Horizon = 10 * time.Second
	}
	if c.MeanGap <= 0 {
		c.MeanGap = c.Horizon / 4
	}
	if c.MeanDur <= 0 {
		c.MeanDur = c.Horizon / 8
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []FleetEventKind{NodeKill, HeartbeatLoss, SlowNode, Partition}
	}
	if c.MaxKills == 0 {
		c.MaxKills = c.Nodes - 1
	}
	return c, nil
}

// FleetSchedule is a deterministic, pre-computed fleet fault script.
// Events() exposes the whole script; Due() is the cursor a test's
// event loop drains as simulated (or real) time passes. The schedule
// itself never reads a clock — callers hand it elapsed time.
type FleetSchedule struct {
	cfg    FleetConfig
	events []FleetEvent
	next   int // Due() cursor
}

// NewFleetSchedule derives the full event script from cfg.Seed.
func NewFleetSchedule(cfg FleetConfig) (*FleetSchedule, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &FleetSchedule{cfg: cfg}
	sm := mix(cfg.Seed ^ 0xf1ee7c8a05)
	rnd := func() uint64 {
		sm += 0x9E3779B97F4A7C15
		return mix(sm)
	}
	// Uniform on [m/2, 3m/2] keeps the mean at m without degenerate
	// zero gaps.
	spread := func(m time.Duration) time.Duration {
		return m/2 + time.Duration(rnd()%uint64(m))
	}
	kills := 0
	alive := cfg.Nodes
	for at := spread(cfg.MeanGap); at < cfg.Horizon; at += spread(cfg.MeanGap) {
		kind := cfg.Kinds[rnd()%uint64(len(cfg.Kinds))]
		ev := FleetEvent{At: at, Kind: kind, Node: int(rnd() % uint64(cfg.Nodes))}
		switch kind {
		case NodeKill:
			if cfg.MaxKills < 0 || kills >= cfg.MaxKills || alive <= 1 {
				continue // skip, don't reshape the rest of the timeline
			}
			kills++
			alive--
		case Partition:
			ev.Node = -1
			ev.Dur = spread(cfg.MeanDur)
		default:
			ev.Dur = spread(cfg.MeanDur)
		}
		s.events = append(s.events, ev)
	}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].At < s.events[j].At })
	return s, nil
}

// Events returns the full script in firing order. Callers must not
// mutate it.
func (s *FleetSchedule) Events() []FleetEvent { return s.events }

// Due returns the events that fire at or before elapsed and advances
// the cursor past them; subsequent calls never return an event twice.
// A test loop is just:
//
//	for _, ev := range sched.Due(clock.Since(start)) { apply(ev) }
func (s *FleetSchedule) Due(elapsed time.Duration) []FleetEvent {
	start := s.next
	for s.next < len(s.events) && s.events[s.next].At <= elapsed {
		s.next++
	}
	return s.events[start:s.next]
}

// Remaining reports how many events have not fired yet.
func (s *FleetSchedule) Remaining() int { return len(s.events) - s.next }

// String renders the script, one event per line — drill logs lead
// with it so a failure is reproducible from the output alone.
func (s *FleetSchedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet schedule (seed %#x, %d nodes, horizon %v):\n",
		s.cfg.Seed, s.cfg.Nodes, s.cfg.Horizon)
	for _, ev := range s.events {
		fmt.Fprintf(&b, "  %s\n", ev)
	}
	return b.String()
}
