package chaos

import (
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/bitsource"
	"repro/internal/rng"
)

// TestChaosDeterministic pins the core property: equal configs over
// equal feeds corrupt identical offsets identically.
func TestChaosDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, MeanPeriod: 100, MeanLen: 8, Sleep: func(time.Duration) {}}
	a := New(cfg, baselines.NewSplitMix64(7))
	b := New(cfg, baselines.NewSplitMix64(7))
	for i := 0; i < 10000; i++ {
		if va, vb := a.Uint64(), b.Uint64(); va != vb {
			t.Fatalf("word %d diverged: %#x vs %#x", i, va, vb)
		}
	}
}

// TestChaosCorruptsOnSchedule checks faults actually fire: a chaos
// stream over a fixed feed must differ from the clean stream, and
// only inside scheduled fault windows.
func TestChaosCorruptsOnSchedule(t *testing.T) {
	cfg := Config{Seed: 1, MeanPeriod: 50, MeanLen: 4, Kinds: []Kind{Stuck}}
	s := New(cfg, baselines.NewSplitMix64(7))
	clean := baselines.NewSplitMix64(7)
	corrupted := 0
	for i := 0; i < 5000; i++ {
		v, want := s.Uint64(), clean.Uint64()
		if v != want {
			if v != ^uint64(0) {
				t.Fatalf("word %d: stuck fault produced %#x, want all-ones", i, v)
			}
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no faults fired in 5000 words with MeanPeriod=50")
	}
}

// TestChaosStuckTripsRCT runs a chaos feed under the SP 800-90B
// monitor and requires the stuck-bits fault to trip the repetition
// count test through the real detection path.
func TestChaosStuckTripsRCT(t *testing.T) {
	cfg := Config{Seed: 3, MeanPeriod: 64, MeanLen: 64, Kinds: []Kind{Stuck}}
	mon, err := bitsource.NewMonitor(New(cfg, baselines.NewSplitMix64(9)), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<16 && !mon.Tripped(); i++ {
		mon.Uint64()
	}
	if !mon.Tripped() {
		t.Fatal("monitor never tripped on a stuck-bits chaos feed")
	}
	he, ok := mon.Err().(*bitsource.HealthError)
	if !ok {
		t.Fatalf("trip error is %T, want *bitsource.HealthError", mon.Err())
	}
	if he.Test != "RCT" {
		t.Logf("tripped %s (stuck feeds usually fail RCT first)", he.Test)
	}
}

// TestChaosBiasTripsMonitor: the ones-density ramp must eventually
// fail a health test (APT, or RCT if the mask saturates).
func TestChaosBiasTripsMonitor(t *testing.T) {
	cfg := Config{Seed: 5, MeanPeriod: 32, MeanLen: 512, Kinds: []Kind{Bias}}
	mon, err := bitsource.NewMonitor(New(cfg, baselines.NewSplitMix64(11)), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<18 && !mon.Tripped(); i++ {
		mon.Uint64()
	}
	if !mon.Tripped() {
		t.Fatal("monitor never tripped on a bias-ramp chaos feed")
	}
}

// TestChaosStallCallsSleep verifies Stall faults pause without
// corrupting data.
func TestChaosStallCallsSleep(t *testing.T) {
	var slept int
	cfg := Config{
		Seed: 8, MeanPeriod: 50, MeanLen: 4, Kinds: []Kind{Stall},
		StallDur: 5 * time.Millisecond,
		Sleep: func(d time.Duration) {
			if d != 5*time.Millisecond {
				t.Fatalf("stall slept %v, want 5ms", d)
			}
			slept++
		},
	}
	s := New(cfg, baselines.NewSplitMix64(13))
	clean := baselines.NewSplitMix64(13)
	for i := 0; i < 5000; i++ {
		if v, want := s.Uint64(), clean.Uint64(); v != want {
			t.Fatalf("stall fault corrupted word %d", i)
		}
	}
	if slept == 0 {
		t.Fatal("no stall fired in 5000 words with MeanPeriod=50")
	}
}

// TestChaosUnwrap: the reseed path depends on peeling the chaos
// layer back to the typed feed.
func TestChaosUnwrap(t *testing.T) {
	feed := baselines.NewSplitMix64(1)
	s := New(Config{Seed: 1}, feed)
	var src rng.Source = s
	if u, ok := src.(interface{ Unwrap() rng.Source }); !ok || u.Unwrap() != rng.Source(feed) {
		t.Fatal("Unwrap did not return the wrapped feed")
	}
}

// TestChaosWrapperPerWorkerSchedules: distinct workers must get
// distinct schedules from one config.
func TestChaosWrapperPerWorkerSchedules(t *testing.T) {
	wrap := Wrapper(Config{Seed: 99, MeanPeriod: 50, MeanLen: 4, Kinds: []Kind{Stuck}})
	a := wrap(0, baselines.NewSplitMix64(7))
	b := wrap(1, baselines.NewSplitMix64(7))
	same := true
	for i := 0; i < 5000; i++ {
		if a.Uint64() != b.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("workers 0 and 1 got identical fault schedules")
	}
}

func TestParseKinds(t *testing.T) {
	ks, err := ParseKinds("stuck, stall")
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 || ks[0] != Stuck || ks[1] != Stall {
		t.Fatalf("ParseKinds = %v", ks)
	}
	if ks, err = ParseKinds("all"); err != nil || len(ks) != 4 {
		t.Fatalf("ParseKinds(all) = %v, %v", ks, err)
	}
	if _, err = ParseKinds("gamma-rays"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
