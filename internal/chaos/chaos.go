// Package chaos wraps feed generators with a deterministic,
// seed-driven fault schedule so the serving stack's recovery paths —
// SP 800-90B trips, shard quarantine and probation, server load
// shedding — can be exercised reproducibly in tests and drills
// instead of waiting for real hardware to misbehave.
//
// A chaos Source sits *between* the feed generator and the health
// monitor: the monitor sees the corrupted stream exactly as it would
// see a failing hardware source, so trips fire through the real
// detection path rather than through a test backdoor. Faults arrive
// on a schedule derived entirely from Config.Seed (interval, kind
// and duration all come from a private SplitMix64 stream), so a run
// is bit-for-bit repeatable: same seed, same faults, same trips.
//
// Chaos sources are deliberately not checkpointable — a fault
// schedule has no business inside a production snapshot, and
// hybridprng's state encoder rejects them — so `randd` refuses to
// combine its -chaos flag with -state.
package chaos

import (
	"fmt"
	"math/bits"
	"strings"
	"time"

	"repro/internal/rng"
)

// Kind is a fault class.
type Kind int

const (
	// Stuck forces the stream to a constant all-ones word, the
	// classic stuck-bits failure; the repetition count test catches
	// it within a few words.
	Stuck Kind = iota
	// Bias ORs in a mask whose popcount ramps up over the fault's
	// duration, drifting the ones-density until the adaptive
	// proportion test fires.
	Bias
	// Burst replays the last clean word for the fault's duration — a
	// latched-output failure.
	Burst
	// Stall injects a latency pause (no data corruption): the word is
	// correct but late. Exercises server deadlines, not the monitor.
	Stall
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Stuck:
		return "stuck"
	case Bias:
		return "bias"
	case Burst:
		return "burst"
	case Stall:
		return "stall"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKinds parses a comma-separated fault-kind list
// ("stuck,bias,stall"); "all" or "" enables every kind.
func ParseKinds(s string) ([]Kind, error) {
	if s == "" || s == "all" {
		return []Kind{Stuck, Bias, Burst, Stall}, nil
	}
	var out []Kind
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "stuck":
			out = append(out, Stuck)
		case "bias":
			out = append(out, Bias)
		case "burst":
			out = append(out, Burst)
		case "stall":
			out = append(out, Stall)
		default:
			return nil, fmt.Errorf("chaos: unknown fault kind %q", name)
		}
	}
	return out, nil
}

// Config parameterises a fault schedule. The zero value of each
// field means its default.
type Config struct {
	// Seed drives the entire schedule. Two sources built from equal
	// configs corrupt identical word offsets identically.
	Seed uint64
	// MeanPeriod is the average clean interval between faults, in
	// words (default 4096). Actual intervals are uniform on
	// [1, 2·MeanPeriod].
	MeanPeriod uint64
	// MeanLen is the average fault duration in words (default 64);
	// actual durations are uniform on [1, 2·MeanLen].
	MeanLen uint64
	// Kinds restricts which fault classes fire (default: all).
	Kinds []Kind
	// StallDur is the pause a Stall fault injects per word
	// (default 1ms).
	StallDur time.Duration
	// Sleep is the function Stall faults call (default time.Sleep).
	// Tests substitute a recording stub so chaos runs stay fast.
	Sleep func(time.Duration)
}

func (c Config) withDefaults() Config {
	if c.MeanPeriod == 0 {
		c.MeanPeriod = 4096
	}
	if c.MeanLen == 0 {
		c.MeanLen = 64
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []Kind{Stuck, Bias, Burst, Stall}
	}
	if c.StallDur == 0 {
		c.StallDur = time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Source corrupts an underlying feed on a deterministic schedule.
// Not safe for concurrent use — like every feed, it is owned by one
// shard behind that shard's lock.
type Source struct {
	src rng.Source
	cfg Config

	sm    uint64 // private SplitMix64 schedule stream
	count uint64 // words served so far

	faultAt  uint64 // count at which the current/next fault begins
	faultEnd uint64 // count at which it ends (exclusive)
	kind     Kind
	last     uint64 // last clean word, for Burst
}

// New wraps src with the fault schedule described by cfg.
func New(cfg Config, src rng.Source) *Source {
	s := &Source{src: src, cfg: cfg.withDefaults(), sm: cfg.Seed}
	s.schedule(0)
	return s
}

// Wrapper adapts a Config to hybridprng.WithFeedWrapper: each worker
// gets its own schedule, derived from cfg.Seed and the worker index,
// so shards fault at different offsets (as real independent sources
// would) while the whole ensemble stays reproducible.
func Wrapper(cfg Config) func(worker int, src rng.Source) rng.Source {
	return func(worker int, src rng.Source) rng.Source {
		c := cfg
		c.Seed = mix(cfg.Seed ^ (uint64(worker)+1)*0x9E3779B97F4A7C15)
		return New(c, src)
	}
}

// Unwrap returns the clean feed underneath, letting the pool's
// reseed path peel the chaos layer off before rebuilding (and
// Wrapper re-apply it to the fresh feed).
func (s *Source) Unwrap() rng.Source { return s.src }

// Name implements rng.Named.
func (s *Source) Name() string {
	if n, ok := s.src.(rng.Named); ok {
		return "chaos(" + n.Name() + ")"
	}
	return "chaos"
}

func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ z>>31
}

func (s *Source) rnd() uint64 {
	s.sm += 0x9E3779B97F4A7C15
	return mix(s.sm)
}

// schedule plans the next fault strictly after word offset from.
func (s *Source) schedule(from uint64) {
	s.faultAt = from + 1 + s.rnd()%(2*s.cfg.MeanPeriod)
	s.faultEnd = s.faultAt + 1 + s.rnd()%(2*s.cfg.MeanLen)
	s.kind = s.cfg.Kinds[s.rnd()%uint64(len(s.cfg.Kinds))]
}

// Uint64 serves the next word, corrupted when the schedule says so.
func (s *Source) Uint64() uint64 {
	v := s.src.Uint64()
	off := s.count
	s.count++
	if off < s.faultAt {
		s.last = v
		return v
	}
	if off >= s.faultEnd {
		s.schedule(off)
		s.last = v
		return v
	}
	switch s.kind {
	case Stuck:
		return ^uint64(0)
	case Bias:
		// Ramp the forced-ones density across the fault: 16 bits set
		// at onset, up to 48 near the end.
		span := s.faultEnd - s.faultAt
		frac := (off - s.faultAt + 1) * 32 / span // 0..32
		return v | biasMask(16+frac)
	case Burst:
		return s.last
	case Stall:
		s.cfg.Sleep(s.cfg.StallDur)
		s.last = v
		return v
	}
	return v
}

// biasMask returns a mask with n bits set, spread across the word.
func biasMask(n uint64) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	var m uint64
	// Distribute the set bits at stride 64/n so the bias is spectral,
	// not just a low-bits clump.
	stride := 64 / n
	if stride == 0 {
		stride = 1
	}
	for i := uint64(0); i < 64 && uint64(bits.OnesCount64(m)) < n; i += stride {
		m |= 1 << i
	}
	for i := uint64(0); i < 64 && uint64(bits.OnesCount64(m)) < n; i++ {
		m |= 1 << i
	}
	return m
}
