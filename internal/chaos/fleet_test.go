package chaos

import (
	"fmt"
	"testing"
	"time"
)

// TestFleetScheduleDeterministic: same config, same script — the
// whole point of seeded fleet drills.
func TestFleetScheduleDeterministic(t *testing.T) {
	cfg := FleetConfig{Seed: 42, Nodes: 3}
	a, err := NewFleetSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFleetSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("schedules diverged:\n%s\n%s", a, b)
	}
	c, err := NewFleetSchedule(FleetConfig{Seed: 43, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced the same schedule")
	}
}

// TestFleetScheduleInvariants sweeps seeds and checks every scripted
// event is well-formed: inside the horizon, targeting a real node (or
// the controller for partitions), with kills bounded so the fleet
// always keeps a survivor.
func TestFleetScheduleInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			nodes := 1 + int(seed%5)
			s, err := NewFleetSchedule(FleetConfig{Seed: seed, Nodes: nodes, Horizon: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			kills := 0
			var prev time.Duration
			for _, ev := range s.Events() {
				if ev.At < prev {
					t.Fatalf("events out of order: %v", s)
				}
				prev = ev.At
				if ev.At <= 0 || ev.At >= 5*time.Second {
					t.Fatalf("event outside horizon: %v", ev)
				}
				switch ev.Kind {
				case Partition:
					if ev.Node != -1 || ev.Dur <= 0 {
						t.Fatalf("malformed partition: %v", ev)
					}
				case NodeKill:
					kills++
					if ev.Node < 0 || ev.Node >= nodes || ev.Dur != 0 {
						t.Fatalf("malformed kill: %v", ev)
					}
				default:
					if ev.Node < 0 || ev.Node >= nodes || ev.Dur <= 0 {
						t.Fatalf("malformed event: %v", ev)
					}
				}
			}
			if kills >= nodes {
				t.Fatalf("%d kills would annihilate a %d-node fleet", kills, nodes)
			}
		})
	}
}

// TestFleetScheduleDue: the cursor drains each event exactly once, in
// order, as elapsed time advances.
func TestFleetScheduleDue(t *testing.T) {
	s, err := NewFleetSchedule(FleetConfig{Seed: 7, Nodes: 3, Horizon: 8 * time.Second, MeanGap: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	all := s.Events()
	if len(all) == 0 {
		t.Fatal("schedule is empty; pick a different test seed")
	}
	var seen []FleetEvent
	for elapsed := time.Duration(0); elapsed <= 8*time.Second; elapsed += 100 * time.Millisecond {
		for _, ev := range s.Due(elapsed) {
			if ev.At > elapsed {
				t.Fatalf("event %v fired early at %v", ev, elapsed)
			}
			seen = append(seen, ev)
		}
	}
	if len(seen) != len(all) {
		t.Fatalf("cursor delivered %d of %d events", len(seen), len(all))
	}
	for i := range seen {
		if seen[i] != all[i] {
			t.Fatalf("event %d delivered out of order", i)
		}
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d after full drain", s.Remaining())
	}
	if extra := s.Due(time.Hour); len(extra) != 0 {
		t.Fatalf("events delivered twice: %v", extra)
	}
}

// TestFleetScheduleValidation: a schedule with no fleet to hurt is an
// error, and MaxKills < 0 disables kills entirely.
func TestFleetScheduleValidation(t *testing.T) {
	if _, err := NewFleetSchedule(FleetConfig{Seed: 1}); err == nil {
		t.Fatal("Nodes=0 should be rejected")
	}
	s, err := NewFleetSchedule(FleetConfig{
		Seed: 9, Nodes: 4, Horizon: 20 * time.Second,
		MeanGap: 100 * time.Millisecond, MaxKills: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range s.Events() {
		if ev.Kind == NodeKill {
			t.Fatalf("kill scheduled with MaxKills < 0: %v", ev)
		}
	}
}
