package baselines

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// --- published test vectors ---------------------------------------

func TestGlibcRandReferenceVector(t *testing.T) {
	// glibc: srandom(1); random() × 10.
	want := []int32{
		1804289383, 846930886, 1681692777, 1714636915, 1957747793,
		424238335, 719885386, 1649760492, 596516649, 1189641421,
	}
	g := NewGlibcRand(1)
	for i, w := range want {
		if got := g.Random(); got != w {
			t.Fatalf("glibc random() #%d = %d, want %d", i, got, w)
		}
	}
}

func TestGlibcRandSeedZeroEqualsOne(t *testing.T) {
	a, b := NewGlibcRand(0), NewGlibcRand(1)
	for i := 0; i < 100; i++ {
		if a.Random() != b.Random() {
			t.Fatal("glibc seed 0 must behave as seed 1")
		}
	}
}

func TestANSICReferenceVector(t *testing.T) {
	// The C89 rationale's example rand() with srand(1).
	want := []uint32{16838, 5758, 10113, 17515, 31051, 5627, 23010, 7419, 16212, 4086}
	g := NewANSIC(1)
	for i, w := range want {
		if got := g.Rand(); got != w {
			t.Fatalf("ansic rand() #%d = %d, want %d", i, got, w)
		}
	}
}

func TestMINSTDReferenceValues(t *testing.T) {
	// Park–Miller: starting from 1, the 10000th value is 1043618065.
	g := NewMINSTD(1)
	var v int32
	for i := 0; i < 10000; i++ {
		v = g.Next31()
	}
	if v != 1043618065 {
		t.Fatalf("MINSTD 10000th value = %d, want 1043618065", v)
	}
}

func TestMT19937ReferenceVector(t *testing.T) {
	// Reference mt19937ar.c with init_genrand(5489).
	want := []uint32{
		3499211612, 581869302, 3890346734, 3586334585, 545404204,
		4161255391, 3922919429, 949333985, 2715962298, 1323567403,
	}
	g := NewMT19937(5489)
	for i, w := range want {
		if got := g.Uint32(); got != w {
			t.Fatalf("mt19937 #%d = %d, want %d", i, got, w)
		}
	}
}

func TestMT19937ByArrayReferenceVector(t *testing.T) {
	// mt19937ar.c's own main(): init_by_array({0x123, 0x234, 0x345,
	// 0x456}) then genrand_int32() starts 1067595299, 955945823, ...
	// (verified against a direct line-by-line transliteration of the
	// reference C, which itself reproduces the init_genrand(5489)
	// vector above).
	want := []uint32{1067595299, 955945823, 477289528, 4107218783, 4228976476}
	g := NewMT19937ByArray([]uint32{0x123, 0x234, 0x345, 0x456})
	for i, w := range want {
		if got := g.Uint32(); got != w {
			t.Fatalf("mt19937 by-array #%d = %d, want %d", i, got, w)
		}
	}
}

func TestMT19937_64ReferenceVector(t *testing.T) {
	// Reference mt19937-64.c with init_genrand64(5489).
	want := []uint64{
		14514284786278117030, 4620546740167642908, 13109570281517897720,
		17462938647148434322, 355488278567739596,
	}
	g := NewMT19937_64(5489)
	for i, w := range want {
		if got := g.Uint64(); got != w {
			t.Fatalf("mt19937-64 #%d = %d, want %d", i, got, w)
		}
	}
}

// xorwowStepReference is an independent re-statement of Marsaglia's
// xorwow, written array-style to cross-check the struct
// implementation (differential test; no published vector is embedded
// in the xorwow paper).
func xorwowStepReference(s *[5]uint32, d *uint32) uint32 {
	t := s[0] ^ (s[0] >> 2)
	s[0], s[1], s[2], s[3] = s[1], s[2], s[3], s[4]
	s[4] = (s[4] ^ (s[4] << 4)) ^ (t ^ (t << 1))
	*d += 362437
	return *d + s[4]
}

func TestXORWOWMatchesIndependentReference(t *testing.T) {
	g := NewXORWOW(0)
	state := [5]uint32{123456789, 362436069, 521288629, 88675123, 5783321}
	d := uint32(6615241)
	for i := 0; i < 10000; i++ {
		want := xorwowStepReference(&state, &d)
		if got := g.Uint32(); got != want {
			t.Fatalf("xorwow #%d = %d, want %d", i, got, want)
		}
	}
}

func TestXORWOWSeedsDiverge(t *testing.T) {
	a, b := NewXORWOW(1), NewXORWOW(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("xorwow streams for different seeds agree on %d/100 outputs", same)
	}
}

func TestMWCNeverZeroState(t *testing.T) {
	g := NewMWC(DefaultMWCMultipliers[0], 0)
	if g.state == 0 {
		t.Fatal("zero state must be remapped")
	}
	for i := 0; i < 1000; i++ {
		g.Uint32()
		if g.state == 0 {
			t.Fatal("MWC reached the absorbing zero state")
		}
	}
}

func TestMWCPerThreadStreamsDiffer(t *testing.T) {
	a := NewMWCForThread(0, 12345)
	b := NewMWCForThread(1, 12345)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("MWC thread streams agree on %d/100 outputs", same)
	}
}

func TestMD5RandDeterministicAndSeedSensitive(t *testing.T) {
	a, b := NewMD5Rand(7), NewMD5Rand(7)
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("md5 generator must be deterministic")
		}
	}
	c := NewMD5Rand(8)
	a.Seed(7)
	if a.Uint64() == c.Uint64() {
		t.Fatal("different seeds should give different first words")
	}
}

// --- registry and interface conformance ---------------------------

func TestRegistryConstructsEverything(t *testing.T) {
	for _, name := range Names() {
		g, err := New(name, 42)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if g == nil {
			t.Fatalf("New(%q) returned nil", name)
		}
		g.Uint64() // must not panic
		if named, ok := g.(rng.Named); ok {
			if named.Name() != name {
				t.Errorf("generator %q reports name %q", name, named.Name())
			}
		} else {
			t.Errorf("generator %q does not implement rng.Named", name)
		}
		if _, ok := g.(rng.Seeder); !ok {
			t.Errorf("generator %q does not implement rng.Seeder", name)
		}
	}
	if _, err := New("no-such-generator", 0); err == nil {
		t.Error("unknown generator name should fail")
	}
}

func TestSeedReproducibility(t *testing.T) {
	for _, name := range Names() {
		g1, _ := New(name, 99)
		g2, _ := New(name, 99)
		for i := 0; i < 32; i++ {
			a, b := g1.Uint64(), g2.Uint64()
			if a != b {
				t.Fatalf("%s: same seed diverged at word %d: %d vs %d", name, i, a, b)
			}
		}
		// Re-seed in place must rewind the stream.
		s := g1.(rng.Seeder)
		s.Seed(99)
		g3, _ := New(name, 99)
		for i := 0; i < 8; i++ {
			if g1.Uint64() != g3.Uint64() {
				t.Fatalf("%s: Seed() did not rewind the stream", name)
			}
		}
	}
}

func TestSplitMix64KnownValue(t *testing.T) {
	// Widely circulated vector: seed 0 → first output
	// 0xE220A8397B1DCDAF.
	g := NewSplitMix64(0)
	if got := g.Uint64(); got != 0xE220A8397B1DCDAF {
		t.Fatalf("splitmix64(0) first output = %#x, want 0xE220A8397B1DCDAF", got)
	}
}

func TestMix64MatchesSplitMix(t *testing.T) {
	if Mix64(0) != 0xE220A8397B1DCDAF {
		t.Fatalf("Mix64(0) = %#x, want 0xE220A8397B1DCDAF", Mix64(0))
	}
}

// --- gross statistical sanity (cheap, not a battery) --------------

func TestAllGeneratorsRoughlyUniform(t *testing.T) {
	for _, name := range Names() {
		g, _ := New(name, 2024)
		var ones int
		const n = 4096
		for i := 0; i < n; i++ {
			v := g.Uint64()
			for ; v != 0; v &= v - 1 {
				ones++
			}
		}
		mean := float64(ones) / float64(n*64)
		// Even ansic (only 15 meaningful bits per sub-draw) should be
		// near 0.5 on the bits it does produce; the assembled word
		// keeps all draws, so 0.45–0.55 is a generous envelope.
		if mean < 0.45 || mean > 0.55 {
			t.Errorf("%s: bit density %.4f far from 0.5", name, mean)
		}
	}
}

func TestBitReaderRoundTrip(t *testing.T) {
	// Reading 64 bits in chunks must reproduce the word stream.
	f := func(seed uint64, chunksRaw []uint8) bool {
		src1 := NewSplitMix64(seed)
		src2 := NewSplitMix64(seed)
		br := rng.NewBitReader(src1)
		var chunks []uint
		total := uint(0)
		for _, c := range chunksRaw {
			n := uint(c)%32 + 1
			if total+n > 64 {
				break
			}
			chunks = append(chunks, n)
			total += n
		}
		if total < 64 {
			chunks = append(chunks, 64-total)
		}
		var assembled uint64
		for _, n := range chunks {
			assembled = assembled<<n | br.Bits(n)
		}
		return assembled == src2.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitReaderPanicsOnBadWidth(t *testing.T) {
	br := rng.NewBitReader(NewSplitMix64(1))
	for _, n := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bits(%d) should panic", n)
				}
			}()
			br.Bits(n)
		}()
	}
}

func TestUint64nBounds(t *testing.T) {
	g := NewSplitMix64(5)
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := rng.Uint64n(g, n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Uint64n(0) should panic")
			}
		}()
		rng.Uint64n(g, 0)
	}()
}

func TestFloat64Range(t *testing.T) {
	g := NewMT19937_64(1)
	for i := 0; i < 10000; i++ {
		v := rng.Float64(g)
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
	}
	h := NewMT19937_64(1)
	for i := 0; i < 1000; i++ {
		v := rng.Float32(h)
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 = %g out of [0,1)", v)
		}
	}
}
