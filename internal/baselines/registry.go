package baselines

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// SplitMix64 is Steele–Lea–Flood's splittable generator; it is used
// throughout the repository for seeding derived streams and serves as
// a modern lightweight baseline.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 with the given seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next output.
func (g *SplitMix64) Uint64() uint64 {
	g.state += 0x9E3779B97F4A7C15
	z := g.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Seed implements rng.Seeder.
func (g *SplitMix64) Seed(seed uint64) { g.state = seed }

// Name implements rng.Named.
func (g *SplitMix64) Name() string { return "splitmix64" }

// Mix64 applies the SplitMix64 output function once to v; a cheap
// high-quality scrambler for deriving per-worker seeds.
func Mix64(v uint64) uint64 {
	v += 0x9E3779B97F4A7C15
	v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9
	v = (v ^ (v >> 27)) * 0x94D049BB133111EB
	return v ^ (v >> 31)
}

// constructors maps registry names to seedable constructors.
var constructors = map[string]func(seed uint64) rng.Source{
	"glibc-rand":     func(s uint64) rng.Source { return NewGlibcRand(uint32(s)) },
	"glibc-rand32":   func(s uint64) rng.Source { return NewGlibcRand32(uint32(s)) },
	"ansic":          func(s uint64) rng.Source { return NewANSIC(uint32(s)) },
	"minstd":         func(s uint64) rng.Source { return NewMINSTD(int32(s)) },
	"lcg64":          func(s uint64) rng.Source { return NewKnuthLCG(s) },
	"mt19937":        func(s uint64) rng.Source { return NewMT19937(uint32(s)) },
	"mt19937-64":     func(s uint64) rng.Source { return NewMT19937_64(s) },
	"xorwow":         func(s uint64) rng.Source { return NewXORWOW(s) },
	"mwc":            func(s uint64) rng.Source { return NewMWC(DefaultMWCMultipliers[0], uint32(s)) },
	"md5-cudpp":      func(s uint64) rng.Source { return NewMD5Rand(s) },
	"splitmix64":     func(s uint64) rng.Source { return NewSplitMix64(s) },
	"kiss99":         func(s uint64) rng.Source { return NewKISS99(s) },
	"xorshift64star": func(s uint64) rng.Source { return NewXorShift64Star(s) },
}

// New constructs a registered baseline generator by name.
func New(name string, seed uint64) (rng.Source, error) {
	c, ok := constructors[name]
	if !ok {
		return nil, fmt.Errorf("baselines: unknown generator %q (have %v)", name, Names())
	}
	return c(seed), nil
}

// Names returns the sorted list of registered generator names.
func Names() []string {
	names := make([]string, 0, len(constructors))
	for n := range constructors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
