package baselines

import (
	"crypto/md5"
	"encoding/binary"
)

// MD5Rand is a counter-mode MD5 generator in the style of CUDPP's
// rand() (Tzeng & Wei, "Parallel white noise generation on a GPU via
// cryptographic hash", I3D 2008): block i of the stream is
// MD5(seed ‖ counter), yielding 128 bits (two 64-bit words) per
// hash. Quality is cryptographic; speed is poor — exactly the CUDPP
// trade-off the paper's Table I records (high quality, speed rank 3,
// not on-demand, limited scalability).
type MD5Rand struct {
	seed    uint64
	counter uint64
	buf     [2]uint64
	have    int // unread words left in buf
}

// NewMD5Rand returns a counter-mode MD5 generator.
func NewMD5Rand(seed uint64) *MD5Rand {
	return &MD5Rand{seed: seed}
}

// Uint64 returns the next 64-bit word, hashing a fresh block every
// second call.
func (g *MD5Rand) Uint64() uint64 {
	if g.have == 0 {
		var msg [16]byte
		binary.LittleEndian.PutUint64(msg[0:8], g.seed)
		binary.LittleEndian.PutUint64(msg[8:16], g.counter)
		g.counter++
		sum := md5.Sum(msg[:])
		g.buf[0] = binary.LittleEndian.Uint64(sum[0:8])
		g.buf[1] = binary.LittleEndian.Uint64(sum[8:16])
		g.have = 2
	}
	g.have--
	return g.buf[g.have]
}

// Seed implements rng.Seeder; it also rewinds the counter.
func (g *MD5Rand) Seed(seed uint64) {
	g.seed = seed
	g.counter = 0
	g.have = 0
}

// Name implements rng.Named.
func (g *MD5Rand) Name() string { return "md5-cudpp" }
