package baselines

import "testing"

func TestDefaultMultipliersAreGood(t *testing.T) {
	for _, a := range DefaultMWCMultipliers {
		if !IsGoodMWCMultiplier(a) {
			t.Errorf("default multiplier %d fails the safe-prime criterion", a)
		}
	}
}
