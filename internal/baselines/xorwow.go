package baselines

// XORWOW is Marsaglia's xorwow generator (JSS 2003, "Xorshift RNGs"),
// the default generator of Nvidia's cuRAND device API — the "CURAND"
// rows of the paper's Figure 3 and Tables I–III. It is a 160-bit
// xorshift combined with a Weyl counter:
//
//	t = x ^ (x >> 2)
//	x, y, z, w = y, z, w, v
//	v = (v ^ (v << 4)) ^ (t ^ (t << 1))
//	d += 362437
//	return d + v
type XORWOW struct {
	x, y, z, w, v uint32
	d             uint32
}

// NewXORWOW returns a generator in Marsaglia's published initial
// state, sequence-split by the seed the way cuRAND perturbs its
// per-thread states (seed folded into the xorshift state with a
// splitmix-style scramble; seed 0 gives exactly the published
// state).
func NewXORWOW(seed uint64) *XORWOW {
	g := &XORWOW{
		x: 123456789,
		y: 362436069,
		z: 521288629,
		w: 88675123,
		v: 5783321,
		d: 6615241,
	}
	if seed != 0 {
		// Scramble the state with the seed; cuRAND's curand_init
		// similarly derives a distinct state per (seed, sequence).
		s := seed
		for i := 0; i < 5; i++ {
			s ^= s >> 33
			s *= 0xff51afd7ed558ccd
			s ^= s >> 33
			switch i {
			case 0:
				g.x ^= uint32(s)
			case 1:
				g.y ^= uint32(s)
			case 2:
				g.z ^= uint32(s)
			case 3:
				g.w ^= uint32(s)
			case 4:
				g.v ^= uint32(s)
			}
		}
		if g.x|g.y|g.z|g.w|g.v == 0 {
			g.x = 123456789 // the all-zero xorshift state is absorbing
		}
	}
	return g
}

// Uint32 returns the next 32-bit output.
func (g *XORWOW) Uint32() uint32 {
	t := g.x ^ (g.x >> 2)
	g.x, g.y, g.z, g.w = g.y, g.z, g.w, g.v
	g.v = (g.v ^ (g.v << 4)) ^ (t ^ (t << 1))
	g.d += 362437
	return g.d + g.v
}

// Uint64 concatenates two 32-bit outputs, high word first.
func (g *XORWOW) Uint64() uint64 {
	hi := uint64(g.Uint32())
	lo := uint64(g.Uint32())
	return hi<<32 | lo
}

// Seed implements rng.Seeder.
func (g *XORWOW) Seed(seed uint64) { *g = *NewXORWOW(seed) }

// Name implements rng.Named.
func (g *XORWOW) Name() string { return "xorwow" }
