package baselines

// GlibcRand re-implements glibc's random() in its default TYPE_3
// configuration: an additive lagged-Fibonacci generator of degree 31
// with separation 3, seeded by a MINSTD LCG pass, discarding the
// first 310 outputs exactly as glibc's initstate() does.
//
// In flattened form the stream is
//
//	r[0]      = seed
//	r[1..30]  = 16807·r[i-1] mod 2^31-1
//	r[31..33] = r[i-31]
//	r[i]      = r[i-31] + r[i-3]   (mod 2^32)   for i ≥ 34
//	output_n  = r[n+344] >> 1
//
// The output stream is bit-identical to glibc: srandom(1) yields
// 1804289383, 846930886, 1681692777, ...  This matters because the
// paper's Table II "glibc rand()" row and its FEED work unit both use
// this exact generator.
type GlibcRand struct {
	buf [34]uint32 // last 34 values of the flattened recurrence
	k   int        // index (mod 34) of the next value to write
}

// NewGlibcRand returns a generator in the state srandom(seed) leaves
// glibc's default generator in.
func NewGlibcRand(seed uint32) *GlibcRand {
	g := &GlibcRand{}
	g.srandom(seed)
	return g
}

func (g *GlibcRand) srandom(seed uint32) {
	if seed == 0 {
		seed = 1 // glibc maps seed 0 to 1
	}
	g.buf[0] = seed
	for i := 1; i < 31; i++ {
		// 16807 · r[i-1] mod 2^31-1, kept non-negative; 64-bit
		// arithmetic replaces glibc's Schrage trick.
		v := int64(int32(g.buf[i-1])) * 16807 % 2147483647
		if v < 0 {
			v += 2147483647
		}
		g.buf[i] = uint32(v)
	}
	for i := 31; i < 34; i++ {
		g.buf[i] = g.buf[i-31]
	}
	g.k = 34 % 34 // next value to write is r[34], stored at slot 0
	// glibc discards the first 310 outputs (r[34..343]); the first
	// value handed to the caller is r[344] >> 1.
	for i := 0; i < 310; i++ {
		g.step()
	}
}

// step generates the next value r[i] = r[i-31] + r[i-3] of the
// recurrence and returns it (before the output shift).
//
// This is the FEED's innermost operation — the serving stack steps it
// nine times per 64-bit feed word — so the three cursor reductions
// are conditional subtracts (k is always < 34, so k+31 < 68 needs at
// most one) rather than the modulo operations an earlier version
// used, which cost a magic-number multiply each and dominated bulk
// fill profiles.
func (g *GlibcRand) step() uint32 {
	// Slot layout: g.buf holds r[i-34..i-1]; with write cursor k
	// (= i mod 34), r[i-31] sits at (k+3) mod 34 and r[i-3] at
	// (k+31) mod 34.
	k := g.k
	i3 := k + 3
	if i3 >= 34 {
		i3 -= 34
	}
	i31 := k + 31
	if i31 >= 34 {
		i31 -= 34
	}
	v := g.buf[i3] + g.buf[i31]
	g.buf[k] = v
	k++
	if k == 34 {
		k = 0
	}
	g.k = k
	return v
}

// Random returns the next output of random(): a 31-bit non-negative
// value.
func (g *GlibcRand) Random() int32 {
	return int32(g.step() >> 1)
}

// Uint64 assembles a 64-bit word from three 31-bit outputs (93 bits
// drawn, the surplus discarded), preserving the generator's native
// statistical signature.
//
// The three recurrence steps are unrolled with the cursor kept in a
// local, so the per-call cost is three adds and one cursor store —
// this is the FEED's bulk entry point and shows up directly in pool
// refill throughput.
func (g *GlibcRand) Uint64() uint64 {
	k := g.k
	i3, i31 := k+3, k+31
	if i3 >= 34 {
		i3 -= 34
	}
	if i31 >= 34 {
		i31 -= 34
	}
	a := g.buf[i3] + g.buf[i31]
	g.buf[k] = a
	if i3++; i3 == 34 {
		i3 = 0
	}
	if i31++; i31 == 34 {
		i31 = 0
	}
	if k++; k == 34 {
		k = 0
	}
	b := g.buf[i3] + g.buf[i31]
	g.buf[k] = b
	if i3++; i3 == 34 {
		i3 = 0
	}
	if i31++; i31 == 34 {
		i31 = 0
	}
	if k++; k == 34 {
		k = 0
	}
	c := g.buf[i3] + g.buf[i31]
	g.buf[k] = c
	if k++; k == 34 {
		k = 0
	}
	g.k = k
	return uint64(a>>1)<<33 | uint64(b>>1)<<2 | uint64(c>>1)&3
}

// Seed implements rng.Seeder.
func (g *GlibcRand) Seed(seed uint64) {
	*g = GlibcRand{}
	g.srandom(uint32(seed))
}

// Name implements rng.Named.
func (g *GlibcRand) Name() string { return "glibc-rand" }

// GlibcRand32 is glibc random() used the way applications naively
// use it: each 32-bit lane is one random() return value, whose top
// bit is always zero (random() yields 31 bits). This is the honest
// "glibc rand()" row of a 32-bit battery — the stuck bit makes it
// fail binary-rank, monkey and bit-count tests en masse, matching
// the paper's Table II row for glibc rand().
type GlibcRand32 struct {
	GlibcRand
}

// NewGlibcRand32 returns the naive-usage wrapper.
func NewGlibcRand32(seed uint32) *GlibcRand32 {
	g := &GlibcRand32{}
	g.srandom(seed)
	return g
}

// Uint64 packs two raw random() outputs as two 32-bit lanes, stuck
// top bits included.
func (g *GlibcRand32) Uint64() uint64 {
	hi := uint64(uint32(g.Random()))
	lo := uint64(uint32(g.Random()))
	return hi<<32 | lo
}

// Name implements rng.Named.
func (g *GlibcRand32) Name() string { return "glibc-rand32" }
