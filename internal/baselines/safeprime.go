package baselines

// CUDAMCML ships a file of multiply-with-carry multipliers computed
// offline: values a for which a·2^32 − 1 is a safe prime, giving
// each GPU thread an independent long-period stream. This file
// reproduces that offline step with a deterministic Miller–Rabin
// test, so the repository does not depend on the shipped list.

// mulmod computes (a·b) mod m without overflow via 128-bit
// intermediate arithmetic.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := mul128(a, b)
	return mod128(hi, lo, m)
}

// mul128 returns the 128-bit product of a and b.
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	c = t >> 32
	t2 := a0*b1 + t&mask
	lo |= t2 << 32
	hi = a1*b1 + c + t2>>32
	return hi, lo
}

// mod128 reduces the 128-bit value (hi, lo) modulo m by binary long
// division.
func mod128(hi, lo, m uint64) uint64 {
	if hi == 0 {
		return lo % m
	}
	rem := uint64(0)
	for i := 127; i >= 0; i-- {
		bit := uint64(0)
		if i >= 64 {
			bit = hi >> uint(i-64) & 1
		} else {
			bit = lo >> uint(i) & 1
		}
		carry := rem >> 63
		rem = rem<<1 | bit
		if carry == 1 || rem >= m {
			rem -= m
		}
	}
	return rem
}

// powmod computes a^e mod m.
func powmod(a, e, m uint64) uint64 {
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = mulmod(result, a, m)
		}
		a = mulmod(a, a, m)
		e >>= 1
	}
	return result
}

// mrBases is a deterministic witness set for 64-bit integers
// (Sinclair's seven-base set).
var mrBases = []uint64{2, 325, 9375, 28178, 450775, 9780504, 1795265022}

// IsPrime64 is a deterministic Miller–Rabin primality test valid for
// every 64-bit integer.
func IsPrime64(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
witness:
	for _, a := range mrBases {
		a %= n
		if a == 0 {
			continue
		}
		x := powmod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < r-1; i++ {
			x = mulmod(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// IsGoodMWCMultiplier reports whether a yields a long-period,
// full-quality MWC stream: both a·2^32 − 1 and a·2^31 − 1 must be
// prime (the CUDAMCML safe-prime criterion).
func IsGoodMWCMultiplier(a uint32) bool {
	m := uint64(a) << 32
	return IsPrime64(m-1) && IsPrime64(m>>1-1)
}

// FindMWCMultipliers searches downward from `start` and returns the
// first `count` good multipliers — the reproduction of CUDAMCML's
// offline multiplier file generation.
func FindMWCMultipliers(start uint32, count int) []uint32 {
	var out []uint32
	for a := start; a > 1<<31 && len(out) < count; a-- {
		if IsGoodMWCMultiplier(a) {
			out = append(out, a)
		}
	}
	return out
}
