// Package baselines implements the comparison generators the paper
// measures the hybrid PRNG against: the glibc random() additive
// generator and the ANSI C LCG, MT19937 and MT19937-64 (Mersenne
// Twister), XORWOW (the cuRAND device-API default), MWC (the
// multiply-with-carry generator used by CUDAMCML) and a counter-mode
// MD5 generator (the CUDPP-style construction).
//
// All generators implement rng.Source and are registered by name in
// the Registry for the cmd/ tools.
package baselines

// LCG is a general 64-bit linear congruential generator
// x' = a·x + c (mod 2^64), emitting the full state. Its quality is
// deliberately poor: it exists as the "naive" bit source the hybrid
// PRNG amplifies and as a battery punching bag.
type LCG struct {
	a, c  uint64
	state uint64
}

// NewLCG returns an LCG with multiplier a, increment c and the given
// seed.
func NewLCG(a, c, seed uint64) *LCG {
	return &LCG{a: a, c: c, state: seed}
}

// NewKnuthLCG returns Knuth's MMIX LCG, the strongest of the plain
// power-of-two-modulus LCGs.
func NewKnuthLCG(seed uint64) *LCG {
	return NewLCG(6364136223846793005, 1442695040888963407, seed)
}

// Uint64 advances the state and returns it.
func (g *LCG) Uint64() uint64 {
	g.state = g.state*g.a + g.c
	return g.state
}

// Seed resets the state.
func (g *LCG) Seed(seed uint64) { g.state = seed }

// Name implements rng.Named.
func (g *LCG) Name() string { return "lcg64" }

// ANSIC is the reference implementation of the C standard's example
// rand(): 31-bit state, returning 15-bit values, exactly as printed
// in K&R and the C89 rationale. It exists to reproduce the "glibc
// rand()" row of Table I/II at its historical quality level and for
// its published test vector.
type ANSIC struct {
	next uint64
}

// NewANSIC returns the ANSI C example rand() seeded with seed
// (srand(seed)).
func NewANSIC(seed uint32) *ANSIC {
	return &ANSIC{next: uint64(seed)}
}

// Rand returns the next 15-bit value in [0, 32768), matching the
// C standard's example implementation.
func (g *ANSIC) Rand() uint32 {
	g.next = g.next*1103515245 + 12345
	return uint32(g.next/65536) % 32768
}

// Uint64 assembles a 64-bit word from five successive 15-bit
// outputs (75 bits drawn, the low 11 bits of the last draw
// discarded), so the word inherits the generator's statistical
// weaknesses faithfully.
func (g *ANSIC) Uint64() uint64 {
	a := uint64(g.Rand())
	b := uint64(g.Rand())
	c := uint64(g.Rand())
	d := uint64(g.Rand())
	e := uint64(g.Rand())
	return a<<49 | b<<34 | c<<19 | d<<4 | e>>11
}

// Seed implements rng.Seeder.
func (g *ANSIC) Seed(seed uint64) { g.next = uint64(uint32(seed)) }

// Name implements rng.Named.
func (g *ANSIC) Name() string { return "ansic" }

// MINSTD is the Lehmer generator x' = 16807·x mod (2^31 - 1), the
// "minimal standard" of Park and Miller. glibc uses it to seed the
// additive TYPE_3 tables, and the paper's initialisation does the
// same, so it is exposed here.
type MINSTD struct {
	state int64
}

// NewMINSTD returns a MINSTD generator. A zero seed is mapped to 1
// because 0 is a fixed point.
func NewMINSTD(seed int32) *MINSTD {
	s := int64(seed) % 2147483647
	if s <= 0 {
		s += 2147483646
	}
	if s == 0 {
		s = 1
	}
	return &MINSTD{state: s}
}

// Next31 returns the next value in [1, 2^31 - 1).
func (g *MINSTD) Next31() int32 {
	g.state = (16807 * g.state) % 2147483647
	return int32(g.state)
}

// Uint64 assembles a 64-bit word from three 31-bit draws.
func (g *MINSTD) Uint64() uint64 {
	a := uint64(g.Next31())
	b := uint64(g.Next31())
	c := uint64(g.Next31())
	return a<<33 | b<<2 | c&3
}

// Seed implements rng.Seeder.
func (g *MINSTD) Seed(seed uint64) {
	n := NewMINSTD(int32(seed))
	g.state = n.state
}

// Name implements rng.Named.
func (g *MINSTD) Name() string { return "minstd" }
