package baselines

// KISS99 is Marsaglia's KISS generator (1999 post): a combination of
// an LCG, a 3-shift xorshift and two MWCs. It is the historically
// standard "good simple generator" of the GPU-PRNG literature the
// paper draws on (Demchik 2011 benchmarks it on GPUs), included here
// as an additional comparison point.
type KISS99 struct {
	z, w, jsr, jcong uint32
}

// NewKISS99 returns the generator in Marsaglia's published initial
// state, perturbed by seed (seed 0 gives exactly the published
// state, whose first output is the test-vector value).
func NewKISS99(seed uint64) *KISS99 {
	g := &KISS99{z: 362436069, w: 521288629, jsr: 123456789, jcong: 380116160}
	if seed != 0 {
		s := Mix64(seed)
		g.z ^= uint32(s)
		g.w ^= uint32(s >> 32)
		s = Mix64(seed + 1)
		g.jsr ^= uint32(s)
		g.jcong ^= uint32(s >> 32)
		if g.jsr == 0 {
			g.jsr = 123456789 // xorshift must not be zero
		}
		if g.z == 0 {
			g.z = 362436069
		}
		if g.w == 0 {
			g.w = 521288629
		}
	}
	return g
}

// Uint32 returns the next output: MWC ^ CONG + SHR3.
func (g *KISS99) Uint32() uint32 {
	// Two 16-bit MWCs.
	g.z = 36969*(g.z&65535) + g.z>>16
	g.w = 18000*(g.w&65535) + g.w>>16
	mwc := g.z<<16 + g.w
	// CONG.
	g.jcong = 69069*g.jcong + 1234567
	// SHR3.
	g.jsr ^= g.jsr << 17
	g.jsr ^= g.jsr >> 13
	g.jsr ^= g.jsr << 5
	return (mwc ^ g.jcong) + g.jsr
}

// Uint64 concatenates two 32-bit outputs, high word first.
func (g *KISS99) Uint64() uint64 {
	hi := uint64(g.Uint32())
	lo := uint64(g.Uint32())
	return hi<<32 | lo
}

// Seed implements rng.Seeder.
func (g *KISS99) Seed(seed uint64) { *g = *NewKISS99(seed) }

// Name implements rng.Named.
func (g *KISS99) Name() string { return "kiss99" }

// XorShift64Star is Marsaglia's xorshift64 with Vigna's
// multiplicative scramble — the minimal modern 64-bit generator,
// included as the lightweight comparison point between the raw LCG
// and SplitMix64.
type XorShift64Star struct {
	state uint64
}

// NewXorShift64Star returns a generator with the given nonzero seed
// (zero is remapped — the all-zero xorshift state is absorbing).
func NewXorShift64Star(seed uint64) *XorShift64Star {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &XorShift64Star{state: seed}
}

// Uint64 returns the next output.
func (g *XorShift64Star) Uint64() uint64 {
	x := g.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.state = x
	return x * 0x2545F4914F6CDD1D
}

// Seed implements rng.Seeder.
func (g *XorShift64Star) Seed(seed uint64) { *g = *NewXorShift64Star(seed) }

// Name implements rng.Named.
func (g *XorShift64Star) Name() string { return "xorshift64star" }
