package baselines

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestIsPrime64SmallValues(t *testing.T) {
	primes := map[uint64]bool{
		0: false, 1: false, 2: true, 3: true, 4: false, 5: true,
		25: false, 97: true, 561: false /* Carmichael */, 7919: true,
		1<<31 - 1: true /* Mersenne */, 1<<32 + 15: true,
		4294967295: false, /* 2^32-1 = 3·5·17·257·65537 */
	}
	for n, want := range primes {
		if got := IsPrime64(n); got != want {
			t.Errorf("IsPrime64(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrime64AgainstBigInt(t *testing.T) {
	f := func(nRaw uint64) bool {
		n := nRaw%(1<<48) + 2 // keep big.Int's ProbablyPrime fast
		want := new(big.Int).SetUint64(n).ProbablyPrime(20)
		return IsPrime64(n) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMulmodMatchesBigInt(t *testing.T) {
	f := func(a, b, m uint64) bool {
		if m < 2 {
			m = 2
		}
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, new(big.Int).SetUint64(m))
		return mulmod(a, b, m) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPowmodMatchesBigInt(t *testing.T) {
	f := func(a, e uint64, mRaw uint64) bool {
		m := mRaw
		if m < 2 {
			m = 2
		}
		e %= 10000 // keep big.Exp cheap
		want := new(big.Int).Exp(new(big.Int).SetUint64(a), new(big.Int).SetUint64(e), new(big.Int).SetUint64(m))
		return powmod(a, e, m) == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFindMWCMultipliers(t *testing.T) {
	got := FindMWCMultipliers(4294967295, 3)
	want := []uint32{4294967118, 4294966893, 4294966830}
	if len(got) != 3 {
		t.Fatalf("found %d multipliers", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("multiplier %d = %d, want %d", i, got[i], want[i])
		}
	}
	for _, a := range got {
		if !IsGoodMWCMultiplier(a) {
			t.Errorf("found multiplier %d is not good", a)
		}
	}
}

func TestIsGoodMWCMultiplierRejects(t *testing.T) {
	// An even multiplier can never satisfy the criterion (a·2^32−1
	// is fine, but a·2^31−1 with even a is ≡ -1 mod 2… check a known
	// bad one instead).
	if IsGoodMWCMultiplier(4294966578) {
		t.Error("known-bad multiplier accepted")
	}
}
