package baselines

import (
	"testing"
)

func TestGlibcRandMarshalRoundTrip(t *testing.T) {
	g := NewGlibcRand(12345)
	for i := 0; i < 37; i++ {
		g.Random()
	}
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := new(GlibcRand)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if g.Random() != r.Random() {
			t.Fatalf("restored glibc stream diverged at %d", i)
		}
	}
}

func TestANSICMarshalRoundTrip(t *testing.T) {
	g := NewANSIC(777)
	g.Rand()
	g.Rand()
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := new(ANSIC)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if g.Rand() != r.Rand() {
			t.Fatal("restored ansic stream diverged")
		}
	}
}

func TestSplitMixMarshalRoundTrip(t *testing.T) {
	g := NewSplitMix64(99)
	g.Uint64()
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := new(SplitMix64)
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if g.Uint64() != r.Uint64() {
			t.Fatal("restored splitmix stream diverged")
		}
	}
}

func TestUnmarshalRejectsBadBlobs(t *testing.T) {
	g := NewGlibcRand(1)
	blob, _ := g.MarshalBinary()

	r := new(GlibcRand)
	if err := r.UnmarshalBinary(blob[:10]); err == nil {
		t.Error("short blob should fail")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 0x7F
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Error("wrong tag should fail")
	}
	bad = append([]byte(nil), blob...)
	bad[1] = 99
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Error("wrong version should fail")
	}
	// Corrupt the cursor beyond range.
	bad = append([]byte(nil), blob...)
	bad[len(bad)-4] = 0xFF
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Error("out-of-range cursor should fail")
	}
	a := new(ANSIC)
	if err := a.UnmarshalBinary([]byte{0x02, 1, 0}); err == nil {
		t.Error("short ansic payload should fail")
	}
	s := new(SplitMix64)
	if err := s.UnmarshalBinary([]byte{0x01, 1, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("splitmix must reject the glibc tag")
	}
}

func TestMINSTDSeedEdgeCases(t *testing.T) {
	// Zero and negative seeds map into the valid multiplicative
	// group; the stream must be non-degenerate.
	for _, seed := range []int32{0, -1, -2147483647} {
		g := NewMINSTD(seed)
		a, b := g.Next31(), g.Next31()
		if a == 0 || a == b {
			t.Errorf("seed %d: degenerate stream (%d, %d)", seed, a, b)
		}
	}
}
