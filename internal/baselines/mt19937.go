package baselines

// MT19937 is the classic 32-bit Mersenne Twister of Matsumoto and
// Nishimura (1998), bit-exact against the reference implementation:
// seeding with 5489 yields 3499211612, 581869302, 3890346734, ...
//
// The paper compares against the Nvidia SDK "MersenneTwister" sample,
// which is a dcmt-parameterised family of this generator; the
// canonical parameter set is used here, and the batch-only behaviour
// of the SDK sample is modelled by the hybrid harness, not by this
// type.
type MT19937 struct {
	mt  [624]uint32
	idx int
}

const (
	mtN         = 624
	mtM         = 397
	mtMatrixA   = 0x9908b0df
	mtUpperMask = 0x80000000
	mtLowerMask = 0x7fffffff
)

// NewMT19937 returns a Mersenne Twister seeded with init_genrand(seed).
func NewMT19937(seed uint32) *MT19937 {
	g := &MT19937{}
	g.seed32(seed)
	return g
}

func (g *MT19937) seed32(seed uint32) {
	g.mt[0] = seed
	for i := 1; i < mtN; i++ {
		g.mt[i] = 1812433253*(g.mt[i-1]^(g.mt[i-1]>>30)) + uint32(i)
	}
	g.idx = mtN
}

// NewMT19937ByArray seeds with init_by_array, the recommended
// full-entropy seeding.
func NewMT19937ByArray(key []uint32) *MT19937 {
	g := NewMT19937(19650218)
	i, j := 1, 0
	k := len(key)
	if mtN > k {
		k = mtN
	}
	for ; k > 0; k-- {
		g.mt[i] = (g.mt[i] ^ ((g.mt[i-1] ^ (g.mt[i-1] >> 30)) * 1664525)) + key[j] + uint32(j)
		i++
		j++
		if i >= mtN {
			g.mt[0] = g.mt[mtN-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = mtN - 1; k > 0; k-- {
		g.mt[i] = (g.mt[i] ^ ((g.mt[i-1] ^ (g.mt[i-1] >> 30)) * 1566083941)) - uint32(i)
		i++
		if i >= mtN {
			g.mt[0] = g.mt[mtN-1]
			i = 1
		}
	}
	g.mt[0] = 0x80000000
	return g
}

func (g *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		y := g.mt[i]&mtUpperMask | g.mt[(i+1)%mtN]&mtLowerMask
		next := g.mt[(i+mtM)%mtN] ^ (y >> 1)
		if y&1 != 0 {
			next ^= mtMatrixA
		}
		g.mt[i] = next
	}
	g.idx = 0
}

// Uint32 returns the next tempered 32-bit output.
func (g *MT19937) Uint32() uint32 {
	if g.idx >= mtN {
		g.generate()
	}
	y := g.mt[g.idx]
	g.idx++
	y ^= y >> 11
	y ^= (y << 7) & 0x9d2c5680
	y ^= (y << 15) & 0xefc60000
	y ^= y >> 18
	return y
}

// Uint64 concatenates two 32-bit outputs, high word first.
func (g *MT19937) Uint64() uint64 {
	hi := uint64(g.Uint32())
	lo := uint64(g.Uint32())
	return hi<<32 | lo
}

// Seed implements rng.Seeder.
func (g *MT19937) Seed(seed uint64) { g.seed32(uint32(seed)) }

// Name implements rng.Named.
func (g *MT19937) Name() string { return "mt19937" }

// MT19937_64 is the 64-bit Mersenne Twister (Nishimura 2000),
// bit-exact against the reference: seeding with 5489 yields
// 14514284786278117030, 4620546740167642908, ...
type MT19937_64 struct {
	mt  [312]uint64
	idx int
}

const (
	mt64N         = 312
	mt64M         = 156
	mt64MatrixA   = 0xB5026F5AA96619E9
	mt64UpperMask = 0xFFFFFFFF80000000
	mt64LowerMask = 0x7FFFFFFF
)

// NewMT19937_64 returns a 64-bit Mersenne Twister seeded with
// init_genrand64(seed).
func NewMT19937_64(seed uint64) *MT19937_64 {
	g := &MT19937_64{}
	g.Seed(seed)
	return g
}

// Seed implements rng.Seeder (init_genrand64).
func (g *MT19937_64) Seed(seed uint64) {
	g.mt[0] = seed
	for i := 1; i < mt64N; i++ {
		g.mt[i] = 6364136223846793005*(g.mt[i-1]^(g.mt[i-1]>>62)) + uint64(i)
	}
	g.idx = mt64N
}

func (g *MT19937_64) generate() {
	for i := 0; i < mt64N; i++ {
		x := g.mt[i]&mt64UpperMask | g.mt[(i+1)%mt64N]&mt64LowerMask
		next := g.mt[(i+mt64M)%mt64N] ^ (x >> 1)
		if x&1 != 0 {
			next ^= mt64MatrixA
		}
		g.mt[i] = next
	}
	g.idx = 0
}

// Uint64 returns the next tempered 64-bit output.
func (g *MT19937_64) Uint64() uint64 {
	if g.idx >= mt64N {
		g.generate()
	}
	x := g.mt[g.idx]
	g.idx++
	x ^= (x >> 29) & 0x5555555555555555
	x ^= (x << 17) & 0x71D67FFFEDA60000
	x ^= (x << 37) & 0xFFF7EEE000000000
	x ^= x >> 43
	return x
}

// Name implements rng.Named.
func (g *MT19937_64) Name() string { return "mt19937-64" }
