package baselines

import (
	"encoding/binary"
	"fmt"
)

// Binary state encodings for the generators used as hybrid-PRNG
// feeds, so a Generator can be checkpointed and restored exactly
// (encoding.BinaryMarshaler / encoding.BinaryUnmarshaler). Formats
// are versioned little-endian: [tag byte][version byte][payload].

const (
	tagGlibc    = 0x01
	tagANSIC    = 0x02
	tagSplitMix = 0x03
	stateV1     = 1
)

func header(tag byte) []byte { return []byte{tag, stateV1} }

func checkHeader(data []byte, tag byte, payload int) error {
	if len(data) != 2+payload {
		return fmt.Errorf("baselines: state length %d, want %d", len(data), 2+payload)
	}
	if data[0] != tag {
		return fmt.Errorf("baselines: state tag %#x, want %#x", data[0], tag)
	}
	if data[1] != stateV1 {
		return fmt.Errorf("baselines: unsupported state version %d", data[1])
	}
	return nil
}

// MarshalBinary encodes the full lagged-Fibonacci window and cursor.
func (g *GlibcRand) MarshalBinary() ([]byte, error) {
	out := header(tagGlibc)
	var b [4]byte
	for _, v := range g.buf {
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	binary.LittleEndian.PutUint32(b[:], uint32(g.k))
	return append(out, b[:]...), nil
}

// UnmarshalBinary restores a state written by MarshalBinary.
func (g *GlibcRand) UnmarshalBinary(data []byte) error {
	if err := checkHeader(data, tagGlibc, 4*35); err != nil {
		return err
	}
	p := data[2:]
	for i := range g.buf {
		g.buf[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	k := binary.LittleEndian.Uint32(p[4*34:])
	if k >= 34 {
		return fmt.Errorf("baselines: glibc cursor %d out of range", k)
	}
	g.k = int(k)
	return nil
}

// MarshalBinary encodes the 64-bit LCG state.
func (g *ANSIC) MarshalBinary() ([]byte, error) {
	out := header(tagANSIC)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], g.next)
	return append(out, b[:]...), nil
}

// UnmarshalBinary restores a state written by MarshalBinary.
func (g *ANSIC) UnmarshalBinary(data []byte) error {
	if err := checkHeader(data, tagANSIC, 8); err != nil {
		return err
	}
	g.next = binary.LittleEndian.Uint64(data[2:])
	return nil
}

// MarshalBinary encodes the SplitMix64 counter.
func (g *SplitMix64) MarshalBinary() ([]byte, error) {
	out := header(tagSplitMix)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], g.state)
	return append(out, b[:]...), nil
}

// UnmarshalBinary restores a state written by MarshalBinary.
func (g *SplitMix64) UnmarshalBinary(data []byte) error {
	if err := checkHeader(data, tagSplitMix, 8); err != nil {
		return err
	}
	g.state = binary.LittleEndian.Uint64(data[2:])
	return nil
}
