package baselines

import "testing"

// kissStepReference is an independent restatement of KISS99 written
// in the flat style of Marsaglia's macros, cross-checking the struct
// implementation.
func kissStepReference(z, w, jsr, jcong *uint32) uint32 {
	*z = 36969*(*z&65535) + *z>>16
	*w = 18000*(*w&65535) + *w>>16
	mwc := *z<<16 + *w
	*jcong = 69069**jcong + 1234567
	*jsr ^= *jsr << 17
	*jsr ^= *jsr >> 13
	*jsr ^= *jsr << 5
	return (mwc ^ *jcong) + *jsr
}

func TestKISS99MatchesReference(t *testing.T) {
	g := NewKISS99(0)
	z, w, jsr, jcong := uint32(362436069), uint32(521288629), uint32(123456789), uint32(380116160)
	for i := 0; i < 10000; i++ {
		want := kissStepReference(&z, &w, &jsr, &jcong)
		if got := g.Uint32(); got != want {
			t.Fatalf("kiss #%d = %d, want %d", i, got, want)
		}
	}
}

func TestKISS99SeedsDiverge(t *testing.T) {
	a, b := NewKISS99(1), NewKISS99(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("kiss streams agree on %d/100 outputs", same)
	}
}

func TestXorShift64StarNonZeroState(t *testing.T) {
	g := NewXorShift64Star(0)
	if g.state == 0 {
		t.Fatal("zero seed must be remapped")
	}
	for i := 0; i < 1000; i++ {
		g.Uint64()
		if g.state == 0 {
			t.Fatal("reached the absorbing zero state")
		}
	}
}

func TestXorShift64StarKnownValue(t *testing.T) {
	// Hand-derivable single step from state 1:
	// x=1: x ^= x>>12 → 1; x ^= x<<25 → 1 | 1<<25; x ^= x>>27 → …
	g := NewXorShift64Star(1)
	x := uint64(1)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	want := x * 0x2545F4914F6CDD1D
	if got := g.Uint64(); got != want {
		t.Fatalf("xorshift64* first output = %d, want %d", got, want)
	}
}

func TestNewGeneratorsInRegistry(t *testing.T) {
	for _, name := range []string{"kiss99", "xorshift64star"} {
		g, err := New(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		if g.Uint64() == g.Uint64() {
			t.Errorf("%s: consecutive outputs identical", name)
		}
	}
}
