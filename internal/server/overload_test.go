package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	hybridprng "repro"
)

func newOverloadServer(t testing.TB, opts Options) (*hybridprng.Pool, *Server, *httptest.Server) {
	t.Helper()
	pool, err := hybridprng.NewPool(
		hybridprng.WithSeed(1),
		hybridprng.WithShards(4),
		hybridprng.WithHealthMonitoring(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return pool, srv, ts
}

// TestPanicRecoveryMiddleware: a handler panic becomes a 500 and a
// counter, not a dead daemon.
func TestPanicRecoveryMiddleware(t *testing.T) {
	_, srv, _ := newOverloadServer(t, Options{})
	h := srv.protect(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/u64", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "handler bug") {
		t.Errorf("500 body: %q", rec.Body.String())
	}
	if srv.panics.Value() != 1 {
		t.Errorf("panics counter = %d, want 1", srv.panics.Value())
	}
	// The chain keeps serving after the panic.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/u64?n=4", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("request after recovered panic: status %d", rec.Code)
	}
}

// TestLoadSheddingReturns429 fills the in-flight budget and requires
// the next draw to shed with 429 + Retry-After while /healthz and
// /metrics stay reachable.
func TestLoadSheddingReturns429(t *testing.T) {
	_, srv, ts := newOverloadServer(t, Options{MaxInFlight: 2})
	// Occupy the whole budget (the counter is what the limiter reads;
	// parking real slow requests would make the test racy).
	srv.inFlight.Add(2)
	defer srv.inFlight.Add(-2)

	for _, path := range []string{"/u64?n=4", "/bytes?n=32", "/stream?words=4"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s at capacity: status %d, want 429", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: 429 without Retry-After", path)
		}
	}
	if srv.sheds.Value() != 3 {
		t.Errorf("sheds counter = %d, want 3", srv.sheds.Value())
	}
	// Probe and admin endpoints bypass the limiter.
	for _, path := range []string{"/healthz", "/metrics"} {
		if code, body := get(t, ts.URL+path); code != http.StatusOK {
			t.Errorf("%s during shed: status %d: %s", path, code, body)
		}
	}
	// Budget released: draws work again.
	srv.inFlight.Add(-2)
	defer srv.inFlight.Add(2)
	if code, body := get(t, ts.URL+"/u64?n=4"); code != http.StatusOK {
		t.Fatalf("after release: status %d: %s", code, body)
	}
}

// TestRequestDeadline: an expired per-request deadline turns into a
// clean 503 (nothing written yet) and a timeout counter, instead of
// a request that holds its connection forever.
func TestRequestDeadline(t *testing.T) {
	_, srv, ts := newOverloadServer(t, Options{RequestTimeout: time.Nanosecond})
	for _, path := range []string{"/u64?n=100000", "/bytes?n=100000"} {
		code, body := get(t, ts.URL+path)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s with expired deadline: status %d: %s", path, code, body)
		}
		if !strings.Contains(string(body), "deadline") {
			t.Errorf("%s body: %q", path, body)
		}
	}
	if srv.timeouts.Value() != 2 {
		t.Errorf("timeouts counter = %d, want 2", srv.timeouts.Value())
	}
	// /stream is exempt from deadlines by design.
	if code, _ := get(t, ts.URL+"/stream?words=16"); code != http.StatusOK {
		t.Errorf("/stream must not carry the request deadline: status %d", code)
	}
}

// TestChaosServerShedsWhenAllShardsFault is the acceptance check:
// with every shard faulted the server answers fast 503s on draws,
// sheds overload with 429, keeps /healthz honest and never crashes
// or hangs.
func TestChaosServerShedsWhenAllShardsFault(t *testing.T) {
	pool, srv, ts := newOverloadServer(t, Options{MaxInFlight: 1})
	for i := 0; i < pool.Shards(); i++ {
		if err := pool.InjectFault(i); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Draws against the dead pool: fast 503, no hang.
		if code, _ := get(t, ts.URL+"/u64?n=100"); code != http.StatusServiceUnavailable {
			t.Errorf("/u64 on dead pool: status %d, want 503", code)
		}
		if code, _ := get(t, ts.URL+"/bytes?n=100"); code != http.StatusServiceUnavailable {
			t.Errorf("/bytes on dead pool: status %d, want 503", code)
		}
		// Past the in-flight budget: shed with 429 before touching the
		// pool at all.
		srv.inFlight.Add(1)
		resp, err := http.Get(ts.URL + "/u64?n=100")
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		srv.inFlight.Add(-1)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("overloaded dead pool: status %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		// Health probe tells the truth.
		code, body := get(t, ts.URL+"/healthz")
		if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "unhealthy") {
			t.Errorf("healthz on dead pool: %d %q", code, body)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("server hung under all-shard faults")
	}
}
